// Fixed-size thread pool and data-parallel helpers — the execution layer the
// hot paths (SSE index build, collection AEAD, concurrent SEARCH serving,
// batch IBS verification) shard their work onto.
//
// Design rules (DESIGN.md §9):
//   * A pool is a fixed set of workers created up front; no task ever spawns
//     a thread. Sizing comes from the HCPP_THREADS environment variable
//     (default_threads()), falling back to std::hardware_concurrency.
//   * Deterministic-when-single-threaded: a pool of size 1 (and every
//     `pool == nullptr` call site) executes shards inline on the caller's
//     thread in ascending shard order — byte-for-byte the serial schedule,
//     which is what the serial-equivalence oracle tests pin down.
//   * Shard boundaries are a pure function of (n, size()), so for a fixed
//     seed *and* thread count every run distributes work — and any forked
//     DRBG streams — identically.
//   * Exceptions thrown by shard bodies are captured and the first one is
//     rethrown on the calling thread after the batch drains; the pool itself
//     stays usable.
//
// Observability: each pool exports a queue-depth gauge
// ("par.<name>.queue_depth"), a task-latency histogram ("par.<name>.task_ns",
// wall time of one shard body) and a tasks counter ("par.<name>.tasks").
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace hcpp::par {

class ThreadPool {
 public:
  /// `threads == 0` means default_threads(). `name` keys the pool's metrics.
  explicit ThreadPool(size_t threads = 0, std::string name = "pool");
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (>= 1). A size-1 pool runs everything inline.
  [[nodiscard]] size_t size() const noexcept { return threads_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// HCPP_THREADS environment override, else hardware_concurrency, min 1.
  static size_t default_threads();

  /// Splits [0, n) into min(size(), n) contiguous shards and runs
  /// fn(shard, begin, end) for each; blocks until every shard finished.
  /// Shard boundaries depend only on (n, size()).
  void for_shards(size_t n,
                  const std::function<void(size_t shard, size_t begin,
                                           size_t end)>& fn);

  /// Element-wise parallel loop: fn(i) for every i in [0, n), sharded as
  /// for_shards.
  void parallel_for(size_t n, const std::function<void(size_t)>& fn);

  /// out[i] = fn(i) with `out` sized by the caller's `n`; results land at
  /// their input index regardless of execution order.
  template <typename T>
  std::vector<T> parallel_map(size_t n, const std::function<T(size_t)>& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Number of shards for_shards will use for `n` items.
  [[nodiscard]] size_t shard_count(size_t n) const noexcept {
    return n < threads_ ? (n == 0 ? 0 : n) : threads_;
  }

 private:
  struct Batch;  // one for_shards invocation's completion state

  void worker_loop();
  void run_task(const std::function<void()>& task);

  std::string name_;
  size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;

  // Cached metric names ("par.<name>.…") so the hot path never concatenates.
  std::string m_queue_depth_, m_task_ns_, m_tasks_;
};

/// Shards [0, n) exactly as ThreadPool::for_shards does, serially on the
/// caller — the `pool == nullptr` fallback every parallel entry point uses.
void serial_shards(size_t n,
                   const std::function<void(size_t shard, size_t begin,
                                            size_t end)>& fn);

}  // namespace hcpp::par
