#include "src/par/pool.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <memory>

#include "src/obs/metrics.h"

namespace hcpp::par {

namespace {

size_t env_threads() {
  const char* v = std::getenv("HCPP_THREADS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  unsigned long n = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0') return 0;
  return static_cast<size_t>(n);
}

/// Shard boundaries: first (n % shards) shards get one extra element, so the
/// split is a pure function of (n, shards).
void split(size_t n, size_t shards,
           const std::function<void(size_t, size_t, size_t)>& emit) {
  size_t base = n / shards;
  size_t extra = n % shards;
  size_t begin = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t len = base + (s < extra ? 1 : 0);
    emit(s, begin, begin + len);
    begin += len;
  }
}

}  // namespace

size_t ThreadPool::default_threads() {
  size_t n = env_threads();
  if (n == 0) n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void serial_shards(size_t n,
                   const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  fn(0, 0, n);
}

// One for_shards call: counts outstanding shards and carries the first
// exception back to the submitting thread.
struct ThreadPool::Batch {
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = 0;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(size_t threads, std::string name)
    : name_(std::move(name)),
      threads_(threads == 0 ? default_threads() : threads),
      m_queue_depth_("par." + name_ + ".queue_depth"),
      m_task_ns_("par." + name_ + ".task_ns"),
      m_tasks_("par." + name_ + ".tasks") {
  if (threads_ > 1) {
    // threads_ - 1 background workers: the submitting thread helps drain in
    // for_shards, so a size-N pool applies exactly N threads to a batch.
    workers_.reserve(threads_ - 1);
    for (size_t i = 0; i + 1 < threads_; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::run_task(const std::function<void()>& task) {
  if (obs::recording()) {
    auto t0 = std::chrono::steady_clock::now();
    task();
    auto t1 = std::chrono::steady_clock::now();
    obs::observe(m_task_ns_,
                 static_cast<double>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         t1 - t0)
                         .count()));
    obs::count(m_tasks_);
  } else {
    task();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      obs::gauge_set(m_queue_depth_, static_cast<int64_t>(queue_.size()));
    }
    run_task(task);
  }
}

void ThreadPool::for_shards(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t shards = shard_count(n);
  if (threads_ <= 1 || shards <= 1) {
    // Deterministic serial mode: ascending shard order on the caller.
    split(n, shards, [&](size_t s, size_t b, size_t e) {
      run_task([&] { fn(s, b, e); });
    });
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->remaining = shards;
  {
    std::lock_guard<std::mutex> lock(mu_);
    split(n, shards, [&](size_t s, size_t b, size_t e) {
      queue_.emplace_back([this, batch, &fn, s, b, e] {
        try {
          fn(s, b, e);
        } catch (...) {
          std::lock_guard<std::mutex> l(batch->mu);
          if (!batch->error) batch->error = std::current_exception();
        }
        std::lock_guard<std::mutex> l(batch->mu);
        if (--batch->remaining == 0) batch->done.notify_all();
      });
    });
    obs::gauge_set(m_queue_depth_, static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_all();

  // Help drain the queue instead of blocking: the submitting thread is a
  // worker too, so a size-N pool really applies N threads to the batch.
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
      obs::gauge_set(m_queue_depth_, static_cast<int64_t>(queue_.size()));
    }
    run_task(task);
  }
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done.wait(lock, [&] { return batch->remaining == 0; });
    if (batch->error) std::rethrow_exception(batch->error);
  }
}

void ThreadPool::parallel_for(size_t n,
                              const std::function<void(size_t)>& fn) {
  for_shards(n, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace hcpp::par
