#include "src/cipher/chacha20.h"

#include <cstring>
#include <stdexcept>

#include "src/cipher/chacha20_simd.h"
#include "src/mp/dispatch.h"

namespace hcpp::cipher {

namespace {

inline uint32_t rotl(uint32_t x, int n) noexcept {
  return (x << n) | (x >> (32 - n));
}

inline void quarter_round(uint32_t& a, uint32_t& b, uint32_t& c,
                          uint32_t& d) noexcept {
  a += b;
  d = rotl(d ^ a, 16);
  c += d;
  b = rotl(b ^ c, 12);
  a += b;
  d = rotl(d ^ a, 8);
  c += d;
  b = rotl(b ^ c, 7);
}

inline uint32_t load32le(const uint8_t* p) noexcept {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void init_state(uint32_t state[16],
                       const std::array<uint8_t, kChaChaKeySize>& key,
                       const std::array<uint8_t, kChaChaNonceSize>& nonce,
                       uint32_t counter) noexcept {
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = load32le(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) state[13 + i] = load32le(nonce.data() + 4 * i);
}

// Whether bulk spans go to the 4-block AVX2 kernel. Checked per call (two
// cached loads), so HCPP_FORCE_GENERIC toggles take effect immediately.
inline bool use_avx2() noexcept {
  return simd::avx2_compiled() && mp::cpu_features().avx2 &&
         !mp::force_generic();
}

}  // namespace

void chacha20_block(const std::array<uint8_t, kChaChaKeySize>& key,
                    const std::array<uint8_t, kChaChaNonceSize>& nonce,
                    uint32_t counter, std::array<uint8_t, 64>& out) noexcept {
  uint32_t state[16];
  init_state(state, key, nonce, counter);

  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    uint32_t v = x[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(v);
    out[4 * i + 1] = static_cast<uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(v >> 24);
  }
}

void chacha20_xor(const std::array<uint8_t, kChaChaKeySize>& key,
                  const std::array<uint8_t, kChaChaNonceSize>& nonce,
                  uint32_t counter, std::span<uint8_t> data) noexcept {
  size_t offset = 0;
  if (data.size() - offset >= 256 && use_avx2()) {
    uint32_t state[16];
    init_state(state, key, nonce, counter);
    do {
      state[12] = counter;
      simd::chacha20_xor4_avx2(state, data.data() + offset);
      counter += 4;  // 32-bit wrap, same as four scalar counter++
      offset += 256;
    } while (data.size() - offset >= 256);
  }
  std::array<uint8_t, 64> block;
  while (offset < data.size()) {
    chacha20_block(key, nonce, counter++, block);
    size_t take = std::min<size_t>(64, data.size() - offset);
    for (size_t i = 0; i < take; ++i) data[offset + i] ^= block[i];
    offset += take;
  }
}

void chacha20_keystream(const std::array<uint8_t, kChaChaKeySize>& key,
                        const std::array<uint8_t, kChaChaNonceSize>& nonce,
                        uint32_t counter, std::span<uint8_t> out) noexcept {
  size_t offset = 0;
  if (out.size() - offset >= 256 && use_avx2()) {
    uint32_t state[16];
    init_state(state, key, nonce, counter);
    do {
      state[12] = counter;
      simd::chacha20_blocks4_avx2(state, out.data() + offset);
      counter += 4;
      offset += 256;
    } while (out.size() - offset >= 256);
  }
  std::array<uint8_t, 64> block;
  while (offset < out.size()) {
    chacha20_block(key, nonce, counter++, block);
    size_t take = std::min<size_t>(64, out.size() - offset);
    std::memcpy(out.data() + offset, block.data(), take);
    offset += take;
  }
}

const char* chacha20_kernel_name() noexcept {
  return use_avx2() ? "avx2" : "generic";
}

Bytes chacha20(BytesView key, BytesView nonce, uint32_t counter,
               BytesView data) {
  if (key.size() != kChaChaKeySize) {
    throw std::invalid_argument("chacha20: key must be 32 bytes");
  }
  if (nonce.size() != kChaChaNonceSize) {
    throw std::invalid_argument("chacha20: nonce must be 12 bytes");
  }
  std::array<uint8_t, kChaChaKeySize> k;
  std::array<uint8_t, kChaChaNonceSize> n;
  std::copy(key.begin(), key.end(), k.begin());
  std::copy(nonce.begin(), nonce.end(), n.begin());
  Bytes out(data.begin(), data.end());
  chacha20_xor(k, n, counter, out);
  return out;
}

}  // namespace hcpp::cipher
