#pragma once
// 4-block AVX2 ChaCha20 kernel interface. The implementation TU
// (chacha20_avx2.cpp) is compiled with -mavx2 (see src/CMakeLists.txt) and
// only entered after mp::cpu_features().avx2 confirms the extension at
// runtime. Both entry points take the fully initialised 16-word RFC 8439
// state (constants, key, counter at word 12, nonce) and process blocks
// counter, counter+1, counter+2, counter+3 with 32-bit counter wraparound —
// byte-identical to four calls of the scalar chacha20_block.

#include <cstdint>

namespace hcpp::cipher::simd {

/// True when this TU carries real AVX2 code (callers must still check the
/// runtime CPU flag before dispatching here).
bool avx2_compiled() noexcept;

/// XORs 256 bytes of keystream into `data` in place.
void chacha20_xor4_avx2(const uint32_t state[16], uint8_t* data) noexcept;

/// Writes 256 bytes of raw keystream to `out` (DRBG refill path).
void chacha20_blocks4_avx2(const uint32_t state[16], uint8_t* out) noexcept;

}  // namespace hcpp::cipher::simd
