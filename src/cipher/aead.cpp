#include "src/cipher/aead.h"

#include <stdexcept>

#include "src/cipher/chacha20.h"
#include "src/hash/hkdf.h"
#include "src/hash/hmac.h"

namespace hcpp::cipher {

namespace {

constexpr size_t kNonceSize = 12;
constexpr size_t kTagSize = 32;

// Splits the user key into independent encryption and MAC keys.
void derive_keys(BytesView key, Bytes& enc_key, Bytes& mac_key) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("aead: key must be 32 bytes");
  }
  Bytes okm = hash::hkdf(key, {}, to_bytes("hcpp-aead-v1"), 64);
  enc_key.assign(okm.begin(), okm.begin() + 32);
  mac_key.assign(okm.begin() + 32, okm.end());
}

Bytes mac_input(BytesView nonce, BytesView ciphertext, BytesView aad) {
  // Unambiguous framing: aad_len || aad || nonce || ciphertext.
  Bytes m;
  for (int shift = 56; shift >= 0; shift -= 8) {
    m.push_back(static_cast<uint8_t>(aad.size() >> shift));
  }
  append(m, aad);
  append(m, nonce);
  append(m, ciphertext);
  return m;
}

}  // namespace

Bytes aead_encrypt_with_nonce(BytesView key, BytesView nonce,
                              BytesView plaintext, BytesView aad) {
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("aead: nonce must be 12 bytes");
  }
  Bytes enc_key, mac_key;
  derive_keys(key, enc_key, mac_key);
  Bytes ct = chacha20(enc_key, nonce, 1, plaintext);
  Bytes tag = hash::hmac_sha256(mac_key, mac_input(nonce, ct, aad));
  Bytes out;
  append(out, nonce);
  append(out, ct);
  append(out, tag);
  secure_wipe(enc_key);
  secure_wipe(mac_key);
  return out;
}

Bytes aead_encrypt(BytesView key, BytesView plaintext, BytesView aad,
                   RandomSource& rng) {
  Bytes nonce = rng.bytes(kNonceSize);
  return aead_encrypt_with_nonce(key, nonce, plaintext, aad);
}

Bytes aead_decrypt(BytesView key, BytesView box, BytesView aad) {
  if (box.size() < kNonceSize + kTagSize) throw AuthError();
  BytesView nonce = box.subspan(0, kNonceSize);
  BytesView ct = box.subspan(kNonceSize, box.size() - kNonceSize - kTagSize);
  BytesView tag = box.subspan(box.size() - kTagSize);
  Bytes enc_key, mac_key;
  derive_keys(key, enc_key, mac_key);
  Bytes expected = hash::hmac_sha256(mac_key, mac_input(nonce, ct, aad));
  if (!ct_equal(expected, tag)) {
    secure_wipe(enc_key);
    secure_wipe(mac_key);
    throw AuthError();
  }
  Bytes pt = chacha20(enc_key, nonce, 1, ct);
  secure_wipe(enc_key);
  secure_wipe(mac_key);
  return pt;
}

}  // namespace hcpp::cipher
