#include "src/cipher/aead.h"

#include <stdexcept>

#include "src/cipher/chacha20.h"
#include "src/hash/hkdf.h"
#include "src/hash/hmac.h"

namespace hcpp::cipher {

namespace {

constexpr size_t kNonceSize = 12;
constexpr size_t kTagSize = 32;

// The user key split into independent encryption and MAC keys, with the
// HMAC pad midstates precomputed. The collection paths seal thousands of
// files under ONE key, so the schedule is memoized per thread on the key
// bytes: the HKDF (and the two pad compressions) run once per key instead
// of once per file. Derivation is deterministic, so the cache cannot change
// any output. The cached copy lives as long as the thread — the same
// lifetime as the user key it is derived from, which the caller holds
// anyway — so the per-call secure_wipe of earlier versions bought nothing
// and is dropped with the per-call derivation.
struct DerivedKeys {
  Bytes key;      // user key these were derived from (cache tag)
  Bytes enc_key;  // ChaCha20 key
  hash::HmacKey mac;
};

const DerivedKeys& derived_for(BytesView key) {
  if (key.size() != kAeadKeySize) {
    throw std::invalid_argument("aead: key must be 32 bytes");
  }
  thread_local DerivedKeys cache;
  if (cache.key.size() != key.size() ||
      !std::equal(key.begin(), key.end(), cache.key.begin())) {
    Bytes okm = hash::hkdf(key, {}, to_bytes("hcpp-aead-v1"), 64);
    cache.key.assign(key.begin(), key.end());
    cache.enc_key.assign(okm.begin(), okm.begin() + 32);
    cache.mac = hash::HmacKey(BytesView(okm.data() + 32, 32));
    secure_wipe(okm);
  }
  return cache;
}

// Unambiguous framing: aad_len || aad || nonce || ciphertext, streamed
// straight into the MAC.
Bytes aead_tag(const hash::HmacKey& mac, BytesView nonce,
               BytesView ciphertext, BytesView aad) {
  uint8_t len[8];
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<uint8_t>(aad.size() >> (56 - 8 * i));
  }
  hash::Digest d = mac.eval_digest_parts(
      {BytesView(len, sizeof(len)), aad, nonce, ciphertext});
  return Bytes(d.begin(), d.end());
}

}  // namespace

Bytes aead_encrypt_with_nonce(BytesView key, BytesView nonce,
                              BytesView plaintext, BytesView aad) {
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("aead: nonce must be 12 bytes");
  }
  const DerivedKeys& dk = derived_for(key);
  Bytes ct = chacha20(dk.enc_key, nonce, 1, plaintext);
  Bytes tag = aead_tag(dk.mac, nonce, ct, aad);
  Bytes out;
  append(out, nonce);
  append(out, ct);
  append(out, tag);
  return out;
}

Bytes aead_encrypt(BytesView key, BytesView plaintext, BytesView aad,
                   RandomSource& rng) {
  Bytes nonce = rng.bytes(kNonceSize);
  return aead_encrypt_with_nonce(key, nonce, plaintext, aad);
}

Bytes aead_decrypt(BytesView key, BytesView box, BytesView aad) {
  if (box.size() < kNonceSize + kTagSize) throw AuthError();
  BytesView nonce = box.subspan(0, kNonceSize);
  BytesView ct = box.subspan(kNonceSize, box.size() - kNonceSize - kTagSize);
  BytesView tag = box.subspan(box.size() - kTagSize);
  const DerivedKeys& dk = derived_for(key);
  Bytes expected = aead_tag(dk.mac, nonce, ct, aad);
  if (!ct_equal(expected, tag)) throw AuthError();
  Bytes pt = chacha20(dk.enc_key, nonce, 1, ct);
  return pt;
}

}  // namespace hcpp::cipher
