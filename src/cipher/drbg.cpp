#include "src/cipher/drbg.h"

#include <cstring>
#include <random>

#include "src/cipher/chacha20.h"
#include "src/hash/sha256.h"

namespace hcpp::cipher {

Drbg::Drbg(BytesView seed) {
  hash::Digest d = hash::sha256(seed);
  std::copy(d.begin(), d.end(), key_.begin());
  nonce_.fill(0);
}

Drbg Drbg::system() {
  std::random_device rd;
  Bytes seed(48);
  for (size_t i = 0; i < seed.size(); i += 4) {
    uint32_t v = rd();
    for (size_t j = 0; j < 4 && i + j < seed.size(); ++j) {
      seed[i + j] = static_cast<uint8_t>(v >> (8 * j));
    }
  }
  return Drbg(seed);
}

void Drbg::refill() {
  // Generate up to four blocks in one keystream call, but never across the
  // 32-bit counter wrap: the key ratchet below must happen at exactly the
  // same stream position as the old one-block generator.
  uint64_t until_wrap = 0x100000000ull - counter_;
  size_t nblocks = static_cast<size_t>(std::min<uint64_t>(4, until_wrap));
  chacha20_keystream(key_, nonce_, counter_,
                     std::span<uint8_t>(block_.data(), 64 * nblocks));
  counter_ += static_cast<uint32_t>(nblocks);  // wraps to 0 at the boundary
  block_fill_ = 64 * nblocks;
  block_pos_ = 0;
  if (counter_ == 0) {
    // 256 GiB of output consumed: ratchet the key to a fresh stream.
    hash::Digest d = hash::sha256(BytesView(key_.data(), key_.size()));
    std::copy(d.begin(), d.end(), key_.begin());
  }
}

void Drbg::fill(std::span<uint8_t> out) {
  size_t done = 0;
  while (done < out.size()) {
    if (block_pos_ == block_fill_) refill();
    size_t take = std::min(out.size() - done, block_fill_ - block_pos_);
    std::memcpy(out.data() + done, block_.data() + block_pos_, take);
    block_pos_ += take;
    done += take;
  }
}

void Drbg::reseed(BytesView entropy) {
  Bytes material(key_.begin(), key_.end());
  append(material, entropy);
  hash::Digest d = hash::sha256(material);
  std::copy(d.begin(), d.end(), key_.begin());
  counter_ = 0;
  block_fill_ = 0;
  block_pos_ = 0;
}

}  // namespace hcpp::cipher
