#include "src/cipher/drbg.h"

#include <random>

#include "src/cipher/chacha20.h"
#include "src/hash/sha256.h"

namespace hcpp::cipher {

Drbg::Drbg(BytesView seed) {
  hash::Digest d = hash::sha256(seed);
  std::copy(d.begin(), d.end(), key_.begin());
  nonce_.fill(0);
}

Drbg Drbg::system() {
  std::random_device rd;
  Bytes seed(48);
  for (size_t i = 0; i < seed.size(); i += 4) {
    uint32_t v = rd();
    for (size_t j = 0; j < 4 && i + j < seed.size(); ++j) {
      seed[i + j] = static_cast<uint8_t>(v >> (8 * j));
    }
  }
  return Drbg(seed);
}

void Drbg::next_block() {
  chacha20_block(key_, nonce_, counter_++, block_);
  block_pos_ = 0;
  if (counter_ == 0) {
    // 256 GiB of output consumed: ratchet the key to a fresh stream.
    hash::Digest d = hash::sha256(BytesView(key_.data(), key_.size()));
    std::copy(d.begin(), d.end(), key_.begin());
  }
}

void Drbg::fill(std::span<uint8_t> out) {
  for (size_t i = 0; i < out.size(); ++i) {
    if (block_pos_ == 64) next_block();
    out[i] = block_[block_pos_++];
  }
}

void Drbg::reseed(BytesView entropy) {
  Bytes material(key_.begin(), key_.end());
  append(material, entropy);
  hash::Digest d = hash::sha256(material);
  std::copy(d.begin(), d.end(), key_.begin());
  counter_ = 0;
  block_pos_ = 64;
}

}  // namespace hcpp::cipher
