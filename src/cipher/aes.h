// AES-128 (FIPS 197) in CTR mode, implemented from scratch. Provided as the
// second symmetric cipher option (the benchmark E7 compares it against
// ChaCha20 on the patient path).
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace hcpp::cipher {

inline constexpr size_t kAesBlockSize = 16;
inline constexpr size_t kAes128KeySize = 16;

class Aes128 {
 public:
  /// Expands a 16-byte key; throws std::invalid_argument otherwise.
  explicit Aes128(BytesView key);

  /// Encrypts one 16-byte block (ECB primitive; exposed for tests/CTR only).
  void encrypt_block(const uint8_t in[kAesBlockSize],
                     uint8_t out[kAesBlockSize]) const noexcept;

  /// CTR-mode encrypt/decrypt (identical). `nonce` is 12 bytes; the final
  /// 4 bytes of the counter block are a big-endian block counter.
  Bytes ctr(BytesView nonce, uint32_t counter, BytesView data) const;

 private:
  std::array<std::array<uint8_t, 16>, 11> round_keys_{};
};

}  // namespace hcpp::cipher
