#include "src/cipher/chacha20_simd.h"

#include <cstdlib>

#if defined(__x86_64__) && defined(__AVX2__)
#define HCPP_HAVE_AVX2 1
#include <immintrin.h>
#endif

namespace hcpp::cipher::simd {

#ifdef HCPP_HAVE_AVX2

namespace {

// Four blocks are processed as two block-pairs. Each __m256i holds one
// 4-word ChaCha row for two blocks — the row of block b in the low 128-bit
// lane and of block b+1 in the high lane — so the column quarter-rounds are
// plain vertical SIMD ops and the diagonalisation is a per-lane word rotate
// (_mm256_shuffle_epi32 shuffles within each lane independently).

inline __m256i rotl(__m256i x, int n) noexcept {
  return _mm256_or_si256(_mm256_slli_epi32(x, n),
                         _mm256_srli_epi32(x, 32 - n));
}

// One double round (column + diagonal) on a block-pair (v0..v3 = rows 0..3).
inline void double_round(__m256i& v0, __m256i& v1, __m256i& v2,
                         __m256i& v3) noexcept {
  // Column round.
  v0 = _mm256_add_epi32(v0, v1);
  v3 = rotl(_mm256_xor_si256(v3, v0), 16);
  v2 = _mm256_add_epi32(v2, v3);
  v1 = rotl(_mm256_xor_si256(v1, v2), 12);
  v0 = _mm256_add_epi32(v0, v1);
  v3 = rotl(_mm256_xor_si256(v3, v0), 8);
  v2 = _mm256_add_epi32(v2, v3);
  v1 = rotl(_mm256_xor_si256(v1, v2), 7);
  // Diagonalise: rotate row 1 left by one word, row 2 by two, row 3 by three
  // (within each lane), run the same column round, rotate back.
  v1 = _mm256_shuffle_epi32(v1, _MM_SHUFFLE(0, 3, 2, 1));
  v2 = _mm256_shuffle_epi32(v2, _MM_SHUFFLE(1, 0, 3, 2));
  v3 = _mm256_shuffle_epi32(v3, _MM_SHUFFLE(2, 1, 0, 3));
  v0 = _mm256_add_epi32(v0, v1);
  v3 = rotl(_mm256_xor_si256(v3, v0), 16);
  v2 = _mm256_add_epi32(v2, v3);
  v1 = rotl(_mm256_xor_si256(v1, v2), 12);
  v0 = _mm256_add_epi32(v0, v1);
  v3 = rotl(_mm256_xor_si256(v3, v0), 8);
  v2 = _mm256_add_epi32(v2, v3);
  v1 = rotl(_mm256_xor_si256(v1, v2), 7);
  v1 = _mm256_shuffle_epi32(v1, _MM_SHUFFLE(2, 1, 0, 3));
  v2 = _mm256_shuffle_epi32(v2, _MM_SHUFFLE(1, 0, 3, 2));
  v3 = _mm256_shuffle_epi32(v3, _MM_SHUFFLE(0, 3, 2, 1));
}

// Computes the four 64-byte keystream blocks for counters c..c+3 (32-bit
// wraparound, c = state[12]) into ks[8] as block-pair row vectors:
// ks[0..3] = rows 0..3 of blocks (c, c+1), ks[4..7] = rows of (c+2, c+3).
inline void keystream4(const uint32_t state[16], __m256i ks[8]) noexcept {
  const __m128i row0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 0));
  const __m128i row1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  const __m128i row2 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 8));
  const __m128i row3 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 12));
  // Per-block counters c+0..c+3 in 32-bit arithmetic (wraps exactly like the
  // scalar loop's counter++).
  __m128i rows3[4];
  for (uint32_t i = 0; i < 4; ++i) {
    rows3[i] = _mm_insert_epi32(row3, static_cast<int>(state[12] + i), 0);
  }
  const __m256i s0 = _mm256_broadcastsi128_si256(row0);
  const __m256i s1 = _mm256_broadcastsi128_si256(row1);
  const __m256i s2 = _mm256_broadcastsi128_si256(row2);
  const __m256i s3a = _mm256_set_m128i(rows3[1], rows3[0]);
  const __m256i s3b = _mm256_set_m128i(rows3[3], rows3[2]);

  __m256i a0 = s0, a1 = s1, a2 = s2, a3 = s3a;
  __m256i b0 = s0, b1 = s1, b2 = s2, b3 = s3b;
  for (int round = 0; round < 10; ++round) {
    double_round(a0, a1, a2, a3);
    double_round(b0, b1, b2, b3);
  }
  ks[0] = _mm256_add_epi32(a0, s0);
  ks[1] = _mm256_add_epi32(a1, s1);
  ks[2] = _mm256_add_epi32(a2, s2);
  ks[3] = _mm256_add_epi32(a3, s3a);
  ks[4] = _mm256_add_epi32(b0, s0);
  ks[5] = _mm256_add_epi32(b1, s1);
  ks[6] = _mm256_add_epi32(b2, s2);
  ks[7] = _mm256_add_epi32(b3, s3b);
}

// Reorders a block-pair's row vectors into the serial block layout:
// out[0] = bytes 0..31 of the pair's first block (rows 0,1 low lanes),
// out[1] = bytes 32..63, out[2]/out[3] = the same for the second block.
inline void transpose_pair(const __m256i rows[4], __m256i out[4]) noexcept {
  out[0] = _mm256_permute2x128_si256(rows[0], rows[1], 0x20);
  out[1] = _mm256_permute2x128_si256(rows[2], rows[3], 0x20);
  out[2] = _mm256_permute2x128_si256(rows[0], rows[1], 0x31);
  out[3] = _mm256_permute2x128_si256(rows[2], rows[3], 0x31);
}

}  // namespace

bool avx2_compiled() noexcept { return true; }

void chacha20_xor4_avx2(const uint32_t state[16], uint8_t* data) noexcept {
  __m256i ks[8];
  keystream4(state, ks);
  __m256i serial[4];
  for (int pair = 0; pair < 2; ++pair) {
    transpose_pair(ks + 4 * pair, serial);
    uint8_t* p = data + 128 * pair;
    for (int i = 0; i < 4; ++i) {
      __m256i* dst = reinterpret_cast<__m256i*>(p + 32 * i);
      _mm256_storeu_si256(
          dst, _mm256_xor_si256(_mm256_loadu_si256(dst), serial[i]));
    }
  }
}

void chacha20_blocks4_avx2(const uint32_t state[16], uint8_t* out) noexcept {
  __m256i ks[8];
  keystream4(state, ks);
  __m256i serial[4];
  for (int pair = 0; pair < 2; ++pair) {
    transpose_pair(ks + 4 * pair, serial);
    uint8_t* p = out + 128 * pair;
    for (int i = 0; i < 4; ++i) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p + 32 * i), serial[i]);
    }
  }
}

#else  // !HCPP_HAVE_AVX2

// Built without AVX2: avx2_compiled() says so and the kernels are traps —
// the dispatchers never select this path when avx2_compiled() is false.
bool avx2_compiled() noexcept { return false; }

void chacha20_xor4_avx2(const uint32_t*, uint8_t*) noexcept { std::abort(); }

void chacha20_blocks4_avx2(const uint32_t*, uint8_t*) noexcept {
  std::abort();
}

#endif  // HCPP_HAVE_AVX2

}  // namespace hcpp::cipher::simd
