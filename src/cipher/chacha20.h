// ChaCha20 stream cipher (RFC 8439 quarter-round core, 96-bit nonce, 32-bit
// block counter). Used as the paper's semantically secure symmetric
// encryption E/E' and as the DRBG core.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace hcpp::cipher {

inline constexpr size_t kChaChaKeySize = 32;
inline constexpr size_t kChaChaNonceSize = 12;

/// XORs the keystream into `data` in place, starting at block `counter`.
void chacha20_xor(const std::array<uint8_t, kChaChaKeySize>& key,
                  const std::array<uint8_t, kChaChaNonceSize>& nonce,
                  uint32_t counter, std::span<uint8_t> data) noexcept;

/// Encrypt/decrypt (identical) returning a fresh buffer.
Bytes chacha20(BytesView key, BytesView nonce, uint32_t counter,
               BytesView data);

/// Raw keystream block generator, exposed for the DRBG.
void chacha20_block(const std::array<uint8_t, kChaChaKeySize>& key,
                    const std::array<uint8_t, kChaChaNonceSize>& nonce,
                    uint32_t counter, std::array<uint8_t, 64>& out) noexcept;

/// Writes out.size() bytes of raw keystream starting at block `counter`.
/// Dispatches 256-byte spans to the 4-block AVX2 kernel when available;
/// the DRBG refill path.
void chacha20_keystream(const std::array<uint8_t, kChaChaKeySize>& key,
                        const std::array<uint8_t, kChaChaNonceSize>& nonce,
                        uint32_t counter, std::span<uint8_t> out) noexcept;

/// The keystream kernel variant chacha20_xor dispatches bulk spans to on
/// this host right now: "avx2" or "generic" (scalar RFC 8439 core).
/// Benchmarks record this in their JSON context.
[[nodiscard]] const char* chacha20_kernel_name() noexcept;

}  // namespace hcpp::cipher
