// Deterministic random bit generator built on ChaCha20 keystream with
// SHA-256-based (re)seeding. Doubles as:
//   * the system CSPRNG (seeded from std::random_device), and
//   * a reproducible stream for tests and the paper's PRG-randomized upload
//     scheduler (§VI.C), which only needs a seedable PRG.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/random.h"

namespace hcpp::cipher {

class Drbg final : public RandomSource {
 public:
  /// Deterministic instance from an arbitrary seed.
  explicit Drbg(BytesView seed);
  /// OS-entropy-seeded instance.
  static Drbg system();

  void fill(std::span<uint8_t> out) override;

  /// Mixes fresh entropy into the state.
  void reseed(BytesView entropy);

 private:
  void next_block();

  std::array<uint8_t, 32> key_{};
  std::array<uint8_t, 12> nonce_{};
  uint32_t counter_ = 0;
  std::array<uint8_t, 64> block_{};
  size_t block_pos_ = 64;  // forces generation on first use
};

}  // namespace hcpp::cipher
