// Deterministic random bit generator built on ChaCha20 keystream with
// SHA-256-based (re)seeding. Doubles as:
//   * the system CSPRNG (seeded from std::random_device), and
//   * a reproducible stream for tests and the paper's PRG-randomized upload
//     scheduler (§VI.C), which only needs a seedable PRG.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/common/random.h"

namespace hcpp::cipher {

class Drbg final : public RandomSource {
 public:
  /// Deterministic instance from an arbitrary seed.
  explicit Drbg(BytesView seed);
  /// OS-entropy-seeded instance.
  static Drbg system();

  void fill(std::span<uint8_t> out) override;

  /// Mixes fresh entropy into the state.
  void reseed(BytesView entropy);

 private:
  void refill();

  std::array<uint8_t, 32> key_{};
  std::array<uint8_t, 12> nonce_{};
  uint32_t counter_ = 0;
  // Up to four keystream blocks are generated per refill (the 4-block AVX2
  // kernel's granularity); the stream of bytes produced is identical to the
  // old one-block-at-a-time generator, including the key-ratchet timing at
  // the 32-bit counter wrap.
  std::array<uint8_t, 256> block_{};
  size_t block_fill_ = 0;  // valid bytes in block_
  size_t block_pos_ = 0;   // consumed bytes; == block_fill_ forces a refill
};

}  // namespace hcpp::cipher
