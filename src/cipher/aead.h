// Authenticated encryption: encrypt-then-MAC over ChaCha20 + HMAC-SHA256,
// with a random nonce prepended to the ciphertext. This realises the paper's
// semantically secure symmetric encryption E' for PHI files and for the
// protected key-transport messages in privilege assignment.
#pragma once

#include <stdexcept>

#include "src/common/bytes.h"
#include "src/common/random.h"

namespace hcpp::cipher {

inline constexpr size_t kAeadKeySize = 32;
/// nonce (12) + tag (32)
inline constexpr size_t kAeadOverhead = 12 + 32;

/// key must be 32 bytes. Output layout: nonce || ciphertext || tag.
Bytes aead_encrypt(BytesView key, BytesView plaintext, BytesView aad,
                   RandomSource& rng);

/// Deterministic variant with caller-supplied 12-byte nonce (used by the SSE
/// index where node positions must be reproducible).
Bytes aead_encrypt_with_nonce(BytesView key, BytesView nonce,
                              BytesView plaintext, BytesView aad);

/// Throws hcpp::cipher::AuthError on tag mismatch or malformed input.
Bytes aead_decrypt(BytesView key, BytesView box, BytesView aad);

/// Tag-failure exception: distinguishes tampering from other logic errors so
/// protocol code can convert it into a protocol-level rejection.
struct AuthError : std::runtime_error {
  AuthError() : std::runtime_error("AEAD authentication failed") {}
};

}  // namespace hcpp::cipher
