// Tamper-evident break-the-glass audit ledger (§V.A, ROADMAP item 5).
//
// The paper's accountability artifacts — the A-server trace TR and the
// P-device record RD — used to live as loose in-memory vectors: a compromised
// or crashed holder could silently drop, reorder or truncate the emergency
// access history and audit() would only ever notice bad signatures. This
// module rebuilds them as a verifiable data structure, reproduced without a
// chain (cf. the blockchain-EHR literature in PAPERS.md):
//
//   * append-only hash chain — entry i commits to entry i-1's hash and a
//     monotone sequence number, so truncation, reordering, forks and
//     gap-in-sequence tampering are all detectable from the log alone;
//   * Merkle tree over the entry hashes — O(log n) inclusion proofs let an
//     auditor check one access against a signed checkpoint without replaying
//     the whole log;
//   * epoch checkpoints (anchor.h) — IBS-signed digests of a chain prefix,
//     countersigned hospital → state → federal, that pin the history a
//     holder can no longer rewrite;
//   * a patient notification stream — every appended emergency-access event
//     is queued for the patient's phone (the MediTrust-style "the moment the
//     data is accessed, the patient is alerted" guarantee);
//   * a crash-safe write-ahead log — append() flushes one frame per entry;
//     recover() replays the file, discards a torn tail, and verifies the
//     surviving prefix against the last anchored checkpoint.
//
// The ledger layer is deliberately core-agnostic: events carry plain fields
// (actor, subject pseudonym, keywords, timestamps, an embedded signature)
// and core::accountability converts TraceRecord/RdRecord to and from them.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"

namespace hcpp::ledger {

inline constexpr size_t kHashSize = 32;

/// What kind of accountability artifact an event mirrors.
enum class EventKind : uint8_t {
  kTrace = 1,   // A-server TR: a physician requested emergency access
  kAccess = 2,  // P-device RD: a physician searched the patient's PHI
};

/// One emergency-access event, the ledger's payload unit.
struct AccessEvent {
  EventKind kind = EventKind::kAccess;
  std::string actor_id;               // physician
  Bytes subject;                      // patient pseudonym TPp (serialized)
  std::vector<std::string> keywords;  // searched keywords (empty for TR)
  uint64_t t10 = 0;                   // request timestamp (TR only)
  uint64_t t11 = 0;                   // passcode-issue timestamp
  Bytes sig;  // embedded IBS evidence (physician's for TR, A-server's for RD)

  [[nodiscard]] Bytes to_bytes() const;
  static AccessEvent from_bytes(BytesView b);
};

/// One chain entry. `payload` is the canonical AccessEvent encoding — the
/// bytes the hash commits to — so re-serialization can never drift.
struct LedgerEntry {
  uint64_t seq = 0;
  Bytes payload;
  Bytes prev_hash;   // kHashSize; genesis_hash() for seq 0
  Bytes entry_hash;  // H(domain ‖ seq ‖ payload ‖ prev_hash)

  [[nodiscard]] AccessEvent event() const { return AccessEvent::from_bytes(payload); }
};

/// Recomputes what `entry.entry_hash` must be.
Bytes entry_hash(uint64_t seq, BytesView payload, BytesView prev_hash);

/// Outcome of a chain or anchor verification. `ok()` means no defect; every
/// defect names the first offending sequence number so chaos tests can
/// assert *which* tampering was detected, not just that something failed.
struct ChainVerdict {
  enum class Defect : uint8_t {
    kNone = 0,
    kGap,        // sequence numbers skip or repeat (entry removed/reordered)
    kBrokenLink, // prev_hash does not match the previous entry's hash
    kBadHash,    // entry_hash does not match the recomputed commitment
    kTruncated,  // chain is shorter than an anchored checkpoint's count
    kForked,     // chain diverges from an anchored checkpoint's digest
  };
  Defect defect = Defect::kNone;
  uint64_t at_seq = 0;   // first offending sequence number
  uint64_t checked = 0;  // entries verified before the defect (all, when ok)
  std::string detail;

  [[nodiscard]] bool ok() const noexcept { return defect == Defect::kNone; }
};

[[nodiscard]] const char* to_string(ChainVerdict::Defect d) noexcept;

/// Merkle inclusion proof for entry `seq` within the first `count` entries.
/// `path` is the sibling chain leaf→root: (sibling_is_left, sibling_hash).
struct InclusionProof {
  uint64_t seq = 0;
  uint64_t count = 0;
  Bytes leaf;  // the entry hash being proven
  std::vector<std::pair<bool, Bytes>> path;
};

/// Signed digest of a chain prefix, the unit that gets anchored up the
/// authority hierarchy. `statement()` is the canonical byte string every
/// anchoring authority signs.
struct Checkpoint {
  std::string ledger_id;
  uint64_t epoch = 0;
  uint64_t count = 0;  // entries covered: [0, count)
  Bytes head_hash;     // entry_hash of entry count-1
  Bytes merkle_root;   // Merkle root over entry hashes [0, count)
  uint64_t t = 0;

  [[nodiscard]] Bytes statement() const;
  [[nodiscard]] Bytes to_bytes() const;
  static Checkpoint from_bytes(BytesView b);
};

/// One authority's countersignature on a checkpoint statement.
struct AnchorSignature {
  std::string authority_id;
  Bytes sig;  // serialized ibc::IbsSignature over Checkpoint::statement()
};

/// A checkpoint plus the full hospital → state → federal signature chain.
struct AnchoredCheckpoint {
  Checkpoint cp;
  std::vector<AnchorSignature> sigs;  // in anchoring order

  [[nodiscard]] Bytes to_bytes() const;
  static AnchoredCheckpoint from_bytes(BytesView b);
};

/// Patient-alert queue element (§VI.A countermeasure, MediTrust-style).
struct Notification {
  uint64_t seq = 0;
  AccessEvent event;
};

/// What recover() found in a write-ahead log.
struct RecoveryReport {
  size_t entries = 0;        // chain entries replayed
  size_t anchors = 0;        // anchored checkpoints replayed
  size_t torn_bytes = 0;     // trailing bytes discarded as a torn write
  bool tail_discarded = false;
};

// ---------------------------------------------------------------------------
class Ledger {
 public:
  explicit Ledger(std::string id = "ledger");

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<LedgerEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const LedgerEntry& entry(uint64_t seq) const {
    return entries_.at(seq);
  }
  /// Hash of the newest entry; genesis_hash() when empty.
  [[nodiscard]] Bytes head_hash() const;
  static Bytes genesis_hash();

  /// Appends one event, returns its sequence number. When a WAL is attached
  /// the frame is written and flushed before the in-memory state changes, so
  /// a crash can only ever lose (tear) the newest entry.
  uint64_t append(const AccessEvent& ev);

  // ---- verification -------------------------------------------------------
  /// Recomputes every commitment: sequence monotonicity, prev-hash links and
  /// entry hashes. Detects gaps, reorderings and payload tampering.
  [[nodiscard]] ChainVerdict verify_chain() const;
  /// Chain check plus comparison against an anchored checkpoint: a chain
  /// shorter than the anchored count is kTruncated; one whose prefix digest
  /// differs from the anchored root is kForked.
  [[nodiscard]] ChainVerdict verify_against(const AnchoredCheckpoint& anchor) const;

  // ---- Merkle proofs ------------------------------------------------------
  /// Root over entry hashes [0, count); count ≤ size(), count ≥ 1.
  [[nodiscard]] Bytes merkle_root(uint64_t count) const;
  /// O(log n)-sized inclusion proof for `seq` within [0, count).
  [[nodiscard]] InclusionProof prove(uint64_t seq, uint64_t count) const;
  /// Auditor side: recompute the root from the proof and compare.
  static bool verify_proof(BytesView root, const InclusionProof& proof);

  // ---- checkpoints --------------------------------------------------------
  /// The checkpoint for `epoch`, created on first call and pinned until the
  /// epoch is anchored: retried anchoring must present the *identical*
  /// statement (entries appended meanwhile roll into the next epoch).
  Checkpoint checkpoint_for_epoch(uint64_t epoch, uint64_t now);
  /// Records a fully countersigned checkpoint (and WAL-persists it).
  void record_anchor(AnchoredCheckpoint anchor);
  [[nodiscard]] const std::vector<AnchoredCheckpoint>& anchors() const noexcept {
    return anchors_;
  }
  [[nodiscard]] const AnchoredCheckpoint* last_anchor() const noexcept {
    return anchors_.empty() ? nullptr : &anchors_.back();
  }
  [[nodiscard]] const AnchoredCheckpoint* anchor_for_epoch(uint64_t epoch) const;

  // ---- patient notification stream ---------------------------------------
  /// Emergency-access events queued since the last drain (kAccess kind; TR
  /// traces notify too — the patient wants to know either way).
  std::vector<Notification> drain_notifications();
  [[nodiscard]] size_t pending_notifications() const noexcept {
    return notifications_.size();
  }

  // ---- crash-safe persistence --------------------------------------------
  /// Attaches a write-ahead log at `path` (created if missing; existing
  /// frames are NOT replayed — use recover() for that). Every subsequent
  /// append()/record_anchor() writes-and-flushes one frame.
  bool attach_wal(const std::string& path);
  /// Replays a WAL: reads frames until the first torn/invalid one, truncates
  /// the file to the last valid frame (discarding the torn tail), and
  /// returns a ledger with the WAL re-attached for further appends. Replay
  /// validates each frame against the chain as it goes, so the survivor is
  /// the longest chain-consistent prefix; whether that prefix reaches the
  /// last *anchored* checkpoint is the auditor's question — verify_against()
  /// reports kTruncated/kForked when it does not.
  static Ledger recover(const std::string& path, std::string id,
                        RecoveryReport* report = nullptr);

  /// Adopts entries verbatim — no recomputation, no WAL. This is how tests
  /// (and the recovery path) materialize arbitrary — possibly tampered —
  /// chains for verify_chain()/audit to judge.
  static Ledger from_entries(std::string id, std::vector<LedgerEntry> entries);

 private:
  void wal_frame(uint8_t type, BytesView body);

  std::string id_;
  std::vector<LedgerEntry> entries_;
  std::vector<AnchoredCheckpoint> anchors_;
  std::map<uint64_t, Checkpoint> pending_checkpoints_;
  std::vector<Notification> notifications_;
  std::string wal_path_;
  std::ofstream wal_;
};

}  // namespace hcpp::ledger
