#include "src/ledger/anchor.h"

#include "src/hash/sha256.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace hcpp::ledger {

namespace {
constexpr const char* kProtocol = "ledger.anchor";
}

std::vector<std::string> default_anchor_authorities() {
  return {"hospital-anchor", "state-anchor", "federal-anchor"};
}

// ---- AnchorAuthority -------------------------------------------------------

AnchorAuthority::AnchorAuthority(const ibc::PublicParams& pub, std::string id,
                                 curve::Point signing_key)
    : pub_(pub),
      id_(std::move(id)),
      key_(std::move(signing_key)),
      rng_(to_bytes("hcpp-anchor-authority-" + id_)) {}

std::optional<Bytes> AnchorAuthority::handle_anchor(
    const AnchoredCheckpoint& partial) {
  Bytes stmt = partial.cp.statement();

  // Lower levels must have countersigned this exact statement; a forged or
  // transplanted signature chain is an authoritative rejection.
  for (const AnchorSignature& s : partial.sigs) {
    ibc::IbsSignature sig;
    try {
      sig = ibc::IbsSignature::from_bytes(*pub_.ctx, s.sig);
    } catch (const std::exception&) {
      return std::nullopt;
    }
    if (!ibc::ibs_verify(pub_, s.authority_id, stmt, sig)) {
      return std::nullopt;
    }
  }

  auto key = std::make_pair(partial.cp.ledger_id, partial.cp.epoch);
  auto it = accepted_.find(key);
  if (it != accepted_.end()) {
    if (it->second.first == stmt) return it->second.second;  // idempotent
    // Conflicting statement for an epoch we already signed: refuse, and keep
    // both statements — the pair is the divergence proof.
    divergence_.push_back(
        {partial.cp.ledger_id, partial.cp.epoch, it->second.first, stmt});
    obs::count(obs::kLedgerAnchorDivergence);
    return std::nullopt;
  }

  Bytes sig = ibc::ibs_sign(*pub_.ctx, key_, id_, stmt, rng_).to_bytes();
  accepted_.emplace(std::move(key), std::make_pair(std::move(stmt), sig));
  return sig;
}

// ---- AnchorChain -----------------------------------------------------------

AnchorChain::AnchorChain(const ibc::Domain& domain,
                         std::vector<std::string> ids)
    : pub_(domain.pub()), ids_(std::move(ids)) {
  authorities_.reserve(ids_.size());
  for (const std::string& id : ids_) {
    authorities_.emplace_back(pub_, id, domain.extract(id));
  }
}

AnchorOutcome AnchorChain::anchor_checkpoint(sim::Transport& transport,
                                             const std::string& from,
                                             Checkpoint cp) {
  obs::Span span("ledger:", "anchor");
  AnchorOutcome out;
  AnchoredCheckpoint partial;
  partial.cp = std::move(cp);
  Bytes stmt = partial.cp.statement();

  for (AnchorAuthority& authority : authorities_) {
    // The key names (statement, authority): retries of the same statement
    // are answered from the cache; a conflicting statement gets a fresh key
    // and must face the authority's acceptance map.
    Bytes idem = hash::sha256_bytes(
        concat(stmt, to_bytes(std::string("|") + authority.id())));
    auto call = transport.request<Bytes>(
        from, authority.id(), partial.to_bytes().size(), idem, kProtocol,
        [&]() { return authority.handle_anchor(partial); },
        [](const Bytes& sig) { return sig.size(); });
    if (call.status == sim::CallStatus::kRejected) {
      out.divergence = true;
      out.detail = "authority " + authority.id() +
                   " refused the checkpoint for epoch " +
                   std::to_string(partial.cp.epoch);
      return out;
    }
    if (call.status != sim::CallStatus::kOk) {
      out.detail = "anchoring exhausted retries at authority " +
                   authority.id() + " (transient; retry the epoch)";
      return out;
    }
    partial.sigs.push_back({authority.id(), *call.response});
  }
  out.anchored = true;
  out.anchor = std::move(partial);
  return out;
}

std::vector<AnchorAuthority::Divergence> AnchorChain::divergence_log() const {
  std::vector<AnchorAuthority::Divergence> all;
  for (const AnchorAuthority& a : authorities_) {
    all.insert(all.end(), a.divergence_log().begin(),
               a.divergence_log().end());
  }
  return all;
}

// ---- drivers ---------------------------------------------------------------

AnchorOutcome anchor_epoch(Ledger& led, AnchorChain& chain,
                           sim::Transport& transport, const std::string& from,
                           uint64_t epoch, uint64_t now) {
  obs::count(obs::kLedgerAnchorAttempts);
  if (const AnchoredCheckpoint* existing = led.anchor_for_epoch(epoch)) {
    AnchorOutcome out;
    out.anchored = true;
    out.anchor = *existing;
    out.detail = "epoch already anchored";
    return out;
  }
  Checkpoint cp = led.checkpoint_for_epoch(epoch, now);
  AnchorOutcome out = chain.anchor_checkpoint(transport, from, std::move(cp));
  if (out.anchored) led.record_anchor(*out.anchor);
  return out;
}

bool verify_anchor_sigs(const ibc::PublicParams& pub,
                        const AnchoredCheckpoint& anchored,
                        std::span<const std::string> expected_authorities,
                        par::ThreadPool* pool) {
  if (anchored.sigs.size() != expected_authorities.size()) return false;
  Bytes stmt = anchored.cp.statement();
  std::vector<ibc::IbsBatchItem> items;
  items.reserve(anchored.sigs.size());
  for (size_t i = 0; i < anchored.sigs.size(); ++i) {
    if (anchored.sigs[i].authority_id != expected_authorities[i]) {
      return false;
    }
    ibc::IbsBatchItem item;
    item.id = anchored.sigs[i].authority_id;
    item.message = stmt;
    try {
      item.sig = ibc::IbsSignature::from_bytes(*pub.ctx, anchored.sigs[i].sig);
    } catch (const std::exception&) {
      return false;
    }
    items.push_back(std::move(item));
  }
  std::vector<uint8_t> ok = ibc::ibs_verify_batch(pub, items, pool);
  for (uint8_t good : ok) {
    if (good == 0) return false;
  }
  return true;
}

}  // namespace hcpp::ledger
