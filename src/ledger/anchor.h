// Checkpoint anchoring up the authority hierarchy (hospital → state →
// federal). Each level is an AnchorAuthority holding an IBS key extracted
// from the state domain; anchoring a checkpoint walks the chain in order,
// collecting one countersignature per level over the *same* canonical
// Checkpoint::statement(). An anchored checkpoint pins a ledger prefix: the
// holder can no longer truncate or rewrite history below it without
// verify_against() reporting kTruncated/kForked.
//
// Exactly-once under a faulty network, by three composing layers:
//   1. sim::Transport idempotency — the request key is H(statement ‖
//      authority), so wire duplicates and honest retries of the same
//      statement never re-execute the handler;
//   2. authority-side acceptance map — an authority signs one statement per
//      (ledger, epoch), returns the identical signature on re-presentation,
//      and refuses (recording divergence evidence) when a *conflicting*
//      statement arrives for an epoch it already signed;
//   3. ledger-side checkpoint pinning — Ledger::checkpoint_for_epoch()
//      returns the identical statement across retries until the epoch
//      anchors, so a partially-anchored epoch resumes instead of forking.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/cipher/drbg.h"
#include "src/ibc/ibs.h"
#include "src/ledger/ledger.h"
#include "src/sim/transport.h"

namespace hcpp::par {
class ThreadPool;
}

namespace hcpp::ledger {

/// The canonical three-level hierarchy: hospital office → state registry →
/// federal registry. Tests, Deployment and the CLI all anchor through these
/// identities so partitions/downtime address well-known node names.
std::vector<std::string> default_anchor_authorities();

/// One level of the anchoring hierarchy. In-process server endpoint: the
/// transport charges the wire legs, handle_anchor() is the handler.
class AnchorAuthority {
 public:
  /// Conflicting statement seen for an epoch this authority already signed —
  /// the proof a fork was attempted (or that the requester lost its state).
  struct Divergence {
    std::string ledger_id;
    uint64_t epoch = 0;
    Bytes accepted_statement;  // what this authority signed first
    Bytes offered_statement;   // the conflicting re-presentation
  };

  AnchorAuthority(const ibc::PublicParams& pub, std::string id,
                  curve::Point signing_key);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

  /// Verifies every countersignature already on `partial` (lower levels must
  /// have signed the same statement), then signs it. Returns the serialized
  /// IbsSignature, or nullopt for an authoritative rejection: a bad lower
  /// signature, or a conflicting statement for an already-signed epoch.
  std::optional<Bytes> handle_anchor(const AnchoredCheckpoint& partial);

  [[nodiscard]] const std::vector<Divergence>& divergence_log() const noexcept {
    return divergence_;
  }

 private:
  ibc::PublicParams pub_;
  std::string id_;
  curve::Point key_;
  cipher::Drbg rng_;
  // (ledger_id, epoch) → (statement signed, serialized signature).
  std::map<std::pair<std::string, uint64_t>, std::pair<Bytes, Bytes>>
      accepted_;
  std::vector<Divergence> divergence_;
};

/// What one anchoring drive concluded. Exactly one of `anchored` /
/// `divergence` / transient failure (both false) holds.
struct AnchorOutcome {
  bool anchored = false;    // full signature chain collected and recorded
  bool divergence = false;  // an authority refused: conflicting statement
  std::optional<AnchoredCheckpoint> anchor;
  std::string detail;
};

/// The ordered hierarchy. Owns the authorities; every signing key comes from
/// the same state IBC domain, so one PublicParams verifies the whole chain.
class AnchorChain {
 public:
  AnchorChain(const ibc::Domain& domain, std::vector<std::string> ids);

  [[nodiscard]] const std::vector<std::string>& authority_ids() const noexcept {
    return ids_;
  }
  [[nodiscard]] std::vector<AnchorAuthority>& authorities() noexcept {
    return authorities_;
  }
  [[nodiscard]] const ibc::PublicParams& pub() const noexcept { return pub_; }

  /// Walks the hierarchy in order over the retrying transport, collecting
  /// countersignatures on `cp`. Transient exhaustion returns a retriable
  /// outcome (anchored == divergence == false) — already-collected
  /// signatures are re-fetched idempotently on the next drive.
  AnchorOutcome anchor_checkpoint(sim::Transport& transport,
                                  const std::string& from, Checkpoint cp);

  /// All divergence evidence across the chain's authorities.
  [[nodiscard]] std::vector<AnchorAuthority::Divergence> divergence_log()
      const;

 private:
  ibc::PublicParams pub_;
  std::vector<std::string> ids_;
  std::vector<AnchorAuthority> authorities_;
};

/// Drives one epoch of `led` up the chain: pin (or re-load) the epoch's
/// checkpoint, collect the signature chain, record the anchor. Idempotent —
/// an already-anchored epoch short-circuits to success.
AnchorOutcome anchor_epoch(Ledger& led, AnchorChain& chain,
                           sim::Transport& transport, const std::string& from,
                           uint64_t epoch, uint64_t now);

/// Auditor side: checks the anchored checkpoint carries exactly the expected
/// authority chain, batch-verifying all IBS countersignatures over the
/// statement (ibc::ibs_verify_batch; `pool` parallelizes, nullptr = serial).
bool verify_anchor_sigs(const ibc::PublicParams& pub,
                        const AnchoredCheckpoint& anchored,
                        std::span<const std::string> expected_authorities,
                        par::ThreadPool* pool = nullptr);

}  // namespace hcpp::ledger
