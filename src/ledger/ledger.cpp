#include "src/ledger/ledger.h"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "src/common/serialize.h"
#include "src/hash/sha256.h"
#include "src/obs/metrics.h"

namespace hcpp::ledger {

static_assert(kHashSize == hash::kSha256DigestSize);

namespace {

constexpr char kWalMagic[] = {'H', 'C', 'P', 'L', '\x01'};
constexpr size_t kWalMagicSize = sizeof(kWalMagic);
constexpr uint8_t kFrameEntry = 'E';
constexpr uint8_t kFrameAnchor = 'A';
constexpr uint8_t kFramePending = 'P';

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Domain-separated Merkle hashing (second-preimage hardening): leaves and
// interior nodes can never be confused for one another.
Bytes leaf_hash(BytesView entry_hash) {
  Bytes b;
  b.push_back(0x00);
  append(b, entry_hash);
  return hash::sha256_bytes(b);
}

Bytes node_hash(BytesView left, BytesView right) {
  Bytes b;
  b.push_back(0x01);
  append(b, left);
  append(b, right);
  return hash::sha256_bytes(b);
}

}  // namespace

// ---- AccessEvent -----------------------------------------------------------

Bytes AccessEvent::to_bytes() const {
  io::Writer w;
  w.u8(static_cast<uint8_t>(kind));
  w.str(actor_id);
  w.bytes(subject);
  w.u32(static_cast<uint32_t>(keywords.size()));
  for (const std::string& kw : keywords) w.str(kw);
  w.u64(t10);
  w.u64(t11);
  w.bytes(sig);
  return w.take();
}

AccessEvent AccessEvent::from_bytes(BytesView b) {
  io::Reader r(b);
  AccessEvent ev;
  ev.kind = static_cast<EventKind>(r.u8());
  if (ev.kind != EventKind::kTrace && ev.kind != EventKind::kAccess) {
    throw std::invalid_argument("AccessEvent: unknown kind");
  }
  ev.actor_id = r.str();
  ev.subject = r.bytes();
  size_t n = r.count32(/*min_elem_bytes=*/4);
  ev.keywords.reserve(n);
  for (size_t i = 0; i < n; ++i) ev.keywords.push_back(r.str());
  ev.t10 = r.u64();
  ev.t11 = r.u64();
  ev.sig = r.bytes();
  return ev;
}

// ---- hashing ---------------------------------------------------------------

Bytes entry_hash(uint64_t seq, BytesView payload, BytesView prev_hash) {
  io::Writer w;
  w.str("hcpp-ledger-entry");
  w.u64(seq);
  w.bytes(payload);
  w.raw(prev_hash);
  return hash::sha256_bytes(w.data());
}

const char* to_string(ChainVerdict::Defect d) noexcept {
  switch (d) {
    case ChainVerdict::Defect::kNone: return "none";
    case ChainVerdict::Defect::kGap: return "gap";
    case ChainVerdict::Defect::kBrokenLink: return "broken-link";
    case ChainVerdict::Defect::kBadHash: return "bad-hash";
    case ChainVerdict::Defect::kTruncated: return "truncated";
    case ChainVerdict::Defect::kForked: return "forked";
  }
  return "unknown";
}

// ---- Checkpoint / AnchoredCheckpoint ---------------------------------------

Bytes Checkpoint::statement() const {
  io::Writer w;
  w.str("hcpp-ledger-checkpoint");
  w.str(ledger_id);
  w.u64(epoch);
  w.u64(count);
  w.raw(head_hash);
  w.raw(merkle_root);
  w.u64(t);
  return w.take();
}

Bytes Checkpoint::to_bytes() const {
  io::Writer w;
  w.str(ledger_id);
  w.u64(epoch);
  w.u64(count);
  w.bytes(head_hash);
  w.bytes(merkle_root);
  w.u64(t);
  return w.take();
}

Checkpoint Checkpoint::from_bytes(BytesView b) {
  io::Reader r(b);
  Checkpoint cp;
  cp.ledger_id = r.str();
  cp.epoch = r.u64();
  cp.count = r.u64();
  cp.head_hash = r.bytes();
  cp.merkle_root = r.bytes();
  cp.t = r.u64();
  if (cp.head_hash.size() != kHashSize || cp.merkle_root.size() != kHashSize) {
    throw std::invalid_argument("Checkpoint: malformed digest widths");
  }
  return cp;
}

Bytes AnchoredCheckpoint::to_bytes() const {
  io::Writer w;
  w.bytes(cp.to_bytes());
  w.u32(static_cast<uint32_t>(sigs.size()));
  for (const AnchorSignature& s : sigs) {
    w.str(s.authority_id);
    w.bytes(s.sig);
  }
  return w.take();
}

AnchoredCheckpoint AnchoredCheckpoint::from_bytes(BytesView b) {
  io::Reader r(b);
  AnchoredCheckpoint a;
  a.cp = Checkpoint::from_bytes(r.bytes());
  size_t n = r.count32(/*min_elem_bytes=*/8);
  a.sigs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    AnchorSignature s;
    s.authority_id = r.str();
    s.sig = r.bytes();
    a.sigs.push_back(std::move(s));
  }
  return a;
}

// ---- Ledger ----------------------------------------------------------------

Ledger::Ledger(std::string id) : id_(std::move(id)) {}

Bytes Ledger::genesis_hash() {
  return hash::sha256_bytes(to_bytes("hcpp-ledger-genesis"));
}

Bytes Ledger::head_hash() const {
  return entries_.empty() ? genesis_hash() : entries_.back().entry_hash;
}

uint64_t Ledger::append(const AccessEvent& ev) {
  double t0 = obs::recording() ? steady_ns() : 0.0;
  LedgerEntry e;
  e.seq = entries_.size();
  e.payload = ev.to_bytes();
  e.prev_hash = head_hash();
  e.entry_hash = entry_hash(e.seq, e.payload, e.prev_hash);
  // WAL first: a crash between the flush and the in-memory push loses only
  // volatile state — the entry is replayed on recovery. A crash mid-flush
  // leaves a torn frame that recovery discards.
  if (wal_.is_open()) {
    io::Writer body;
    body.u64(e.seq);
    body.bytes(e.payload);
    body.raw(e.prev_hash);
    body.raw(e.entry_hash);
    wal_frame(kFrameEntry, body.data());
  }
  uint64_t seq = e.seq;
  notifications_.push_back({seq, ev});
  entries_.push_back(std::move(e));
  obs::count(obs::kLedgerAppends);
  obs::count(obs::kLedgerNotifications);
  if (obs::recording()) obs::observe(obs::kLedgerAppendNs, steady_ns() - t0);
  return seq;
}

ChainVerdict Ledger::verify_chain() const {
  double t0 = obs::recording() ? steady_ns() : 0.0;
  ChainVerdict v;
  Bytes prev = genesis_hash();
  for (size_t i = 0; i < entries_.size(); ++i) {
    const LedgerEntry& e = entries_[i];
    if (e.seq != i) {
      v.defect = ChainVerdict::Defect::kGap;
      v.at_seq = i;
      v.detail = "expected seq " + std::to_string(i) + ", found " +
                 std::to_string(e.seq);
      break;
    }
    if (e.prev_hash != prev) {
      v.defect = ChainVerdict::Defect::kBrokenLink;
      v.at_seq = i;
      v.detail = "prev-hash link broken at seq " + std::to_string(i);
      break;
    }
    if (e.entry_hash != entry_hash(e.seq, e.payload, e.prev_hash)) {
      v.defect = ChainVerdict::Defect::kBadHash;
      v.at_seq = i;
      v.detail = "entry commitment mismatch at seq " + std::to_string(i);
      break;
    }
    prev = e.entry_hash;
    ++v.checked;
  }
  if (obs::recording()) {
    obs::observe(obs::kLedgerChainVerifyNs, steady_ns() - t0);
  }
  return v;
}

ChainVerdict Ledger::verify_against(const AnchoredCheckpoint& anchor) const {
  ChainVerdict v = verify_chain();
  if (!v.ok()) return v;
  const Checkpoint& cp = anchor.cp;
  if (cp.count > entries_.size()) {
    v.defect = ChainVerdict::Defect::kTruncated;
    v.at_seq = entries_.size();
    v.detail = "anchored checkpoint covers " + std::to_string(cp.count) +
               " entries, chain holds " + std::to_string(entries_.size());
    return v;
  }
  if (cp.count == 0) return v;
  if (entries_[cp.count - 1].entry_hash != cp.head_hash ||
      merkle_root(cp.count) != cp.merkle_root) {
    v.defect = ChainVerdict::Defect::kForked;
    v.at_seq = cp.count == 0 ? 0 : cp.count - 1;
    v.detail = "chain prefix diverges from the anchored digest for epoch " +
               std::to_string(cp.epoch);
  }
  return v;
}

Bytes Ledger::merkle_root(uint64_t count) const {
  if (count > entries_.size()) {
    throw std::out_of_range("Ledger::merkle_root: count exceeds size");
  }
  if (count == 0) return Bytes(kHashSize, 0);
  std::vector<Bytes> level;
  level.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    level.push_back(leaf_hash(entries_[i].entry_hash));
  }
  while (level.size() > 1) {
    std::vector<Bytes> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(node_hash(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());  // promote
    level = std::move(next);
  }
  return level.front();
}

InclusionProof Ledger::prove(uint64_t seq, uint64_t count) const {
  if (count > entries_.size() || seq >= count) {
    throw std::out_of_range("Ledger::prove: seq/count out of range");
  }
  InclusionProof proof;
  proof.seq = seq;
  proof.count = count;
  proof.leaf = entries_[seq].entry_hash;
  std::vector<Bytes> level;
  level.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    level.push_back(leaf_hash(entries_[i].entry_hash));
  }
  size_t idx = seq;
  while (level.size() > 1) {
    size_t sibling = (idx % 2 == 0) ? idx + 1 : idx - 1;
    if (sibling < level.size()) {
      proof.path.emplace_back(/*sibling_is_left=*/sibling < idx,
                              level[sibling]);
    }
    // else: odd node promoted unchanged — no sibling at this level.
    std::vector<Bytes> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(node_hash(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    idx /= 2;
    level = std::move(next);
  }
  return proof;
}

bool Ledger::verify_proof(BytesView root, const InclusionProof& proof) {
  double t0 = obs::recording() ? steady_ns() : 0.0;
  Bytes h = leaf_hash(proof.leaf);
  for (const auto& [sibling_is_left, sibling] : proof.path) {
    h = sibling_is_left ? node_hash(sibling, h) : node_hash(h, sibling);
  }
  bool ok = (BytesView(h).size() == root.size()) && ct_equal(h, root);
  if (obs::recording()) {
    obs::observe(obs::kLedgerProofVerifyNs, steady_ns() - t0);
  }
  return ok;
}

Checkpoint Ledger::checkpoint_for_epoch(uint64_t epoch, uint64_t now) {
  if (const AnchoredCheckpoint* a = anchor_for_epoch(epoch)) return a->cp;
  auto it = pending_checkpoints_.find(epoch);
  if (it != pending_checkpoints_.end()) return it->second;
  Checkpoint cp;
  cp.ledger_id = id_;
  cp.epoch = epoch;
  cp.count = entries_.size();
  cp.head_hash = head_hash();
  cp.merkle_root = merkle_root(cp.count);
  cp.t = now;
  if (wal_.is_open()) wal_frame(kFramePending, cp.to_bytes());
  pending_checkpoints_.emplace(epoch, cp);
  obs::count(obs::kLedgerCheckpoints);
  return cp;
}

void Ledger::record_anchor(AnchoredCheckpoint anchor) {
  if (wal_.is_open()) wal_frame(kFrameAnchor, anchor.to_bytes());
  pending_checkpoints_.erase(anchor.cp.epoch);
  anchors_.push_back(std::move(anchor));
  obs::count(obs::kLedgerAnchorsCommitted);
}

const AnchoredCheckpoint* Ledger::anchor_for_epoch(uint64_t epoch) const {
  for (const AnchoredCheckpoint& a : anchors_) {
    if (a.cp.epoch == epoch) return &a;
  }
  return nullptr;
}

std::vector<Notification> Ledger::drain_notifications() {
  std::vector<Notification> out = std::move(notifications_);
  notifications_.clear();
  return out;
}

// ---- WAL -------------------------------------------------------------------

void Ledger::wal_frame(uint8_t type, BytesView body) {
  io::Writer w;
  w.u8(type);
  w.bytes(body);
  wal_.write(reinterpret_cast<const char*>(w.data().data()),
             static_cast<std::streamsize>(w.data().size()));
  wal_.flush();
}

bool Ledger::attach_wal(const std::string& path) {
  std::error_code ec;
  bool fresh = !std::filesystem::exists(path, ec) ||
               std::filesystem::file_size(path, ec) == 0;
  wal_.open(path, std::ios::binary | std::ios::app);
  if (!wal_.is_open()) return false;
  wal_path_ = path;
  if (fresh) {
    wal_.write(kWalMagic, kWalMagicSize);
    wal_.flush();
  }
  return wal_.good();
}

Ledger Ledger::recover(const std::string& path, std::string id,
                       RecoveryReport* report) {
  Ledger led(std::move(id));
  RecoveryReport rep;
  Bytes buf;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (in.is_open()) {
      std::streamsize n = in.tellg();
      buf.resize(static_cast<size_t>(n));
      in.seekg(0);
      in.read(reinterpret_cast<char*>(buf.data()), n);
    }
  }
  size_t good = 0;
  if (buf.size() >= kWalMagicSize &&
      std::memcmp(buf.data(), kWalMagic, kWalMagicSize) == 0) {
    size_t pos = kWalMagicSize;
    good = pos;
    while (pos < buf.size()) {
      // Frame: u8 type ‖ u32 len ‖ body. Anything that does not parse as a
      // full, chain-consistent frame ends the replay — the remainder is the
      // torn tail of an interrupted append.
      if (buf.size() - pos < 5) break;
      uint8_t type = buf[pos];
      uint32_t len = (uint32_t(buf[pos + 1]) << 24) |
                     (uint32_t(buf[pos + 2]) << 16) |
                     (uint32_t(buf[pos + 3]) << 8) | uint32_t(buf[pos + 4]);
      if (buf.size() - pos - 5 < len) break;
      BytesView body(buf.data() + pos + 5, len);
      bool valid = false;
      try {
        if (type == kFrameEntry) {
          io::Reader r(body);
          LedgerEntry e;
          e.seq = r.u64();
          e.payload = r.bytes();
          e.prev_hash = r.raw(kHashSize);
          e.entry_hash = r.raw(kHashSize);
          if (r.done() && e.seq == led.entries_.size() &&
              e.prev_hash == led.head_hash() &&
              e.entry_hash == entry_hash(e.seq, e.payload, e.prev_hash)) {
            led.entries_.push_back(std::move(e));
            ++rep.entries;
            valid = true;
          }
        } else if (type == kFrameAnchor) {
          AnchoredCheckpoint a = AnchoredCheckpoint::from_bytes(body);
          if (a.cp.count <= led.entries_.size() &&
              led.merkle_root(a.cp.count) == a.cp.merkle_root) {
            led.pending_checkpoints_.erase(a.cp.epoch);
            led.anchors_.push_back(std::move(a));
            ++rep.anchors;
            valid = true;
          }
        } else if (type == kFramePending) {
          Checkpoint cp = Checkpoint::from_bytes(body);
          if (cp.count <= led.entries_.size() &&
              led.merkle_root(cp.count) == cp.merkle_root) {
            // Re-pin, so a post-crash re-anchor presents the identical
            // statement any already-signed authority expects.
            led.pending_checkpoints_.emplace(cp.epoch, std::move(cp));
            valid = true;
          }
        }
      } catch (const std::exception&) {
        valid = false;
      }
      if (!valid) break;
      pos += 5 + len;
      good = pos;
    }
  }
  if (good < buf.size()) {
    rep.torn_bytes = buf.size() - good;
    rep.tail_discarded = true;
    std::error_code ec;
    if (good == 0) {
      // No usable magic at all: start the WAL over.
      std::filesystem::remove(path, ec);
    } else {
      std::filesystem::resize_file(path, good, ec);
    }
    obs::count(obs::kLedgerTornTailBytes, rep.torn_bytes);
  }
  obs::count(obs::kLedgerRecoveredEntries, rep.entries);
  led.attach_wal(path);
  if (report != nullptr) *report = rep;
  return led;
}

Ledger Ledger::from_entries(std::string id, std::vector<LedgerEntry> entries) {
  Ledger led(std::move(id));
  led.entries_ = std::move(entries);
  return led;
}

}  // namespace hcpp::ledger
