// Searchable symmetric encryption — the non-adaptive SSE-1 construction of
// Curtmola et al. [17] exactly as instantiated by the paper's Fig. 2, plus
// the ASSIGN/REVOKE privilege extension of §IV.C.
//
// Structures:
//   * Array A — one fixed-size slot per index node. The nodes of the linked
//     list L_i for keyword kw_i are scattered across A by the PRP φ_a; node
//     j is encrypted under the per-node key λ_{i,j-1} carried by node j-1
//     (the head key λ_{i,0} lives in the lookup table). Unused slots are
//     filled with random bytes, so the server sees a uniform array.
//   * Lookup table T — maps the virtual address ϖ_c(kw) to
//     (addr(L_{i,1}) ‖ λ_{i,0}) ⊕ f_b(kw): an O(1) lookup that only the
//     holder of a trapdoor can unmask.
//
// A trapdoor TD(kw) = (ϖ_c(kw), f_b(kw)) lets the server locate and walk
// exactly one list, learning only the matching (encrypted) file ids.
// Privileged entities (family, P-device) submit θ_d-wrapped trapdoors,
// where d is re-keyable via broadcast encryption — revoking an entity
// invalidates every trapdoor it can still produce.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/serialize.h"
#include "src/prf/feistel.h"
#include "src/prf/prf.h"

namespace hcpp::par {
class ThreadPool;
}

namespace hcpp::sse {

using FileId = uint64_t;

/// The patient's SSE secret bundle (§IV.A): a, b, c drive the index; d is
/// the (re-keyable) privilege key; s encrypts file bodies (the paper's E').
struct Keys {
  Bytes a, b, c, d, s;  // 32 bytes each

  static Keys generate(RandomSource& rng);
  [[nodiscard]] Bytes to_bytes() const;
  static Keys from_bytes(BytesView b);
};

/// A plaintext health-record file with its search keywords.
struct PlainFile {
  FileId id = 0;
  std::string name;
  Bytes content;
  std::vector<std::string> keywords;

  [[nodiscard]] Bytes to_bytes() const;
  static PlainFile from_bytes(BytesView b);
};

/// The secure index SI = (A, T).
struct SecureIndex {
  std::vector<Bytes> array_a;  // every slot exactly kNodeSize bytes
  std::unordered_map<std::string, Bytes> table_t;  // hex(vaddr) -> masked

  [[nodiscard]] Bytes to_bytes() const;
  static SecureIndex from_bytes(BytesView b);
  /// Serialized footprint — the O(N) server-side cost of §V.B.1.
  [[nodiscard]] size_t size_bytes() const;
};

/// The encrypted file collection Λ = E'_s(F).
struct EncryptedCollection {
  std::unordered_map<FileId, Bytes> files;

  [[nodiscard]] Bytes to_bytes() const;
  static EncryptedCollection from_bytes(BytesView b);
  [[nodiscard]] size_t size_bytes() const;
};

/// TD(kw) = (ϖ_c(kw), f_b(kw)). The raw encoding carries an integrity tag so
/// the server can reject garbage produced by unwrapping with a stale d.
struct Trapdoor {
  Bytes address;  // 16 bytes: ϖ_c(kw)
  Bytes mask;     // 40 bytes: f_b(kw)

  [[nodiscard]] Bytes to_bytes() const;  // fixed 60-byte encoding
  static std::optional<Trapdoor> from_bytes(BytesView b);  // checks the tag
};

inline constexpr size_t kNodeSize = 49;      // flag ‖ fid ‖ λ ‖ next
inline constexpr size_t kTrapdoorSize = 60;  // address ‖ mask ‖ tag

/// Builds SI per Fig. 2. `padding_factor` >= 1 grows A beyond the exact node
/// count to blunt size leakage (§V discussion).
///
/// With a pool, keyword lists are built and array A filled/permuted in
/// parallel shards; each shard draws its randomness from a DRBG stream
/// forked off `rng`, so the output is reproducible for a given seed and
/// thread count, and search results are identical across thread counts (the
/// index *bytes* differ — only the per-node keys and padding randomness
/// move). `pool == nullptr` is the exact legacy serial schedule.
SecureIndex build_index(std::span<const PlainFile> files, const Keys& keys,
                        RandomSource& rng, double padding_factor = 1.25,
                        par::ThreadPool* pool = nullptr);

/// Λ = E'_s(F): per-file AEAD of the serialized PlainFile. With a pool the
/// per-file encryptions run in parallel shards (forked nonce streams);
/// decrypted plaintexts are identical across thread counts.
EncryptedCollection encrypt_collection(std::span<const PlainFile> files,
                                       const Keys& keys, RandomSource& rng,
                                       par::ThreadPool* pool = nullptr);

/// Decrypts one file blob; throws cipher::AuthError on tampering.
PlainFile decrypt_file(const Keys& keys, BytesView blob);

/// Decrypts a whole collection (parallel per-file AEAD when given a pool),
/// sorted by file id. Tampered blobs are skipped, not fatal.
std::vector<PlainFile> decrypt_collection(const Keys& keys,
                                          const EncryptedCollection& ec,
                                          par::ThreadPool* pool = nullptr);

/// Owner-side trapdoor factory: hoists the ϖ_c PRP and f_b PRF (and their
/// HMAC key schedules) out of the per-keyword loop. Immutable after
/// construction — shareable across threads.
class TrapdoorGen {
 public:
  explicit TrapdoorGen(const Keys& keys);

  [[nodiscard]] Trapdoor make(std::string_view kw) const;
  /// ϖ_c(kw) — the 16-byte virtual address.
  [[nodiscard]] Bytes address(std::string_view kw) const;
  /// f_b(kw) — the 40-byte mask.
  [[nodiscard]] Bytes mask(std::string_view kw) const;

 private:
  prf::FeistelPrp prp_c_;  // ϖ_c
  prf::Prf f_b_;           // f_b
};

/// Owner-side trapdoor generation (one-shot; loops should use TrapdoorGen).
Trapdoor make_trapdoor(const Keys& keys, std::string_view kw);

/// Server-side SEARCH: O(1) table hit + walk of the matching list. Returns
/// the matching file ids (empty when the keyword is absent).
std::vector<FileId> search(const SecureIndex& index, const Trapdoor& td);

/// Batch SEARCH over a read-only index: result[i] = search(index, tds[i]).
/// The index is never written, so with a pool the walks run concurrently
/// without locks.
std::vector<std::vector<FileId>> search_many(const SecureIndex& index,
                                             std::span<const Trapdoor> tds,
                                             par::ThreadPool* pool = nullptr);

// ---- ASSIGN / REVOKE extension ------------------------------------------

/// θ_d(TD): the wrapped trapdoor a privileged entity submits.
Bytes wrap_trapdoor(BytesView d, const Trapdoor& td);

/// Server-side unwrap + validity check; nullopt when `d` is stale (i.e. the
/// submitter has been revoked) or the blob is malformed.
std::optional<Trapdoor> unwrap_trapdoor(BytesView d, BytesView wrapped);

/// Batch unwrap: one θ_d key schedule shared across the whole batch, spread
/// over the pool. result[i] is nullopt exactly when unwrap_trapdoor(d,
/// wrapped[i]) would be.
std::vector<std::optional<Trapdoor>> unwrap_trapdoors(
    BytesView d, std::span<const Bytes> wrapped,
    par::ThreadPool* pool = nullptr);

}  // namespace hcpp::sse
