#include "src/sse/sse.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "src/cipher/aead.h"
#include "src/cipher/chacha20.h"
#include "src/cipher/drbg.h"
#include "src/hash/hmac.h"
#include "src/hash/sha256.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/par/pool.h"

namespace hcpp::sse {

namespace {

constexpr size_t kKeyLen = 32;
constexpr size_t kVaddrLen = 16;
constexpr size_t kMaskLen = 40;  // 8-byte address + 32-byte λ
constexpr size_t kTagLen = 4;

// Node plaintext layout: has_next(1) ‖ fid(8) ‖ λ_next(32) ‖ next_addr(8).
Bytes encode_node(bool has_next, FileId fid, BytesView next_key,
                  uint64_t next_addr) {
  Bytes n;
  n.reserve(kNodeSize);
  n.push_back(has_next ? 1 : 0);
  for (int s = 56; s >= 0; s -= 8) n.push_back(static_cast<uint8_t>(fid >> s));
  append(n, next_key);
  for (int s = 56; s >= 0; s -= 8) {
    n.push_back(static_cast<uint8_t>(next_addr >> s));
  }
  return n;
}

// Per-node encryption: single-use key λ, so a fixed-nonce stream cipher is
// exactly the semantically secure SKE the construction requires and keeps
// slots at kNodeSize bytes.
Bytes crypt_node(BytesView lambda, BytesView node) {
  Bytes nonce(cipher::kChaChaNonceSize, 0);
  return cipher::chacha20(lambda, nonce, 0, node);
}

// Per-shard randomness: fork one deterministic child stream per shard off
// the parent rng. Seeds are drawn serially *before* dispatch, so for a fixed
// parent seed and shard count every worker sees the same stream.
std::vector<cipher::Drbg> fork_streams(RandomSource& rng, size_t shards) {
  std::vector<cipher::Drbg> out;
  out.reserve(shards);
  for (size_t s = 0; s < shards; ++s) out.emplace_back(rng.bytes(32));
  return out;
}

Bytes trapdoor_tag(BytesView address, BytesView mask) {
  Bytes input = concat(address, mask);
  Bytes digest = hash::sha256_bytes(input);
  digest.resize(kTagLen);
  return digest;
}

}  // namespace

Keys Keys::generate(RandomSource& rng) {
  Keys k;
  k.a = rng.bytes(kKeyLen);
  k.b = rng.bytes(kKeyLen);
  k.c = rng.bytes(kKeyLen);
  k.d = rng.bytes(kKeyLen);
  k.s = rng.bytes(kKeyLen);
  return k;
}

Bytes Keys::to_bytes() const {
  io::Writer w;
  w.bytes(a);
  w.bytes(b);
  w.bytes(c);
  w.bytes(d);
  w.bytes(s);
  return w.take();
}

Keys Keys::from_bytes(BytesView bv) {
  io::Reader r(bv);
  Keys k;
  k.a = r.bytes();
  k.b = r.bytes();
  k.c = r.bytes();
  k.d = r.bytes();
  k.s = r.bytes();
  return k;
}

Bytes PlainFile::to_bytes() const {
  io::Writer w;
  w.u64(id);
  w.str(name);
  w.bytes(content);
  w.u32(static_cast<uint32_t>(keywords.size()));
  for (const std::string& kw : keywords) w.str(kw);
  return w.take();
}

PlainFile PlainFile::from_bytes(BytesView bv) {
  io::Reader r(bv);
  PlainFile f;
  f.id = r.u64();
  f.name = r.str();
  f.content = r.bytes();
  size_t n = r.count32(4);  // each keyword: u32 length prefix
  f.keywords.reserve(n);
  for (size_t i = 0; i < n; ++i) f.keywords.push_back(r.str());
  return f;
}

SecureIndex build_index(std::span<const PlainFile> files, const Keys& keys,
                        RandomSource& rng, double padding_factor,
                        par::ThreadPool* pool) {
  if (padding_factor < 1.0) {
    throw std::invalid_argument("build_index: padding_factor < 1");
  }
  obs::Span span("sse:index_build");
  obs::count(obs::kSseIndexBuild);
  // Invert the file->keywords relation (ordered for determinism).
  std::map<std::string, std::vector<FileId>> postings;
  for (const PlainFile& f : files) {
    for (const std::string& kw : f.keywords) postings[kw].push_back(f.id);
  }
  size_t total_nodes = 0;
  for (const auto& [kw, fids] : postings) total_nodes += fids.size();

  SecureIndex si;
  size_t array_size = std::max<size_t>(
      8, static_cast<size_t>(static_cast<double>(total_nodes) *
                             padding_factor));
  si.array_a.assign(array_size, Bytes());
  prf::SmallDomainPrp phi(keys.a, array_size);
  TrapdoorGen gen(keys);

  if (pool == nullptr || pool->size() <= 1) {
    // Legacy serial schedule, byte-for-byte: one rng stream, postings order.
    // A size-1 pool takes this path too, so "single-threaded" always means
    // the exact serial bytes (DESIGN.md §9).
    uint64_t ctr = 0;
    for (const auto& [kw, fids] : postings) {
      Bytes lambda_prev = rng.bytes(kKeyLen);  // λ_{i,0}
      uint64_t head_addr = phi.forward(ctr);
      // T[ϖ_c(kw)] = (head_addr ‖ λ_{i,0}) ⊕ f_b(kw)
      Bytes entry;
      for (int s = 56; s >= 0; s -= 8) {
        entry.push_back(static_cast<uint8_t>(head_addr >> s));
      }
      append(entry, lambda_prev);
      Bytes masked = xor_bytes(entry, gen.mask(kw));
      si.table_t[hex_encode(gen.address(kw))] = masked;

      for (size_t j = 0; j < fids.size(); ++j) {
        uint64_t addr = phi.forward(ctr);
        ++ctr;
        bool has_next = (j + 1 < fids.size());
        uint64_t next_addr = has_next ? phi.forward(ctr) : 0;
        Bytes lambda_next = has_next ? rng.bytes(kKeyLen) : Bytes(kKeyLen, 0);
        Bytes node = encode_node(has_next, fids[j], lambda_next, next_addr);
        si.array_a[addr] = crypt_node(lambda_prev, node);
        lambda_prev = lambda_next;
      }
    }
    for (Bytes& slot : si.array_a) {
      if (slot.empty()) slot = rng.bytes(kNodeSize);
    }
    return si;
  }

  // Sharded build. Keyword i owns the node-counter range
  // [node_start[i], node_start[i] + |L_i|) — the same ctr values the serial
  // schedule would use — so φ scatters nodes to the same distinct addresses
  // regardless of thread count, and every array write lands on a slot no
  // other worker touches. Only λ keys and padding come from the forked
  // per-shard streams; the index *structure* is thread-count-invariant.
  std::vector<std::pair<const std::string*, const std::vector<FileId>*>> kws;
  kws.reserve(postings.size());
  std::vector<uint64_t> node_start;
  node_start.reserve(postings.size());
  uint64_t acc = 0;
  for (const auto& [kw, fids] : postings) {
    kws.emplace_back(&kw, &fids);
    node_start.push_back(acc);
    acc += fids.size();
  }

  size_t kw_shards = pool->shard_count(kws.size());
  std::vector<cipher::Drbg> kw_streams = fork_streams(rng, kw_shards);
  // Per-shard table entries, merged serially after the barrier (the
  // unordered_map is not safe for concurrent insertion).
  std::vector<std::vector<std::pair<std::string, Bytes>>> shard_entries(
      kw_shards);
  pool->for_shards(kws.size(), [&](size_t shard, size_t begin, size_t end) {
    cipher::Drbg& srng = kw_streams[shard];
    auto& entries = shard_entries[shard];
    entries.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const std::string& kw = *kws[i].first;
      const std::vector<FileId>& fids = *kws[i].second;
      uint64_t ctr = node_start[i];
      Bytes lambda_prev = srng.bytes(kKeyLen);
      uint64_t head_addr = phi.forward(ctr);
      Bytes entry;
      for (int s = 56; s >= 0; s -= 8) {
        entry.push_back(static_cast<uint8_t>(head_addr >> s));
      }
      append(entry, lambda_prev);
      entries.emplace_back(hex_encode(gen.address(kw)),
                           xor_bytes(entry, gen.mask(kw)));

      for (size_t j = 0; j < fids.size(); ++j) {
        uint64_t addr = phi.forward(ctr);
        ++ctr;
        bool has_next = (j + 1 < fids.size());
        uint64_t next_addr = has_next ? phi.forward(ctr) : 0;
        Bytes lambda_next = has_next ? srng.bytes(kKeyLen) : Bytes(kKeyLen, 0);
        Bytes node = encode_node(has_next, fids[j], lambda_next, next_addr);
        si.array_a[addr] = crypt_node(lambda_prev, node);
        lambda_prev = lambda_next;
      }
    }
  });
  for (auto& entries : shard_entries) {
    for (auto& [k, v] : entries) si.table_t[k] = std::move(v);
  }

  // Fill unused slots with random bytes so the array looks uniform.
  size_t fill_shards = pool->shard_count(array_size);
  std::vector<cipher::Drbg> fill_streams = fork_streams(rng, fill_shards);
  pool->for_shards(array_size, [&](size_t shard, size_t begin, size_t end) {
    cipher::Drbg& srng = fill_streams[shard];
    for (size_t i = begin; i < end; ++i) {
      if (si.array_a[i].empty()) si.array_a[i] = srng.bytes(kNodeSize);
    }
  });
  return si;
}

EncryptedCollection encrypt_collection(std::span<const PlainFile> files,
                                       const Keys& keys, RandomSource& rng,
                                       par::ThreadPool* pool) {
  EncryptedCollection ec;
  if (pool == nullptr || pool->size() <= 1) {
    for (const PlainFile& f : files) {
      ec.files[f.id] = cipher::aead_encrypt(keys.s, f.to_bytes(), {}, rng);
    }
    return ec;
  }
  size_t shards = pool->shard_count(files.size());
  std::vector<cipher::Drbg> streams = fork_streams(rng, shards);
  std::vector<std::vector<std::pair<FileId, Bytes>>> shard_out(shards);
  pool->for_shards(files.size(), [&](size_t shard, size_t begin, size_t end) {
    cipher::Drbg& srng = streams[shard];
    auto& out = shard_out[shard];
    out.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      out.emplace_back(files[i].id, cipher::aead_encrypt(
                                        keys.s, files[i].to_bytes(), {}, srng));
    }
  });
  for (auto& out : shard_out) {
    for (auto& [id, blob] : out) ec.files[id] = std::move(blob);
  }
  return ec;
}

PlainFile decrypt_file(const Keys& keys, BytesView blob) {
  return PlainFile::from_bytes(cipher::aead_decrypt(keys.s, blob, {}));
}

std::vector<PlainFile> decrypt_collection(const Keys& keys,
                                          const EncryptedCollection& ec,
                                          par::ThreadPool* pool) {
  std::vector<FileId> ids;
  ids.reserve(ec.files.size());
  for (const auto& [id, blob] : ec.files) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::vector<std::optional<PlainFile>> slots(ids.size());
  auto decrypt_one = [&](size_t i) {
    try {
      slots[i] = decrypt_file(keys, ec.files.at(ids[i]));
    } catch (const cipher::AuthError&) {
      // Tampered blob: skip it rather than fail the whole collection.
    }
  };
  if (pool == nullptr) {
    for (size_t i = 0; i < ids.size(); ++i) decrypt_one(i);
  } else {
    pool->parallel_for(ids.size(), decrypt_one);
  }
  std::vector<PlainFile> out;
  out.reserve(ids.size());
  for (auto& slot : slots) {
    if (slot.has_value()) out.push_back(std::move(*slot));
  }
  return out;
}

TrapdoorGen::TrapdoorGen(const Keys& keys)
    : prp_c_(keys.c, kVaddrLen), f_b_(keys.b) {}

// ϖ_c: keyword -> 16-byte virtual address (hash to the PRP's domain, then
// permute, mirroring the paper's PRP-on-padded-keyword).
Bytes TrapdoorGen::address(std::string_view kw) const {
  Bytes h = hash::sha256_bytes(to_bytes(kw));
  h.resize(kVaddrLen);
  return prp_c_.forward(h);
}

// f_b: keyword -> 40-byte mask.
Bytes TrapdoorGen::mask(std::string_view kw) const {
  return f_b_.eval(to_bytes(kw), kMaskLen);
}

Trapdoor TrapdoorGen::make(std::string_view kw) const {
  return Trapdoor{address(kw), mask(kw)};
}

Trapdoor make_trapdoor(const Keys& keys, std::string_view kw) {
  return TrapdoorGen(keys).make(kw);
}

std::vector<FileId> search(const SecureIndex& index, const Trapdoor& td) {
  obs::Span span("sse:search");
  obs::count(obs::kSseSearch);
  std::vector<FileId> result;
  auto it = index.table_t.find(hex_encode(td.address));
  if (it == index.table_t.end()) return result;
  if (it->second.size() != kMaskLen || td.mask.size() != kMaskLen) {
    return result;
  }
  Bytes entry = xor_bytes(it->second, td.mask);
  uint64_t addr = 0;
  for (int i = 0; i < 8; ++i) addr = (addr << 8) | entry[i];
  Bytes lambda(entry.begin() + 8, entry.end());
  // Walk the list; bound iterations by the array size to stay robust against
  // corrupted indexes.
  for (size_t hops = 0; hops < index.array_a.size(); ++hops) {
    if (addr >= index.array_a.size()) break;
    Bytes node = crypt_node(lambda, index.array_a[addr]);
    bool has_next = node[0] == 1;
    FileId fid = 0;
    for (int i = 0; i < 8; ++i) fid = (fid << 8) | node[1 + i];
    result.push_back(fid);
    if (!has_next) break;
    lambda.assign(node.begin() + 9, node.begin() + 9 + 32);
    addr = 0;
    for (int i = 0; i < 8; ++i) addr = (addr << 8) | node[41 + i];
  }
  obs::count(obs::kSseSearchHits, result.size());
  return result;
}

std::vector<std::vector<FileId>> search_many(const SecureIndex& index,
                                             std::span<const Trapdoor> tds,
                                             par::ThreadPool* pool) {
  std::vector<std::vector<FileId>> out(tds.size());
  auto one = [&](size_t i) { out[i] = search(index, tds[i]); };
  if (pool == nullptr) {
    for (size_t i = 0; i < tds.size(); ++i) one(i);
  } else {
    pool->parallel_for(tds.size(), one);
  }
  return out;
}

Bytes Trapdoor::to_bytes() const {
  Bytes out = concat(address, mask);
  append(out, trapdoor_tag(address, mask));
  return out;
}

std::optional<Trapdoor> Trapdoor::from_bytes(BytesView b) {
  if (b.size() != kTrapdoorSize) return std::nullopt;
  Trapdoor td;
  td.address.assign(b.begin(), b.begin() + kVaddrLen);
  td.mask.assign(b.begin() + kVaddrLen, b.begin() + kVaddrLen + kMaskLen);
  Bytes tag(b.begin() + kVaddrLen + kMaskLen, b.end());
  if (!ct_equal(tag, trapdoor_tag(td.address, td.mask))) return std::nullopt;
  return td;
}

Bytes wrap_trapdoor(BytesView d, const Trapdoor& td) {
  prf::FeistelPrp theta(Bytes(d.begin(), d.end()), kTrapdoorSize);
  return theta.forward(td.to_bytes());
}

std::optional<Trapdoor> unwrap_trapdoor(BytesView d, BytesView wrapped) {
  if (wrapped.size() != kTrapdoorSize) return std::nullopt;
  prf::FeistelPrp theta(Bytes(d.begin(), d.end()), kTrapdoorSize);
  return Trapdoor::from_bytes(theta.inverse(wrapped));
}

std::vector<std::optional<Trapdoor>> unwrap_trapdoors(
    BytesView d, std::span<const Bytes> wrapped, par::ThreadPool* pool) {
  // One θ_d key schedule for the whole batch; FeistelPrp is immutable, so
  // the workers share it freely.
  prf::FeistelPrp theta(Bytes(d.begin(), d.end()), kTrapdoorSize);
  std::vector<std::optional<Trapdoor>> out(wrapped.size());
  auto one = [&](size_t i) {
    if (wrapped[i].size() == kTrapdoorSize) {
      out[i] = Trapdoor::from_bytes(theta.inverse(wrapped[i]));
    }
  };
  if (pool == nullptr) {
    for (size_t i = 0; i < wrapped.size(); ++i) one(i);
  } else {
    pool->parallel_for(wrapped.size(), one);
  }
  return out;
}

Bytes SecureIndex::to_bytes() const {
  io::Writer w;
  w.u64(array_a.size());
  for (const Bytes& slot : array_a) w.raw(slot);
  w.u64(table_t.size());
  // Deterministic order for stable wire bytes.
  std::vector<std::pair<std::string, Bytes>> entries(table_t.begin(),
                                                     table_t.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (const auto& [k, v] : entries) {
    w.str(k);
    w.bytes(v);
  }
  return w.take();
}

SecureIndex SecureIndex::from_bytes(BytesView bv) {
  io::Reader r(bv);
  SecureIndex si;
  size_t n = r.count64(kNodeSize);
  si.array_a.reserve(n);
  for (size_t i = 0; i < n; ++i) si.array_a.push_back(r.raw(kNodeSize));
  size_t m = r.count64(8);  // each entry: u32 key len + u32 value len
  for (size_t i = 0; i < m; ++i) {
    std::string k = r.str();
    si.table_t[k] = r.bytes();
  }
  return si;
}

size_t SecureIndex::size_bytes() const {
  size_t total = 16;
  total += array_a.size() * kNodeSize;
  for (const auto& [k, v] : table_t) total += k.size() + v.size() + 8;
  return total;
}

Bytes EncryptedCollection::to_bytes() const {
  io::Writer w;
  w.u64(files.size());
  std::vector<FileId> ids;
  ids.reserve(files.size());
  for (const auto& [id, blob] : files) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (FileId id : ids) {
    w.u64(id);
    w.bytes(files.at(id));
  }
  return w.take();
}

EncryptedCollection EncryptedCollection::from_bytes(BytesView bv) {
  io::Reader r(bv);
  EncryptedCollection ec;
  size_t n = r.count64(12);  // each file: u64 id + u32 length prefix
  for (size_t i = 0; i < n; ++i) {
    FileId id = r.u64();
    ec.files[id] = r.bytes();
  }
  return ec;
}

size_t EncryptedCollection::size_bytes() const {
  size_t total = 8;
  for (const auto& [id, blob] : files) total += 12 + blob.size();
  return total;
}

}  // namespace hcpp::sse
