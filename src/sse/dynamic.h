// Dynamic, forward-private update layer over the static SSE-1 index
// (DESIGN.md §12, ROADMAP item 1).
//
// The packed (A, T) index of sse.h stays the bulk-load fast path; this
// module adds the Σoφoς-style chained-counter construction that makes PHI
// changes O(#keywords-changed) instead of a full rebuild:
//
//   * Per keyword the owner keeps a counter c and derives a chain of states
//     st_c = F_ku(epoch ‖ kw ‖ c) from the update key ku (itself a PRF of
//     the SSE bundle, so family/P-device can re-derive it from the ASSIGN
//     bundle). Each ADD/DELETE lands in the server's update log under
//     label_c = H(st_c ‖ "L") — a label the server has never seen and,
//     lacking ku, cannot predict from any previously issued trapdoor:
//     forward privacy.
//   * The log entry value is Enc_{H(st_c ‖ "V")}(op ‖ fid ‖ st_{c-1}): a
//     search trapdoor reveals (st_n, n) and the server walks the chain
//     backwards n steps, learning exactly the updates this keyword has
//     accumulated — nothing about other keywords, nothing about future
//     updates.
//   * DELETE is a tombstone op; resolution is newest-op-wins, so a tombstone
//     suppresses both older log ADDs and the static index's postings, and a
//     later re-ADD resurrects the file.
//   * compact() (owner-side: rebuild the packed index from the live file
//     set, epoch += 1, counters reset) folds the log away; the epoch in the
//     state derivation keeps recycled counter values on fresh labels.
//
// The static build doubles as the differential oracle:
// bulk-build(A ∪ B) ≡ build(A) then add(B), modulo index bytes
// (test_sse_dynamic.cpp).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sse/sse.h"

namespace hcpp::sse {

/// Chain-state / update-key width.
inline constexpr size_t kStateLen = 32;
/// Log entry plaintext/ciphertext: op(1) ‖ fid(8) ‖ st_{c-1}(32). The cipher
/// is a fixed-nonce stream under a single-use key, so len(ct) == len(pt).
inline constexpr size_t kLogEntrySize = 41;
/// DynTrapdoor encoding: address(16) ‖ mask(40) ‖ state(32) ‖ count(8) ‖
/// tag(4) — the static trapdoor plus the newest chain state and its counter.
inline constexpr size_t kDynTrapdoorSize = 100;

enum class UpdateOp : uint8_t { kAdd = 1, kDelete = 2 };

/// Owner-side per-keyword chain positions plus the compaction epoch.
/// Serialized into the ASSIGN bundle so privileged entities search the
/// collection as of the assignment (they cannot derive later states — that
/// is the forward-privacy guarantee working as specified).
struct UpdateState {
  uint64_t epoch = 0;
  std::map<std::string, uint64_t> counters;  // keyword -> entries appended

  [[nodiscard]] Bytes to_bytes() const;
  static UpdateState from_bytes(BytesView b);
};

/// Server-side update log: label -> encrypted entry. The server learns only
/// how many updates an account has accumulated.
struct UpdateLog {
  std::unordered_map<std::string, Bytes> entries;  // hex(label) -> entry

  [[nodiscard]] Bytes to_bytes() const;
  static UpdateLog from_bytes(BytesView b);
  [[nodiscard]] size_t size_bytes() const;
};

/// One (label, entry) pair ready to append — what the UPDATE protocol
/// message carries.
struct LogInsert {
  std::string label;  // hex, as keyed in UpdateLog::entries
  Bytes entry;        // kLogEntrySize bytes
};

/// Dynamic trapdoor: the static TD(kw) plus (st_n, n) so the server can walk
/// the keyword's update chain. count == 0 (state all-zero) degrades to a
/// purely static search.
struct DynTrapdoor {
  Trapdoor base;
  Bytes state;         // st_n (kStateLen), zeros when count == 0
  uint64_t count = 0;  // n

  [[nodiscard]] Bytes to_bytes() const;  // fixed kDynTrapdoorSize encoding
  static std::optional<DynTrapdoor> from_bytes(BytesView b);  // checks tag
};

/// The update key ku: a deterministic PRF of the SSE bundle, so every holder
/// of the keys (owner, ASSIGN-ed family/P-device) derives the same chains.
Bytes update_key(const Keys& keys);

/// Owner-side update engine: generates forward-private log inserts and the
/// matching dynamic trapdoors, advancing the per-keyword counters.
class Updater {
 public:
  explicit Updater(const Keys& keys, UpdateState state = {});

  /// Registers fid under kw; returns the log insert and bumps the counter.
  LogInsert add(std::string_view kw, FileId fid);
  /// Tombstone: suppresses fid under kw (static postings included).
  LogInsert del(std::string_view kw, FileId fid);

  /// TD(kw) extended with the keyword's current (st_n, n).
  [[nodiscard]] DynTrapdoor trapdoor(std::string_view kw) const;

  [[nodiscard]] const UpdateState& state() const noexcept { return state_; }
  /// After folding the log into a fresh static index: counters cleared and
  /// the epoch bumped, so recycled counter values derive fresh labels.
  void reset_for_compaction();

 private:
  LogInsert append(std::string_view kw, FileId fid, UpdateOp op);
  [[nodiscard]] Bytes chain_state(std::string_view kw, uint64_t c) const;

  TrapdoorGen gen_;
  prf::Prf f_ku_;  // F_ku — the chain-state PRF
  UpdateState state_;
};

/// Server-side SEARCH over static index + update log: walks the static list,
/// then the chain backwards from (st_n, n), resolving newest-op-wins.
/// Returns the surviving file ids (sorted ascending, deduplicated).
std::vector<FileId> search_dynamic(const SecureIndex& index,
                                   const UpdateLog& log,
                                   const DynTrapdoor& td);

/// Server-side SEARCH over a mixed batch of raw trapdoor encodings: 60-byte
/// static (Trapdoor) and 100-byte dynamic (DynTrapdoor) widths in one
/// request — what an UPDATE-aware account must accept, since owners emit the
/// static width for never-updated keywords. Malformed blobs contribute
/// nothing. Returns the union of matches, deduplicated and sorted.
std::vector<FileId> search_mixed(const SecureIndex& index,
                                 const UpdateLog& log,
                                 std::span<const Bytes> trapdoors);

/// Privileged variant: every blob is θ_d-wrapped, again at either width
/// (the wrap domains are disjoint by size). Stale-d or corrupt blobs
/// contribute nothing.
std::vector<FileId> search_wrapped_mixed(const SecureIndex& index,
                                         const UpdateLog& log, BytesView d,
                                         std::span<const Bytes> wrapped);

/// θ_d wrap of a dynamic trapdoor (privileged path). Same re-keyable d as
/// wrap_trapdoor, at the dynamic width — the two wrap domains are disjoint
/// by size.
Bytes wrap_dyn_trapdoor(BytesView d, const DynTrapdoor& td);
std::optional<DynTrapdoor> unwrap_dyn_trapdoor(BytesView d, BytesView wrapped);

/// One file's E'_s AEAD blob — the incremental unit of encrypt_collection,
/// exposed so the UPDATE path encrypts only the touched files.
Bytes encrypt_file(const Keys& keys, const PlainFile& f, RandomSource& rng);

}  // namespace hcpp::sse
