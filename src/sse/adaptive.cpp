#include "src/sse/adaptive.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "src/common/serialize.h"
#include "src/prf/prf.h"

namespace hcpp::sse::adaptive {

namespace {

constexpr size_t kLabelLen = 16;
constexpr size_t kMaskLen = 8;

Bytes slot_input(std::string_view purpose, std::string_view kw, uint32_t j) {
  io::Writer w;
  w.str(purpose);
  w.str(kw);
  w.u32(j);
  return w.take();
}

Bytes label_for(const prf::Prf& f, std::string_view kw, uint32_t j) {
  return f.eval(slot_input("label", kw, j), kLabelLen);
}

Bytes mask_for(const prf::Prf& f, std::string_view kw, uint32_t j) {
  return f.eval(slot_input("mask", kw, j), kMaskLen);
}

uint32_t next_pow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

AdaptiveIndex build_index(std::span<const PlainFile> files, BytesView key,
                          RandomSource& rng, uint32_t bound,
                          double padding_factor) {
  if (padding_factor < 1.0) {
    throw std::invalid_argument("adaptive::build_index: padding_factor < 1");
  }
  std::map<std::string, std::vector<FileId>> postings;
  for (const PlainFile& f : files) {
    for (const std::string& kw : f.keywords) postings[kw].push_back(f.id);
  }
  uint32_t longest = 1;
  for (const auto& [kw, ids] : postings) {
    longest = std::max<uint32_t>(longest, static_cast<uint32_t>(ids.size()));
  }
  AdaptiveIndex index;
  index.bound = (bound == 0) ? next_pow2(longest) : bound;
  if (index.bound < longest) {
    throw std::invalid_argument(
        "adaptive::build_index: bound below the longest postings list");
  }
  prf::Prf f(Bytes(key.begin(), key.end()));
  size_t real_entries = 0;
  for (const auto& [kw, ids] : postings) {
    for (uint32_t j = 0; j < ids.size(); ++j) {
      Bytes masked(kMaskLen);
      for (int b = 0; b < 8; ++b) {
        masked[b] = static_cast<uint8_t>(ids[j] >> (56 - 8 * b));
      }
      masked = xor_bytes(masked, mask_for(f, kw, j));
      index.entries[hex_encode(label_for(f, kw, j))] = std::move(masked);
      ++real_entries;
    }
  }
  // Pad with dummy entries so the entry count leaks only an upper bound.
  size_t target = static_cast<size_t>(static_cast<double>(real_entries) *
                                      padding_factor);
  while (index.entries.size() < target) {
    index.entries[hex_encode(rng.bytes(kLabelLen))] = rng.bytes(kMaskLen);
  }
  return index;
}

AdaptiveTrapdoor make_trapdoor(BytesView key, std::string_view kw,
                               uint32_t bound) {
  prf::Prf f(Bytes(key.begin(), key.end()));
  AdaptiveTrapdoor td;
  td.slots.reserve(bound);
  for (uint32_t j = 0; j < bound; ++j) {
    td.slots.emplace_back(label_for(f, kw, j), mask_for(f, kw, j));
  }
  return td;
}

std::vector<FileId> search(const AdaptiveIndex& index,
                           const AdaptiveTrapdoor& td) {
  std::vector<FileId> out;
  for (const auto& [label, mask] : td.slots) {
    auto it = index.entries.find(hex_encode(label));
    if (it == index.entries.end()) break;  // postings are contiguous
    if (it->second.size() != kMaskLen || mask.size() != kMaskLen) break;
    Bytes plain = xor_bytes(it->second, mask);
    FileId id = 0;
    for (uint8_t b : plain) id = (id << 8) | b;
    out.push_back(id);
  }
  return out;
}

Bytes AdaptiveIndex::to_bytes() const {
  io::Writer w;
  w.u32(bound);
  w.u64(entries.size());
  std::vector<std::pair<std::string, Bytes>> sorted(entries.begin(),
                                                    entries.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [label, value] : sorted) {
    w.str(label);
    w.bytes(value);
  }
  return w.take();
}

AdaptiveIndex AdaptiveIndex::from_bytes(BytesView b) {
  io::Reader r(b);
  AdaptiveIndex index;
  index.bound = r.u32();
  size_t n = r.count64(8);  // each entry: u32 label len + u32 value len
  for (size_t i = 0; i < n; ++i) {
    std::string label = r.str();
    index.entries[label] = r.bytes();
  }
  return index;
}

size_t AdaptiveIndex::size_bytes() const {
  size_t total = 12;
  for (const auto& [label, value] : entries) {
    total += label.size() + value.size() + 8;
  }
  return total;
}

Bytes AdaptiveTrapdoor::to_bytes() const {
  io::Writer w;
  w.u32(static_cast<uint32_t>(slots.size()));
  for (const auto& [label, mask] : slots) {
    w.bytes(label);
    w.bytes(mask);
  }
  return w.take();
}

std::optional<AdaptiveTrapdoor> AdaptiveTrapdoor::from_bytes(BytesView b) {
  try {
    io::Reader r(b);
    AdaptiveTrapdoor td;
    size_t n = r.count32(8);  // each slot: two u32 length prefixes
    td.slots.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Bytes label = r.bytes();
      Bytes mask = r.bytes();
      td.slots.emplace_back(std::move(label), std::move(mask));
    }
    if (!r.done()) return std::nullopt;
    return td;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace hcpp::sse::adaptive
