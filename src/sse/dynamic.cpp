#include "src/sse/dynamic.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "src/cipher/aead.h"
#include "src/cipher/chacha20.h"
#include "src/hash/hmac.h"
#include "src/hash/sha256.h"
#include "src/obs/metrics.h"
#include "src/par/pool.h"

namespace hcpp::sse {

namespace {

constexpr size_t kVaddrLen = 16;
constexpr size_t kMaskLen = 40;
constexpr size_t kTagLen = 4;

void put_u64(Bytes& out, uint64_t v) {
  for (int s = 56; s >= 0; s -= 8) out.push_back(static_cast<uint8_t>(v >> s));
}

uint64_t read_u64(BytesView b, size_t off) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8; ++i) v = (v << 8) | b[off + i];
  return v;
}

/// label_c = H(st_c ‖ 'L')[:16], hex — the update-log key.
std::string state_label(BytesView st) {
  Bytes input(st.begin(), st.end());
  input.push_back('L');
  Bytes digest = hash::sha256_bytes(input);
  digest.resize(kVaddrLen);
  return hex_encode(digest);
}

/// Entry cipher key: H(st_c ‖ 'V'). Single-use (one entry per state), so the
/// fixed-nonce stream keeps entries at kLogEntrySize — same argument as the
/// static index's crypt_node.
Bytes crypt_entry(BytesView st, BytesView data) {
  Bytes input(st.begin(), st.end());
  input.push_back('V');
  Bytes key = hash::sha256_bytes(input);
  Bytes nonce(cipher::kChaChaNonceSize, 0);
  return cipher::chacha20(key, nonce, 0, data);
}

Bytes dyn_trapdoor_tag(BytesView address, BytesView mask, BytesView state,
                       uint64_t count) {
  Bytes input = concat(address, mask);
  append(input, state);
  put_u64(input, count);
  Bytes digest = hash::sha256_bytes(input);
  digest.resize(kTagLen);
  return digest;
}

bool all_zero(BytesView b) {
  for (uint8_t v : b) {
    if (v != 0) return false;
  }
  return true;
}

}  // namespace

Bytes update_key(const Keys& keys) {
  // ku = HMAC_a("dsse-ku" ‖ b ‖ c): a pure function of the bundle, so an
  // ASSIGN-ed entity derives the identical chains from its copy of the keys.
  Bytes msg = to_bytes("dsse-ku");
  append(msg, keys.b);
  append(msg, keys.c);
  return hash::hmac_sha256(keys.a, msg);
}

Updater::Updater(const Keys& keys, UpdateState state)
    : gen_(keys), f_ku_(update_key(keys)), state_(std::move(state)) {}

Bytes Updater::chain_state(std::string_view kw, uint64_t c) const {
  if (c == 0) return Bytes(kStateLen, 0);  // chain-origin sentinel
  io::Writer w;
  w.u64(state_.epoch);
  w.str(std::string(kw));
  w.u64(c);
  return f_ku_.eval(w.data(), kStateLen);
}

LogInsert Updater::append(std::string_view kw, FileId fid, UpdateOp op) {
  uint64_t& counter = state_.counters[std::string(kw)];
  uint64_t c = counter + 1;
  Bytes st = chain_state(kw, c);
  Bytes prev = chain_state(kw, c - 1);

  Bytes plain;
  plain.reserve(kLogEntrySize);
  plain.push_back(static_cast<uint8_t>(op));
  put_u64(plain, fid);
  hcpp::append(plain, prev);  // qualified: Updater::append shadows the free fn

  LogInsert insert;
  insert.label = state_label(st);
  insert.entry = crypt_entry(st, plain);
  counter = c;
  return insert;
}

LogInsert Updater::add(std::string_view kw, FileId fid) {
  obs::count(obs::kSseUpdateAdd);
  return append(kw, fid, UpdateOp::kAdd);
}

LogInsert Updater::del(std::string_view kw, FileId fid) {
  obs::count(obs::kSseUpdateDelete);
  return append(kw, fid, UpdateOp::kDelete);
}

DynTrapdoor Updater::trapdoor(std::string_view kw) const {
  DynTrapdoor td;
  td.base = gen_.make(kw);
  auto it = state_.counters.find(std::string(kw));
  td.count = it == state_.counters.end() ? 0 : it->second;
  td.state = chain_state(kw, td.count);
  return td;
}

void Updater::reset_for_compaction() {
  state_.counters.clear();
  ++state_.epoch;
}

std::vector<FileId> search_dynamic(const SecureIndex& index,
                                   const UpdateLog& log,
                                   const DynTrapdoor& td) {
  obs::count(obs::kSseDynSearch);
  // Newest-op-wins: the walk runs newest → oldest, so the first op seen for
  // a file id is authoritative; static postings are older than every log
  // entry, so a surviving tombstone suppresses them too.
  std::map<FileId, UpdateOp> first_op;
  Bytes st = td.state;
  for (uint64_t c = td.count; c >= 1; --c) {
    if (st.size() != kStateLen || all_zero(st)) break;  // corrupt chain
    auto it = log.entries.find(state_label(st));
    // A missing label means these entries were folded away by a compaction
    // the trapdoor predates (or never arrived); older entries hang off the
    // missing one, so the walk cannot continue.
    if (it == log.entries.end()) break;
    if (it->second.size() != kLogEntrySize) break;
    Bytes plain = crypt_entry(st, it->second);
    auto op = static_cast<UpdateOp>(plain[0]);
    if (op != UpdateOp::kAdd && op != UpdateOp::kDelete) break;
    FileId fid = read_u64(plain, 1);
    first_op.try_emplace(fid, op);
    st.assign(plain.begin() + 9, plain.end());
  }

  std::set<FileId> out;
  for (FileId id : search(index, td.base)) {
    auto it = first_op.find(id);
    if (it == first_op.end() || it->second == UpdateOp::kAdd) out.insert(id);
  }
  for (const auto& [id, op] : first_op) {
    if (op == UpdateOp::kAdd) out.insert(id);
  }
  std::vector<FileId> result(out.begin(), out.end());
  obs::count(obs::kSseSearchHits, result.size());
  return result;
}

std::vector<FileId> search_mixed(const SecureIndex& index,
                                 const UpdateLog& log,
                                 std::span<const Bytes> trapdoors) {
  std::set<FileId> out;
  for (const Bytes& blob : trapdoors) {
    if (blob.size() == kTrapdoorSize) {
      std::optional<Trapdoor> td = Trapdoor::from_bytes(blob);
      if (!td.has_value()) continue;
      for (FileId id : search(index, *td)) out.insert(id);
    } else if (blob.size() == kDynTrapdoorSize) {
      std::optional<DynTrapdoor> td = DynTrapdoor::from_bytes(blob);
      if (!td.has_value()) continue;
      for (FileId id : search_dynamic(index, log, *td)) out.insert(id);
    }
  }
  return {out.begin(), out.end()};
}

std::vector<FileId> search_wrapped_mixed(const SecureIndex& index,
                                         const UpdateLog& log, BytesView d,
                                         std::span<const Bytes> wrapped) {
  std::set<FileId> out;
  // One θ_d key schedule per width, shared across the batch.
  std::optional<prf::FeistelPrp> theta_static, theta_dyn;
  for (const Bytes& blob : wrapped) {
    if (blob.size() == kTrapdoorSize) {
      if (!theta_static.has_value()) {
        theta_static.emplace(Bytes(d.begin(), d.end()), kTrapdoorSize);
      }
      std::optional<Trapdoor> td =
          Trapdoor::from_bytes(theta_static->inverse(blob));
      if (!td.has_value()) continue;
      for (FileId id : search(index, *td)) out.insert(id);
    } else if (blob.size() == kDynTrapdoorSize) {
      if (!theta_dyn.has_value()) {
        theta_dyn.emplace(Bytes(d.begin(), d.end()), kDynTrapdoorSize);
      }
      std::optional<DynTrapdoor> td =
          DynTrapdoor::from_bytes(theta_dyn->inverse(blob));
      if (!td.has_value()) continue;
      for (FileId id : search_dynamic(index, log, *td)) out.insert(id);
    }
  }
  return {out.begin(), out.end()};
}

Bytes DynTrapdoor::to_bytes() const {
  Bytes out = concat(base.address, base.mask);
  append(out, state);
  put_u64(out, count);
  append(out, dyn_trapdoor_tag(base.address, base.mask, state, count));
  return out;
}

std::optional<DynTrapdoor> DynTrapdoor::from_bytes(BytesView b) {
  if (b.size() != kDynTrapdoorSize) return std::nullopt;
  DynTrapdoor td;
  td.base.address.assign(b.begin(), b.begin() + kVaddrLen);
  td.base.mask.assign(b.begin() + kVaddrLen, b.begin() + kVaddrLen + kMaskLen);
  td.state.assign(b.begin() + kVaddrLen + kMaskLen,
                  b.begin() + kVaddrLen + kMaskLen + kStateLen);
  td.count = read_u64(b, kVaddrLen + kMaskLen + kStateLen);
  Bytes tag(b.begin() + kVaddrLen + kMaskLen + kStateLen + 8, b.end());
  if (!ct_equal(tag, dyn_trapdoor_tag(td.base.address, td.base.mask, td.state,
                                      td.count))) {
    return std::nullopt;
  }
  return td;
}

Bytes wrap_dyn_trapdoor(BytesView d, const DynTrapdoor& td) {
  prf::FeistelPrp theta(Bytes(d.begin(), d.end()), kDynTrapdoorSize);
  return theta.forward(td.to_bytes());
}

std::optional<DynTrapdoor> unwrap_dyn_trapdoor(BytesView d, BytesView wrapped) {
  if (wrapped.size() != kDynTrapdoorSize) return std::nullopt;
  prf::FeistelPrp theta(Bytes(d.begin(), d.end()), kDynTrapdoorSize);
  return DynTrapdoor::from_bytes(theta.inverse(wrapped));
}

Bytes encrypt_file(const Keys& keys, const PlainFile& f, RandomSource& rng) {
  return cipher::aead_encrypt(keys.s, f.to_bytes(), {}, rng);
}

Bytes UpdateState::to_bytes() const {
  io::Writer w;
  w.u64(epoch);
  w.u32(static_cast<uint32_t>(counters.size()));
  for (const auto& [kw, c] : counters) {
    w.str(kw);
    w.u64(c);
  }
  return w.take();
}

UpdateState UpdateState::from_bytes(BytesView b) {
  io::Reader r(b);
  UpdateState st;
  st.epoch = r.u64();
  size_t n = r.count32(12);  // each counter: u32 kw length prefix + u64
  for (size_t i = 0; i < n; ++i) {
    std::string kw = r.str();
    st.counters[kw] = r.u64();
  }
  return st;
}

Bytes UpdateLog::to_bytes() const {
  io::Writer w;
  w.u64(entries.size());
  // Deterministic order for stable wire/store bytes.
  std::vector<std::pair<std::string, Bytes>> sorted(entries.begin(),
                                                    entries.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (const auto& [label, entry] : sorted) {
    w.str(label);
    w.bytes(entry);
  }
  return w.take();
}

UpdateLog UpdateLog::from_bytes(BytesView b) {
  io::Reader r(b);
  UpdateLog log;
  size_t n = r.count64(8);  // each entry: u32 label len + u32 value len
  for (size_t i = 0; i < n; ++i) {
    std::string label = r.str();
    log.entries[label] = r.bytes();
  }
  return log;
}

size_t UpdateLog::size_bytes() const {
  size_t total = 8;
  for (const auto& [label, entry] : entries) {
    total += label.size() + entry.size() + 8;
  }
  return total;
}

}  // namespace hcpp::sse
