// Adaptive-secure SSE — the paper notes (§II.B) that "the adaptive SSE
// construction [17], which features a more robust security notion, can be
// applied instead without modifying other parts of the protocols". This is
// that drop-in: Curtmola et al.'s SSE-2-style dictionary construction.
//
// Index: one masked dictionary entry per (keyword, position) pair,
//   label(kw, j) = PRF_k("label" ‖ kw ‖ j),  value = fid ⊕ PRF_k("mask" ‖ kw ‖ j),
// padded with dummy entries. A trapdoor is the label/mask sequence for
// j = 1..bound, where `bound` is the public postings-length cap — the
// classic SSE-2 trade: simulatable against adaptive adversaries, at the
// cost of O(bound)-size trapdoors versus SSE-1's constant-size ones.
// Benchmark E1 quantifies the trade.
#pragma once

#include <optional>
#include <unordered_map>

#include "src/common/random.h"
#include "src/sse/sse.h"

namespace hcpp::sse::adaptive {

struct AdaptiveIndex {
  /// hex(label) -> masked fid (8 bytes).
  std::unordered_map<std::string, Bytes> entries;
  /// Public postings-length cap used when the index was built; every
  /// trapdoor probes exactly this many labels.
  uint32_t bound = 0;

  [[nodiscard]] Bytes to_bytes() const;
  static AdaptiveIndex from_bytes(BytesView b);
  [[nodiscard]] size_t size_bytes() const;
};

struct AdaptiveTrapdoor {
  /// (label, mask) per position, exactly `bound` of them.
  std::vector<std::pair<Bytes, Bytes>> slots;

  [[nodiscard]] Bytes to_bytes() const;
  static std::optional<AdaptiveTrapdoor> from_bytes(BytesView b);
};

/// Builds the dictionary. `bound` caps (and pads) postings-list lengths; 0
/// selects the smallest power of two covering the longest real list.
/// Dummy entries bring the total to `padding_factor` times the real count.
AdaptiveIndex build_index(std::span<const PlainFile> files, BytesView key,
                          RandomSource& rng, uint32_t bound = 0,
                          double padding_factor = 1.25);

/// Owner-side trapdoor: the label/mask pair for every position up to the
/// index's bound.
AdaptiveTrapdoor make_trapdoor(BytesView key, std::string_view kw,
                               uint32_t bound);

/// Server-side search: O(bound) dictionary probes, each O(1).
std::vector<FileId> search(const AdaptiveIndex& index,
                           const AdaptiveTrapdoor& td);

}  // namespace hcpp::sse::adaptive
