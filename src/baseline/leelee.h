// Baseline 1 (§I.A): Lee & Lee, "A cryptographic key management solution for
// HIPAA privacy/security regulations" [10]. Patients hold smart-card keys;
// PHI is encrypted per patient; emergencies are handled by a *trusted escrow
// server that holds every patient's secret keys*. The paper's critique —
// which benchmark E5 demonstrates — is that the escrow can decrypt any PHI
// at any time, and that storage is linkable to patient identity.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/sim/network.h"
#include "src/sse/sse.h"

namespace hcpp::baseline {

/// Privacy scorecard used by the E5 comparison.
struct PrivacyProperties {
  bool escrow_free = false;        // no third party can decrypt alone
  bool unlinkable_storage = false; // server cannot map records to patients
  bool keyword_private = false;    // server never sees search keywords
  bool emergency_capable = false;  // PHI reachable when patient is down
};

class LeeLeeSystem {
 public:
  LeeLeeSystem(sim::Network& net, RandomSource& seed);

  /// Issues the smart-card key; the escrow server keeps a copy (the consent
  /// exception of [10]).
  void register_patient(const std::string& patient_id);

  /// Stores the files under the patient's identity — the server sees
  /// (patient id, keyword list, ciphertext).
  bool store_phi(const std::string& patient_id,
                 std::span<const sse::PlainFile> files);

  /// Normal flow: patient presents the smart-card key and a keyword.
  [[nodiscard]] std::vector<sse::PlainFile> retrieve_with_consent(
      const std::string& patient_id, std::string_view keyword);

  /// Emergency flow: the escrow server supplies the key — works without the
  /// patient, which is the feature...
  [[nodiscard]] std::vector<sse::PlainFile> emergency_retrieve(
      const std::string& patient_id, std::string_view keyword);

  /// ...and the flaw: the escrow can silently read everything at any time.
  /// Returns every plaintext file of the patient without any consent signal.
  [[nodiscard]] std::vector<sse::PlainFile> escrow_read_all(
      const std::string& patient_id) const;

  /// What the storage server can observe.
  [[nodiscard]] std::vector<std::string> server_visible_patient_ids() const;
  [[nodiscard]] std::vector<std::string> server_visible_keywords(
      const std::string& patient_id) const;

  static PrivacyProperties properties() {
    return {.escrow_free = false,
            .unlinkable_storage = false,
            .keyword_private = false,
            .emergency_capable = true};
  }

 private:
  struct StoredFile {
    sse::FileId id;
    std::vector<std::string> keywords;  // plaintext, server-visible
    Bytes blob;
  };
  struct PatientAccount {
    Bytes smart_card_key;  // also escrowed
    std::vector<StoredFile> files;
  };

  [[nodiscard]] std::vector<sse::PlainFile> decrypt_matching(
      const PatientAccount& acct, std::string_view keyword,
      BytesView key) const;

  sim::Network* net_;
  std::map<std::string, PatientAccount> accounts_;  // escrow + storage in one
  mutable std::unique_ptr<RandomSource> rng_;
};

}  // namespace hcpp::baseline
