#include "src/baseline/tan.h"

namespace hcpp::baseline {

TanSystem::TanSystem(sim::Network& net, const ibc::Domain& domain)
    : net_(&net), ctx_(&domain.ctx()), pub_(domain.pub()) {}

bool TanSystem::store_record(const std::string& patient_id,
                             const std::string& role_id, BytesView record,
                             RandomSource& rng) {
  Bytes blob = ibc::ibe_encrypt(pub_, role_id, record, rng).to_bytes();
  net_->transmit(patient_id, "tan-server", blob.size(), "baseline-tan-store");
  by_patient_[patient_id].push_back({role_id, std::move(blob)});
  return true;
}

std::vector<Bytes> TanSystem::query_by_patient(const std::string& doctor_id,
                                               const std::string& patient_id) {
  net_->transmit(doctor_id, "tan-server", 64 + patient_id.size(),
                 "baseline-tan-query");
  std::vector<Bytes> out;
  auto it = by_patient_.find(patient_id);
  if (it == by_patient_.end()) return out;
  for (const Entry& e : it->second) {
    net_->transmit("tan-server", doctor_id, e.blob.size(),
                   "baseline-tan-query");
    out.push_back(e.blob);
  }
  return out;
}

std::vector<Bytes> TanSystem::decrypt_records(
    const curve::Point& role_key, std::span<const Bytes> blobs) const {
  std::vector<Bytes> out;
  for (const Bytes& blob : blobs) {
    try {
      ibc::IbeCiphertext ct = ibc::IbeCiphertext::from_bytes(*ctx_, blob);
      out.push_back(ibc::ibe_decrypt(*ctx_, role_key, ct));
    } catch (const std::exception&) {
      // wrong role key: skip
    }
  }
  return out;
}

std::map<std::string, size_t> TanSystem::server_ownership_view() const {
  std::map<std::string, size_t> view;
  for (const auto& [patient, entries] : by_patient_) {
    view[patient] = entries.size();
  }
  return view;
}

}  // namespace hcpp::baseline
