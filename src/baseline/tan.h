// Baseline 2 (§I.A): Tan et al., "Body sensor network security: an
// identity-based cryptography approach" [11] — a role-based IBE realization
// for emergency care. Records are IBE-encrypted to role identities (good),
// but the storage site must know *which records belong to which patient* to
// answer a querying doctor, so the server learns the ownership mapping —
// the unlinkability violation HCPP fixes with SSE + pseudonyms.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/baseline/leelee.h"  // PrivacyProperties
#include "src/ibc/ibe.h"
#include "src/sim/network.h"

namespace hcpp::baseline {

class TanSystem {
 public:
  TanSystem(sim::Network& net, const ibc::Domain& domain);

  /// The patient's sensors upload a record encrypted to `role_id`; the
  /// server files it under the patient's real identity.
  bool store_record(const std::string& patient_id, const std::string& role_id,
                    BytesView record, RandomSource& rng);

  /// The querying doctor names the patient — which is exactly the leak: the
  /// server resolves patient → records in the clear.
  [[nodiscard]] std::vector<Bytes> query_by_patient(
      const std::string& doctor_id, const std::string& patient_id);

  /// Role-key decryption (the doctor obtained Γ_role from the PKG).
  [[nodiscard]] std::vector<Bytes> decrypt_records(
      const curve::Point& role_key, std::span<const Bytes> blobs) const;

  /// The ownership map the honest-but-curious server accumulates.
  [[nodiscard]] std::map<std::string, size_t> server_ownership_view() const;

  static PrivacyProperties properties() {
    return {.escrow_free = true,
            .unlinkable_storage = false,
            .keyword_private = false,
            .emergency_capable = true};
  }

 private:
  struct Entry {
    std::string role_id;
    Bytes blob;
  };
  sim::Network* net_;
  const curve::CurveCtx* ctx_;
  ibc::PublicParams pub_;
  std::map<std::string, std::vector<Entry>> by_patient_;
};

}  // namespace hcpp::baseline
