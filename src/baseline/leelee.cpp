#include "src/baseline/leelee.h"

#include <algorithm>

#include "src/cipher/aead.h"
#include "src/cipher/drbg.h"

namespace hcpp::baseline {

LeeLeeSystem::LeeLeeSystem(sim::Network& net, RandomSource& seed)
    : net_(&net),
      rng_(std::make_unique<cipher::Drbg>(seed.bytes(32))) {}

void LeeLeeSystem::register_patient(const std::string& patient_id) {
  accounts_[patient_id].smart_card_key = rng_->bytes(32);
}

bool LeeLeeSystem::store_phi(const std::string& patient_id,
                             std::span<const sse::PlainFile> files) {
  auto it = accounts_.find(patient_id);
  if (it == accounts_.end()) return false;
  PatientAccount& acct = it->second;
  for (const sse::PlainFile& f : files) {
    StoredFile sf;
    sf.id = f.id;
    sf.keywords = f.keywords;  // stored in the clear on the server
    sf.blob =
        cipher::aead_encrypt(acct.smart_card_key, f.to_bytes(), {}, *rng_);
    net_->transmit(patient_id, "leelee-server", sf.blob.size(),
                   "baseline-leelee-store");
    acct.files.push_back(std::move(sf));
  }
  return true;
}

std::vector<sse::PlainFile> LeeLeeSystem::decrypt_matching(
    const PatientAccount& acct, std::string_view keyword,
    BytesView key) const {
  std::vector<sse::PlainFile> out;
  for (const StoredFile& sf : acct.files) {
    bool match = std::any_of(
        sf.keywords.begin(), sf.keywords.end(),
        [&](const std::string& kw) { return kw == keyword; });
    if (!match) continue;
    out.push_back(sse::PlainFile::from_bytes(
        cipher::aead_decrypt(key, sf.blob, {})));
  }
  return out;
}

std::vector<sse::PlainFile> LeeLeeSystem::retrieve_with_consent(
    const std::string& patient_id, std::string_view keyword) {
  auto it = accounts_.find(patient_id);
  if (it == accounts_.end()) return {};
  net_->transmit(patient_id, "leelee-server", 64, "baseline-leelee-retrieve");
  std::vector<sse::PlainFile> out =
      decrypt_matching(it->second, keyword, it->second.smart_card_key);
  for (const sse::PlainFile& f : out) {
    net_->transmit("leelee-server", patient_id, f.content.size(),
                   "baseline-leelee-retrieve");
  }
  return out;
}

std::vector<sse::PlainFile> LeeLeeSystem::emergency_retrieve(
    const std::string& patient_id, std::string_view keyword) {
  // The escrow holds the key, so the flow is identical to the consent flow —
  // nothing distinguishes a genuine emergency from escrow abuse.
  return retrieve_with_consent(patient_id, keyword);
}

std::vector<sse::PlainFile> LeeLeeSystem::escrow_read_all(
    const std::string& patient_id) const {
  auto it = accounts_.find(patient_id);
  if (it == accounts_.end()) return {};
  std::vector<sse::PlainFile> out;
  for (const StoredFile& sf : it->second.files) {
    out.push_back(sse::PlainFile::from_bytes(
        cipher::aead_decrypt(it->second.smart_card_key, sf.blob, {})));
  }
  return out;
}

std::vector<std::string> LeeLeeSystem::server_visible_patient_ids() const {
  std::vector<std::string> out;
  out.reserve(accounts_.size());
  for (const auto& [id, acct] : accounts_) out.push_back(id);
  return out;
}

std::vector<std::string> LeeLeeSystem::server_visible_keywords(
    const std::string& patient_id) const {
  std::vector<std::string> out;
  auto it = accounts_.find(patient_id);
  if (it == accounts_.end()) return out;
  for (const StoredFile& sf : it->second.files) {
    for (const std::string& kw : sf.keywords) out.push_back(kw);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hcpp::baseline
