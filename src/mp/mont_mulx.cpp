#include "src/mp/mont_mulx.h"

#include <cstdlib>

#if defined(__x86_64__) && defined(__BMI2__) && defined(__ADX__)
#define HCPP_HAVE_MULX_ADX 1
#include <immintrin.h>
#endif

namespace hcpp::mp::mulx {

#ifdef HCPP_HAVE_MULX_ADX

namespace {

using ull = unsigned long long;

// The algorithms here are limb-for-limb transcriptions of the portable
// kernels in mont.cpp; only the inner multiply-accumulate rows change shape.
// A row "acc[0..N] += x * y[0..N-1]" is computed as two independent carry
// chains — the MULX low products added at offset j (CF chain) and the high
// products at offset j+1 (OF chain) — which is exactly the dual-chain
// pattern ADCX/ADOX exist for; _addcarry_u64 on a BMI2+ADX target lets the
// compiler assign the two chains to the two carry flags.

inline uint64_t add_n(uint64_t* r, const uint64_t* a, const uint64_t* b,
                      size_t n) noexcept {
  unsigned char c = 0;
  for (size_t i = 0; i < n; ++i) {
    c = _addcarry_u64(c, a[i], b[i], reinterpret_cast<ull*>(&r[i]));
  }
  return c;
}

inline uint64_t sub_n(uint64_t* r, const uint64_t* a, const uint64_t* b,
                      size_t n) noexcept {
  unsigned char c = 0;
  for (size_t i = 0; i < n; ++i) {
    c = _subborrow_u64(c, a[i], b[i], reinterpret_cast<ull*>(&r[i]));
  }
  return c;
}

inline bool geq_n(const uint64_t* a, const uint64_t* b, size_t n) noexcept {
  for (size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

inline void wide_add(uint64_t* r, const uint64_t* o, size_t len) noexcept {
  unsigned char c = 0;
  for (size_t i = 0; i < len; ++i) {
    c = _addcarry_u64(c, r[i], o[i], reinterpret_cast<ull*>(&r[i]));
  }
}

inline void wide_sub(uint64_t* r, const uint64_t* o, size_t len) noexcept {
  unsigned char c = 0;
  for (size_t i = 0; i < len; ++i) {
    c = _subborrow_u64(c, r[i], o[i], reinterpret_cast<ull*>(&r[i]));
  }
}

inline void ripple_add(uint64_t* r, uint64_t v, size_t len) noexcept {
  unsigned char c = _addcarry_u64(0, r[0], v, reinterpret_cast<ull*>(&r[0]));
  for (size_t i = 1; c != 0 && i < len; ++i) {
    c = _addcarry_u64(c, r[i], 0, reinterpret_cast<ull*>(&r[i]));
  }
}

// CIOS product, accumulator t[N+2], one conditional final subtraction —
// the same schedule as cios_mul<NF> in mont.cpp.
template <size_t N>
void cios_mul_impl(uint64_t* r, const uint64_t* a, const uint64_t* b,
                   const uint64_t* m, uint64_t n0inv) noexcept {
  uint64_t t[N + 2] = {0};
  for (size_t i = 0; i < N; ++i) {
    // t[0..N+1] += a[i] * b (dual-chain multiply-accumulate).
    {
      ull hi;
      ull lo = _mulx_u64(a[i], b[0], &hi);
      unsigned char cf =
          _addcarry_u64(0, t[0], lo, reinterpret_cast<ull*>(&t[0]));
      unsigned char of = 0;
      for (size_t j = 1; j < N; ++j) {
        ull hi2;
        lo = _mulx_u64(a[i], b[j], &hi2);
        of = _addcarry_u64(of, t[j], hi, reinterpret_cast<ull*>(&t[j]));
        cf = _addcarry_u64(cf, t[j], lo, reinterpret_cast<ull*>(&t[j]));
        hi = hi2;
      }
      of = _addcarry_u64(of, t[N], hi, reinterpret_cast<ull*>(&t[N]));
      cf = _addcarry_u64(cf, t[N], 0, reinterpret_cast<ull*>(&t[N]));
      t[N + 1] = static_cast<uint64_t>(of) + cf;
    }
    // Reduce: u = t[0]·n0inv; t += u·m; shift one limb down (folded into
    // the stores at j-1).
    {
      uint64_t u = t[0] * n0inv;
      ull hi;
      ull discard;
      ull lo = _mulx_u64(u, m[0], &hi);
      unsigned char cf = _addcarry_u64(0, t[0], lo, &discard);  // low limb: 0
      unsigned char of = 0;
      for (size_t j = 1; j < N; ++j) {
        ull hi2;
        lo = _mulx_u64(u, m[j], &hi2);
        uint64_t v = t[j];
        of = _addcarry_u64(of, v, hi, reinterpret_cast<ull*>(&v));
        cf = _addcarry_u64(cf, v, lo, reinterpret_cast<ull*>(&v));
        t[j - 1] = v;
        hi = hi2;
      }
      uint64_t v = t[N];
      of = _addcarry_u64(of, v, hi, reinterpret_cast<ull*>(&v));
      cf = _addcarry_u64(cf, v, 0, reinterpret_cast<ull*>(&v));
      t[N - 1] = v;
      t[N] = t[N + 1] + of + cf;
    }
  }
  if (t[N] != 0 || geq_n(t, m, N)) sub_n(t, t, m, N);
  for (size_t i = 0; i < N; ++i) r[i] = t[i];
}

// Schoolbook wide product r[0..2N) = a·b.
template <size_t N>
void mul_wide_impl(uint64_t* r, const uint64_t* a,
                   const uint64_t* b) noexcept {
  for (size_t i = 0; i < 2 * N; ++i) r[i] = 0;
  for (size_t i = 0; i < N; ++i) {
    ull hi;
    ull lo = _mulx_u64(a[i], b[0], &hi);
    unsigned char cf =
        _addcarry_u64(0, r[i], lo, reinterpret_cast<ull*>(&r[i]));
    unsigned char of = 0;
    for (size_t j = 1; j < N; ++j) {
      ull hi2;
      lo = _mulx_u64(a[i], b[j], &hi2);
      of = _addcarry_u64(of, r[i + j], hi, reinterpret_cast<ull*>(&r[i + j]));
      cf = _addcarry_u64(cf, r[i + j], lo, reinterpret_cast<ull*>(&r[i + j]));
      hi = hi2;
    }
    r[i + N] = hi + of + cf;  // r[i+N] was zero; hi ≤ 2^64−2, no overflow
  }
}

// Montgomery reduction of the wide accumulator t[0..2N+2); result to r.
template <size_t N>
void redc_wide_impl(uint64_t* r, uint64_t* t, const uint64_t* m,
                    uint64_t n0inv) noexcept {
  constexpr size_t kWide = 2 * N + 2;
  for (size_t i = 0; i < N; ++i) {
    uint64_t u = t[i] * n0inv;
    ull hi;
    ull lo = _mulx_u64(u, m[0], &hi);
    unsigned char cf =
        _addcarry_u64(0, t[i], lo, reinterpret_cast<ull*>(&t[i]));
    unsigned char of = 0;
    for (size_t j = 1; j < N; ++j) {
      ull hi2;
      lo = _mulx_u64(u, m[j], &hi2);
      of = _addcarry_u64(of, t[i + j], hi, reinterpret_cast<ull*>(&t[i + j]));
      cf = _addcarry_u64(cf, t[i + j], lo, reinterpret_cast<ull*>(&t[i + j]));
      hi = hi2;
    }
    ripple_add(t + i + N, hi + of + cf, kWide - i - N);
  }
  while (t[2 * N] != 0 || geq_n(t + N, m, N)) {
    uint64_t borrow = sub_n(t + N, t + N, m, N);
    t[2 * N] -= borrow;
  }
  for (size_t i = 0; i < N; ++i) r[i] = t[N + i];
}

// Wide product of (n+1)-limb sums, mirroring mul_wide_sum<NF>.
template <size_t N>
void mul_wide_sum_impl(uint64_t* t, const uint64_t* s, uint64_t carry_s,
                       const uint64_t* d, uint64_t carry_d) noexcept {
  mul_wide_impl<N>(t, s, d);
  t[2 * N] = 0;
  t[2 * N + 1] = 0;
  if (carry_s != 0) {
    uint64_t c = add_n(t + N, t + N, d, N);
    ripple_add(t + 2 * N, c, 2);
  }
  if (carry_d != 0) {
    uint64_t c = add_n(t + N, t + N, s, N);
    ripple_add(t + 2 * N, c, 2);
  }
  if ((carry_s & carry_d) != 0) ripple_add(t + 2 * N, 1, 2);
}

template <size_t N>
void fp2_mul_mulx(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
                  const uint64_t* ai, const uint64_t* br, const uint64_t* bi,
                  const uint64_t* m, uint64_t n0inv,
                  const uint64_t* mm2) noexcept {
  constexpr size_t kWide = 2 * N + 2;
  uint64_t t0[kWide] = {0};
  uint64_t t1[kWide] = {0};
  uint64_t t2[kWide];
  mul_wide_impl<N>(t0, ar, br);
  mul_wide_impl<N>(t1, ai, bi);
  uint64_t s1[N];
  uint64_t s2[N];
  uint64_t c1 = add_n(s1, ar, ai, N);
  uint64_t c2 = add_n(s2, br, bi, N);
  mul_wide_sum_impl<N>(t2, s1, c1, s2, c2);
  wide_sub(t2, t0, kWide);
  wide_sub(t2, t1, kWide);
  wide_add(t0, mm2, kWide);
  wide_sub(t0, t1, kWide);
  redc_wide_impl<N>(c_re, t0, m, n0inv);
  redc_wide_impl<N>(c_im, t2, m, n0inv);
}

template <size_t N>
void fp2_sqr_mulx(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
                  const uint64_t* ai, const uint64_t* m,
                  uint64_t n0inv) noexcept {
  constexpr size_t kWide = 2 * N + 2;
  uint64_t s1[N];
  uint64_t s2[N];
  uint64_t diff[N];
  uint64_t c1 = add_n(s1, ar, ai, N);
  sub_n(diff, m, ai, N);
  uint64_t c2 = add_n(s2, ar, diff, N);
  uint64_t t[kWide];
  mul_wide_sum_impl<N>(t, s1, c1, s2, c2);
  redc_wide_impl<N>(c_re, t, m, n0inv);
  uint64_t t3[kWide] = {0};
  mul_wide_impl<N>(t3, ar, ai);
  uint64_t carry = 0;
  for (size_t i = 0; i < 2 * N + 1; ++i) {
    uint64_t next = t3[i] >> 63;
    t3[i] = (t3[i] << 1) | carry;
    carry = next;
  }
  redc_wide_impl<N>(c_im, t3, m, n0inv);
}

}  // namespace

bool compiled() noexcept { return true; }

void cios_mul4(uint64_t* r, const uint64_t* a, const uint64_t* b,
               const uint64_t* m, uint64_t n0inv) noexcept {
  cios_mul_impl<4>(r, a, b, m, n0inv);
}
void cios_mul8(uint64_t* r, const uint64_t* a, const uint64_t* b,
               const uint64_t* m, uint64_t n0inv) noexcept {
  cios_mul_impl<8>(r, a, b, m, n0inv);
}
void fp2_mul4(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
              const uint64_t* ai, const uint64_t* br, const uint64_t* bi,
              const uint64_t* m, uint64_t n0inv,
              const uint64_t* mm2) noexcept {
  fp2_mul_mulx<4>(c_re, c_im, ar, ai, br, bi, m, n0inv, mm2);
}
void fp2_mul8(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
              const uint64_t* ai, const uint64_t* br, const uint64_t* bi,
              const uint64_t* m, uint64_t n0inv,
              const uint64_t* mm2) noexcept {
  fp2_mul_mulx<8>(c_re, c_im, ar, ai, br, bi, m, n0inv, mm2);
}
void fp2_sqr4(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
              const uint64_t* ai, const uint64_t* m, uint64_t n0inv) noexcept {
  fp2_sqr_mulx<4>(c_re, c_im, ar, ai, m, n0inv);
}
void fp2_sqr8(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
              const uint64_t* ai, const uint64_t* m, uint64_t n0inv) noexcept {
  fp2_sqr_mulx<8>(c_re, c_im, ar, ai, m, n0inv);
}

#else  // !HCPP_HAVE_MULX_ADX

// Built without BMI2/ADX: compiled() says so and the kernels are traps —
// MontCtx never selects this path when compiled() is false.
bool compiled() noexcept { return false; }

void cios_mul4(uint64_t*, const uint64_t*, const uint64_t*, const uint64_t*,
               uint64_t) noexcept {
  std::abort();
}
void cios_mul8(uint64_t*, const uint64_t*, const uint64_t*, const uint64_t*,
               uint64_t) noexcept {
  std::abort();
}
void fp2_mul4(uint64_t*, uint64_t*, const uint64_t*, const uint64_t*,
              const uint64_t*, const uint64_t*, const uint64_t*, uint64_t,
              const uint64_t*) noexcept {
  std::abort();
}
void fp2_mul8(uint64_t*, uint64_t*, const uint64_t*, const uint64_t*,
              const uint64_t*, const uint64_t*, const uint64_t*, uint64_t,
              const uint64_t*) noexcept {
  std::abort();
}
void fp2_sqr4(uint64_t*, uint64_t*, const uint64_t*, const uint64_t*,
              const uint64_t*, uint64_t) noexcept {
  std::abort();
}
void fp2_sqr8(uint64_t*, uint64_t*, const uint64_t*, const uint64_t*,
              const uint64_t*, uint64_t) noexcept {
  std::abort();
}

#endif  // HCPP_HAVE_MULX_ADX

}  // namespace hcpp::mp::mulx
