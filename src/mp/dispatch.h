#pragma once
// Runtime CPU-feature detection for the vectorized kernel variants.
//
// The library is compiled once and must run correctly on any x86-64, so the
// fast kernels (MULX/ADX Montgomery in src/mp, 4-way AVX2 ChaCha20 in
// src/cipher) are selected at runtime: CPUID is queried once per process and
// the result cached. Each accelerated translation unit is built with the
// matching -m flags but only ever entered after a positive runtime check, so
// no illegal instruction can execute on older hardware.
//
// HCPP_FORCE_GENERIC=1 in the environment forces every dispatcher back to the
// portable path. This is the differential-testing knob: the same binary runs
// its test suite twice (fast and generic) and the outputs must be identical.
// The env variable is sampled once and cached; tests that flip it in-process
// call refresh() to re-read it.

namespace hcpp::mp {

struct CpuFeatures {
  bool bmi2 = false;  // MULX
  bool adx = false;   // ADCX/ADOX
  bool avx2 = false;
};

// CPUID-derived feature flags, detected once and cached. All-false on
// non-x86-64 builds.
const CpuFeatures& cpu_features();

// True when HCPP_FORCE_GENERIC is set to a non-empty value other than "0".
bool force_generic();

// Re-reads HCPP_FORCE_GENERIC from the environment. Only needed by tests
// that toggle the knob inside one process; ordinary code never calls this.
void refresh_dispatch();

}  // namespace hcpp::mp
