// Primality testing and prime/parameter generation for the pairing domain.
#pragma once

#include <cstddef>

#include "src/common/random.h"
#include "src/mp/u512.h"

namespace hcpp::mp {

/// Uniform value in [0, bound) by rejection sampling. bound must be nonzero.
U512 random_below(const U512& bound, RandomSource& rng);

/// Uniform value with exactly `bits` bits (top bit set). 1 <= bits <= 512.
U512 random_bits(size_t bits, RandomSource& rng);

/// Miller–Rabin with `rounds` random bases (deterministic small-prime
/// trial division first). Error probability <= 4^-rounds.
bool is_probable_prime(const U512& n, RandomSource& rng, int rounds = 32);

/// Random prime with exactly `bits` bits.
U512 generate_prime(size_t bits, RandomSource& rng);

}  // namespace hcpp::mp
