#include "src/mp/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define HCPP_DISPATCH_X86_64 1
#endif

namespace hcpp::mp {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#ifdef HCPP_DISPATCH_X86_64
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid_max(0, nullptr) >= 7) {
    __cpuid_count(7, 0, eax, ebx, ecx, edx);
    f.bmi2 = (ebx & bit_BMI2) != 0;
    f.adx = (ebx & bit_ADX) != 0;
    f.avx2 = (ebx & bit_AVX2) != 0;
    // AVX2 additionally needs OS support for YMM state (XCR0 bits 1..2).
    if (f.avx2) {
      unsigned a1 = 0, b1 = 0, c1 = 0, d1 = 0;
      __cpuid(1, a1, b1, c1, d1);
      bool osxsave = (c1 & bit_OSXSAVE) != 0;
      if (!osxsave) {
        f.avx2 = false;
      } else {
        unsigned lo, hi;
        __asm__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
        if ((lo & 0x6) != 0x6) f.avx2 = false;
      }
    }
  }
#endif
  return f;
}

bool read_force_generic_env() {
  const char* v = std::getenv("HCPP_FORCE_GENERIC");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

std::atomic<bool> g_force_generic{read_force_generic_env()};

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect();
  return f;
}

bool force_generic() { return g_force_generic.load(std::memory_order_relaxed); }

void refresh_dispatch() {
  g_force_generic.store(read_force_generic_env(), std::memory_order_relaxed);
}

}  // namespace hcpp::mp
