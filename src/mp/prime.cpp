#include "src/mp/prime.h"

#include <stdexcept>

#include "src/mp/mont.h"

namespace hcpp::mp {

U512 random_below(const U512& bound, RandomSource& rng) {
  if (bound.is_zero()) throw std::invalid_argument("random_below: zero bound");
  size_t bits = bound.bit_length();
  for (;;) {
    Bytes buf = rng.bytes((bits + 7) / 8);
    // Mask excess high bits so the rejection rate stays below 1/2.
    size_t excess = buf.size() * 8 - bits;
    buf[0] &= static_cast<uint8_t>(0xff >> excess);
    U512 v = U512::from_bytes_be(buf);
    if (v < bound) return v;
  }
}

U512 random_bits(size_t bits, RandomSource& rng) {
  if (bits == 0 || bits > kBits) {
    throw std::invalid_argument("random_bits: bad width");
  }
  Bytes buf = rng.bytes((bits + 7) / 8);
  size_t excess = buf.size() * 8 - bits;
  buf[0] &= static_cast<uint8_t>(0xff >> excess);
  buf[0] |= static_cast<uint8_t>(0x80 >> excess);  // force top bit
  return U512::from_bytes_be(buf);
}

namespace {
constexpr uint64_t kSmallPrimes[] = {
    2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59,
    61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131,
    137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199};

// n mod d for small d via per-limb folding.
uint64_t mod_small(const U512& n, uint64_t d) noexcept {
  unsigned __int128 r = 0;
  for (size_t i = kLimbs; i-- > 0;) {
    r = ((r << 64) | n.w[i]) % d;
  }
  return static_cast<uint64_t>(r);
}
}  // namespace

bool is_probable_prime(const U512& n, RandomSource& rng, int rounds) {
  if (n.bit_length() < 2) return false;  // 0, 1
  for (uint64_t p : kSmallPrimes) {
    if (n == U512::from_u64(p)) return true;
    if (mod_small(n, p) == 0) return false;
  }
  if (!n.is_odd()) return false;
  // n - 1 = d * 2^s
  U512 n_minus1;
  sub(n_minus1, n, U512::from_u64(1));
  U512 d = n_minus1;
  size_t s = 0;
  while (!d.is_odd()) {
    d = shr1(d);
    ++s;
  }
  MontCtx ctx(n);
  const U512 one_m = ctx.one();
  const U512 minus1_m = ctx.sub(U512{}, one_m);  // -1 in Montgomery form
  U512 n_minus3 = n_minus1;
  {
    U512 tmp;
    sub(tmp, n_minus3, U512::from_u64(2));
    n_minus3 = tmp;  // bases drawn from [2, n-2]
  }
  for (int round = 0; round < rounds; ++round) {
    U512 a = add_mod(random_below(n_minus3, rng), U512::from_u64(2), n);
    U512 x = ctx.pow(ctx.to_mont(a), d);
    if (x == one_m || x == minus1_m) continue;
    bool composite = true;
    for (size_t i = 1; i < s; ++i) {
      x = ctx.sqr(x);
      if (x == minus1_m) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

U512 generate_prime(size_t bits, RandomSource& rng) {
  if (bits < 3) throw std::invalid_argument("generate_prime: too small");
  for (;;) {
    U512 candidate = random_bits(bits, rng);
    candidate.w[0] |= 1;  // odd
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

}  // namespace hcpp::mp
