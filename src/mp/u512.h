// Fixed-width 512-bit unsigned integer storage and generic arithmetic. All
// HCPP field and group elements fit in 512 bits; smaller parameter sets
// leave the high limbs zero. Storage stays a uniform 8 limbs, but the hot
// arithmetic is width-aware: MontCtx (mont.h) derives its active limb count
// from the modulus and only the helpers here — parameter generation,
// hashing, the division-based reductions — run full-width. Limbs are
// little-endian 64-bit words.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace hcpp::mp {

inline constexpr size_t kLimbs = 8;
inline constexpr size_t kBits = kLimbs * 64;

struct U512 {
  std::array<uint64_t, kLimbs> w{};  // w[0] least significant

  constexpr U512() = default;
  static U512 from_u64(uint64_t v);
  /// Parses big-endian hex (at most 128 digits, leading zeros optional).
  static U512 from_hex(std::string_view hex);
  /// Parses big-endian bytes (at most 64).
  static U512 from_bytes_be(BytesView b);

  /// 64 big-endian bytes (fixed width).
  [[nodiscard]] Bytes to_bytes_be() const;
  /// Minimal-width big-endian bytes (at least one byte).
  [[nodiscard]] Bytes to_bytes_be_trimmed() const;
  [[nodiscard]] std::string to_hex() const;

  [[nodiscard]] bool is_zero() const noexcept;
  [[nodiscard]] bool is_odd() const noexcept { return (w[0] & 1) != 0; }
  [[nodiscard]] bool bit(size_t i) const noexcept;
  /// Index of the highest set bit plus one; 0 for zero.
  [[nodiscard]] size_t bit_length() const noexcept;

  friend bool operator==(const U512& a, const U512& b) noexcept = default;
  friend std::strong_ordering operator<=>(const U512& a,
                                          const U512& b) noexcept;
};

/// 1024-bit product buffer.
using U1024 = std::array<uint64_t, 2 * kLimbs>;

/// r = a + b mod 2^512; returns the carry out.
uint64_t add(U512& r, const U512& a, const U512& b) noexcept;
/// r = a - b mod 2^512; returns the borrow out.
uint64_t sub(U512& r, const U512& a, const U512& b) noexcept;
/// Schoolbook full product.
void mul_wide(U1024& r, const U512& a, const U512& b) noexcept;

/// Logical shifts by one bit.
U512 shl1(const U512& a) noexcept;
U512 shr1(const U512& a) noexcept;
/// (a + carry_in·2^512) >> 1, used by the binary inversion ladder.
U512 shr1_carry(const U512& a, uint64_t carry_in) noexcept;

/// Quotient and remainder: a = q·m + r with r < m (m != 0). Binary long
/// division; not constant time — for public values only.
struct DivMod {
  U512 quotient;
  U512 remainder;
};
DivMod divmod(const U512& a, const U512& m);

/// a mod m via binary long division (m != 0). Not constant time; used only on
/// public values (hash outputs, parameter generation).
U512 mod(const U512& a, const U512& m);
/// Reduces a 1024-bit value mod m the same way.
U512 mod_wide(const U1024& a, const U512& m);

/// Modular arithmetic helpers for arbitrary moduli (inputs already < m).
U512 add_mod(const U512& a, const U512& b, const U512& m) noexcept;
U512 sub_mod(const U512& a, const U512& b, const U512& m) noexcept;
/// Generic modular multiply (wide product + binary reduction). Prefer
/// MontCtx::mul on hot paths.
U512 mul_mod(const U512& a, const U512& b, const U512& m);

/// a^{-1} mod m for odd m, gcd(a, m) = 1 (throws std::domain_error otherwise).
/// Binary extended Euclid.
U512 inv_mod(const U512& a, const U512& m);

}  // namespace hcpp::mp
