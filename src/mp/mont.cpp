#include "src/mp/mont.h"

#include <stdexcept>
#include <vector>

#include "src/mp/dispatch.h"
#include "src/mp/mont_mulx.h"

namespace hcpp::mp {

using uint128 = unsigned __int128;

namespace {

// Whether the fixed-width MULX/ADX kernels are usable on this host. Sampled
// once per MontCtx construction so a context keeps one kernel for its whole
// lifetime (HCPP_FORCE_GENERIC toggles only affect contexts built after a
// refresh_dispatch()).
bool mulx_available() noexcept {
  return mulx::compiled() && cpu_features().bmi2 && cpu_features().adx &&
         !force_generic();
}

// -m^{-1} mod 2^64 via Newton iteration (m odd).
uint64_t neg_inv64(uint64_t m) noexcept {
  uint64_t x = m;  // 3-bit-correct seed: m * m ≡ 1 (mod 8) for odd m
  for (int i = 0; i < 5; ++i) x *= 2 - m * x;  // doubles correct bits
  return ~x + 1;  // -(m^{-1})
}

// Every kernel below is templated on NF, the compile-time limb count of the
// hot parameter sets (4 for the 256-bit test modulus, 8 for the 512-bit
// production one). NF = 0 selects the generic instantiation whose loop
// bounds come from the runtime argument — the fallback for odd widths such
// as the 150/160-bit scalar fields. With NF fixed the compiler fully
// unrolls the limb loops and keeps the accumulator window in registers.
template <size_t NF>
constexpr size_t width(size_t n_rt) noexcept {
  return NF == 0 ? n_rt : NF;
}

// n-limb helpers (loop bounds constant-fold in the fixed-width kernels).
inline uint64_t add_n(uint64_t* r, const uint64_t* a, const uint64_t* b,
                      size_t n) noexcept {
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint128 s = static_cast<uint128>(a[i]) + b[i] + carry;
    r[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  return carry;
}

inline uint64_t sub_n(uint64_t* r, const uint64_t* a, const uint64_t* b,
                      size_t n) noexcept {
  uint64_t borrow = 0;
  for (size_t i = 0; i < n; ++i) {
    uint128 d = static_cast<uint128>(a[i]) - b[i] - borrow;
    r[i] = static_cast<uint64_t>(d);
    borrow = static_cast<uint64_t>((d >> 64) & 1);
  }
  return borrow;
}

inline bool geq_n(const uint64_t* a, const uint64_t* b, size_t n) noexcept {
  for (size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

// CIOS Montgomery product over n limbs: r = a·b·R^{-1} mod m, with
// a, b < m < R = 2^{64n}. The interleaved reduction keeps the accumulator
// within n+2 limbs and the result needs at most one final subtraction.
template <size_t NF>
void cios_mul(uint64_t* r, const uint64_t* a, const uint64_t* b,
              const uint64_t* m, uint64_t n0inv, size_t n_rt) noexcept {
  const size_t n = width<NF>(n_rt);
  constexpr size_t kAcc = (NF == 0 ? kLimbs : NF) + 2;
  uint64_t t[kAcc] = {0};
  for (size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    uint128 s = static_cast<uint128>(t[n]) + carry;
    t[n] = static_cast<uint64_t>(s);
    t[n + 1] = static_cast<uint64_t>(s >> 64);
    // Reduce: u = t[0] * n0inv mod 2^64; t += u*m; t >>= 64
    uint64_t u = t[0] * n0inv;
    uint128 cur = static_cast<uint128>(u) * m[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < n; ++j) {
      cur = static_cast<uint128>(u) * m[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    s = static_cast<uint128>(t[n]) + carry;
    t[n - 1] = static_cast<uint64_t>(s);
    t[n] = t[n + 1] + static_cast<uint64_t>(s >> 64);
  }
  if (t[n] != 0 || geq_n(t, m, n)) sub_n(t, t, m, n);
  for (size_t i = 0; i < n; ++i) r[i] = t[i];
}

// Schoolbook wide product r[0..2n) = a·b of two n-limb operands.
template <size_t NF>
void mul_wide_n(uint64_t* r, const uint64_t* a, const uint64_t* b,
                size_t n_rt) noexcept {
  const size_t n = width<NF>(n_rt);
  for (size_t i = 0; i < 2 * n; ++i) r[i] = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    r[i + n] = carry;
  }
}

// r[0..len) += o[0..len) (no carry out by the callers' range contracts).
inline void wide_add(uint64_t* r, const uint64_t* o, size_t len) noexcept {
  uint64_t carry = 0;
  for (size_t i = 0; i < len; ++i) {
    uint128 s = static_cast<uint128>(r[i]) + o[i] + carry;
    r[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
}

// r[0..len) -= o[0..len); callers guarantee r >= o.
inline void wide_sub(uint64_t* r, const uint64_t* o, size_t len) noexcept {
  uint64_t borrow = 0;
  for (size_t i = 0; i < len; ++i) {
    uint128 d = static_cast<uint128>(r[i]) - o[i] - borrow;
    r[i] = static_cast<uint64_t>(d);
    borrow = static_cast<uint64_t>((d >> 64) & 1);
  }
}

// Adds `v` into r[0..len) starting at r[0], rippling the carry upward.
inline void ripple_add(uint64_t* r, uint64_t v, size_t len) noexcept {
  uint64_t carry = v;
  for (size_t i = 0; carry != 0 && i < len; ++i) {
    uint128 s = static_cast<uint128>(r[i]) + carry;
    r[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
}

// Montgomery reduction of a wide accumulator t[0..2n+2) with value
// T < c·m·R for a small constant c (the lazy-reduction channels stay below
// 5m^2 < 5mR): r = T·R^{-1} mod m, fully reduced to [0, m). The reduced
// value is < (c+1)·m, so the tail loop runs at most a handful of times.
template <size_t NF>
void redc_wide(uint64_t* r, uint64_t* t, const uint64_t* m, uint64_t n0inv,
               size_t n_rt) noexcept {
  const size_t n = width<NF>(n_rt);
  const size_t wide = 2 * n + 2;
  for (size_t i = 0; i < n; ++i) {
    uint64_t u = t[i] * n0inv;
    uint64_t carry = 0;
    for (size_t j = 0; j < n; ++j) {
      uint128 cur = static_cast<uint128>(u) * m[j] + t[i + j] + carry;
      t[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    for (size_t j = i + n; carry != 0 && j < wide; ++j) {
      uint128 s = static_cast<uint128>(t[j]) + carry;
      t[j] = static_cast<uint64_t>(s);
      carry = static_cast<uint64_t>(s >> 64);
    }
  }
  // Result lives in t[n..2n] (t[2n+1] is zero: the value is < (c+1)·m).
  while (t[2 * n] != 0 || geq_n(t + n, m, n)) {
    uint64_t borrow = sub_n(t + n, t + n, m, n);
    t[2 * n] -= borrow;
  }
  for (size_t i = 0; i < n; ++i) r[i] = t[n + i];
}

constexpr size_t kWide = 2 * kLimbs + 2;

// Wide product of the (n+1)-limb sums (s, carry_s)·(d, carry_d) used by the
// Karatsuba cross term: t = s·d + carry_s·d·2^{64n} + carry_d·s·2^{64n}
// + carry_s·carry_d·2^{128n}. Sums are < 2m < 2^{64n+1}, so the carries are
// single bits and the product fits 2n+1 limbs.
template <size_t NF>
void mul_wide_sum(uint64_t* t, const uint64_t* s, uint64_t carry_s,
                  const uint64_t* d, uint64_t carry_d, size_t n_rt) noexcept {
  const size_t n = width<NF>(n_rt);
  mul_wide_n<NF>(t, s, d, n);
  t[2 * n] = 0;
  t[2 * n + 1] = 0;
  if (carry_s != 0) {
    uint64_t c = add_n(t + n, t + n, d, n);
    ripple_add(t + 2 * n, c, 2);
  }
  if (carry_d != 0) {
    uint64_t c = add_n(t + n, t + n, s, n);
    ripple_add(t + 2 * n, c, 2);
  }
  if ((carry_s & carry_d) != 0) ripple_add(t + 2 * n, 1, 2);
}

// Lazy-reduction Karatsuba product over F_m[i]/(i^2+1):
//   re = a_re·b_re − a_im·b_im,  im = (a_re+a_im)(b_re+b_im) − t0 − t1.
// Three wide products and two Montgomery reductions; the re channel is made
// subtraction-free by the 2m^2 bias (t0 + 2m^2 − t1 ∈ (0, 3m^2]), the im
// channel is exact and non-negative by construction (< 2m^2).
template <size_t NF>
void fp2_mul_impl(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
                  const uint64_t* ai, const uint64_t* br, const uint64_t* bi,
                  const uint64_t* m, uint64_t n0inv, const uint64_t* mm2,
                  size_t n_rt) noexcept {
  const size_t n = width<NF>(n_rt);
  const size_t wide = 2 * n + 2;
  uint64_t t0[kWide] = {0};
  uint64_t t1[kWide] = {0};
  uint64_t t2[kWide];
  mul_wide_n<NF>(t0, ar, br, n);
  mul_wide_n<NF>(t1, ai, bi, n);
  uint64_t s1[kLimbs] = {0};
  uint64_t s2[kLimbs] = {0};
  uint64_t c1 = add_n(s1, ar, ai, n);
  uint64_t c2 = add_n(s2, br, bi, n);
  mul_wide_sum<NF>(t2, s1, c1, s2, c2, n);
  // im = t2 − t0 − t1 (exact: equals a_re·b_im + a_im·b_re ≥ 0).
  wide_sub(t2, t0, wide);
  wide_sub(t2, t1, wide);
  // re = t0 + 2m^2 − t1 ∈ (0, 3m^2].
  wide_add(t0, mm2, wide);
  wide_sub(t0, t1, wide);
  redc_wide<NF>(c_re, t0, m, n0inv, n);
  redc_wide<NF>(c_im, t2, m, n0inv, n);
}

// Lazy squaring: re = (a_re+a_im)·(a_re + (m − a_im)) ≡ a_re² − a_im²
// (< 4m², subtraction-free), im = 2·a_re·a_im (< 2m²).
template <size_t NF>
void fp2_sqr_impl(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
                  const uint64_t* ai, const uint64_t* m, uint64_t n0inv,
                  size_t n_rt) noexcept {
  const size_t n = width<NF>(n_rt);
  uint64_t s1[kLimbs] = {0};
  uint64_t s2[kLimbs] = {0};
  uint64_t diff[kLimbs];
  uint64_t c1 = add_n(s1, ar, ai, n);
  sub_n(diff, m, ai, n);  // m − a_im ∈ (0, m], no borrow
  uint64_t c2 = add_n(s2, ar, diff, n);
  uint64_t t[kWide];
  mul_wide_sum<NF>(t, s1, c1, s2, c2, n);
  redc_wide<NF>(c_re, t, m, n0inv, n);
  uint64_t t3[kWide] = {0};
  mul_wide_n<NF>(t3, ar, ai, n);
  // Double in place: 2·a_re·a_im < 2m² fits 2n+1 limbs.
  uint64_t carry = 0;
  for (size_t i = 0; i < 2 * n + 1; ++i) {
    uint64_t next = t3[i] >> 63;
    t3[i] = (t3[i] << 1) | carry;
    carry = next;
  }
  redc_wide<NF>(c_im, t3, m, n0inv, n);
}

}  // namespace

MontCtx::MontCtx(const U512& modulus) : m_(modulus) {
  if (!m_.is_odd() || m_.bit_length() < 2) {
    throw std::invalid_argument("MontCtx: modulus must be odd and > 2");
  }
  n_ = (m_.bit_length() + 63) / 64;
  n0inv_ = neg_inv64(m_.w[0]);
  mulx_ = (n_ == 4 || n_ == 8) && mulx_available();
  // R mod m with R = 2^{64n}: take (R − 1) mod m (all-ones over the active
  // limbs) then add 1 (mod m).
  U512 r_minus1;
  for (size_t i = 0; i < n_; ++i) r_minus1.w[i] = ~0ull;
  one_ = add_mod(mod(r_minus1, m_), U512::from_u64(1), m_);
  // R^2 mod m by repeated doubling of R mod m, 64n times.
  U512 r2 = one_;
  for (size_t i = 0; i < 64 * n_; ++i) r2 = add_mod(r2, r2, m_);
  r2_ = r2;
  r3_ = mul(r2_, r2_);  // R^2·R^2·R^{-1} = R^3
  // 2·m^2, the wide bias constant of fp2_mul.
  U1024 m2;
  mul_wide(m2, m_, m_);
  uint64_t carry = 0;
  for (size_t i = 0; i < 2 * kLimbs; ++i) {
    mm2_[i] = (m2[i] << 1) | carry;
    carry = m2[i] >> 63;
  }
  mm2_[2 * kLimbs] = carry;
  mm2_[2 * kLimbs + 1] = 0;
}

U512 MontCtx::to_mont(const U512& a) const {
  // The n-limb kernels ignore limbs above the active width, so reduce any
  // out-of-range input the slow way first (parameter setup, hash outputs).
  if (!(a < m_)) return mul(mod(a, m_), r2_);
  return mul(a, r2_);
}

U512 MontCtx::from_mont(const U512& a) const noexcept {
  return mul(a, U512::from_u64(1));
}

U512 MontCtx::mul(const U512& a, const U512& b) const noexcept {
  U512 r;
  switch (n_) {
    case 4:
      if (mulx_) {
        mulx::cios_mul4(r.w.data(), a.w.data(), b.w.data(), m_.w.data(),
                        n0inv_);
      } else {
        cios_mul<4>(r.w.data(), a.w.data(), b.w.data(), m_.w.data(), n0inv_,
                    4);
      }
      break;
    case 8:
      if (mulx_) {
        mulx::cios_mul8(r.w.data(), a.w.data(), b.w.data(), m_.w.data(),
                        n0inv_);
      } else {
        cios_mul<8>(r.w.data(), a.w.data(), b.w.data(), m_.w.data(), n0inv_,
                    8);
      }
      break;
    default:
      cios_mul<0>(r.w.data(), a.w.data(), b.w.data(), m_.w.data(), n0inv_,
                  n_);
      break;
  }
  return r;
}

U512 MontCtx::add(const U512& a, const U512& b) const noexcept {
  U512 r;
  uint64_t carry = add_n(r.w.data(), a.w.data(), b.w.data(), n_);
  if (carry != 0 || geq_n(r.w.data(), m_.w.data(), n_)) {
    sub_n(r.w.data(), r.w.data(), m_.w.data(), n_);
  }
  return r;
}

U512 MontCtx::sub(const U512& a, const U512& b) const noexcept {
  U512 r;
  uint64_t borrow = sub_n(r.w.data(), a.w.data(), b.w.data(), n_);
  if (borrow != 0) add_n(r.w.data(), r.w.data(), m_.w.data(), n_);
  return r;
}

U512 MontCtx::pow(const U512& base, const U512& exp) const noexcept {
  // Fixed 4-bit windows: 15 precomputed odd-and-even multiples trade the
  // bit-at-a-time multiply (one per set bit, ~n/2) for one multiply per
  // window (~n/4), at four squarings per window either way. Windows are
  // 4-bit-aligned, so they never straddle a 64-bit limb.
  size_t nbits = exp.bit_length();
  if (nbits == 0) return one_;
  U512 table[16];
  table[1] = base;
  for (size_t i = 2; i < 16; ++i) table[i] = mul(table[i - 1], base);
  U512 result = one_;
  bool started = false;
  for (size_t wi = (nbits + 3) / 4; wi-- > 0;) {
    if (started) {
      result = sqr(sqr(sqr(sqr(result))));
    }
    uint64_t d = (exp.w[(4 * wi) / 64] >> ((4 * wi) % 64)) & 15;
    if (d != 0) {
      result = started ? mul(result, table[d]) : table[d];
      started = true;
    }
  }
  return started ? result : one_;
}

U512 MontCtx::inv(const U512& a) const {
  // a is xR; inv_mod gives (xR)^{-1} = x^{-1}R^{-1}; multiply by R^3 with one
  // Montgomery product to land on x^{-1}R.
  U512 plain_inv = inv_mod(a, m_);
  return mul(plain_inv, r3_);
}

void MontCtx::batch_inv(std::span<U512> xs) const {
  if (xs.empty()) return;
  // Prefix products pre[i] = xs[0]·…·xs[i-1] (Montgomery form), one shared
  // inversion of the total product, then peel inverses off backwards.
  std::vector<U512> pre(xs.size());
  U512 acc = one_;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].is_zero()) throw std::domain_error("batch_inv: zero element");
    pre[i] = acc;
    acc = mul(acc, xs[i]);
  }
  U512 t = inv(acc);
  for (size_t i = xs.size(); i-- > 0;) {
    U512 orig = xs[i];
    xs[i] = mul(t, pre[i]);
    t = mul(t, orig);
  }
}

void MontCtx::fp2_mul(U512& c_re, U512& c_im, const U512& a_re,
                      const U512& a_im, const U512& b_re,
                      const U512& b_im) const noexcept {
  U512 re, im;  // locals: the outputs may alias the inputs
  switch (n_) {
    case 4:
      if (mulx_) {
        mulx::fp2_mul4(re.w.data(), im.w.data(), a_re.w.data(), a_im.w.data(),
                       b_re.w.data(), b_im.w.data(), m_.w.data(), n0inv_,
                       mm2_.data());
      } else {
        fp2_mul_impl<4>(re.w.data(), im.w.data(), a_re.w.data(),
                        a_im.w.data(), b_re.w.data(), b_im.w.data(),
                        m_.w.data(), n0inv_, mm2_.data(), 4);
      }
      break;
    case 8:
      if (mulx_) {
        mulx::fp2_mul8(re.w.data(), im.w.data(), a_re.w.data(), a_im.w.data(),
                       b_re.w.data(), b_im.w.data(), m_.w.data(), n0inv_,
                       mm2_.data());
      } else {
        fp2_mul_impl<8>(re.w.data(), im.w.data(), a_re.w.data(),
                        a_im.w.data(), b_re.w.data(), b_im.w.data(),
                        m_.w.data(), n0inv_, mm2_.data(), 8);
      }
      break;
    default:
      fp2_mul_impl<0>(re.w.data(), im.w.data(), a_re.w.data(), a_im.w.data(),
                      b_re.w.data(), b_im.w.data(), m_.w.data(), n0inv_,
                      mm2_.data(), n_);
      break;
  }
  c_re = re;
  c_im = im;
}

void MontCtx::fp2_sqr(U512& c_re, U512& c_im, const U512& a_re,
                      const U512& a_im) const noexcept {
  U512 re, im;
  switch (n_) {
    case 4:
      if (mulx_) {
        mulx::fp2_sqr4(re.w.data(), im.w.data(), a_re.w.data(), a_im.w.data(),
                       m_.w.data(), n0inv_);
      } else {
        fp2_sqr_impl<4>(re.w.data(), im.w.data(), a_re.w.data(),
                        a_im.w.data(), m_.w.data(), n0inv_, 4);
      }
      break;
    case 8:
      if (mulx_) {
        mulx::fp2_sqr8(re.w.data(), im.w.data(), a_re.w.data(), a_im.w.data(),
                       m_.w.data(), n0inv_);
      } else {
        fp2_sqr_impl<8>(re.w.data(), im.w.data(), a_re.w.data(),
                        a_im.w.data(), m_.w.data(), n0inv_, 8);
      }
      break;
    default:
      fp2_sqr_impl<0>(re.w.data(), im.w.data(), a_re.w.data(), a_im.w.data(),
                      m_.w.data(), n0inv_, n_);
      break;
  }
  c_re = re;
  c_im = im;
}

const char* mont_kernel_name() noexcept {
  return mulx_available() ? "mulx-adx" : "generic";
}

}  // namespace hcpp::mp
