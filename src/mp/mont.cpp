#include "src/mp/mont.h"

#include <stdexcept>

namespace hcpp::mp {

using uint128 = unsigned __int128;

namespace {
// -m^{-1} mod 2^64 via Newton iteration (m odd).
uint64_t neg_inv64(uint64_t m) noexcept {
  uint64_t x = m;  // 3-bit-correct seed: m * m ≡ 1 (mod 8) for odd m
  for (int i = 0; i < 5; ++i) x *= 2 - m * x;  // doubles correct bits
  return ~x + 1;  // -(m^{-1})
}
}  // namespace

MontCtx::MontCtx(const U512& modulus) : m_(modulus) {
  if (!m_.is_odd() || m_.bit_length() < 2) {
    throw std::invalid_argument("MontCtx: modulus must be odd and > 2");
  }
  n0inv_ = neg_inv64(m_.w[0]);
  // R mod m: R = 2^512. Compute by reducing 2^512 - m*k ... simplest: take
  // (2^512 - 1) mod m then add 1 (mod m).
  U512 all_ones;
  all_ones.w.fill(~0ull);
  U512 r_minus1 = mod(all_ones, m_);
  one_ = add_mod(r_minus1, U512::from_u64(1), m_);
  // R^2 mod m by repeated doubling of R mod m, 512 times.
  U512 r2 = one_;
  for (size_t i = 0; i < kBits; ++i) r2 = add_mod(r2, r2, m_);
  r2_ = r2;
  r3_ = mul(r2_, r2_);  // R^2·R^2·R^{-1} = R^3
}

U512 MontCtx::to_mont(const U512& a) const { return mul(a, r2_); }

U512 MontCtx::from_mont(const U512& a) const noexcept {
  return mul(a, U512::from_u64(1));
}

U512 MontCtx::mul(const U512& a, const U512& b) const noexcept {
  // CIOS (coarsely integrated operand scanning), N = 8 limbs.
  uint64_t t[kLimbs + 2] = {0};
  for (size_t i = 0; i < kLimbs; ++i) {
    // t += a.w[i] * b
    uint64_t carry = 0;
    for (size_t j = 0; j < kLimbs; ++j) {
      uint128 cur = static_cast<uint128>(a.w[i]) * b.w[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    uint128 s = static_cast<uint128>(t[kLimbs]) + carry;
    t[kLimbs] = static_cast<uint64_t>(s);
    t[kLimbs + 1] = static_cast<uint64_t>(s >> 64);
    // Reduce: u = t[0] * n0inv mod 2^64; t += u*m; t >>= 64
    uint64_t u = t[0] * n0inv_;
    uint128 cur = static_cast<uint128>(u) * m_.w[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);
    for (size_t j = 1; j < kLimbs; ++j) {
      cur = static_cast<uint128>(u) * m_.w[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    s = static_cast<uint128>(t[kLimbs]) + carry;
    t[kLimbs - 1] = static_cast<uint64_t>(s);
    t[kLimbs] = t[kLimbs + 1] + static_cast<uint64_t>(s >> 64);
  }
  U512 r;
  for (size_t i = 0; i < kLimbs; ++i) r.w[i] = t[i];
  if (t[kLimbs] != 0 || !(r < m_)) {
    U512 tmp;
    mp::sub(tmp, r, m_);
    r = tmp;
  }
  return r;
}

U512 MontCtx::add(const U512& a, const U512& b) const noexcept {
  return add_mod(a, b, m_);
}

U512 MontCtx::sub(const U512& a, const U512& b) const noexcept {
  return sub_mod(a, b, m_);
}

U512 MontCtx::pow(const U512& base, const U512& exp) const noexcept {
  // Fixed 4-bit windows: 15 precomputed odd-and-even multiples trade the
  // bit-at-a-time multiply (one per set bit, ~n/2) for one multiply per
  // window (~n/4), at four squarings per window either way. Windows are
  // 4-bit-aligned, so they never straddle a 64-bit limb.
  size_t nbits = exp.bit_length();
  if (nbits == 0) return one_;
  U512 table[16];
  table[1] = base;
  for (size_t i = 2; i < 16; ++i) table[i] = mul(table[i - 1], base);
  U512 result = one_;
  bool started = false;
  for (size_t wi = (nbits + 3) / 4; wi-- > 0;) {
    if (started) {
      result = sqr(sqr(sqr(sqr(result))));
    }
    uint64_t d = (exp.w[(4 * wi) / 64] >> ((4 * wi) % 64)) & 15;
    if (d != 0) {
      result = started ? mul(result, table[d]) : table[d];
      started = true;
    }
  }
  return started ? result : one_;
}

U512 MontCtx::inv(const U512& a) const {
  // a is xR; inv_mod gives (xR)^{-1} = x^{-1}R^{-1}; multiply by R^3 with one
  // Montgomery product to land on x^{-1}R.
  U512 plain_inv = inv_mod(a, m_);
  return mul(plain_inv, r3_);
}

}  // namespace hcpp::mp
