#pragma once
// MULX/ADX (BMI2 + ADX) variants of the unrolled fixed-width Montgomery
// kernels in mont.cpp. This translation unit is compiled with -mbmi2 -madx
// (see src/CMakeLists.txt) and is only ever entered after mp::cpu_features()
// reports both extensions at runtime, so the library binary itself stays
// portable x86-64. Each entry point computes bit-for-bit the same result as
// the portable kernel of the same width — the differential suites in
// tests/test_dispatch.cpp pin that equivalence.
//
// On targets where the TU cannot be built with the required extensions,
// compiled() returns false and the entry points must not be called.

#include <cstddef>
#include <cstdint>

namespace hcpp::mp::mulx {

// True when this TU was built with BMI2+ADX code. Callers must additionally
// check the runtime CPU flags before dispatching here.
bool compiled() noexcept;

// CIOS Montgomery product r = a·b·R^{-1} mod m over 4 resp. 8 limbs.
void cios_mul4(uint64_t* r, const uint64_t* a, const uint64_t* b,
               const uint64_t* m, uint64_t n0inv) noexcept;
void cios_mul8(uint64_t* r, const uint64_t* a, const uint64_t* b,
               const uint64_t* m, uint64_t n0inv) noexcept;

// Lazy-reduction Fp2 product / square (same accumulator layout and bias
// constant mm2 = 2m^2 as the portable fp2_mul_impl / fp2_sqr_impl).
void fp2_mul4(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
              const uint64_t* ai, const uint64_t* br, const uint64_t* bi,
              const uint64_t* m, uint64_t n0inv, const uint64_t* mm2) noexcept;
void fp2_mul8(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
              const uint64_t* ai, const uint64_t* br, const uint64_t* bi,
              const uint64_t* m, uint64_t n0inv, const uint64_t* mm2) noexcept;
void fp2_sqr4(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
              const uint64_t* ai, const uint64_t* m, uint64_t n0inv) noexcept;
void fp2_sqr8(uint64_t* c_re, uint64_t* c_im, const uint64_t* ar,
              const uint64_t* ai, const uint64_t* m, uint64_t n0inv) noexcept;

}  // namespace hcpp::mp::mulx
