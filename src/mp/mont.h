// Width-aware Montgomery modular arithmetic context (CIOS multiplication)
// for a fixed odd modulus. Every hot multiplication in the field/curve/
// pairing stack runs through this context. The active limb count n is
// derived from the modulus width (R = 2^{64n}), so a 256-bit modulus pays
// for 4-limb kernels instead of the full 8-limb storage width; the hot
// paths dispatch to unrolled fixed-width kernels for n = 4 (test set) and
// n = 8 (production set), with a generic any-width loop as fallback.
#pragma once

#include <span>

#include "src/mp/u512.h"

namespace hcpp::mp {

class MontCtx {
 public:
  /// `modulus` must be odd and > 2 (throws std::invalid_argument otherwise).
  explicit MontCtx(const U512& modulus);

  [[nodiscard]] const U512& modulus() const noexcept { return m_; }
  /// R mod m, the Montgomery representation of 1.
  [[nodiscard]] const U512& one() const noexcept { return one_; }
  /// Active limb count n: R = 2^{64n} with n = ceil(bits(m)/64).
  [[nodiscard]] size_t limbs() const noexcept { return n_; }
  /// Which multiply kernel this context dispatches to: "mulx-adx" when the
  /// fixed-width BMI2/ADX path was selected at construction (CPU supports
  /// both extensions and HCPP_FORCE_GENERIC is unset), "generic" otherwise.
  [[nodiscard]] const char* kernel_name() const noexcept {
    return mulx_ ? "mulx-adx" : "generic";
  }

  /// a (plain, any value — reduced mod m first if needed) -> aR mod m.
  [[nodiscard]] U512 to_mont(const U512& a) const;
  /// aR -> a.
  [[nodiscard]] U512 from_mont(const U512& a) const noexcept;

  /// Montgomery product: (aR)(bR)R^{-1} = abR. Operands must be < m.
  [[nodiscard]] U512 mul(const U512& a, const U512& b) const noexcept;
  [[nodiscard]] U512 sqr(const U512& a) const noexcept { return mul(a, a); }
  /// Modular add/sub on Montgomery (or plain) residues < m.
  [[nodiscard]] U512 add(const U512& a, const U512& b) const noexcept;
  [[nodiscard]] U512 sub(const U512& a, const U512& b) const noexcept;
  /// (base in Montgomery form)^exp, result in Montgomery form. `exp` plain.
  [[nodiscard]] U512 pow(const U512& base, const U512& exp) const noexcept;
  /// Inverse of a Montgomery residue, in Montgomery form.
  [[nodiscard]] U512 inv(const U512& a) const;

  /// Montgomery's trick: inverts every residue in `xs` in place at the cost
  /// of one modular inversion plus 3(k-1) multiplications. Throws
  /// std::domain_error on a zero element (before modifying anything), the
  /// same contract as per-element inv().
  void batch_inv(std::span<U512> xs) const;

  /// Lazy-reduction F_{p^2} = F_p[i]/(i^2+1) kernels: Karatsuba over
  /// double-width accumulators with one Montgomery reduction per output
  /// coefficient (instead of three fully reduced multiplications).
  /// Intermediate sums are kept subtraction-free in [0, 2m) resp. [0, 5m^2)
  /// wide; outputs are fully reduced to [0, m). Inputs/outputs are
  /// Montgomery residues; output references may alias the inputs.
  void fp2_mul(U512& c_re, U512& c_im, const U512& a_re, const U512& a_im,
               const U512& b_re, const U512& b_im) const noexcept;
  void fp2_sqr(U512& c_re, U512& c_im, const U512& a_re,
               const U512& a_im) const noexcept;

 private:
  U512 m_;
  size_t n_ = kLimbs;   // active limbs, R = 2^{64 n_}
  uint64_t n0inv_ = 0;  // -m^{-1} mod 2^64
  bool mulx_ = false;   // fixed-width MULX/ADX kernels selected (n = 4 or 8)
  U512 r2_;             // R^2 mod m
  U512 r3_;             // R^3 mod m
  U512 one_;            // R mod m
  // 2·m^2 as a wide little-endian constant: the non-negativity bias added to
  // the a_re·b_re − a_im·b_im channel of fp2_mul before the single
  // reduction (2m^2 can exceed 2^{1024} for a full-width modulus, hence the
  // extra limbs).
  std::array<uint64_t, 2 * kLimbs + 2> mm2_{};
};

/// The kernel variant a freshly constructed fixed-width (n = 4 or 8) MontCtx
/// would dispatch to on this host right now: "mulx-adx" or "generic".
/// Benchmarks record this in their JSON context so numbers are comparable
/// across machines.
[[nodiscard]] const char* mont_kernel_name() noexcept;

}  // namespace hcpp::mp
