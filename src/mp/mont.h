// Montgomery modular arithmetic context (CIOS multiplication) for a fixed odd
// modulus. Every hot multiplication in the field/curve/pairing stack runs
// through this context; R = 2^512 regardless of the modulus width so the code
// paths stay uniform across the 256-bit test and 512-bit production sets.
#pragma once

#include "src/mp/u512.h"

namespace hcpp::mp {

class MontCtx {
 public:
  /// `modulus` must be odd and > 2 (throws std::invalid_argument otherwise).
  explicit MontCtx(const U512& modulus);

  [[nodiscard]] const U512& modulus() const noexcept { return m_; }
  /// R mod m, the Montgomery representation of 1.
  [[nodiscard]] const U512& one() const noexcept { return one_; }

  /// a (plain) -> aR mod m.
  [[nodiscard]] U512 to_mont(const U512& a) const;
  /// aR -> a.
  [[nodiscard]] U512 from_mont(const U512& a) const noexcept;

  /// Montgomery product: (aR)(bR)R^{-1} = abR.
  [[nodiscard]] U512 mul(const U512& a, const U512& b) const noexcept;
  [[nodiscard]] U512 sqr(const U512& a) const noexcept { return mul(a, a); }
  /// Modular add/sub on Montgomery (or plain) residues.
  [[nodiscard]] U512 add(const U512& a, const U512& b) const noexcept;
  [[nodiscard]] U512 sub(const U512& a, const U512& b) const noexcept;
  /// (base in Montgomery form)^exp, result in Montgomery form. `exp` plain.
  [[nodiscard]] U512 pow(const U512& base, const U512& exp) const noexcept;
  /// Inverse of a Montgomery residue, in Montgomery form.
  [[nodiscard]] U512 inv(const U512& a) const;

 private:
  U512 m_;
  uint64_t n0inv_ = 0;  // -m^{-1} mod 2^64
  U512 r2_;             // R^2 mod m
  U512 r3_;             // R^3 mod m
  U512 one_;            // R mod m
};

}  // namespace hcpp::mp
