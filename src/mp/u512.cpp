#include "src/mp/u512.h"

#include <stdexcept>

namespace hcpp::mp {

using uint128 = unsigned __int128;

U512 U512::from_u64(uint64_t v) {
  U512 r;
  r.w[0] = v;
  return r;
}

U512 U512::from_hex(std::string_view hex) {
  if (hex.size() > 2 * kLimbs * 8) {
    throw std::invalid_argument("U512::from_hex: too long");
  }
  U512 r;
  size_t bit = 0;  // bits consumed from the least-significant end
  for (size_t i = hex.size(); i-- > 0;) {
    char c = hex[i];
    uint64_t nib;
    if (c >= '0' && c <= '9') {
      nib = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nib = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nib = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("U512::from_hex: invalid digit");
    }
    r.w[bit / 64] |= nib << (bit % 64);
    bit += 4;
  }
  return r;
}

U512 U512::from_bytes_be(BytesView b) {
  if (b.size() > kLimbs * 8) {
    throw std::invalid_argument("U512::from_bytes_be: too long");
  }
  U512 r;
  size_t shift = 0;
  for (size_t i = b.size(); i-- > 0;) {
    r.w[shift / 64] |= static_cast<uint64_t>(b[i]) << (shift % 64);
    shift += 8;
  }
  return r;
}

Bytes U512::to_bytes_be() const {
  Bytes out(kLimbs * 8);
  for (size_t i = 0; i < kLimbs * 8; ++i) {
    size_t shift = 8 * i;
    out[kLimbs * 8 - 1 - i] =
        static_cast<uint8_t>(w[shift / 64] >> (shift % 64));
  }
  return out;
}

Bytes U512::to_bytes_be_trimmed() const {
  Bytes full = to_bytes_be();
  size_t start = 0;
  while (start + 1 < full.size() && full[start] == 0) ++start;
  return Bytes(full.begin() + static_cast<ptrdiff_t>(start), full.end());
}

std::string U512::to_hex() const {
  Bytes trimmed = to_bytes_be_trimmed();
  return hex_encode(trimmed);
}

bool U512::is_zero() const noexcept {
  uint64_t acc = 0;
  for (uint64_t limb : w) acc |= limb;
  return acc == 0;
}

bool U512::bit(size_t i) const noexcept {
  if (i >= kBits) return false;
  return ((w[i / 64] >> (i % 64)) & 1) != 0;
}

size_t U512::bit_length() const noexcept {
  for (size_t i = kLimbs; i-- > 0;) {
    if (w[i] != 0) {
      return 64 * i + (64 - static_cast<size_t>(__builtin_clzll(w[i])));
    }
  }
  return 0;
}

std::strong_ordering operator<=>(const U512& a, const U512& b) noexcept {
  for (size_t i = kLimbs; i-- > 0;) {
    if (a.w[i] != b.w[i]) {
      return a.w[i] < b.w[i] ? std::strong_ordering::less
                             : std::strong_ordering::greater;
    }
  }
  return std::strong_ordering::equal;
}

uint64_t add(U512& r, const U512& a, const U512& b) noexcept {
  uint64_t carry = 0;
  for (size_t i = 0; i < kLimbs; ++i) {
    uint128 s = static_cast<uint128>(a.w[i]) + b.w[i] + carry;
    r.w[i] = static_cast<uint64_t>(s);
    carry = static_cast<uint64_t>(s >> 64);
  }
  return carry;
}

uint64_t sub(U512& r, const U512& a, const U512& b) noexcept {
  uint64_t borrow = 0;
  for (size_t i = 0; i < kLimbs; ++i) {
    uint128 d = static_cast<uint128>(a.w[i]) - b.w[i] - borrow;
    r.w[i] = static_cast<uint64_t>(d);
    borrow = static_cast<uint64_t>((d >> 64) & 1);
  }
  return borrow;
}

void mul_wide(U1024& r, const U512& a, const U512& b) noexcept {
  r.fill(0);
  for (size_t i = 0; i < kLimbs; ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < kLimbs; ++j) {
      uint128 cur = static_cast<uint128>(a.w[i]) * b.w[j] + r[i + j] + carry;
      r[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    r[i + kLimbs] = carry;
  }
}

U512 shl1(const U512& a) noexcept {
  U512 r;
  uint64_t carry = 0;
  for (size_t i = 0; i < kLimbs; ++i) {
    r.w[i] = (a.w[i] << 1) | carry;
    carry = a.w[i] >> 63;
  }
  return r;
}

U512 shr1(const U512& a) noexcept { return shr1_carry(a, 0); }

U512 shr1_carry(const U512& a, uint64_t carry_in) noexcept {
  U512 r;
  uint64_t carry = carry_in & 1;
  for (size_t i = kLimbs; i-- > 0;) {
    r.w[i] = (a.w[i] >> 1) | (carry << 63);
    carry = a.w[i] & 1;
  }
  return r;
}

DivMod divmod(const U512& a, const U512& m) {
  if (m.is_zero()) throw std::domain_error("divmod: zero modulus");
  DivMod out;
  if (a < m) {
    out.remainder = a;
    return out;
  }
  for (size_t bit = a.bit_length(); bit-- > 0;) {
    uint64_t carry = 0;
    {
      // remainder = remainder << 1 | a.bit(bit)
      U512& r = out.remainder;
      for (size_t i = 0; i < kLimbs; ++i) {
        uint64_t next = r.w[i] >> 63;
        r.w[i] = (r.w[i] << 1) | carry;
        carry = next;
      }
      r.w[0] |= a.bit(bit) ? 1 : 0;
    }
    out.quotient = shl1(out.quotient);
    if (!(out.remainder < m)) {
      U512 tmp;
      sub(tmp, out.remainder, m);
      out.remainder = tmp;
      out.quotient.w[0] |= 1;
    }
  }
  return out;
}

U512 mod(const U512& a, const U512& m) {
  if (m.is_zero()) throw std::domain_error("mod: zero modulus");
  if (a < m) return a;
  // Binary long division: align m's top bit with a's, then shift-subtract.
  size_t shift = a.bit_length() - m.bit_length();
  U512 r = a;
  // Build m << shift limb-wise to avoid 512 single-bit shifts.
  for (size_t s = shift + 1; s-- > 0;) {
    // den = m << s (may conceptually overflow only if s too big; bounded by
    // construction since a fits in 512 bits and m<<shift <= a's magnitude*2).
    U512 den;
    size_t limb_shift = s / 64;
    size_t bit_shift = s % 64;
    for (size_t i = kLimbs; i-- > 0;) {
      uint64_t hi = (i >= limb_shift) ? m.w[i - limb_shift] << bit_shift : 0;
      uint64_t lo = (bit_shift != 0 && i >= limb_shift + 1)
                        ? m.w[i - limb_shift - 1] >> (64 - bit_shift)
                        : 0;
      den.w[i] = hi | lo;
    }
    if (den <= r) {
      U512 tmp;
      sub(tmp, r, den);
      r = tmp;
    }
  }
  return r;
}

namespace {
// Shifts r left by one bit in place, returning the bit shifted out the top.
uint64_t shl1_into(U512& r) noexcept {
  uint64_t carry = 0;
  for (size_t i = 0; i < kLimbs; ++i) {
    uint64_t next = r.w[i] >> 63;
    r.w[i] = (r.w[i] << 1) | carry;
    carry = next;
  }
  return carry;
}
}  // namespace

U512 mod_wide(const U1024& a, const U512& m) {
  if (m.is_zero()) throw std::domain_error("mod_wide: zero modulus");
  // Process the high half one bit at a time into a 512-bit remainder, then
  // finish with the narrow reduction. Remainder r always stays < m.
  U512 r;  // running remainder
  bool high_nonzero = false;
  for (size_t i = 2 * kLimbs; i-- > kLimbs;) high_nonzero |= (a[i] != 0);
  if (!high_nonzero) {
    U512 lo;
    for (size_t i = 0; i < kLimbs; ++i) lo.w[i] = a[i];
    return mod(lo, m);
  }
  for (size_t bit = 2 * kBits; bit-- > 0;) {
    uint64_t carry = shl1_into(r);
    r.w[0] |= (a[bit / 64] >> (bit % 64)) & 1;
    // If the shift overflowed 512 bits or r >= m, subtract m. Overflow can
    // only happen when m uses all 512 bits; then r < 2m and one subtraction
    // restores the invariant.
    if (carry != 0 || !(r < m)) {
      U512 tmp;
      sub(tmp, r, m);
      r = tmp;
    }
  }
  return r;
}

U512 add_mod(const U512& a, const U512& b, const U512& m) noexcept {
  U512 r;
  uint64_t carry = add(r, a, b);
  if (carry != 0 || !(r < m)) {
    U512 tmp;
    sub(tmp, r, m);
    r = tmp;
  }
  return r;
}

U512 sub_mod(const U512& a, const U512& b, const U512& m) noexcept {
  U512 r;
  uint64_t borrow = sub(r, a, b);
  if (borrow != 0) {
    U512 tmp;
    add(tmp, r, m);
    r = tmp;
  }
  return r;
}

U512 mul_mod(const U512& a, const U512& b, const U512& m) {
  U1024 wide;
  mul_wide(wide, a, b);
  return mod_wide(wide, m);
}

U512 inv_mod(const U512& a, const U512& m) {
  if (!m.is_odd()) throw std::domain_error("inv_mod: even modulus");
  U512 u = mod(a, m);
  if (u.is_zero()) throw std::domain_error("inv_mod: zero input");
  U512 v = m;
  U512 x1 = U512::from_u64(1);
  U512 x2;  // 0
  const U512 one = U512::from_u64(1);
  while (u != one && v != one) {
    // gcd(a, m) != 1 drives one operand to zero; bail out instead of
    // halving zero forever.
    if (u.is_zero() || v.is_zero()) {
      throw std::domain_error("inv_mod: not invertible");
    }
    while (!u.is_odd()) {
      u = shr1(u);
      if (x1.is_odd()) {
        U512 tmp;
        uint64_t carry = add(tmp, x1, m);
        x1 = shr1_carry(tmp, carry);
      } else {
        x1 = shr1(x1);
      }
    }
    while (!v.is_odd()) {
      v = shr1(v);
      if (x2.is_odd()) {
        U512 tmp;
        uint64_t carry = add(tmp, x2, m);
        x2 = shr1_carry(tmp, carry);
      } else {
        x2 = shr1(x2);
      }
    }
    if (u >= v) {
      U512 tmp;
      sub(tmp, u, v);
      u = tmp;
      x1 = sub_mod(x1, x2, m);
    } else {
      U512 tmp;
      sub(tmp, v, u);
      v = tmp;
      x2 = sub_mod(x2, x1, m);
    }
  }
  U512 r = (u == one) ? x1 : x2;
  // gcd != 1 leaves u and v both != 1 only if the loop exited wrongly; guard
  // by verifying the result.
  if (mul_mod(mod(a, m), r, m) != one) {
    throw std::domain_error("inv_mod: not invertible");
  }
  return r;
}

}  // namespace hcpp::mp
