// The six HCPP entities (§III.A) and their protocol roles. Client-driven
// protocols (storage, retrieval, privilege, emergency, MHI) are methods on
// the initiating entity; servers expose handle_* methods that verify MACs /
// signatures / freshness and never trust their inputs.
//
// Construction order for a deployment: AServer (owns the IBC domain) →
// SServer / Physician (keys extracted from the domain) → Patient (pseudonym
// issued, then self-rerandomized) → Family / PDevice (receive the privilege
// bundle from the patient). See Deployment in setup.h for a one-call wiring.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/be/broadcast.h"
#include "src/cipher/drbg.h"
#include "src/core/errors.h"
#include "src/core/messages.h"
#include "src/core/mhi_stream.h"
#include "src/core/record.h"
#include "src/ibc/domain.h"
#include "src/ibc/hibc.h"
#include "src/ledger/ledger.h"
#include "src/peks/peks.h"
#include "src/sim/network.h"
#include "src/sse/dynamic.h"
#include "src/store/store.h"

namespace hcpp::sim {
class OnionNetwork;
}

namespace hcpp::par {
class ThreadPool;
}

namespace hcpp::core {

class SServer;
class SServerGroup;   // cluster.h — replicated hospital storage (§VI.D)
class AServerCluster;  // cluster.h — replicated state authority (§VI.D)

/// Immutable point-in-time copy of one account's searchable state, shared
/// read-only across SEARCH workers (search_service.h). The shared_ptrs keep
/// a snapshot alive for in-flight queries even after the live server mutates
/// or republishes the account.
struct AccountSnapshot {
  std::shared_ptr<const sse::SecureIndex> index;
  std::shared_ptr<const sse::EncryptedCollection> files;
  std::shared_ptr<const sse::UpdateLog> log;  // forward-private update layer
  Bytes d;  // current privilege key for θ_d unwrap
};

// ---------------------------------------------------------------------------
/// State A-server: trusted government authority (§III.A). Owns the IBC
/// domain (PKG), tracks on-duty physicians, runs the emergency
/// authentication of §IV.E.2, extracts MHI role keys, and keeps the TR
/// accountability log.
class AServer {
 public:
  AServer(sim::Network& net, const curve::CurveCtx& ctx, std::string id,
          RandomSource& seed);
  /// Replica constructor (§VI.D): joins an existing domain — same master
  /// secret, own identity — so any local office can serve requests.
  AServer(sim::Network& net, const ibc::Domain& shared_domain, std::string id,
          RandomSource& seed);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const ibc::Domain& domain() const noexcept { return domain_; }
  [[nodiscard]] const ibc::PublicParams& pub() const noexcept {
    return domain_.pub();
  }
  [[nodiscard]] const curve::CurveCtx& ctx() const noexcept {
    return domain_.ctx();
  }
  [[nodiscard]] sim::Network& net() const noexcept { return *net_; }

  /// Provisioning: extract Γ_entity (run out-of-band at enrolment).
  [[nodiscard]] curve::Point provision(std::string_view entity_id) const;
  /// Hospital-assisted pseudonym issuance (§IV.B).
  [[nodiscard]] ibc::Domain::Pseudonym issue_pseudonym() const;

  /// The published "today's on-duty physicians" list (§IV.E.2).
  void set_on_duty(const std::string& physician_id, bool on_duty);
  [[nodiscard]] bool is_on_duty(const std::string& physician_id) const;

  /// §IV.E.2 steps 1–3. Returns the two signed outbound messages, or nullopt
  /// when the signature fails, the timestamp is stale, or the physician is
  /// not on duty.
  struct EmergencyAuthOutcome {
    PasscodeToPhysician to_physician;
    PasscodeToPDevice to_pdevice;
  };
  std::optional<EmergencyAuthOutcome> handle_emergency_auth(
      const EmergencyAuthRequest& req);

  /// Coalesced form for a burst of §IV.E.2 step-1 requests drained from one
  /// queue: every physician IBS in the batch goes through a single
  /// PairingCoalescer drain (fused Miller products, one batched final
  /// exponentiation), instead of two full pairings per request. result[i]
  /// is exactly what handle_emergency_auth(reqs[i]) would have returned had
  /// the requests arrived one at a time in order (including replay-cache
  /// effects between duplicates).
  std::vector<std::optional<EmergencyAuthOutcome>> handle_emergency_auth_batch(
      std::span<const EmergencyAuthRequest> reqs,
      par::ThreadPool* pool = nullptr);

  /// MHI role-key extraction for an authenticated on-duty physician.
  std::optional<curve::Point> handle_role_key_request(
      const RoleKeyRequest& req);

  /// TR log (audited in accountability.h).
  [[nodiscard]] const std::vector<TraceRecord>& traces() const noexcept {
    return traces_;
  }

  /// Tamper-evident mirror of the TR log: every handle_emergency_auth also
  /// appends the trace as a hash-chained ledger entry, so the audit can
  /// detect a truncated/reordered/forked history, not just bad signatures.
  [[nodiscard]] ledger::Ledger& trace_ledger() noexcept {
    return trace_ledger_;
  }
  [[nodiscard]] const ledger::Ledger& trace_ledger() const noexcept {
    return trace_ledger_;
  }

 private:
  /// Steps shared by the single and batched handlers once the physician's
  /// IBS has been verified: on-duty and pseudonym checks, passcode issuance,
  /// TR trace append.
  std::optional<EmergencyAuthOutcome> finish_emergency_auth(
      const EmergencyAuthRequest& req);

  sim::Network* net_;
  std::string id_;
  ibc::Domain domain_;
  curve::Point self_key_;  // Γ_A (signing / shared keys)
  ibc::SharedKeyDeriver key_deriver_;  // fixed-Γ_A NIKE precomputation
  std::map<std::string, bool> on_duty_;
  std::vector<TraceRecord> traces_;
  ledger::Ledger trace_ledger_;
  mutable cipher::Drbg rng_;
};

// ---------------------------------------------------------------------------
/// Hospital storage server (§III.A): public, honest-but-curious. Stores
/// per-pseudonym accounts of (SI, Λ, d, BE_U(d)) plus the MHI store, and
/// answers searches without learning keywords, contents, or ownership.
class SServer {
 public:
  /// `service_id` is the identity whose Γ_S this server holds for deriving
  /// pairwise keys (ν, ρ). It defaults to `id`; replicas in an SServerGroup
  /// share one service identity while keeping distinct instance ids for
  /// addressing and replay caching, so any replica can serve any client.
  SServer(sim::Network& net, const AServer& authority, std::string id,
          std::string service_id = {});

  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const std::string& service_id() const noexcept {
    return service_id_;
  }
  [[nodiscard]] sim::Network& net() const noexcept { return *net_; }

  // §IV.B — accepts (SI, Λ) plus the privilege material.
  bool handle_store(const StoreRequest& req);
  // §IV.D — owner search with plain trapdoors.
  std::optional<RetrieveResponse> handle_retrieve(const RetrieveRequest& req);
  // §IV.E.1 messages 1–2 — hand out the current BE_{U'}(d).
  std::optional<BeBlobResponse> handle_be_request(const BeBlobRequest& req);
  // §IV.E.1 messages 3–4 — privileged search with θ_d-wrapped trapdoors.
  std::optional<RetrieveResponse> handle_privileged_retrieve(
      const PrivilegedRetrieveRequest& req);
  // Dynamic PHI update (DESIGN.md §12) — O(delta) forward-private
  // ADD/DELETE: append update-log entries, upsert/drop the touched file
  // blobs. The packed index and the base store record are untouched.
  bool handle_update(const UpdateRequest& req);
  // Folds the update log away: replaces the packed index (rebuilt
  // owner-side with fresh randomness) and clears the log.
  bool handle_compact(const CompactRequest& req);
  // §IV.C REVOKE — re-key d and replace BE_U(d).
  bool handle_revoke(const RevokeRequest& req);
  // §IV.E.2 — MHI storage and role-based PEKS search. Stored windows are
  // also fed through the streaming hub (DESIGN.md §13), so standing
  // registrations see them the moment they land.
  bool handle_mhi_store(const MhiStoreRequest& req);
  std::optional<MhiRetrieveResponse> handle_mhi_retrieve(
      const MhiRetrieveRequest& req);
  // DESIGN.md §13 — standing-query registration and hit drain.
  bool handle_mhi_register(const MhiRegisterRequest& req);
  std::optional<MhiHitsResponse> handle_mhi_hits(const MhiHitsRequest& req);

  /// The streaming-MHI hub holding standing trapdoor registrations.
  [[nodiscard]] MhiStreamHub& mhi_hub() noexcept { return mhi_hub_; }
  [[nodiscard]] const MhiStreamHub& mhi_hub() const noexcept {
    return mhi_hub_;
  }
  /// Shards the hub's and the retrieval path's batched final exponentiations
  /// onto `pool` (nullptr = serial). The pool must outlive the server.
  void attach_mhi_pool(par::ThreadPool* pool) noexcept { mhi_pool_ = pool; }

  /// ν for a presented pseudonym: ê(Γ_S, TPp).
  [[nodiscard]] Bytes shared_key_for(BytesView tp_bytes) const;
  /// The fixed-Γ_S precomputation behind shared_key_for, exposed so the
  /// SEARCH front-end's batch path (SearchService::search_batch_privileged)
  /// can queue its ν derivations on a cross-request PairingCoalescer.
  [[nodiscard]] const ibc::SharedKeyDeriver& nu_deriver() const noexcept {
    return nu_deriver_;
  }

  /// Durable state: everything the hospital must retain across restarts
  /// (accounts and the MHI store — all ciphertext). Versioned format;
  /// import replaces the current state and rejects malformed blobs.
  [[nodiscard]] Bytes export_state() const;
  bool import_state(BytesView state);
  bool save_to_file(const std::string& path) const;
  bool load_from_file(const std::string& path);

  /// What the curious server can see — used by the unlinkability tests and
  /// baseline comparison (E5).
  [[nodiscard]] size_t account_count() const noexcept {
    return accounts_.size();
  }
  [[nodiscard]] std::vector<std::string> visible_account_ids() const;
  [[nodiscard]] size_t stored_bytes() const;
  [[nodiscard]] size_t mhi_entry_count() const noexcept {
    size_t n = 0;
    for (const auto& [role, entries] : mhi_store_) n += entries.size();
    return n;
  }

  /// Copies every account into immutable snapshots for the concurrent SEARCH
  /// front-end (search_service.h). Keys are account_key(tp, collection).
  [[nodiscard]] std::map<std::string, AccountSnapshot> snapshot_accounts()
      const;
  /// The account-map key for a pseudonym + collection pair (public so the
  /// search service and its clients can address snapshots).
  static std::string account_key(BytesView tp, const std::string& collection);

  /// Attaches a persistent account store (src/store) at `dir`: recovers it,
  /// hydrates the in-memory map from the surviving records, writes through
  /// any in-memory accounts the store is missing, and from then on mirrors
  /// every account mutation into the log. The map stays the serving copy —
  /// the store is the durable one — which is exactly what makes it a
  /// differential oracle: store_consistent() can compare the two byte for
  /// byte at any point. The MHI store is not yet persisted (ciphertext-only
  /// side table; see DESIGN.md §11).
  bool attach_store(const std::string& dir,
                    store::StoreRecoveryReport* report = nullptr);
  [[nodiscard]] bool has_store() const noexcept { return store_.is_open(); }
  [[nodiscard]] store::AccountStore& account_store() noexcept {
    return store_;
  }
  [[nodiscard]] const store::AccountStore& account_store() const noexcept {
    return store_;
  }
  /// Differential oracle: true iff the store holds exactly the accounts the
  /// in-memory map does, each serialized byte-identical. Always true without
  /// an attached store.
  [[nodiscard]] bool store_consistent() const;

 private:
  struct Account {
    /// Immutable between whole-index writes (STORE/COMPACT) — shared into
    /// snapshots instead of deep-copied, so an UPDATE-triggered republish is
    /// O(log + files), never O(index).
    std::shared_ptr<const sse::SecureIndex> index;
    sse::EncryptedCollection files;
    sse::UpdateLog log;  // forward-private ADD/DELETE entries
    Bytes d;
    Bytes be_blob;
  };
  struct MhiEntry {
    std::vector<peks::PeksCiphertext> tags;
    Bytes ibe_blob;
  };

  Account* find_account(BytesView tp, const std::string& collection);

  // Store key layout (DESIGN.md §12): an account spans one base record
  // `<key>` (index ‖ d ‖ BE_U(d)) plus one record per file blob
  // (`<key>#f/<hex fid>`) and one per update-log entry (`<key>#l/<label>`),
  // so an UPDATE is O(delta) disk appends and never rewrites the index.
  static std::string file_record_key(const std::string& key, sse::FileId id);
  static std::string log_record_key(const std::string& key,
                                    const std::string& label);
  /// Base-record serialization (index ‖ d ‖ BE_U(d)) — the byte format
  /// store_consistent() compares against.
  static Bytes account_base_bytes(const Account& acct);
  /// Write-through helpers: no-ops when no store is attached.
  void store_put_base(const std::string& key, const Account& acct);
  void store_put_file(const std::string& key, sse::FileId id, BytesView blob);
  void store_erase_file(const std::string& key, sse::FileId id);
  void store_put_log(const std::string& key, const std::string& label,
                     BytesView entry);
  /// Mirrors every record of one account (base + files + log).
  void store_put_all(const std::string& key, const Account& acct);
  /// Erases every record of `acct` (the in-memory image tells us exactly
  /// which sub-records exist — no store-wide key scan).
  void store_erase_all(const std::string& key, const Account& acct);
  void store_put_checked(const std::string& key, BytesView value);
  /// Write-through for whole-map replacement (import_state): rewrites every
  /// account and tombstones store keys the new map no longer has.
  void store_replace_all();

  sim::Network* net_;
  std::string id_;
  std::string service_id_;
  const curve::CurveCtx* ctx_;
  curve::Point self_key_;  // Γ_S (for service_id_)
  ibc::SharedKeyDeriver nu_deriver_;  // fixed-Γ_S ν/ρ precomputation
  std::map<std::string, Account> accounts_;
  // Indexed by role_id so a retrieve or streamed ingest touches only its
  // role's bucket, never the whole store.
  std::map<std::string, std::vector<MhiEntry>> mhi_store_;
  MhiStreamHub mhi_hub_;
  par::ThreadPool* mhi_pool_ = nullptr;
  store::AccountStore store_;  // unopened until attach_store()
};

// ---------------------------------------------------------------------------
/// The privilege bundle of §IV.C's ASSIGN: everything family/P-device need
/// to retrieve on the patient's behalf (TPp, ν, a..d, s, KI, dictionary, X).
struct PrivilegeBundle {
  Bytes tp;  // serialized TPp
  Bytes nu;  // ν — the pairwise key with the S-server (family cannot derive
             // it without Γp, so the patient hands it over directly)
  /// Serialized Γp — included only in the P-device's bundle, which must
  /// decrypt IBE_TPp passcode deliveries (§IV.E.2 step 3). Empty for family.
  Bytes gamma;
  sse::Keys keys;
  KeywordIndex ki;
  std::string collection;
  be::MemberKeys member_keys;  // X
  /// Aliases per logical keyword in the stored index (§VI.B countermeasure).
  uint32_t alias_count = 1;
  /// Per-keyword update-chain positions as of the ASSIGN. Privileged
  /// entities search the collection as of this point — they cannot derive
  /// post-assignment states (forward privacy working as specified).
  sse::UpdateState update_state;

  [[nodiscard]] Bytes to_bytes() const;
  static PrivilegeBundle from_bytes(BytesView b);
};

// ---------------------------------------------------------------------------
/// Patient (§III.A): person + computing facilities. Owns the SSE keys, the
/// keyword index, the pseudonym and the broadcast-encryption group.
class Patient {
 public:
  Patient(sim::Network& net, std::string name, RandomSource& seed);

  /// §IV.A+B setup: obtain a temporary key pair from the hospital's
  /// authority and self-rerandomize it, generate SSE keys and the BE group.
  void setup(const AServer& authority, const std::string& sserver_id);

  /// Registers freshly created PHI files (after a diagnosis/test).
  void add_files(std::vector<sse::PlainFile> files);

  /// §VI.B category-1 countermeasure: index each logical keyword under `n`
  /// aliases; retrievals rotate through them so the server cannot tell two
  /// searches for the same keyword apart. Call before store_phi. n >= 1.
  void set_keyword_aliases(size_t n);
  [[nodiscard]] size_t keyword_aliases() const noexcept {
    return alias_count_;
  }
  [[nodiscard]] const std::vector<sse::PlainFile>& files() const noexcept {
    return files_;
  }

  /// Dynamic PHI update (DESIGN.md §12): registers `added` files (upsert by
  /// id) and tombstones `removed` ids, shipping O(delta) forward-private
  /// log inserts plus only the touched blobs — no index rebuild, no
  /// whole-collection re-encryption. Local state (files, KI, counters)
  /// commits unconditionally; the generated labels are deterministic, so a
  /// transport retry re-sends identical records.
  Result<void> try_update_phi(SServer& server,
                              std::vector<sse::PlainFile> added,
                              std::span<const sse::FileId> removed = {});
  bool update_phi(SServer& server, std::vector<sse::PlainFile> added,
                  std::span<const sse::FileId> removed = {});
  /// Sharded groups route to the owning shard; replicated groups mirror the
  /// same update to every reachable replica.
  Result<size_t> try_update_phi(SServerGroup& group,
                                std::vector<sse::PlainFile> added,
                                std::span<const sse::FileId> removed = {});

  /// COMPACT: folds the accumulated update log back into a freshly built
  /// packed index (new randomness) and resets the counters under a bumped
  /// epoch. Local state commits only on success; an applied-but-unacked
  /// compaction is still safe (stale dynamic trapdoors degrade to the
  /// rebuilt static index, which already contains every live file).
  Result<void> try_compact_phi(SServer& server);
  bool compact_phi(SServer& server);

  [[nodiscard]] const sse::UpdateState& update_state() const noexcept {
    return update_state_;
  }

  /// §IV.B: build SI + KI on the home PC and upload (SI, Λ, d, BE_U(d)).
  bool store_phi(SServer& server);
  /// Typed variant: routed through the retrying transport, distinguishing
  /// transient delivery failure from authoritative rejection.
  Result<void> try_store_phi(SServer& server);
  /// Replicated upload: mirrors the collection onto every reachable replica.
  /// Succeeds — returning how many replicas accepted — when at least one did.
  Result<size_t> store_phi(SServerGroup& group);

  /// §IV.D: one-round keyword retrieval; decrypts Λ(kw) on the cell phone.
  [[nodiscard]] std::vector<sse::PlainFile> retrieve(
      SServer& server, std::span<const std::string> keywords);
  Result<std::vector<sse::PlainFile>> try_retrieve(
      SServer& server, std::span<const std::string> keywords);
  /// Read failover (§VI.D): tries replicas in order until one answers;
  /// transient per-replica failures move on to the next office.
  Result<std::vector<sse::PlainFile>> retrieve(
      SServerGroup& group, std::span<const std::string> keywords);

  // §VI.B countermeasure: the same two protocols carried over the anonymous
  // onion overlay, so the S-server (and any network observer past the entry
  // relay) sees only the exit relay as the traffic origin.
  bool store_phi_anonymous(SServer& server, sim::OnionNetwork& onion);
  [[nodiscard]] std::vector<sse::PlainFile> retrieve_anonymous(
      SServer& server, sim::OnionNetwork& onion,
      std::span<const std::string> keywords);

  /// §IV.C ASSIGN: seal the privilege bundle for member slot `slot` under
  /// the pre-shared key μ. `include_gamma` adds Γp (P-device bundles only).
  [[nodiscard]] Bytes make_sealed_bundle(size_t slot, BytesView mu,
                                         bool include_gamma = false);

  /// §IV.C REVOKE: re-key d, re-broadcast, update the S-server.
  bool revoke_member(SServer& server, size_t slot);
  Result<void> try_revoke_member(SServer& server, size_t slot);
  /// Replicated REVOKE: one re-keying fanned out to every reachable replica
  /// (returns how many applied it; fails if none did — the patient should
  /// retry, since a stale replica would still honor revoked trapdoors).
  Result<size_t> revoke_member(SServerGroup& group, size_t slot);

  [[nodiscard]] const ibc::Domain::Pseudonym& pseudonym() const noexcept {
    return pseudonym_;
  }
  [[nodiscard]] Bytes tp_bytes() const;
  [[nodiscard]] const sse::Keys& keys() const noexcept { return keys_; }
  [[nodiscard]] const KeywordIndex& keyword_index() const noexcept {
    return ki_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& collection() const noexcept {
    return collection_;
  }
  [[nodiscard]] Bytes shared_key_nu() const;  // ν with the S-server
  [[nodiscard]] RandomSource& rng() noexcept { return rng_; }
  [[nodiscard]] sim::Network& net() const noexcept { return *net_; }

 private:
  sim::Network* net_;
  std::string name_;
  std::string sserver_id_;
  std::string collection_ = "phi-main";
  const curve::CurveCtx* ctx_ = nullptr;
  ibc::Domain::Pseudonym pseudonym_;
  Bytes nu_;  // ν with the S-server, fixed once setup() pins the pseudonym
  sse::Keys keys_;
  KeywordIndex ki_;
  std::vector<sse::PlainFile> files_;
  std::unique_ptr<be::BroadcastGroup> be_group_;
  size_t alias_count_ = 1;
  std::map<std::string, size_t> alias_cursor_;  // per-keyword rotation
  sse::UpdateState update_state_;  // per-alias update-chain counters
  mutable cipher::Drbg rng_;

  /// Logical keyword -> the alias to search this time (rotating).
  [[nodiscard]] std::string next_alias(const std::string& kw);
  /// Wire trapdoors for a keyword batch: rotates aliases and emits the
  /// 100-byte dynamic encoding for updated keywords, the legacy 60-byte
  /// static one otherwise (so never-updated flows stay byte-identical).
  [[nodiscard]] std::vector<Bytes> make_trapdoor_blobs(
      std::span<const std::string> keywords);
  /// Shared body of try_update_phi: commits local state and builds the
  /// request (update.cpp).
  UpdateRequest build_update_request(std::vector<sse::PlainFile> added,
                                     std::span<const sse::FileId> removed);
};

// ---------------------------------------------------------------------------
/// Family (§III.A): trusted person holding the privilege bundle; can run
/// the 4-message emergency retrieval of §IV.E.1.
class Family {
 public:
  Family(sim::Network& net, std::string name);

  /// Receives E'_μ(bundle) from the patient (local link).
  bool receive_bundle(BytesView sealed, BytesView mu);
  [[nodiscard]] bool has_bundle() const noexcept {
    return bundle_.has_value();
  }
  [[nodiscard]] const PrivilegeBundle& bundle() const { return *bundle_; }

  /// §IV.E.1: recover the current d from BE_{U'}(d), submit θ_d-wrapped
  /// trapdoors, decrypt the returned files. Empty result when revoked or
  /// when no keyword matches.
  [[nodiscard]] std::vector<sse::PlainFile> emergency_retrieve(
      SServer& server, std::span<const std::string> keywords);
  Result<std::vector<sse::PlainFile>> try_emergency_retrieve(
      SServer& server, std::span<const std::string> keywords);
  /// Read failover across a replicated hospital (§VI.D).
  Result<std::vector<sse::PlainFile>> emergency_retrieve(
      SServerGroup& group, std::span<const std::string> keywords);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  sim::Network* net_;
  std::string name_;
  std::optional<PrivilegeBundle> bundle_;
};

// ---------------------------------------------------------------------------
/// P-device (§III.A): the patient-owned device for sudden emergencies. Runs
/// the passcode-gated emergency retrieval of §IV.E.2, collects and stores
/// MHI, keeps the RD accountability log, and alerts the patient whenever
/// its retrieval secrets are touched (§VI.A countermeasure).
class PDevice {
 public:
  PDevice(sim::Network& net, std::string id, RandomSource& seed);

  bool receive_bundle(BytesView sealed, BytesView mu);
  [[nodiscard]] bool has_bundle() const noexcept {
    return bundle_.has_value();
  }
  [[nodiscard]] const PrivilegeBundle& bundle() const { return *bundle_; }

  /// The emergency button: arms the device and connects to the A-server.
  void press_emergency_button();
  [[nodiscard]] bool in_emergency_mode() const noexcept {
    return emergency_mode_;
  }

  /// A-server → P-device delivery (§IV.E.2 step 3). Verifies the A-server's
  /// IBS and decrypts the nonce with the bundled Γp.
  bool deliver_passcode(const AServer& authority,
                        const PasscodeToPDevice& msg);

  /// The physician physically types (ID, nonce). One attempt per delivered
  /// passcode; success opens a retrieval session bound to that physician.
  bool enter_passcode(const std::string& physician_id, BytesView nonce);

  /// §IV.E.2 PHI retrieval: dictionary-checked keywords, family-style
  /// 4-message exchange, RD record appended. Requires an open session.
  [[nodiscard]] std::vector<sse::PlainFile> emergency_retrieve(
      SServer& server, std::span<const std::string> keywords);
  Result<std::vector<sse::PlainFile>> try_emergency_retrieve(
      SServer& server, std::span<const std::string> keywords);
  /// Read failover across a replicated hospital (§VI.D).
  Result<std::vector<sse::PlainFile>> emergency_retrieve(
      SServerGroup& group, std::span<const std::string> keywords);

  // ---- MHI (§IV.E.2) ----
  void collect_mhi(MhiWindow window);
  [[nodiscard]] const std::vector<MhiWindow>& collected_mhi() const noexcept {
    return mhi_;
  }
  /// Encrypts each collected window under `role_id` with IBE, tags it with
  /// PEKS keywords (the window's day plus `extra_keywords`), uploads.
  bool store_mhi(const AServer& authority, SServer& server,
                 const std::string& role_id,
                 std::span<const std::string> extra_keywords);
  Result<void> try_store_mhi(const AServer& authority, SServer& server,
                             const std::string& role_id,
                             std::span<const std::string> extra_keywords);

  /// Streaming upload (DESIGN.md §13): encrypts and uploads ONE window for
  /// the current role epoch, with the per-epoch pairings cached across
  /// calls (first window of an epoch pays them; the rest are pairing-free).
  /// Passing a different `role_id` than the previous call rolls the epoch.
  Result<void> try_stream_mhi(const AServer& authority, SServer& server,
                              const std::string& role_id,
                              const MhiWindow& window,
                              std::span<const std::string> extra_keywords);
  bool stream_mhi(const AServer& authority, SServer& server,
                  const std::string& role_id, const MhiWindow& window,
                  std::span<const std::string> extra_keywords);
  /// The streaming encryptor's current epoch, empty when none started.
  [[nodiscard]] std::string mhi_stream_epoch() const {
    return mhi_ingestor_ ? mhi_ingestor_->role_id() : std::string{};
  }

  [[nodiscard]] const std::vector<RdRecord>& records() const noexcept {
    return rd_log_;
  }
  /// §VI.A: count of "your secrets were accessed" alerts sent to the
  /// patient's phone.
  [[nodiscard]] int alert_count() const noexcept { return alerts_; }

  /// Tamper-evident mirror of the RD log: every emergency retrieval appends
  /// the record as a hash-chained entry and queues a patient notification
  /// (Ledger::drain_notifications — the phone's alert feed).
  [[nodiscard]] ledger::Ledger& rd_ledger() noexcept { return rd_ledger_; }
  [[nodiscard]] const ledger::Ledger& rd_ledger() const noexcept {
    return rd_ledger_;
  }

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

 private:
  sim::Network* net_;
  std::string id_;
  std::optional<PrivilegeBundle> bundle_;
  bool emergency_mode_ = false;
  std::optional<Bytes> pending_nonce_;
  std::optional<std::string> pending_physician_;
  std::optional<std::string> session_physician_;
  uint64_t session_t11_ = 0;
  Bytes session_aserver_sig_;
  std::vector<MhiWindow> mhi_;
  std::optional<MhiIngestor> mhi_ingestor_;  // lazy, rolled per epoch
  std::vector<RdRecord> rd_log_;
  ledger::Ledger rd_ledger_;
  int alerts_ = 0;
  mutable cipher::Drbg rng_;
};

// ---------------------------------------------------------------------------
/// Physician (§III.A): healthcare provider + workstation. Authenticates to
/// the A-server with IBS for emergency access and MHI role keys.
class Physician {
 public:
  Physician(sim::Network& net, const AServer& authority, std::string id);

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

  /// §IV.E.2 steps 1–2: request the one-time passcode for the patient whose
  /// pseudonym the P-device displays. On success the A-server has also
  /// pushed the IBE-wrapped passcode to the P-device (step 3), which the
  /// caller delivers via PDevice::deliver_passcode.
  struct PasscodeResult {
    Bytes nonce;                   // the decrypted one-time passcode
    PasscodeToPDevice for_device;  // step-3 message to forward
  };
  std::optional<PasscodeResult> request_passcode(AServer& authority,
                                                 BytesView patient_tp);
  Result<PasscodeResult> try_request_passcode(AServer& authority,
                                              BytesView patient_tp);
  /// §VI.D automatic failover: retries the next local office on timeout
  /// instead of making the caller poll first_available(). On success
  /// `serving_office` (if non-null) receives the index of the office that
  /// answered, so the caller can address follow-up messages to it.
  Result<PasscodeResult> request_passcode(AServerCluster& cluster,
                                          BytesView patient_tp,
                                          size_t* serving_office = nullptr);

  /// MHI: obtain Γr for a role identity (on-duty only).
  std::optional<curve::Point> request_role_key(AServer& authority,
                                               const std::string& role_id);
  Result<curve::Point> try_request_role_key(AServer& authority,
                                            const std::string& role_id);

  /// MHI retrieval (§IV.E.2): compute TDr(kw), search, decrypt with Γr.
  [[nodiscard]] std::vector<MhiWindow> retrieve_mhi(
      SServer& server, const std::string& role_id,
      const curve::Point& role_key, std::string_view keyword);
  Result<std::vector<MhiWindow>> try_retrieve_mhi(
      SServer& server, const std::string& role_id,
      const curve::Point& role_key, std::string_view keyword);

  /// Standing query (DESIGN.md §13): parks TDr(kw) on the S-server so every
  /// window landing for `role_id` is tested immediately; matched windows
  /// queue up server-side until fetch_mhi_hits drains them.
  bool register_mhi(SServer& server, const std::string& role_id,
                    const curve::Point& role_key, std::string_view keyword);
  Result<void> try_register_mhi(SServer& server, const std::string& role_id,
                                const curve::Point& role_key,
                                std::string_view keyword);
  /// Drains and decrypts the hits this physician's standing query matched.
  [[nodiscard]] std::vector<MhiWindow> fetch_mhi_hits(
      SServer& server, const std::string& role_id,
      const curve::Point& role_key);
  Result<std::vector<MhiWindow>> try_fetch_mhi_hits(
      SServer& server, const std::string& role_id,
      const curve::Point& role_key);

 private:
  sim::Network* net_;
  std::string id_;
  const curve::CurveCtx* ctx_;
  ibc::PublicParams authority_pub_;
  std::string authority_id_;
  curve::Point private_key_;  // Γ_i
  ibc::SharedKeyDeriver key_deriver_;  // fixed-Γ_i NIKE precomputation
  mutable cipher::Drbg rng_;
};

}  // namespace hcpp::core
