// §IV.D common-case PHI retrieval: one round — trapdoors up, Λ(kw) down.
// The S-server performs the O(1) SEARCH and never sees keywords or
// plaintext; the patient decrypts on the cell phone and hands the plaintext
// to the physician out of band. The exchange rides the retrying transport;
// against a replicated hospital (SServerGroup) reads fail over to the next
// replica when one office times out.
#include <set>

#include "src/core/cluster.h"
#include "src/core/entities.h"
#include "src/obs/trace.h"
#include "src/sim/onion.h"
#include "src/sim/transport.h"

namespace hcpp::core {

namespace {
constexpr const char* kLabel = "phi-retrieval";

std::vector<sse::PlainFile> decrypt_response(const sse::Keys& keys,
                                             const RetrieveResponse& resp) {
  std::vector<sse::PlainFile> out;
  for (const auto& [id, blob] : resp.files) {
    try {
      out.push_back(sse::decrypt_file(keys, blob));
    } catch (const std::exception&) {
      // Tampered blob: skip it rather than abort the treatment flow.
    }
  }
  return out;
}

/// One transport-routed retrieval round against one server.
Result<std::vector<sse::PlainFile>> send_retrieve(sim::Network& net,
                                                  const std::string& from,
                                                  SServer& server,
                                                  const RetrieveRequest& req,
                                                  BytesView nu,
                                                  const sse::Keys& keys) {
  sim::CallOutcome<RetrieveResponse> out =
      net.transport().request<RetrieveResponse>(
          from, server.id(), req.wire_size(), req.mac, kLabel,
          [&]() { return server.handle_retrieve(req); },
          [](const RetrieveResponse& r) { return r.wire_size(); });
  if (out.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, out.attempts,
                           "retrieval undelivered after retries");
  }
  if (out.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, out.attempts,
                           "S-server refused the retrieval");
  }
  const RetrieveResponse& resp = *out.response;
  if (!protocol_mac_ok(nu, kLabel, resp.body(), resp.t, resp.mac)) {
    return permanent_error(ErrorCode::kBadResponse, out.attempts,
                           "response failed authentication");
  }
  return decrypt_response(keys, resp);
}
}  // namespace

std::vector<Bytes> Patient::make_trapdoor_blobs(
    std::span<const std::string> keywords) {
  std::vector<Bytes> out;
  out.reserve(keywords.size());
  sse::TrapdoorGen gen(keys_);  // one ϖ_c/f_b key schedule for the batch
  std::optional<sse::Updater> up;  // built lazily: only updated keywords pay
  for (const std::string& kw : keywords) {
    // Rotate through aliases so repeated same-keyword searches look
    // unrelated to the server (§VI.B).
    std::string alias = next_alias(kw);
    auto it = update_state_.counters.find(alias);
    if (it != update_state_.counters.end() && it->second > 0) {
      // Updated keyword: the 100-byte dynamic trapdoor lets the server walk
      // the update chain in addition to the static list.
      if (!up.has_value()) up.emplace(keys_, update_state_);
      out.push_back(up->trapdoor(alias).to_bytes());
    } else {
      // Never-updated keyword: legacy 60-byte static trapdoor, so
      // update-free deployments stay byte-identical on the wire.
      out.push_back(gen.make(alias).to_bytes());
    }
  }
  return out;
}

Result<std::vector<sse::PlainFile>> Patient::try_retrieve(
    SServer& server, std::span<const std::string> keywords) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:retrieve");
  RetrieveRequest req;
  req.tp = tp_bytes();
  req.collection = collection_;
  req.trapdoors = make_trapdoor_blobs(keywords);
  Bytes nu = shared_key_nu();
  req.t = net_->clock().now();
  req.mac = protocol_mac(nu, kLabel, req.body(), req.t);
  return send_retrieve(*net_, name_, server, req, nu, keys_);
}

std::vector<sse::PlainFile> Patient::retrieve(
    SServer& server, std::span<const std::string> keywords) {
  return try_retrieve(server, keywords).value_or({});
}

Result<std::vector<sse::PlainFile>> Patient::retrieve(
    SServerGroup& group, std::span<const std::string> keywords) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:retrieve_failover");
  // One prepared request (one alias rotation step), failed over across the
  // replicas; a fresh timestamp/MAC per replica keeps replay caches honest.
  std::vector<Bytes> trapdoors = make_trapdoor_blobs(keywords);
  Bytes nu = shared_key_nu();
  uint32_t attempts = 0;
  // Sharded: only the owning shard holds the account — one attempt, no
  // failover target. Replicated: try each mirror in turn.
  const size_t first = group.sharded() ? group.shard_of(tp_bytes()) : 0;
  const size_t tries = group.sharded() ? 1 : group.size();
  for (size_t i = 0; i < tries; ++i) {
    RetrieveRequest req;
    req.tp = tp_bytes();
    req.collection = collection_;
    req.trapdoors = trapdoors;
    req.t = net_->clock().now();
    req.mac = protocol_mac(nu, kLabel, req.body(), req.t);
    Result<std::vector<sse::PlainFile>> r =
        send_retrieve(*net_, name_, group.replica(first + i), req, nu, keys_);
    if (r.ok() || !r.error().transient()) return r;
    attempts += r.error().attempts;
    obs::count(obs::kSGroupFailover);
  }
  return transient_error(ErrorCode::kUnreachable, attempts,
                         "no storage replica answered the retrieval");
}

std::vector<sse::PlainFile> Patient::retrieve_anonymous(
    SServer& server, sim::OnionNetwork& onion,
    std::span<const std::string> keywords) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  RetrieveRequest req;
  req.tp = tp_bytes();
  req.collection = collection_;
  req.trapdoors = make_trapdoor_blobs(keywords);
  Bytes nu = shared_key_nu();
  req.t = net_->clock().now();
  req.mac = protocol_mac(nu, kLabel, req.body(), req.t);

  Bytes reply = onion.round_trip(
      name_, sserver_id_, req.to_wire(),
      [&server](BytesView wire) -> Bytes {
        try {
          std::optional<RetrieveResponse> resp =
              server.handle_retrieve(RetrieveRequest::from_wire(wire));
          return resp.has_value() ? resp->to_wire() : Bytes{};
        } catch (const std::exception&) {
          return Bytes{};
        }
      },
      rng_);
  if (reply.empty()) return {};
  RetrieveResponse resp;
  try {
    resp = RetrieveResponse::from_wire(reply);
  } catch (const std::exception&) {
    return {};
  }
  if (!protocol_mac_ok(nu, kLabel, resp.body(), resp.t, resp.mac)) return {};
  return decrypt_response(keys_, resp);
}

std::optional<RetrieveResponse> SServer::handle_retrieve(
    const RetrieveRequest& req) {
  obs::Span span("sserver:retrieve");
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!protocol_mac_ok(nu, kLabel, req.body(), req.t, req.mac)) {
    return std::nullopt;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return std::nullopt;

  // Mixed-width batch: 60-byte static trapdoors walk the packed index only;
  // 100-byte dynamic ones additionally walk the account's update log.
  RetrieveResponse resp;
  for (sse::FileId id :
       sse::search_mixed(*acct->index, acct->log, req.trapdoors)) {
    auto it = acct->files.files.find(id);
    if (it != acct->files.files.end()) resp.files.emplace_back(id, it->second);
  }
  resp.t = net_->clock().now();
  resp.mac = protocol_mac(nu, kLabel, resp.body(), resp.t);
  return resp;
}

}  // namespace hcpp::core
