// One-call wiring of a complete HCPP deployment (Fig. 1): A-server, hospital
// S-server, patient with PHI, family, P-device and two physicians (one on
// duty, one off). Tests, examples and benches all start here.
#pragma once

#include <memory>

#include "src/core/accountability.h"
#include "src/core/entities.h"
#include "src/core/privilege.h"
#include "src/curve/params.h"

namespace hcpp::core {

struct DeploymentConfig {
  curve::ParamSet params = curve::ParamSet::kTest;
  size_t n_phi_files = 24;
  size_t keywords_per_file = 3;
  size_t file_content_bytes = 512;
  uint64_t seed = 42;
  bool store_phi = true;          // run §IV.B during creation
  bool assign_privileges = true;  // run §IV.C during creation
};

struct Deployment {
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<cipher::Drbg> rng;
  std::unique_ptr<AServer> aserver;
  std::unique_ptr<SServer> sserver;
  std::unique_ptr<Patient> patient;
  std::unique_ptr<Family> family;
  std::unique_ptr<PDevice> pdevice;
  std::unique_ptr<Physician> on_duty;
  std::unique_ptr<Physician> off_duty;
  /// Hospital → state → federal checkpoint-anchoring hierarchy
  /// (ledger::default_anchor_authorities()), rooted in the A-server's domain.
  std::unique_ptr<ledger::AnchorChain> anchors;
  Bytes mu_family;   // pre-shared key patient↔family
  Bytes mu_pdevice;  // pre-shared key patient↔P-device

  static Deployment create(const DeploymentConfig& config = {});

  /// Convenience: every keyword present in the patient's index.
  [[nodiscard]] std::vector<std::string> all_keywords() const;
};

}  // namespace hcpp::core
