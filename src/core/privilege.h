// §IV.C privilege assignment drivers: local ASSIGN delivery to family and
// P-device, and the BE slot conventions a deployment uses.
#pragma once

#include "src/core/entities.h"

namespace hcpp::core {

/// Conventional broadcast-encryption leaf slots.
inline constexpr size_t kFamilySlot = 0;
inline constexpr size_t kPDeviceSlot = 1;

/// Runs ASSIGN over the patient's local network: seals the bundle under the
/// pre-shared key `mu`, charges the (local) link, delivers. Returns false
/// when the receiver rejects the bundle.
bool assign_privilege(Patient& patient, Family& family, BytesView mu);
bool assign_privilege(Patient& patient, PDevice& device, BytesView mu);

}  // namespace hcpp::core
