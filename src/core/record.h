// PHI/MHI data model (§III.A definitions) and synthetic generators.
//
// Substitution note (DESIGN.md): real EHR corpora and body-sensor feeds are
// not available, so we generate category-structured PHI files (the paper's
// "allergy lists, drug history, X-ray data, surgeries, etc.") and synthetic
// vital-sign series with injected anomalies for MHI. The generators exercise
// exactly the code paths the paper's protocols exercise.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/sse/sse.h"

namespace hcpp::core {

/// The patient-side keyword index KI (§IV.A): keyword -> file ids, plus the
/// agreed-upon keyword dictionary. Kept on the patient's cell phone and
/// handed to family/P-device in privilege assignment.
struct KeywordIndex {
  std::map<std::string, std::vector<sse::FileId>> entries;
  std::map<sse::FileId, std::string> file_names;
  /// Network address bookkeeping (§IV.D): which S-server holds which
  /// collection.
  std::string sserver_id;

  [[nodiscard]] std::vector<std::string> dictionary() const;
  [[nodiscard]] bool contains(std::string_view kw) const;

  [[nodiscard]] Bytes to_bytes() const;
  static KeywordIndex from_bytes(BytesView b);

  static KeywordIndex build(std::span<const sse::PlainFile> files,
                            std::string sserver_id);
};

/// The PHI category taxonomy used by the generator (§IV.B: "the patient
/// breaks the PHI into files for different categories").
inline constexpr const char* kPhiCategories[] = {
    "allergy",   "medication", "lab-result", "imaging",
    "surgery",   "immunization", "cardiology", "clinical-note"};

/// Generates a synthetic PHI collection of `n_files` files with ids starting
/// at `first_id`. Each file carries its category keyword plus
/// `extra_keywords_per_file` attribute keywords drawn from a closed
/// vocabulary, so multi-file postings lists occur naturally.
std::vector<sse::PlainFile> generate_phi_collection(
    size_t n_files, RandomSource& rng, sse::FileId first_id = 1,
    size_t extra_keywords_per_file = 3, size_t content_bytes = 512);

// ---- Keyword aliasing (§VI.B, traffic-analysis category 1b) ---------------
// "The patient can make the keyword choice flexible such that multiple
// keywords can be used in different searches leading to the same set of
// files, with the added complication in the size increase of the keyword
// index." Each logical keyword is replaced by `n` aliases carrying the same
// postings list; successive searches use different aliases, so the server
// cannot tell whether two searches were for the same keyword.

/// The i-th alias of a logical keyword (i < n at build time).
std::string keyword_alias(std::string_view kw, size_t i);

/// Returns a copy of `files` whose keyword lists are expanded into `n`
/// aliases per logical keyword (n >= 1; n == 1 keeps single aliases so the
/// alias scheme is uniform).
std::vector<sse::PlainFile> apply_keyword_aliases(
    std::span<const sse::PlainFile> files, size_t n);

/// One monitored-health-information sample from the P-device's sensors.
struct MhiSample {
  uint64_t t_ns = 0;
  double heart_rate_bpm = 0;
  double systolic_mmhg = 0;
  double diastolic_mmhg = 0;
  bool anomaly = false;
};

/// A contiguous MHI window as collected and encrypted by the P-device.
struct MhiWindow {
  std::string day;  // e.g. "2011-04-12" — also the PEKS keyword base
  std::vector<MhiSample> samples;

  [[nodiscard]] Bytes to_bytes() const;
  static MhiWindow from_bytes(BytesView b);
};

/// Generates a vital-sign window with ~`anomaly_rate` anomalous samples
/// (tachycardia + pressure surge), the signals §IV.E says "would most
/// possibly imply the cause of the sudden emergency".
MhiWindow generate_mhi_window(std::string day, size_t n_samples,
                              RandomSource& rng, double anomaly_rate = 0.05);

}  // namespace hcpp::core
