// §IV.E emergency health-information retrieval.
//
// Family-based approach (§IV.E.1), 4 messages:
//   1. family → S-server : TPp, m (BE-blob request), t6, HMAC_ν
//   2. S-server → family : BE_{U'}(d), t7, HMAC_ν
//   3. family → S-server : TPp, TD_U(kw) = θ_d(TD(kw)), t8, HMAC_ν
//   4. S-server → family : Λ(kw), t9, HMAC_ν
//
// P-device approach (§IV.E.2): the physician authenticates to the A-server
// with IBS as the on-duty emergency caregiver; the A-server returns the
// one-time passcode under E'_ϖ and simultaneously pushes it to the P-device
// under IBE_TPp; the physician types (ID, nonce) into the device, which then
// runs the same privileged retrieval and logs an RD record.
//
// All exchanges ride the retrying transport: an ambulance on a lossy link
// retries with backoff instead of failing the rescue, and replicated
// deployments (SServerGroup / AServerCluster) fail over to the next office
// when one times out.
#include <algorithm>
#include <set>

#include "src/cipher/aead.h"
#include "src/core/accountability.h"
#include "src/core/cluster.h"
#include "src/core/coalesce.h"
#include "src/core/entities.h"
#include "src/obs/trace.h"
#include "src/sim/transport.h"

namespace hcpp::core {

namespace {

constexpr const char* kBeLabel = "emergency-be-request";
constexpr const char* kPrivLabel = kPrivilegedRetrieveLabel;
constexpr const char* kAuthLabel = "emergency-auth";

/// Messages 1–4 of the family-based approach, shared by Family and PDevice.
/// Two transport-routed rounds; under no faults this is exactly the paper's
/// four messages.
Result<std::vector<sse::PlainFile>> privileged_retrieve(
    sim::Network& net, const std::string& actor, SServer& server,
    const PrivilegeBundle& pb, std::span<const std::string> keywords) {
  obs::Span span("protocol:privileged_retrieve");
  // Round 1 (messages 1–2): fetch the current broadcast-encrypted d.
  BeBlobRequest req1;
  req1.tp = pb.tp;
  req1.collection = pb.collection;
  req1.t = net.clock().now();
  req1.mac = protocol_mac(pb.nu, kBeLabel, req1.body(), req1.t);
  sim::CallOutcome<BeBlobResponse> out1 =
      net.transport().request<BeBlobResponse>(
          actor, server.id(), req1.wire_size(), req1.mac, kBeLabel,
          [&]() { return server.handle_be_request(req1); },
          [](const BeBlobResponse& r) { return r.wire_size(); });
  if (out1.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, out1.attempts,
                           "BE-blob request undelivered after retries");
  }
  if (out1.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, out1.attempts,
                           "S-server refused the BE-blob request");
  }
  const BeBlobResponse& resp1 = *out1.response;
  if (!protocol_mac_ok(pb.nu, kBeLabel, resp1.body(), resp1.t, resp1.mac)) {
    return permanent_error(ErrorCode::kBadResponse, out1.attempts,
                           "BE-blob response failed authentication");
  }
  std::optional<Bytes> d = be::decrypt(pb.member_keys, resp1.be_blob);
  if (!d.has_value()) {
    // Not in the current broadcast cover: this member was revoked. No retry
    // or failover can help — every replica will serve the same BE_{U'}(d).
    return permanent_error(ErrorCode::kRevoked, out1.attempts,
                           "member keys outside the current BE cover");
  }

  // Round 2 (messages 3–4): θ_d-wrapped trapdoors. The privileged entity has
  // no rotation state, so it derives the alias slot from the timestamp —
  // successive emergencies still spread across aliases (§VI.B).
  PrivilegedRetrieveRequest req2;
  req2.tp = pb.tp;
  req2.collection = pb.collection;
  size_t alias_slot = static_cast<size_t>(net.clock().now() / 1000) %
                      std::max<uint32_t>(1, pb.alias_count);
  sse::TrapdoorGen gen(pb.keys);  // one key schedule for the keyword batch
  std::optional<sse::Updater> up;  // for keywords updated before the ASSIGN
  for (const std::string& kw : keywords) {
    std::string alias = keyword_alias(kw, alias_slot);
    auto cit = pb.update_state.counters.find(alias);
    if (cit != pb.update_state.counters.end() && cit->second > 0) {
      // The bundle's chain position covers updates up to the ASSIGN; later
      // ones are underivable (forward privacy working as specified).
      if (!up.has_value()) up.emplace(pb.keys, pb.update_state);
      req2.wrapped_trapdoors.push_back(
          sse::wrap_dyn_trapdoor(*d, up->trapdoor(alias)));
    } else {
      req2.wrapped_trapdoors.push_back(
          sse::wrap_trapdoor(*d, gen.make(alias)));
    }
  }
  req2.t = net.clock().now();
  req2.mac = protocol_mac(pb.nu, kPrivLabel, req2.body(), req2.t);
  sim::CallOutcome<RetrieveResponse> out2 =
      net.transport().request<RetrieveResponse>(
          actor, server.id(), req2.wire_size(), req2.mac, kPrivLabel,
          [&]() { return server.handle_privileged_retrieve(req2); },
          [](const RetrieveResponse& r) { return r.wire_size(); });
  uint32_t attempts = out1.attempts + out2.attempts;
  if (out2.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, attempts,
                           "privileged retrieval undelivered after retries");
  }
  if (out2.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, attempts,
                           "S-server refused the privileged retrieval");
  }
  const RetrieveResponse& resp2 = *out2.response;
  if (!protocol_mac_ok(pb.nu, kPrivLabel, resp2.body(), resp2.t, resp2.mac)) {
    return permanent_error(ErrorCode::kBadResponse, attempts,
                           "privileged response failed authentication");
  }
  std::vector<sse::PlainFile> out;
  for (const auto& [id, blob] : resp2.files) {
    try {
      out.push_back(sse::decrypt_file(pb.keys, blob));
    } catch (const std::exception&) {
      // skip tampered blobs
    }
  }
  return out;
}

/// Read failover (§VI.D): the same retrieval tried replica-by-replica;
/// transient failures (timeouts, partitions, downed offices) move on, while
/// permanent outcomes — rejection, revocation — end the search immediately.
Result<std::vector<sse::PlainFile>> privileged_retrieve_failover(
    sim::Network& net, const std::string& actor, SServerGroup& group,
    const PrivilegeBundle& pb, std::span<const std::string> keywords) {
  uint32_t attempts = 0;
  // Sharded placement routes by the bundle's pseudonym — one owner, one try.
  const size_t first = group.sharded() ? group.shard_of(pb.tp) : 0;
  const size_t tries = group.sharded() ? 1 : group.size();
  for (size_t i = 0; i < tries; ++i) {
    Result<std::vector<sse::PlainFile>> r =
        privileged_retrieve(net, actor, group.replica(first + i), pb,
                            keywords);
    if (r.ok() || !r.error().transient()) return r;
    attempts += r.error().attempts;
    obs::count(obs::kSGroupFailover);
  }
  return transient_error(ErrorCode::kUnreachable, attempts,
                         "no storage replica answered the emergency");
}

}  // namespace

// ---- S-server handlers -------------------------------------------------------

std::optional<BeBlobResponse> SServer::handle_be_request(
    const BeBlobRequest& req) {
  obs::Span span("sserver:be_request");
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!protocol_mac_ok(nu, kBeLabel, req.body(), req.t, req.mac)) {
    return std::nullopt;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return std::nullopt;
  BeBlobResponse resp;
  resp.be_blob = acct->be_blob;
  resp.t = net_->clock().now();
  resp.mac = protocol_mac(nu, kBeLabel, resp.body(), resp.t);
  return resp;
}

std::optional<RetrieveResponse> SServer::handle_privileged_retrieve(
    const PrivilegedRetrieveRequest& req) {
  obs::Span span("sserver:privileged_retrieve");
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!protocol_mac_ok(nu, kPrivLabel, req.body(), req.t, req.mac)) {
    return std::nullopt;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return std::nullopt;

  obs::Span lookup("sse:lookup");
  // Batch θ_d^{-1}: one Feistel key schedule per trapdoor width across the
  // whole request. The embedded validity tag rejects stale-d submissions
  // per trapdoor; dynamic (100-byte) widths also walk the update log.
  RetrieveResponse resp;
  for (sse::FileId id : sse::search_wrapped_mixed(
           *acct->index, acct->log, acct->d, req.wrapped_trapdoors)) {
    auto it = acct->files.files.find(id);
    if (it != acct->files.files.end()) resp.files.emplace_back(id, it->second);
  }
  resp.t = net_->clock().now();
  resp.mac = protocol_mac(nu, kPrivLabel, resp.body(), resp.t);
  return resp;
}

// ---- Family ------------------------------------------------------------------

Result<std::vector<sse::PlainFile>> Family::try_emergency_retrieve(
    SServer& server, std::span<const std::string> keywords) {
  if (!bundle_.has_value()) {
    return permanent_error(ErrorCode::kPrecondition, 0,
                           "family member holds no privilege bundle");
  }
  return privileged_retrieve(*net_, name_, server, *bundle_, keywords);
}

std::vector<sse::PlainFile> Family::emergency_retrieve(
    SServer& server, std::span<const std::string> keywords) {
  return try_emergency_retrieve(server, keywords).value_or({});
}

Result<std::vector<sse::PlainFile>> Family::emergency_retrieve(
    SServerGroup& group, std::span<const std::string> keywords) {
  if (!bundle_.has_value()) {
    return permanent_error(ErrorCode::kPrecondition, 0,
                           "family member holds no privilege bundle");
  }
  return privileged_retrieve_failover(*net_, name_, group, *bundle_, keywords);
}

// ---- A-server: emergency authentication (§IV.E.2 steps 1–3) -------------------

std::optional<AServer::EmergencyAuthOutcome> AServer::handle_emergency_auth(
    const EmergencyAuthRequest& req) {
  obs::Span span("aserver:emergency_auth");
  if (!net_->accept_fresh(id_, req.sig, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  ibc::IbsSignature sig;
  try {
    sig = ibc::IbsSignature::from_bytes(domain_.ctx(), req.sig);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!ibc::ibs_verify(pub(), req.physician_id, req.body(), sig)) {
    return std::nullopt;
  }
  return finish_emergency_auth(req);
}

std::vector<std::optional<AServer::EmergencyAuthOutcome>>
AServer::handle_emergency_auth_batch(std::span<const EmergencyAuthRequest> reqs,
                                     par::ThreadPool* pool) {
  obs::Span span("aserver:emergency_auth_batch");
  std::vector<std::optional<EmergencyAuthOutcome>> out(reqs.size());
  if (reqs.empty()) return out;

  // Freshness and signature decoding stay serial and in arrival order, so a
  // duplicate inside the batch hits the replay cache exactly as it would
  // have arriving one request later.
  PairingCoalescer co(pub());
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<size_t> ticket(reqs.size(), kNone);
  for (size_t i = 0; i < reqs.size(); ++i) {
    const EmergencyAuthRequest& req = reqs[i];
    if (!net_->accept_fresh(id_, req.sig, req.t, kFreshnessWindowNs)) continue;
    try {
      ibc::IbsSignature sig =
          ibc::IbsSignature::from_bytes(domain_.ctx(), req.sig);
      ticket[i] = co.add_ibs_verify(req.physician_id, req.body(), sig);
    } catch (const std::exception&) {
    }
  }

  // One drain: all verification pairings fused and final-exponentiated
  // together (coalesce.h).
  PairingCoalescer::Drained drained = co.drain(pool);
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (ticket[i] == kNone || !drained.ibs_ok[ticket[i]]) continue;
    out[i] = finish_emergency_auth(reqs[i]);
  }
  return out;
}

std::optional<AServer::EmergencyAuthOutcome> AServer::finish_emergency_auth(
    const EmergencyAuthRequest& req) {
  if (!is_on_duty(req.physician_id)) return std::nullopt;

  curve::Point tp;
  try {
    tp = curve::point_from_bytes(domain_.ctx(), req.tp);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  // Small-subgroup guard: the passcode IBE keys to ê(TP, Ppub)^r.
  if (!curve::in_prime_subgroup(domain_.ctx(), tp)) return std::nullopt;

  Bytes nonce = rng_.bytes(16);
  uint64_t t11 = net_->clock().now();
  EmergencyAuthOutcome out;

  // Step 2: passcode to the physician under the pairwise key ϖ.
  Bytes varpi = key_deriver_.with_id(req.physician_id);
  out.to_physician.enc_nonce =
      cipher::aead_encrypt(varpi, nonce, {}, rng_);
  out.to_physician.t = t11;
  out.to_physician.sig =
      ibc::ibs_sign(domain_.ctx(), self_key_, id_,
                    out.to_physician.body(req.physician_id, req.tp), rng_)
          .to_bytes();

  // Step 3: passcode to the P-device under IBE_TPp.
  io::Writer inner;
  inner.str(req.physician_id);
  inner.bytes(nonce);
  inner.u64(t11);
  out.to_pdevice.physician_id = req.physician_id;
  out.to_pdevice.ibe_blob =
      ibc::ibe_encrypt_to_point(pub(), tp, inner.data(), rng_).to_bytes();
  out.to_pdevice.t = t11;
  out.to_pdevice.sig =
      ibc::ibs_sign(domain_.ctx(), self_key_, id_,
                    out.to_pdevice.body(req.tp), rng_)
          .to_bytes();
  out.to_pdevice.audit_sig =
      ibc::ibs_sign(domain_.ctx(), self_key_, id_,
                    rd_statement(req.physician_id, req.tp, t11), rng_)
          .to_bytes();

  // TR: the accountability trace (§IV.E.2) — the loose log the legacy audit
  // reads, plus the tamper-evident hash-chained mirror the ledger audit
  // verifies against the anchored checkpoints.
  traces_.push_back({req.physician_id, req.tp, req.t, t11, req.sig});
  trace_ledger_.append(event_from_trace(traces_.back()));
  return out;
}

// ---- Physician -----------------------------------------------------------------

Result<Physician::PasscodeResult> Physician::try_request_passcode(
    AServer& authority, BytesView patient_tp) {
  obs::Span span("protocol:emergency_auth");
  EmergencyAuthRequest req;
  req.physician_id = id_;
  req.tp = Bytes(patient_tp.begin(), patient_tp.end());
  req.t = net_->clock().now();
  req.sig = ibc::ibs_sign(*ctx_, private_key_, id_, req.body(), rng_)
                .to_bytes();

  sim::CallOutcome<AServer::EmergencyAuthOutcome> out =
      net_->transport().request<AServer::EmergencyAuthOutcome>(
          id_, authority.id(), req.wire_size(), req.sig, kAuthLabel,
          [&]() { return authority.handle_emergency_auth(req); },
          [](const AServer::EmergencyAuthOutcome& o) {
            return o.to_physician.wire_size();
          });
  if (out.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, out.attempts,
                           "A-server unreachable for emergency auth");
  }
  if (out.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, out.attempts,
                           "A-server refused the emergency authentication");
  }
  AServer::EmergencyAuthOutcome& outcome = *out.response;
  // Step 3 "takes place simultaneously": the A-server's push to the
  // P-device, charged as the protocol's third message.
  net_->transmit(authority.id(), "p-device", outcome.to_pdevice.wire_size(),
                 kAuthLabel);

  // Verify the answering office's signature before trusting the passcode.
  // The office is addressed by parameter (not by the enrolment-time
  // authority) so that any §VI.D replica can serve the request.
  try {
    ibc::IbsSignature sig = ibc::IbsSignature::from_bytes(
        *ctx_, outcome.to_physician.sig);
    if (!ibc::ibs_verify(authority.pub(), authority.id(),
                         outcome.to_physician.body(id_, req.tp), sig)) {
      return permanent_error(ErrorCode::kBadResponse, out.attempts,
                             "office signature failed verification");
    }
    Bytes varpi = key_deriver_.with_id(authority.id());
    Bytes nonce =
        cipher::aead_decrypt(varpi, outcome.to_physician.enc_nonce, {});
    return PasscodeResult{std::move(nonce), std::move(outcome.to_pdevice)};
  } catch (const std::exception&) {
    return permanent_error(ErrorCode::kBadResponse, out.attempts,
                           "passcode message failed to decrypt");
  }
}

std::optional<Physician::PasscodeResult> Physician::request_passcode(
    AServer& authority, BytesView patient_tp) {
  Result<PasscodeResult> r = try_request_passcode(authority, patient_tp);
  if (!r.ok()) return std::nullopt;
  return std::move(r.value());
}

Result<Physician::PasscodeResult> Physician::request_passcode(
    AServerCluster& cluster, BytesView patient_tp, size_t* serving_office) {
  // §VI.D automatic failover: dial the next local office when one times out.
  // Permanent refusals (not on duty, bad signature) are authoritative — every
  // office shares the registry, so trying another cannot change the answer.
  uint32_t attempts = 0;
  for (size_t i = 0; i < cluster.size(); ++i) {
    Result<PasscodeResult> r =
        try_request_passcode(cluster.replica(i), patient_tp);
    if (r.ok()) {
      if (serving_office != nullptr) *serving_office = i;
      return r;
    }
    if (!r.error().transient()) return r;
    attempts += r.error().attempts;
    obs::count(obs::kAClusterFailover);
  }
  return transient_error(ErrorCode::kUnreachable, attempts,
                         "every local A-server office timed out");
}

// ---- P-device ---------------------------------------------------------------

bool PDevice::deliver_passcode(const AServer& authority,
                               const PasscodeToPDevice& msg) {
  if (!emergency_mode_ || !bundle_.has_value() || bundle_->gamma.empty()) {
    return false;
  }
  const curve::CurveCtx& ctx = authority.ctx();
  try {
    ibc::IbsSignature sig =
        ibc::IbsSignature::from_bytes(ctx, msg.sig);
    if (!ibc::ibs_verify(authority.pub(), authority.id(),
                         msg.body(bundle_->tp), sig)) {
      return false;
    }
    curve::Point gamma = curve::point_from_bytes(ctx, bundle_->gamma);
    ibc::IbeCiphertext ct =
        ibc::IbeCiphertext::from_bytes(ctx, msg.ibe_blob);
    Bytes inner = ibc::ibe_decrypt(ctx, gamma, ct);
    io::Reader r(inner);
    std::string physician_id = r.str();
    Bytes nonce = r.bytes();
    uint64_t t11 = r.u64();
    if (physician_id != msg.physician_id || t11 != msg.t) return false;
    pending_physician_ = physician_id;
    pending_nonce_ = nonce;
    session_t11_ = t11;
    session_aserver_sig_ = msg.audit_sig;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool PDevice::enter_passcode(const std::string& physician_id,
                             BytesView nonce) {
  if (!pending_nonce_.has_value() || !pending_physician_.has_value()) {
    return false;
  }
  bool ok = (physician_id == *pending_physician_) &&
            ct_equal(*pending_nonce_, nonce);
  // One attempt per delivered passcode, success or not.
  pending_nonce_.reset();
  pending_physician_.reset();
  if (ok) session_physician_ = physician_id;
  return ok;
}

Result<std::vector<sse::PlainFile>> PDevice::try_emergency_retrieve(
    SServer& server, std::span<const std::string> keywords) {
  if (!session_physician_.has_value() || !bundle_.has_value()) {
    return permanent_error(ErrorCode::kPrecondition, 0,
                           "no passcode session open on the P-device");
  }
  // §VI.A countermeasure: accessing the retrieval secrets alerts the
  // patient's phone.
  ++alerts_;
  // Only dictionary keywords are searchable (§IV.E.2: "if the keywords
  // result in a match in the dictionary").
  std::vector<std::string> valid;
  for (const std::string& kw : keywords) {
    if (bundle_->ki.contains(kw)) valid.push_back(kw);
  }
  Result<std::vector<sse::PlainFile>> result{std::vector<sse::PlainFile>{}};
  if (!valid.empty()) {
    result = privileged_retrieve(*net_, id_, server, *bundle_, valid);
  }
  // RD: record which physician searched what (§IV.E.2) — kept even when the
  // network failed the retrieval, because the secrets were touched. The
  // ledger append also queues the patient notification ("your data was just
  // accessed") behind rd_ledger().drain_notifications().
  rd_log_.push_back({*session_physician_, bundle_->tp, valid, session_t11_,
                     session_aserver_sig_});
  rd_ledger_.append(event_from_rd(rd_log_.back()));
  session_physician_.reset();  // one retrieval per passcode session
  return result;
}

std::vector<sse::PlainFile> PDevice::emergency_retrieve(
    SServer& server, std::span<const std::string> keywords) {
  return try_emergency_retrieve(server, keywords).value_or({});
}

Result<std::vector<sse::PlainFile>> PDevice::emergency_retrieve(
    SServerGroup& group, std::span<const std::string> keywords) {
  if (!session_physician_.has_value() || !bundle_.has_value()) {
    return permanent_error(ErrorCode::kPrecondition, 0,
                           "no passcode session open on the P-device");
  }
  ++alerts_;
  std::vector<std::string> valid;
  for (const std::string& kw : keywords) {
    if (bundle_->ki.contains(kw)) valid.push_back(kw);
  }
  Result<std::vector<sse::PlainFile>> result{std::vector<sse::PlainFile>{}};
  if (!valid.empty()) {
    result =
        privileged_retrieve_failover(*net_, id_, group, *bundle_, valid);
  }
  rd_log_.push_back({*session_physician_, bundle_->tp, valid, session_t11_,
                     session_aserver_sig_});
  rd_ledger_.append(event_from_rd(rd_log_.back()));
  session_physician_.reset();
  return result;
}

}  // namespace hcpp::core
