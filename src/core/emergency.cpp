// §IV.E emergency health-information retrieval.
//
// Family-based approach (§IV.E.1), 4 messages:
//   1. family → S-server : TPp, m (BE-blob request), t6, HMAC_ν
//   2. S-server → family : BE_{U'}(d), t7, HMAC_ν
//   3. family → S-server : TPp, TD_U(kw) = θ_d(TD(kw)), t8, HMAC_ν
//   4. S-server → family : Λ(kw), t9, HMAC_ν
//
// P-device approach (§IV.E.2): the physician authenticates to the A-server
// with IBS as the on-duty emergency caregiver; the A-server returns the
// one-time passcode under E'_ϖ and simultaneously pushes it to the P-device
// under IBE_TPp; the physician types (ID, nonce) into the device, which then
// runs the same privileged retrieval and logs an RD record.
#include <algorithm>
#include <set>

#include "src/cipher/aead.h"
#include "src/core/entities.h"

namespace hcpp::core {

namespace {

constexpr const char* kBeLabel = "emergency-be-request";
constexpr const char* kPrivLabel = "emergency-privileged-retrieval";
constexpr const char* kAuthLabel = "emergency-auth";

/// Messages 1–4 of the family-based approach, shared by Family and PDevice.
std::vector<sse::PlainFile> privileged_retrieve(
    sim::Network& net, const std::string& actor, SServer& server,
    const PrivilegeBundle& pb, std::span<const std::string> keywords) {
  // Round 1: fetch the current broadcast-encrypted d.
  BeBlobRequest req1;
  req1.tp = pb.tp;
  req1.collection = pb.collection;
  req1.t = net.clock().now();
  req1.mac = protocol_mac(pb.nu, kBeLabel, req1.body(), req1.t);
  net.transmit(actor, server.id(), req1.wire_size(), kBeLabel);
  std::optional<BeBlobResponse> resp1 = server.handle_be_request(req1);
  if (!resp1.has_value()) return {};
  net.transmit(server.id(), actor, resp1->wire_size(), kBeLabel);
  if (!protocol_mac_ok(pb.nu, kBeLabel, resp1->body(), resp1->t,
                       resp1->mac)) {
    return {};
  }
  std::optional<Bytes> d = be::decrypt(pb.member_keys, resp1->be_blob);
  if (!d.has_value()) return {};  // revoked: not in the current cover

  // Round 2: θ_d-wrapped trapdoors. The privileged entity has no rotation
  // state, so it derives the alias slot from the timestamp — successive
  // emergencies still spread across aliases (§VI.B).
  PrivilegedRetrieveRequest req2;
  req2.tp = pb.tp;
  req2.collection = pb.collection;
  size_t alias_slot = static_cast<size_t>(net.clock().now() / 1000) %
                      std::max<uint32_t>(1, pb.alias_count);
  for (const std::string& kw : keywords) {
    req2.wrapped_trapdoors.push_back(sse::wrap_trapdoor(
        *d, sse::make_trapdoor(pb.keys, keyword_alias(kw, alias_slot))));
  }
  req2.t = net.clock().now();
  req2.mac = protocol_mac(pb.nu, kPrivLabel, req2.body(), req2.t);
  net.transmit(actor, server.id(), req2.wire_size(), kPrivLabel);
  std::optional<RetrieveResponse> resp2 =
      server.handle_privileged_retrieve(req2);
  if (!resp2.has_value()) return {};
  net.transmit(server.id(), actor, resp2->wire_size(), kPrivLabel);
  if (!protocol_mac_ok(pb.nu, kPrivLabel, resp2->body(), resp2->t,
                       resp2->mac)) {
    return {};
  }
  std::vector<sse::PlainFile> out;
  for (const auto& [id, blob] : resp2->files) {
    try {
      out.push_back(sse::decrypt_file(pb.keys, blob));
    } catch (const std::exception&) {
      // skip tampered blobs
    }
  }
  return out;
}

}  // namespace

// ---- S-server handlers -------------------------------------------------------

std::optional<BeBlobResponse> SServer::handle_be_request(
    const BeBlobRequest& req) {
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!protocol_mac_ok(nu, kBeLabel, req.body(), req.t, req.mac)) {
    return std::nullopt;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return std::nullopt;
  BeBlobResponse resp;
  resp.be_blob = acct->be_blob;
  resp.t = net_->clock().now();
  resp.mac = protocol_mac(nu, kBeLabel, resp.body(), resp.t);
  return resp;
}

std::optional<RetrieveResponse> SServer::handle_privileged_retrieve(
    const PrivilegedRetrieveRequest& req) {
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!protocol_mac_ok(nu, kPrivLabel, req.body(), req.t, req.mac)) {
    return std::nullopt;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return std::nullopt;

  std::set<sse::FileId> matched;
  for (const Bytes& wrapped : req.wrapped_trapdoors) {
    // θ_d^{-1} then the embedded validity tag — stale-d submissions fail here.
    std::optional<sse::Trapdoor> td = sse::unwrap_trapdoor(acct->d, wrapped);
    if (!td.has_value()) continue;
    for (sse::FileId id : sse::search(acct->index, *td)) matched.insert(id);
  }
  RetrieveResponse resp;
  for (sse::FileId id : matched) {
    auto it = acct->files.files.find(id);
    if (it != acct->files.files.end()) resp.files.emplace_back(id, it->second);
  }
  resp.t = net_->clock().now();
  resp.mac = protocol_mac(nu, kPrivLabel, resp.body(), resp.t);
  return resp;
}

// ---- Family ------------------------------------------------------------------

std::vector<sse::PlainFile> Family::emergency_retrieve(
    SServer& server, std::span<const std::string> keywords) {
  if (!bundle_.has_value()) return {};
  return privileged_retrieve(*net_, name_, server, *bundle_, keywords);
}

// ---- A-server: emergency authentication (§IV.E.2 steps 1–3) -------------------

std::optional<AServer::EmergencyAuthOutcome> AServer::handle_emergency_auth(
    const EmergencyAuthRequest& req) {
  if (!net_->accept_fresh(id_, req.sig, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  ibc::IbsSignature sig;
  try {
    sig = ibc::IbsSignature::from_bytes(domain_.ctx(), req.sig);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!ibc::ibs_verify(pub(), req.physician_id, req.body(), sig)) {
    return std::nullopt;
  }
  if (!is_on_duty(req.physician_id)) return std::nullopt;

  curve::Point tp;
  try {
    tp = curve::point_from_bytes(domain_.ctx(), req.tp);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  // Small-subgroup guard: the passcode IBE keys to ê(TP, Ppub)^r.
  if (!curve::in_prime_subgroup(domain_.ctx(), tp)) return std::nullopt;

  Bytes nonce = rng_.bytes(16);
  uint64_t t11 = net_->clock().now();
  EmergencyAuthOutcome out;

  // Step 2: passcode to the physician under the pairwise key ϖ.
  Bytes varpi =
      ibc::shared_key_with_id(domain_.ctx(), self_key_, req.physician_id);
  out.to_physician.enc_nonce =
      cipher::aead_encrypt(varpi, nonce, {}, rng_);
  out.to_physician.t = t11;
  out.to_physician.sig =
      ibc::ibs_sign(domain_.ctx(), self_key_, id_,
                    out.to_physician.body(req.physician_id, req.tp), rng_)
          .to_bytes();

  // Step 3: passcode to the P-device under IBE_TPp.
  io::Writer inner;
  inner.str(req.physician_id);
  inner.bytes(nonce);
  inner.u64(t11);
  out.to_pdevice.physician_id = req.physician_id;
  out.to_pdevice.ibe_blob =
      ibc::ibe_encrypt_to_point(pub(), tp, inner.data(), rng_).to_bytes();
  out.to_pdevice.t = t11;
  out.to_pdevice.sig =
      ibc::ibs_sign(domain_.ctx(), self_key_, id_,
                    out.to_pdevice.body(req.tp), rng_)
          .to_bytes();
  out.to_pdevice.audit_sig =
      ibc::ibs_sign(domain_.ctx(), self_key_, id_,
                    rd_statement(req.physician_id, req.tp, t11), rng_)
          .to_bytes();

  // TR: the accountability trace (§IV.E.2).
  traces_.push_back({req.physician_id, req.tp, req.t, t11, req.sig});
  return out;
}

// ---- Physician -----------------------------------------------------------------

std::optional<Physician::PasscodeResult> Physician::request_passcode(
    AServer& authority, BytesView patient_tp) {
  EmergencyAuthRequest req;
  req.physician_id = id_;
  req.tp = Bytes(patient_tp.begin(), patient_tp.end());
  req.t = net_->clock().now();
  req.sig = ibc::ibs_sign(*ctx_, private_key_, id_, req.body(), rng_)
                .to_bytes();
  net_->transmit(id_, authority.id(), req.wire_size(), kAuthLabel);

  std::optional<AServer::EmergencyAuthOutcome> outcome =
      authority.handle_emergency_auth(req);
  if (!outcome.has_value()) return std::nullopt;
  // Steps 2 and 3 "take place simultaneously".
  net_->transmit(authority.id(), id_, outcome->to_physician.wire_size(),
                 kAuthLabel);
  net_->transmit(authority.id(), "p-device", outcome->to_pdevice.wire_size(),
                 kAuthLabel);

  // Verify the answering office's signature before trusting the passcode.
  // The office is addressed by parameter (not by the enrolment-time
  // authority) so that any §VI.D replica can serve the request.
  try {
    ibc::IbsSignature sig = ibc::IbsSignature::from_bytes(
        *ctx_, outcome->to_physician.sig);
    if (!ibc::ibs_verify(authority.pub(), authority.id(),
                         outcome->to_physician.body(id_, req.tp), sig)) {
      return std::nullopt;
    }
    Bytes varpi =
        ibc::shared_key_with_id(*ctx_, private_key_, authority.id());
    Bytes nonce =
        cipher::aead_decrypt(varpi, outcome->to_physician.enc_nonce, {});
    return PasscodeResult{std::move(nonce), std::move(outcome->to_pdevice)};
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// ---- P-device ---------------------------------------------------------------

bool PDevice::deliver_passcode(const AServer& authority,
                               const PasscodeToPDevice& msg) {
  if (!emergency_mode_ || !bundle_.has_value() || bundle_->gamma.empty()) {
    return false;
  }
  const curve::CurveCtx& ctx = authority.ctx();
  try {
    ibc::IbsSignature sig =
        ibc::IbsSignature::from_bytes(ctx, msg.sig);
    if (!ibc::ibs_verify(authority.pub(), authority.id(),
                         msg.body(bundle_->tp), sig)) {
      return false;
    }
    curve::Point gamma = curve::point_from_bytes(ctx, bundle_->gamma);
    ibc::IbeCiphertext ct =
        ibc::IbeCiphertext::from_bytes(ctx, msg.ibe_blob);
    Bytes inner = ibc::ibe_decrypt(ctx, gamma, ct);
    io::Reader r(inner);
    std::string physician_id = r.str();
    Bytes nonce = r.bytes();
    uint64_t t11 = r.u64();
    if (physician_id != msg.physician_id || t11 != msg.t) return false;
    pending_physician_ = physician_id;
    pending_nonce_ = nonce;
    session_t11_ = t11;
    session_aserver_sig_ = msg.audit_sig;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool PDevice::enter_passcode(const std::string& physician_id,
                             BytesView nonce) {
  if (!pending_nonce_.has_value() || !pending_physician_.has_value()) {
    return false;
  }
  bool ok = (physician_id == *pending_physician_) &&
            ct_equal(*pending_nonce_, nonce);
  // One attempt per delivered passcode, success or not.
  pending_nonce_.reset();
  pending_physician_.reset();
  if (ok) session_physician_ = physician_id;
  return ok;
}

std::vector<sse::PlainFile> PDevice::emergency_retrieve(
    SServer& server, std::span<const std::string> keywords) {
  if (!session_physician_.has_value() || !bundle_.has_value()) return {};
  // §VI.A countermeasure: accessing the retrieval secrets alerts the
  // patient's phone.
  ++alerts_;
  // Only dictionary keywords are searchable (§IV.E.2: "if the keywords
  // result in a match in the dictionary").
  std::vector<std::string> valid;
  for (const std::string& kw : keywords) {
    if (bundle_->ki.contains(kw)) valid.push_back(kw);
  }
  std::vector<sse::PlainFile> files;
  if (!valid.empty()) {
    files = privileged_retrieve(*net_, id_, server, *bundle_, valid);
  }
  // RD: record which physician searched what (§IV.E.2).
  rd_log_.push_back({*session_physician_, bundle_->tp, valid, session_t11_,
                     session_aserver_sig_});
  session_physician_.reset();  // one retrieval per passcode session
  return files;
}

}  // namespace hcpp::core
