#include "src/core/mhi_stream.h"

#include <chrono>

#include "src/obs/metrics.h"
#include "src/par/pool.h"

namespace hcpp::core {

std::string mhi_role_id(std::string_view date, std::string_view duty,
                        std::string_view service_area) {
  std::string id;
  id.reserve(date.size() + duty.size() + service_area.size() + 2);
  id.append(date);
  id.push_back('|');
  id.append(duty);
  id.push_back('|');
  id.append(service_area);
  return id;
}

// ---- MhiIngestor ----------------------------------------------------------

MhiIngestor::MhiIngestor(const ibc::PublicParams& pub, std::string role_id)
    : pub_(pub),
      role_id_(std::move(role_id)),
      peks_(pub),
      ibe_(pub, role_id_) {}

MhiIngestor::EncodedWindow MhiIngestor::encode(
    const MhiWindow& win, std::span<const std::string> extra_keywords,
    RandomSource& rng) {
  EncodedWindow out;
  out.ibe_blob = ibe_.encrypt(win.to_bytes(), rng).to_bytes();
  out.peks_tags.reserve(1 + extra_keywords.size());
  out.peks_tags.push_back(
      peks_.encrypt(role_id_, "day:" + win.day, rng).to_bytes());
  for (const std::string& kw : extra_keywords) {
    out.peks_tags.push_back(peks_.encrypt(role_id_, kw, rng).to_bytes());
  }
  return out;
}

void MhiIngestor::roll_epoch(const std::string& new_role_id) {
  if (new_role_id == role_id_) return;
  peks_.evict(role_id_);
  role_id_ = new_role_id;
  ibe_ = ibc::IbePrecomputed(pub_, role_id_);
}

// ---- MhiStreamHub ---------------------------------------------------------

void MhiStreamHub::register_trapdoor(const std::string& physician_id,
                                     const std::string& role_id,
                                     const peks::Trapdoor& td) {
  std::vector<Registration>& regs = by_role_[role_id];
  for (Registration& reg : regs) {
    if (reg.physician_id == physician_id) {
      reg.precomp = peks::TrapdoorPrecomp(*ctx_, td);
      return;
    }
  }
  regs.push_back(Registration{physician_id, peks::TrapdoorPrecomp(*ctx_, td)});
  obs::count(obs::kMhiRegistrations);
}

size_t MhiStreamHub::expire_role(const std::string& role_id) {
  auto it = by_role_.find(role_id);
  if (it == by_role_.end()) return 0;
  size_t n = it->second.size();
  by_role_.erase(it);
  expired_ += n;
  obs::count(obs::kMhiExpiredRegistrations, n);
  return n;
}

size_t MhiStreamHub::ingest(const std::string& role_id,
                            std::span<const peks::PeksCiphertext> tags,
                            const Bytes& ibe_blob, par::ThreadPool* pool) {
  ++windows_ingested_;
  obs::count(obs::kMhiWindowsIngested);
  auto it = by_role_.find(role_id);
  if (it == by_role_.end() || it->second.empty() || tags.empty()) return 0;
  const std::vector<Registration>& regs = it->second;

  auto t0 = std::chrono::steady_clock::now();
  // One Miller value per (registration, tag) pair — all over cached lines —
  // then one batched final exponentiation for the whole window.
  std::vector<field::Fp2> millers(regs.size() * tags.size());
  auto run = [&](size_t, size_t begin, size_t end) {
    for (size_t k = begin; k < end; ++k) {
      millers[k] = regs[k / tags.size()].precomp.miller(tags[k % tags.size()]);
    }
  };
  if (pool != nullptr) {
    pool->for_shards(millers.size(), run);
  } else {
    par::serial_shards(millers.size(), run);
  }
  std::vector<curve::Gt> gs = curve::final_exp_batch(*ctx_, millers, pool);

  size_t queued = 0;
  size_t k = 0;
  for (const Registration& reg : regs) {
    bool matched = false;
    for (size_t i = 0; i < tags.size(); ++i, ++k) {
      if (!matched && peks::TrapdoorPrecomp::matches(tags[i], gs[k])) {
        matched = true;
      }
    }
    if (matched) {
      hits_[reg.physician_id].push_back(MhiHit{role_id, ibe_blob});
      ++queued;
    }
  }
  tags_tested_ += millers.size();
  hits_total_ += queued;
  obs::count(obs::kMhiTagsTested, millers.size());
  if (queued > 0) obs::count(obs::kMhiHits, queued);
  obs::observe(obs::kMhiIngestNs,
               static_cast<double>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - t0)
                       .count()));
  return queued;
}

std::vector<MhiHit> MhiStreamHub::drain_hits(const std::string& physician_id,
                                             const std::string& role_id) {
  auto it = hits_.find(physician_id);
  if (it == hits_.end()) return {};
  if (role_id.empty()) {
    std::vector<MhiHit> out = std::move(it->second);
    hits_.erase(it);
    return out;
  }
  std::vector<MhiHit> out;
  std::vector<MhiHit> kept;
  for (MhiHit& hit : it->second) {
    (hit.role_id == role_id ? out : kept).push_back(std::move(hit));
  }
  if (kept.empty()) {
    hits_.erase(it);
  } else {
    it->second = std::move(kept);
  }
  return out;
}

size_t MhiStreamHub::pending_hits(const std::string& physician_id) const {
  auto it = hits_.find(physician_id);
  return it == hits_.end() ? 0 : it->second.size();
}

size_t MhiStreamHub::registration_count() const noexcept {
  size_t n = 0;
  for (const auto& [role, regs] : by_role_) n += regs.size();
  return n;
}

MhiStreamHub::Stats MhiStreamHub::stats() const {
  Stats s;
  s.windows_ingested = windows_ingested_;
  s.tags_tested = tags_tested_;
  s.hits = hits_total_;
  s.expired_registrations = expired_;
  s.registrations = registration_count();
  for (const auto& [phys, queue] : hits_) s.pending += queue.size();
  return s;
}

}  // namespace hcpp::core
