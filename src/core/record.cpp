#include "src/core/record.h"

#include <algorithm>
#include <stdexcept>

namespace hcpp::core {

std::vector<std::string> KeywordIndex::dictionary() const {
  std::vector<std::string> out;
  out.reserve(entries.size());
  for (const auto& [kw, fids] : entries) out.push_back(kw);
  return out;
}

bool KeywordIndex::contains(std::string_view kw) const {
  return entries.find(std::string(kw)) != entries.end();
}

Bytes KeywordIndex::to_bytes() const {
  io::Writer w;
  w.str(sserver_id);
  w.u32(static_cast<uint32_t>(entries.size()));
  for (const auto& [kw, fids] : entries) {
    w.str(kw);
    w.u32(static_cast<uint32_t>(fids.size()));
    for (sse::FileId id : fids) w.u64(id);
  }
  w.u32(static_cast<uint32_t>(file_names.size()));
  for (const auto& [id, name] : file_names) {
    w.u64(id);
    w.str(name);
  }
  return w.take();
}

KeywordIndex KeywordIndex::from_bytes(BytesView b) {
  io::Reader r(b);
  KeywordIndex ki;
  ki.sserver_id = r.str();
  size_t n = r.count32(8);  // each entry: u32 kw len + u32 posting count
  for (size_t i = 0; i < n; ++i) {
    std::string kw = r.str();
    size_t m = r.count32(8);  // each posting: u64 file id
    std::vector<sse::FileId>& fids = ki.entries[kw];
    fids.reserve(m);
    for (size_t j = 0; j < m; ++j) fids.push_back(r.u64());
  }
  size_t fn = r.count32(12);  // each name: u64 id + u32 length prefix
  for (size_t i = 0; i < fn; ++i) {
    sse::FileId id = r.u64();
    ki.file_names[id] = r.str();
  }
  return ki;
}

KeywordIndex KeywordIndex::build(std::span<const sse::PlainFile> files,
                                 std::string sserver_id) {
  KeywordIndex ki;
  ki.sserver_id = std::move(sserver_id);
  for (const sse::PlainFile& f : files) {
    ki.file_names[f.id] = f.name;
    for (const std::string& kw : f.keywords) ki.entries[kw].push_back(f.id);
  }
  return ki;
}

namespace {

constexpr const char* kConditions[] = {
    "hypertension", "diabetes",  "asthma",     "arrhythmia",
    "penicillin",   "latex",     "statin",     "insulin",
    "fracture",     "appendectomy", "influenza", "anemia"};

constexpr const char* kYears[] = {"2007", "2008", "2009", "2010", "2011"};

std::string pick(RandomSource& rng, std::span<const char* const> options) {
  return options[rng.u64() % options.size()];
}

}  // namespace

std::vector<sse::PlainFile> generate_phi_collection(
    size_t n_files, RandomSource& rng, sse::FileId first_id,
    size_t extra_keywords_per_file, size_t content_bytes) {
  std::vector<sse::PlainFile> files;
  files.reserve(n_files);
  for (size_t i = 0; i < n_files; ++i) {
    sse::PlainFile f;
    f.id = first_id + i;
    std::string category = pick(rng, kPhiCategories);
    f.name = category + "-" + std::to_string(f.id);
    f.keywords.push_back("category:" + category);
    for (size_t k = 0; k < extra_keywords_per_file; ++k) {
      switch (k % 3) {
        case 0:
          f.keywords.push_back("condition:" + pick(rng, kConditions));
          break;
        case 1:
          f.keywords.push_back("year:" + pick(rng, kYears));
          break;
        default:
          f.keywords.push_back("condition:" + pick(rng, kConditions));
          break;
      }
    }
    // De-duplicate keywords within the file (the index stores postings
    // per keyword; duplicates would double-count the file).
    std::sort(f.keywords.begin(), f.keywords.end());
    f.keywords.erase(std::unique(f.keywords.begin(), f.keywords.end()),
                     f.keywords.end());
    f.content = rng.bytes(content_bytes);
    files.push_back(std::move(f));
  }
  return files;
}

std::string keyword_alias(std::string_view kw, size_t i) {
  // '\x01' cannot occur in generator keywords, so aliases never collide with
  // logical names.
  return std::string(kw) + "\x01" + std::to_string(i);
}

std::vector<sse::PlainFile> apply_keyword_aliases(
    std::span<const sse::PlainFile> files, size_t n) {
  if (n == 0) {
    throw std::invalid_argument("apply_keyword_aliases: n must be >= 1");
  }
  std::vector<sse::PlainFile> out(files.begin(), files.end());
  for (sse::PlainFile& f : out) {
    std::vector<std::string> aliased;
    aliased.reserve(f.keywords.size() * n);
    for (const std::string& kw : f.keywords) {
      for (size_t i = 0; i < n; ++i) aliased.push_back(keyword_alias(kw, i));
    }
    f.keywords = std::move(aliased);
  }
  return out;
}

Bytes MhiWindow::to_bytes() const {
  io::Writer w;
  w.str(day);
  w.u32(static_cast<uint32_t>(samples.size()));
  for (const MhiSample& s : samples) {
    w.u64(s.t_ns);
    // Fixed-point encoding (centi-units) keeps the format portable.
    w.u64(static_cast<uint64_t>(s.heart_rate_bpm * 100));
    w.u64(static_cast<uint64_t>(s.systolic_mmhg * 100));
    w.u64(static_cast<uint64_t>(s.diastolic_mmhg * 100));
    w.u8(s.anomaly ? 1 : 0);
  }
  return w.take();
}

MhiWindow MhiWindow::from_bytes(BytesView b) {
  io::Reader r(b);
  MhiWindow win;
  win.day = r.str();
  size_t n = r.count32(33);  // each sample: 4 × u64 + u8
  win.samples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    MhiSample s;
    s.t_ns = r.u64();
    s.heart_rate_bpm = static_cast<double>(r.u64()) / 100.0;
    s.systolic_mmhg = static_cast<double>(r.u64()) / 100.0;
    s.diastolic_mmhg = static_cast<double>(r.u64()) / 100.0;
    s.anomaly = r.u8() == 1;
    win.samples.push_back(s);
  }
  return win;
}

MhiWindow generate_mhi_window(std::string day, size_t n_samples,
                              RandomSource& rng, double anomaly_rate) {
  MhiWindow win;
  win.day = std::move(day);
  win.samples.reserve(n_samples);
  uint64_t t = 0;
  for (size_t i = 0; i < n_samples; ++i) {
    MhiSample s;
    s.t_ns = t;
    t += 1'000'000'000;  // 1 Hz sampling
    auto noise = [&rng](double scale) {
      return (static_cast<double>(rng.u64() % 1000) / 1000.0 - 0.5) * scale;
    };
    bool anomaly =
        (static_cast<double>(rng.u64() % 10000) / 10000.0) < anomaly_rate;
    if (anomaly) {
      s.heart_rate_bpm = 150 + noise(30);  // tachycardia
      s.systolic_mmhg = 185 + noise(20);   // hypertensive surge
      s.diastolic_mmhg = 115 + noise(10);
    } else {
      s.heart_rate_bpm = 72 + noise(10);
      s.systolic_mmhg = 120 + noise(12);
      s.diastolic_mmhg = 80 + noise(8);
    }
    s.anomaly = anomaly;
    win.samples.push_back(s);
  }
  return win;
}

}  // namespace hcpp::core
