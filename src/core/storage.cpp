// §IV.B private PHI storage: one authenticated upload of (TPp, SI, Λ) plus
// the privilege material (d, BE_U(d)) the ASSIGN/REVOKE extension needs.
#include "src/core/entities.h"
#include "src/sim/onion.h"

namespace hcpp::core {

namespace {
constexpr const char* kLabel = "phi-storage";

// `index_files` carry the (possibly aliased) search keywords; `body_files`
// are what actually gets encrypted and returned to searchers.
StoreRequest build_store_request(RandomSource& rng,
                                 const std::string& collection,
                                 std::span<const sse::PlainFile> index_files,
                                 std::span<const sse::PlainFile> body_files,
                                 be::BroadcastGroup& be_group,
                                 const sse::Keys& keys, uint64_t now,
                                 BytesView nu, BytesView tp) {
  StoreRequest req;
  req.tp = Bytes(tp.begin(), tp.end());
  req.collection = collection;
  req.index = sse::build_index(index_files, keys, rng).to_bytes();
  req.files = sse::encrypt_collection(body_files, keys, rng).to_bytes();
  req.d = keys.d;
  req.be_blob = be_group.encrypt(keys.d, rng);
  req.t = now;
  req.mac = protocol_mac(nu, kLabel, req.body(), req.t);
  return req;
}
}  // namespace

bool Patient::store_phi(SServer& server) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  // Home-PC side: secure index (over keyword aliases, §VI.B), logical
  // keyword index, encrypted collection.
  ki_ = KeywordIndex::build(files_, sserver_id_);
  std::vector<sse::PlainFile> aliased =
      apply_keyword_aliases(files_, alias_count_);
  StoreRequest req = build_store_request(
      rng_, collection_, aliased, files_, *be_group_, keys_,
      net_->clock().now(), shared_key_nu(), tp_bytes());
  net_->transmit(name_, sserver_id_, req.wire_size(), kLabel);
  return server.handle_store(req);
}

bool Patient::store_phi_anonymous(SServer& server, sim::OnionNetwork& onion) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  ki_ = KeywordIndex::build(files_, sserver_id_);
  std::vector<sse::PlainFile> aliased =
      apply_keyword_aliases(files_, alias_count_);
  StoreRequest req = build_store_request(
      rng_, collection_, aliased, files_, *be_group_, keys_,
      net_->clock().now(), shared_key_nu(), tp_bytes());
  Bytes reply = onion.round_trip(
      name_, sserver_id_, req.to_wire(),
      [&server](BytesView wire) -> Bytes {
        try {
          bool ok = server.handle_store(StoreRequest::from_wire(wire));
          return Bytes{static_cast<uint8_t>(ok ? 1 : 0)};
        } catch (const std::exception&) {
          return Bytes{0};
        }
      },
      rng_);
  return reply.size() == 1 && reply[0] == 1;
}

bool SServer::handle_store(const StoreRequest& req) {
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return false;  // malformed pseudonym point
  }
  if (!protocol_mac_ok(nu, kLabel, req.body(), req.t, req.mac)) return false;
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  Account acct;
  try {
    acct.index = sse::SecureIndex::from_bytes(req.index);
    acct.files = sse::EncryptedCollection::from_bytes(req.files);
  } catch (const std::exception&) {
    return false;
  }
  acct.d = req.d;
  acct.be_blob = req.be_blob;
  accounts_[account_key(req.tp, req.collection)] = std::move(acct);
  return true;
}

}  // namespace hcpp::core
