// §IV.B private PHI storage: one authenticated upload of (TPp, SI, Λ) plus
// the privilege material (d, BE_U(d)) the ASSIGN/REVOKE extension needs.
// Uploads ride the retrying transport: lost or duplicated messages are
// retried / suppressed transparently, and the caller sees a typed Result.
#include "src/core/cluster.h"
#include "src/core/entities.h"
#include "src/obs/trace.h"
#include "src/sim/onion.h"
#include "src/sim/transport.h"

namespace hcpp::core {

namespace {
constexpr const char* kLabel = "phi-storage";

// `index_files` carry the (possibly aliased) search keywords; `body_files`
// are what actually gets encrypted and returned to searchers.
StoreRequest build_store_request(RandomSource& rng,
                                 const std::string& collection,
                                 std::span<const sse::PlainFile> index_files,
                                 std::span<const sse::PlainFile> body_files,
                                 be::BroadcastGroup& be_group,
                                 const sse::Keys& keys, uint64_t now,
                                 BytesView nu, BytesView tp) {
  StoreRequest req;
  req.tp = Bytes(tp.begin(), tp.end());
  req.collection = collection;
  req.index = sse::build_index(index_files, keys, rng).to_bytes();
  req.files = sse::encrypt_collection(body_files, keys, rng).to_bytes();
  req.d = keys.d;
  req.be_blob = be_group.encrypt(keys.d, rng);
  req.t = now;
  req.mac = protocol_mac(nu, kLabel, req.body(), req.t);
  return req;
}

/// One transport-routed upload to one server. The acknowledgement is not
/// separately charged (historical §V.B.2 accounting: storage is one
/// message), so response_size reports 0.
Result<void> send_store(sim::Network& net, const std::string& from,
                        SServer& server, const StoreRequest& req) {
  sim::CallOutcome<bool> out = net.transport().request<bool>(
      from, server.id(), req.wire_size(), req.mac, kLabel,
      [&]() -> std::optional<bool> {
        return server.handle_store(req) ? std::optional<bool>(true)
                                        : std::nullopt;
      },
      [](const bool&) { return size_t{0}; });
  switch (out.status) {
    case sim::CallStatus::kOk:
      return {};
    case sim::CallStatus::kRejected:
      return permanent_error(ErrorCode::kRejected, out.attempts,
                             "S-server refused the upload");
    case sim::CallStatus::kExhausted:
    default:
      return transient_error(ErrorCode::kTimeout, out.attempts,
                             "PHI upload undelivered after retries");
  }
}
}  // namespace

Result<void> Patient::try_store_phi(SServer& server) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:store");
  // Home-PC side: secure index (over keyword aliases, §VI.B), logical
  // keyword index, encrypted collection.
  ki_ = KeywordIndex::build(files_, sserver_id_);
  std::vector<sse::PlainFile> aliased =
      apply_keyword_aliases(files_, alias_count_);
  StoreRequest req = build_store_request(
      rng_, collection_, aliased, files_, *be_group_, keys_,
      net_->clock().now(), shared_key_nu(), tp_bytes());
  Result<void> r = send_store(*net_, name_, server, req);
  // A whole-index upload supersedes any server-side update log, so the
  // update chains restart under a fresh epoch (recycled counter values must
  // not re-derive labels the server has already seen).
  if (r.ok()) update_state_ = sse::UpdateState{update_state_.epoch + 1, {}};
  return r;
}

bool Patient::store_phi(SServer& server) {
  return try_store_phi(server).ok();
}

Result<size_t> Patient::store_phi(SServerGroup& group) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:store_replicated");
  ki_ = KeywordIndex::build(files_, sserver_id_);
  std::vector<sse::PlainFile> aliased =
      apply_keyword_aliases(files_, alias_count_);
  // One prepared upload, mirrored to every replica (same MAC — each replica
  // keeps its own replay cache, and the transport keys idempotency by
  // (receiver, MAC), so the fan-out is safe). Sharded groups get exactly one
  // upload, to the owning shard.
  StoreRequest req = build_store_request(
      rng_, collection_, aliased, files_, *be_group_, keys_,
      net_->clock().now(), shared_key_nu(), tp_bytes());
  if (group.sharded()) {
    Result<void> r =
        send_store(*net_, name_, group.shard_for(req.tp), req);
    if (r.ok()) {
      update_state_ = sse::UpdateState{update_state_.epoch + 1, {}};
      return size_t{1};
    }
    return r.error();
  }
  size_t stored = 0;
  bool any_rejected = false;
  uint32_t attempts = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    Result<void> r = send_store(*net_, name_, group.replica(i), req);
    if (r.ok()) {
      ++stored;
      obs::count(obs::kSGroupMirrorWrites);
    } else {
      attempts += r.error().attempts;
      any_rejected |= !r.error().transient();
    }
  }
  if (stored > 0) {
    update_state_ = sse::UpdateState{update_state_.epoch + 1, {}};
    return stored;
  }
  if (any_rejected) {
    return permanent_error(ErrorCode::kRejected, attempts,
                           "every replica refused the upload");
  }
  return transient_error(ErrorCode::kUnreachable, attempts,
                         "no storage replica reachable");
}

bool Patient::store_phi_anonymous(SServer& server, sim::OnionNetwork& onion) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  ki_ = KeywordIndex::build(files_, sserver_id_);
  std::vector<sse::PlainFile> aliased =
      apply_keyword_aliases(files_, alias_count_);
  StoreRequest req = build_store_request(
      rng_, collection_, aliased, files_, *be_group_, keys_,
      net_->clock().now(), shared_key_nu(), tp_bytes());
  Bytes reply = onion.round_trip(
      name_, sserver_id_, req.to_wire(),
      [&server](BytesView wire) -> Bytes {
        try {
          bool ok = server.handle_store(StoreRequest::from_wire(wire));
          return Bytes{static_cast<uint8_t>(ok ? 1 : 0)};
        } catch (const std::exception&) {
          return Bytes{0};
        }
      },
      rng_);
  bool ok = reply.size() == 1 && reply[0] == 1;
  if (ok) update_state_ = sse::UpdateState{update_state_.epoch + 1, {}};
  return ok;
}

bool SServer::handle_store(const StoreRequest& req) {
  obs::Span span("sserver:store");
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return false;  // malformed pseudonym point
  }
  if (!protocol_mac_ok(nu, kLabel, req.body(), req.t, req.mac)) return false;
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  Account acct;
  try {
    acct.index = std::make_shared<const sse::SecureIndex>(
        sse::SecureIndex::from_bytes(req.index));
    acct.files = sse::EncryptedCollection::from_bytes(req.files);
  } catch (const std::exception&) {
    return false;
  }
  acct.d = req.d;
  acct.be_blob = req.be_blob;
  std::string key = account_key(req.tp, req.collection);
  // A re-upload supersedes the old account's file/log sub-records; erase
  // them by the old in-memory image (no store-wide scan).
  if (auto it = accounts_.find(key); it != accounts_.end()) {
    store_erase_all(key, it->second);
  }
  accounts_[key] = std::move(acct);
  store_put_all(key, accounts_[key]);
  return true;
}

}  // namespace hcpp::core
