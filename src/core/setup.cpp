#include "src/core/setup.h"

#include <stdexcept>

namespace hcpp::core {

Deployment Deployment::create(const DeploymentConfig& config) {
  Deployment d;
  d.net = std::make_unique<sim::Network>();
  Bytes seed_bytes = to_bytes("hcpp-deployment-seed");
  for (int i = 0; i < 8; ++i) {
    seed_bytes.push_back(static_cast<uint8_t>(config.seed >> (8 * i)));
  }
  d.rng = std::make_unique<cipher::Drbg>(seed_bytes);

  const curve::CurveCtx& ctx = curve::params(config.params);
  d.aserver =
      std::make_unique<AServer>(*d.net, ctx, "state-a-server", *d.rng);
  d.sserver =
      std::make_unique<SServer>(*d.net, *d.aserver, "hospital-s-server");
  d.on_duty = std::make_unique<Physician>(*d.net, *d.aserver, "dr-on-duty");
  d.off_duty = std::make_unique<Physician>(*d.net, *d.aserver, "dr-off-duty");
  d.aserver->set_on_duty("dr-on-duty", true);
  d.aserver->set_on_duty("dr-off-duty", false);
  d.anchors = std::make_unique<ledger::AnchorChain>(
      d.aserver->domain(), ledger::default_anchor_authorities());

  d.patient = std::make_unique<Patient>(*d.net, "patient-alice", *d.rng);
  d.patient->setup(*d.aserver, d.sserver->id());
  d.patient->add_files(generate_phi_collection(
      config.n_phi_files, d.patient->rng(), /*first_id=*/1,
      config.keywords_per_file, config.file_content_bytes));

  d.family = std::make_unique<Family>(*d.net, "family-bob");
  d.pdevice = std::make_unique<PDevice>(*d.net, "p-device", *d.rng);
  d.mu_family = d.rng->bytes(32);
  d.mu_pdevice = d.rng->bytes(32);

  if (config.store_phi) {
    if (!d.patient->store_phi(*d.sserver)) {
      throw std::runtime_error("Deployment: PHI storage failed");
    }
  }
  if (config.assign_privileges) {
    if (!config.store_phi) {
      throw std::invalid_argument(
          "Deployment: privileges need a stored collection (KI is built "
          "during storage)");
    }
    if (!assign_privilege(*d.patient, *d.family, d.mu_family) ||
        !assign_privilege(*d.patient, *d.pdevice, d.mu_pdevice)) {
      throw std::runtime_error("Deployment: privilege assignment failed");
    }
  }
  return d;
}

std::vector<std::string> Deployment::all_keywords() const {
  return patient->keyword_index().dictionary();
}

}  // namespace hcpp::core
