#include "src/core/accountability.h"

#include <algorithm>
#include <optional>

namespace hcpp::core {

bool verify_rd(const ibc::PublicParams& pub, const std::string& aserver_id,
               const RdRecord& rd) {
  try {
    ibc::IbsSignature sig =
        ibc::IbsSignature::from_bytes(*pub.ctx, rd.aserver_sig);
    return ibc::ibs_verify(pub, aserver_id,
                           rd_statement(rd.physician_id, rd.tp, rd.t11), sig);
  } catch (const std::exception&) {
    return false;
  }
}

bool verify_trace(const ibc::PublicParams& pub, const TraceRecord& tr) {
  try {
    ibc::IbsSignature sig =
        ibc::IbsSignature::from_bytes(*pub.ctx, tr.physician_sig);
    EmergencyAuthRequest req;
    req.physician_id = tr.physician_id;
    req.tp = tr.tp;
    req.t = tr.t10;
    return ibc::ibs_verify(pub, tr.physician_id, req.body(), sig);
  } catch (const std::exception&) {
    return false;
  }
}

namespace {
/// The trace matching rd (same physician, pseudonym, t11), or nullptr.
const TraceRecord* find_trace(std::span<const TraceRecord> traces,
                              const RdRecord& rd) {
  for (const TraceRecord& tr : traces) {
    if (tr.physician_id == rd.physician_id && tr.t11 == rd.t11 &&
        ct_equal(tr.tp, rd.tp)) {
      return &tr;
    }
  }
  return nullptr;
}

std::optional<ibc::IbsBatchItem> rd_batch_item(const ibc::PublicParams& pub,
                                               const std::string& aserver_id,
                                               const RdRecord& rd) {
  try {
    return ibc::IbsBatchItem{
        aserver_id, rd_statement(rd.physician_id, rd.tp, rd.t11),
        ibc::IbsSignature::from_bytes(*pub.ctx, rd.aserver_sig)};
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<ibc::IbsBatchItem> trace_batch_item(const ibc::PublicParams& pub,
                                                  const TraceRecord& tr) {
  try {
    EmergencyAuthRequest req;
    req.physician_id = tr.physician_id;
    req.tp = tr.tp;
    req.t = tr.t10;
    return ibc::IbsBatchItem{
        tr.physician_id, req.body(),
        ibc::IbsSignature::from_bytes(*pub.ctx, tr.physician_sig)};
  } catch (const std::exception&) {
    return std::nullopt;
  }
}
}  // namespace

AuditReport audit(const ibc::PublicParams& pub, const std::string& aserver_id,
                  std::span<const TraceRecord> traces,
                  std::span<const RdRecord> records,
                  const std::set<std::string>& permitted_keywords,
                  par::ThreadPool* pool) {
  AuditReport report;

  // Round 1: every RD carries an A-server signature — one shared identity,
  // so the batch computes ê(H1(A), Ppub) once for all of them.
  std::vector<ibc::IbsBatchItem> rd_items;
  std::vector<size_t> rd_slot(records.size(), SIZE_MAX);
  for (size_t i = 0; i < records.size(); ++i) {
    std::optional<ibc::IbsBatchItem> item =
        rd_batch_item(pub, aserver_id, records[i]);
    if (item.has_value()) {
      rd_slot[i] = rd_items.size();
      rd_items.push_back(std::move(*item));
    }
  }
  std::vector<uint8_t> rd_ok = ibc::ibs_verify_batch(pub, rd_items, pool);

  // Round 2: traces matched by a verified RD, keyed by trace pointer so a
  // trace referenced twice is only verified once.
  std::vector<const TraceRecord*> rd_match(records.size(), nullptr);
  std::vector<ibc::IbsBatchItem> tr_items;
  std::vector<const TraceRecord*> tr_of_item;
  for (size_t i = 0; i < records.size(); ++i) {
    if (rd_slot[i] == SIZE_MAX || !rd_ok[rd_slot[i]]) continue;
    const TraceRecord* match = find_trace(traces, records[i]);
    if (match == nullptr) continue;
    rd_match[i] = match;
    if (std::find(tr_of_item.begin(), tr_of_item.end(), match) ==
        tr_of_item.end()) {
      std::optional<ibc::IbsBatchItem> item = trace_batch_item(pub, *match);
      if (item.has_value()) {
        tr_items.push_back(std::move(*item));
        tr_of_item.push_back(match);
      }
    }
  }
  std::vector<uint8_t> tr_ok = ibc::ibs_verify_batch(pub, tr_items, pool);
  auto trace_verified = [&](const TraceRecord* tr) {
    for (size_t j = 0; j < tr_of_item.size(); ++j) {
      if (tr_of_item[j] == tr) return tr_ok[j] != 0;
    }
    return false;
  };

  for (size_t i = 0; i < records.size(); ++i) {
    const RdRecord& rd = records[i];
    if (rd_slot[i] == SIZE_MAX || !rd_ok[rd_slot[i]]) {
      ++report.inconsistencies;
      continue;
    }
    if (rd_match[i] == nullptr || !trace_verified(rd_match[i])) {
      ++report.inconsistencies;
      continue;
    }
    if (std::find(report.accountable.begin(), report.accountable.end(),
                  rd.physician_id) == report.accountable.end()) {
      report.accountable.push_back(rd.physician_id);
    }
    bool improper = false;
    for (const std::string& kw : rd.keywords) {
      improper |= (permitted_keywords.find(kw) == permitted_keywords.end());
    }
    if (improper &&
        std::find(report.improper_searchers.begin(),
                  report.improper_searchers.end(),
                  rd.physician_id) == report.improper_searchers.end()) {
      report.improper_searchers.push_back(rd.physician_id);
    }
  }
  return report;
}

}  // namespace hcpp::core
