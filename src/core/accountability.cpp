#include "src/core/accountability.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "src/core/coalesce.h"
#include "src/par/pool.h"

namespace hcpp::core {

bool verify_rd(const ibc::PublicParams& pub, const std::string& aserver_id,
               const RdRecord& rd) {
  try {
    ibc::IbsSignature sig =
        ibc::IbsSignature::from_bytes(*pub.ctx, rd.aserver_sig);
    return ibc::ibs_verify(pub, aserver_id,
                           rd_statement(rd.physician_id, rd.tp, rd.t11), sig);
  } catch (const std::exception&) {
    return false;
  }
}

bool verify_trace(const ibc::PublicParams& pub, const TraceRecord& tr) {
  try {
    ibc::IbsSignature sig =
        ibc::IbsSignature::from_bytes(*pub.ctx, tr.physician_sig);
    EmergencyAuthRequest req;
    req.physician_id = tr.physician_id;
    req.tp = tr.tp;
    req.t = tr.t10;
    return ibc::ibs_verify(pub, tr.physician_id, req.body(), sig);
  } catch (const std::exception&) {
    return false;
  }
}

namespace {
/// The trace matching rd (same physician, pseudonym, t11), or nullptr.
const TraceRecord* find_trace(std::span<const TraceRecord> traces,
                              const RdRecord& rd) {
  for (const TraceRecord& tr : traces) {
    if (tr.physician_id == rd.physician_id && tr.t11 == rd.t11 &&
        ct_equal(tr.tp, rd.tp)) {
      return &tr;
    }
  }
  return nullptr;
}

std::optional<ibc::IbsBatchItem> rd_batch_item(const ibc::PublicParams& pub,
                                               const std::string& aserver_id,
                                               const RdRecord& rd) {
  try {
    return ibc::IbsBatchItem{
        aserver_id, rd_statement(rd.physician_id, rd.tp, rd.t11),
        ibc::IbsSignature::from_bytes(*pub.ctx, rd.aserver_sig)};
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<ibc::IbsBatchItem> trace_batch_item(const ibc::PublicParams& pub,
                                                  const TraceRecord& tr) {
  try {
    EmergencyAuthRequest req;
    req.physician_id = tr.physician_id;
    req.tp = tr.tp;
    req.t = tr.t10;
    return ibc::IbsBatchItem{
        tr.physician_id, req.body(),
        ibc::IbsSignature::from_bytes(*pub.ctx, tr.physician_sig)};
  } catch (const std::exception&) {
    return std::nullopt;
  }
}
}  // namespace

AuditReport audit(const ibc::PublicParams& pub, const std::string& aserver_id,
                  std::span<const TraceRecord> traces,
                  std::span<const RdRecord> records,
                  const std::set<std::string>& permitted_keywords,
                  par::ThreadPool* pool) {
  AuditReport report;

  // Both verification rounds share one PairingCoalescer: the drains fuse
  // each signature's two pairings into a single Miller product and batch
  // the final exponentiations (one modular inversion per round), and the
  // Ppub line table carries over from round 1 to round 2. H1(ID) hashing is
  // cached per identity inside each drain — round 1's single shared
  // A-server identity hashes exactly once.
  PairingCoalescer verifier(pub);

  // Round 1: every RD carries an A-server signature.
  std::vector<size_t> rd_slot(records.size(), SIZE_MAX);
  for (size_t i = 0; i < records.size(); ++i) {
    std::optional<ibc::IbsBatchItem> item =
        rd_batch_item(pub, aserver_id, records[i]);
    if (item.has_value()) {
      rd_slot[i] =
          verifier.add_ibs_verify(item->id, item->message, item->sig);
    }
  }
  std::vector<uint8_t> rd_ok = verifier.drain(pool).ibs_ok;

  // Round 2: traces matched by a verified RD, keyed by trace pointer so a
  // trace referenced twice is only verified once.
  std::vector<const TraceRecord*> rd_match(records.size(), nullptr);
  std::vector<const TraceRecord*> tr_of_item;
  for (size_t i = 0; i < records.size(); ++i) {
    if (rd_slot[i] == SIZE_MAX || !rd_ok[rd_slot[i]]) continue;
    const TraceRecord* match = find_trace(traces, records[i]);
    if (match == nullptr) continue;
    rd_match[i] = match;
    if (std::find(tr_of_item.begin(), tr_of_item.end(), match) ==
        tr_of_item.end()) {
      std::optional<ibc::IbsBatchItem> item = trace_batch_item(pub, *match);
      if (item.has_value()) {
        verifier.add_ibs_verify(item->id, item->message, item->sig);
        tr_of_item.push_back(match);
      }
    }
  }
  std::vector<uint8_t> tr_ok = verifier.drain(pool).ibs_ok;
  auto trace_verified = [&](const TraceRecord* tr) {
    for (size_t j = 0; j < tr_of_item.size(); ++j) {
      if (tr_of_item[j] == tr) return tr_ok[j] != 0;
    }
    return false;
  };

  for (size_t i = 0; i < records.size(); ++i) {
    const RdRecord& rd = records[i];
    if (rd_slot[i] == SIZE_MAX || !rd_ok[rd_slot[i]]) {
      ++report.bad_rd_signatures;
      continue;
    }
    if (rd_match[i] == nullptr) {
      ++report.rd_without_trace;
      continue;
    }
    if (!trace_verified(rd_match[i])) {
      ++report.bad_trace_signatures;
      continue;
    }
    if (std::find(report.accountable.begin(), report.accountable.end(),
                  rd.physician_id) == report.accountable.end()) {
      report.accountable.push_back(rd.physician_id);
    }
    bool improper = false;
    for (const std::string& kw : rd.keywords) {
      improper |= (permitted_keywords.find(kw) == permitted_keywords.end());
    }
    if (improper &&
        std::find(report.improper_searchers.begin(),
                  report.improper_searchers.end(),
                  rd.physician_id) == report.improper_searchers.end()) {
      report.improper_searchers.push_back(rd.physician_id);
    }
  }
  return report;
}

// ---- ledger event conversion ----------------------------------------------

ledger::AccessEvent event_from_trace(const TraceRecord& tr) {
  ledger::AccessEvent ev;
  ev.kind = ledger::EventKind::kTrace;
  ev.actor_id = tr.physician_id;
  ev.subject = tr.tp;
  ev.t10 = tr.t10;
  ev.t11 = tr.t11;
  ev.sig = tr.physician_sig;
  return ev;
}

TraceRecord trace_from_event(const ledger::AccessEvent& ev) {
  return {ev.actor_id, ev.subject, ev.t10, ev.t11, ev.sig};
}

ledger::AccessEvent event_from_rd(const RdRecord& rd) {
  ledger::AccessEvent ev;
  ev.kind = ledger::EventKind::kAccess;
  ev.actor_id = rd.physician_id;
  ev.subject = rd.tp;
  ev.keywords = rd.keywords;
  ev.t11 = rd.t11;
  ev.sig = rd.aserver_sig;
  return ev;
}

RdRecord rd_from_event(const ledger::AccessEvent& ev) {
  return {ev.actor_id, ev.subject, ev.keywords, ev.t11, ev.sig};
}

// ---- chain-verifying audit -------------------------------------------------

LedgerAuditReport audit_ledgers(
    const ibc::PublicParams& pub, const std::string& aserver_id,
    const ledger::Ledger& trace_ledger, const ledger::Ledger& rd_ledger,
    std::span<const std::string> expected_authorities,
    const std::set<std::string>& permitted_keywords,
    par::ThreadPool* pool) {
  LedgerAuditReport out;

  // 1. History integrity: recompute both chains, then hold each against its
  // newest anchored checkpoint. A clean chain that is *shorter* than the
  // anchor is truncation; one whose prefix digest differs is a fork.
  auto chain_verdict = [](const ledger::Ledger& led) {
    if (const ledger::AnchoredCheckpoint* a = led.last_anchor()) {
      return led.verify_against(*a);
    }
    return led.verify_chain();
  };
  out.trace_chain = chain_verdict(trace_ledger);
  out.rd_chain = chain_verdict(rd_ledger);

  // 2. The anchors themselves: every checkpoint must carry the full expected
  // authority chain, each IBS verifying over the canonical statement.
  for (const ledger::Ledger* led : {&trace_ledger, &rd_ledger}) {
    for (const ledger::AnchoredCheckpoint& a : led->anchors()) {
      if (!ledger::verify_anchor_sigs(pub, a, expected_authorities, pool)) {
        out.anchors_ok = false;
      }
    }
  }

  // 3. Spot-check the anchored prefixes with inclusion proofs — O(log n)
  // each, independent, so they spread across the pool.
  auto check_proofs = [&](const ledger::Ledger& led) {
    const ledger::AnchoredCheckpoint* a = led.last_anchor();
    if (a == nullptr || a->cp.count == 0 || a->cp.count > led.size()) return;
    const uint64_t count = a->cp.count;
    std::atomic<size_t> bad{0};
    auto check_one = [&](size_t seq) {
      ledger::InclusionProof proof = led.prove(seq, count);
      if (!ledger::Ledger::verify_proof(a->cp.merkle_root, proof)) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    };
    if (pool != nullptr) {
      pool->parallel_for(count, check_one);
    } else {
      for (uint64_t seq = 0; seq < count; ++seq) check_one(seq);
    }
    out.proofs_checked += count;
    out.bad_proofs += bad.load();
  };
  check_proofs(trace_ledger);
  check_proofs(rd_ledger);

  // 4. Record-level audit over the decoded events. Undecodable payloads
  // cannot occur on an intact chain (the entry hash commits to the encoding
  // verified above), so decoding failures are already counted in the chain
  // verdicts and skipped here.
  std::vector<TraceRecord> traces;
  for (const ledger::LedgerEntry& e : trace_ledger.entries()) {
    try {
      traces.push_back(trace_from_event(e.event()));
    } catch (const std::exception&) {
    }
  }
  std::vector<RdRecord> records;
  for (const ledger::LedgerEntry& e : rd_ledger.entries()) {
    try {
      records.push_back(rd_from_event(e.event()));
    } catch (const std::exception&) {
    }
  }
  out.records =
      audit(pub, aserver_id, traces, records, permitted_keywords, pool);
  return out;
}

}  // namespace hcpp::core
