#include "src/core/accountability.h"

#include <algorithm>

namespace hcpp::core {

bool verify_rd(const ibc::PublicParams& pub, const std::string& aserver_id,
               const RdRecord& rd) {
  try {
    ibc::IbsSignature sig =
        ibc::IbsSignature::from_bytes(*pub.ctx, rd.aserver_sig);
    return ibc::ibs_verify(pub, aserver_id,
                           rd_statement(rd.physician_id, rd.tp, rd.t11), sig);
  } catch (const std::exception&) {
    return false;
  }
}

bool verify_trace(const ibc::PublicParams& pub, const TraceRecord& tr) {
  try {
    ibc::IbsSignature sig =
        ibc::IbsSignature::from_bytes(*pub.ctx, tr.physician_sig);
    EmergencyAuthRequest req;
    req.physician_id = tr.physician_id;
    req.tp = tr.tp;
    req.t = tr.t10;
    return ibc::ibs_verify(pub, tr.physician_id, req.body(), sig);
  } catch (const std::exception&) {
    return false;
  }
}

AuditReport audit(const ibc::PublicParams& pub, const std::string& aserver_id,
                  std::span<const TraceRecord> traces,
                  std::span<const RdRecord> records,
                  const std::set<std::string>& permitted_keywords) {
  AuditReport report;
  for (const RdRecord& rd : records) {
    if (!verify_rd(pub, aserver_id, rd)) {
      ++report.inconsistencies;
      continue;
    }
    // Find the matching trace: same physician, same pseudonym, same t11.
    const TraceRecord* match = nullptr;
    for (const TraceRecord& tr : traces) {
      if (tr.physician_id == rd.physician_id && tr.t11 == rd.t11 &&
          ct_equal(tr.tp, rd.tp)) {
        match = &tr;
        break;
      }
    }
    if (match == nullptr || !verify_trace(pub, *match)) {
      ++report.inconsistencies;
      continue;
    }
    if (std::find(report.accountable.begin(), report.accountable.end(),
                  rd.physician_id) == report.accountable.end()) {
      report.accountable.push_back(rd.physician_id);
    }
    bool improper = false;
    for (const std::string& kw : rd.keywords) {
      improper |= (permitted_keywords.find(kw) == permitted_keywords.end());
    }
    if (improper &&
        std::find(report.improper_searchers.begin(),
                  report.improper_searchers.end(),
                  rd.physician_id) == report.improper_searchers.end()) {
      report.improper_searchers.push_back(rd.physician_id);
    }
  }
  return report;
}

}  // namespace hcpp::core
