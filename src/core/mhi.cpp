// §IV.E.2 MHI storage and retrieval: the P-device pre-computes
// IBE_IDr(MHI) ‖ PEKS_σ(IDr, kw) offline and uploads it; during an
// emergency, the authenticated on-duty physician obtains Γr from the
// A-server, computes TDr(kw), and the S-server returns the matching
// role-encrypted windows.
#include "src/cipher/aead.h"
#include "src/core/entities.h"

namespace hcpp::core {

namespace {
constexpr const char* kStoreLabel = "mhi-storage";
constexpr const char* kRetrieveLabel = "mhi-retrieval";
constexpr const char* kRoleKeyLabel = "mhi-role-key";
}  // namespace

bool PDevice::store_mhi(const AServer& authority, SServer& server,
                        const std::string& role_id,
                        std::span<const std::string> extra_keywords) {
  if (!bundle_.has_value()) return false;
  const curve::CurveCtx& ctx = authority.ctx();
  Bytes nu = bundle_->nu;
  bool all_ok = true;
  for (const MhiWindow& win : mhi_) {
    MhiStoreRequest req;
    req.tp = bundle_->tp;
    req.role_id = role_id;
    req.ibe_blob =
        ibc::ibe_encrypt(authority.pub(), role_id, win.to_bytes(), rng_)
            .to_bytes();
    std::vector<std::string> kws;
    kws.push_back("day:" + win.day);
    for (const std::string& kw : extra_keywords) kws.push_back(kw);
    for (const std::string& kw : kws) {
      req.peks_tags.push_back(
          peks::peks_encrypt(authority.pub(), role_id, kw, rng_).to_bytes());
    }
    req.t = net_->clock().now();
    req.mac = protocol_mac(nu, kStoreLabel, req.body(), req.t);
    net_->transmit(id_, server.id(), req.wire_size(), kStoreLabel);
    all_ok &= server.handle_mhi_store(req);
    (void)ctx;
  }
  return all_ok;
}

bool SServer::handle_mhi_store(const MhiStoreRequest& req) {
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return false;
  }
  if (!protocol_mac_ok(nu, kStoreLabel, req.body(), req.t, req.mac)) {
    return false;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  MhiEntry entry;
  entry.role_id = req.role_id;
  try {
    for (const Bytes& tag : req.peks_tags) {
      entry.tags.push_back(peks::PeksCiphertext::from_bytes(*ctx_, tag));
    }
  } catch (const std::exception&) {
    return false;
  }
  entry.ibe_blob = req.ibe_blob;
  mhi_store_.push_back(std::move(entry));
  return true;
}

std::optional<curve::Point> Physician::request_role_key(
    AServer& authority, const std::string& role_id) {
  RoleKeyRequest req;
  req.physician_id = id_;
  req.role_id = role_id;
  req.t = net_->clock().now();
  req.sig =
      ibc::ibs_sign(*ctx_, private_key_, id_, req.body(), rng_).to_bytes();
  net_->transmit(id_, authority.id(), req.wire_size(), kRoleKeyLabel);
  std::optional<curve::Point> key = authority.handle_role_key_request(req);
  if (key.has_value()) {
    net_->transmit(authority.id(), id_, curve::point_to_bytes(*key).size(),
                   kRoleKeyLabel);
  }
  return key;
}

std::optional<curve::Point> AServer::handle_role_key_request(
    const RoleKeyRequest& req) {
  if (!net_->accept_fresh(id_, req.sig, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  ibc::IbsSignature sig;
  try {
    sig = ibc::IbsSignature::from_bytes(domain_.ctx(), req.sig);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!ibc::ibs_verify(pub(), req.physician_id, req.body(), sig)) {
    return std::nullopt;
  }
  if (!is_on_duty(req.physician_id)) return std::nullopt;
  return domain_.extract(req.role_id);
}

std::vector<MhiWindow> Physician::retrieve_mhi(SServer& server,
                                               const std::string& role_id,
                                               const curve::Point& role_key,
                                               std::string_view keyword) {
  // ρ = ê(Γr, PK_S) = ê(PK_r, Γ_S) — the role-based pairwise key.
  Bytes rho = ibc::shared_key_with_id(*ctx_, role_key,
                                      server.id());
  MhiRetrieveRequest req;
  req.physician_id = id_;
  req.role_id = role_id;
  req.trapdoor = peks::peks_trapdoor(*ctx_, role_key, keyword).to_bytes();
  req.t = net_->clock().now();
  req.mac = protocol_mac(rho, kRetrieveLabel, req.body(), req.t);
  net_->transmit(id_, server.id(), req.wire_size(), kRetrieveLabel);

  std::optional<MhiRetrieveResponse> resp = server.handle_mhi_retrieve(req);
  if (!resp.has_value()) return {};
  net_->transmit(server.id(), id_, resp->wire_size(), kRetrieveLabel);
  if (!protocol_mac_ok(rho, kRetrieveLabel, resp->body(), resp->t,
                       resp->mac)) {
    return {};
  }
  std::vector<MhiWindow> out;
  for (const Bytes& blob : resp->ibe_blobs) {
    try {
      ibc::IbeCiphertext ct = ibc::IbeCiphertext::from_bytes(*ctx_, blob);
      out.push_back(
          MhiWindow::from_bytes(ibc::ibe_decrypt(*ctx_, role_key, ct)));
    } catch (const std::exception&) {
      // skip undecryptable entries
    }
  }
  return out;
}

std::optional<MhiRetrieveResponse> SServer::handle_mhi_retrieve(
    const MhiRetrieveRequest& req) {
  // Server side of ρ: ê(PK_r, Γ_S).
  curve::Point role_pk = ibc::Domain::public_key(*ctx_, req.role_id);
  Bytes rho = ibc::shared_key_with_point(*ctx_, self_key_, role_pk);
  if (!protocol_mac_ok(rho, kRetrieveLabel, req.body(), req.t, req.mac)) {
    return std::nullopt;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  peks::Trapdoor td;
  try {
    td = peks::Trapdoor::from_bytes(*ctx_, req.trapdoor);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  MhiRetrieveResponse resp;
  for (const MhiEntry& entry : mhi_store_) {
    if (entry.role_id != req.role_id) continue;
    for (const peks::PeksCiphertext& tag : entry.tags) {
      if (peks::peks_test(*ctx_, tag, td)) {
        resp.ibe_blobs.push_back(entry.ibe_blob);
        break;
      }
    }
  }
  resp.t = net_->clock().now();
  resp.mac = protocol_mac(rho, kRetrieveLabel, resp.body(), resp.t);
  return resp;
}

}  // namespace hcpp::core
