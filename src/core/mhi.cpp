// §IV.E.2 MHI storage and retrieval: the P-device pre-computes
// IBE_IDr(MHI) ‖ PEKS_σ(IDr, kw) offline and uploads it; during an
// emergency, the authenticated on-duty physician obtains Γr from the
// A-server, computes TDr(kw), and the S-server returns the matching
// role-encrypted windows. All exchanges ride the retrying transport.
#include "src/cipher/aead.h"
#include "src/core/entities.h"
#include "src/obs/trace.h"
#include "src/sim/transport.h"

namespace hcpp::core {

namespace {
constexpr const char* kStoreLabel = "mhi-storage";
constexpr const char* kRetrieveLabel = "mhi-retrieval";
constexpr const char* kRoleKeyLabel = "mhi-role-key";
constexpr const char* kRegisterLabel = "mhi-register";
constexpr const char* kHitsLabel = "mhi-hits";
}  // namespace

Result<void> PDevice::try_store_mhi(
    const AServer& authority, SServer& server, const std::string& role_id,
    std::span<const std::string> extra_keywords) {
  if (!bundle_.has_value()) {
    return permanent_error(ErrorCode::kPrecondition, 0,
                           "P-device holds no privilege bundle");
  }
  obs::Span span("protocol:mhi_store");
  Bytes nu = bundle_->nu;
  // Every window is attempted even after a failure — partial MHI coverage
  // beats none in an emergency. The worst outcome wins the returned error.
  bool any_rejected = false;
  bool any_timeout = false;
  uint32_t attempts = 0;
  for (const MhiWindow& win : mhi_) {
    MhiStoreRequest req;
    req.tp = bundle_->tp;
    req.role_id = role_id;
    req.ibe_blob =
        ibc::ibe_encrypt(authority.pub(), role_id, win.to_bytes(), rng_)
            .to_bytes();
    std::vector<std::string> kws;
    kws.push_back("day:" + win.day);
    for (const std::string& kw : extra_keywords) kws.push_back(kw);
    for (const std::string& kw : kws) {
      req.peks_tags.push_back(
          peks::peks_encrypt(authority.pub(), role_id, kw, rng_).to_bytes());
    }
    req.t = net_->clock().now();
    req.mac = protocol_mac(nu, kStoreLabel, req.body(), req.t);
    // One-message upload: like PHI storage, the ack is not charged.
    sim::CallOutcome<bool> out = net_->transport().request<bool>(
        id_, server.id(), req.wire_size(), req.mac, kStoreLabel,
        [&]() -> std::optional<bool> {
          return server.handle_mhi_store(req) ? std::optional<bool>(true)
                                              : std::nullopt;
        },
        [](const bool&) { return size_t{0}; });
    attempts += out.attempts;
    if (out.status == sim::CallStatus::kRejected) any_rejected = true;
    if (out.status == sim::CallStatus::kExhausted) any_timeout = true;
  }
  if (any_rejected) {
    return permanent_error(ErrorCode::kRejected, attempts,
                           "S-server refused an MHI window");
  }
  if (any_timeout) {
    return transient_error(ErrorCode::kTimeout, attempts,
                           "MHI window undelivered after retries");
  }
  return {};
}

bool PDevice::store_mhi(const AServer& authority, SServer& server,
                        const std::string& role_id,
                        std::span<const std::string> extra_keywords) {
  return try_store_mhi(authority, server, role_id, extra_keywords).ok();
}

bool SServer::handle_mhi_store(const MhiStoreRequest& req) {
  obs::Span span("sserver:mhi_store");
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return false;
  }
  if (!protocol_mac_ok(nu, kStoreLabel, req.body(), req.t, req.mac)) {
    return false;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  MhiEntry entry;
  try {
    for (const Bytes& tag : req.peks_tags) {
      entry.tags.push_back(peks::PeksCiphertext::from_bytes(*ctx_, tag));
    }
  } catch (const std::exception&) {
    return false;
  }
  entry.ibe_blob = req.ibe_blob;
  // Feed the streaming hub before shelving: standing registrations for this
  // role see the window the moment it lands (DESIGN.md §13).
  mhi_hub_.ingest(req.role_id, entry.tags, entry.ibe_blob, mhi_pool_);
  mhi_store_[req.role_id].push_back(std::move(entry));
  return true;
}

Result<curve::Point> Physician::try_request_role_key(
    AServer& authority, const std::string& role_id) {
  RoleKeyRequest req;
  req.physician_id = id_;
  req.role_id = role_id;
  req.t = net_->clock().now();
  req.sig =
      ibc::ibs_sign(*ctx_, private_key_, id_, req.body(), rng_).to_bytes();
  sim::CallOutcome<curve::Point> out =
      net_->transport().request<curve::Point>(
          id_, authority.id(), req.wire_size(), req.sig, kRoleKeyLabel,
          [&]() { return authority.handle_role_key_request(req); },
          [](const curve::Point& k) {
            return curve::point_to_bytes(k).size();
          });
  if (out.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, out.attempts,
                           "A-server unreachable for role-key extraction");
  }
  if (out.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, out.attempts,
                           "A-server refused the role-key request");
  }
  return *out.response;
}

std::optional<curve::Point> Physician::request_role_key(
    AServer& authority, const std::string& role_id) {
  Result<curve::Point> r = try_request_role_key(authority, role_id);
  if (!r.ok()) return std::nullopt;
  return r.value();
}

std::optional<curve::Point> AServer::handle_role_key_request(
    const RoleKeyRequest& req) {
  if (!net_->accept_fresh(id_, req.sig, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  ibc::IbsSignature sig;
  try {
    sig = ibc::IbsSignature::from_bytes(domain_.ctx(), req.sig);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (!ibc::ibs_verify(pub(), req.physician_id, req.body(), sig)) {
    return std::nullopt;
  }
  if (!is_on_duty(req.physician_id)) return std::nullopt;
  return domain_.extract(req.role_id);
}

Result<std::vector<MhiWindow>> Physician::try_retrieve_mhi(
    SServer& server, const std::string& role_id, const curve::Point& role_key,
    std::string_view keyword) {
  obs::Span span("protocol:mhi_retrieve");
  // ρ = ê(Γr, PK_S) = ê(PK_r, Γ_S) — the role-based pairwise key, derived
  // against the *service* identity so any group replica can answer.
  Bytes rho = ibc::shared_key_with_id(*ctx_, role_key, server.service_id());
  MhiRetrieveRequest req;
  req.physician_id = id_;
  req.role_id = role_id;
  req.trapdoor = peks::peks_trapdoor(*ctx_, role_key, keyword).to_bytes();
  req.t = net_->clock().now();
  req.mac = protocol_mac(rho, kRetrieveLabel, req.body(), req.t);

  sim::CallOutcome<MhiRetrieveResponse> out =
      net_->transport().request<MhiRetrieveResponse>(
          id_, server.id(), req.wire_size(), req.mac, kRetrieveLabel,
          [&]() { return server.handle_mhi_retrieve(req); },
          [](const MhiRetrieveResponse& r) { return r.wire_size(); });
  if (out.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, out.attempts,
                           "MHI retrieval undelivered after retries");
  }
  if (out.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, out.attempts,
                           "S-server refused the MHI retrieval");
  }
  const MhiRetrieveResponse& resp = *out.response;
  if (!protocol_mac_ok(rho, kRetrieveLabel, resp.body(), resp.t, resp.mac)) {
    return permanent_error(ErrorCode::kBadResponse, out.attempts,
                           "MHI response failed authentication");
  }
  std::vector<MhiWindow> windows;
  // One precomputation of Γr's Miller lines amortizes across the whole
  // batch: each blob's pairing ê(Γr, U) is line evaluations only.
  ibc::IbeDecryptor decryptor(*ctx_, role_key);
  for (const Bytes& blob : resp.ibe_blobs) {
    try {
      ibc::IbeCiphertext ct = ibc::IbeCiphertext::from_bytes(*ctx_, blob);
      windows.push_back(MhiWindow::from_bytes(decryptor.decrypt(ct)));
    } catch (const std::exception&) {
      // skip undecryptable entries
    }
  }
  return windows;
}

std::vector<MhiWindow> Physician::retrieve_mhi(SServer& server,
                                               const std::string& role_id,
                                               const curve::Point& role_key,
                                               std::string_view keyword) {
  return try_retrieve_mhi(server, role_id, role_key, keyword).value_or({});
}

std::optional<MhiRetrieveResponse> SServer::handle_mhi_retrieve(
    const MhiRetrieveRequest& req) {
  obs::Span span("sserver:mhi_retrieve");
  // Server side of ρ: ê(PK_r, Γ_S).
  curve::Point role_pk = ibc::Domain::public_key(*ctx_, req.role_id);
  Bytes rho = nu_deriver_.with_point(role_pk);
  if (!protocol_mac_ok(rho, kRetrieveLabel, req.body(), req.t, req.mac)) {
    return std::nullopt;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  peks::Trapdoor td;
  try {
    td = peks::Trapdoor::from_bytes(*ctx_, req.trapdoor);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  MhiRetrieveResponse resp;
  // Only this role's bucket is scanned, and the whole bucket is tested as
  // one batch: the trapdoor's Miller lines are cached once, each tag costs a
  // precomputed Miller loop, and one pool-sharded final_exp_batch finishes
  // every (entry, tag) pair.
  auto bucket = mhi_store_.find(req.role_id);
  if (bucket != mhi_store_.end() && !bucket->second.empty()) {
    std::vector<peks::PeksCiphertext> flat;
    for (const MhiEntry& entry : bucket->second) {
      flat.insert(flat.end(), entry.tags.begin(), entry.tags.end());
    }
    peks::TrapdoorPrecomp pre(*ctx_, td);
    std::vector<uint8_t> match = pre.test_batch(flat, mhi_pool_);
    size_t k = 0;
    for (const MhiEntry& entry : bucket->second) {
      bool hit = false;
      for (size_t i = 0; i < entry.tags.size(); ++i, ++k) {
        if (match[k]) hit = true;
      }
      if (hit) resp.ibe_blobs.push_back(entry.ibe_blob);
    }
  }
  resp.t = net_->clock().now();
  resp.mac = protocol_mac(rho, kRetrieveLabel, resp.body(), resp.t);
  return resp;
}

// ---- Streaming MHI (DESIGN.md §13) -----------------------------------------

Result<void> PDevice::try_stream_mhi(
    const AServer& authority, SServer& server, const std::string& role_id,
    const MhiWindow& window, std::span<const std::string> extra_keywords) {
  if (!bundle_.has_value()) {
    return permanent_error(ErrorCode::kPrecondition, 0,
                           "P-device holds no privilege bundle");
  }
  obs::Span span("protocol:mhi_stream");
  if (!mhi_ingestor_) {
    mhi_ingestor_.emplace(authority.pub(), role_id);
  } else if (mhi_ingestor_->role_id() != role_id) {
    mhi_ingestor_->roll_epoch(role_id);
  }
  MhiIngestor::EncodedWindow enc =
      mhi_ingestor_->encode(window, extra_keywords, rng_);
  MhiStoreRequest req;
  req.tp = bundle_->tp;
  req.role_id = role_id;
  req.peks_tags = std::move(enc.peks_tags);
  req.ibe_blob = std::move(enc.ibe_blob);
  req.t = net_->clock().now();
  req.mac = protocol_mac(bundle_->nu, kStoreLabel, req.body(), req.t);
  sim::CallOutcome<bool> out = net_->transport().request<bool>(
      id_, server.id(), req.wire_size(), req.mac, kStoreLabel,
      [&]() -> std::optional<bool> {
        return server.handle_mhi_store(req) ? std::optional<bool>(true)
                                            : std::nullopt;
      },
      [](const bool&) { return size_t{0}; });
  if (out.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, out.attempts,
                           "S-server refused the streamed MHI window");
  }
  if (out.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, out.attempts,
                           "streamed MHI window undelivered after retries");
  }
  return {};
}

bool PDevice::stream_mhi(const AServer& authority, SServer& server,
                         const std::string& role_id, const MhiWindow& window,
                         std::span<const std::string> extra_keywords) {
  return try_stream_mhi(authority, server, role_id, window, extra_keywords)
      .ok();
}

bool SServer::handle_mhi_register(const MhiRegisterRequest& req) {
  obs::Span span("sserver:mhi_register");
  // Server side of ρ — same role-based pairwise key as retrieval.
  curve::Point role_pk = ibc::Domain::public_key(*ctx_, req.role_id);
  Bytes rho = nu_deriver_.with_point(role_pk);
  if (!protocol_mac_ok(rho, kRegisterLabel, req.body(), req.t, req.mac)) {
    return false;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  peks::Trapdoor td;
  try {
    td = peks::Trapdoor::from_bytes(*ctx_, req.trapdoor);
  } catch (const std::exception&) {
    return false;
  }
  mhi_hub_.register_trapdoor(req.physician_id, req.role_id, td);
  return true;
}

std::optional<MhiHitsResponse> SServer::handle_mhi_hits(
    const MhiHitsRequest& req) {
  obs::Span span("sserver:mhi_hits");
  curve::Point role_pk = ibc::Domain::public_key(*ctx_, req.role_id);
  Bytes rho = nu_deriver_.with_point(role_pk);
  if (!protocol_mac_ok(rho, kHitsLabel, req.body(), req.t, req.mac)) {
    return std::nullopt;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return std::nullopt;
  }
  MhiHitsResponse resp;
  for (MhiHit& hit : mhi_hub_.drain_hits(req.physician_id, req.role_id)) {
    resp.ibe_blobs.push_back(std::move(hit.ibe_blob));
  }
  resp.t = net_->clock().now();
  resp.mac = protocol_mac(rho, kHitsLabel, resp.body(), resp.t);
  return resp;
}

Result<void> Physician::try_register_mhi(SServer& server,
                                         const std::string& role_id,
                                         const curve::Point& role_key,
                                         std::string_view keyword) {
  obs::Span span("protocol:mhi_register");
  Bytes rho = ibc::shared_key_with_id(*ctx_, role_key, server.service_id());
  MhiRegisterRequest req;
  req.physician_id = id_;
  req.role_id = role_id;
  req.trapdoor = peks::peks_trapdoor(*ctx_, role_key, keyword).to_bytes();
  req.t = net_->clock().now();
  req.mac = protocol_mac(rho, kRegisterLabel, req.body(), req.t);
  sim::CallOutcome<bool> out = net_->transport().request<bool>(
      id_, server.id(), req.wire_size(), req.mac, kRegisterLabel,
      [&]() -> std::optional<bool> {
        return server.handle_mhi_register(req) ? std::optional<bool>(true)
                                               : std::nullopt;
      },
      [](const bool&) { return size_t{0}; });
  if (out.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, out.attempts,
                           "MHI registration undelivered after retries");
  }
  if (out.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, out.attempts,
                           "S-server refused the MHI registration");
  }
  return {};
}

bool Physician::register_mhi(SServer& server, const std::string& role_id,
                             const curve::Point& role_key,
                             std::string_view keyword) {
  return try_register_mhi(server, role_id, role_key, keyword).ok();
}

Result<std::vector<MhiWindow>> Physician::try_fetch_mhi_hits(
    SServer& server, const std::string& role_id,
    const curve::Point& role_key) {
  obs::Span span("protocol:mhi_hits");
  Bytes rho = ibc::shared_key_with_id(*ctx_, role_key, server.service_id());
  MhiHitsRequest req;
  req.physician_id = id_;
  req.role_id = role_id;
  req.t = net_->clock().now();
  req.mac = protocol_mac(rho, kHitsLabel, req.body(), req.t);
  sim::CallOutcome<MhiHitsResponse> out =
      net_->transport().request<MhiHitsResponse>(
          id_, server.id(), req.wire_size(), req.mac, kHitsLabel,
          [&]() { return server.handle_mhi_hits(req); },
          [](const MhiHitsResponse& r) { return r.wire_size(); });
  if (out.status == sim::CallStatus::kExhausted) {
    return transient_error(ErrorCode::kTimeout, out.attempts,
                           "MHI hit drain undelivered after retries");
  }
  if (out.status == sim::CallStatus::kRejected) {
    return permanent_error(ErrorCode::kRejected, out.attempts,
                           "S-server refused the MHI hit drain");
  }
  const MhiHitsResponse& resp = *out.response;
  if (!protocol_mac_ok(rho, kHitsLabel, resp.body(), resp.t, resp.mac)) {
    return permanent_error(ErrorCode::kBadResponse, out.attempts,
                           "MHI hits response failed authentication");
  }
  std::vector<MhiWindow> windows;
  ibc::IbeDecryptor decryptor(*ctx_, role_key);
  for (const Bytes& blob : resp.ibe_blobs) {
    try {
      ibc::IbeCiphertext ct = ibc::IbeCiphertext::from_bytes(*ctx_, blob);
      windows.push_back(MhiWindow::from_bytes(decryptor.decrypt(ct)));
    } catch (const std::exception&) {
      // skip undecryptable entries
    }
  }
  return windows;
}

std::vector<MhiWindow> Physician::fetch_mhi_hits(SServer& server,
                                                 const std::string& role_id,
                                                 const curve::Point& role_key) {
  return try_fetch_mhi_hits(server, role_id, role_key).value_or({});
}

}  // namespace hcpp::core
