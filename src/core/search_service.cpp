#include "src/core/search_service.h"

#include <set>

#include "src/obs/trace.h"
#include "src/par/pool.h"
#include "src/sse/sse.h"

namespace hcpp::core {

void SearchService::publish(const SServer& server) {
  auto snap = std::make_shared<const SnapshotMap>(server.snapshot_accounts());
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const SearchService::SnapshotMap> SearchService::current()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

size_t SearchService::account_count() const { return current()->size(); }

SearchService::Result SearchService::answer(const SnapshotMap& snap,
                                            const Query& q) {
  Result res;
  auto it = snap.find(q.account);
  if (it == snap.end()) return res;
  const AccountSnapshot& acct = it->second;
  res.account_found = true;

  std::set<sse::FileId> matched;
  if (q.privileged) {
    // One θ_d key schedule for the whole query; invalid blobs (stale d,
    // corruption) contribute nothing. Serial here — the query already runs
    // on a pool worker and tasks must not nest (pool.h).
    std::vector<std::optional<sse::Trapdoor>> tds =
        sse::unwrap_trapdoors(acct.d, q.wrapped);
    for (const std::optional<sse::Trapdoor>& td : tds) {
      if (!td.has_value()) continue;
      for (sse::FileId id : sse::search(*acct.index, *td)) matched.insert(id);
    }
  } else {
    for (const sse::Trapdoor& td : q.trapdoors) {
      for (sse::FileId id : sse::search(*acct.index, td)) matched.insert(id);
    }
  }
  for (sse::FileId id : matched) {
    auto fit = acct.files->files.find(id);
    if (fit != acct.files->files.end()) {
      res.matches.push_back({id, fit->second});
    }
  }
  return res;
}

std::vector<SearchService::Result> SearchService::search_batch(
    std::span<const Query> queries) const {
  obs::Span span("sserver:search_batch");
  // One acquire for the whole batch: every worker reads the same immutable
  // snapshot, so a concurrent publish() cannot tear a batch.
  std::shared_ptr<const SnapshotMap> snap = current();
  std::vector<Result> out(queries.size());
  if (pool_ == nullptr || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = answer(*snap, queries[i]);
    }
    return out;
  }
  pool_->parallel_for(queries.size(),
                      [&](size_t i) { out[i] = answer(*snap, queries[i]); });
  return out;
}

SearchService::Result SearchService::search(const Query& query) const {
  return answer(*current(), query);
}

}  // namespace hcpp::core
