#include "src/core/search_service.h"

#include <set>
#include <stdexcept>

#include "src/core/cluster.h"
#include "src/core/coalesce.h"
#include "src/obs/trace.h"
#include "src/par/pool.h"
#include "src/sse/sse.h"
#include "src/store/shard.h"

namespace hcpp::core {

SearchService::SearchService(par::ThreadPool* pool, size_t shards)
    : pool_(pool) {
  if (shards == 0) {
    throw std::invalid_argument("SearchService: need at least one shard");
  }
  snapshots_.resize(shards);
  for (auto& snap : snapshots_) snap = std::make_shared<const SnapshotMap>();
}

void SearchService::publish(const SServer& server) {
  if (snapshots_.size() != 1) {
    throw std::logic_error(
        "SearchService: whole-service publish on a sharded service; use "
        "publish_shard or publish(SServerGroup&)");
  }
  publish_shard(0, server);
}

void SearchService::publish_shard(size_t shard, const SServer& server) {
  auto snap = std::make_shared<const SnapshotMap>(server.snapshot_accounts());
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.at(shard) = std::move(snap);
}

void SearchService::publish(SServerGroup& group) {
  if (group.size() != snapshots_.size()) {
    throw std::invalid_argument(
        "SearchService: group size does not match shard count");
  }
  for (size_t i = 0; i < group.size(); ++i) {
    publish_shard(i, group.replica(i));
  }
}

std::shared_ptr<const SearchService::SnapshotMap> SearchService::current(
    size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.at(shard);
}

SearchService::ShardViews SearchService::current_all() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_;
}

const SearchService::SnapshotMap& SearchService::view_for(
    const ShardViews& views, const std::string& account_key) {
  return *views[store::shard_for_key(account_key, views.size())];
}

size_t SearchService::account_count() const {
  ShardViews views = current_all();
  size_t n = 0;
  for (const auto& snap : views) n += snap->size();
  return n;
}

SearchService::Result SearchService::answer(const SnapshotMap& snap,
                                            const Query& q) {
  Result res;
  auto it = snap.find(q.account);
  if (it == snap.end()) return res;
  const AccountSnapshot& acct = it->second;
  res.account_found = true;

  // Snapshots published before the dynamic layer carry no log pointer.
  static const sse::UpdateLog kEmptyLog;
  const sse::UpdateLog& log = acct.log ? *acct.log : kEmptyLog;
  std::set<sse::FileId> matched;
  if (q.privileged) {
    // One θ_d key schedule per trapdoor width for the whole query; invalid
    // blobs (stale d, corruption) contribute nothing. Serial here — the
    // query already runs on a pool worker and tasks must not nest (pool.h).
    for (sse::FileId id :
         sse::search_wrapped_mixed(*acct.index, log, acct.d, q.wrapped)) {
      matched.insert(id);
    }
  } else {
    for (const sse::Trapdoor& td : q.trapdoors) {
      for (sse::FileId id : sse::search(*acct.index, td)) matched.insert(id);
    }
    for (sse::FileId id :
         sse::search_mixed(*acct.index, log, q.trapdoor_blobs)) {
      matched.insert(id);
    }
  }
  for (sse::FileId id : matched) {
    auto fit = acct.files->files.find(id);
    if (fit != acct.files->files.end()) {
      res.matches.push_back({id, fit->second});
    }
  }
  return res;
}

std::vector<SearchService::Result> SearchService::search_batch(
    std::span<const Query> queries) const {
  obs::Span span("sserver:search_batch");
  // One acquire of every shard pointer for the whole batch: every worker
  // reads the same immutable snapshots, so a concurrent publish (on any
  // shard) cannot tear a batch.
  ShardViews views = current_all();
  std::vector<Result> out(queries.size());
  auto answer_one = [&](size_t i) {
    out[i] = answer(view_for(views, queries[i].account), queries[i]);
  };
  if (pool_ == nullptr || queries.size() <= 1) {
    for (size_t i = 0; i < queries.size(); ++i) answer_one(i);
    return out;
  }
  pool_->parallel_for(queries.size(), answer_one);
  return out;
}

SearchService::Result SearchService::search(const Query& query) const {
  ShardViews views = current_all();
  return answer(view_for(views, query.account), query);
}

std::vector<std::optional<RetrieveResponse>>
SearchService::search_batch_privileged(
    const SServer& server,
    std::span<const PrivilegedRetrieveRequest> reqs) const {
  obs::Span span("sserver:search_batch_privileged");
  std::vector<std::optional<RetrieveResponse>> out(reqs.size());
  if (reqs.empty()) return out;
  ShardViews views = current_all();
  const curve::CurveCtx& ctx = *server.nu_deriver().ctx();
  sim::Network& net = server.net();

  // Stage 1: one coalescer drain derives every ν of the batch — requests
  // presenting the same pseudonym share a single pairing. The subgroup
  // guard mirrors SServer::shared_key_for.
  PairingCoalescer co(ctx);
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<size_t> ticket(reqs.size(), kNone);
  for (size_t i = 0; i < reqs.size(); ++i) {
    try {
      curve::Point tp = curve::point_from_bytes(ctx, reqs[i].tp);
      if (!curve::in_prime_subgroup(ctx, tp)) continue;
      ticket[i] = co.add_shared_key(server.nu_deriver(), tp);
    } catch (const std::exception&) {
      // malformed pseudonym point: rejected below
    }
  }
  PairingCoalescer::Drained drained = co.drain(pool_);

  // Stage 2: MAC and freshness in arrival order — the replay cache mutates,
  // so a duplicate inside the batch is rejected exactly as if it had
  // arrived one request later.
  std::vector<uint8_t> accepted(reqs.size(), 0);
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (ticket[i] == kNone) continue;
    const PrivilegedRetrieveRequest& req = reqs[i];
    const Bytes& nu = drained.shared_keys[ticket[i]];
    if (!protocol_mac_ok(nu, kPrivilegedRetrieveLabel, req.body(), req.t,
                         req.mac)) {
      continue;
    }
    if (!net.accept_fresh(server.id(), req.mac, req.t, kFreshnessWindowNs)) {
      continue;
    }
    accepted[i] = 1;
  }

  // Stage 3: answer the accepted queries from the snapshot, parallel over
  // requests — const snapshot state only, like search_batch.
  const uint64_t now = net.clock().now();
  auto answer_one = [&](size_t i) {
    if (!accepted[i]) return;
    const PrivilegedRetrieveRequest& req = reqs[i];
    std::string key = SServer::account_key(req.tp, req.collection);
    const SnapshotMap& snap = view_for(views, key);
    auto it = snap.find(key);
    if (it == snap.end()) return;
    const AccountSnapshot& acct = it->second;
    static const sse::UpdateLog kEmptyLog;
    const sse::UpdateLog& log = acct.log ? *acct.log : kEmptyLog;
    RetrieveResponse resp;
    for (sse::FileId id : sse::search_wrapped_mixed(
             *acct.index, log, acct.d, req.wrapped_trapdoors)) {
      auto fit = acct.files->files.find(id);
      if (fit != acct.files->files.end()) {
        resp.files.emplace_back(id, fit->second);
      }
    }
    resp.t = now;
    resp.mac = protocol_mac(drained.shared_keys[ticket[i]],
                            kPrivilegedRetrieveLabel, resp.body(), resp.t);
    out[i] = std::move(resp);
  };
  if (pool_ == nullptr || reqs.size() <= 1) {
    for (size_t i = 0; i < reqs.size(); ++i) answer_one(i);
  } else {
    pool_->parallel_for(reqs.size(), answer_one);
  }
  return out;
}

}  // namespace hcpp::core
