// §IV.C ASSIGN (local, sealed under the pre-shared μ) and REVOKE (one
// authenticated message re-keying d and replacing BE_U(d) at the S-server).
// REVOKE rides the retrying transport; against a replicated hospital one
// re-keying is fanned out to every replica so no office keeps honoring the
// revoked member's trapdoors.
#include "src/core/privilege.h"

#include "src/cipher/aead.h"
#include "src/common/serialize.h"
#include "src/core/cluster.h"
#include "src/obs/trace.h"
#include "src/sim/transport.h"

namespace hcpp::core {

namespace {
constexpr const char* kAssignLabel = "privilege-assign";
constexpr const char* kRevokeLabel = "privilege-revoke";

/// One transport-routed REVOKE to one server. Like storage, the historical
/// accounting charges one message (the ack is free), so response_size is 0.
Result<void> send_revoke(sim::Network& net, const std::string& from,
                         SServer& server, const RevokeRequest& req) {
  sim::CallOutcome<bool> out = net.transport().request<bool>(
      from, server.id(), req.wire_size(), req.mac, kRevokeLabel,
      [&]() -> std::optional<bool> {
        return server.handle_revoke(req) ? std::optional<bool>(true)
                                         : std::nullopt;
      },
      [](const bool&) { return size_t{0}; });
  switch (out.status) {
    case sim::CallStatus::kOk:
      return {};
    case sim::CallStatus::kRejected:
      return permanent_error(ErrorCode::kRejected, out.attempts,
                             "S-server refused the revocation");
    case sim::CallStatus::kExhausted:
    default:
      return transient_error(ErrorCode::kTimeout, out.attempts,
                             "REVOKE undelivered after retries");
  }
}
}  // namespace

bool assign_privilege(Patient& patient, Family& family, BytesView mu) {
  Bytes sealed = patient.make_sealed_bundle(kFamilySlot, mu,
                                            /*include_gamma=*/false);
  // Local patient-LAN link; charged so E3 reports the full ASSIGN cost.
  patient.net().transmit(patient.name(), family.name(), sealed.size(),
                         kAssignLabel);
  return family.receive_bundle(sealed, mu);
}

bool assign_privilege(Patient& patient, PDevice& device, BytesView mu) {
  Bytes sealed = patient.make_sealed_bundle(kPDeviceSlot, mu,
                                            /*include_gamma=*/true);
  patient.net().transmit(patient.name(), device.id(), sealed.size(),
                         kAssignLabel);
  return device.receive_bundle(sealed, mu);
}

Result<void> Patient::try_revoke_member(SServer& server, size_t slot) {
  if (be_group_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:revoke");
  be_group_->revoke(slot);
  Bytes d_new = rng_.bytes(32);
  Bytes be_new = be_group_->encrypt(d_new, rng_);
  keys_.d = d_new;

  io::Writer inner;
  inner.bytes(d_new);
  inner.bytes(be_new);
  Bytes nu = shared_key_nu();
  RevokeRequest req;
  req.tp = tp_bytes();
  req.collection = collection_;
  req.sealed = cipher::aead_encrypt(nu, inner.data(), {}, rng_);
  req.t = net_->clock().now();
  req.mac = protocol_mac(nu, kRevokeLabel, req.body(), req.t);
  return send_revoke(*net_, name_, server, req);
}

bool Patient::revoke_member(SServer& server, size_t slot) {
  return try_revoke_member(server, slot).ok();
}

Result<size_t> Patient::revoke_member(SServerGroup& group, size_t slot) {
  if (be_group_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:revoke_replicated");
  // Re-key once; mirror the same sealed update to every replica. Replicas a
  // retry couldn't reach stay on the old d until the next sync_replicas().
  be_group_->revoke(slot);
  Bytes d_new = rng_.bytes(32);
  Bytes be_new = be_group_->encrypt(d_new, rng_);
  keys_.d = d_new;

  io::Writer inner;
  inner.bytes(d_new);
  inner.bytes(be_new);
  Bytes nu = shared_key_nu();
  RevokeRequest req;
  req.tp = tp_bytes();
  req.collection = collection_;
  req.sealed = cipher::aead_encrypt(nu, inner.data(), {}, rng_);
  req.t = net_->clock().now();
  req.mac = protocol_mac(nu, kRevokeLabel, req.body(), req.t);

  if (group.sharded()) {
    // The owning shard is the only holder of this account's d / BE_U(d).
    Result<void> r = send_revoke(*net_, name_, group.shard_for(req.tp), req);
    if (r.ok()) return size_t{1};
    return r.error();
  }
  size_t applied = 0;
  bool any_rejected = false;
  uint32_t attempts = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    Result<void> r = send_revoke(*net_, name_, group.replica(i), req);
    if (r.ok()) {
      ++applied;
      obs::count(obs::kSGroupMirrorWrites);
    } else {
      attempts += r.error().attempts;
      any_rejected |= !r.error().transient();
    }
  }
  if (applied > 0) return applied;
  if (any_rejected) {
    return permanent_error(ErrorCode::kRejected, attempts,
                           "every replica refused the revocation");
  }
  return transient_error(ErrorCode::kUnreachable, attempts,
                         "no storage replica reachable for REVOKE");
}

bool SServer::handle_revoke(const RevokeRequest& req) {
  obs::Span span("sserver:revoke");
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return false;
  }
  if (!protocol_mac_ok(nu, kRevokeLabel, req.body(), req.t, req.mac)) {
    return false;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return false;
  try {
    Bytes inner = cipher::aead_decrypt(nu, req.sealed, {});
    io::Reader r(inner);
    acct->d = r.bytes();
    acct->be_blob = r.bytes();
  } catch (const std::exception&) {
    return false;
  }
  // REVOKE touches only d / BE_U(d) — one base-record rewrite, no file or
  // log records.
  store_put_base(account_key(req.tp, req.collection), *acct);
  return true;
}

}  // namespace hcpp::core
