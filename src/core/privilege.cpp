// §IV.C ASSIGN (local, sealed under the pre-shared μ) and REVOKE (one
// authenticated message re-keying d and replacing BE_U(d) at the S-server).
#include "src/core/privilege.h"

#include "src/cipher/aead.h"
#include "src/common/serialize.h"

namespace hcpp::core {

namespace {
constexpr const char* kAssignLabel = "privilege-assign";
constexpr const char* kRevokeLabel = "privilege-revoke";
}  // namespace

bool assign_privilege(Patient& patient, Family& family, BytesView mu) {
  Bytes sealed = patient.make_sealed_bundle(kFamilySlot, mu,
                                            /*include_gamma=*/false);
  // Local patient-LAN link; charged so E3 reports the full ASSIGN cost.
  patient.net().transmit(patient.name(), family.name(), sealed.size(),
                         kAssignLabel);
  return family.receive_bundle(sealed, mu);
}

bool assign_privilege(Patient& patient, PDevice& device, BytesView mu) {
  Bytes sealed = patient.make_sealed_bundle(kPDeviceSlot, mu,
                                            /*include_gamma=*/true);
  patient.net().transmit(patient.name(), device.id(), sealed.size(),
                         kAssignLabel);
  return device.receive_bundle(sealed, mu);
}

bool Patient::revoke_member(SServer& server, size_t slot) {
  if (be_group_ == nullptr) throw std::logic_error("Patient: setup() first");
  be_group_->revoke(slot);
  Bytes d_new = rng_.bytes(32);
  Bytes be_new = be_group_->encrypt(d_new, rng_);
  keys_.d = d_new;

  io::Writer inner;
  inner.bytes(d_new);
  inner.bytes(be_new);
  Bytes nu = shared_key_nu();
  RevokeRequest req;
  req.tp = tp_bytes();
  req.collection = collection_;
  req.sealed = cipher::aead_encrypt(nu, inner.data(), {}, rng_);
  req.t = net_->clock().now();
  req.mac = protocol_mac(nu, kRevokeLabel, req.body(), req.t);
  net_->transmit(name_, sserver_id_, req.wire_size(), kRevokeLabel);
  return server.handle_revoke(req);
}

bool SServer::handle_revoke(const RevokeRequest& req) {
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return false;
  }
  if (!protocol_mac_ok(nu, kRevokeLabel, req.body(), req.t, req.mac)) {
    return false;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return false;
  try {
    Bytes inner = cipher::aead_decrypt(nu, req.sealed, {});
    io::Reader r(inner);
    acct->d = r.bytes();
    acct->be_blob = r.bytes();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace hcpp::core
