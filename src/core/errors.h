// Typed error taxonomy for the client-side protocol flows. Every failure a
// caller can observe is either *transient* (the network or a server was
// unavailable — retrying, failing over, or waiting may succeed) or
// *permanent* (a server verified the request and refused, or the caller's
// own state makes success impossible). The distinction drives the automatic
// retry/failover machinery in sim::Transport and the replica groups: only
// transient errors are worth another attempt.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace hcpp::core {

enum class ErrorClass : uint8_t {
  kTransient,  // loss, timeout, outage — retry/failover may succeed
  kPermanent,  // authoritative rejection — retrying cannot help
};

enum class ErrorCode : uint8_t {
  // Transient.
  kTimeout,      // per-attempt delivery timed out and retries were exhausted
  kUnreachable,  // no replica of the service answered
  // Permanent.
  kRejected,      // server authenticated the request and refused it
  kRevoked,       // caller's privilege was revoked (not in the BE cover)
  kNotFound,      // no such account / collection on an answering server
  kBadResponse,   // a delivered response failed authentication
  kPrecondition,  // caller-side state missing (no bundle, no session, …)
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kUnreachable: return "unreachable";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kRevoked: return "revoked";
    case ErrorCode::kNotFound: return "not-found";
    case ErrorCode::kBadResponse: return "bad-response";
    case ErrorCode::kPrecondition: return "precondition";
  }
  return "unknown";
}

struct ProtocolError {
  ErrorClass cls = ErrorClass::kPermanent;
  ErrorCode code = ErrorCode::kRejected;
  /// Transport attempts consumed before the error was raised (0 when the
  /// flow failed before reaching the transport).
  uint32_t attempts = 0;
  std::string detail;

  [[nodiscard]] bool transient() const noexcept {
    return cls == ErrorClass::kTransient;
  }
};

[[nodiscard]] inline ProtocolError transient_error(ErrorCode code,
                                                   uint32_t attempts = 0,
                                                   std::string detail = {}) {
  return {ErrorClass::kTransient, code, attempts, std::move(detail)};
}

[[nodiscard]] inline ProtocolError permanent_error(ErrorCode code,
                                                   uint32_t attempts = 0,
                                                   std::string detail = {}) {
  return {ErrorClass::kPermanent, code, attempts, std::move(detail)};
}

/// Minimal expected-style carrier: a value or a ProtocolError. Accessing the
/// wrong alternative throws std::logic_error — these are programming errors,
/// not protocol outcomes.
template <typename T>
class Result {
 public:
  Result(T value) : val_(std::move(value)) {}  // NOLINT: implicit by design
  Result(ProtocolError e) : err_(std::move(e)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return val_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] T& value() {
    if (!val_.has_value()) throw std::logic_error("Result: no value");
    return *val_;
  }
  [[nodiscard]] const T& value() const {
    if (!val_.has_value()) throw std::logic_error("Result: no value");
    return *val_;
  }
  [[nodiscard]] T value_or(T fallback) const {
    return val_.has_value() ? *val_ : std::move(fallback);
  }
  [[nodiscard]] const ProtocolError& error() const {
    if (!err_.has_value()) throw std::logic_error("Result: no error");
    return *err_;
  }

 private:
  std::optional<T> val_;
  std::optional<ProtocolError> err_;
};

template <>
class Result<void> {
 public:
  Result() = default;  // success
  Result(ProtocolError e) : err_(std::move(e)) {}  // NOLINT

  [[nodiscard]] bool ok() const noexcept { return !err_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }
  [[nodiscard]] const ProtocolError& error() const {
    if (!err_.has_value()) throw std::logic_error("Result: no error");
    return *err_;
  }

 private:
  std::optional<ProtocolError> err_;
};

}  // namespace hcpp::core
