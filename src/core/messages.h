// Wire messages for every HCPP protocol (§IV.B–E). Each request/response is
// HMAC-authenticated under the appropriate pairwise key (the paper's ν, ϖ, ρ)
// and carries a timestamp for the freshness/replay guard of [26]. Handlers
// receive the structs in-process; the canonical to_bytes() encoding is what
// the MAC covers and what the network simulator charges.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/serialize.h"
#include "src/ibc/ibe.h"
#include "src/ibc/ibs.h"
#include "src/sse/sse.h"

namespace hcpp::core {

/// Freshness window for all protocol timestamps.
inline constexpr uint64_t kFreshnessWindowNs = 120'000'000'000ull;  // 2 min

/// MAC label of the §IV.E.1 privileged retrieval (messages 3–4) — shared by
/// the live handler (emergency.cpp) and the batched SEARCH front-end
/// (SearchService::search_batch_privileged), which must authenticate the
/// same wire messages.
inline constexpr const char* kPrivilegedRetrieveLabel =
    "emergency-privileged-retrieval";

/// MAC = HMAC_key(label ‖ body ‖ timestamp).
Bytes protocol_mac(BytesView key, std::string_view label, BytesView body,
                   uint64_t timestamp_ns);
bool protocol_mac_ok(BytesView key, std::string_view label, BytesView body,
                     uint64_t timestamp_ns, BytesView mac);

// ---- §IV.B private PHI storage: patient → S-server, one message ----------
struct StoreRequest {
  Bytes tp;                // TPp (serialized point)
  std::string collection;  // collection label (one patient may keep several)
  Bytes index;             // serialized sse::SecureIndex
  Bytes files;             // serialized sse::EncryptedCollection
  Bytes d;                 // current privilege key (server-held, §IV.C)
  Bytes be_blob;           // BE_U(d)
  uint64_t t = 0;          // t1
  Bytes mac;               // HMAC_ν

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
  /// Full encoding (body + timestamp + MAC) for transports that carry raw
  /// bytes — the onion overlay of §VI.B.
  [[nodiscard]] Bytes to_wire() const;
  static StoreRequest from_wire(BytesView b);
};

// ---- §IV.D common-case retrieval ------------------------------------------
struct RetrieveRequest {
  Bytes tp;
  std::string collection;
  std::vector<Bytes> trapdoors;  // TD(kw), possibly several keywords
  uint64_t t = 0;                // t4
  Bytes mac;

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
  [[nodiscard]] Bytes to_wire() const;
  static RetrieveRequest from_wire(BytesView b);
};

struct RetrieveResponse {
  std::vector<std::pair<sse::FileId, Bytes>> files;  // Λ(kw)
  uint64_t t = 0;                                    // t5
  Bytes mac;

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
  [[nodiscard]] Bytes to_wire() const;
  static RetrieveResponse from_wire(BytesView b);
};

// ---- §IV.E.1 family-based emergency retrieval -----------------------------
struct BeBlobRequest {
  Bytes tp;
  std::string collection;
  uint64_t t = 0;  // t6
  Bytes mac;

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

struct BeBlobResponse {
  Bytes be_blob;  // BE_{U'}(d)
  uint64_t t = 0;  // t7
  Bytes mac;

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

struct PrivilegedRetrieveRequest {
  Bytes tp;
  std::string collection;
  std::vector<Bytes> wrapped_trapdoors;  // TD_U(kw) = θ_d(TD(kw))
  uint64_t t = 0;                        // t8
  Bytes mac;

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

// ---- Dynamic PHI update (DESIGN.md §12) -----------------------------------
/// O(delta) ADD/DELETE: forward-private update-log inserts plus the touched
/// file blobs — the whole-account re-upload of StoreRequest becomes an
/// append proportional to the change.
struct UpdateRequest {
  Bytes tp;
  std::string collection;
  /// (label, entry) pairs for the server's update log (sse::LogInsert).
  std::vector<std::pair<std::string, Bytes>> log_inserts;
  /// Freshly encrypted blobs for added files (per-file AEAD, not the whole
  /// collection).
  std::vector<std::pair<sse::FileId, Bytes>> files_upsert;
  /// File ids whose blobs the server should drop (DELETE tombstones make
  /// them unreachable via SEARCH; dropping the blob reclaims the bytes).
  std::vector<sse::FileId> files_remove;
  uint64_t t = 0;
  Bytes mac;  // HMAC_ν

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

/// COMPACT: replace the packed index with one rebuilt (fresh randomness)
/// from the owner's live file set and clear the update log. Counters reset
/// owner-side (epoch bump), so post-compaction trapdoors are purely static
/// until the next update.
struct CompactRequest {
  Bytes tp;
  std::string collection;
  Bytes index;  // serialized sse::SecureIndex
  uint64_t t = 0;
  Bytes mac;  // HMAC_ν

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

// ---- §IV.C REVOKE ----------------------------------------------------------
struct RevokeRequest {
  Bytes tp;
  std::string collection;
  Bytes sealed;    // E'_ν(d' ‖ BE'_{U'}(d'))
  uint64_t t = 0;  // t3
  Bytes mac;

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

// ---- §IV.E.2 emergency authentication (physician ↔ A-server ↔ P-device) ---
struct EmergencyAuthRequest {
  std::string physician_id;
  Bytes tp;        // the patient pseudonym read off the P-device
  uint64_t t = 0;  // t10
  Bytes sig;       // IBS_Γi(id ‖ m' ‖ tp ‖ t10)

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

struct PasscodeToPhysician {
  Bytes enc_nonce;  // E'_ϖ(nonce)
  uint64_t t = 0;   // t11
  Bytes sig;        // IBS_ΓA(id ‖ tp ‖ enc ‖ t11)

  [[nodiscard]] Bytes body(std::string_view physician_id, BytesView tp) const;
  [[nodiscard]] size_t wire_size() const;
};

struct PasscodeToPDevice {
  std::string physician_id;
  Bytes ibe_blob;  // IBE_TPp(id ‖ nonce ‖ t11)
  uint64_t t = 0;  // t11
  Bytes sig;       // IBS_ΓA(id ‖ tp ‖ blob ‖ t11)
  /// Compact signed statement IBS_ΓA(rd_statement(id, tp, t11)) that the
  /// P-device stores inside its RD record, so the patient can later prove
  /// the transaction to third parties without keeping the bulky IBE blob.
  Bytes audit_sig;

  [[nodiscard]] Bytes body(BytesView tp) const;
  [[nodiscard]] size_t wire_size() const;
};

/// The statement the A-server's audit_sig covers.
Bytes rd_statement(std::string_view physician_id, BytesView tp, uint64_t t11);

// ---- §IV.E.2 MHI -----------------------------------------------------------
struct MhiStoreRequest {
  Bytes tp;
  std::string role_id;           // IDr = Date ‖ Duty ‖ ServiceArea
  std::vector<Bytes> peks_tags;  // PEKS_σ(IDr, kw), one per keyword
  Bytes ibe_blob;                // IBE_IDr(MHI window)
  uint64_t t = 0;                // t12
  Bytes mac;                     // HMAC_ν

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

struct RoleKeyRequest {
  std::string physician_id;
  std::string role_id;
  uint64_t t = 0;
  Bytes sig;  // IBS_Γi

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

struct MhiRetrieveRequest {
  std::string physician_id;
  std::string role_id;
  Bytes trapdoor;  // TDr(kw)
  uint64_t t = 0;  // t13
  Bytes mac;       // HMAC_ρ

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

struct MhiRetrieveResponse {
  std::vector<Bytes> ibe_blobs;  // matching IBE_IDr(MHI)
  uint64_t t = 0;                // t14
  Bytes mac;

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

/// Standing-query registration (DESIGN.md §13): the on-duty physician parks
/// TDr(kw) on the S-server, which then tests it against every MHI window as
/// it lands instead of waiting for a retrieval poll.
struct MhiRegisterRequest {
  std::string physician_id;
  std::string role_id;
  Bytes trapdoor;  // TDr(kw)
  uint64_t t = 0;
  Bytes mac;  // HMAC_ρ

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

/// Drains the hits a standing registration has queued for this physician.
struct MhiHitsRequest {
  std::string physician_id;
  std::string role_id;
  uint64_t t = 0;
  Bytes mac;  // HMAC_ρ

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

struct MhiHitsResponse {
  std::vector<Bytes> ibe_blobs;  // matched IBE_IDr(window)s, oldest first
  uint64_t t = 0;
  Bytes mac;

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] size_t wire_size() const;
};

// ---- Accountability artifacts (§IV.E.2, §V.A) ------------------------------
/// TR, kept by the A-server: proof the physician requested emergency access.
struct TraceRecord {
  std::string physician_id;
  Bytes tp;
  uint64_t t10 = 0;
  uint64_t t11 = 0;
  Bytes physician_sig;  // the IBS from the request

  [[nodiscard]] Bytes body() const;
};

/// RD, kept by the P-device: proof of which physician searched what.
struct RdRecord {
  std::string physician_id;
  Bytes tp;
  std::vector<std::string> keywords;
  uint64_t t11 = 0;
  Bytes aserver_sig;  // the IBS from the passcode delivery

  [[nodiscard]] Bytes body() const;
  [[nodiscard]] Bytes to_bytes() const;
  static RdRecord from_bytes(BytesView b);
};

}  // namespace hcpp::core
