#include "src/core/cluster.h"

#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/store/shard.h"

namespace hcpp::core {

AServerCluster::AServerCluster(sim::Network& net, const curve::CurveCtx& ctx,
                               const std::string& base_id, size_t replicas,
                               RandomSource& seed)
    : net_(&net) {
  if (replicas == 0) {
    throw std::invalid_argument("AServerCluster: need at least one office");
  }
  // Office 0 mints the domain; the rest join it.
  replicas_.push_back(
      std::make_unique<AServer>(net, ctx, base_id + "-0", seed));
  for (size_t i = 1; i < replicas; ++i) {
    replicas_.push_back(std::make_unique<AServer>(
        net, replicas_[0]->domain(), base_id + "-" + std::to_string(i),
        seed));
  }
  anchors_ = std::make_unique<ledger::AnchorChain>(
      replicas_[0]->domain(), ledger::default_anchor_authorities());
  up_.assign(replicas, true);
}

void AServerCluster::set_up(size_t i, bool up) {
  up_.at(i) = up;
  net_->set_node_up(replicas_[i]->id(), up);
}

void AServerCluster::set_on_duty(const std::string& physician_id,
                                 bool on_duty) {
  for (auto& replica : replicas_) replica->set_on_duty(physician_id, on_duty);
}

AServer* AServerCluster::first_available() {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (up_[i]) return replicas_[i].get();
  }
  return nullptr;
}

std::vector<TraceRecord> AServerCluster::all_traces() const {
  std::vector<TraceRecord> out;
  for (const auto& replica : replicas_) {
    out.insert(out.end(), replica->traces().begin(),
               replica->traces().end());
  }
  return out;
}

// ---- SServerGroup ----------------------------------------------------------

SServerGroup::SServerGroup(sim::Network& net, const AServer& authority,
                           const std::string& service_id, size_t replicas,
                           Placement placement)
    : net_(&net), service_id_(service_id), placement_(placement) {
  if (replicas == 0) {
    throw std::invalid_argument("SServerGroup: need at least one replica");
  }
  for (size_t i = 0; i < replicas; ++i) {
    replicas_.push_back(std::make_unique<SServer>(
        net, authority, service_id + "-" + std::to_string(i), service_id));
  }
  up_.assign(replicas, true);
}

size_t SServerGroup::shard_of(BytesView tp) const {
  if (!sharded()) return 0;
  return store::shard_for_pseudonym(tp, replicas_.size());
}

SServer& SServerGroup::shard_for(BytesView tp) {
  return *replicas_[shard_of(tp)];
}

bool SServerGroup::attach_stores(const std::string& dir_root) {
  bool ok = true;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    ok &= replicas_[i]->attach_store(dir_root + "/shard-" +
                                     std::to_string(i));
  }
  return ok;
}

void SServerGroup::set_up(size_t i, bool up) {
  up_.at(i) = up;
  net_->set_node_up(replicas_[i]->id(), up);
}

bool SServerGroup::sync_replicas() {
  if (sharded()) return false;  // disjoint shards: nothing to mirror
  SServer* source = nullptr;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (up_[i]) {
      source = replicas_[i].get();
      break;
    }
  }
  if (source == nullptr) return false;
  obs::count(obs::kSGroupSync);
  Bytes state = source->export_state();
  bool ok = true;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (!up_[i] || replicas_[i].get() == source) continue;
    ok &= replicas_[i]->import_state(state);
  }
  return ok;
}

}  // namespace hcpp::core
