#include "src/core/cluster.h"

#include <stdexcept>

namespace hcpp::core {

AServerCluster::AServerCluster(sim::Network& net, const curve::CurveCtx& ctx,
                               const std::string& base_id, size_t replicas,
                               RandomSource& seed) {
  if (replicas == 0) {
    throw std::invalid_argument("AServerCluster: need at least one office");
  }
  // Office 0 mints the domain; the rest join it.
  replicas_.push_back(
      std::make_unique<AServer>(net, ctx, base_id + "-0", seed));
  for (size_t i = 1; i < replicas; ++i) {
    replicas_.push_back(std::make_unique<AServer>(
        net, replicas_[0]->domain(), base_id + "-" + std::to_string(i),
        seed));
  }
  up_.assign(replicas, true);
}

void AServerCluster::set_up(size_t i, bool up) { up_.at(i) = up; }

void AServerCluster::set_on_duty(const std::string& physician_id,
                                 bool on_duty) {
  for (auto& replica : replicas_) replica->set_on_duty(physician_id, on_duty);
}

AServer* AServerCluster::first_available() {
  for (size_t i = 0; i < replicas_.size(); ++i) {
    if (up_[i]) return replicas_[i].get();
  }
  return nullptr;
}

std::vector<TraceRecord> AServerCluster::all_traces() const {
  std::vector<TraceRecord> out;
  for (const auto& replica : replicas_) {
    out.insert(out.end(), replica->traces().begin(),
               replica->traces().end());
  }
  return out;
}

}  // namespace hcpp::core
