// Dynamic PHI update protocol (DESIGN.md §12, ROADMAP item 1): amortized
// O(1) per-file ADD/DELETE instead of the §IV.B whole-account re-upload.
//
//   UPDATE : patient → S-server : TPp, {(label, entry)}, {(fid, blob)},
//            {fid}, t, HMAC_ν — forward-private log inserts (labels the
//            server has never seen and cannot predict) plus only the
//            touched file blobs. Server cost: O(delta) map inserts and
//            store appends; the packed index is untouched.
//   COMPACT: patient → S-server : TPp, SI', t, HMAC_ν — a freshly built
//            index (new randomness) replaces the packed index and the
//            update log is folded away; the owner restarts its counters
//            under a bumped epoch.
//
// Commit discipline: UPDATE commits patient state (files, KI, counters)
// unconditionally — the generated labels are deterministic in the counters,
// so a transport retry re-appends byte-identical records. COMPACT commits
// only on success; an applied-but-unacked compaction is still safe because
// a stale dynamic trapdoor's chain walk breaks on the first folded-away
// label and degrades to the rebuilt static index, which already contains
// every live file.
#include <algorithm>

#include "src/core/cluster.h"
#include "src/core/entities.h"
#include "src/obs/trace.h"
#include "src/sim/transport.h"

namespace hcpp::core {

namespace {
constexpr const char* kUpdateLabel = "phi-update";
constexpr const char* kCompactLabel = "phi-compact";

/// One transport-routed UPDATE to one server. Like storage, the historical
/// accounting charges one message (the ack is free), so response_size is 0.
Result<void> send_update(sim::Network& net, const std::string& from,
                         SServer& server, const UpdateRequest& req) {
  sim::CallOutcome<bool> out = net.transport().request<bool>(
      from, server.id(), req.wire_size(), req.mac, kUpdateLabel,
      [&]() -> std::optional<bool> {
        return server.handle_update(req) ? std::optional<bool>(true)
                                         : std::nullopt;
      },
      [](const bool&) { return size_t{0}; });
  switch (out.status) {
    case sim::CallStatus::kOk:
      return {};
    case sim::CallStatus::kRejected:
      return permanent_error(ErrorCode::kRejected, out.attempts,
                             "S-server refused the update");
    case sim::CallStatus::kExhausted:
    default:
      return transient_error(ErrorCode::kTimeout, out.attempts,
                             "PHI update undelivered after retries");
  }
}

Result<void> send_compact(sim::Network& net, const std::string& from,
                          SServer& server, const CompactRequest& req) {
  sim::CallOutcome<bool> out = net.transport().request<bool>(
      from, server.id(), req.wire_size(), req.mac, kCompactLabel,
      [&]() -> std::optional<bool> {
        return server.handle_compact(req) ? std::optional<bool>(true)
                                          : std::nullopt;
      },
      [](const bool&) { return size_t{0}; });
  switch (out.status) {
    case sim::CallStatus::kOk:
      return {};
    case sim::CallStatus::kRejected:
      return permanent_error(ErrorCode::kRejected, out.attempts,
                             "S-server refused the compaction");
    case sim::CallStatus::kExhausted:
    default:
      return transient_error(ErrorCode::kTimeout, out.attempts,
                             "compaction undelivered after retries");
  }
}
}  // namespace

// ---- Patient ----------------------------------------------------------------

UpdateRequest Patient::build_update_request(
    std::vector<sse::PlainFile> added, std::span<const sse::FileId> removed) {
  UpdateRequest req;
  req.tp = tp_bytes();
  req.collection = collection_;
  sse::Updater up(keys_, update_state_);

  // DELETEs first: a remove-then-readd of the same id inside one batch must
  // leave the ADD as the newest op on every touched chain.
  for (sse::FileId id : removed) {
    auto fit = std::find_if(files_.begin(), files_.end(),
                            [&](const sse::PlainFile& f) { return f.id == id; });
    if (fit == files_.end()) continue;  // unknown id: nothing to tombstone
    for (const std::string& kw : fit->keywords) {
      // Tombstone every alias the keyword was indexed under (§VI.B).
      for (size_t a = 0; a < alias_count_; ++a) {
        sse::LogInsert ins = up.del(keyword_alias(kw, a), id);
        req.log_inserts.emplace_back(std::move(ins.label),
                                     std::move(ins.entry));
      }
      auto eit = ki_.entries.find(kw);
      if (eit != ki_.entries.end()) {
        std::erase(eit->second, id);
        if (eit->second.empty()) ki_.entries.erase(eit);
      }
    }
    ki_.file_names.erase(id);
    req.files_remove.push_back(id);
    files_.erase(fit);
  }

  for (sse::PlainFile& f : added) {
    for (const std::string& kw : f.keywords) {
      for (size_t a = 0; a < alias_count_; ++a) {
        sse::LogInsert ins = up.add(keyword_alias(kw, a), f.id);
        req.log_inserts.emplace_back(std::move(ins.label),
                                     std::move(ins.entry));
      }
      std::vector<sse::FileId>& list = ki_.entries[kw];
      if (std::find(list.begin(), list.end(), f.id) == list.end()) {
        list.push_back(f.id);
      }
    }
    ki_.file_names[f.id] = f.name;
    // Per-file AEAD: only the touched blob is (re-)encrypted, never the
    // whole collection.
    req.files_upsert.emplace_back(f.id, sse::encrypt_file(keys_, f, rng_));
    auto fit = std::find_if(files_.begin(), files_.end(),
                            [&](const sse::PlainFile& g) { return g.id == f.id; });
    if (fit != files_.end()) {
      // Upsert: the body is replaced; keywords accumulate (stale keywords
      // of the old body are not tombstoned — remove-then-readd for that).
      *fit = std::move(f);
    } else {
      files_.push_back(std::move(f));
    }
  }

  update_state_ = up.state();
  return req;
}

Result<void> Patient::try_update_phi(SServer& server,
                                     std::vector<sse::PlainFile> added,
                                     std::span<const sse::FileId> removed) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:update");
  UpdateRequest req = build_update_request(std::move(added), removed);
  Bytes nu = shared_key_nu();
  req.t = net_->clock().now();
  req.mac = protocol_mac(nu, kUpdateLabel, req.body(), req.t);
  return send_update(*net_, name_, server, req);
}

bool Patient::update_phi(SServer& server, std::vector<sse::PlainFile> added,
                         std::span<const sse::FileId> removed) {
  return try_update_phi(server, std::move(added), removed).ok();
}

Result<size_t> Patient::try_update_phi(SServerGroup& group,
                                       std::vector<sse::PlainFile> added,
                                       std::span<const sse::FileId> removed) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:update_replicated");
  UpdateRequest req = build_update_request(std::move(added), removed);
  Bytes nu = shared_key_nu();
  req.t = net_->clock().now();
  req.mac = protocol_mac(nu, kUpdateLabel, req.body(), req.t);
  if (group.sharded()) {
    // The owning shard is the only holder of this account.
    Result<void> r = send_update(*net_, name_, group.shard_for(req.tp), req);
    if (r.ok()) return size_t{1};
    return r.error();
  }
  size_t applied = 0;
  bool any_rejected = false;
  uint32_t attempts = 0;
  for (size_t i = 0; i < group.size(); ++i) {
    Result<void> r = send_update(*net_, name_, group.replica(i), req);
    if (r.ok()) {
      ++applied;
      obs::count(obs::kSGroupMirrorWrites);
    } else {
      attempts += r.error().attempts;
      any_rejected |= !r.error().transient();
    }
  }
  if (applied > 0) return applied;
  if (any_rejected) {
    return permanent_error(ErrorCode::kRejected, attempts,
                           "every replica refused the update");
  }
  return transient_error(ErrorCode::kUnreachable, attempts,
                         "no storage replica reachable for UPDATE");
}

Result<void> Patient::try_compact_phi(SServer& server) {
  if (ctx_ == nullptr) throw std::logic_error("Patient: setup() first");
  obs::Span span("protocol:compact");
  // Fold: rebuild the packed index from the live file set with fresh
  // randomness (over the aliased keywords, like store_phi).
  std::vector<sse::PlainFile> aliased =
      apply_keyword_aliases(files_, alias_count_);
  CompactRequest req;
  req.tp = tp_bytes();
  req.collection = collection_;
  req.index = sse::build_index(aliased, keys_, rng_).to_bytes();
  Bytes nu = shared_key_nu();
  req.t = net_->clock().now();
  req.mac = protocol_mac(nu, kCompactLabel, req.body(), req.t);
  Result<void> r = send_compact(*net_, name_, server, req);
  // Counters restart under a bumped epoch only once the server confirmed
  // the fold — see the commit-discipline note at the top of this file.
  if (r.ok()) update_state_ = sse::UpdateState{update_state_.epoch + 1, {}};
  return r;
}

bool Patient::compact_phi(SServer& server) {
  return try_compact_phi(server).ok();
}

// ---- S-server handlers ------------------------------------------------------

bool SServer::handle_update(const UpdateRequest& req) {
  obs::Span span("sserver:update");
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return false;
  }
  if (!protocol_mac_ok(nu, kUpdateLabel, req.body(), req.t, req.mac)) {
    return false;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return false;

  // O(delta): map inserts plus one store append per record. The packed
  // index and the base store record are never touched.
  const std::string key = account_key(req.tp, req.collection);
  for (const auto& [label, entry] : req.log_inserts) {
    if (label.empty() || entry.size() != sse::kLogEntrySize) continue;
    acct->log.entries[label] = entry;
    store_put_log(key, label, entry);
  }
  for (const auto& [id, blob] : req.files_upsert) {
    acct->files.files[id] = blob;
    store_put_file(key, id, blob);
  }
  for (sse::FileId id : req.files_remove) {
    if (acct->files.files.erase(id) > 0) store_erase_file(key, id);
  }
  return true;
}

bool SServer::handle_compact(const CompactRequest& req) {
  obs::Span span("sserver:compact");
  Bytes nu;
  try {
    nu = shared_key_for(req.tp);
  } catch (const std::exception&) {
    return false;
  }
  if (!protocol_mac_ok(nu, kCompactLabel, req.body(), req.t, req.mac)) {
    return false;
  }
  if (!net_->accept_fresh(id_, req.mac, req.t, kFreshnessWindowNs)) {
    return false;
  }
  Account* acct = find_account(req.tp, req.collection);
  if (acct == nullptr) return false;

  std::shared_ptr<const sse::SecureIndex> index;
  try {
    index = std::make_shared<const sse::SecureIndex>(
        sse::SecureIndex::from_bytes(req.index));
  } catch (const std::exception&) {
    return false;
  }
  const std::string key = account_key(req.tp, req.collection);
  // The in-memory log names exactly the store records to fold away — no
  // store-wide key scan.
  if (store_.is_open()) {
    for (const auto& [label, entry] : acct->log.entries) {
      store_.erase(log_record_key(key, label));
    }
  }
  acct->log.entries.clear();
  acct->index = std::move(index);
  store_put_base(key, *acct);
  obs::count(obs::kSseCompactions);
  return true;
}

}  // namespace hcpp::core
