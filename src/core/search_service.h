// Concurrent SEARCH front-end over immutable account snapshots (§IV.D/E.1
// read path, DESIGN.md §9).
//
// The live SServer mutates its accounts under the single-threaded protocol
// simulation; this service takes the other side of that bargain: publish()
// copies every account into an immutable AccountSnapshot map, and
// search_batch() fans the queries across a thread pool with *no locks on the
// read path* — workers only ever touch const snapshot state reached through
// a shared_ptr acquired once per batch. A publish() racing a batch is safe:
// in-flight queries keep the old snapshot alive via that shared_ptr and
// simply answer against the pre-publish view (snapshot isolation, not
// linearizability — fine for a search front-end).
//
// Wrapped (θ_d) trapdoors are unwrapped per query with one key schedule via
// sse::unwrap_trapdoors; stale or corrupted blobs yield empty result slots,
// mirroring handle_privileged_retrieve's tolerance.
//
// Sharded mode (shards > 1) keeps one snapshot pointer per shard, routed by
// store::shard_for_key over the account key — publish_shard(i, server)
// re-snapshots only that shard's accounts, so a republish on one shard no
// longer copies the whole population's indexes. publish(SServerGroup&) maps
// replica i to shard i.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/entities.h"

namespace hcpp::par {
class ThreadPool;
}

namespace hcpp::core {

class SearchService {
 public:
  /// One search request against a published account. Exactly one of
  /// `trapdoors` / `wrapped` is consulted, selected by `privileged`.
  struct Query {
    std::string account;  // SServer::account_key(tp, collection)
    std::vector<sse::Trapdoor> trapdoors;  // owner path (§IV.D), static only
    /// Owner path, raw wire encodings: 60-byte static and 100-byte dynamic
    /// trapdoors in one batch (the dynamic ones walk the update log).
    std::vector<Bytes> trapdoor_blobs;
    std::vector<Bytes> wrapped;  // θ_d-wrapped path (§IV.E.1), either width
    bool privileged = false;
  };

  /// One matched file: id plus the encrypted blob, as the wire protocol
  /// returns them. Decryption stays client-side.
  struct Match {
    sse::FileId id = 0;
    Bytes blob;
  };

  struct Result {
    bool account_found = false;
    std::vector<Match> matches;  // sorted by file id, deduplicated
  };

  /// `pool == nullptr` answers every query inline on the caller's thread.
  /// `shards` fixes the snapshot partitioning for the service's lifetime
  /// (1 = the original single-snapshot behaviour).
  explicit SearchService(par::ThreadPool* pool = nullptr, size_t shards = 1);

  [[nodiscard]] size_t shard_count() const noexcept {
    return snapshots_.size();
  }

  /// Re-snapshots the server's accounts and atomically swaps them in.
  /// Requires shard_count() == 1; sharded services publish per shard.
  void publish(const SServer& server);

  /// Re-snapshots one shard from its owning server, leaving the other
  /// shards' snapshots untouched (and in-flight queries on any shard
  /// unaffected — same shared_ptr isolation as publish()).
  void publish_shard(size_t shard, const SServer& server);

  /// Publishes every replica of a sharded group to its shard index.
  /// Requires group.size() == shard_count().
  void publish(SServerGroup& group);

  /// Number of accounts across all current shard snapshots.
  [[nodiscard]] size_t account_count() const;

  /// Answers all queries, parallel over queries. result[i] corresponds to
  /// queries[i]; unknown accounts yield account_found == false, invalid
  /// wrapped trapdoors contribute no matches.
  [[nodiscard]] std::vector<Result> search_batch(
      std::span<const Query> queries) const;

  /// §IV.E.1 messages 3–4 answered as one authenticated batch on behalf of
  /// `server`: the ν = ê(Γ_S, TPp) derivations of the whole batch go through
  /// one PairingCoalescer drain (requests presenting the same pseudonym
  /// share a single pairing), then MAC/freshness checks run in arrival order
  /// against the live server's replay cache, and the accepted queries are
  /// answered from the current snapshot in parallel. result[i] is what
  /// server.handle_privileged_retrieve(reqs[i]) returns — nullopt on a bad
  /// pseudonym, MAC, stale timestamp, or unknown account — except that file
  /// data comes from the published snapshot (snapshot isolation, as above).
  [[nodiscard]] std::vector<std::optional<RetrieveResponse>>
  search_batch_privileged(const SServer& server,
                          std::span<const PrivilegedRetrieveRequest> reqs)
      const;

  /// Convenience single-query form.
  [[nodiscard]] Result search(const Query& query) const;

 private:
  using SnapshotMap = std::map<std::string, AccountSnapshot>;
  /// One shared_ptr per shard, acquired together so a batch sees a
  /// consistent (if possibly mid-republish) set of shard views.
  using ShardViews = std::vector<std::shared_ptr<const SnapshotMap>>;

  [[nodiscard]] std::shared_ptr<const SnapshotMap> current(
      size_t shard) const;
  [[nodiscard]] ShardViews current_all() const;
  /// The shard snapshot responsible for `account_key`.
  static const SnapshotMap& view_for(const ShardViews& views,
                                     const std::string& account_key);
  static Result answer(const SnapshotMap& snap, const Query& q);

  par::ThreadPool* pool_;
  mutable std::mutex mu_;  // guards snapshot swaps only, never the read path
  ShardViews snapshots_;   // size fixed at construction
};

}  // namespace hcpp::core
