#include "src/core/entities.h"

#include <fstream>
#include <iterator>
#include <stdexcept>

#include "src/cipher/aead.h"
#include "src/obs/trace.h"

namespace hcpp::core {

namespace {
Bytes seed_for(RandomSource& seed, std::string_view tag) {
  Bytes s = seed.bytes(32);
  append(s, to_bytes(tag));
  return s;
}
}  // namespace

// ---- AServer ---------------------------------------------------------------

AServer::AServer(sim::Network& net, const curve::CurveCtx& ctx, std::string id,
                 RandomSource& seed)
    : net_(&net),
      id_(std::move(id)),
      domain_(ctx, [&] {
        cipher::Drbg boot(seed_for(seed, "aserver-master"));
        return curve::random_scalar(ctx, boot);
      }()),
      trace_ledger_(id_ + "/tr"),
      rng_(seed_for(seed, "aserver-rng")) {
  self_key_ = domain_.extract(id_);
  key_deriver_ = ibc::SharedKeyDeriver(domain_.ctx(), self_key_);
}

AServer::AServer(sim::Network& net, const ibc::Domain& shared_domain,
                 std::string id, RandomSource& seed)
    : net_(&net),
      id_(std::move(id)),
      domain_(shared_domain),
      trace_ledger_(id_ + "/tr"),
      rng_(seed_for(seed, "aserver-replica-rng")) {
  self_key_ = domain_.extract(id_);
  key_deriver_ = ibc::SharedKeyDeriver(domain_.ctx(), self_key_);
}

curve::Point AServer::provision(std::string_view entity_id) const {
  return domain_.extract(entity_id);
}

ibc::Domain::Pseudonym AServer::issue_pseudonym() const {
  return domain_.issue_pseudonym(rng_);
}

void AServer::set_on_duty(const std::string& physician_id, bool on_duty) {
  on_duty_[physician_id] = on_duty;
}

bool AServer::is_on_duty(const std::string& physician_id) const {
  auto it = on_duty_.find(physician_id);
  return it != on_duty_.end() && it->second;
}

// ---- SServer ---------------------------------------------------------------

SServer::SServer(sim::Network& net, const AServer& authority, std::string id,
                 std::string service_id)
    : net_(&net),
      id_(std::move(id)),
      service_id_(service_id.empty() ? id_ : std::move(service_id)),
      ctx_(&authority.ctx()),
      self_key_(authority.provision(service_id_)),
      nu_deriver_(*ctx_, self_key_),
      mhi_hub_(*ctx_) {}

std::string SServer::account_key(BytesView tp, const std::string& collection) {
  return hex_encode(tp) + "/" + collection;
}

SServer::Account* SServer::find_account(BytesView tp,
                                        const std::string& collection) {
  auto it = accounts_.find(account_key(tp, collection));
  return it == accounts_.end() ? nullptr : &it->second;
}

std::map<std::string, AccountSnapshot> SServer::snapshot_accounts() const {
  std::map<std::string, AccountSnapshot> out;
  for (const auto& [key, acct] : accounts_) {
    AccountSnapshot snap;
    // The packed index is immutable between whole-index writes, so the
    // snapshot shares it; only the (small) mutable parts — file blobs and
    // the update log — are copied. A republish after an UPDATE is therefore
    // O(delta state), not O(index).
    snap.index = acct.index;
    snap.files = std::make_shared<const sse::EncryptedCollection>(acct.files);
    snap.log = std::make_shared<const sse::UpdateLog>(acct.log);
    snap.d = acct.d;
    out.emplace(key, std::move(snap));
  }
  return out;
}

Bytes SServer::shared_key_for(BytesView tp_bytes) const {
  obs::Span span("crypto:shared_key");
  curve::Point tp = curve::point_from_bytes(*ctx_, tp_bytes);
  // Reject on-curve points outside the order-q subgroup: pairing a private
  // key against a small-order point would leak it into a brute-forceable
  // subgroup of GT.
  if (!curve::in_prime_subgroup(*ctx_, tp)) {
    throw std::invalid_argument("SServer: pseudonym not in prime subgroup");
  }
  return nu_deriver_.with_point(tp);
}

std::vector<std::string> SServer::visible_account_ids() const {
  std::vector<std::string> out;
  out.reserve(accounts_.size());
  for (const auto& [key, acct] : accounts_) out.push_back(key);
  return out;
}

std::string SServer::file_record_key(const std::string& key, sse::FileId id) {
  Bytes fid(8);
  for (int i = 7; i >= 0; --i) {
    fid[static_cast<size_t>(i)] = static_cast<uint8_t>(id);
    id >>= 8;
  }
  return key + "#f/" + hex_encode(fid);
}

std::string SServer::log_record_key(const std::string& key,
                                    const std::string& label) {
  return key + "#l/" + label;
}

Bytes SServer::account_base_bytes(const Account& acct) {
  io::Writer w;
  w.bytes(acct.index->to_bytes());
  w.bytes(acct.d);
  w.bytes(acct.be_blob);
  return w.take();
}

void SServer::store_put_checked(const std::string& key, BytesView value) {
  if (!store_.put(key, Bytes(value.begin(), value.end()))) {
    throw std::runtime_error("SServer: account write-through failed");
  }
}

void SServer::store_put_base(const std::string& key, const Account& acct) {
  if (!store_.is_open()) return;
  store_put_checked(key, account_base_bytes(acct));
}

void SServer::store_put_file(const std::string& key, sse::FileId id,
                             BytesView blob) {
  if (!store_.is_open()) return;
  store_put_checked(file_record_key(key, id), blob);
}

void SServer::store_erase_file(const std::string& key, sse::FileId id) {
  if (!store_.is_open()) return;
  store_.erase(file_record_key(key, id));
}

void SServer::store_put_log(const std::string& key, const std::string& label,
                            BytesView entry) {
  if (!store_.is_open()) return;
  store_put_checked(log_record_key(key, label), entry);
}

void SServer::store_put_all(const std::string& key, const Account& acct) {
  if (!store_.is_open()) return;
  store_put_base(key, acct);
  for (const auto& [id, blob] : acct.files.files) {
    store_put_file(key, id, blob);
  }
  for (const auto& [label, entry] : acct.log.entries) {
    store_put_log(key, label, entry);
  }
}

void SServer::store_erase_all(const std::string& key, const Account& acct) {
  if (!store_.is_open()) return;
  // Sub-records first, base last: a crash mid-erase leaves at worst a
  // degraded-but-parseable base, never orphan sub-records.
  for (const auto& [id, blob] : acct.files.files) store_erase_file(key, id);
  for (const auto& [label, entry] : acct.log.entries) {
    store_.erase(log_record_key(key, label));
  }
  store_.erase(key);
}

void SServer::store_replace_all() {
  if (!store_.is_open()) return;
  // Expected record set under the base/#f//#l/ layout.
  std::set<std::string> want;
  for (const auto& [key, acct] : accounts_) {
    want.insert(key);
    for (const auto& [id, blob] : acct.files.files) {
      want.insert(file_record_key(key, id));
    }
    for (const auto& [label, entry] : acct.log.entries) {
      want.insert(log_record_key(key, label));
    }
  }
  for (const std::string& key : store_.keys()) {
    if (!want.contains(key)) store_.erase(key);
  }
  for (const auto& [key, acct] : accounts_) store_put_all(key, acct);
}

bool SServer::attach_store(const std::string& dir,
                           store::StoreRecoveryReport* report) {
  try {
    store_ = store::AccountStore::open(dir, {}, report);
  } catch (const std::exception&) {
    return false;
  }
  // Hydration: classify the surviving records into base / file / log piles
  // (for_each order is not guaranteed), then assemble accounts base-first.
  // The durable copy wins for keys both sides know; accounts only the live
  // map has (e.g. a deployment populated before attaching) are written
  // through so the two ends match from here on.
  std::map<std::string, Bytes> bases;
  std::map<std::string, std::vector<std::pair<sse::FileId, Bytes>>> files;
  std::map<std::string, std::vector<std::pair<std::string, Bytes>>> logs;
  std::vector<std::string> orphans;
  try {
    store_.for_each([&](const std::string& key, const Bytes& value) {
      size_t f = key.rfind("#f/");
      size_t l = key.rfind("#l/");
      if (f != std::string::npos && (l == std::string::npos || f > l)) {
        Bytes fid = hex_decode(key.substr(f + 3));
        if (fid.size() != 8) throw std::invalid_argument("bad file record");
        sse::FileId id = 0;
        for (uint8_t b : fid) id = (id << 8) | b;
        files[key.substr(0, f)].emplace_back(id, value);
      } else if (l != std::string::npos) {
        logs[key.substr(0, l)].emplace_back(key.substr(l + 3), value);
      } else {
        bases[key] = value;
      }
    });
    std::map<std::string, Account> recovered;
    for (const auto& [key, base] : bases) {
      io::Reader r(base);
      Account acct;
      acct.index = std::make_shared<const sse::SecureIndex>(
          sse::SecureIndex::from_bytes(r.bytes()));
      acct.d = r.bytes();
      acct.be_blob = r.bytes();
      if (!r.done()) {
        throw std::invalid_argument("SServer: trailing bytes in base record");
      }
      if (auto it = files.find(key); it != files.end()) {
        for (auto& [id, blob] : it->second) {
          acct.files.files.emplace(id, std::move(blob));
        }
      }
      if (auto it = logs.find(key); it != logs.end()) {
        for (auto& [label, entry] : it->second) {
          acct.log.entries.emplace(std::move(label), std::move(entry));
        }
      }
      recovered.emplace(key, std::move(acct));
    }
    // Sub-records whose base is gone (crash mid-delete): drop them from the
    // store rather than serving files no index reaches.
    for (const auto& [key, recs] : files) {
      if (bases.contains(key)) continue;
      for (const auto& [id, blob] : recs) orphans.push_back(file_record_key(key, id));
    }
    for (const auto& [key, recs] : logs) {
      if (bases.contains(key)) continue;
      for (const auto& [label, entry] : recs) {
        orphans.push_back(log_record_key(key, label));
      }
    }
    for (auto& [key, acct] : recovered) accounts_[key] = std::move(acct);
  } catch (const std::exception&) {
    store_ = store::AccountStore();
    return false;
  }
  for (const std::string& key : orphans) store_.erase(key);
  for (const auto& [key, acct] : accounts_) {
    if (!store_.contains(key)) store_put_all(key, acct);
  }
  return true;
}

bool SServer::store_consistent() const {
  if (!store_.is_open()) return true;
  size_t expected = 0;
  for (const auto& [key, acct] : accounts_) {
    expected += 1 + acct.files.files.size() + acct.log.entries.size();
  }
  if (store_.size() != expected) return false;
  for (const auto& [key, acct] : accounts_) {
    std::optional<Bytes> base = store_.get(key);
    if (!base.has_value() || *base != account_base_bytes(acct)) return false;
    for (const auto& [id, blob] : acct.files.files) {
      std::optional<Bytes> rec = store_.get(file_record_key(key, id));
      if (!rec.has_value() || *rec != blob) return false;
    }
    for (const auto& [label, entry] : acct.log.entries) {
      std::optional<Bytes> rec = store_.get(log_record_key(key, label));
      if (!rec.has_value() || *rec != entry) return false;
    }
  }
  return true;
}

namespace {
// v2: accounts carry the dynamic-SSE update log (DESIGN.md §12).
constexpr uint8_t kStateFormatVersion = 2;
}

Bytes SServer::export_state() const {
  io::Writer w;
  w.u8(kStateFormatVersion);
  w.u32(static_cast<uint32_t>(accounts_.size()));
  for (const auto& [key, acct] : accounts_) {
    w.str(key);
    w.bytes(acct.index->to_bytes());
    w.bytes(acct.files.to_bytes());
    w.bytes(acct.log.to_bytes());
    w.bytes(acct.d);
    w.bytes(acct.be_blob);
  }
  // Role-bucketed in memory, but the wire format is unchanged from v2: a
  // flat entry list carrying its role_id (bucket order instead of arrival
  // order — import rebuilds the same buckets either way).
  w.u32(static_cast<uint32_t>(mhi_entry_count()));
  for (const auto& [role_id, entries] : mhi_store_) {
    for (const MhiEntry& e : entries) {
      w.str(role_id);
      w.u32(static_cast<uint32_t>(e.tags.size()));
      for (const peks::PeksCiphertext& t : e.tags) w.bytes(t.to_bytes());
      w.bytes(e.ibe_blob);
    }
  }
  return w.take();
}

bool SServer::import_state(BytesView state) {
  try {
    io::Reader r(state);
    if (r.u8() != kStateFormatVersion) return false;
    std::map<std::string, Account> accounts;
    size_t n = r.count32(24);  // each account: six u32 length prefixes
    for (size_t i = 0; i < n; ++i) {
      std::string key = r.str();
      Account acct;
      acct.index = std::make_shared<const sse::SecureIndex>(
          sse::SecureIndex::from_bytes(r.bytes()));
      acct.files = sse::EncryptedCollection::from_bytes(r.bytes());
      acct.log = sse::UpdateLog::from_bytes(r.bytes());
      acct.d = r.bytes();
      acct.be_blob = r.bytes();
      accounts.emplace(std::move(key), std::move(acct));
    }
    std::map<std::string, std::vector<MhiEntry>> mhi;
    size_t m = r.count32(12);  // each entry: three u32 prefixes
    for (size_t i = 0; i < m; ++i) {
      std::string role_id = r.str();
      MhiEntry e;
      size_t tags = r.count32(4);  // each tag: u32 length prefix
      for (size_t t = 0; t < tags; ++t) {
        e.tags.push_back(peks::PeksCiphertext::from_bytes(*ctx_, r.bytes()));
      }
      e.ibe_blob = r.bytes();
      mhi[role_id].push_back(std::move(e));
    }
    if (!r.done()) return false;  // trailing junk
    accounts_ = std::move(accounts);
    mhi_store_ = std::move(mhi);
    store_replace_all();
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool SServer::save_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  Bytes state = export_state();
  out.write(reinterpret_cast<const char*>(state.data()),
            static_cast<std::streamsize>(state.size()));
  return static_cast<bool>(out);
}

bool SServer::load_from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  Bytes state((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return import_state(state);
}

size_t SServer::stored_bytes() const {
  size_t total = 0;
  for (const auto& [key, acct] : accounts_) {
    total += acct.index->size_bytes() + acct.files.size_bytes() +
             acct.log.size_bytes() + acct.d.size() + acct.be_blob.size();
  }
  for (const auto& [role_id, entries] : mhi_store_) {
    for (const MhiEntry& e : entries) {
      total += e.ibe_blob.size();
      for (const peks::PeksCiphertext& t : e.tags) total += t.size();
    }
  }
  return total;
}

// ---- PrivilegeBundle --------------------------------------------------------

Bytes PrivilegeBundle::to_bytes() const {
  io::Writer w;
  w.bytes(tp);
  w.bytes(nu);
  w.bytes(gamma);
  w.bytes(keys.to_bytes());
  w.bytes(ki.to_bytes());
  w.str(collection);
  w.bytes(member_keys.to_bytes());
  w.u32(alias_count);
  w.bytes(update_state.to_bytes());
  return w.take();
}

PrivilegeBundle PrivilegeBundle::from_bytes(BytesView b) {
  io::Reader r(b);
  PrivilegeBundle pb;
  pb.tp = r.bytes();
  pb.nu = r.bytes();
  pb.gamma = r.bytes();
  pb.keys = sse::Keys::from_bytes(r.bytes());
  pb.ki = KeywordIndex::from_bytes(r.bytes());
  pb.collection = r.str();
  pb.member_keys = be::MemberKeys::from_bytes(r.bytes());
  pb.alias_count = r.u32();
  // Bundles sealed before the dynamic layer existed end here; they search
  // with zeroed counters, i.e. the static index only.
  if (!r.done()) pb.update_state = sse::UpdateState::from_bytes(r.bytes());
  return pb;
}

// ---- Patient ----------------------------------------------------------------

Patient::Patient(sim::Network& net, std::string name, RandomSource& seed)
    : net_(&net),
      name_(std::move(name)),
      rng_(seed_for(seed, "patient-" + name_)) {}

void Patient::setup(const AServer& authority, const std::string& sserver_id) {
  ctx_ = &authority.ctx();
  sserver_id_ = sserver_id;
  // Hospital-assisted issuance, then self-rerandomization ([25]) so neither
  // the hospital nor the A-server can link TPp back to the issued pair.
  ibc::Domain::Pseudonym issued = authority.issue_pseudonym();
  pseudonym_ = ibc::rerandomize_pseudonym(*ctx_, issued, rng_);
  // ν is a pure function of (Γp, ID_S), both fixed from here on — derive it
  // once instead of paying a pairing per protocol run.
  nu_ = ibc::shared_key_with_id(*ctx_, pseudonym_.gamma, sserver_id_);
  keys_ = sse::Keys::generate(rng_);
  be_group_ = std::make_unique<be::BroadcastGroup>(8, rng_);
  ki_ = KeywordIndex{};
  ki_.sserver_id = sserver_id_;
}

void Patient::add_files(std::vector<sse::PlainFile> files) {
  for (sse::PlainFile& f : files) files_.push_back(std::move(f));
}

void Patient::set_keyword_aliases(size_t n) {
  if (n == 0) {
    throw std::invalid_argument("Patient: alias count must be >= 1");
  }
  alias_count_ = n;
}

std::string Patient::next_alias(const std::string& kw) {
  size_t& cursor = alias_cursor_[kw];
  std::string alias = keyword_alias(kw, cursor % alias_count_);
  ++cursor;
  return alias;
}

Bytes Patient::tp_bytes() const { return curve::point_to_bytes(pseudonym_.tp); }

Bytes Patient::shared_key_nu() const {
  if (!nu_.empty()) return nu_;
  return ibc::shared_key_with_id(*ctx_, pseudonym_.gamma, sserver_id_);
}

Bytes Patient::make_sealed_bundle(size_t slot, BytesView mu,
                                  bool include_gamma) {
  if (be_group_ == nullptr) {
    throw std::logic_error("Patient: setup() must run before ASSIGN");
  }
  PrivilegeBundle pb;
  pb.tp = tp_bytes();
  pb.nu = shared_key_nu();
  if (include_gamma) pb.gamma = curve::point_to_bytes(pseudonym_.gamma);
  pb.alias_count = static_cast<uint32_t>(alias_count_);
  pb.keys = keys_;
  pb.ki = ki_;
  pb.collection = collection_;
  pb.update_state = update_state_;
  pb.member_keys = be_group_->issue(slot);
  return cipher::aead_encrypt(mu, pb.to_bytes(), {}, rng_);
}

// ---- Family -----------------------------------------------------------------

Family::Family(sim::Network& net, std::string name)
    : net_(&net), name_(std::move(name)) {}

bool Family::receive_bundle(BytesView sealed, BytesView mu) {
  try {
    bundle_ = PrivilegeBundle::from_bytes(cipher::aead_decrypt(mu, sealed, {}));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

// ---- PDevice ----------------------------------------------------------------

PDevice::PDevice(sim::Network& net, std::string id, RandomSource& seed)
    : net_(&net),
      id_(std::move(id)),
      rd_ledger_(id_ + "/rd"),
      rng_(seed_for(seed, "pdevice-" + id_)) {}

bool PDevice::receive_bundle(BytesView sealed, BytesView mu) {
  try {
    bundle_ = PrivilegeBundle::from_bytes(cipher::aead_decrypt(mu, sealed, {}));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void PDevice::press_emergency_button() { emergency_mode_ = true; }

void PDevice::collect_mhi(MhiWindow window) {
  mhi_.push_back(std::move(window));
}

// ---- Physician ----------------------------------------------------------------

Physician::Physician(sim::Network& net, const AServer& authority,
                     std::string id)
    : net_(&net),
      id_(std::move(id)),
      ctx_(&authority.ctx()),
      authority_pub_(authority.pub()),
      authority_id_(authority.id()),
      private_key_(authority.provision(id_)),
      key_deriver_(*ctx_, private_key_),
      rng_(to_bytes("physician-" + id_)) {}

}  // namespace hcpp::core
