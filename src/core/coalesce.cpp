#include "src/core/coalesce.h"

#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/par/pool.h"

namespace hcpp::core {

PairingCoalescer::PairingCoalescer(const curve::CurveCtx& ctx) : ctx_(&ctx) {}

PairingCoalescer::PairingCoalescer(const ibc::PublicParams& pub)
    : ctx_(pub.ctx), pub_(pub) {
  if (ctx_ == nullptr) {
    throw std::invalid_argument("PairingCoalescer: PublicParams without ctx");
  }
}

size_t PairingCoalescer::add_shared_key(const ibc::SharedKeyDeriver& deriver,
                                        const curve::Point& peer) {
  if (!deriver.ready() || deriver.ctx() != ctx_) {
    throw std::invalid_argument(
        "PairingCoalescer: deriver missing or from another curve context");
  }
  // Dedup key: the deriver's address (stable until drain — documented
  // lifetime contract) plus the peer point encoding.
  std::string dk(reinterpret_cast<const char*>(&deriver), sizeof(&deriver));
  Bytes pb = curve::point_to_bytes(peer);
  dk.append(reinterpret_cast<const char*>(pb.data()), pb.size());
  auto [it, inserted] = key_index_.try_emplace(std::move(dk),
                                               key_unique_.size());
  if (inserted) {
    key_unique_.push_back({&deriver, peer});
  } else {
    ++dedup_hits_;
  }
  key_tickets_.push_back(it->second);
  return key_tickets_.size() - 1;
}

size_t PairingCoalescer::add_ibs_verify(std::string_view id,
                                        BytesView message,
                                        const ibc::IbsSignature& sig) {
  if (!pub_.has_value()) {
    throw std::logic_error(
        "PairingCoalescer: IBS verification needs the PublicParams ctor");
  }
  sigs_.push_back({std::string(id), Bytes(message.begin(), message.end()),
                   sig});
  return sigs_.size() - 1;
}

PairingCoalescer::Drained PairingCoalescer::drain(par::ThreadPool* pool) {
  Drained d;
  const size_t total = key_tickets_.size() + sigs_.size();
  if (total == 0) return d;
  obs::count(obs::kCoalesceDrains);
  obs::count(obs::kCoalesceRequests, total);

  if (!sigs_.empty() && !ppub_pre_.has_value()) {
    ppub_pre_.emplace(*ctx_, pub_->p_pub);
  }

  // Stage 1: Miller evaluations over cached line tables. Shared-key millers
  // occupy slots [0, key_unique_.size()); each valid signature appends its
  // fused product ê_miller(W, P)·ê_miller(−v·H1(ID), Ppub) after them.
  std::vector<field::Fp2> millers;
  millers.reserve(key_unique_.size() + sigs_.size());
  for (const KeyReq& kr : key_unique_) {
    millers.push_back(kr.deriver->precomp().miller_with(kr.peer));
  }

  constexpr size_t kInvalid = static_cast<size_t>(-1);
  std::vector<size_t> sig_slot(sigs_.size(), kInvalid);
  size_t fused = 0;
  size_t id_cache_hits = 0;
  if (!sigs_.empty()) {
    const curve::PairingPrecomp& gen_pre = curve::generator_precomp(*ctx_);
    // H1(ID) cache: audit rounds and emergency bursts repeat identities.
    std::unordered_map<std::string_view, curve::Point> q_ids;
    for (size_t i = 0; i < sigs_.size(); ++i) {
      const SigReq& sr = sigs_[i];
      const ibc::IbsSignature& sig = sr.sig;
      if (sig.w.infinity || sig.v.is_zero() || !(sig.v < ctx_->q)) {
        continue;  // malformed: rejected without any pairing work
      }
      auto [it, inserted] = q_ids.try_emplace(std::string_view(sr.id));
      if (inserted) {
        it->second = ibc::Domain::public_key(*ctx_, sr.id);
      } else {
        ++id_cache_hits;
      }
      mp::U512 neg_v = mp::sub_mod(mp::U512{}, sig.v, ctx_->q);
      field::Fp2 f =
          gen_pre.miller_with(sig.w) *
          ppub_pre_->miller_with(curve::mul(*ctx_, it->second, neg_v));
      sig_slot[i] = millers.size();
      millers.push_back(f);
      ++fused;
    }
  }

  // Stage 2: one batched final exponentiation for the entire drain — a
  // single modular inversion via Montgomery's trick, cofactor powers
  // sharded onto the pool.
  std::vector<curve::Gt> gts = curve::final_exp_batch(*ctx_, millers, pool);

  // Stage 3: per-request finishes (KDF / challenge compare), duplicates
  // copying their unique result.
  std::vector<Bytes> unique_keys(key_unique_.size());
  for (size_t u = 0; u < key_unique_.size(); ++u) {
    unique_keys[u] = ibc::shared_key_kdf(gts[u]);
  }
  d.shared_keys.resize(key_tickets_.size());
  for (size_t t = 0; t < key_tickets_.size(); ++t) {
    d.shared_keys[t] = unique_keys[key_tickets_[t]];
  }
  d.ibs_ok.assign(sigs_.size(), 0);
  for (size_t i = 0; i < sigs_.size(); ++i) {
    if (sig_slot[i] == kInvalid) continue;
    d.ibs_ok[i] =
        ibc::ibs_challenge(*ctx_, sigs_[i].message, gts[sig_slot[i]]) ==
                sigs_[i].sig.v
            ? 1
            : 0;
  }

  // One pairing saved per deduplicated key request (skipped outright) and
  // per fused signature (two one-at-a-time pairings became one product).
  d.pairings_saved = dedup_hits_ + fused;
  obs::count(obs::kCoalesceDedupHits, dedup_hits_ + id_cache_hits);
  obs::count(obs::kCoalescePairingsSaved, d.pairings_saved);

  key_unique_.clear();
  key_tickets_.clear();
  key_index_.clear();
  sigs_.clear();
  dedup_hits_ = 0;
  return d;
}

}  // namespace hcpp::core
