// Streaming MHI pipeline (DESIGN.md §13): the continuous body-area-network
// workload of RSPP layered over §IV.E.2's one-shot MHI protocol. P-devices
// emit sensor windows at high rate; the S-server holds *standing* trapdoor
// registrations for the on-duty physicians and tests every window's PEKS
// tags as they land, queueing emergency hits for real-time delivery instead
// of waiting for a poll-time scan.
//
// Every pairing on the path is amortized:
//   * Ingest (MhiIngestor): g_r = ê(PK_r, Ppub) and the IBE base are cached
//     per role epoch, so a steady-state window costs Gt exponentiations and
//     fixed-base generator muls only — no pairing, no hash-to-point.
//   * Match (MhiStreamHub): each registration carries the trapdoor's Miller
//     line cache (peks::TrapdoorPrecomp), so a landing window pays one cheap
//     precomputed Miller loop per (registration, tag) pair and ONE batched
//     final exponentiation per ingest across all of them.
//   * Epoch rollover: IDr = Date‖Duty‖ServiceArea changes → expire_role()
//     drops stale registrations server-side and roll_epoch() rolls the
//     encrypt-side cache, so tags and trapdoors from different epochs never
//     cross-match (distinct H1 preimages).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/core/record.h"
#include "src/ibc/ibe.h"
#include "src/peks/peks.h"

namespace hcpp::core {

/// Composes the role identity IDr = Date ‖ Duty ‖ ServiceArea (§IV.E.2),
/// e.g. mhi_role_id("2011-04-12", "emergency", "gainesville").
std::string mhi_role_id(std::string_view date, std::string_view duty,
                        std::string_view service_area);

// ---------------------------------------------------------------------------
/// P-device side of the stream: encrypts windows for the current role epoch
/// with every per-epoch pairing hoisted out of the loop.
class MhiIngestor {
 public:
  MhiIngestor(const ibc::PublicParams& pub, std::string role_id);

  struct EncodedWindow {
    std::vector<Bytes> peks_tags;  // PEKS_σ(IDr, kw), serialized
    Bytes ibe_blob;                // IBE_IDr(window), serialized
  };

  /// IBE-encrypts `win` under the current epoch's role identity and tags it
  /// with PEKS over "day:<win.day>" plus `extra_keywords`. Bit-identical to
  /// the cold path (ibe_encrypt + peks_encrypt) for the same RNG stream.
  EncodedWindow encode(const MhiWindow& win,
                       std::span<const std::string> extra_keywords,
                       RandomSource& rng);

  /// Epoch rollover: subsequent windows are addressed to `new_role_id`; the
  /// stale epoch's cached pairing bases are dropped.
  void roll_epoch(const std::string& new_role_id);

  [[nodiscard]] const std::string& role_id() const noexcept {
    return role_id_;
  }
  /// Role epochs currently held in the PEKS g_r cache (1 after a roll).
  [[nodiscard]] size_t cached_roles() const noexcept {
    return peks_.cached_roles();
  }

 private:
  ibc::PublicParams pub_;
  std::string role_id_;
  peks::PeksEncryptor peks_;
  ibc::IbePrecomputed ibe_;  // ê(H1(IDr), Ppub) for the current epoch
};

// ---------------------------------------------------------------------------
/// One matched window queued for a standing registration's owner.
struct MhiHit {
  std::string role_id;
  Bytes ibe_blob;  // IBE_IDr(window) — only the role-key holder can open it
};

/// S-server side of the stream: standing trapdoor registrations per on-duty
/// physician, tested against every window as it lands.
class MhiStreamHub {
 public:
  explicit MhiStreamHub(const curve::CurveCtx& ctx) : ctx_(&ctx) {}

  /// Parks TDr(kw) for `physician_id`, building its Miller line cache once.
  /// A re-registration by the same physician for the same role replaces the
  /// previous trapdoor (standing queries are one-per-physician-per-role).
  void register_trapdoor(const std::string& physician_id,
                         const std::string& role_id,
                         const peks::Trapdoor& td);

  /// Epoch rollover: drops every standing registration for `role_id` (their
  /// trapdoors can never match another epoch's tags — see header comment).
  /// Returns how many were dropped. Queued hits survive until drained.
  size_t expire_role(const std::string& role_id);

  /// Tests one freshly-landed window against all standing registrations for
  /// its role. One precomputed Miller loop per (registration, tag) pair and
  /// ONE pool-sharded batched final exponentiation per call; a matching
  /// registration queues one MhiHit for its physician. Returns the number of
  /// hits queued.
  size_t ingest(const std::string& role_id,
                std::span<const peks::PeksCiphertext> tags,
                const Bytes& ibe_blob, par::ThreadPool* pool = nullptr);

  /// Hands over (and clears) the hits queued for `physician_id`. With a
  /// non-empty `role_id`, only that epoch's hits are drained — a fetch
  /// authenticated under one role key must not destroy hits whose blobs
  /// only another epoch's key could open.
  [[nodiscard]] std::vector<MhiHit> drain_hits(const std::string& physician_id,
                                               const std::string& role_id = "");
  [[nodiscard]] size_t pending_hits(const std::string& physician_id) const;
  [[nodiscard]] size_t registration_count() const noexcept;

  struct Stats {
    uint64_t windows_ingested = 0;
    uint64_t tags_tested = 0;  // (registration, tag) pairs evaluated
    uint64_t hits = 0;
    uint64_t expired_registrations = 0;
    size_t registrations = 0;  // currently standing
    size_t pending = 0;        // queued, not yet drained
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Registration {
    std::string physician_id;
    peks::TrapdoorPrecomp precomp;
  };

  const curve::CurveCtx* ctx_;
  std::map<std::string, std::vector<Registration>> by_role_;
  std::map<std::string, std::vector<MhiHit>> hits_;  // physician → queue
  uint64_t windows_ingested_ = 0;
  uint64_t tags_tested_ = 0;
  uint64_t hits_total_ = 0;
  uint64_t expired_ = 0;
};

}  // namespace hcpp::core
