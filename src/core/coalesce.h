// Cross-request pairing coalescing (ROADMAP item 3, this PR's core-layer
// tentpole). PR 5's batch layer only aggregates pairings *within* one API
// call (ibs_verify_batch, pairing_product); this type aggregates across
// independent requests that happen to be queued together — the fixed-cost
// amortization trick RSPP applies to body-area-network traffic rates.
//
// An owner (S-server SEARCH front-end, A-server emergency/audit handler)
// collects the pairing-bearing work of one pool drain:
//   * shared-key derivations ν/ϖ = KDF(ê(Γ_owner, TP_peer)), and
//   * Hess IBS verifications u' = ê(W, P)·ê(H1(ID), Ppub)^{−v},
// then calls drain() once. The coalescer folds the whole batch into Miller
// evaluations over cached line tables plus ONE batched final exponentiation
// (one modular inversion for everything, Montgomery's trick), and dedups
// identical shared-key requests outright. Results are returned by ticket in
// request order and are byte-identical to the one-at-a-time paths
// (SharedKeyDeriver::with_point, ibs_verify) — pinned by
// tests/test_coalesce.cpp.
//
// Hess IBS cannot be merged into a single product *check* (each u' feeds its
// own H3 — see ibs.h), so per signature the two pairings become one fused
// Miller product; the final exponentiations are then shared batch-wide.
//
// Not thread-safe: one coalescer belongs to one collecting thread. Queued
// SharedKeyDeriver references must outlive the drain() call.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/ibc/ibs.h"

namespace hcpp::par {
class ThreadPool;
}

namespace hcpp::core {

class PairingCoalescer {
 public:
  /// Shared-key-only coalescer (no IBS verification queue).
  explicit PairingCoalescer(const curve::CurveCtx& ctx);
  /// Full coalescer; `pub` supplies Ppub for IBS verification. The Miller
  /// line table of Ppub is built lazily on the first drain that needs it and
  /// reused for the coalescer's lifetime.
  explicit PairingCoalescer(const ibc::PublicParams& pub);

  /// Queues K = KDF(ê(deriver's private, peer)) — the value
  /// deriver.with_point(peer) returns. Identical (deriver, peer) requests
  /// are deduplicated: they share one pairing and get equal keys. Returns
  /// the ticket indexing Drained::shared_keys.
  size_t add_shared_key(const ibc::SharedKeyDeriver& deriver,
                        const curve::Point& peer);

  /// Queues ibs_verify(pub, id, message, sig). Returns the ticket indexing
  /// Drained::ibs_ok. Throws std::logic_error on a key-only coalescer.
  size_t add_ibs_verify(std::string_view id, BytesView message,
                        const ibc::IbsSignature& sig);

  [[nodiscard]] size_t pending() const noexcept {
    return key_tickets_.size() + sigs_.size();
  }

  struct Drained {
    std::vector<Bytes> shared_keys;  // by add_shared_key ticket order
    std::vector<uint8_t> ibs_ok;     // by add_ibs_verify ticket order
    // Full pairings this drain avoided versus the one-at-a-time path:
    // one per deduplicated shared-key request plus one per signature whose
    // two verification pairings were fused into a single Miller product.
    size_t pairings_saved = 0;
  };

  /// Executes everything queued since the last drain and resets the queues.
  /// The batched final exponentiations are sharded onto `pool` when given
  /// (nullptr = serial, the deterministic schedule).
  Drained drain(par::ThreadPool* pool = nullptr);

 private:
  struct KeyReq {
    const ibc::SharedKeyDeriver* deriver;
    curve::Point peer;
  };
  struct SigReq {
    std::string id;
    Bytes message;
    ibc::IbsSignature sig;
  };

  const curve::CurveCtx* ctx_;
  std::optional<ibc::PublicParams> pub_;
  std::optional<curve::PairingPrecomp> ppub_pre_;  // lazy Ppub line table

  std::vector<KeyReq> key_unique_;   // deduplicated shared-key requests
  std::vector<size_t> key_tickets_;  // ticket -> index into key_unique_
  // Dedup index: (deriver address ‖ peer encoding) -> key_unique_ slot.
  std::unordered_map<std::string, size_t> key_index_;
  std::vector<SigReq> sigs_;
  size_t dedup_hits_ = 0;
};

}  // namespace hcpp::core
