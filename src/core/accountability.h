// Accountability audit (§V.A): after the emergency, the patient collects the
// RD records from the P-device, verifies the A-server signatures they embed,
// cross-checks them against the A-server's TR log, and flags physicians who
// searched beyond the keyword set a treatment justified.
//
// Two tiers. audit() judges the *records* (signatures + cross-referencing).
// audit_ledgers() additionally judges the *history*: both logs live in
// tamper-evident hash-chained ledgers (src/ledger) whose epoch checkpoints
// are IBS-countersigned up the hospital → state → federal anchor hierarchy,
// so a holder who truncates, reorders or forks its log is caught by chain
// verification against the anchors — even when every surviving record still
// carries a valid signature.
#pragma once

#include <set>

#include "src/core/entities.h"
#include "src/ledger/anchor.h"

namespace hcpp::core {

/// Verifies the A-server's audit signature inside one RD record.
bool verify_rd(const ibc::PublicParams& pub, const std::string& aserver_id,
               const RdRecord& rd);

/// Verifies the physician's request signature inside one TR trace.
bool verify_trace(const ibc::PublicParams& pub, const TraceRecord& tr);

// ---- ledger event conversion ----------------------------------------------
// The ledger layer is core-agnostic; these adapters are the single place the
// TR/RD structs map onto ledger::AccessEvent and back.

ledger::AccessEvent event_from_trace(const TraceRecord& tr);
TraceRecord trace_from_event(const ledger::AccessEvent& ev);
ledger::AccessEvent event_from_rd(const RdRecord& rd);
RdRecord rd_from_event(const ledger::AccessEvent& ev);

struct AuditReport {
  /// Physicians with a verified RD + matching verified TR: provably
  /// interacted with the P-device and can be held accountable for any leak.
  std::vector<std::string> accountable;
  /// RD entries containing keywords outside the permitted set — evidence of
  /// over-broad searching even without a leak (§V.A accountability).
  std::vector<std::string> improper_searchers;
  /// Typed inconsistency counts, so a chaos test (or an investigator) can
  /// tell *which* failure occurred rather than seeing one opaque tally:
  size_t bad_rd_signatures = 0;   // RD whose embedded A-server IBS failed
  size_t rd_without_trace = 0;    // verified RD with no matching TR at all
  size_t bad_trace_signatures = 0;  // matching TR found, physician IBS bad

  /// Anything that warrants investigation (the historical single counter).
  [[nodiscard]] size_t inconsistencies() const noexcept {
    return bad_rd_signatures + rd_without_trace + bad_trace_signatures;
  }
};

/// Cross-checks the P-device's RD log against the A-server's TR log. The
/// signature checks dominate (two pairings each); with a pool they run as
/// two ibs_verify_batch rounds — all RD signatures, then the traces matched
/// by verified RDs — before the serial cross-referencing pass.
AuditReport audit(const ibc::PublicParams& pub, const std::string& aserver_id,
                  std::span<const TraceRecord> traces,
                  std::span<const RdRecord> records,
                  const std::set<std::string>& permitted_keywords,
                  par::ThreadPool* pool = nullptr);

/// The full ledger-level audit verdict: record-level findings plus the
/// integrity of both histories.
struct LedgerAuditReport {
  AuditReport records;                // signature/cross-check tier
  ledger::ChainVerdict trace_chain;   // TR ledger vs its last anchor
  ledger::ChainVerdict rd_chain;      // RD ledger chain verification
  bool anchors_ok = true;             // every anchor's IBS chain verified
  size_t proofs_checked = 0;          // Merkle inclusion proofs verified
  size_t bad_proofs = 0;

  [[nodiscard]] bool ok() const noexcept {
    return trace_chain.ok() && rd_chain.ok() && anchors_ok &&
           bad_proofs == 0 && records.inconsistencies() == 0;
  }
};

/// Chain-verifying audit. Beyond audit() on the decoded events, it
///   * runs verify_chain() on both ledgers and verify_against() their last
///     anchored checkpoints (detecting truncation, reordering, forks and
///     gap-in-sequence tampering);
///   * batch-verifies every anchor's hospital → state → federal IBS chain
///     (ibc::ibs_verify_batch under `expected_authorities`);
///   * spot-checks the anchored prefix with O(log n) Merkle inclusion
///     proofs, spread across `pool` when provided.
LedgerAuditReport audit_ledgers(
    const ibc::PublicParams& pub, const std::string& aserver_id,
    const ledger::Ledger& trace_ledger, const ledger::Ledger& rd_ledger,
    std::span<const std::string> expected_authorities,
    const std::set<std::string>& permitted_keywords,
    par::ThreadPool* pool = nullptr);

}  // namespace hcpp::core
