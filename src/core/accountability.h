// Accountability audit (§V.A): after the emergency, the patient collects the
// RD records from the P-device, verifies the A-server signatures they embed,
// cross-checks them against the A-server's TR log, and flags physicians who
// searched beyond the keyword set a treatment justified.
#pragma once

#include <set>

#include "src/core/entities.h"

namespace hcpp::core {

/// Verifies the A-server's audit signature inside one RD record.
bool verify_rd(const ibc::PublicParams& pub, const std::string& aserver_id,
               const RdRecord& rd);

/// Verifies the physician's request signature inside one TR trace.
bool verify_trace(const ibc::PublicParams& pub, const TraceRecord& tr);

struct AuditReport {
  /// Physicians with a verified RD + matching verified TR: provably
  /// interacted with the P-device and can be held accountable for any leak.
  std::vector<std::string> accountable;
  /// RD entries containing keywords outside the permitted set — evidence of
  /// over-broad searching even without a leak (§V.A accountability).
  std::vector<std::string> improper_searchers;
  /// RD records whose signature failed, or with no matching TR — an
  /// inconsistency that itself warrants investigation.
  size_t inconsistencies = 0;
};

/// Cross-checks the P-device's RD log against the A-server's TR log. The
/// signature checks dominate (two pairings each); with a pool they run as
/// two ibs_verify_batch rounds — all RD signatures, then the traces matched
/// by verified RDs — before the serial cross-referencing pass.
AuditReport audit(const ibc::PublicParams& pub, const std::string& aserver_id,
                  std::span<const TraceRecord> traces,
                  std::span<const RdRecord> records,
                  const std::set<std::string>& permitted_keywords,
                  par::ThreadPool* pool = nullptr);

}  // namespace hcpp::core
