#include "src/core/messages.h"

#include "src/hash/hmac.h"

namespace hcpp::core {

Bytes protocol_mac(BytesView key, std::string_view label, BytesView body,
                   uint64_t timestamp_ns) {
  io::Writer w;
  w.str(label);
  w.bytes(body);
  w.u64(timestamp_ns);
  return hash::hmac_sha256(key, w.data());
}

bool protocol_mac_ok(BytesView key, std::string_view label, BytesView body,
                     uint64_t timestamp_ns, BytesView mac) {
  Bytes expected = protocol_mac(key, label, body, timestamp_ns);
  return ct_equal(expected, mac);
}

namespace {
void put_vec(io::Writer& w, const std::vector<Bytes>& v) {
  w.u32(static_cast<uint32_t>(v.size()));
  for (const Bytes& b : v) w.bytes(b);
}
}  // namespace

namespace {
Bytes wire_of(BytesView body, uint64_t t, BytesView mac) {
  io::Writer w;
  w.bytes(body);
  w.u64(t);
  w.bytes(mac);
  return w.take();
}
}  // namespace

Bytes StoreRequest::body() const {
  io::Writer w;
  w.bytes(tp);
  w.str(collection);
  w.bytes(index);
  w.bytes(files);
  w.bytes(d);
  w.bytes(be_blob);
  return w.take();
}
size_t StoreRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes StoreRequest::to_wire() const { return wire_of(body(), t, mac); }

StoreRequest StoreRequest::from_wire(BytesView bv) {
  io::Reader outer(bv);
  Bytes body_bytes = outer.bytes();
  StoreRequest req;
  req.t = outer.u64();
  req.mac = outer.bytes();
  io::Reader r(body_bytes);
  req.tp = r.bytes();
  req.collection = r.str();
  req.index = r.bytes();
  req.files = r.bytes();
  req.d = r.bytes();
  req.be_blob = r.bytes();
  return req;
}

Bytes RetrieveRequest::body() const {
  io::Writer w;
  w.bytes(tp);
  w.str(collection);
  put_vec(w, trapdoors);
  return w.take();
}
size_t RetrieveRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes RetrieveRequest::to_wire() const { return wire_of(body(), t, mac); }

RetrieveRequest RetrieveRequest::from_wire(BytesView bv) {
  io::Reader outer(bv);
  Bytes body_bytes = outer.bytes();
  RetrieveRequest req;
  req.t = outer.u64();
  req.mac = outer.bytes();
  io::Reader r(body_bytes);
  req.tp = r.bytes();
  req.collection = r.str();
  size_t n = r.count32(4);  // each trapdoor: u32 length prefix
  req.trapdoors.reserve(n);
  for (size_t i = 0; i < n; ++i) req.trapdoors.push_back(r.bytes());
  return req;
}

Bytes RetrieveResponse::body() const {
  io::Writer w;
  w.u32(static_cast<uint32_t>(files.size()));
  for (const auto& [id, blob] : files) {
    w.u64(id);
    w.bytes(blob);
  }
  return w.take();
}
size_t RetrieveResponse::wire_size() const { return body().size() + 8 + 32; }

Bytes RetrieveResponse::to_wire() const { return wire_of(body(), t, mac); }

RetrieveResponse RetrieveResponse::from_wire(BytesView bv) {
  io::Reader outer(bv);
  Bytes body_bytes = outer.bytes();
  RetrieveResponse resp;
  resp.t = outer.u64();
  resp.mac = outer.bytes();
  io::Reader r(body_bytes);
  size_t n = r.count32(12);  // each file: u64 id + u32 length prefix
  resp.files.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sse::FileId id = r.u64();
    resp.files.emplace_back(id, r.bytes());
  }
  return resp;
}

Bytes BeBlobRequest::body() const {
  io::Writer w;
  w.bytes(tp);
  w.str(collection);
  return w.take();
}
size_t BeBlobRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes BeBlobResponse::body() const {
  io::Writer w;
  w.bytes(be_blob);
  return w.take();
}
size_t BeBlobResponse::wire_size() const { return body().size() + 8 + 32; }

Bytes PrivilegedRetrieveRequest::body() const {
  io::Writer w;
  w.bytes(tp);
  w.str(collection);
  put_vec(w, wrapped_trapdoors);
  return w.take();
}
size_t PrivilegedRetrieveRequest::wire_size() const {
  return body().size() + 8 + 32;
}

Bytes UpdateRequest::body() const {
  io::Writer w;
  w.bytes(tp);
  w.str(collection);
  w.u32(static_cast<uint32_t>(log_inserts.size()));
  for (const auto& [label, entry] : log_inserts) {
    w.str(label);
    w.bytes(entry);
  }
  w.u32(static_cast<uint32_t>(files_upsert.size()));
  for (const auto& [id, blob] : files_upsert) {
    w.u64(id);
    w.bytes(blob);
  }
  w.u32(static_cast<uint32_t>(files_remove.size()));
  for (sse::FileId id : files_remove) w.u64(id);
  return w.take();
}
size_t UpdateRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes CompactRequest::body() const {
  io::Writer w;
  w.bytes(tp);
  w.str(collection);
  w.bytes(index);
  return w.take();
}
size_t CompactRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes RevokeRequest::body() const {
  io::Writer w;
  w.bytes(tp);
  w.str(collection);
  w.bytes(sealed);
  return w.take();
}
size_t RevokeRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes EmergencyAuthRequest::body() const {
  io::Writer w;
  w.str(physician_id);
  w.str("passcode-request");  // the paper's m'
  w.bytes(tp);
  w.u64(t);
  return w.take();
}
size_t EmergencyAuthRequest::wire_size() const {
  return body().size() + sig.size();
}

Bytes PasscodeToPhysician::body(std::string_view physician_id,
                                BytesView tp) const {
  io::Writer w;
  w.str(physician_id);
  w.bytes(tp);
  w.bytes(enc_nonce);
  w.u64(t);
  return w.take();
}
size_t PasscodeToPhysician::wire_size() const {
  return enc_nonce.size() + 8 + sig.size();
}

Bytes PasscodeToPDevice::body(BytesView tp) const {
  io::Writer w;
  w.str(physician_id);
  w.bytes(tp);
  w.bytes(ibe_blob);
  w.u64(t);
  return w.take();
}
size_t PasscodeToPDevice::wire_size() const {
  return physician_id.size() + ibe_blob.size() + 8 + sig.size() +
         audit_sig.size();
}

Bytes rd_statement(std::string_view physician_id, BytesView tp,
                   uint64_t t11) {
  io::Writer w;
  w.str("hcpp-rd-statement");
  w.str(physician_id);
  w.bytes(tp);
  w.u64(t11);
  return w.take();
}

Bytes MhiStoreRequest::body() const {
  io::Writer w;
  w.bytes(tp);
  w.str(role_id);
  put_vec(w, peks_tags);
  w.bytes(ibe_blob);
  return w.take();
}
size_t MhiStoreRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes RoleKeyRequest::body() const {
  io::Writer w;
  w.str(physician_id);
  w.str(role_id);
  w.u64(t);
  return w.take();
}
size_t RoleKeyRequest::wire_size() const { return body().size() + sig.size(); }

Bytes MhiRetrieveRequest::body() const {
  io::Writer w;
  w.str(physician_id);
  w.str(role_id);
  w.bytes(trapdoor);
  return w.take();
}
size_t MhiRetrieveRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes MhiRetrieveResponse::body() const {
  io::Writer w;
  put_vec(w, ibe_blobs);
  return w.take();
}
size_t MhiRetrieveResponse::wire_size() const {
  return body().size() + 8 + 32;
}

Bytes MhiRegisterRequest::body() const {
  io::Writer w;
  w.str(physician_id);
  w.str(role_id);
  w.bytes(trapdoor);
  return w.take();
}
size_t MhiRegisterRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes MhiHitsRequest::body() const {
  io::Writer w;
  w.str(physician_id);
  w.str(role_id);
  return w.take();
}
size_t MhiHitsRequest::wire_size() const { return body().size() + 8 + 32; }

Bytes MhiHitsResponse::body() const {
  io::Writer w;
  put_vec(w, ibe_blobs);
  return w.take();
}
size_t MhiHitsResponse::wire_size() const { return body().size() + 8 + 32; }

Bytes TraceRecord::body() const {
  io::Writer w;
  w.str(physician_id);
  w.bytes(tp);
  w.u64(t10);
  w.u64(t11);
  return w.take();
}

Bytes RdRecord::body() const {
  io::Writer w;
  w.str(physician_id);
  w.bytes(tp);
  w.u32(static_cast<uint32_t>(keywords.size()));
  for (const std::string& kw : keywords) w.str(kw);
  w.u64(t11);
  return w.take();
}

Bytes RdRecord::to_bytes() const {
  io::Writer w;
  w.bytes(body());
  w.bytes(aserver_sig);
  return w.take();
}

RdRecord RdRecord::from_bytes(BytesView b) {
  io::Reader outer(b);
  Bytes body_bytes = outer.bytes();
  RdRecord rd;
  rd.aserver_sig = outer.bytes();
  io::Reader r(body_bytes);
  rd.physician_id = r.str();
  rd.tp = r.bytes();
  size_t n = r.count32(4);  // each keyword: u32 length prefix
  rd.keywords.reserve(n);
  for (size_t i = 0; i < n; ++i) rd.keywords.push_back(r.str());
  rd.t11 = r.u64();
  return rd;
}

}  // namespace hcpp::core
