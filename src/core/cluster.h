// §VI.D DoS countermeasure: "The attack to A-servers can be addressed by
// splitting the role of an A-server to several local offices". An
// AServerCluster is a set of replicas of one state A-server — same IBC
// master secret, mirrored on-duty registry — of which any reachable one can
// run the emergency authentication. The physician "calls the toll-free
// number" of the next office when one is down.
#pragma once

#include "src/core/entities.h"

namespace hcpp::core {

class AServerCluster {
 public:
  /// `replicas` local offices sharing one domain (ids "<base_id>-<i>").
  AServerCluster(sim::Network& net, const curve::CurveCtx& ctx,
                 const std::string& base_id, size_t replicas,
                 RandomSource& seed);

  [[nodiscard]] size_t size() const noexcept { return replicas_.size(); }
  [[nodiscard]] AServer& replica(size_t i) { return *replicas_.at(i); }

  /// Simulated outage control.
  void set_up(size_t i, bool up);
  [[nodiscard]] bool is_up(size_t i) const { return up_.at(i); }

  /// Mirrors the published on-duty list to every office.
  void set_on_duty(const std::string& physician_id, bool on_duty);

  /// First reachable office, or nullptr if the attacker downed them all.
  [[nodiscard]] AServer* first_available();

  /// Union of all offices' TR logs (for audits spanning a failover).
  [[nodiscard]] std::vector<TraceRecord> all_traces() const;

 private:
  std::vector<std::unique_ptr<AServer>> replicas_;
  std::vector<bool> up_;
};

}  // namespace hcpp::core
