// §VI.D DoS countermeasure: "The attack to A-servers can be addressed by
// splitting the role of an A-server to several local offices". An
// AServerCluster is a set of replicas of one state A-server — same IBC
// master secret, mirrored on-duty registry — of which any reachable one can
// run the emergency authentication. The physician "calls the toll-free
// number" of the next office when one is down.
//
// SServerGroup applies the same treatment to the hospital storage tier: a
// set of S-server replicas sharing one *service identity* (so every client's
// pairwise key ν works against any of them). Two placements:
//
//   * kReplicated (the original §VI.D mode): collections are mirrored onto
//     every replica on upload and re-synced after an outage; reads fail over
//     to the next replica when the transport gives up on one.
//   * kSharded (ROADMAP item 2 scale-out): each account lives on exactly one
//     replica, chosen by store::shard_for_pseudonym over the presented TPp —
//     capacity grows with the group instead of being copied across it, and
//     a write/republish on one shard never touches the others. Clients
//     route to the owner (shard_for) instead of fanning out; there is no
//     failover target, so an unreachable shard is a transient error.
#pragma once

#include "src/core/entities.h"
#include "src/ledger/anchor.h"

namespace hcpp::core {

class AServerCluster {
 public:
  /// `replicas` local offices sharing one domain (ids "<base_id>-<i>").
  AServerCluster(sim::Network& net, const curve::CurveCtx& ctx,
                 const std::string& base_id, size_t replicas,
                 RandomSource& seed);

  [[nodiscard]] size_t size() const noexcept { return replicas_.size(); }
  [[nodiscard]] AServer& replica(size_t i) { return *replicas_.at(i); }

  /// Simulated outage control. Also marks the office down on the network, so
  /// transport-routed requests to it time out instead of being served.
  void set_up(size_t i, bool up);
  [[nodiscard]] bool is_up(size_t i) const { return up_.at(i); }

  /// Mirrors the published on-duty list to every office.
  void set_on_duty(const std::string& physician_id, bool on_duty);

  /// First reachable office, or nullptr if the attacker downed them all.
  ///
  /// DEPRECATED: manual polling predates the retrying transport. Callers
  /// should let Physician::request_passcode(AServerCluster&, …) fail over
  /// automatically; this remains only for the legacy path and its test.
  [[nodiscard]] AServer* first_available();

  /// Union of all offices' TR logs (for audits spanning a failover).
  [[nodiscard]] std::vector<TraceRecord> all_traces() const;

  /// Checkpoint-anchoring hierarchy rooted in the shared domain (office 0
  /// mints it): the hospital → state → federal authorities every office's
  /// trace ledger anchors its epochs through (src/ledger/anchor.h).
  [[nodiscard]] ledger::AnchorChain& anchor_chain() noexcept {
    return *anchors_;
  }

 private:
  sim::Network* net_;
  std::vector<std::unique_ptr<AServer>> replicas_;
  std::unique_ptr<ledger::AnchorChain> anchors_;
  std::vector<bool> up_;
};

// ---------------------------------------------------------------------------
/// Replicated hospital storage. Every replica holds Γ_S for the shared
/// `service_id` (clients derive ν against that identity) but keeps its own
/// instance id ("<service_id>-<i>") for addressing and replay caching.
/// Writes are mirrored by the client-side fan-out in Patient::store_phi /
/// revoke_member(SServerGroup&); reads fail over replica-by-replica.
class SServerGroup {
 public:
  enum class Placement {
    kReplicated,  // every account on every replica (mirror + failover)
    kSharded,     // each account on exactly one replica (hash routing)
  };

  SServerGroup(sim::Network& net, const AServer& authority,
               const std::string& service_id, size_t replicas,
               Placement placement = Placement::kReplicated);

  [[nodiscard]] const std::string& service_id() const noexcept {
    return service_id_;
  }
  [[nodiscard]] size_t size() const noexcept { return replicas_.size(); }
  [[nodiscard]] SServer& replica(size_t i) { return *replicas_.at(i); }
  [[nodiscard]] Placement placement() const noexcept { return placement_; }
  [[nodiscard]] bool sharded() const noexcept {
    return placement_ == Placement::kSharded;
  }

  /// Shard index owning the accounts of pseudonym `tp` (always 0 when
  /// replicated — any replica serves any account).
  [[nodiscard]] size_t shard_of(BytesView tp) const;
  /// The replica owning `tp`'s accounts.
  [[nodiscard]] SServer& shard_for(BytesView tp);

  /// Attaches a persistent store to every replica, one directory per shard
  /// ("<dir_root>/shard-<i>"). Returns false if any attach failed.
  bool attach_stores(const std::string& dir_root);

  /// Simulated outage control, mirrored to the network substrate.
  void set_up(size_t i, bool up);
  [[nodiscard]] bool is_up(size_t i) const { return up_.at(i); }

  /// Recovery: copies the authoritative state (first up replica's export)
  /// onto every other up replica — the catch-up a real mirror would run
  /// after an outage. Returns false when no replica is up, and always false
  /// in sharded placement (shards are disjoint; there is nothing to mirror).
  bool sync_replicas();

 private:
  sim::Network* net_;
  std::string service_id_;
  Placement placement_ = Placement::kReplicated;
  std::vector<std::unique_ptr<SServer>> replicas_;
  std::vector<bool> up_;
};

}  // namespace hcpp::core
