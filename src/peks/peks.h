// Public-key encryption with keyword search (§II.C, §IV.E), the BDOP
// construction specialised to HCPP's identity-based emergency setting.
//
// The paper writes the trapdoor as TDr(kw) = Γr · H2(kw) with both factors
// in G1, which is ill-typed; we implement the evident intent by hashing the
// keyword to a scalar h = H2'(kw) ∈ Zq* (see DESIGN.md):
//
//   PEKS_σ(IDr, kw) = (A = σ·P,  B = H3(ê(PK_r, Ppub)^{σ·h}))
//   TDr(kw)         = h · Γr                      (Γr = s0·H1(IDr))
//   Test(A, B, TD)  = [ H3(ê(TD, A)) == B ]
//
// since ê(h·s0·PK_r, σ·P) = ê(PK_r, Ppub)^{σ·h}. Consistency and security
// follow from BDH exactly as in BDOP. An Abdalla-style randomized variant
// (encrypting a random R instead of a fixed tag, §II.C's consistency fix)
// is provided as SearchableTag::kRandomized.
#pragma once

#include "src/ibc/domain.h"

namespace hcpp::peks {

enum class Variant : uint8_t {
  kBdop = 0,        // B = H3(g^{σh}) — the construction of [18]
  kRandomized = 1,  // [20]: additionally binds a random R for consistency
};

struct PeksCiphertext {
  Variant variant = Variant::kBdop;
  curve::Point a;  // σ·P
  Bytes b;         // H3(...) tag (kBdop) or R ⊕ KDF(...) (kRandomized)
  Bytes check;     // H(R) for kRandomized, empty otherwise

  [[nodiscard]] Bytes to_bytes() const;
  static PeksCiphertext from_bytes(const curve::CurveCtx& ctx, BytesView b);
  [[nodiscard]] size_t size() const;
};

/// Trapdoor TD = H2'(kw) · Γr (computable by anyone holding the role key).
struct Trapdoor {
  curve::Point td;

  [[nodiscard]] Bytes to_bytes() const;
  static Trapdoor from_bytes(const curve::CurveCtx& ctx, BytesView b);
};

/// Produces a searchable tag for keyword `kw` addressed to role identity
/// `role_id` (e.g. "2011-04-12|emergency|gainesville").
PeksCiphertext peks_encrypt(const ibc::PublicParams& pub,
                            std::string_view role_id, std::string_view kw,
                            RandomSource& rng,
                            Variant variant = Variant::kBdop);

/// Trapdoor computed by the physician from the extracted role key Γr.
Trapdoor peks_trapdoor(const curve::CurveCtx& ctx,
                       const curve::Point& role_private, std::string_view kw);

/// Server-side test — learns only whether the keyword matches.
bool peks_test(const curve::CurveCtx& ctx, const PeksCiphertext& ct,
               const Trapdoor& td);

// ---- Conjunctive multi-keyword extension ----------------------------------
// §IV.E: "The single keyword PEKS shown above can be easily extended to
// enable multiple-keyword search [29]". Keyword sets are folded into one
// scalar h = Σ_i H2'(kw_i) mod q; the tag/trapdoor algebra is unchanged, so
// a trapdoor matches exactly the ciphertexts produced for the same keyword
// *set* (order-independent).

/// Tag for a keyword set under `role_id`.
PeksCiphertext peks_encrypt_set(const ibc::PublicParams& pub,
                                std::string_view role_id,
                                std::span<const std::string> keywords,
                                RandomSource& rng,
                                Variant variant = Variant::kBdop);

/// Trapdoor for a keyword set.
Trapdoor peks_trapdoor_set(const curve::CurveCtx& ctx,
                           const curve::Point& role_private,
                           std::span<const std::string> keywords);

}  // namespace hcpp::peks
