// Public-key encryption with keyword search (§II.C, §IV.E), the BDOP
// construction specialised to HCPP's identity-based emergency setting.
//
// The paper writes the trapdoor as TDr(kw) = Γr · H2(kw) with both factors
// in G1, which is ill-typed; we implement the evident intent by hashing the
// keyword to a scalar h = H2'(kw) ∈ Zq* (see DESIGN.md):
//
//   PEKS_σ(IDr, kw) = (A = σ·P,  B = H3(ê(PK_r, Ppub)^{σ·h}))
//   TDr(kw)         = h · Γr                      (Γr = s0·H1(IDr))
//   Test(A, B, TD)  = [ H3(ê(TD, A)) == B ]
//
// since ê(h·s0·PK_r, σ·P) = ê(PK_r, Ppub)^{σ·h}. Consistency and security
// follow from BDH exactly as in BDOP. An Abdalla-style randomized variant
// (encrypting a random R instead of a fixed tag, §II.C's consistency fix)
// is provided as SearchableTag::kRandomized.
#pragma once

#include <map>

#include "src/ibc/domain.h"

namespace hcpp::peks {

enum class Variant : uint8_t {
  kBdop = 0,        // B = H3(g^{σh}) — the construction of [18]
  kRandomized = 1,  // [20]: additionally binds a random R for consistency
};

struct PeksCiphertext {
  Variant variant = Variant::kBdop;
  curve::Point a;  // σ·P
  Bytes b;         // H3(...) tag (kBdop) or R ⊕ KDF(...) (kRandomized)
  Bytes check;     // H(R) for kRandomized, empty otherwise

  [[nodiscard]] Bytes to_bytes() const;
  static PeksCiphertext from_bytes(const curve::CurveCtx& ctx, BytesView b);
  [[nodiscard]] size_t size() const;
};

/// Trapdoor TD = H2'(kw) · Γr (computable by anyone holding the role key).
struct Trapdoor {
  curve::Point td;

  [[nodiscard]] Bytes to_bytes() const;
  static Trapdoor from_bytes(const curve::CurveCtx& ctx, BytesView b);
};

/// Produces a searchable tag for keyword `kw` addressed to role identity
/// `role_id` (e.g. "2011-04-12|emergency|gainesville").
PeksCiphertext peks_encrypt(const ibc::PublicParams& pub,
                            std::string_view role_id, std::string_view kw,
                            RandomSource& rng,
                            Variant variant = Variant::kBdop);

/// Trapdoor computed by the physician from the extracted role key Γr.
Trapdoor peks_trapdoor(const curve::CurveCtx& ctx,
                       const curve::Point& role_private, std::string_view kw);

/// Server-side test — learns only whether the keyword matches.
bool peks_test(const curve::CurveCtx& ctx, const PeksCiphertext& ct,
               const Trapdoor& td);

/// Batched server-side test: one `PairingPrecomp` on the trapdoor caches its
/// Miller lines, each candidate tag then costs one cheap precomputed Miller
/// loop, and a single `final_exp_batch` (one shared modular inversion,
/// pool-sharded cofactor powers) finishes all of them. Element i equals
/// `peks_test(ctx, cts[i], td)`.
std::vector<uint8_t> peks_test_batch(const curve::CurveCtx& ctx,
                                     std::span<const PeksCiphertext> cts,
                                     const Trapdoor& td,
                                     par::ThreadPool* pool = nullptr);

/// Standing-query form of the batched test: the trapdoor's Miller line cache
/// is built once at registration time and reused across many ingest batches
/// (see src/core/mhi_stream.h). `miller()` exposes the pre-final-
/// exponentiation pairing value so callers testing several trapdoors against
/// the same tags can drain ONE `final_exp_batch` over all (trapdoor, tag)
/// pairs; `matches()` applies the per-variant tag comparison to the finished
/// value.
class TrapdoorPrecomp {
 public:
  TrapdoorPrecomp(const curve::CurveCtx& ctx, const Trapdoor& td);

  [[nodiscard]] bool test(const PeksCiphertext& ct) const;
  [[nodiscard]] std::vector<uint8_t> test_batch(
      std::span<const PeksCiphertext> cts,
      par::ThreadPool* pool = nullptr) const;

  [[nodiscard]] field::Fp2 miller(const PeksCiphertext& ct) const;
  [[nodiscard]] static bool matches(const PeksCiphertext& ct,
                                    const curve::Gt& g);
  [[nodiscard]] const Trapdoor& trapdoor() const { return td_; }

 private:
  const curve::CurveCtx* ctx_;
  Trapdoor td_;
  curve::PairingPrecomp pre_;
};

/// Encrypt-side amortization for streaming tag generation. `peks_encrypt`
/// pays a hash-to-point H1(IDr) plus a full pairing ê(PK_r, Ppub) per tag,
/// but both depend only on the role identity — so PeksEncryptor caches
/// g_r = ê(PK_r, Ppub) per role epoch and each subsequent tag for that role
/// costs one fixed-base generator mul plus one Gt exponentiation. Outputs
/// are bit-identical to `peks_encrypt` given the same RNG stream.
class PeksEncryptor {
 public:
  explicit PeksEncryptor(const ibc::PublicParams& pub) : pub_(pub) {}

  PeksCiphertext encrypt(std::string_view role_id, std::string_view kw,
                         RandomSource& rng, Variant variant = Variant::kBdop);
  PeksCiphertext encrypt_set(std::string_view role_id,
                             std::span<const std::string> keywords,
                             RandomSource& rng,
                             Variant variant = Variant::kBdop);

  /// Epoch rollover: drops the cached base for `role_id` (the next tag for
  /// that role re-derives it with a fresh hash-to-point + pairing).
  void evict(std::string_view role_id);
  void clear() { cache_.clear(); }
  [[nodiscard]] size_t cached_roles() const { return cache_.size(); }
  [[nodiscard]] const ibc::PublicParams& pub() const { return pub_; }

 private:
  const curve::Gt& role_base(std::string_view role_id);

  ibc::PublicParams pub_;
  std::map<std::string, curve::Gt, std::less<>> cache_;
};

// ---- Conjunctive multi-keyword extension ----------------------------------
// §IV.E: "The single keyword PEKS shown above can be easily extended to
// enable multiple-keyword search [29]". Keyword sets are folded into one
// scalar h = Σ_i H2'(kw_i) mod q; the tag/trapdoor algebra is unchanged, so
// a trapdoor matches exactly the ciphertexts produced for the same keyword
// *set* (order-independent).

/// Tag for a keyword set under `role_id`.
PeksCiphertext peks_encrypt_set(const ibc::PublicParams& pub,
                                std::string_view role_id,
                                std::span<const std::string> keywords,
                                RandomSource& rng,
                                Variant variant = Variant::kBdop);

/// Trapdoor for a keyword set.
Trapdoor peks_trapdoor_set(const curve::CurveCtx& ctx,
                           const curve::Point& role_private,
                           std::span<const std::string> keywords);

}  // namespace hcpp::peks
