#include "src/peks/peks.h"

#include <stdexcept>

#include "src/common/serialize.h"
#include "src/hash/hkdf.h"
#include "src/hash/sha256.h"
#include "src/par/pool.h"

namespace hcpp::peks {

namespace {

constexpr size_t kTagLen = 32;

Bytes h3(const curve::Gt& g) {
  return hash::hkdf(g.to_bytes(), {}, to_bytes("hcpp-peks-h3"), kTagLen);
}

mp::U512 keyword_scalar(const curve::CurveCtx& ctx, std::string_view kw) {
  return curve::hash_to_scalar(ctx, to_bytes(kw), "hcpp-peks-h2");
}

// Folds a keyword set into one scalar, order-independently.
mp::U512 keyword_set_scalar(const curve::CurveCtx& ctx,
                            std::span<const std::string> keywords) {
  if (keywords.empty()) {
    throw std::invalid_argument("peks: empty keyword set");
  }
  mp::U512 h;  // zero
  for (const std::string& kw : keywords) {
    h = mp::add_mod(h, keyword_scalar(ctx, kw), ctx.q);
  }
  if (h.is_zero()) h = mp::U512::from_u64(1);  // vanishing sums are degenerate
  return h;
}

// g_r = ê(PK_r, Ppub) — the role-identity pairing base every tag for that
// role is a power of. This is the value PeksEncryptor caches per epoch.
curve::Gt role_pairing_base(const ibc::PublicParams& pub,
                            std::string_view role_id) {
  const curve::CurveCtx& ctx = *pub.ctx;
  curve::Point pk_r = ibc::Domain::public_key(ctx, role_id);
  return curve::pairing(ctx, pk_r, pub.p_pub);
}

// Shared tail of the cold and cached encrypt paths. Draws from `rng` in the
// same order as the original monolithic implementation (sigma, then R), so
// cached and cold tags are bit-identical for identical RNG streams — the
// property the differential oracle in tests/test_peks.cpp pins down.
PeksCiphertext tag_from_base(const curve::CurveCtx& ctx, const curve::Gt& g_r,
                             const mp::U512& h, RandomSource& rng,
                             Variant variant) {
  mp::U512 sigma = curve::random_scalar(ctx, rng);
  PeksCiphertext ct;
  ct.variant = variant;
  ct.a = curve::mul_generator(ctx, sigma);
  curve::Gt g = g_r.pow(mp::mul_mod(sigma, h, ctx.q));
  if (variant == Variant::kBdop) {
    ct.b = h3(g);
  } else {
    Bytes r_val = rng.bytes(kTagLen);
    ct.b = xor_bytes(r_val, h3(g));
    ct.check = hash::sha256_bytes(r_val);
  }
  return ct;
}

PeksCiphertext encrypt_with_scalar(const ibc::PublicParams& pub,
                                   std::string_view role_id, const mp::U512& h,
                                   RandomSource& rng, Variant variant) {
  return tag_from_base(*pub.ctx, role_pairing_base(pub, role_id), h, rng,
                       variant);
}

// The per-variant tag comparison shared by the scalar and batched tests.
bool tag_matches(const PeksCiphertext& ct, const curve::Gt& g) {
  Bytes mask = h3(g);
  if (ct.variant == Variant::kBdop) {
    return ct_equal(mask, ct.b);
  }
  if (ct.b.size() != mask.size()) return false;
  Bytes r_val = xor_bytes(ct.b, mask);
  return ct_equal(hash::sha256_bytes(r_val), ct.check);
}

}  // namespace

PeksCiphertext peks_encrypt(const ibc::PublicParams& pub,
                            std::string_view role_id, std::string_view kw,
                            RandomSource& rng, Variant variant) {
  return encrypt_with_scalar(pub, role_id, keyword_scalar(*pub.ctx, kw), rng,
                             variant);
}

Trapdoor peks_trapdoor(const curve::CurveCtx& ctx,
                       const curve::Point& role_private, std::string_view kw) {
  return Trapdoor{curve::mul(ctx, role_private, keyword_scalar(ctx, kw))};
}

PeksCiphertext peks_encrypt_set(const ibc::PublicParams& pub,
                                std::string_view role_id,
                                std::span<const std::string> keywords,
                                RandomSource& rng, Variant variant) {
  return encrypt_with_scalar(pub, role_id,
                             keyword_set_scalar(*pub.ctx, keywords), rng,
                             variant);
}

Trapdoor peks_trapdoor_set(const curve::CurveCtx& ctx,
                           const curve::Point& role_private,
                           std::span<const std::string> keywords) {
  return Trapdoor{
      curve::mul(ctx, role_private, keyword_set_scalar(ctx, keywords))};
}

bool peks_test(const curve::CurveCtx& ctx, const PeksCiphertext& ct,
               const Trapdoor& td) {
  return tag_matches(ct, curve::pairing(ctx, td.td, ct.a));
}

std::vector<uint8_t> peks_test_batch(const curve::CurveCtx& ctx,
                                     std::span<const PeksCiphertext> cts,
                                     const Trapdoor& td,
                                     par::ThreadPool* pool) {
  return TrapdoorPrecomp(ctx, td).test_batch(cts, pool);
}

TrapdoorPrecomp::TrapdoorPrecomp(const curve::CurveCtx& ctx,
                                 const Trapdoor& td)
    : ctx_(&ctx), td_(td), pre_(ctx, td.td) {}

bool TrapdoorPrecomp::test(const PeksCiphertext& ct) const {
  return tag_matches(ct, pre_.pairing_with(ct.a));
}

field::Fp2 TrapdoorPrecomp::miller(const PeksCiphertext& ct) const {
  return pre_.miller_with(ct.a);
}

bool TrapdoorPrecomp::matches(const PeksCiphertext& ct, const curve::Gt& g) {
  return tag_matches(ct, g);
}

std::vector<uint8_t> TrapdoorPrecomp::test_batch(
    std::span<const PeksCiphertext> cts, par::ThreadPool* pool) const {
  std::vector<field::Fp2> millers(cts.size());
  auto run = [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) millers[i] = pre_.miller_with(cts[i].a);
  };
  if (pool != nullptr) {
    pool->for_shards(cts.size(), run);
  } else {
    par::serial_shards(cts.size(), run);
  }
  std::vector<curve::Gt> gs = curve::final_exp_batch(*ctx_, millers, pool);
  std::vector<uint8_t> out(cts.size());
  for (size_t i = 0; i < cts.size(); ++i) {
    out[i] = tag_matches(cts[i], gs[i]) ? 1 : 0;
  }
  return out;
}

Bytes PeksCiphertext::to_bytes() const {
  io::Writer w;
  w.u8(static_cast<uint8_t>(variant));
  w.bytes(curve::point_to_bytes(a));
  w.bytes(b);
  w.bytes(check);
  return w.take();
}

PeksCiphertext PeksCiphertext::from_bytes(const curve::CurveCtx& ctx,
                                          BytesView data) {
  io::Reader r(data);
  PeksCiphertext ct;
  uint8_t v = r.u8();
  if (v > 1) throw std::invalid_argument("PeksCiphertext: bad variant");
  ct.variant = static_cast<Variant>(v);
  ct.a = curve::point_from_bytes(ctx, r.bytes());
  ct.b = r.bytes();
  ct.check = r.bytes();
  return ct;
}

size_t PeksCiphertext::size() const {
  // Mirrors to_bytes() arithmetically: u8 variant, then three u32-length-
  // prefixed fields — the 129-byte point encoding (1 byte if at infinity),
  // the tag and the kRandomized check value.
  const size_t point_len = a.infinity ? 1 : 1 + 2 * 64;
  return 1 + (4 + point_len) + (4 + b.size()) + (4 + check.size());
}

PeksCiphertext PeksEncryptor::encrypt(std::string_view role_id,
                                      std::string_view kw, RandomSource& rng,
                                      Variant variant) {
  return tag_from_base(*pub_.ctx, role_base(role_id),
                       keyword_scalar(*pub_.ctx, kw), rng, variant);
}

PeksCiphertext PeksEncryptor::encrypt_set(std::string_view role_id,
                                          std::span<const std::string> keywords,
                                          RandomSource& rng, Variant variant) {
  return tag_from_base(*pub_.ctx, role_base(role_id),
                       keyword_set_scalar(*pub_.ctx, keywords), rng, variant);
}

void PeksEncryptor::evict(std::string_view role_id) {
  auto it = cache_.find(role_id);
  if (it != cache_.end()) cache_.erase(it);
}

const curve::Gt& PeksEncryptor::role_base(std::string_view role_id) {
  auto it = cache_.find(role_id);
  if (it == cache_.end()) {
    it = cache_.emplace(std::string(role_id), role_pairing_base(pub_, role_id))
             .first;
  }
  return it->second;
}

Bytes Trapdoor::to_bytes() const { return curve::point_to_bytes(td); }

Trapdoor Trapdoor::from_bytes(const curve::CurveCtx& ctx, BytesView b) {
  return Trapdoor{curve::point_from_bytes(ctx, b)};
}

}  // namespace hcpp::peks
