#include "src/peks/peks.h"

#include <stdexcept>

#include "src/common/serialize.h"
#include "src/hash/hkdf.h"
#include "src/hash/sha256.h"

namespace hcpp::peks {

namespace {

constexpr size_t kTagLen = 32;

Bytes h3(const curve::Gt& g) {
  return hash::hkdf(g.to_bytes(), {}, to_bytes("hcpp-peks-h3"), kTagLen);
}

mp::U512 keyword_scalar(const curve::CurveCtx& ctx, std::string_view kw) {
  return curve::hash_to_scalar(ctx, to_bytes(kw), "hcpp-peks-h2");
}

// Folds a keyword set into one scalar, order-independently.
mp::U512 keyword_set_scalar(const curve::CurveCtx& ctx,
                            std::span<const std::string> keywords) {
  if (keywords.empty()) {
    throw std::invalid_argument("peks: empty keyword set");
  }
  mp::U512 h;  // zero
  for (const std::string& kw : keywords) {
    h = mp::add_mod(h, keyword_scalar(ctx, kw), ctx.q);
  }
  if (h.is_zero()) h = mp::U512::from_u64(1);  // vanishing sums are degenerate
  return h;
}

PeksCiphertext encrypt_with_scalar(const ibc::PublicParams& pub,
                                   std::string_view role_id, const mp::U512& h,
                                   RandomSource& rng, Variant variant) {
  const curve::CurveCtx& ctx = *pub.ctx;
  mp::U512 sigma = curve::random_scalar(ctx, rng);
  curve::Point pk_r = ibc::Domain::public_key(ctx, role_id);
  PeksCiphertext ct;
  ct.variant = variant;
  ct.a = curve::mul_generator(ctx, sigma);
  curve::Gt g = curve::pairing(ctx, pk_r, pub.p_pub)
                    .pow(mp::mul_mod(sigma, h, ctx.q));
  if (variant == Variant::kBdop) {
    ct.b = h3(g);
  } else {
    Bytes r_val = rng.bytes(kTagLen);
    ct.b = xor_bytes(r_val, h3(g));
    ct.check = hash::sha256_bytes(r_val);
  }
  return ct;
}

}  // namespace

PeksCiphertext peks_encrypt(const ibc::PublicParams& pub,
                            std::string_view role_id, std::string_view kw,
                            RandomSource& rng, Variant variant) {
  return encrypt_with_scalar(pub, role_id, keyword_scalar(*pub.ctx, kw), rng,
                             variant);
}

Trapdoor peks_trapdoor(const curve::CurveCtx& ctx,
                       const curve::Point& role_private, std::string_view kw) {
  return Trapdoor{curve::mul(ctx, role_private, keyword_scalar(ctx, kw))};
}

PeksCiphertext peks_encrypt_set(const ibc::PublicParams& pub,
                                std::string_view role_id,
                                std::span<const std::string> keywords,
                                RandomSource& rng, Variant variant) {
  return encrypt_with_scalar(pub, role_id,
                             keyword_set_scalar(*pub.ctx, keywords), rng,
                             variant);
}

Trapdoor peks_trapdoor_set(const curve::CurveCtx& ctx,
                           const curve::Point& role_private,
                           std::span<const std::string> keywords) {
  return Trapdoor{
      curve::mul(ctx, role_private, keyword_set_scalar(ctx, keywords))};
}

bool peks_test(const curve::CurveCtx& ctx, const PeksCiphertext& ct,
               const Trapdoor& td) {
  Bytes mask = h3(curve::pairing(ctx, td.td, ct.a));
  if (ct.variant == Variant::kBdop) {
    return ct_equal(mask, ct.b);
  }
  if (ct.b.size() != mask.size()) return false;
  Bytes r_val = xor_bytes(ct.b, mask);
  return ct_equal(hash::sha256_bytes(r_val), ct.check);
}

Bytes PeksCiphertext::to_bytes() const {
  io::Writer w;
  w.u8(static_cast<uint8_t>(variant));
  w.bytes(curve::point_to_bytes(a));
  w.bytes(b);
  w.bytes(check);
  return w.take();
}

PeksCiphertext PeksCiphertext::from_bytes(const curve::CurveCtx& ctx,
                                          BytesView data) {
  io::Reader r(data);
  PeksCiphertext ct;
  uint8_t v = r.u8();
  if (v > 1) throw std::invalid_argument("PeksCiphertext: bad variant");
  ct.variant = static_cast<Variant>(v);
  ct.a = curve::point_from_bytes(ctx, r.bytes());
  ct.b = r.bytes();
  ct.check = r.bytes();
  return ct;
}

size_t PeksCiphertext::size() const { return to_bytes().size(); }

Bytes Trapdoor::to_bytes() const { return curve::point_to_bytes(td); }

Trapdoor Trapdoor::from_bytes(const curve::CurveCtx& ctx, BytesView b) {
  return Trapdoor{curve::point_from_bytes(ctx, b)};
}

}  // namespace hcpp::peks
