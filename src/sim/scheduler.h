// PRG-randomized upload scheduler — the §VI.C countermeasure against timing
// analysis ("employ some scheduling technique to randomize the uploads and
// minimize the correlation; a PRF or PRG with a random seed would suffice").
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/random.h"

namespace hcpp::sim {

class UploadScheduler {
 public:
  /// Uploads are delayed by a uniform draw from [min_delay, max_delay] ns.
  UploadScheduler(RandomSource& rng, uint64_t min_delay_ns,
                  uint64_t max_delay_ns);

  /// Maps a triggering event time (e.g. returning from the hospital) to the
  /// scheduled upload time.
  [[nodiscard]] uint64_t schedule(uint64_t event_time_ns);

 private:
  RandomSource* rng_;
  uint64_t min_delay_ns_;
  uint64_t max_delay_ns_;
};

/// Pearson correlation between two equally long series — the measure the
/// timing-analysis benchmark (E6) reports for event vs. upload times.
double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y);

}  // namespace hcpp::sim
