#include "src/sim/onion.h"

#include <stdexcept>

#include "src/cipher/aead.h"
#include "src/common/serialize.h"

namespace hcpp::sim {

OnionNetwork::OnionNetwork(Network& net, const ibc::Domain& domain,
                           size_t n_relays)
    : net_(&net), ctx_(&domain.ctx()), pub_(domain.pub()) {
  if (n_relays == 0) {
    throw std::invalid_argument("OnionNetwork: need at least one relay");
  }
  relays_.reserve(n_relays);
  for (size_t i = 0; i < n_relays; ++i) {
    std::string name = "relay-" + std::to_string(i);
    relays_.push_back({name, domain.extract(name)});
    observations_.push_back({name, {}});
  }
}

void OnionNetwork::clear_observations() {
  for (RelayObservation& obs : observations_) obs.forwarded.clear();
  last_origin_seen_.clear();
}

Bytes OnionNetwork::round_trip(const std::string& src, const std::string& dst,
                               BytesView request,
                               const std::function<Bytes(BytesView)>& service,
                               RandomSource& rng, size_t hops) {
  if (hops == 0 || hops > relays_.size()) {
    throw std::invalid_argument("OnionNetwork: bad hop count");
  }
  // Pick a fresh circuit: a random selection of distinct relays.
  std::vector<size_t> circuit;
  while (circuit.size() < hops) {
    size_t pick = static_cast<size_t>(rng.u64() % relays_.size());
    bool dup = false;
    for (size_t existing : circuit) dup |= (existing == pick);
    if (!dup) circuit.push_back(pick);
  }
  // Hop keys and layered request: innermost layer is the plain request; the
  // layer for relay i carries (hop key header via IBE, next hop name,
  // payload AEAD-encrypted under the hop key).
  std::vector<Bytes> hop_keys(hops);
  for (Bytes& k : hop_keys) k = rng.bytes(32);
  Bytes onion(request.begin(), request.end());
  for (size_t i = hops; i-- > 0;) {
    const Relay& relay = relays_[circuit[i]];
    std::string next = (i + 1 == hops) ? dst : relays_[circuit[i + 1]].name;
    io::Writer layer;
    ibc::IbeCiphertext header =
        ibc::ibe_encrypt(pub_, relay.name, hop_keys[i], rng);
    layer.bytes(header.to_bytes());
    layer.str(next);
    layer.bytes(cipher::aead_encrypt(hop_keys[i], onion, {}, rng));
    onion = layer.take();
  }
  // Forward path.
  std::string prev = src;
  for (size_t i = 0; i < hops; ++i) {
    const Relay& relay = relays_[circuit[i]];
    net_->transmit(prev, relay.name, onion.size(), "onion");
    io::Reader r(onion);
    ibc::IbeCiphertext header =
        ibc::IbeCiphertext::from_bytes(*ctx_, r.bytes());
    Bytes hop_key = ibc::ibe_decrypt(*ctx_, relay.private_key, header);
    std::string next = r.str();
    onion = cipher::aead_decrypt(hop_key, r.bytes(), {});
    observations_[circuit[i]].forwarded.emplace_back(prev, next);
    prev = relay.name;
  }
  // Exit relay delivers to the service.
  net_->transmit(prev, dst, onion.size(), "onion");
  last_origin_seen_ = prev;
  Bytes response = service(onion);
  // Response path: each relay adds a layer with its hop key; the client,
  // knowing all hop keys, peels them all.
  Bytes back = response;
  std::string from = dst;
  for (size_t i = hops; i-- > 0;) {
    const Relay& relay = relays_[circuit[i]];
    net_->transmit(from, relay.name, back.size(), "onion");
    back = cipher::aead_encrypt(hop_keys[i], back, {}, rng);
    from = relay.name;
  }
  net_->transmit(from, src, back.size(), "onion");
  for (size_t i = 0; i < hops; ++i) {
    back = cipher::aead_decrypt(hop_keys[i], back, {});
  }
  return back;
}

}  // namespace hcpp::sim
