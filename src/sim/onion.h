// Tor-style onion routing overlay (§VI.B countermeasure, substituting a
// from-scratch 3-hop circuit for the real Tor network). The client wraps the
// request in one AEAD layer per relay; each relay learns only its adjacent
// hops. Hop keys are delivered in per-relay IBE headers, so relays need no
// prior state. Relay observations are recorded so the anonymity benchmark
// (E6) can measure exactly what each vantage point links.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/ibc/ibe.h"
#include "src/sim/network.h"

namespace hcpp::sim {

/// What one relay could log: the (previous hop, next hop) pairs it forwarded.
struct RelayObservation {
  std::string relay;
  std::vector<std::pair<std::string, std::string>> forwarded;
};

class OnionNetwork {
 public:
  /// Creates `n_relays` relays keyed in the given IBC domain (the A-server's
  /// domain in HCPP deployments).
  OnionNetwork(Network& net, const ibc::Domain& domain, size_t n_relays);

  /// Routes `request` from `src` to the service `dst` through a fresh
  /// `hops`-relay circuit and routes the response back along it. The service
  /// observes only the exit relay as the origin.
  Bytes round_trip(const std::string& src, const std::string& dst,
                   BytesView request,
                   const std::function<Bytes(BytesView)>& service,
                   RandomSource& rng, size_t hops = 3);

  [[nodiscard]] const std::vector<RelayObservation>& observations()
      const noexcept {
    return observations_;
  }
  /// The origin name the destination service saw on the last round trip.
  [[nodiscard]] const std::string& last_origin_seen() const noexcept {
    return last_origin_seen_;
  }
  void clear_observations();

  [[nodiscard]] size_t relay_count() const noexcept { return relays_.size(); }

 private:
  struct Relay {
    std::string name;
    curve::Point private_key;  // Γ_relay
  };

  Network* net_;
  const curve::CurveCtx* ctx_;
  ibc::PublicParams pub_;
  std::vector<Relay> relays_;
  std::vector<RelayObservation> observations_;
  std::string last_origin_seen_;
};

}  // namespace hcpp::sim
