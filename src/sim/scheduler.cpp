#include "src/sim/scheduler.h"

#include <cmath>
#include <stdexcept>

namespace hcpp::sim {

UploadScheduler::UploadScheduler(RandomSource& rng, uint64_t min_delay_ns,
                                 uint64_t max_delay_ns)
    : rng_(&rng), min_delay_ns_(min_delay_ns), max_delay_ns_(max_delay_ns) {
  if (max_delay_ns_ < min_delay_ns_) {
    throw std::invalid_argument("UploadScheduler: max < min");
  }
}

uint64_t UploadScheduler::schedule(uint64_t event_time_ns) {
  uint64_t span = max_delay_ns_ - min_delay_ns_;
  uint64_t jitter = (span == 0) ? 0 : rng_->u64() % (span + 1);
  return event_time_ns + min_delay_ns_ + jitter;
}

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("pearson_correlation: bad input");
  }
  double n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  double mx = sx / n, my = sy / n;
  double num = 0, dx = 0, dy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - mx) * (y[i] - my);
    dx += (x[i] - mx) * (x[i] - mx);
    dy += (y[i] - my) * (y[i] - my);
  }
  if (dx == 0 || dy == 0) return 0.0;
  return num / std::sqrt(dx * dy);
}

}  // namespace hcpp::sim
