// Simulated monotonic clock. All protocol timestamps (the paper's t1…t14)
// come from here, which makes replay-window tests deterministic.
#pragma once

#include <cstdint>

namespace hcpp::sim {

class Clock {
 public:
  /// Current simulated time in nanoseconds.
  [[nodiscard]] uint64_t now() const noexcept { return now_ns_; }

  void advance(uint64_t delta_ns) noexcept { now_ns_ += delta_ns; }
  void set(uint64_t t_ns) noexcept { now_ns_ = t_ns; }

 private:
  uint64_t now_ns_ = 1'000'000'000;  // start at t = 1 s, not 0
};

}  // namespace hcpp::sim
