#include "src/sim/transport.h"

namespace hcpp::sim {

DeliveryStats Transport::stats(const std::string& protocol) const {
  auto it = per_protocol_.find(protocol);
  return it == per_protocol_.end() ? DeliveryStats{} : it->second;
}

void Transport::reset_stats() {
  per_protocol_.clear();
  total_ = DeliveryStats{};
}

void Transport::reset_idempotency_cache() {
  idem_.clear();
  idem_order_.clear();
}

void Transport::remember(const IdemKey& key, CacheEntry entry) {
  auto [it, inserted] = idem_.emplace(key, std::move(entry));
  (void)it;
  if (!inserted) return;
  idem_order_.push_back(key);
  while (idem_order_.size() > kMaxIdemEntries) {
    idem_.erase(idem_order_.front());
    idem_order_.pop_front();
  }
}

uint64_t Transport::backoff_ns(uint32_t n) {
  double d = static_cast<double>(policy_.base_backoff_ns) *
             std::pow(policy_.multiplier, static_cast<double>(n - 1));
  d = std::min(d, static_cast<double>(policy_.max_backoff_ns));
  if (policy_.jitter > 0) {
    double u = static_cast<double>(net_->fault_u64() >> 11) * 0x1.0p-53;
    d *= 1.0 + policy_.jitter * (2.0 * u - 1.0);
  }
  return static_cast<uint64_t>(d);
}

void Transport::bump(DeliveryStats& ps, uint64_t DeliveryStats::* field,
                     const char* metric) {
  ps.*field += 1;
  total_.*field += 1;
  obs::count(metric);
}

}  // namespace hcpp::sim
