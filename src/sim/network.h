// Deterministic network substrate. The paper deploys HCPP over existing
// wireless infrastructure (cell phones, hospital LANs); we substitute an
// in-process simulator that charges each message its serialized size and a
// configurable latency, and keeps per-protocol round/byte counters — the
// quantities §V.B.2 analyses.
//
// It also provides the two receiver-side guards every HCPP message needs:
// a freshness window for the timestamps t1…t14 and a replay cache keyed by
// message MAC (§IV.B cites [26] for replay prevention).
//
// Reliability model: an optional seeded FaultPlan turns the substrate
// adversarial — per-link drop/duplicate/corrupt probabilities, latency
// jitter, partition windows and per-node downtime schedules, all driven by
// one ChaCha20 DRBG so a given seed replays the exact same fault sequence.
// transmit() reports the delivery verdict; sim::Transport (transport.h)
// layers timeouts, retries and idempotency on top of it.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cipher/drbg.h"
#include "src/common/bytes.h"
#include "src/sim/clock.h"

namespace hcpp::sim {

class Transport;

struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

struct LinkModel {
  uint64_t base_latency_ns = 5'000'000;  // 5 ms
  double per_byte_ns = 80.0;             // ~100 Mbit/s
};

/// What happened to one message. Anything but kDropped reached the receiver;
/// kCorrupted arrives but fails its MAC/signature check there; kDuplicated
/// arrives twice (the receiver-side idempotency layer must suppress the
/// second copy's effects).
enum class Delivery : uint8_t {
  kDelivered,
  kDuplicated,
  kCorrupted,
  kDropped,
};

/// Per-link fault probabilities (independent draws per message) and latency
/// jitter. Probabilities are cumulative-checked in the order drop →
/// duplicate → corrupt, so their sum must stay ≤ 1.
struct LinkFaults {
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  uint64_t jitter_ns = 0;  // uniform extra latency in [0, jitter_ns]
};

/// Bidirectional partition between two nodes over [from_ns, until_ns).
struct PartitionWindow {
  std::string a;
  std::string b;
  uint64_t from_ns = 0;
  uint64_t until_ns = UINT64_MAX;
};

/// Node outage over [from_ns, until_ns): the node neither sends nor
/// receives.
struct DowntimeWindow {
  uint64_t from_ns = 0;
  uint64_t until_ns = UINT64_MAX;
};

/// The full deterministic fault schedule. Replaying the same plan (same
/// seed) against the same workload reproduces every verdict exactly.
struct FaultPlan {
  uint64_t seed = 1;
  LinkFaults default_faults;
  std::map<std::pair<std::string, std::string>, LinkFaults> per_link;
  std::vector<PartitionWindow> partitions;
  std::map<std::string, std::vector<DowntimeWindow>> downtime;
};

class Network {
 public:
  Network();
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Clock& clock() noexcept { return clock_; }
  const Clock& clock() const noexcept { return clock_; }

  /// Configures the link model for a (from, to) pair; falls back to the
  /// default model for unconfigured links.
  void set_link(const std::string& from, const std::string& to,
                LinkModel model);
  void set_default_link(LinkModel model) noexcept { default_link_ = model; }

  /// Charges one message — advances the clock by the link latency (plus any
  /// fault-plan jitter) and accumulates per-protocol statistics — and
  /// returns the delivery verdict. Without a fault plan every message is
  /// kDelivered (unless a node was downed via set_node_up), which preserves
  /// the historical always-succeeds behavior.
  Delivery transmit(const std::string& from, const std::string& to,
                    size_t bytes, const std::string& protocol);

  /// Installs (and seeds) / clears the fault schedule.
  void set_fault_plan(FaultPlan plan);
  void clear_fault_plan();
  [[nodiscard]] bool has_fault_plan() const noexcept {
    return plan_ != nullptr;
  }

  /// Manual outage control (cluster failover tests, §VI.D DoS). Composes
  /// with any plan-scheduled downtime: a node is up only if both agree.
  void set_node_up(const std::string& id, bool up);
  [[nodiscard]] bool node_up(const std::string& id) const;

  /// Dynamic partition control. Plan partitions are fixed when the plan is
  /// installed; these compose with them and can be cut (and healed) at the
  /// current clock time — what the ledger chaos tests need to sever a link
  /// mid-anchoring. Works with or without a fault plan.
  void add_partition(PartitionWindow window);
  void clear_partitions() noexcept { dynamic_partitions_.clear(); }

  /// One draw from the fault DRBG — lets the transport's backoff jitter
  /// share the plan's deterministic stream.
  [[nodiscard]] uint64_t fault_u64();

  /// Lazily constructed request/response transport bound to this network.
  [[nodiscard]] Transport& transport();

  [[nodiscard]] TrafficStats stats(const std::string& protocol) const;
  [[nodiscard]] TrafficStats total() const noexcept { return total_; }
  void reset_stats();

  /// Receiver-side freshness + replay guard: returns true (and records the
  /// tag) iff `timestamp` is within ±window of now and the tag is new for
  /// this receiver. Tags whose timestamps have aged out of the freshness
  /// window are pruned — a replay of such an old message is already
  /// rejected by the freshness check, so the cache stays bounded by the
  /// traffic of one window rather than growing forever.
  bool accept_fresh(const std::string& receiver, BytesView tag,
                    uint64_t timestamp_ns, uint64_t window_ns);

  /// Live tags currently retained for `receiver` (pruning observability).
  [[nodiscard]] size_t replay_cache_size(const std::string& receiver) const;

 private:
  [[nodiscard]] bool node_up_at(const std::string& id,
                                uint64_t now) const;
  [[nodiscard]] bool partitioned_at(const std::string& a,
                                    const std::string& b,
                                    uint64_t now) const;
  [[nodiscard]] const LinkFaults& faults_for(const std::string& from,
                                             const std::string& to) const;

  Clock clock_;
  LinkModel default_link_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  std::map<std::string, TrafficStats> per_protocol_;
  TrafficStats total_;
  std::map<std::string, std::map<Bytes, uint64_t>> replay_seen_;
  std::unique_ptr<FaultPlan> plan_;
  std::vector<PartitionWindow> dynamic_partitions_;
  cipher::Drbg fault_rng_;
  std::set<std::string> manually_down_;
  std::unique_ptr<Transport> transport_;
};

}  // namespace hcpp::sim
