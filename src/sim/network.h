// Deterministic network substrate. The paper deploys HCPP over existing
// wireless infrastructure (cell phones, hospital LANs); we substitute an
// in-process simulator that charges each message its serialized size and a
// configurable latency, and keeps per-protocol round/byte counters — the
// quantities §V.B.2 analyses.
//
// It also provides the two receiver-side guards every HCPP message needs:
// a freshness window for the timestamps t1…t14 and a replay cache keyed by
// message MAC (§IV.B cites [26] for replay prevention).
#pragma once

#include <map>
#include <set>
#include <string>

#include "src/common/bytes.h"
#include "src/sim/clock.h"

namespace hcpp::sim {

struct TrafficStats {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

struct LinkModel {
  uint64_t base_latency_ns = 5'000'000;  // 5 ms
  double per_byte_ns = 80.0;             // ~100 Mbit/s
};

class Network {
 public:
  Network() = default;

  Clock& clock() noexcept { return clock_; }
  const Clock& clock() const noexcept { return clock_; }

  /// Configures the link model for a (from, to) pair; falls back to the
  /// default model for unconfigured links.
  void set_link(const std::string& from, const std::string& to,
                LinkModel model);
  void set_default_link(LinkModel model) noexcept { default_link_ = model; }

  /// Charges one message: advances the clock by the link latency and
  /// accumulates per-protocol statistics.
  void transmit(const std::string& from, const std::string& to, size_t bytes,
                const std::string& protocol);

  [[nodiscard]] TrafficStats stats(const std::string& protocol) const;
  [[nodiscard]] TrafficStats total() const noexcept { return total_; }
  void reset_stats();

  /// Receiver-side freshness + replay guard: returns true (and records the
  /// tag) iff `timestamp` is within ±window of now and the tag is new for
  /// this receiver.
  bool accept_fresh(const std::string& receiver, BytesView tag,
                    uint64_t timestamp_ns, uint64_t window_ns);

 private:
  Clock clock_;
  LinkModel default_link_;
  std::map<std::pair<std::string, std::string>, LinkModel> links_;
  std::map<std::string, TrafficStats> per_protocol_;
  TrafficStats total_;
  std::map<std::string, std::set<Bytes>> replay_seen_;
};

}  // namespace hcpp::sim
