// Reliable request/response channel over the faulty Network substrate.
//
// One Transport::request models a client/server exchange: the request leg is
// charged on the network (and may be dropped, duplicated or corrupted by the
// fault plan), the server handler runs at most once per idempotency key, and
// the response leg travels back under the same faults. Failed attempts cost
// the client a timeout, then retry after truncated exponential backoff with
// DRBG-driven jitter, up to the policy's attempt budget.
//
// Idempotency: the key (in HCPP, the request MAC — unique because it covers
// the timestamped body) names the exchange. Retries and network-duplicated
// deliveries of the same key return the cached response instead of
// re-executing the handler, so server-side effects happen exactly once even
// though the wire saw the request several times. This complements the
// receiver replay cache (network.h), which would otherwise make honest
// retries indistinguishable from attacks.
//
// Everything is deterministic: the same fault-plan seed replays the same
// verdicts, the same backoff jitter, and therefore the same per-protocol
// DeliveryStats.
#pragma once

#include <cmath>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "src/common/bytes.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/network.h"

namespace hcpp::sim {

struct RetryPolicy {
  uint32_t max_attempts = 8;
  uint64_t timeout_ns = 50'000'000;       // per-attempt wait before giving up
  uint64_t base_backoff_ns = 20'000'000;  // delay before the first retry
  uint64_t max_backoff_ns = 1'000'000'000;
  double multiplier = 2.0;
  double jitter = 0.2;  // backoff scaled by 1 ± jitter, drawn from the DRBG
};

/// Per-protocol delivery accounting. Equality-comparable so chaos tests can
/// assert that two runs with the same seed produce the identical trace.
struct DeliveryStats {
  uint64_t requests = 0;               // request() calls
  uint64_t attempts = 0;               // wire attempts (first tries + retries)
  uint64_t retries = 0;                // attempts after the first
  uint64_t succeeded = 0;              // requests that returned a response
  uint64_t rejected = 0;               // server authoritatively refused
  uint64_t gave_up = 0;                // attempt budget exhausted
  uint64_t duplicates_suppressed = 0;  // handler executions saved by the key
  uint64_t responses_lost = 0;         // response legs dropped or corrupted
  bool operator==(const DeliveryStats&) const = default;
};

enum class CallStatus : uint8_t {
  kOk,        // response delivered and returned
  kRejected,  // server received the request and refused it (permanent)
  kExhausted  // retry budget spent without a delivered response (transient)
};

template <typename Resp>
struct CallOutcome {
  CallStatus status = CallStatus::kExhausted;
  std::optional<Resp> response;
  uint32_t attempts = 0;

  [[nodiscard]] bool ok() const noexcept { return status == CallStatus::kOk; }
};

class Transport {
 public:
  explicit Transport(Network& net, RetryPolicy policy = {})
      : net_(&net), policy_(policy) {}

  [[nodiscard]] RetryPolicy& policy() noexcept { return policy_; }
  void set_policy(RetryPolicy policy) noexcept { policy_ = policy; }

  [[nodiscard]] DeliveryStats stats(const std::string& protocol) const;
  [[nodiscard]] DeliveryStats total() const noexcept { return total_; }
  void reset_stats();
  /// Forgets cached responses (fresh server state between scenarios).
  void reset_idempotency_cache();

  /// One request/response exchange with retries. `handler` is the in-process
  /// server endpoint: it returns the typed response, or nullopt for an
  /// authoritative rejection (no retry). `response_size` prices the response
  /// leg; return 0 for flows whose acknowledgement is not separately charged
  /// (matching the historical cost accounting for one-message uploads).
  template <typename Resp>
  CallOutcome<Resp> request(
      const std::string& from, const std::string& to, size_t request_bytes,
      BytesView idempotency_key, const std::string& protocol,
      const std::function<std::optional<Resp>()>& handler,
      const std::function<size_t(const Resp&)>& response_size) {
    obs::Span span("transport:", protocol);
    const uint64_t t0 = net_->clock().now();
    // Sim-clock time this exchange cost end to end (faults, backoff and
    // timeouts included), total and per protocol.
    auto observe_latency = [&] {
      if (obs::recording()) {
        double elapsed = static_cast<double>(net_->clock().now() - t0);
        obs::observe(obs::kTransportRequestNs, elapsed);
        obs::observe(std::string(obs::kTransportRequestNs) + "." + protocol,
                     elapsed);
      }
    };
    DeliveryStats& ps = per_protocol_[protocol];
    bump(ps, &DeliveryStats::requests, obs::kTransportRequests);
    IdemKey key{to, Bytes(idempotency_key.begin(), idempotency_key.end())};

    for (uint32_t attempt = 1; attempt <= policy_.max_attempts; ++attempt) {
      if (attempt > 1) {
        bump(ps, &DeliveryStats::retries, obs::kTransportRetries);
        net_->clock().advance(backoff_ns(attempt - 1));
      }
      bump(ps, &DeliveryStats::attempts, obs::kTransportAttempts);

      Delivery req_leg = net_->transmit(from, to, request_bytes, protocol);
      if (req_leg == Delivery::kDropped || req_leg == Delivery::kCorrupted) {
        // Lost in flight, or arrived mangled and failed the receiver's MAC
        // check — either way no response comes back before the timeout.
        net_->clock().advance(policy_.timeout_ns);
        continue;
      }

      // Delivered: execute at most once per idempotency key.
      std::optional<Resp> resp;
      auto it = idem_.find(key);
      if (it != idem_.end()) {
        bump(ps, &DeliveryStats::duplicates_suppressed,
             obs::kTransportDupSuppressed);
        if (it->second.executed != nullptr) {
          resp = *std::static_pointer_cast<Resp>(it->second.executed);
        }
      } else {
        resp = handler();
        CacheEntry entry;
        if (resp.has_value()) entry.executed = std::make_shared<Resp>(*resp);
        remember(key, std::move(entry));
      }
      if (req_leg == Delivery::kDuplicated) {
        // The spurious second copy hits the idempotency layer and dies.
        bump(ps, &DeliveryStats::duplicates_suppressed,
             obs::kTransportDupSuppressed);
      }

      if (!resp.has_value()) {
        bump(ps, &DeliveryStats::rejected, obs::kTransportRejected);
        observe_latency();
        return {CallStatus::kRejected, std::nullopt, attempt};
      }

      size_t resp_bytes = response_size(*resp);
      if (resp_bytes > 0) {
        Delivery resp_leg = net_->transmit(to, from, resp_bytes, protocol);
        if (resp_leg == Delivery::kDropped ||
            resp_leg == Delivery::kCorrupted) {
          bump(ps, &DeliveryStats::responses_lost,
               obs::kTransportResponsesLost);
          net_->clock().advance(policy_.timeout_ns);
          continue;  // the cached response answers the retry
        }
      }
      bump(ps, &DeliveryStats::succeeded, obs::kTransportSucceeded);
      observe_latency();
      return {CallStatus::kOk, std::move(resp), attempt};
    }
    bump(ps, &DeliveryStats::gave_up, obs::kTransportGaveUp);
    observe_latency();
    return {CallStatus::kExhausted, std::nullopt, policy_.max_attempts};
  }

  /// The nth retry's backoff (n = 1 for the first retry): truncated
  /// exponential with DRBG jitter from the network's fault stream.
  [[nodiscard]] uint64_t backoff_ns(uint32_t n);

 private:
  using IdemKey = std::pair<std::string, Bytes>;
  struct CacheEntry {
    std::shared_ptr<void> executed;  // typed response; nullptr = rejection
  };

  /// Oldest-first eviction keeps the cache bounded: an entry only matters
  /// for the retry window of its own exchange, never forever.
  static constexpr size_t kMaxIdemEntries = 4096;

  /// Advances one DeliveryStats field (per-protocol + total) and mirrors it
  /// into the attached registry under `metric`.
  void bump(DeliveryStats& ps, uint64_t DeliveryStats::* field,
            const char* metric);
  void remember(const IdemKey& key, CacheEntry entry);

  Network* net_;
  RetryPolicy policy_;
  std::map<std::string, DeliveryStats> per_protocol_;
  DeliveryStats total_;
  std::map<IdemKey, CacheEntry> idem_;
  std::deque<IdemKey> idem_order_;
};

}  // namespace hcpp::sim
