#include "src/sim/network.h"

#include "src/obs/metrics.h"
#include "src/sim/transport.h"

namespace hcpp::sim {

namespace {
/// Uniform double in [0, 1) from one 64-bit draw (53 mantissa bits).
double unit_uniform(uint64_t u) {
  return static_cast<double>(u >> 11) * 0x1.0p-53;
}
}  // namespace

Network::Network() : fault_rng_(to_bytes("hcpp-network-no-fault-plan")) {}

Network::~Network() = default;

void Network::set_link(const std::string& from, const std::string& to,
                       LinkModel model) {
  links_[{from, to}] = model;
}

void Network::set_fault_plan(FaultPlan plan) {
  Bytes seed = to_bytes("hcpp-fault-plan");
  for (int i = 0; i < 8; ++i) {
    seed.push_back(static_cast<uint8_t>(plan.seed >> (8 * i)));
  }
  fault_rng_ = cipher::Drbg(seed);
  plan_ = std::make_unique<FaultPlan>(std::move(plan));
}

void Network::clear_fault_plan() { plan_.reset(); }

void Network::set_node_up(const std::string& id, bool up) {
  if (up) {
    manually_down_.erase(id);
  } else {
    manually_down_.insert(id);
  }
}

bool Network::node_up(const std::string& id) const {
  return node_up_at(id, clock_.now());
}

bool Network::node_up_at(const std::string& id, uint64_t now) const {
  if (manually_down_.count(id) != 0) return false;
  if (plan_ == nullptr) return true;
  auto it = plan_->downtime.find(id);
  if (it == plan_->downtime.end()) return true;
  for (const DowntimeWindow& w : it->second) {
    if (now >= w.from_ns && now < w.until_ns) return false;
  }
  return true;
}

void Network::add_partition(PartitionWindow window) {
  dynamic_partitions_.push_back(std::move(window));
}

bool Network::partitioned_at(const std::string& a, const std::string& b,
                             uint64_t now) const {
  auto covers = [&](const PartitionWindow& w) {
    bool match = (w.a == a && w.b == b) || (w.a == b && w.b == a);
    return match && now >= w.from_ns && now < w.until_ns;
  };
  for (const PartitionWindow& w : dynamic_partitions_) {
    if (covers(w)) return true;
  }
  if (plan_ == nullptr) return false;
  for (const PartitionWindow& w : plan_->partitions) {
    if (covers(w)) return true;
  }
  return false;
}

const LinkFaults& Network::faults_for(const std::string& from,
                                      const std::string& to) const {
  auto it = plan_->per_link.find({from, to});
  return it == plan_->per_link.end() ? plan_->default_faults : it->second;
}

uint64_t Network::fault_u64() { return fault_rng_.u64(); }

Transport& Network::transport() {
  if (transport_ == nullptr) transport_ = std::make_unique<Transport>(*this);
  return *transport_;
}

Delivery Network::transmit(const std::string& from, const std::string& to,
                           size_t bytes, const std::string& protocol) {
  LinkModel model = default_link_;
  auto it = links_.find({from, to});
  if (it != links_.end()) model = it->second;
  uint64_t latency =
      model.base_latency_ns +
      static_cast<uint64_t>(model.per_byte_ns * static_cast<double>(bytes));

  Delivery verdict = Delivery::kDelivered;
  uint64_t now = clock_.now();
  if (!node_up_at(from, now) || !node_up_at(to, now) ||
      partitioned_at(from, to, now)) {
    verdict = Delivery::kDropped;
    obs::count(obs::kNetUnreachable);
  } else if (plan_ != nullptr) {
    const LinkFaults& f = faults_for(from, to);
    if (f.jitter_ns > 0) latency += fault_rng_.u64() % (f.jitter_ns + 1);
    if (f.drop > 0 || f.duplicate > 0 || f.corrupt > 0) {
      double u = unit_uniform(fault_rng_.u64());
      if (u < f.drop) {
        verdict = Delivery::kDropped;
      } else if (u < f.drop + f.duplicate) {
        verdict = Delivery::kDuplicated;
      } else if (u < f.drop + f.duplicate + f.corrupt) {
        verdict = Delivery::kCorrupted;
      }
    }
  }

  clock_.advance(latency);
  TrafficStats& ps = per_protocol_[protocol];
  ps.messages += 1;
  ps.bytes += bytes;
  total_.messages += 1;
  total_.bytes += bytes;
  obs::count(obs::kNetMessages);
  obs::count(obs::kNetBytes, bytes);
  switch (verdict) {
    case Delivery::kDropped:
      obs::count(obs::kNetDropped);
      break;
    case Delivery::kDuplicated:
      obs::count(obs::kNetDuplicated);
      break;
    case Delivery::kCorrupted:
      obs::count(obs::kNetCorrupted);
      break;
    case Delivery::kDelivered:
      break;
  }
  return verdict;
}

TrafficStats Network::stats(const std::string& protocol) const {
  auto it = per_protocol_.find(protocol);
  return it == per_protocol_.end() ? TrafficStats{} : it->second;
}

void Network::reset_stats() {
  per_protocol_.clear();
  total_ = TrafficStats{};
}

bool Network::accept_fresh(const std::string& receiver, BytesView tag,
                           uint64_t timestamp_ns, uint64_t window_ns) {
  uint64_t now = clock_.now();
  uint64_t lo = (now > window_ns) ? now - window_ns : 0;
  uint64_t hi = now + window_ns;

  auto& cache = replay_seen_[receiver];
  // Prune tags that could no longer pass the freshness check anyway: any
  // replay carrying their (MAC-covered) timestamp is rejected as stale.
  std::erase_if(cache, [lo](const auto& kv) { return kv.second < lo; });

  if (timestamp_ns < lo || timestamp_ns > hi) {
    obs::count(obs::kNetReplayRejected);
    return false;
  }
  Bytes key(tag.begin(), tag.end());
  auto [pos, inserted] = cache.try_emplace(std::move(key), timestamp_ns);
  (void)pos;
  if (!inserted) obs::count(obs::kNetReplayRejected);
  return inserted;
}

size_t Network::replay_cache_size(const std::string& receiver) const {
  auto it = replay_seen_.find(receiver);
  return it == replay_seen_.end() ? 0 : it->second.size();
}

}  // namespace hcpp::sim
