#include "src/sim/network.h"

namespace hcpp::sim {

void Network::set_link(const std::string& from, const std::string& to,
                       LinkModel model) {
  links_[{from, to}] = model;
}

void Network::transmit(const std::string& from, const std::string& to,
                       size_t bytes, const std::string& protocol) {
  LinkModel model = default_link_;
  auto it = links_.find({from, to});
  if (it != links_.end()) model = it->second;
  uint64_t latency =
      model.base_latency_ns +
      static_cast<uint64_t>(model.per_byte_ns * static_cast<double>(bytes));
  clock_.advance(latency);
  TrafficStats& ps = per_protocol_[protocol];
  ps.messages += 1;
  ps.bytes += bytes;
  total_.messages += 1;
  total_.bytes += bytes;
}

TrafficStats Network::stats(const std::string& protocol) const {
  auto it = per_protocol_.find(protocol);
  return it == per_protocol_.end() ? TrafficStats{} : it->second;
}

void Network::reset_stats() {
  per_protocol_.clear();
  total_ = TrafficStats{};
}

bool Network::accept_fresh(const std::string& receiver, BytesView tag,
                           uint64_t timestamp_ns, uint64_t window_ns) {
  uint64_t now = clock_.now();
  uint64_t lo = (now > window_ns) ? now - window_ns : 0;
  uint64_t hi = now + window_ns;
  if (timestamp_ns < lo || timestamp_ns > hi) return false;
  Bytes key(tag.begin(), tag.end());
  auto [it, inserted] = replay_seen_[receiver].insert(std::move(key));
  (void)it;
  return inserted;
}

}  // namespace hcpp::sim
