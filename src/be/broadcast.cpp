#include "src/be/broadcast.h"

#include <stdexcept>

#include "src/cipher/aead.h"
#include "src/hash/hmac.h"

namespace hcpp::be {

namespace {
size_t round_up_pow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

BroadcastGroup::BroadcastGroup(size_t capacity, RandomSource& rng)
    : leaves_(round_up_pow2(std::max<size_t>(2, capacity))),
      master_(rng.bytes(32)) {}

Bytes BroadcastGroup::node_key(uint64_t node) const {
  uint8_t msg[8];
  for (int i = 0; i < 8; ++i) msg[i] = static_cast<uint8_t>(node >> (8 * i));
  return hash::hmac_sha256(master_, BytesView(msg, 8));
}

MemberKeys BroadcastGroup::issue(size_t member) const {
  if (member >= leaves_) {
    throw std::out_of_range("BroadcastGroup::issue: no such slot");
  }
  MemberKeys mk;
  mk.index = member;
  // Heap numbering: root = 1, leaf = leaves_ + member.
  for (uint64_t node = leaves_ + member; node >= 1; node /= 2) {
    mk.path_keys.emplace_back(node, node_key(node));
    if (node == 1) break;
  }
  return mk;
}

void BroadcastGroup::revoke(size_t member) {
  if (member >= leaves_) {
    throw std::out_of_range("BroadcastGroup::revoke: no such slot");
  }
  revoked_.insert(member);
}

void BroadcastGroup::reinstate(size_t member) { revoked_.erase(member); }

void BroadcastGroup::cover(uint64_t node, size_t lo, size_t hi,
                           std::vector<uint64_t>& out) const {
  // Leaves in [lo, hi); determine revocation status of the range.
  auto it = revoked_.lower_bound(lo);
  bool any_revoked = (it != revoked_.end() && *it < hi);
  if (!any_revoked) {
    out.push_back(node);
    return;
  }
  if (hi - lo == 1) return;  // a revoked leaf: drop it
  size_t mid = lo + (hi - lo) / 2;
  cover(2 * node, lo, mid, out);
  cover(2 * node + 1, mid, hi, out);
}

Bytes BroadcastGroup::encrypt(BytesView payload, RandomSource& rng) const {
  std::vector<uint64_t> nodes;
  cover(1, 0, leaves_, nodes);
  io::Writer w;
  w.u32(static_cast<uint32_t>(nodes.size()));
  for (uint64_t node : nodes) {
    w.u64(node);
    Bytes key = node_key(node);
    w.bytes(cipher::aead_encrypt(key, payload, {}, rng));
    secure_wipe(key);
  }
  return w.take();
}

std::optional<Bytes> decrypt(const MemberKeys& keys, BytesView ciphertext) {
  try {
    io::Reader r(ciphertext);
    size_t n = r.count32(12);  // each slot: u64 node + u32 length prefix
    for (size_t i = 0; i < n; ++i) {
      uint64_t node = r.u64();
      Bytes blob = r.bytes();
      for (const auto& [path_node, key] : keys.path_keys) {
        if (path_node == node) {
          return cipher::aead_decrypt(key, blob, {});
        }
      }
    }
  } catch (const std::exception&) {
    return std::nullopt;
  }
  return std::nullopt;
}

Bytes MemberKeys::to_bytes() const {
  io::Writer w;
  w.u64(index);
  w.u32(static_cast<uint32_t>(path_keys.size()));
  for (const auto& [node, key] : path_keys) {
    w.u64(node);
    w.bytes(key);
  }
  return w.take();
}

MemberKeys MemberKeys::from_bytes(BytesView b) {
  io::Reader r(b);
  MemberKeys mk;
  mk.index = r.u64();
  size_t n = r.count32(12);  // each key: u64 node + u32 length prefix
  mk.path_keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t node = r.u64();
    mk.path_keys.emplace_back(node, r.bytes());
  }
  return mk;
}

}  // namespace hcpp::be
