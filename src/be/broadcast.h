// Broadcast encryption for the privilege key d (§IV.C): the complete-subtree
// method (Naor–Naor–Lotspiech). The patient is the group manager; family
// members and P-devices are leaves. BE_U(d) is decryptable exactly by the
// non-revoked leaves, so REVOKE is: re-key d, re-broadcast — the lost
// P-device can no longer follow.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/common/serialize.h"

namespace hcpp::be {

/// Key material handed to one member (the paper's X): the keys of every
/// tree node on the member's leaf-to-root path, O(log n) of them.
struct MemberKeys {
  size_t index = 0;                                  // leaf slot
  std::vector<std::pair<uint64_t, Bytes>> path_keys;  // node id -> key

  [[nodiscard]] Bytes to_bytes() const;
  static MemberKeys from_bytes(BytesView b);
};

class BroadcastGroup {
 public:
  /// `capacity` members max (rounded up to a power of two), fresh master key.
  BroadcastGroup(size_t capacity, RandomSource& rng);

  /// Issues (or re-issues) the path keys for leaf slot `member`.
  [[nodiscard]] MemberKeys issue(size_t member) const;

  void revoke(size_t member);
  void reinstate(size_t member);
  [[nodiscard]] const std::set<size_t>& revoked() const noexcept {
    return revoked_;
  }
  [[nodiscard]] size_t capacity() const noexcept { return leaves_; }

  /// BE_U(payload) for the current non-revoked set U. Ciphertext size is
  /// O(r·log(n/r)) blocks for r revocations.
  [[nodiscard]] Bytes encrypt(BytesView payload, RandomSource& rng) const;

 private:
  [[nodiscard]] Bytes node_key(uint64_t node) const;
  void cover(uint64_t node, size_t lo, size_t hi,
             std::vector<uint64_t>& out) const;

  size_t leaves_;
  Bytes master_;
  std::set<size_t> revoked_;
};

/// Member-side decryption; nullopt when the member is revoked (no cover node
/// lies on its path) or the blob is malformed.
std::optional<Bytes> decrypt(const MemberKeys& keys, BytesView ciphertext);

}  // namespace hcpp::be
