// Square-root ORAM (Goldreich–Ostrovsky [15], [16]) — the "well established
// schemes to hide this information with lower efficiency" that §VI.B offers
// against category-1a traffic analysis (the server learning which memory
// addresses successive searches touch). HCPP's default countermeasure is
// keyword ambiguity; this substrate realises the stronger alternative and
// benchmark E6 quantifies its cost.
//
// Layout per epoch: n logical blocks + k = ⌈√n⌉ dummies, shuffled by a
// fresh PRP; a shelter of k slots. Each access scans the shelter, touches
// exactly one main slot (the real one, or the next dummy when the target is
// already sheltered), and appends to the shelter. After k accesses the
// client reshuffles everything under fresh keys. The server-visible trace
// therefore depends only on the access *count*, never on which logical
// blocks were accessed.
#pragma once

#include <optional>
#include <vector>

#include "src/common/random.h"

namespace hcpp::oram {

/// What the storage server observes; tests and benches assert on this.
struct AccessTrace {
  std::vector<uint64_t> main_slots;  // physical main-memory slot per access
  size_t shelter_scans = 0;          // full shelter scans (one per access)
  size_t reshuffles = 0;
  uint64_t bytes_transferred = 0;    // total server<->client traffic
};

class ObliviousStore {
 public:
  /// Takes ownership of `blocks` (all the same size, at least one).
  ObliviousStore(std::vector<Bytes> blocks, RandomSource& rng);

  [[nodiscard]] size_t size() const noexcept { return n_; }
  [[nodiscard]] size_t block_size() const noexcept { return block_size_; }
  /// Accesses per epoch before a reshuffle (⌈√n⌉).
  [[nodiscard]] size_t epoch_length() const noexcept { return k_; }

  /// Oblivious read of logical block `i`.
  Bytes read(size_t i);
  /// Oblivious write (same access pattern as a read).
  void write(size_t i, Bytes value);

  [[nodiscard]] const AccessTrace& trace() const noexcept { return trace_; }

 private:
  struct Stored {
    uint64_t id;  // logical id, or kDummy
    Bytes data;
  };
  static constexpr uint64_t kDummy = ~0ull;

  Bytes access(size_t i, const Bytes* new_value);
  void reshuffle(RandomSource& rng);
  [[nodiscard]] Bytes seal(const Stored& s);
  [[nodiscard]] Stored open(BytesView blob) const;

  size_t n_ = 0;
  size_t k_ = 0;
  size_t block_size_ = 0;

  // Server-side: encrypted main memory (n + k slots) and shelter.
  std::vector<Bytes> server_main_;
  std::vector<Bytes> server_shelter_;

  // Client-side: epoch key material and counters.
  Bytes epoch_key_;
  Bytes prp_key_;
  size_t accesses_this_epoch_ = 0;
  size_t dummy_cursor_ = 0;
  RandomSource* rng_;

  AccessTrace trace_;
};

}  // namespace hcpp::oram
