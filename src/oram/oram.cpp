#include "src/oram/oram.h"

#include <cmath>
#include <stdexcept>

#include "src/cipher/aead.h"
#include "src/common/serialize.h"
#include "src/prf/feistel.h"

namespace hcpp::oram {

ObliviousStore::ObliviousStore(std::vector<Bytes> blocks, RandomSource& rng)
    : rng_(&rng) {
  if (blocks.empty()) {
    throw std::invalid_argument("ObliviousStore: need at least one block");
  }
  n_ = blocks.size();
  block_size_ = blocks[0].size();
  for (const Bytes& b : blocks) {
    if (b.size() != block_size_) {
      throw std::invalid_argument("ObliviousStore: unequal block sizes");
    }
  }
  k_ = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(n_))));
  epoch_key_ = rng.bytes(32);
  prp_key_ = rng.bytes(32);
  // Initial placement: encrypt every block (plus dummies) and scatter by
  // the epoch PRP.
  server_main_.assign(n_ + k_, Bytes{});
  prf::SmallDomainPrp prp(prp_key_, n_ + k_);
  for (size_t i = 0; i < n_; ++i) {
    server_main_[prp.forward(i)] = seal({i, std::move(blocks[i])});
  }
  for (size_t d = 0; d < k_; ++d) {
    server_main_[prp.forward(n_ + d)] =
        seal({kDummy, rng.bytes(block_size_)});
  }
}

Bytes ObliviousStore::seal(const Stored& s) {
  io::Writer w;
  w.u64(s.id);
  w.raw(s.data);
  return cipher::aead_encrypt(epoch_key_, w.data(), {}, *rng_);
}

ObliviousStore::Stored ObliviousStore::open(BytesView blob) const {
  Bytes plain = cipher::aead_decrypt(epoch_key_, blob, {});
  io::Reader r(plain);
  Stored s;
  s.id = r.u64();
  s.data = r.raw(block_size_);
  return s;
}

Bytes ObliviousStore::read(size_t i) { return access(i, nullptr); }

void ObliviousStore::write(size_t i, Bytes value) {
  if (value.size() != block_size_) {
    throw std::invalid_argument("ObliviousStore::write: wrong block size");
  }
  access(i, &value);
}

Bytes ObliviousStore::access(size_t i, const Bytes* new_value) {
  if (i >= n_) throw std::out_of_range("ObliviousStore: bad index");
  if (accesses_this_epoch_ == k_) reshuffle(*rng_);

  // 1. Scan the whole shelter (the server sees a full scan either way).
  ++trace_.shelter_scans;
  std::optional<size_t> sheltered_at;
  std::optional<Stored> found;
  for (size_t s = 0; s < server_shelter_.size(); ++s) {
    trace_.bytes_transferred += server_shelter_[s].size();
    Stored st = open(server_shelter_[s]);
    if (st.id == i) {
      sheltered_at = s;
      found = std::move(st);
    }
  }

  // 2. Touch exactly one main slot: the real one if not sheltered, else the
  //    next unread dummy. Either way the slot is a fresh PRP output, so the
  //    server cannot tell the two cases apart.
  prf::SmallDomainPrp prp(prp_key_, n_ + k_);
  size_t slot = found.has_value() ? prp.forward(n_ + dummy_cursor_++)
                                  : prp.forward(i);
  trace_.main_slots.push_back(slot);
  trace_.bytes_transferred += server_main_[slot].size();
  if (!found.has_value()) {
    found = open(server_main_[slot]);
    // Replace the consumed slot with an indistinguishable dummy.
    server_main_[slot] = seal({kDummy, rng_->bytes(block_size_)});
  }

  // 3. Apply the write, append to the shelter (re-encrypted, so even an
  //    update is invisible), and finish the access.
  if (new_value != nullptr) found->data = *new_value;
  Bytes result = found->data;
  Bytes sealed = seal(*found);
  trace_.bytes_transferred += sealed.size();
  if (sheltered_at.has_value()) {
    server_shelter_[*sheltered_at] = std::move(sealed);
  } else {
    server_shelter_.push_back(std::move(sealed));
  }
  ++accesses_this_epoch_;
  return result;
}

void ObliviousStore::reshuffle(RandomSource& rng) {
  // Download everything, merge shelter updates, re-key, re-permute, upload.
  std::vector<Bytes> plain(n_);
  for (const Bytes& blob : server_main_) {
    trace_.bytes_transferred += blob.size();
    Stored s = open(blob);
    if (s.id != kDummy) plain[s.id] = std::move(s.data);
  }
  for (const Bytes& blob : server_shelter_) {
    trace_.bytes_transferred += blob.size();
    Stored s = open(blob);
    if (s.id != kDummy) plain[s.id] = std::move(s.data);
  }
  epoch_key_ = rng.bytes(32);
  prp_key_ = rng.bytes(32);
  server_shelter_.clear();
  server_main_.assign(n_ + k_, Bytes{});
  prf::SmallDomainPrp prp(prp_key_, n_ + k_);
  for (size_t i = 0; i < n_; ++i) {
    Bytes sealed = seal({i, std::move(plain[i])});
    trace_.bytes_transferred += sealed.size();
    server_main_[prp.forward(i)] = std::move(sealed);
  }
  for (size_t d = 0; d < k_; ++d) {
    Bytes sealed = seal({kDummy, rng.bytes(block_size_)});
    trace_.bytes_transferred += sealed.size();
    server_main_[prp.forward(n_ + d)] = std::move(sealed);
  }
  accesses_this_epoch_ = 0;
  dummy_cursor_ = 0;
  ++trace_.reshuffles;
}

}  // namespace hcpp::oram
