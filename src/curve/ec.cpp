#include "src/curve/ec.h"

#include <span>
#include <stdexcept>
#include <vector>

#include "src/curve/pairing.h"
#include "src/hash/sha256.h"
#include "src/mp/prime.h"
#include "src/obs/metrics.h"

namespace hcpp::curve {

using field::Fp;

CurveCtx::CurveCtx(const mp::U512& p_in, const mp::U512& q_in,
                   const mp::U512& gx_in, const mp::U512& gy_in,
                   std::string name_in)
    : p(p_in),
      q(q_in),
      fp(p_in),
      zq(q_in),
      gx(gx_in),
      gy(gy_in),
      name(std::move(name_in)) {
  // cofactor = (p+1)/q, and p+1 must divide exactly (runs once per set).
  mp::U512 p_plus1;
  mp::add(p_plus1, p, mp::U512::from_u64(1));
  mp::DivMod dm = mp::divmod(p_plus1, q);
  if (!dm.remainder.is_zero()) {
    throw std::invalid_argument("CurveCtx: q does not divide p+1");
  }
  cofactor = dm.quotient;
}

CurveCtx::~CurveCtx() = default;

bool operator==(const Point& a, const Point& b) noexcept {
  if (a.infinity || b.infinity) return a.infinity == b.infinity;
  return a.x == b.x && a.y == b.y;
}

Point generator(const CurveCtx& ctx) {
  Point g;
  g.x = Fp(&ctx.fp, ctx.gx);
  g.y = Fp(&ctx.fp, ctx.gy);
  g.infinity = false;
  return g;
}

bool on_curve(const CurveCtx& ctx, const Point& pt) {
  if (pt.infinity) return true;
  // y^2 == x^3 + x
  Fp lhs = pt.y.sqr();
  Fp rhs = pt.x.sqr() * pt.x + pt.x;
  (void)ctx;
  return lhs == rhs;
}

bool in_prime_subgroup(const CurveCtx& ctx, const Point& pt) {
  if (pt.infinity || !on_curve(ctx, pt)) return false;
  return mul_wnaf(ctx, pt, ctx.q).infinity;
}

Point negate(const Point& a) {
  if (a.infinity) return a;
  Point r = a;
  r.y = a.y.neg();
  return r;
}

Point add(const CurveCtx& ctx, const Point& a, const Point& b) {
  if (a.infinity) return b;
  if (b.infinity) return a;
  if (a.x == b.x) {
    if (a.y == b.y.neg()) return Point::at_infinity();
    return dbl(ctx, a);
  }
  Fp slope = (b.y - a.y) * (b.x - a.x).inv();
  Fp x3 = slope.sqr() - a.x - b.x;
  Fp y3 = slope * (a.x - x3) - a.y;
  return Point{x3, y3, false};
}

Point dbl(const CurveCtx& ctx, const Point& a) {
  if (a.infinity) return a;
  if (a.y.is_zero()) return Point::at_infinity();
  const Fp one = Fp::one(&ctx.fp);
  Fp x_sq = a.x.sqr();
  // slope = (3x^2 + 1) / (2y)   (curve coefficient a = 1)
  Fp num = x_sq + x_sq + x_sq + one;
  Fp den = (a.y + a.y).inv();
  Fp slope = num * den;
  Fp x3 = slope.sqr() - a.x - a.x;
  Fp y3 = slope * (a.x - x3) - a.y;
  return Point{x3, y3, false};
}

namespace {

// Jacobian coordinates (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
struct Jac {
  Fp x, y, z;
  bool infinity = true;
};

Jac to_jac(const CurveCtx& ctx, const Point& pt) {
  if (pt.infinity) return Jac{};
  return Jac{pt.x, pt.y, Fp::one(&ctx.fp), false};
}

Point from_jac(const CurveCtx& ctx, const Jac& j) {
  (void)ctx;
  if (j.infinity) return Point::at_infinity();
  Fp zinv = j.z.inv();
  Fp zinv2 = zinv.sqr();
  return Point{j.x * zinv2, j.y * zinv2 * zinv, false};
}

Jac jac_dbl(const CurveCtx& ctx, const Jac& pt) {
  if (pt.infinity || pt.y.is_zero()) return Jac{};
  const Fp one = Fp::one(&ctx.fp);
  (void)one;
  // dbl-2007-bl style for a = 1 (generic a): M = 3X^2 + a·Z^4.
  Fp xx = pt.x.sqr();
  Fp yy = pt.y.sqr();
  Fp yyyy = yy.sqr();
  Fp zz = pt.z.sqr();
  Fp s = ((pt.x + yy).sqr() - xx - yyyy);
  s = s + s;
  Fp z4 = zz.sqr();
  Fp m = xx + xx + xx + z4;  // a = 1
  Fp t = m.sqr() - s - s;
  Jac r;
  r.x = t;
  Fp eight_yyyy = yyyy + yyyy;
  eight_yyyy = eight_yyyy + eight_yyyy;
  eight_yyyy = eight_yyyy + eight_yyyy;
  r.y = m * (s - t) - eight_yyyy;
  r.z = (pt.y + pt.z).sqr() - yy - zz;
  r.infinity = false;
  return r;
}

// General Jacobian addition (add-2007-bl), used when neither operand is
// affine — e.g. while growing the odd-multiples table before its single
// batch normalization.
Jac jac_add(const CurveCtx& ctx, const Jac& a, const Jac& b) {
  if (a.infinity) return b;
  if (b.infinity) return a;
  Fp z1z1 = a.z.sqr();
  Fp z2z2 = b.z.sqr();
  Fp u1 = a.x * z2z2;
  Fp u2 = b.x * z1z1;
  Fp s1 = a.y * z2z2 * b.z;
  Fp s2 = b.y * z1z1 * a.z;
  if (u1 == u2) {
    if (s1 == s2) return jac_dbl(ctx, a);
    return Jac{};
  }
  Fp h = u2 - u1;
  Fp i = (h + h).sqr();
  Fp j = h * i;
  Fp rr = s2 - s1;
  rr = rr + rr;
  Fp v = u1 * i;
  Jac r;
  r.x = rr.sqr() - j - v - v;
  Fp two_s1j = s1 * j;
  two_s1j = two_s1j + two_s1j;
  r.y = rr * (v - r.x) - two_s1j;
  r.z = ((a.z + b.z).sqr() - z1z1 - z2z2) * h;
  r.infinity = false;
  return r;
}

// Batch Jacobian→affine conversion: one shared modular inversion
// (Montgomery's trick in MontCtx::batch_inv) for the whole span, instead of
// one per point. Infinity entries pass through untouched; every finite
// Jacobian point has z != 0, so the batch never sees a zero.
std::vector<Point> jac_normalize_batch(const CurveCtx& ctx,
                                       std::span<const Jac> pts) {
  std::vector<mp::U512> zs;
  zs.reserve(pts.size());
  for (const Jac& j : pts) {
    if (!j.infinity) zs.push_back(j.z.raw());
  }
  ctx.fp.mont.batch_inv(zs);
  std::vector<Point> out(pts.size());
  size_t zi = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    const Jac& j = pts[i];
    if (j.infinity) {
      out[i] = Point::at_infinity();
      continue;
    }
    Fp zinv = Fp::from_raw(&ctx.fp, zs[zi++]);
    Fp zinv2 = zinv.sqr();
    out[i] = Point{j.x * zinv2, j.y * zinv2 * zinv, false};
  }
  return out;
}

// Mixed addition: q is affine (z = 1).
Jac jac_add_affine(const CurveCtx& ctx, const Jac& a, const Point& b) {
  if (b.infinity) return a;
  if (a.infinity) return to_jac(ctx, b);
  Fp z1z1 = a.z.sqr();
  Fp u2 = b.x * z1z1;
  Fp s2 = b.y * z1z1 * a.z;
  if (a.x == u2) {
    if (a.y == s2) return jac_dbl(ctx, a);
    return Jac{};
  }
  Fp h = u2 - a.x;
  Fp hh = h.sqr();
  Fp i = hh + hh;
  i = i + i;
  Fp j = h * i;
  Fp rr = s2 - a.y;
  rr = rr + rr;
  Fp v = a.x * i;
  Jac r;
  r.x = rr.sqr() - j - v - v;
  Fp two_y1j = a.y * j;
  two_y1j = two_y1j + two_y1j;
  r.y = rr * (v - r.x) - two_y1j;
  r.z = (a.z + h).sqr() - z1z1 - hh;
  r.infinity = false;
  return r;
}

}  // namespace

Point mul(const CurveCtx& ctx, const Point& a, const mp::U512& k) {
  obs::count(obs::kPointMul);
  if (a.infinity || k.is_zero()) return Point::at_infinity();
  Jac acc;
  for (size_t i = k.bit_length(); i-- > 0;) {
    acc = jac_dbl(ctx, acc);
    if (k.bit(i)) acc = jac_add_affine(ctx, acc, a);
  }
  return from_jac(ctx, acc);
}

Point mul_wnaf(const CurveCtx& ctx, const Point& a, const mp::U512& k) {
  obs::count(obs::kPointMul);
  if (a.infinity || k.is_zero()) return Point::at_infinity();
  // Width-4 NAF recoding: digits in {0, ±1, ±3, …, ±15}, no two adjacent
  // nonzero digits.
  std::vector<int8_t> naf;
  naf.reserve(k.bit_length() + 1);
  mp::U512 rem = k;
  while (!rem.is_zero()) {
    int8_t digit = 0;
    if (rem.is_odd()) {
      int low = static_cast<int>(rem.w[0] & 15);
      digit = static_cast<int8_t>(low >= 8 ? low - 16 : low);
      mp::U512 tmp;
      if (digit > 0) {
        mp::sub(tmp, rem, mp::U512::from_u64(static_cast<uint64_t>(digit)));
      } else {
        mp::add(tmp, rem, mp::U512::from_u64(static_cast<uint64_t>(-digit)));
      }
      rem = tmp;
    }
    naf.push_back(digit);
    rem = mp::shr1(rem);
  }
  // Odd multiples 1a, 3a, …, 15a, grown in Jacobian form and flattened to
  // affine with one batch inversion (down from the eight inversions of the
  // old affine dbl/add chain); the main loop then uses mixed additions.
  Jac jtab[8];
  jtab[0] = to_jac(ctx, a);
  Jac twice = jac_dbl(ctx, jtab[0]);
  for (int i = 1; i < 8; ++i) jtab[i] = jac_add(ctx, jtab[i - 1], twice);
  std::vector<Point> table = jac_normalize_batch(ctx, std::span<const Jac>(jtab));
  Jac acc;
  for (size_t i = naf.size(); i-- > 0;) {
    acc = jac_dbl(ctx, acc);
    int8_t d = naf[i];
    if (d > 0) acc = jac_add_affine(ctx, acc, table[(d - 1) / 2]);
    if (d < 0) acc = jac_add_affine(ctx, acc, negate(table[(-d - 1) / 2]));
  }
  return from_jac(ctx, acc);
}

namespace {
constexpr size_t kFixedBaseWindow = 4;
constexpr size_t kFixedBaseWindows = mp::kBits / kFixedBaseWindow;

void build_fixed_base_table(const CurveCtx& ctx) {
  // Phase 1: the 128 window bases 16^j · G by repeated Jacobian doubling,
  // normalized together. G generates the odd-prime-order subgroup, so no
  // base (nor any v·16^j·G below) is ever the identity.
  std::vector<Jac> bases(kFixedBaseWindows);
  Jac base = to_jac(ctx, generator(ctx));
  for (size_t j = 0; j < kFixedBaseWindows; ++j) {
    bases[j] = base;
    for (int d = 0; d < 4; ++d) base = jac_dbl(ctx, base);
  }
  std::vector<Point> affine_bases = jac_normalize_batch(ctx, bases);
  // Phase 2: all 128 × 15 entries v · 16^j · G via mixed additions on the
  // affine bases, again normalized with a single shared inversion. The whole
  // table build costs two inversions instead of one per affine addition
  // (~2k of them).
  std::vector<Jac> entries;
  entries.reserve(kFixedBaseWindows * 15);
  for (size_t j = 0; j < kFixedBaseWindows; ++j) {
    Jac acc = to_jac(ctx, affine_bases[j]);
    for (int v = 1; v <= 15; ++v) {
      entries.push_back(acc);
      acc = jac_add_affine(ctx, acc, affine_bases[j]);
    }
  }
  std::vector<Point> flat = jac_normalize_batch(ctx, entries);
  ctx.fixed_base_table.assign(kFixedBaseWindows, {});
  for (size_t j = 0; j < kFixedBaseWindows; ++j) {
    ctx.fixed_base_table[j].assign(flat.begin() + static_cast<long>(j * 15),
                                   flat.begin() + static_cast<long>((j + 1) * 15));
  }
}
}  // namespace

Point mul_generator(const CurveCtx& ctx, const mp::U512& k) {
  obs::count(obs::kPointMul);
  std::call_once(ctx.fixed_base_once, [&ctx] { build_fixed_base_table(ctx); });
  Jac acc;  // mixed Jacobian additions only — no doublings, one inversion
  for (size_t j = 0; j < kFixedBaseWindows; ++j) {
    uint64_t v = (k.w[(4 * j) / 64] >> ((4 * j) % 64)) & 15;
    if (v != 0) {
      acc = jac_add_affine(ctx, acc, ctx.fixed_base_table[j][v - 1]);
    }
  }
  return from_jac(ctx, acc);
}

mp::U512 random_scalar(const CurveCtx& ctx, RandomSource& rng) {
  for (;;) {
    mp::U512 k = mp::random_below(ctx.q, rng);
    if (!k.is_zero()) return k;
  }
}

Point hash_to_point(const CurveCtx& ctx, BytesView msg, std::string_view tag) {
  obs::count(obs::kHashToPoint);
  for (uint32_t ctr = 0;; ++ctr) {
    Bytes input = to_bytes(tag);
    input.push_back(static_cast<uint8_t>(ctr >> 24));
    input.push_back(static_cast<uint8_t>(ctr >> 16));
    input.push_back(static_cast<uint8_t>(ctr >> 8));
    input.push_back(static_cast<uint8_t>(ctr));
    append(input, msg);
    // Two hash blocks give up to 512 candidate bits; reduce mod p.
    Bytes wide = hash::sha256_bytes(input);
    Bytes second = hash::sha256_bytes(wide);
    append(wide, second);
    mp::U512 x_candidate = mp::mod(mp::U512::from_bytes_be(wide), ctx.p);
    Fp x(&ctx.fp, x_candidate);
    Fp rhs = x.sqr() * x + x;
    std::optional<Fp> y = rhs.sqrt();
    if (!y.has_value()) continue;
    Point pt{x, *y, false};
    Point in_subgroup = mul_wnaf(ctx, pt, ctx.cofactor);
    if (in_subgroup.infinity) continue;
    return in_subgroup;
  }
}

mp::U512 hash_to_scalar(const CurveCtx& ctx, BytesView msg,
                        std::string_view tag) {
  for (uint32_t ctr = 0;; ++ctr) {
    Bytes input = to_bytes(tag);
    input.push_back(static_cast<uint8_t>(ctr >> 24));
    input.push_back(static_cast<uint8_t>(ctr >> 16));
    input.push_back(static_cast<uint8_t>(ctr >> 8));
    input.push_back(static_cast<uint8_t>(ctr));
    append(input, msg);
    Bytes wide = hash::sha256_bytes(input);
    Bytes second = hash::sha256_bytes(wide);
    append(wide, second);
    mp::U512 s = mp::mod(mp::U512::from_bytes_be(wide), ctx.q);
    if (!s.is_zero()) return s;
  }
}

Bytes point_to_bytes(const Point& pt) {
  Bytes out;
  if (pt.infinity) {
    out.push_back(0);
    return out;
  }
  out.push_back(1);
  append(out, pt.x.value().to_bytes_be());
  append(out, pt.y.value().to_bytes_be());
  return out;
}

Point point_from_bytes(const CurveCtx& ctx, BytesView b) {
  if (b.empty()) throw std::invalid_argument("point_from_bytes: empty");
  if (b[0] == 0) {
    if (b.size() != 1) {
      throw std::invalid_argument("point_from_bytes: bad infinity encoding");
    }
    return Point::at_infinity();
  }
  if (b[0] != 1 || b.size() != 1 + 2 * 64) {
    throw std::invalid_argument("point_from_bytes: bad length");
  }
  mp::U512 x = mp::U512::from_bytes_be(b.subspan(1, 64));
  mp::U512 y = mp::U512::from_bytes_be(b.subspan(65, 64));
  Point pt{field::Fp(&ctx.fp, x), field::Fp(&ctx.fp, y), false};
  if (!on_curve(ctx, pt)) {
    throw std::invalid_argument("point_from_bytes: not on curve");
  }
  return pt;
}

Bytes point_to_bytes_compressed(const Point& pt) {
  Bytes out;
  if (pt.infinity) {
    out.push_back(0);
    return out;
  }
  // Flag 2 | parity-of-y distinguishes the two roots.
  out.push_back(static_cast<uint8_t>(2 | (pt.y.value().w[0] & 1)));
  append(out, pt.x.value().to_bytes_be());
  return out;
}

Point point_from_bytes_compressed(const CurveCtx& ctx, BytesView b) {
  if (b.empty()) {
    throw std::invalid_argument("point_from_bytes_compressed: empty");
  }
  if (b[0] == 0) {
    if (b.size() != 1) {
      throw std::invalid_argument(
          "point_from_bytes_compressed: bad infinity encoding");
    }
    return Point::at_infinity();
  }
  if ((b[0] & ~1) != 2 || b.size() != 1 + 64) {
    throw std::invalid_argument("point_from_bytes_compressed: bad layout");
  }
  field::Fp x(&ctx.fp, mp::U512::from_bytes_be(b.subspan(1)));
  field::Fp rhs = x.sqr() * x + x;
  std::optional<field::Fp> y = rhs.sqrt();
  if (!y.has_value()) {
    throw std::invalid_argument("point_from_bytes_compressed: no such point");
  }
  uint64_t want_parity = b[0] & 1;
  if ((y->value().w[0] & 1) != want_parity) *y = y->neg();
  Point pt{x, *y, false};
  if (!on_curve(ctx, pt)) {
    throw std::invalid_argument("point_from_bytes_compressed: off curve");
  }
  return pt;
}

}  // namespace hcpp::curve
