#include "src/curve/params.h"

#include <mutex>
#include <stdexcept>

#include "src/cipher/drbg.h"
#include "src/mp/prime.h"

namespace hcpp::curve {

GeneratedParams generate_params(size_t q_bits, size_t p_bits,
                                RandomSource& rng) {
  if (q_bits + 8 > p_bits || p_bits > mp::kBits) {
    throw std::invalid_argument("generate_params: bad widths");
  }
  GeneratedParams gp;
  gp.q = mp::generate_prime(q_bits, rng);
  const size_t c_bits = p_bits - q_bits;
  for (;;) {
    mp::U512 c = mp::random_bits(c_bits, rng);
    c.w[0] &= ~3ull;  // c ≡ 0 (mod 4) makes p = c·q − 1 ≡ 3 (mod 4)
    if (c.is_zero()) continue;
    mp::U1024 wide;
    mp::mul_wide(wide, c, gp.q);
    bool overflow = false;
    for (size_t i = mp::kLimbs; i < 2 * mp::kLimbs; ++i) {
      overflow |= (wide[i] != 0);
    }
    if (overflow) continue;
    mp::U512 cq;
    for (size_t i = 0; i < mp::kLimbs; ++i) cq.w[i] = wide[i];
    mp::U512 p;
    mp::sub(p, cq, mp::U512::from_u64(1));
    if (!mp::is_probable_prime(p, rng)) continue;
    gp.p = p;
    break;
  }
  // Find a generator: random curve point times the cofactor.
  field::FpCtx fld(gp.p);
  // cofactor = (p+1)/q = c by construction; recompute defensively via ctx in
  // make_curve. Here we only need some multiple clearing q's complement.
  for (;;) {
    mp::U512 x_raw = mp::random_below(gp.p, rng);
    field::Fp x(&fld, x_raw);
    field::Fp rhs = x.sqr() * x + x;
    std::optional<field::Fp> y = rhs.sqrt();
    if (!y.has_value()) continue;
    // Build a throwaway context to use the group law.
    CurveCtx probe(gp.p, gp.q, x.value(), y->value(), "probe");
    Point pt = generator(probe);
    Point g = mul(probe, pt, probe.cofactor);
    if (g.infinity) continue;
    if (!mul(probe, g, probe.q).infinity) {
      throw std::logic_error("generate_params: generator has wrong order");
    }
    gp.gx = g.x.value();
    gp.gy = g.y.value();
    return gp;
  }
}

std::unique_ptr<CurveCtx> make_curve(const GeneratedParams& gp,
                                     std::string name) {
  auto ctx = std::make_unique<CurveCtx>(gp.p, gp.q, gp.gx, gp.gy,
                                        std::move(name));
  Point g = generator(*ctx);
  if (!on_curve(*ctx, g) || g.infinity) {
    throw std::invalid_argument("make_curve: generator not on curve");
  }
  if (!mul(*ctx, g, ctx->q).infinity) {
    throw std::invalid_argument("make_curve: generator order != q");
  }
  return ctx;
}

namespace {

std::unique_ptr<CurveCtx> build_named(ParamSet set) {
  // Deterministic seeds keep parameters stable across runs without shipping
  // magic constants; generation takes well under a second (kTest) / a few
  // seconds at most (kProduction), once per process.
  if (set == ParamSet::kTest) {
    cipher::Drbg rng(to_bytes("hcpp-params-test-v1"));
    GeneratedParams gp = generate_params(150, 256, rng);
    return make_curve(gp, "hcpp-test-p256-q150");
  }
  cipher::Drbg rng(to_bytes("hcpp-params-production-v1"));
  GeneratedParams gp = generate_params(160, 512, rng);
  return make_curve(gp, "hcpp-production-p512-q160");
}

}  // namespace

const CurveCtx& params(ParamSet set) {
  static std::once_flag flags[2];
  static std::unique_ptr<CurveCtx> ctxs[2];
  size_t idx = (set == ParamSet::kTest) ? 0 : 1;
  std::call_once(flags[idx], [&] { ctxs[idx] = build_named(set); });
  return *ctxs[idx];
}

}  // namespace hcpp::curve
