#include "src/curve/pairing.h"

#include <stdexcept>

#include "src/obs/metrics.h"
#include "src/par/pool.h"

namespace hcpp::curve {

using field::Fp;
using field::Fp2;

// ---------------------------------------------------------------------------
// Projective (inversion-free) Miller loop.
//
// The loop point V lives in Jacobian coordinates (X, Y, Z), x = X/Z²,
// y = Y/Z³. Each step emits the line through the step's points, evaluated at
// ψ(Q) = (−x_Q, y_Q·i) and scaled by a nonzero F_p factor (2YZ³ for
// tangents, 2HZ for chords). The scale factors are killed by the (p−1) part
// of the final exponentiation, exactly like the vertical-line denominators
// the affine loop already drops, so no step ever inverts anything.
//
// Lines are produced as coefficients (c0, c1, c2) with
//     l(Q) = (c0 + c1·x_Q) + (c2·y_Q)·i,
// which is what PairingPrecomp stores; the one-shot paths evaluate them
// immediately.

namespace {

struct LineCoeffs {
  Fp c0, c1, c2;
  bool ident = false;  // degenerate step (V at infinity / vertical line)
};

// Jacobian loop point. infinity uses the flag, not Z == 0, to mirror Point.
struct MillerPoint {
  Fp x, y, z;
  bool infinity = false;
};

LineCoeffs ident_line() {
  LineCoeffs lc;
  lc.ident = true;
  return lc;
}

// Tangent line at V, scaled by 2YZ³, then V <- 2V (dbl-2007-bl, a = 1):
//   M = 3X² + Z⁴,  l = (M·X − 2Y² + M·Z²·x_Q) + (Z₃·Z²·y_Q)·i,  Z₃ = 2YZ.
LineCoeffs double_step(MillerPoint& v) {
  if (v.infinity) return ident_line();
  if (v.y.is_zero()) {  // 2-torsion: tangent is vertical, value in F_p
    v.infinity = true;
    return ident_line();
  }
  Fp xx = v.x.sqr();
  Fp yy = v.y.sqr();
  Fp yyyy = yy.sqr();
  Fp zz = v.z.sqr();
  Fp s = (v.x + yy).sqr() - xx - yyyy;
  s = s + s;
  Fp z4 = zz.sqr();
  Fp m = xx + xx + xx + z4;  // a = 1
  Fp t = m.sqr() - s - s;
  Fp z3 = (v.y + v.z).sqr() - yy - zz;  // 2YZ
  LineCoeffs lc;
  lc.c0 = m * v.x - (yy + yy);
  lc.c1 = m * zz;
  lc.c2 = z3 * zz;
  Fp eight_yyyy = yyyy + yyyy;
  eight_yyyy = eight_yyyy + eight_yyyy;
  eight_yyyy = eight_yyyy + eight_yyyy;
  v.x = t;
  v.y = m * (s - t) - eight_yyyy;
  v.z = z3;
  return lc;
}

// Chord through V and the affine base point (px, py), scaled by 2HZ, then
// V <- V + P (mixed add-2007-bl):
//   l = (R·p_x − p_y·Z₃ + R·x_Q) + (Z₃·y_Q)·i,  R = 2(S₂ − Y),  Z₃ = 2HZ.
LineCoeffs add_step(MillerPoint& v, const Fp& px, const Fp& py) {
  if (v.infinity) return ident_line();
  Fp z1z1 = v.z.sqr();
  Fp u2 = px * z1z1;
  Fp s2 = py * z1z1 * v.z;
  if (v.x == u2) {
    if (v.y == s2) return double_step(v);
    // V = −P: the chord is vertical, its value lies in F_p and is wiped by
    // the final exponentiation; the sum is the point at infinity.
    v.infinity = true;
    return ident_line();
  }
  Fp h = u2 - v.x;
  Fp hh = h.sqr();
  Fp i4 = hh + hh;
  i4 = i4 + i4;
  Fp j = h * i4;
  Fp rr = s2 - v.y;
  rr = rr + rr;
  Fp vv = v.x * i4;
  Fp z3 = (v.z + h).sqr() - z1z1 - hh;  // 2HZ
  LineCoeffs lc;
  lc.c0 = rr * px - py * z3;
  lc.c1 = rr;
  lc.c2 = z3;
  Fp x3 = rr.sqr() - j - vv - vv;
  Fp two_yj = v.y * j;
  two_yj = two_yj + two_yj;
  v.y = rr * (vv - x3) - two_yj;
  v.x = x3;
  v.z = z3;
  return lc;
}

Fp2 eval_line(const LineCoeffs& lc, const Fp& xq, const Fp& yq) {
  return Fp2(lc.c0 + lc.c1 * xq, lc.c2 * yq);
}

MillerPoint miller_start(const CurveCtx& ctx, const Point& p) {
  return MillerPoint{p.x, p.y, Fp::one(&ctx.fp), false};
}

// f^((p²−1)/q) = (f^(p−1))^c with f^(p−1) = conj(f)·f^{-1} (the Frobenius on
// F_{p^2} is conjugation). The single inversion of the whole pairing.
Gt final_exponentiation(const CurveCtx& ctx, const Fp2& f) {
  obs::count(obs::kFinalExp);
  Fp2 t = f.conj() * f.inv();
  return Gt(t.pow(ctx.cofactor));
}

}  // namespace

Gt pairing(const CurveCtx& ctx, const Point& p_in, const Point& q_in) {
  obs::count(obs::kPairing);
  if (p_in.infinity || q_in.infinity) return Gt::one(ctx);
  const Fp& xq = q_in.x;
  const Fp& yq = q_in.y;
  Fp2 f = Fp2::one(&ctx.fp);
  MillerPoint v = miller_start(ctx, p_in);
  for (size_t i = ctx.q.bit_length() - 1; i-- > 0;) {
    f = f.sqr();
    LineCoeffs lc = double_step(v);
    if (!lc.ident) f = f * eval_line(lc, xq, yq);
    if (ctx.q.bit(i)) {
      lc = add_step(v, p_in.x, p_in.y);
      if (!lc.ident) f = f * eval_line(lc, xq, yq);
    }
  }
  return final_exponentiation(ctx, f);
}

// ---------------------------------------------------------------------------
// Fixed-argument precomputation.

PairingPrecomp::PairingPrecomp(const CurveCtx& ctx, const Point& p)
    : ctx_(&ctx) {
  obs::count(obs::kPairingPrecompBuild);
  if (p.infinity) return;
  // One doubling line per loop iteration plus one addition line per set bit;
  // record them in exactly the order pairing_with will consume them.
  const size_t nbits = ctx.q.bit_length();
  std::vector<LineCoeffs> raw;
  raw.reserve(2 * nbits);
  MillerPoint v = miller_start(ctx, p);
  for (size_t i = nbits - 1; i-- > 0;) {
    raw.push_back(double_step(v));
    if (ctx.q.bit(i)) raw.push_back(add_step(v, p.x, p.y));
  }
  // Normalize each line by its c2 (2YZ³·Z² for tangents, 2HZ for chords —
  // never zero on a non-degenerate step). Dividing a line by an F_p scalar
  // changes the pairing value only by a factor the final exponentiation
  // kills, and the normalized form drops the c2·y_Q multiplication from
  // every pairing_with line evaluation. One batch inversion for the whole
  // cache via Montgomery's trick.
  std::vector<mp::U512> c2s;
  c2s.reserve(raw.size());
  for (const LineCoeffs& lc : raw) {
    if (!lc.ident) c2s.push_back(lc.c2.raw());
  }
  ctx.fp.mont.batch_inv(c2s);
  lines_.reserve(raw.size());
  size_t k = 0;
  for (const LineCoeffs& lc : raw) {
    if (lc.ident) {
      lines_.push_back({Fp(), Fp(), true});
      continue;
    }
    Fp c2inv = Fp::from_raw(&ctx.fp, c2s[k++]);
    lines_.push_back({lc.c0 * c2inv, lc.c1 * c2inv, false});
  }
}

Fp2 PairingPrecomp::miller_with(const Point& q) const {
  // Each call is one full pairing whose Miller-loop point arithmetic the
  // line cache already paid for — the quantity benches call "saved loops".
  obs::count(obs::kPairingFixed);
  if (trivial() || q.infinity) {
    if (ctx_ == nullptr) {
      throw std::logic_error("PairingPrecomp: default-constructed");
    }
    return Fp2::one(&ctx_->fp);
  }
  const Fp& xq = q.x;
  const Fp& yq = q.y;
  Fp2 f = Fp2::one(&ctx_->fp);
  size_t k = 0;
  for (size_t i = ctx_->q.bit_length() - 1; i-- > 0;) {
    f = f.sqr();
    const Line& dl = lines_[k++];
    if (!dl.ident) f = f * Fp2(dl.c0 + dl.c1 * xq, yq);
    if (ctx_->q.bit(i)) {
      const Line& al = lines_[k++];
      if (!al.ident) f = f * Fp2(al.c0 + al.c1 * xq, yq);
    }
  }
  return f;
}

Gt PairingPrecomp::pairing_with(const Point& q) const {
  if (trivial() || q.infinity) {
    if (ctx_ == nullptr) {
      throw std::logic_error("PairingPrecomp: default-constructed");
    }
    obs::count(obs::kPairingFixed);
    return Gt::one(*ctx_);
  }
  return final_exponentiation(*ctx_, miller_with(q));
}

// ---------------------------------------------------------------------------
// Multi-pairing.

Gt pairing_product(const CurveCtx& ctx, std::span<const PairingTerm> terms) {
  struct Term {
    MillerPoint v;
    const Point* p;
    const Point* q;
  };
  obs::count(obs::kPairingProduct);
  obs::count(obs::kPairingProductTerms, terms.size());
  std::vector<Term> live;
  live.reserve(terms.size());
  for (const PairingTerm& t : terms) {
    if (t.first.infinity || t.second.infinity) continue;
    live.push_back({miller_start(ctx, t.first), &t.first, &t.second});
  }
  if (live.empty()) return Gt::one(ctx);
  Fp2 f = Fp2::one(&ctx.fp);
  for (size_t i = ctx.q.bit_length() - 1; i-- > 0;) {
    f = f.sqr();  // shared across every term
    for (Term& t : live) {
      LineCoeffs lc = double_step(t.v);
      if (!lc.ident) f = f * eval_line(lc, t.q->x, t.q->y);
    }
    if (ctx.q.bit(i)) {
      for (Term& t : live) {
        LineCoeffs lc = add_step(t.v, t.p->x, t.p->y);
        if (!lc.ident) f = f * eval_line(lc, t.q->x, t.q->y);
      }
    }
  }
  return final_exponentiation(ctx, f);  // shared across every term
}

std::vector<Gt> final_exp_batch(const CurveCtx& ctx,
                                std::span<const Fp2> fs,
                                par::ThreadPool* pool) {
  std::vector<Gt> out(fs.size());
  if (fs.empty()) return out;
  obs::count(obs::kFinalExpBatched, fs.size());
  // f^(p−1) = conj(f)·f^{−1} = conj(f)²·(re²+im²)^{−1}: the inverse needed
  // is of the F_p norm, so one Montgomery-trick batch inversion replaces the
  // per-pairing inversion — the only inversion a pairing performs at all.
  std::vector<mp::U512> norms(fs.size());
  for (size_t i = 0; i < fs.size(); ++i) {
    norms[i] = (fs[i].re().sqr() + fs[i].im().sqr()).raw();
  }
  ctx.fp.mont.batch_inv(norms);  // Miller values are never 0
  auto finish = [&](size_t i) {
    Fp2 c2 = fs[i].conj().sqr();
    Fp ninv = Fp::from_raw(&ctx.fp, norms[i]);
    Fp2 t(c2.re() * ninv, c2.im() * ninv);
    out[i] = Gt(t.pow(ctx.cofactor));
  };
  if (pool != nullptr && fs.size() > 1) {
    pool->parallel_for(fs.size(), finish);
  } else {
    for (size_t i = 0; i < fs.size(); ++i) finish(i);
  }
  return out;
}

const PairingPrecomp& generator_precomp(const CurveCtx& ctx) {
  std::call_once(ctx.gen_precomp_once, [&ctx] {
    ctx.gen_precomp =
        std::make_unique<PairingPrecomp>(ctx, generator(ctx));
  });
  return *ctx.gen_precomp;
}

// ---------------------------------------------------------------------------
// Reference implementation: the original affine loop, one extended-GCD
// inversion per step. Oracle only.

namespace {

Fp2 ref_double_step(const CurveCtx& ctx, Point& v, const Fp& neg_xq,
                    const Fp& yq) {
  const Fp one = Fp::one(&ctx.fp);
  Fp x_sq = v.x.sqr();
  Fp slope = (x_sq + x_sq + x_sq + one) * (v.y + v.y).inv();
  // l(X, Y) = Y − y_v − m(X − x_v); at ψ(Q) = (−x_q, y_q·i):
  // real = −y_v − m(−x_q − x_v) = m(x_v − (−x_q)) − y_v, imag = y_q.
  Fp real = slope * (v.x - neg_xq) - v.y;
  Fp2 line(real, yq);
  Fp x3 = slope.sqr() - v.x - v.x;
  Fp y3 = slope * (v.x - x3) - v.y;
  v = Point{x3, y3, false};
  return line;
}

Fp2 ref_add_step(const CurveCtx& ctx, Point& v, const Point& p,
                 const Fp& neg_xq, const Fp& yq) {
  if (v.x == p.x) {
    if (v.y == p.y.neg()) {
      v = Point::at_infinity();
      return Fp2::one(&ctx.fp);
    }
    return ref_double_step(ctx, v, neg_xq, yq);
  }
  Fp slope = (p.y - v.y) * (p.x - v.x).inv();
  Fp real = slope * (v.x - neg_xq) - v.y;
  Fp2 line(real, yq);
  Fp x3 = slope.sqr() - v.x - p.x;
  Fp y3 = slope * (v.x - x3) - v.y;
  v = Point{x3, y3, false};
  return line;
}

}  // namespace

Gt pairing_reference(const CurveCtx& ctx, const Point& p_in,
                     const Point& q_in) {
  obs::count(obs::kPairingReference);
  if (p_in.infinity || q_in.infinity) return Gt::one(ctx);
  const Fp neg_xq = q_in.x.neg();
  const Fp yq = q_in.y;
  Fp2 f = Fp2::one(&ctx.fp);
  Point v = p_in;
  for (size_t i = ctx.q.bit_length() - 1; i-- > 0;) {
    f = f.sqr();
    if (!v.infinity) f = f * ref_double_step(ctx, v, neg_xq, yq);
    if (ctx.q.bit(i) && !v.infinity) {
      f = f * ref_add_step(ctx, v, p_in, neg_xq, yq);
    }
  }
  Fp2 t = f.conj() * f.inv();
  return Gt(t.pow(ctx.cofactor));
}

}  // namespace hcpp::curve
