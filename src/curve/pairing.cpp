#include "src/curve/pairing.h"

namespace hcpp::curve {

using field::Fp;
using field::Fp2;

namespace {

// Evaluates the tangent line at V against ψ(Q) = (−xq, yq·i) and advances
// V <- 2V. Returns the line value in F_{p^2}.
Fp2 double_step(const CurveCtx& ctx, Point& v, const Fp& neg_xq,
                const Fp& yq) {
  const Fp one = Fp::one(&ctx.fp);
  Fp x_sq = v.x.sqr();
  Fp slope = (x_sq + x_sq + x_sq + one) * (v.y + v.y).inv();
  // l(X, Y) = Y − y_v − m(X − x_v); at ψ(Q) = (−x_q, y_q·i):
  // real = −y_v − m(−x_q − x_v) = m(x_v − (−x_q)) − y_v, imag = y_q.
  Fp real = slope * (v.x - neg_xq) - v.y;
  Fp2 line(real, yq);
  Fp x3 = slope.sqr() - v.x - v.x;
  Fp y3 = slope * (v.x - x3) - v.y;
  v = Point{x3, y3, false};
  return line;
}

// Evaluates the chord through V and P against ψ(Q) and advances V <- V + P.
// When V = −P the chord is vertical: its value lies in F_p and is wiped out
// by the final exponentiation, so we contribute 1 and set V to infinity.
Fp2 add_step(const CurveCtx& ctx, Point& v, const Point& p, const Fp& neg_xq,
             const Fp& yq) {
  if (v.x == p.x) {
    if (v.y == p.y.neg()) {
      v = Point::at_infinity();
      return Fp2::one(&ctx.fp);
    }
    return double_step(ctx, v, neg_xq, yq);
  }
  Fp slope = (p.y - v.y) * (p.x - v.x).inv();
  Fp real = slope * (v.x - neg_xq) - v.y;
  Fp2 line(real, yq);
  Fp x3 = slope.sqr() - v.x - p.x;
  Fp y3 = slope * (v.x - x3) - v.y;
  v = Point{x3, y3, false};
  return line;
}

}  // namespace

Gt pairing(const CurveCtx& ctx, const Point& p_in, const Point& q_in) {
  if (p_in.infinity || q_in.infinity) return Gt::one(ctx);
  const Fp neg_xq = q_in.x.neg();
  const Fp yq = q_in.y;
  Fp2 f = Fp2::one(&ctx.fp);
  Point v = p_in;
  for (size_t i = ctx.q.bit_length() - 1; i-- > 0;) {
    f = f.sqr();
    if (!v.infinity) f = f * double_step(ctx, v, neg_xq, yq);
    if (ctx.q.bit(i) && !v.infinity) {
      f = f * add_step(ctx, v, p_in, neg_xq, yq);
    }
  }
  // Final exponentiation: f^((p^2−1)/q) = (f^(p−1))^c. The Frobenius on
  // F_{p^2} is conjugation, so f^(p−1) = conj(f)·f^{-1}.
  Fp2 t = f.conj() * f.inv();
  return Gt(t.pow(ctx.cofactor));
}

}  // namespace hcpp::curve
