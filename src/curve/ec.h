// The pairing group G1: the order-q subgroup of the supersingular curve
//   E: y^2 = x^3 + x  over F_p,   p ≡ 3 (mod 4),   #E(F_p) = p + 1 = c·q.
// The distortion map ψ(x, y) = (−x, i·y) sends G1 into a linearly
// independent order-q subgroup of E(F_{p^2}), giving the modified Tate
// pairing ê(P, Q) = e(P, ψ(Q)) used throughout HCPP (§II.A).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/field/fp2.h"
#include "src/mp/u512.h"

namespace hcpp::curve {

struct Point;
class PairingPrecomp;  // pairing.h

/// Domain parameters plus derived contexts. Construct via Params (params.h)
/// or from a freshly generated set (tools/gen_params).
struct CurveCtx {
  mp::U512 p;         // field prime, p ≡ 3 (mod 4)
  mp::U512 q;         // prime group order
  mp::U512 cofactor;  // (p+1)/q
  field::FpCtx fp;    // base field context
  mp::MontCtx zq;     // scalar field context (mod q)
  // Generator of the order-q subgroup (affine coordinates, plain form).
  mp::U512 gx, gy;
  std::string name;

  CurveCtx(const mp::U512& p_in, const mp::U512& q_in, const mp::U512& gx_in,
           const mp::U512& gy_in, std::string name_in);
  ~CurveCtx();  // out of line: PairingPrecomp is incomplete here

  // Lazily built fixed-base table for the generator (see mul_generator).
  mutable std::once_flag fixed_base_once;
  mutable std::vector<std::vector<Point>> fixed_base_table;
  // Lazily built Miller-loop line cache for the generator (see
  // generator_precomp in pairing.h).
  mutable std::once_flag gen_precomp_once;
  mutable std::unique_ptr<PairingPrecomp> gen_precomp;
};

/// Affine point (infinity encoded explicitly). Value type; all operations
/// take the context explicitly.
struct Point {
  field::Fp x, y;
  bool infinity = true;

  static Point at_infinity() { return Point{}; }
  friend bool operator==(const Point& a, const Point& b) noexcept;
};

/// Generator of G1.
Point generator(const CurveCtx& ctx);

/// True iff P is on the curve (or at infinity).
bool on_curve(const CurveCtx& ctx, const Point& pt);

/// True iff P is a non-infinity point of exact prime order q. Servers must
/// check received points with this before deriving pairing keys from them:
/// an on-curve point of small order would confine ê(Γ, P) to a small,
/// brute-forceable subgroup of GT (small-subgroup attack).
bool in_prime_subgroup(const CurveCtx& ctx, const Point& pt);

Point add(const CurveCtx& ctx, const Point& a, const Point& b);
Point dbl(const CurveCtx& ctx, const Point& a);
Point negate(const Point& a);
/// Scalar multiplication (Jacobian double-and-add internally).
Point mul(const CurveCtx& ctx, const Point& a, const mp::U512& k);
/// Width-4 wNAF scalar multiplication — same result, ~25% fewer additions;
/// benchmark E2 carries the ablation.
Point mul_wnaf(const CurveCtx& ctx, const Point& a, const mp::U512& k);
/// k·P (generator) via the context's cached fixed-base window table: only
/// point additions, no doublings. Built lazily, thread-safe.
Point mul_generator(const CurveCtx& ctx, const mp::U512& k);

/// Uniform nonzero scalar in [1, q).
mp::U512 random_scalar(const CurveCtx& ctx, RandomSource& rng);

/// Hash-to-G1 (the scheme's H1): try-and-increment onto the curve, then
/// clear the cofactor. Domain-separated by `tag`.
Point hash_to_point(const CurveCtx& ctx, BytesView msg,
                    std::string_view tag = "hcpp-h1");

/// Hash to a nonzero scalar mod q (the PEKS keyword hash H2').
mp::U512 hash_to_scalar(const CurveCtx& ctx, BytesView msg,
                        std::string_view tag = "hcpp-h2");

/// Serialization: 1 flag byte + two 64-byte coordinates (infinity: 1 byte).
Bytes point_to_bytes(const Point& pt);
Point point_from_bytes(const CurveCtx& ctx, BytesView b);

/// Compressed serialization: 1 flag byte (2 | y-parity) + 64-byte x; the
/// decoder recovers y via the curve equation (p ≡ 3 mod 4 square root).
/// Halves point wire size at the cost of one field exponentiation.
Bytes point_to_bytes_compressed(const Point& pt);
Point point_from_bytes_compressed(const CurveCtx& ctx, BytesView b);

}  // namespace hcpp::curve
