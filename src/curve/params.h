// Named pairing parameter sets and fresh parameter generation.
//
//  * kTest       — 256-bit p / 150-bit q: fast, used by the test suite.
//  * kProduction — 512-bit p / 160-bit q: the "1024-bit RSA equivalent"
//                  setting the paper's §V.B.3 timing discussion assumes.
//
// Both named sets are generated deterministically (fixed seeds) on first use
// and cached for the process lifetime, so every test/bench run shares one
// context per set.
#pragma once

#include <memory>

#include "src/curve/ec.h"

namespace hcpp::curve {

enum class ParamSet { kTest, kProduction };

/// Shared immutable context for a named set (never null).
const CurveCtx& params(ParamSet set);

struct GeneratedParams {
  mp::U512 p, q, gx, gy;
};

/// Generates a fresh domain: prime q of `q_bits`, prime p = c·q − 1 of about
/// `p_bits` bits with p ≡ 3 (mod 4), and a generator of the order-q subgroup.
GeneratedParams generate_params(size_t q_bits, size_t p_bits,
                                RandomSource& rng);

/// Wraps generated parameters in a context (validates q | p+1, generator
/// order and curve membership; throws std::invalid_argument on failure).
std::unique_ptr<CurveCtx> make_curve(const GeneratedParams& gp,
                                     std::string name);

}  // namespace hcpp::curve
