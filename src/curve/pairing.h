// Modified Tate pairing ê: G1 × G1 → GT ⊂ F_{p^2}* (the paper's bilinear map
// e of §II.A). Computed as the Tate pairing e(P, ψ(Q)) with the distortion
// map ψ(x, y) = (−x, i·y), using Miller's algorithm with denominator
// elimination (all vertical-line values land in F_p and are annihilated by
// the (p−1) factor of the final exponentiation (p²−1)/q = (p−1)·c).
#pragma once

#include "src/curve/ec.h"

namespace hcpp::curve {

/// Target-group element wrapper. Elements returned by `pairing` lie in the
/// order-q subgroup of F_{p^2}*.
class Gt {
 public:
  Gt() = default;
  explicit Gt(field::Fp2 v) : v_(std::move(v)) {}

  static Gt one(const CurveCtx& ctx) {
    return Gt(field::Fp2::one(&ctx.fp));
  }

  [[nodiscard]] Gt operator*(const Gt& o) const { return Gt(v_ * o.v_); }
  [[nodiscard]] Gt pow(const mp::U512& e) const { return Gt(v_.pow(e)); }
  [[nodiscard]] Gt inv() const { return Gt(v_.inv()); }
  [[nodiscard]] bool is_one() const { return v_.is_one(); }

  friend bool operator==(const Gt& a, const Gt& b) noexcept = default;

  /// Canonical 128-byte encoding; feed into HKDF for key derivation.
  [[nodiscard]] Bytes to_bytes() const { return v_.to_bytes(); }

 private:
  field::Fp2 v_;
};

/// ê(P, Q). Returns Gt::one if either input is the point at infinity.
Gt pairing(const CurveCtx& ctx, const Point& p_in, const Point& q_in);

}  // namespace hcpp::curve
