// Modified Tate pairing ê: G1 × G1 → GT ⊂ F_{p^2}* (the paper's bilinear map
// e of §II.A). Computed as the Tate pairing e(P, ψ(Q)) with the distortion
// map ψ(x, y) = (−x, i·y), using Miller's algorithm with denominator
// elimination (all vertical-line values land in F_p and are annihilated by
// the (p−1) factor of the final exponentiation (p²−1)/q = (p−1)·c).
//
// The production entry points keep the loop point V in Jacobian coordinates
// and scale every line value by a factor in F_p (2YZ³ for tangents, 2HZ for
// chords), which the final exponentiation also annihilates — so the Miller
// loop runs without a single field inversion (Barreto–Kim–Lynn–Scott,
// CRYPTO 2002). The only inversion left in a pairing is the one inside
// f^(p−1) = conj(f)·f^{-1} of the final exponentiation.
//
// Three evaluation modes:
//   * pairing(ctx, P, Q)        — one-shot, inversion-free projective loop.
//   * PairingPrecomp            — caches the Miller-loop line coefficients of
//     a fixed first argument (Scott, CT-RSA 2005); each pairing_with(Q) then
//     pays only 2 F_p multiplications per line plus the shared squaring
//     chain and final exponentiation.
//   * pairing_product(ctx, ts)  — Π ê(P_i, Q_i) sharing one squaring chain
//     and one final exponentiation across all terms (use negate(P_i) for an
//     inverse factor); what HIBC decrypt/verify use instead of ℓ+1
//     independent pairings.
// pairing_reference keeps the original affine loop as the cross-check oracle
// for all of the above (tests/test_pairing.cpp, ctest pairing_consistency).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "src/curve/ec.h"

namespace hcpp::par {
class ThreadPool;
}

namespace hcpp::curve {

/// Target-group element wrapper. Elements returned by `pairing` lie in the
/// order-q subgroup of F_{p^2}*.
class Gt {
 public:
  Gt() = default;
  explicit Gt(field::Fp2 v) : v_(std::move(v)) {}

  static Gt one(const CurveCtx& ctx) {
    return Gt(field::Fp2::one(&ctx.fp));
  }

  [[nodiscard]] Gt operator*(const Gt& o) const { return Gt(v_ * o.v_); }
  [[nodiscard]] Gt pow(const mp::U512& e) const { return Gt(v_.pow(e)); }
  [[nodiscard]] Gt inv() const { return Gt(v_.inv()); }
  [[nodiscard]] bool is_one() const { return v_.is_one(); }

  friend bool operator==(const Gt& a, const Gt& b) noexcept = default;

  /// Canonical 128-byte encoding; feed into HKDF for key derivation.
  [[nodiscard]] Bytes to_bytes() const { return v_.to_bytes(); }

 private:
  field::Fp2 v_;
};

/// ê(P, Q). Returns Gt::one if either input is the point at infinity.
Gt pairing(const CurveCtx& ctx, const Point& p_in, const Point& q_in);

/// The original affine Miller loop (one inversion per step). Kept as the
/// slow, independently-derived oracle the optimized paths are tested
/// against; never call it on a hot path.
Gt pairing_reference(const CurveCtx& ctx, const Point& p_in,
                     const Point& q_in);

/// Cached Miller-loop line coefficients for a fixed first argument P. The
/// loop emits each line as (c0, c1, c2) with value (c0 + c1·x_Q) +
/// (c2·y_Q)·i; the constructor divides every non-degenerate line by its c2
/// (one batch inversion for the whole cache — c2 is a nonzero F_p factor,
/// annihilated by the final exponentiation like every other line scale), so
/// the stored form is (c0, c1) with value (c0 + c1·x_Q) + y_Q·i and
/// pairing_with(Q) pays one F_p multiplication less per line — no point
/// arithmetic at all. Because ê is symmetric, a fixed argument on *either*
/// side of a pairing can be hoisted through this type.
class PairingPrecomp {
 public:
  PairingPrecomp() = default;
  PairingPrecomp(const CurveCtx& ctx, const Point& p);

  /// ê(P_fixed, Q).
  [[nodiscard]] Gt pairing_with(const Point& q) const;

  /// The Miller-loop value of ê(P_fixed, Q) *before* the final
  /// exponentiation. Raising it with final_exp_batch (or multiplying several
  /// such values first — FE is a group homomorphism) yields the same Gt as
  /// pairing_with; the cross-request coalescer in core uses this to share
  /// the per-pairing inversion across a whole drain. Returns 1 for a
  /// trivial precomp or infinite Q (throws if default-constructed, like
  /// pairing_with).
  [[nodiscard]] field::Fp2 miller_with(const Point& q) const;

  /// True when default-constructed or built from the point at infinity
  /// (every pairing_with then returns Gt::one).
  [[nodiscard]] bool trivial() const noexcept {
    return ctx_ == nullptr || lines_.empty();
  }

 private:
  struct Line {
    field::Fp c0, c1;    // c2-normalized: value is (c0 + c1·x_Q) + y_Q·i
    bool ident = false;  // line degenerated to 1 (post-infinity steps)
  };
  const CurveCtx* ctx_ = nullptr;
  std::vector<Line> lines_;
};

/// One multi-pairing factor ê(p, q).
using PairingTerm = std::pair<Point, Point>;

/// Π_i ê(terms[i].first, terms[i].second) with one shared squaring chain and
/// one final exponentiation. Infinity terms contribute 1. For a factor
/// ê(P, Q)^{-1} pass {negate(P), Q}.
Gt pairing_product(const CurveCtx& ctx, std::span<const PairingTerm> terms);

/// Applies the final exponentiation f^((p²−1)/q) to every Miller value in
/// `fs` at the cost of ONE modular inversion for the whole batch: each
/// f^(p−1) = conj(f)·f^{−1} = conj(f)²·norm(f)^{−1} needs only the inverse
/// of the F_p norm re²+im², and those are batch-inverted with Montgomery's
/// trick. The cofactor powers (the bulk of the work) are sharded onto
/// `pool` when given (nullptr = serial). Element i of the result equals
/// final exponentiation of fs[i] exactly.
std::vector<Gt> final_exp_batch(const CurveCtx& ctx,
                                std::span<const field::Fp2> fs,
                                par::ThreadPool* pool = nullptr);

/// Per-context PairingPrecomp for the group generator, built lazily and
/// cached on the CurveCtx (thread-safe). Every protocol pairing with P as
/// one argument — Hess IBS sign/verify, pseudonym validity, HIBC verify —
/// goes through this table.
const PairingPrecomp& generator_precomp(const CurveCtx& ctx);

}  // namespace hcpp::curve
