// Minimal deterministic binary serialization used for wire messages, the SSE
// secure index, and stored records. Big-endian, length-prefixed; the encoded
// size is exactly what the communication benchmarks charge to the network.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace hcpp::io {

/// Append-only encoder.
class Writer {
 public:
  void u8(uint8_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  /// Length-prefixed (u32) byte string.
  void bytes(BytesView b);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes with no length prefix (caller knows the fixed width).
  void raw(BytesView b);

  [[nodiscard]] const Bytes& data() const noexcept { return buf_; }
  Bytes take() noexcept { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Sequential decoder over a borrowed buffer. Throws std::out_of_range on
/// truncated input (malformed wire data must never be silently accepted).
class Reader {
 public:
  explicit Reader(BytesView b) noexcept : buf_(b) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  Bytes bytes();
  std::string str();
  Bytes raw(size_t n);
  /// Element count (u32/u64 prefix) validated against the bytes still
  /// available: each element consumes at least `min_elem_bytes` of input, so
  /// a count promising more elements than the buffer could hold is rejected
  /// here — before any caller reserve()/resize() turns an attacker-chosen
  /// length into a giant allocation.
  size_t count32(size_t min_elem_bytes = 1);
  size_t count64(size_t min_elem_bytes = 1);

  [[nodiscard]] bool done() const noexcept { return pos_ == buf_.size(); }
  [[nodiscard]] size_t remaining() const noexcept { return buf_.size() - pos_; }

 private:
  void need(size_t n) const;
  size_t checked_count(uint64_t n, size_t min_elem_bytes) const;
  BytesView buf_;
  size_t pos_ = 0;
};

}  // namespace hcpp::io
