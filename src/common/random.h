// Abstract randomness source. The concrete implementation is the ChaCha20
// DRBG in src/cipher/drbg.h; lower layers (multiprecision, curve) depend only
// on this interface so they stay decoupled from the cipher stack and so tests
// can inject deterministic streams.
#pragma once

#include <cstdint>
#include <span>

#include "src/common/bytes.h"

namespace hcpp {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Fills `out` with uniformly random bytes.
  virtual void fill(std::span<uint8_t> out) = 0;

  /// Convenience: a fresh buffer of `n` random bytes.
  Bytes bytes(size_t n) {
    Bytes b(n);
    fill(b);
    return b;
  }

  /// Convenience: one uniformly random 64-bit word.
  uint64_t u64() {
    uint8_t b[8];
    fill(b);
    uint64_t v = 0;
    for (uint8_t byte : b) v = (v << 8) | byte;
    return v;
  }
};

}  // namespace hcpp
