#include "src/common/serialize.h"

#include <stdexcept>

namespace hcpp::io {

void Writer::u8(uint8_t v) { buf_.push_back(v); }

void Writer::u32(uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void Writer::u64(uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void Writer::bytes(BytesView b) {
  if (b.size() > UINT32_MAX) throw std::length_error("Writer::bytes: too long");
  u32(static_cast<uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  bytes(BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

void Writer::raw(BytesView b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

void Reader::need(size_t n) const {
  if (buf_.size() - pos_ < n) {
    throw std::out_of_range("Reader: truncated input");
  }
}

uint8_t Reader::u8() {
  need(1);
  return buf_[pos_++];
}

uint32_t Reader::u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | buf_[pos_++];
  return v;
}

uint64_t Reader::u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf_[pos_++];
  return v;
}

Bytes Reader::bytes() {
  uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

size_t Reader::count32(size_t min_elem_bytes) {
  return checked_count(u32(), min_elem_bytes);
}

size_t Reader::count64(size_t min_elem_bytes) {
  return checked_count(u64(), min_elem_bytes);
}

size_t Reader::checked_count(uint64_t n, size_t min_elem_bytes) const {
  const size_t per_elem = min_elem_bytes == 0 ? 1 : min_elem_bytes;
  if (n > remaining() / per_elem) {
    throw std::out_of_range("Reader: element count exceeds available bytes");
  }
  return static_cast<size_t>(n);
}

Bytes Reader::raw(size_t n) {
  need(n);
  Bytes out(buf_.begin() + static_cast<ptrdiff_t>(pos_),
            buf_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace hcpp::io
