// Byte-buffer utilities shared across the HCPP library.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hcpp {

/// Owning byte buffer used throughout the library for keys, ciphertexts and
/// wire messages.
using Bytes = std::vector<uint8_t>;

/// Non-owning read-only view over bytes; preferred parameter type.
using BytesView = std::span<const uint8_t>;

/// Builds a byte buffer from a UTF-8 string (no terminator).
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as a UTF-8 string.
std::string to_string(BytesView b);

/// Lower-case hex encoding.
std::string hex_encode(BytesView b);

/// Decodes lower/upper-case hex; throws std::invalid_argument on bad input.
Bytes hex_decode(std::string_view hex);

/// XOR of two equal-length buffers; throws std::invalid_argument on mismatch.
Bytes xor_bytes(BytesView a, BytesView b);

/// Constant-time equality (length leaks, contents do not).
bool ct_equal(BytesView a, BytesView b) noexcept;

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Concatenates any number of buffers.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  (append(out, BytesView(views)), ...);
  return out;
}

/// Securely wipes a buffer before it is released.
void secure_wipe(Bytes& b) noexcept;

}  // namespace hcpp
