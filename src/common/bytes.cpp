#include "src/common/bytes.h"

#include <stdexcept>

namespace hcpp {

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) { return std::string(b.begin(), b.end()); }

std::string hex_encode(BytesView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: invalid hex digit");
}
}  // namespace

Bytes hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("hex_decode: odd-length input");
  }
  Bytes out(hex.size() / 2);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>((hex_nibble(hex[2 * i]) << 4) |
                                  hex_nibble(hex[2 * i + 1]));
  }
  return out;
}

Bytes xor_bytes(BytesView a, BytesView b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("xor_bytes: length mismatch");
  }
  Bytes out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool ct_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

void secure_wipe(Bytes& b) noexcept {
  volatile uint8_t* p = b.data();
  for (size_t i = 0; i < b.size(); ++i) p[i] = 0;
  b.clear();
}

}  // namespace hcpp
