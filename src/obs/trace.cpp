#include "src/obs/trace.h"

#include <cinttypes>
#include <cstdio>

#include "src/sim/clock.h"

namespace hcpp::obs {

void Tracer::enable(const sim::Clock& clock, size_t max_spans) {
  std::lock_guard<std::mutex> lock(mu_);
  max_spans_ = max_spans;
  clock_.store(&clock, std::memory_order_release);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_.clear();
  open_crypto_.clear();
  dropped_ = 0;
}

Tracer::CryptoCounts Tracer::crypto_now() const {
  CryptoCounts c;
  c.pairing = owner_->counter(kPairing);
  c.fixed = owner_->counter(kPairingFixed);
  c.product_terms = owner_->counter(kPairingProductTerms);
  c.point_mul = owner_->counter(kPointMul);
  c.hash_to_point = owner_->counter(kHashToPoint);
  return c;
}

int32_t Tracer::open(std::string_view name) {
  const sim::Clock* clock = clock_.load(std::memory_order_acquire);
  if (clock == nullptr) return -1;
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return -1;
  }
  SpanRecord rec;
  rec.name = std::string(name);
  rec.start_ns = clock->now();
  rec.depth = static_cast<uint32_t>(open_.size());
  rec.parent = open_.empty() ? -1 : open_.back();
  int32_t index = static_cast<int32_t>(spans_.size());
  spans_.push_back(std::move(rec));
  open_.push_back(index);
  open_crypto_.push_back(crypto_now());
  return index;
}

void Tracer::close(int32_t index) {
  const sim::Clock* clock = clock_.load(std::memory_order_acquire);
  if (index < 0 || clock == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Unwind to the matching entry: exceptions may close spans out of order,
  // in which case every child still open closes at the same instant.
  while (!open_.empty()) {
    int32_t top = open_.back();
    CryptoCounts at_open = open_crypto_.back();
    open_.pop_back();
    open_crypto_.pop_back();
    SpanRecord& rec = spans_[static_cast<size_t>(top)];
    CryptoCounts now = crypto_now();
    rec.end_ns = clock->now();
    rec.pairings = (now.pairing - at_open.pairing) +
                   (now.fixed - at_open.fixed) +
                   (now.product_terms - at_open.product_terms);
    rec.miller_loops_saved = now.fixed - at_open.fixed;
    rec.point_muls = now.point_mul - at_open.point_mul;
    rec.hash_to_points = now.hash_to_point - at_open.hash_to_point;
    if (top == index) break;
  }
}

std::string Tracer::format() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const SpanRecord& s : spans_) {
    std::snprintf(line, sizeof(line),
                  "%*s%s  %.3f ms  [pairings=%" PRIu64 " saved_miller=%" PRIu64
                  " point_muls=%" PRIu64 " h2p=%" PRIu64 "]\n",
                  static_cast<int>(2 * s.depth), "", s.name.c_str(),
                  static_cast<double>(s.duration_ns()) / 1e6, s.pairings,
                  s.miller_loops_saved, s.point_muls, s.hash_to_points);
    out += line;
  }
  if (dropped_ > 0) {
    std::snprintf(line, sizeof(line), "(+%zu spans dropped at cap)\n",
                  dropped_);
    out += line;
  }
  return out;
}

}  // namespace hcpp::obs
