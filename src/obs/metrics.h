// Process-wide metrics registry: named counters, gauges and fixed-bucket
// latency histograms (p50/p95/p99), plus snapshot/diff so tests and benches
// can assert on deltas instead of absolute values.
//
// Cost model: every instrumentation site goes through the free functions at
// the bottom (count/gauge_set/observe). They compile away entirely when
// HCPP_OBS=0, and when compiled in they reduce to one relaxed atomic load
// and a not-taken branch while no registry is attached — cheap enough to
// stay on in benches. Attach a registry (obs::attach) to start recording;
// the simulation is single-threaded but the registry still locks, so bench
// binaries with worker threads stay correct.
//
// Metric names are dot-separated ("transport.retries",
// "crypto.pairing_fixed"); the exporters (export.h) map them to JSON keys
// and Prometheus series. The kM* constants below are the canonical names
// used across the stack — grep for them to find every instrumentation site.
#pragma once

#ifndef HCPP_OBS
#define HCPP_OBS 1
#endif

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hcpp::sim {
class Clock;
}

namespace hcpp::obs {

class Tracer;

// ---------------------------------------------------------------------------
// Canonical metric names.

// Crypto-op accounting (src/curve, src/ibc).
inline constexpr const char* kPairing = "crypto.pairing";
inline constexpr const char* kPairingReference = "crypto.pairing_reference";
inline constexpr const char* kPairingFixed = "crypto.pairing_fixed";
inline constexpr const char* kPairingPrecompBuild =
    "crypto.pairing_precomp_build";
inline constexpr const char* kPairingProduct = "crypto.pairing_product";
inline constexpr const char* kPairingProductTerms =
    "crypto.pairing_product_terms";
inline constexpr const char* kFinalExp = "crypto.final_exp";
// Final exponentiations applied through final_exp_batch (each element of a
// batch counts once; the batch shares a single modular inversion).
inline constexpr const char* kFinalExpBatched = "crypto.final_exp_batched";
inline constexpr const char* kPointMul = "crypto.point_mul";
inline constexpr const char* kHashToPoint = "crypto.hash_to_point";

// Cross-request pairing coalescer (core::PairingCoalescer): drains executed,
// requests folded into drains, pairings avoided versus the one-at-a-time
// path (dedup hits plus inversions shared by batched final exponentiation),
// and cache hits from identical shared-key / identity-hash inputs.
inline constexpr const char* kCoalesceDrains = "coalesce.drains";
inline constexpr const char* kCoalesceRequests = "coalesce.requests";
inline constexpr const char* kCoalescePairingsSaved = "coalesce.pairings_saved";
inline constexpr const char* kCoalesceDedupHits = "coalesce.dedup_hits";

// Network substrate (src/sim/network.cpp).
inline constexpr const char* kNetMessages = "net.messages";
inline constexpr const char* kNetBytes = "net.bytes";
inline constexpr const char* kNetDropped = "net.dropped";
inline constexpr const char* kNetDuplicated = "net.duplicated";
inline constexpr const char* kNetCorrupted = "net.corrupted";
inline constexpr const char* kNetUnreachable = "net.unreachable";
inline constexpr const char* kNetReplayRejected = "net.replay_rejected";

// Retrying transport (src/sim/transport.h) — mirrors DeliveryStats.
inline constexpr const char* kTransportRequests = "transport.requests";
inline constexpr const char* kTransportAttempts = "transport.attempts";
inline constexpr const char* kTransportRetries = "transport.retries";
inline constexpr const char* kTransportSucceeded = "transport.succeeded";
inline constexpr const char* kTransportRejected = "transport.rejected";
inline constexpr const char* kTransportGaveUp = "transport.gave_up";
inline constexpr const char* kTransportDupSuppressed =
    "transport.duplicates_suppressed";
inline constexpr const char* kTransportResponsesLost =
    "transport.responses_lost";
inline constexpr const char* kTransportRequestNs = "transport.request_ns";

// SSE index (src/sse/sse.cpp).
inline constexpr const char* kSseIndexBuild = "sse.index_build";
inline constexpr const char* kSseSearch = "sse.search";
inline constexpr const char* kSseSearchHits = "sse.search_hits";

// Dynamic forward-private update layer (src/sse/dynamic.cpp and the UPDATE /
// COMPACT protocol handlers in src/core/update.cpp).
inline constexpr const char* kSseUpdateAdd = "sse.update_add";
inline constexpr const char* kSseUpdateDelete = "sse.update_delete";
inline constexpr const char* kSseDynSearch = "sse.dyn_search";
inline constexpr const char* kSseCompactions = "sse.compactions";

// Parallel execution layer (src/par/pool.cpp). Emitted per pool instance:
// "par.<pool>.queue_depth" (gauge, tasks waiting), "par.<pool>.task_ns"
// (histogram, wall time of one shard body), "par.<pool>.tasks" (counter).

// Audit ledger (src/ledger).
inline constexpr const char* kLedgerAppends = "ledger.appends";
inline constexpr const char* kLedgerAppendNs = "ledger.append_ns";
inline constexpr const char* kLedgerNotifications = "ledger.notifications";
inline constexpr const char* kLedgerCheckpoints = "ledger.checkpoints";
inline constexpr const char* kLedgerAnchorAttempts = "ledger.anchor_attempts";
inline constexpr const char* kLedgerAnchorsCommitted =
    "ledger.anchors_committed";
inline constexpr const char* kLedgerAnchorDivergence =
    "ledger.anchor_divergence";
inline constexpr const char* kLedgerChainVerifyNs = "ledger.chain_verify_ns";
inline constexpr const char* kLedgerProofVerifyNs = "ledger.proof_verify_ns";
inline constexpr const char* kLedgerRecoveredEntries =
    "ledger.recovered_entries";
inline constexpr const char* kLedgerTornTailBytes = "ledger.torn_tail_bytes";

// Persistent account store (src/store).
inline constexpr const char* kStorePuts = "store.puts";
inline constexpr const char* kStorePutNs = "store.put_ns";
inline constexpr const char* kStoreGets = "store.gets";
inline constexpr const char* kStoreGetNs = "store.get_ns";
inline constexpr const char* kStoreErases = "store.erases";
inline constexpr const char* kStoreSegmentRolls = "store.segment_rolls";
inline constexpr const char* kStoreCompactions = "store.compactions";
inline constexpr const char* kStoreCompactNs = "store.compact_ns";
inline constexpr const char* kStoreRecoveries = "store.recoveries";
inline constexpr const char* kStoreRecoverNs = "store.recover_ns";
inline constexpr const char* kStoreTornTails = "store.torn_tails";

// Load harness (bench/bench_load.cpp) — per-op latency histograms the bench
// converts into the BENCH_load.json percentile curve.
inline constexpr const char* kLoadOpNs = "load.op_ns";  // all op classes
inline constexpr const char* kLoadStoreNs = "load.store_ns";
inline constexpr const char* kLoadUpdateNs = "load.update_ns";
inline constexpr const char* kLoadSearchNs = "load.search_ns";
inline constexpr const char* kLoadRetrieveNs = "load.retrieve_ns";
inline constexpr const char* kLoadEmergencyNs = "load.emergency_ns";

// Streaming MHI pipeline (src/core/mhi_stream.cpp): standing-query matching
// of PEKS tags as windows land. tags_tested counts (registration, tag)
// pairs; ingest_ns is the hub-side wall time of one window's test batch.
inline constexpr const char* kMhiWindowsIngested = "mhi.windows_ingested";
inline constexpr const char* kMhiTagsTested = "mhi.tags_tested";
inline constexpr const char* kMhiHits = "mhi.hits";
inline constexpr const char* kMhiRegistrations = "mhi.registrations";
inline constexpr const char* kMhiExpiredRegistrations =
    "mhi.expired_registrations";
inline constexpr const char* kMhiIngestNs = "mhi.ingest_ns";

// Replication / failover (src/core/cluster.cpp and the failover loops).
inline constexpr const char* kSGroupFailover = "cluster.sserver.failover";
inline constexpr const char* kSGroupMirrorWrites =
    "cluster.sserver.mirror_writes";
inline constexpr const char* kSGroupSync = "cluster.sserver.sync";
inline constexpr const char* kAClusterFailover = "cluster.aserver.failover";

// ---------------------------------------------------------------------------
/// Exported view of one histogram: enough to print, diff, and re-import.
struct HistogramSummary {
  std::vector<double> bounds;    // bucket upper bounds, ascending
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries (last: overflow)
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // meaningful only when count > 0
  double max = 0.0;

  /// Estimated p-quantile (p in [0, 1]): the upper bound of the bucket where
  /// the cumulative count crosses p·count, clamped to [min, max] so a
  /// single-sample histogram reports that exact sample. Returns 0 when
  /// empty. Monotone in p by construction.
  [[nodiscard]] double percentile(double p) const;

  bool operator==(const HistogramSummary&) const = default;
};

/// Fixed-bucket histogram. Bucket bounds never change after construction,
/// which is what makes diff() between two snapshots meaningful.
class Histogram {
 public:
  /// Default bounds: 1 µs … ~69 s in ×2 steps — spans everything the
  /// simulated clock produces, from one SSE lookup to a retry storm.
  static std::vector<double> default_latency_bounds();

  explicit Histogram(std::vector<double> bounds = default_latency_bounds());

  void record(double value);
  [[nodiscard]] HistogramSummary summary() const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// ---------------------------------------------------------------------------
/// Point-in-time copy of every metric; value-semantic so tests can hold one
/// from before an operation and diff it against one from after.
struct Snapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSummary> histograms;

  /// Counters and histogram counts/sums become this-minus-earlier (missing
  /// keys count as zero); gauges and histogram min/max keep this snapshot's
  /// values (deltas of level quantities are not meaningful).
  [[nodiscard]] Snapshot diff(const Snapshot& earlier) const;

  [[nodiscard]] uint64_t counter(std::string_view name) const;

  bool operator==(const Snapshot&) const = default;
};

// ---------------------------------------------------------------------------
/// The registry. One per process is the normal deployment (obs::global()),
/// but tests can create private ones to keep their deltas isolated.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void add(std::string_view name, uint64_t delta = 1);
  void gauge_set(std::string_view name, int64_t value);
  /// Records into the named histogram, creating it with default latency
  /// bounds on first use (use declare_histogram for custom bounds).
  void observe(std::string_view name, double value);
  void declare_histogram(std::string_view name, std::vector<double> bounds);

  [[nodiscard]] uint64_t counter(std::string_view name) const;
  [[nodiscard]] int64_t gauge(std::string_view name) const;

  [[nodiscard]] Snapshot snapshot() const;
  void reset();

  /// Scoped-span recorder (trace.h); disabled until Tracer::enable.
  [[nodiscard]] Tracer& tracer() noexcept { return *tracer_; }

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, int64_t, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::unique_ptr<Tracer> tracer_;
};

// ---------------------------------------------------------------------------
// Attachment: the process-wide active registry. Instrumentation throughout
// the stack is a no-op until something attaches a registry.

namespace detail {
extern std::atomic<Registry*> g_attached;
}

/// Lazily-constructed process-wide registry (never destroyed; safe to use
/// from static destructors of bench/test fixtures).
Registry& global();

inline void attach(Registry* r) noexcept {
  detail::g_attached.store(r, std::memory_order_release);
}
[[nodiscard]] inline Registry* attached() noexcept {
  return detail::g_attached.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Instrumentation entry points. These — not Registry methods — are what the
// rest of the codebase calls, so that HCPP_OBS=0 builds drop every site.

#if HCPP_OBS
/// True when a registry is attached. Lets call sites skip work (label
/// concatenation, clock reads) that only matters while recording; constant
/// false — so dead-code-eliminable — when HCPP_OBS=0.
[[nodiscard]] inline bool recording() noexcept {
  return attached() != nullptr;
}
inline void count(std::string_view name, uint64_t delta = 1) {
  if (Registry* r = attached()) r->add(name, delta);
}
inline void gauge_set(std::string_view name, int64_t value) {
  if (Registry* r = attached()) r->gauge_set(name, value);
}
inline void observe(std::string_view name, double value) {
  if (Registry* r = attached()) r->observe(name, value);
}
#else
[[nodiscard]] inline constexpr bool recording() noexcept { return false; }
inline void count(std::string_view, uint64_t = 1) {}
inline void gauge_set(std::string_view, int64_t) {}
inline void observe(std::string_view, double) {}
#endif

}  // namespace hcpp::obs
