// Snapshot serialization: JSON (machine-readable, exact round-trip) and
// Prometheus text exposition (scrape-ready).
//
// JSON round-trips losslessly: from_json(to_json(s)) == s — doubles are
// printed with 17 significant digits. The Prometheus form sanitizes metric
// names (dots become underscores, an "hcpp_" prefix is added), which is not
// invertible; its round-trip guarantee is the fixed point
// to_prometheus(from_prometheus(text)) == text. Both parsers accept exactly
// the shape their exporter emits (plus whitespace) and throw
// std::runtime_error on anything else — they exist for tests and tooling,
// not as general-purpose parsers.
#pragma once

#include <string>
#include <string_view>

#include "src/obs/metrics.h"

namespace hcpp::obs {

[[nodiscard]] std::string to_json(const Snapshot& snapshot);
[[nodiscard]] Snapshot from_json(std::string_view json);

[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);
[[nodiscard]] Snapshot from_prometheus(std::string_view text);

}  // namespace hcpp::obs
