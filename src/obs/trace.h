// Scoped trace spans driven by sim::Clock, with crypto-op attribution.
//
// A Span brackets one region of protocol work ("protocol:privileged_retrieve",
// "transport:emergency-be-request", "sse:search") between two readings of the
// simulated clock. Spans nest: the tracer maintains the open-span stack, so a
// finished trace is a forest with parent links and depths, ready to print as
// an indented tree.
//
// Attribution: at open and close each span snapshots the registry's crypto
// counters, so the finished record carries exactly how many pairing
// evaluations (one-shot + fixed-argument + multi-pairing terms), saved Miller
// loops, point multiplications and hash-to-point calls that region cost —
// including everything its children did.
//
// Span taxonomy (DESIGN.md §8): "protocol:*" client-side flows,
// "transport:<label>" one retrying request/response exchange, "sserver:*" /
// "aserver:*" server handlers, "sse:*" index ops, "crypto:*" key
// derivations.
//
// Tracing is off until Tracer::enable(clock); with HCPP_OBS=0 the Span type
// is an empty shell and every call site compiles to nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace hcpp::sim {
class Clock;
}

namespace hcpp::obs {

/// One finished (or still-open: end_ns == 0 while open) span.
struct SpanRecord {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint32_t depth = 0;        // root = 0
  int32_t parent = -1;       // index into Tracer::spans(), -1 for roots
  // Crypto work attributed to this span (children included).
  uint64_t pairings = 0;           // pairing + pairing_fixed + product terms
  uint64_t miller_loops_saved = 0; // fixed-argument pairings (precomp hits)
  uint64_t point_muls = 0;
  uint64_t hash_to_points = 0;

  [[nodiscard]] uint64_t duration_ns() const noexcept {
    return end_ns >= start_ns ? end_ns - start_ns : 0;
  }
};

/// Owned by a Registry (registry.tracer()). Span open/close is serialized on
/// an internal mutex so pool workers may emit spans concurrently (DESIGN.md
/// §9) — note the open-span *stack* is process-wide, so a worker span parents
/// under whichever span is innermost at that instant; cross-thread
/// attribution is approximate by design. spans()/format() are safe once the
/// workers have quiesced.
class Tracer {
 public:
  explicit Tracer(Registry& owner) : owner_(&owner) {}

  /// Starts recording spans timed off `clock`. Bounded: once `max_spans`
  /// records exist, new spans are counted in dropped() but not stored.
  void enable(const sim::Clock& clock, size_t max_spans = 8192);
  void disable() noexcept {
    clock_.store(nullptr, std::memory_order_release);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return clock_.load(std::memory_order_acquire) != nullptr;
  }

  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] size_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Renders the span forest as an indented tree with durations and pairing
  /// attribution — the CLI's `trace show`.
  [[nodiscard]] std::string format() const;

  // Span lifecycle (called by Span; returns -1 when not recorded).
  int32_t open(std::string_view name);
  void close(int32_t index);

 private:
  struct CryptoCounts {
    uint64_t pairing = 0, fixed = 0, product_terms = 0, point_mul = 0,
             hash_to_point = 0;
  };
  [[nodiscard]] CryptoCounts crypto_now() const;

  Registry* owner_;
  std::atomic<const sim::Clock*> clock_{nullptr};
  mutable std::mutex mu_;  // guards everything below
  size_t max_spans_ = 0;
  size_t dropped_ = 0;
  std::vector<SpanRecord> spans_;
  std::vector<int32_t> open_;  // stack of indices into spans_
  std::vector<CryptoCounts> open_crypto_;
};

// ---------------------------------------------------------------------------
/// RAII span. Records only when a registry is attached *and* its tracer is
/// enabled; otherwise construction is one atomic load.
#if HCPP_OBS
class Span {
 public:
  explicit Span(std::string_view name) {
    Registry* r = attached();
    if (r != nullptr && r->tracer().enabled()) {
      tracer_ = &r->tracer();
      index_ = tracer_->open(name);
    }
  }
  /// Two-part name ("transport:" + protocol); the concatenation only
  /// happens when the span is actually recorded.
  Span(std::string_view prefix, std::string_view suffix) {
    Registry* r = attached();
    if (r != nullptr && r->tracer().enabled()) {
      tracer_ = &r->tracer();
      std::string name(prefix);
      name += suffix;
      index_ = tracer_->open(name);
    }
  }
  ~Span() {
    if (tracer_ != nullptr) tracer_->close(index_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  int32_t index_ = -1;
};
#else
class Span {
 public:
  explicit Span(std::string_view) {}
  Span(std::string_view, std::string_view) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};
#endif

}  // namespace hcpp::obs
