#include "src/obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace hcpp::obs {

namespace {

/// Canonical number rendering shared by both exporters; deterministic, so
/// re-serializing a parsed snapshot reproduces the original text, and exact
/// (17 significant digits round-trip any double).
std::string fmt_double(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string fmt_u64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string fmt_i64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

void json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

// ---------------------------------------------------------------------------
// Minimal JSON cursor, accepting the subset to_json emits.

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  /// Consumes c if it is next; returns whether it did.
  bool accept(char c) {
    if (!peek_is(c)) return false;
    ++pos_;
    return true;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  double number() {
    skip_ws();
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) fail("expected number");
    pos_ += static_cast<size_t>(end - start);
    return v;
  }

  uint64_t u64() {
    skip_ws();
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    uint64_t v = std::strtoull(start, &end, 10);
    if (end == start) fail("expected integer");
    pos_ += static_cast<size_t>(end - start);
    return v;
  }

  int64_t i64() {
    skip_ws();
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    int64_t v = std::strtoll(start, &end, 10);
    if (end == start) fail("expected integer");
    pos_ += static_cast<size_t>(end - start);
    return v;
  }

  void done() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("obs json parse at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Prometheus-legal series name: [a-zA-Z0-9_] with an hcpp_ prefix.
std::string prom_name(std::string_view name) {
  std::string out = "hcpp_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// JSON

std::string to_json(const Snapshot& s) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : s.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_string(out, name);
    out += ": " + fmt_u64(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : s.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_string(out, name);
    out += ": " + fmt_i64(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_string(out, name);
    out += ": {\"bounds\": [";
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      out += fmt_double(h.bounds[i]);
    }
    out += "], \"counts\": [";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += fmt_u64(h.counts[i]);
    }
    out += "], \"count\": " + fmt_u64(h.count);
    out += ", \"sum\": " + fmt_double(h.sum);
    out += ", \"min\": " + fmt_double(h.min);
    out += ", \"max\": " + fmt_double(h.max);
    out += ", \"p50\": " + fmt_double(h.percentile(0.50));
    out += ", \"p95\": " + fmt_double(h.percentile(0.95));
    out += ", \"p99\": " + fmt_double(h.percentile(0.99));
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

Snapshot from_json(std::string_view json) {
  Snapshot s;
  JsonCursor c(json);
  c.expect('{');

  auto parse_section = [&](const std::string& want, auto&& member) {
    std::string key = c.string();
    if (key != want) {
      throw std::runtime_error("obs json parse: expected \"" + want +
                               "\" section, got \"" + key + "\"");
    }
    c.expect(':');
    c.expect('{');
    if (!c.accept('}')) {
      do {
        member();
      } while (c.accept(','));
      c.expect('}');
    }
  };

  parse_section("counters", [&] {
    std::string name = c.string();
    c.expect(':');
    s.counters[name] = c.u64();
  });
  c.expect(',');
  parse_section("gauges", [&] {
    std::string name = c.string();
    c.expect(':');
    s.gauges[name] = c.i64();
  });
  c.expect(',');
  parse_section("histograms", [&] {
    std::string name = c.string();
    c.expect(':');
    c.expect('{');
    HistogramSummary h;
    do {
      std::string field = c.string();
      c.expect(':');
      if (field == "bounds" || field == "counts") {
        c.expect('[');
        if (!c.accept(']')) {
          do {
            if (field == "bounds") {
              h.bounds.push_back(c.number());
            } else {
              h.counts.push_back(c.u64());
            }
          } while (c.accept(','));
          c.expect(']');
        }
      } else if (field == "count") {
        h.count = c.u64();
      } else if (field == "sum") {
        h.sum = c.number();
      } else if (field == "min") {
        h.min = c.number();
      } else if (field == "max") {
        h.max = c.number();
      } else {
        c.number();  // derived fields (p50/p95/p99): recomputable, skipped
      }
    } while (c.accept(','));
    c.expect('}');
    s.histograms[name] = std::move(h);
  });
  c.expect('}');
  c.done();
  return s;
}

// ---------------------------------------------------------------------------
// Prometheus text exposition

std::string to_prometheus(const Snapshot& s) {
  std::string out;
  for (const auto& [name, value] : s.counters) {
    std::string n = prom_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + fmt_u64(value) + "\n";
  }
  for (const auto& [name, value] : s.gauges) {
    std::string n = prom_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " " + fmt_i64(value) + "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    std::string n = prom_name(name);
    out += "# TYPE " + n + " histogram\n";
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += i < h.counts.size() ? h.counts[i] : 0;
      out += n + "_bucket{le=\"" + fmt_double(h.bounds[i]) + "\"} " +
             fmt_u64(cum) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + fmt_u64(h.count) + "\n";
    out += n + "_sum " + fmt_double(h.sum) + "\n";
    out += n + "_count " + fmt_u64(h.count) + "\n";
    out += "# TYPE " + n + "_min gauge\n";
    out += n + "_min " + fmt_double(h.min) + "\n";
    out += "# TYPE " + n + "_max gauge\n";
    out += n + "_max " + fmt_double(h.max) + "\n";
  }
  return out;
}

Snapshot from_prometheus(std::string_view text) {
  // Accepts exactly what to_prometheus emits. Names keep their sanitized
  // (underscore) spelling minus the hcpp_ prefix, so emit∘parse is a fixed
  // point even though the original dotted names are gone.
  Snapshot s;
  std::map<std::string, std::string> types;  // sanitized name -> kind
  size_t pos = 0;
  auto fail = [](const std::string& why, const std::string& line) -> void {
    throw std::runtime_error("obs prometheus parse: " + why + " in \"" +
                             line + "\"");
  };
  auto strip = [&fail](const std::string& n,
                       const std::string& line) -> std::string {
    if (n.rfind("hcpp_", 0) != 0) fail("missing hcpp_ prefix", line);
    return n.substr(5);
  };

  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;

    if (line.rfind("# TYPE ", 0) == 0) {
      std::string rest = line.substr(7);
      size_t sp = rest.find(' ');
      if (sp == std::string::npos) fail("malformed TYPE", line);
      types[rest.substr(0, sp)] = rest.substr(sp + 1);
      continue;
    }
    if (line[0] == '#') continue;

    size_t sp = line.rfind(' ');
    if (sp == std::string::npos) fail("missing value", line);
    std::string series = line.substr(0, sp);
    std::string value = line.substr(sp + 1);

    std::string label;
    size_t brace = series.find('{');
    if (brace != std::string::npos) {
      size_t close = series.find('}', brace);
      if (close == std::string::npos) fail("unterminated label", line);
      label = series.substr(brace + 1, close - brace - 1);
      series = series.substr(0, brace);
    }

    auto ends_with = [&series](const char* suffix, std::string* base) {
      size_t n = std::strlen(suffix);
      if (series.size() <= n ||
          series.compare(series.size() - n, n, suffix) != 0) {
        return false;
      }
      *base = series.substr(0, series.size() - n);
      return true;
    };

    std::string base;
    auto hist_for = [&](const std::string& b) -> HistogramSummary* {
      auto it = types.find(b);
      if (it == types.end() || it->second != "histogram") return nullptr;
      return &s.histograms[strip(b, line)];
    };

    if (!label.empty()) {
      if (!ends_with("_bucket", &base)) fail("labeled non-bucket", line);
      HistogramSummary* h = hist_for(base);
      if (h == nullptr) fail("bucket without histogram TYPE", line);
      if (label.rfind("le=\"", 0) != 0 || label.back() != '"') {
        fail("expected le label", line);
      }
      std::string le = label.substr(4, label.size() - 5);
      uint64_t cum = std::strtoull(value.c_str(), nullptr, 10);
      if (le == "+Inf") {
        // De-cumulate now that every finite bucket has arrived.
        uint64_t prev = 0;
        for (uint64_t& c : h->counts) {
          uint64_t this_cum = c;
          c = this_cum - prev;
          prev = this_cum;
        }
        h->counts.push_back(cum - prev);  // overflow bucket
      } else {
        h->bounds.push_back(std::strtod(le.c_str(), nullptr));
        h->counts.push_back(cum);  // cumulative until +Inf de-cumulates
      }
      continue;
    }

    if (ends_with("_sum", &base) && hist_for(base) != nullptr) {
      hist_for(base)->sum = std::strtod(value.c_str(), nullptr);
    } else if (ends_with("_count", &base) && hist_for(base) != nullptr) {
      hist_for(base)->count = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ends_with("_min", &base) && hist_for(base) != nullptr) {
      hist_for(base)->min = std::strtod(value.c_str(), nullptr);
    } else if (ends_with("_max", &base) && hist_for(base) != nullptr) {
      hist_for(base)->max = std::strtod(value.c_str(), nullptr);
    } else {
      auto it = types.find(series);
      if (it == types.end()) fail("series without TYPE", line);
      if (it->second == "counter") {
        s.counters[strip(series, line)] =
            std::strtoull(value.c_str(), nullptr, 10);
      } else if (it->second == "gauge") {
        s.gauges[strip(series, line)] =
            std::strtoll(value.c_str(), nullptr, 10);
      } else {
        fail("unsupported TYPE " + it->second, line);
      }
    }
  }
  return s;
}

}  // namespace hcpp::obs
