#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/obs/trace.h"

namespace hcpp::obs {

namespace detail {
std::atomic<Registry*> g_attached{nullptr};
}

// ---------------------------------------------------------------------------
// HistogramSummary

double HistogramSummary::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target sample (1-based), then the first bucket whose
  // cumulative count reaches it.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cum = 0;
  double estimate = max;
  for (size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) {
      // Overflow bucket has no upper bound; report the observed max.
      estimate = (i < bounds.size()) ? bounds[i] : max;
      break;
    }
  }
  return std::clamp(estimate, min, max);
}

// ---------------------------------------------------------------------------
// Histogram

std::vector<double> Histogram::default_latency_bounds() {
  // 1 µs doubling up to ~68.7 s (27 buckets + overflow).
  std::vector<double> b;
  for (double v = 1e3; v <= 7e10; v *= 2.0) b.push_back(v);
  return b;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[i] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.bounds = bounds_;
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

// ---------------------------------------------------------------------------
// Snapshot

Snapshot Snapshot::diff(const Snapshot& earlier) const {
  Snapshot d = *this;
  for (auto& [name, value] : d.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) {
      value = value >= it->second ? value - it->second : 0;
    }
  }
  for (auto& [name, hist] : d.histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end() ||
        it->second.bounds != hist.bounds) {
      continue;
    }
    const HistogramSummary& e = it->second;
    for (size_t i = 0; i < hist.counts.size() && i < e.counts.size(); ++i) {
      hist.counts[i] -= std::min(hist.counts[i], e.counts[i]);
    }
    hist.count -= std::min(hist.count, e.count);
    hist.sum -= e.sum;
  }
  return d;
}

uint64_t Snapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

// ---------------------------------------------------------------------------
// Registry

Registry::Registry() : tracer_(std::make_unique<Tracer>(*this)) {}
Registry::~Registry() = default;

void Registry::add(std::string_view name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Registry::gauge_set(std::string_view name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void Registry::observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram()).first;
  }
  it->second.record(value);
}

void Registry::declare_histogram(std::string_view name,
                                 std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.insert_or_assign(std::string(name),
                               Histogram(std::move(bounds)));
}

uint64_t Registry::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t Registry::gauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, value] : counters_) s.counters[name] = value;
  for (const auto& [name, value] : gauges_) s.gauges[name] = value;
  for (const auto& [name, hist] : histograms_) {
    s.histograms[name] = hist.summary();
  }
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& global() {
  static Registry* r = new Registry();  // intentionally leaked
  return *r;
}

}  // namespace hcpp::obs
