#include "src/store/segment.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "src/common/serialize.h"
#include "src/hash/sha256.h"

namespace hcpp::store {

namespace {

constexpr char kMagic[] = {'H', 'C', 'P', 'S', '\x01'};
constexpr size_t kMagicSize = sizeof(kMagic);
// Frame header: u8 type ‖ u32 body length (big-endian).
constexpr size_t kFrameHeaderSize = 5;
constexpr size_t kChecksumSize = 32;

bool write_all(int fd, const uint8_t* data, size_t n) {
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

Bytes frame_checksum(uint8_t type, uint64_t version, std::string_view key,
                     BytesView value) {
  io::Writer w;
  w.str("hcpp-store-frame");
  w.u8(type);
  w.u64(version);
  w.str(key);
  w.bytes(value);
  return hash::sha256_bytes(w.data());
}

std::string Segment::file_name(uint32_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06u.hcps", id);
  return buf;
}

std::optional<uint32_t> Segment::id_from_name(std::string_view name) {
  if (name.size() != 15 || !name.starts_with("seg-") ||
      !name.ends_with(".hcps")) {
    return std::nullopt;
  }
  uint32_t id = 0;
  for (size_t i = 4; i < 10; ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<uint32_t>(c - '0');
  }
  return id;
}

std::unique_ptr<Segment> Segment::create(const std::string& dir, uint32_t id) {
  std::string path = dir + "/" + file_name(id);
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_APPEND, 0644);
  if (fd < 0) return nullptr;
  if (!write_all(fd, reinterpret_cast<const uint8_t*>(kMagic), kMagicSize)) {
    ::close(fd);
    ::unlink(path.c_str());
    return nullptr;
  }
  auto seg = std::unique_ptr<Segment>(new Segment());
  seg->path_ = std::move(path);
  seg->id_ = id;
  seg->fd_ = fd;
  seg->size_ = kMagicSize;
  return seg;
}

std::unique_ptr<Segment> Segment::open(const std::string& dir, uint32_t id) {
  std::string path = dir + "/" + file_name(id);
  int fd = ::open(path.c_str(), O_RDWR | O_APPEND);
  if (fd < 0) return nullptr;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return nullptr;
  }
  auto seg = std::unique_ptr<Segment>(new Segment());
  seg->path_ = std::move(path);
  seg->id_ = id;
  seg->fd_ = fd;
  seg->size_ = static_cast<uint64_t>(st.st_size);
  return seg;
}

Segment::~Segment() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
  if (fd_ >= 0) ::close(fd_);
}

uint64_t Segment::frame_size(std::string_view key, BytesView value) {
  // header ‖ u64 version ‖ str key ‖ bytes value ‖ checksum
  return kFrameHeaderSize + 8 + 4 + key.size() + 4 + value.size() +
         kChecksumSize;
}

std::optional<uint64_t> Segment::append(uint8_t type, uint64_t version,
                                        std::string_view key, BytesView value,
                                        bool sync) {
  if (sealed()) throw std::logic_error("Segment: append after seal");
  io::Writer body;
  body.u64(version);
  body.str(key);
  body.bytes(value);
  body.raw(frame_checksum(type, version, key, value));
  io::Writer frame;
  frame.u8(type);
  frame.bytes(body.data());
  uint64_t offset = size_;
  if (!write_all(fd_, frame.data().data(), frame.data().size())) return std::nullopt;
  if (sync && ::fdatasync(fd_) != 0) return std::nullopt;
  size_ += frame.data().size();
  return offset;
}

bool Segment::read_raw(uint64_t offset, uint32_t length, uint8_t* out) const {
  if (offset + length > size_) return false;
  if (map_ != nullptr) {
    std::memcpy(out, static_cast<const uint8_t*>(map_) + offset, length);
    return true;
  }
  size_t done = 0;
  while (done < length) {
    ssize_t r = ::pread(fd_, out + done, length - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    done += static_cast<size_t>(r);
  }
  return true;
}

Frame Segment::read(uint64_t offset, uint32_t length) const {
  Bytes buf(length);
  if (!read_raw(offset, length, buf.data())) {
    throw std::runtime_error("Segment: read past end of " + path_);
  }
  io::Reader r(buf);
  Frame f;
  f.type = r.u8();
  Bytes body = r.bytes();
  io::Reader br(body);
  f.version = br.u64();
  f.key = br.str();
  f.value = br.bytes();
  Bytes sum = br.raw(kChecksumSize);
  if (!br.done() || !r.done() ||
      sum != frame_checksum(f.type, f.version, f.key, f.value)) {
    throw std::runtime_error("Segment: checksum mismatch in " + path_);
  }
  f.offset = offset;
  f.length = length;
  return f;
}

Bytes Segment::read_value(uint64_t offset, uint32_t length) const {
  return read(offset, length).value;
}

uint64_t Segment::scan(const std::function<void(const Frame&)>& fn) const {
  if (size_ < kMagicSize) return 0;
  Bytes magic(kMagicSize);
  if (!read_raw(0, kMagicSize, magic.data()) ||
      std::memcmp(magic.data(), kMagic, kMagicSize) != 0) {
    return 0;
  }
  uint64_t pos = kMagicSize;
  while (pos < size_) {
    if (size_ - pos < kFrameHeaderSize) break;
    uint8_t header[kFrameHeaderSize];
    if (!read_raw(pos, kFrameHeaderSize, header)) break;
    uint32_t body_len = (uint32_t(header[1]) << 24) |
                        (uint32_t(header[2]) << 16) |
                        (uint32_t(header[3]) << 8) | uint32_t(header[4]);
    uint64_t frame_len = kFrameHeaderSize + uint64_t(body_len);
    if (size_ - pos < frame_len) break;
    Frame f;
    try {
      f = read(pos, static_cast<uint32_t>(frame_len));
    } catch (const std::exception&) {
      break;  // torn or corrupted: everything from here on is discarded
    }
    if (f.type != kFrameRecord && f.type != kFrameTombstone) break;
    fn(f);
    pos += frame_len;
  }
  return pos;
}

bool Segment::truncate(uint64_t bytes) {
  if (sealed()) throw std::logic_error("Segment: truncate after seal");
  if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) return false;
  size_ = bytes;
  // O_APPEND keeps subsequent writes at the (new) end of file.
  return true;
}

bool Segment::sync() { return ::fdatasync(fd_) == 0; }

void Segment::seal() {
  if (map_ != nullptr || size_ == 0) return;
  void* m = ::mmap(nullptr, size_, PROT_READ, MAP_SHARED, fd_, 0);
  if (m == MAP_FAILED) return;  // pread path keeps working
  map_ = m;
  map_size_ = size_;
}

void Segment::remove() {
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  ::unlink(path_.c_str());
}

}  // namespace hcpp::store
