#include "src/store/shard.h"

#include "src/hash/sha256.h"

namespace hcpp::store {

size_t shard_for_key(std::string_view account_key, size_t shards) {
  if (shards <= 1) return 0;
  // Hash only the pseudonym prefix so "<tp>/files" and "<tp>/notes" co-locate.
  auto slash = account_key.find('/');
  std::string_view pseudonym = account_key.substr(0, slash);
  Bytes digest = hash::sha256_bytes(
      BytesView(reinterpret_cast<const uint8_t*>(pseudonym.data()),
                pseudonym.size()));
  uint64_t h = 0;
  for (size_t i = 0; i < 8; ++i) h = (h << 8) | digest[i];
  return static_cast<size_t>(h % shards);
}

size_t shard_for_pseudonym(BytesView tp, size_t shards) {
  return shard_for_key(hex_encode(tp), shards);
}

}  // namespace hcpp::store
