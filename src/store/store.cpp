#include "src/store/store.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <dirent.h>
#include <filesystem>
#include <stdexcept>

#include "src/obs/metrics.h"

namespace hcpp::store {

namespace {

// Wall-clock nanoseconds for obs latency histograms (the store runs on real
// I/O, not the simulated clock).
uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<uint32_t> list_segment_ids(const std::string& dir) {
  std::vector<uint32_t> ids;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ids;
  while (dirent* e = ::readdir(d)) {
    if (auto id = Segment::id_from_name(e->d_name)) ids.push_back(*id);
  }
  ::closedir(d);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

AccountStore::AccountStore(AccountStore&& o) noexcept { *this = std::move(o); }

AccountStore& AccountStore::operator=(AccountStore&& o) noexcept {
  if (this == &o) return *this;
  std::scoped_lock lk(mu_, o.mu_);
  dir_ = std::move(o.dir_);
  options_ = o.options_;
  segments_ = std::move(o.segments_);
  index_ = std::move(o.index_);
  next_version_ = o.next_version_;
  next_segment_id_ = o.next_segment_id_;
  live_bytes_ = o.live_bytes_;
  dead_bytes_ = o.dead_bytes_;
  tombstones_ = o.tombstones_;
  compactions_ = o.compactions_;
  o.dir_.clear();
  o.segments_.clear();
  o.index_.clear();
  return *this;
}

AccountStore::~AccountStore() = default;

AccountStore AccountStore::open(const std::string& dir, StoreOptions options,
                                StoreRecoveryReport* report) {
  uint64_t t0 = now_ns();
  std::error_code ec;  // pre-existing is fine; real failures surface below
  std::filesystem::create_directories(dir, ec);

  AccountStore st;
  st.dir_ = dir;
  st.options_ = options;

  StoreRecoveryReport rec;
  auto ids = list_segment_ids(dir);
  for (uint32_t id : ids) {
    auto seg = Segment::open(dir, id);
    if (!seg) {
      throw std::runtime_error("AccountStore: cannot open segment " +
                               Segment::file_name(id) + " in " + dir);
    }
    bool last = (id == ids.back());
    uint64_t valid = seg->scan([&](const Frame& f) {
      Location loc;
      loc.segment = id;
      loc.offset = f.offset;
      loc.length = f.length;
      loc.version = f.version;
      loc.tombstone = (f.type == kFrameTombstone);
      // >= so an equal-version copy in a later segment (compaction output)
      // wins over the original — both decode identically anyway.
      auto it = st.index_.find(f.key);
      if (it == st.index_.end() || f.version >= it->second.version) {
        st.account_replace_locked(f.key, loc);
      } else {
        st.dead_bytes_ += f.length;
      }
      rec.last_version = std::max(rec.last_version, f.version);
    });
    if (valid < seg->size_bytes()) {
      if (last) {
        // Torn tail on the newest segment: an append the crash interrupted.
        rec.torn_bytes += seg->size_bytes() - valid;
        rec.tail_discarded = true;
        if (!seg->truncate(valid)) {
          throw std::runtime_error("AccountStore: cannot truncate torn tail of " +
                                   seg->path());
        }
      } else {
        // A non-newest segment can only be torn by a crash mid-compaction
        // (it was the compactor's output when the crash hit). Its valid
        // prefix already replayed; the garbage tail is dead weight that the
        // next compaction folds away.
        rec.torn_bytes += seg->size_bytes() - valid;
        rec.tail_discarded = true;
        seg->seal();
      }
    } else if (!last) {
      seg->seal();
    }
    st.segments_.push_back(std::move(seg));
  }

  st.next_segment_id_ = ids.empty() ? 0 : ids.back() + 1;
  st.next_version_ = rec.last_version + 1;

  if (st.segments_.empty()) {
    auto seg = Segment::create(dir, st.next_segment_id_++);
    if (!seg) {
      throw std::runtime_error("AccountStore: cannot create first segment in " +
                               dir);
    }
    st.segments_.push_back(std::move(seg));
  }

  rec.segments = st.segments_.size();
  rec.tombstones = st.tombstones_;
  rec.records = st.index_.size() - st.tombstones_;
  if (report != nullptr) *report = rec;

  obs::count(obs::kStoreRecoveries);
  obs::observe(obs::kStoreRecoverNs, now_ns() - t0);
  if (rec.tail_discarded) obs::count(obs::kStoreTornTails);
  return st;
}

Segment* AccountStore::active_locked() {
  Segment* seg = segments_.back().get();
  if (seg->size_bytes() >= options_.segment_bytes) {
    seg->seal();
    auto fresh = Segment::create(dir_, next_segment_id_);
    if (!fresh) return seg;  // keep appending to the old one on failure
    ++next_segment_id_;
    segments_.push_back(std::move(fresh));
    seg = segments_.back().get();
    obs::count(obs::kStoreSegmentRolls);
  }
  return seg;
}

Segment* AccountStore::segment_locked(uint32_t id) const {
  // Segments are sorted by id; binary search keeps gets O(log segments).
  auto it = std::lower_bound(
      segments_.begin(), segments_.end(), id,
      [](const std::unique_ptr<Segment>& s, uint32_t v) { return s->id() < v; });
  if (it == segments_.end() || (*it)->id() != id) return nullptr;
  return it->get();
}

void AccountStore::account_replace_locked(const std::string& key,
                                          const Location& loc) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    dead_bytes_ += it->second.length;
    live_bytes_ -= it->second.length;
    if (it->second.tombstone) --tombstones_;
    it->second = loc;
  } else {
    index_.emplace(key, loc);
  }
  live_bytes_ += loc.length;
  if (loc.tombstone) ++tombstones_;
}

bool AccountStore::append_locked(uint8_t type, std::string_view key,
                                 BytesView value) {
  Segment* seg = active_locked();
  uint64_t version = next_version_;
  auto offset = seg->append(type, version, key, value, options_.fsync);
  if (!offset) return false;
  ++next_version_;
  Location loc;
  loc.segment = seg->id();
  loc.offset = *offset;
  loc.length = static_cast<uint32_t>(Segment::frame_size(key, value));
  loc.version = version;
  loc.tombstone = (type == kFrameTombstone);
  account_replace_locked(std::string(key), loc);
  return true;
}

bool AccountStore::put(std::string_view key, BytesView value) {
  uint64_t t0 = now_ns();
  std::lock_guard lk(mu_);
  if (!is_open()) return false;
  bool ok = append_locked(kFrameRecord, key, value);
  if (ok) {
    obs::count(obs::kStorePuts);
    obs::observe(obs::kStorePutNs, now_ns() - t0);
  }
  return ok;
}

bool AccountStore::erase(std::string_view key) {
  std::lock_guard lk(mu_);
  if (!is_open()) return false;
  auto it = index_.find(std::string(key));
  if (it == index_.end() || it->second.tombstone) return false;
  if (!append_locked(kFrameTombstone, key, {})) return false;
  obs::count(obs::kStoreErases);
  return true;
}

std::optional<Bytes> AccountStore::get(std::string_view key) const {
  uint64_t t0 = now_ns();
  std::lock_guard lk(mu_);
  auto it = index_.find(std::string(key));
  if (it == index_.end() || it->second.tombstone) return std::nullopt;
  Segment* seg = segment_locked(it->second.segment);
  if (seg == nullptr) {
    throw std::logic_error("AccountStore: index points at missing segment");
  }
  Bytes value = seg->read(it->second.offset, it->second.length).value;
  obs::count(obs::kStoreGets);
  obs::observe(obs::kStoreGetNs, now_ns() - t0);
  return value;
}

bool AccountStore::contains(std::string_view key) const {
  std::lock_guard lk(mu_);
  auto it = index_.find(std::string(key));
  return it != index_.end() && !it->second.tombstone;
}

size_t AccountStore::size() const {
  std::lock_guard lk(mu_);
  return index_.size() - tombstones_;
}

std::vector<std::string> AccountStore::keys() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> out;
  out.reserve(index_.size() - tombstones_);
  for (const auto& [k, loc] : index_) {
    if (!loc.tombstone) out.push_back(k);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void AccountStore::for_each(const std::function<void(const std::string&,
                                                     const Bytes&)>& fn) const {
  std::lock_guard lk(mu_);
  for (const auto& [k, loc] : index_) {
    if (loc.tombstone) continue;
    Segment* seg = segment_locked(loc.segment);
    if (seg == nullptr) {
      throw std::logic_error("AccountStore: index points at missing segment");
    }
    fn(k, seg->read(loc.offset, loc.length).value);
  }
}

StoreStats AccountStore::stats() const {
  std::lock_guard lk(mu_);
  StoreStats s;
  s.segments = segments_.size();
  s.live_records = index_.size() - tombstones_;
  s.tombstones = tombstones_;
  s.live_bytes = live_bytes_;
  s.dead_bytes = dead_bytes_;
  for (const auto& seg : segments_) s.total_bytes += seg->size_bytes();
  s.last_version = next_version_ - 1;
  s.compactions = compactions_;
  return s;
}

CompactionReport AccountStore::compact() {
  uint64_t t0 = now_ns();
  std::lock_guard lk(mu_);
  CompactionReport rep;
  if (!is_open()) return rep;
  rep.segments_before = segments_.size();
  rep.tombstones_dropped = tombstones_;
  uint64_t bytes_before = 0;
  for (const auto& seg : segments_) bytes_before += seg->size_bytes();

  // Stable key order keeps the compacted layout deterministic for a given
  // logical state, which the differential tests lean on.
  std::vector<const std::string*> live;
  live.reserve(index_.size());
  for (const auto& [k, loc] : index_) {
    if (!loc.tombstone) live.push_back(&k);
  }
  std::sort(live.begin(), live.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  // Phase 1: rewrite live records (original versions preserved) into fresh
  // segments whose ids sit strictly above every existing one. A crash here
  // leaves old+partial-new; version-max replay of the union is identical to
  // the pre-compaction state.
  std::vector<std::unique_ptr<Segment>> fresh;
  std::unordered_map<std::string, Location> new_index;
  new_index.reserve(live.size());
  uint64_t new_live_bytes = 0;

  auto roll = [&]() -> Segment* {
    if (!fresh.empty() &&
        fresh.back()->size_bytes() < options_.segment_bytes) {
      return fresh.back().get();
    }
    if (!fresh.empty()) fresh.back()->seal();
    auto seg = Segment::create(dir_, next_segment_id_);
    if (!seg) return nullptr;
    ++next_segment_id_;
    fresh.push_back(std::move(seg));
    return fresh.back().get();
  };

  for (const std::string* kp : live) {
    const Location& loc = index_.at(*kp);
    Segment* src = segment_locked(loc.segment);
    if (src == nullptr) {
      throw std::logic_error("AccountStore: index points at missing segment");
    }
    Bytes value = src->read(loc.offset, loc.length).value;
    Segment* dst = roll();
    if (dst == nullptr) {
      // Could not create output segments: abandon, unlink partial output.
      for (auto& seg : fresh) seg->remove();
      rep.segments_after = segments_.size();
      return rep;
    }
    auto offset = dst->append(kFrameRecord, loc.version, *kp, value, false);
    if (!offset) {
      for (auto& seg : fresh) seg->remove();
      rep.segments_after = segments_.size();
      return rep;
    }
    Location nloc;
    nloc.segment = dst->id();
    nloc.offset = *offset;
    nloc.length = loc.length;
    nloc.version = loc.version;
    new_index.emplace(*kp, nloc);
    new_live_bytes += nloc.length;
  }
  // The new segments must be durable before the old ones disappear.
  for (auto& seg : fresh) seg->sync();

  // Handle the empty-store edge: always leave at least one active segment.
  if (fresh.empty()) {
    auto seg = Segment::create(dir_, next_segment_id_);
    if (!seg) {
      rep.segments_after = segments_.size();
      return rep;
    }
    ++next_segment_id_;
    fresh.push_back(std::move(seg));
  }

  // Phase 2: unlink old segments oldest-first. A crash mid-way leaves a
  // suffix of old segments + all new ones; new frames carry versions >= any
  // old frame for the same key, so replay still converges to this state.
  // Oldest-first matters for dropped tombstones: a tombstone's frame lives
  // in a segment no older than the record frames it suppresses, so the
  // records die before the tombstone does.
  for (auto& seg : segments_) seg->remove();
  segments_ = std::move(fresh);
  index_ = std::move(new_index);
  live_bytes_ = new_live_bytes;
  dead_bytes_ = 0;
  tombstones_ = 0;
  ++compactions_;

  rep.segments_after = segments_.size();
  rep.live_records = index_.size();
  uint64_t bytes_after = 0;
  for (const auto& seg : segments_) bytes_after += seg->size_bytes();
  rep.reclaimed_bytes = bytes_before > bytes_after ? bytes_before - bytes_after : 0;

  obs::count(obs::kStoreCompactions);
  obs::observe(obs::kStoreCompactNs, now_ns() - t0);
  return rep;
}

bool AccountStore::self_check() const {
  std::lock_guard lk(mu_);
  // Re-derive the index from disk exactly the way open() would and compare.
  std::unordered_map<std::string, Location> disk;
  size_t disk_tombstones = 0;
  for (const auto& seg : segments_) {
    seg->scan([&](const Frame& f) {
      Location loc;
      loc.segment = seg->id();
      loc.offset = f.offset;
      loc.length = f.length;
      loc.version = f.version;
      loc.tombstone = (f.type == kFrameTombstone);
      auto it = disk.find(f.key);
      if (it == disk.end() || f.version >= it->second.version) {
        if (it != disk.end() && it->second.tombstone) --disk_tombstones;
        disk[f.key] = loc;
        if (loc.tombstone) ++disk_tombstones;
      }
    });
  }
  if (disk.size() != index_.size() || disk_tombstones != tombstones_) {
    return false;
  }
  for (const auto& [k, loc] : index_) {
    auto it = disk.find(k);
    if (it == disk.end()) return false;
    const Location& d = it->second;
    if (d.segment != loc.segment || d.offset != loc.offset ||
        d.length != loc.length || d.version != loc.version ||
        d.tombstone != loc.tombstone) {
      return false;
    }
    if (!loc.tombstone) {
      Segment* seg = segment_locked(loc.segment);
      if (seg == nullptr) return false;
      try {
        (void)seg->read(loc.offset, loc.length);  // throws on bad checksum
      } catch (const std::exception&) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace hcpp::store
