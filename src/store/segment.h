// One append-only segment file of the log-structured account store
// (store.h). A segment is a sequence of length-prefixed, checksummed frames
// behind a fixed magic header; the only mutations are appending a frame at
// the tail and truncating a torn tail discovered during recovery — the same
// WAL discipline src/ledger proved out, with a per-frame SHA-256 commitment
// instead of a hash chain (segments are independently rewritable by
// compaction, so frames must self-validate rather than chain).
//
// Life cycle: a segment is *active* while the store appends to it (reads go
// through pread on the same descriptor) and *sealed* once the store rolls to
// a new segment — sealing memory-maps the file read-only, so the hot read
// path of a big store is one memcpy out of the page cache with no syscall.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "src/common/bytes.h"

namespace hcpp::store {

/// Frame types. Records carry a value; tombstones mark a deletion and carry
/// an empty value (kept in the log so replay-by-max-version suppresses older
/// record frames until compaction folds both away).
inline constexpr uint8_t kFrameRecord = 'R';
inline constexpr uint8_t kFrameTombstone = 'T';

/// One decoded frame, as surfaced to recovery scans.
struct Frame {
  uint8_t type = kFrameRecord;
  uint64_t version = 0;
  std::string key;
  Bytes value;
  uint64_t offset = 0;  // frame start within the segment file
  uint32_t length = 0;  // full frame length (header + body)
};

/// Recomputes the commitment a frame's trailing digest must equal.
Bytes frame_checksum(uint8_t type, uint64_t version, std::string_view key,
                     BytesView value);

// ---------------------------------------------------------------------------
class Segment {
 public:
  /// File name for segment `id` ("seg-000042.hcps").
  static std::string file_name(uint32_t id);
  /// Parses a segment id back out of a file name; nullopt for foreign files.
  static std::optional<uint32_t> id_from_name(std::string_view name);

  /// Creates a fresh segment file (magic written and flushed).
  static std::unique_ptr<Segment> create(const std::string& dir, uint32_t id);
  /// Opens an existing segment for recovery/reads. Returns nullptr when the
  /// file cannot be opened; a missing/short magic is reported by scan().
  static std::unique_ptr<Segment> open(const std::string& dir, uint32_t id);

  ~Segment();
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  [[nodiscard]] uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] uint64_t size_bytes() const noexcept { return size_; }
  [[nodiscard]] bool sealed() const noexcept { return map_ != nullptr; }

  /// Byte size the frame for (key, value) will occupy.
  static uint64_t frame_size(std::string_view key, BytesView value);

  /// Appends one frame and pushes it to the OS (write(2) on an O_APPEND
  /// descriptor; `sync` additionally fdatasyncs). Returns the frame's offset,
  /// or nullopt on I/O failure. Must not be called on a sealed segment.
  std::optional<uint64_t> append(uint8_t type, uint64_t version,
                                 std::string_view key, BytesView value,
                                 bool sync);

  /// Reads `length` bytes at `offset` (memcpy from the mapping when sealed,
  /// pread otherwise) and decodes the frame. Throws std::runtime_error on
  /// I/O failure or a checksum mismatch — the index never points at an
  /// unvalidated frame, so a mismatch here means post-recovery corruption.
  [[nodiscard]] Frame read(uint64_t offset, uint32_t length) const;
  /// Like read(), but returns only the value bytes (the store's get path).
  [[nodiscard]] Bytes read_value(uint64_t offset, uint32_t length) const;

  /// Replays every valid frame from the start, invoking `fn` per frame, and
  /// returns the byte length of the valid prefix (== size_bytes() when the
  /// whole file parses). A missing magic yields 0. Frames after the first
  /// malformed/torn one are never surfaced.
  uint64_t scan(const std::function<void(const Frame&)>& fn) const;

  /// Truncates the file to `bytes` (recovery's torn-tail discard).
  bool truncate(uint64_t bytes);

  /// fdatasyncs buffered appends (compaction's barrier before it unlinks the
  /// segments it replaced).
  bool sync();

  /// Seals the segment: no further appends; reads go through a read-only
  /// memory mapping (skipped for empty files, where pread remains).
  void seal();

  /// Closes and unlinks the file (compaction's reclamation step).
  void remove();

 private:
  Segment() = default;
  [[nodiscard]] bool read_raw(uint64_t offset, uint32_t length,
                              uint8_t* out) const;

  std::string path_;
  uint32_t id_ = 0;
  int fd_ = -1;
  uint64_t size_ = 0;
  void* map_ = nullptr;       // non-null once sealed
  uint64_t map_size_ = 0;
};

}  // namespace hcpp::store
