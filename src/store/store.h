// Log-structured, memory-mapped persistent account store (ROADMAP item 2).
//
// The S-server's accounts used to live purely in std::map — sized for unit
// tests, gone on the first crash. This module gives the hospital tier a
// durable backing store without dragging in an external database:
//
//   * append-only segment files (segment.h) — length-prefixed, checksummed
//     frames; the only writes are appends and recovery's torn-tail
//     truncation, so a crash can never corrupt previously-acked records;
//   * an in-memory hash index from key (pseudonym/collection) to the latest
//     frame's (segment, offset, length) — one read per get, O(1) lookup;
//   * versioned replay — every mutation carries a store-wide monotone
//     version, and recovery keeps the highest version per key, which is
//     what makes compaction crash-safe (see below);
//   * crash-safe recover() — segments replay in id order, the newest
//     segment's torn tail is truncated, foreign/corrupt bytes never parse
//     into records (each frame re-validates its SHA-256 commitment);
//   * compaction — live records are rewritten into fresh segments (ids
//     strictly above every existing segment), then the old segments are
//     unlinked oldest-first. A crash anywhere in between leaves a union of
//     old and new frames whose version-max replay is state-identical, and
//     oldest-first deletion guarantees a tombstone's frame always outlives
//     the older record frames it suppresses, so tombstones can be dropped
//     at compaction without resurrecting deleted keys.
//
// Durability model matches src/ledger: append() hands the frame to the OS
// (write(2)) before the in-memory index mutates; StoreOptions::fsync adds
// fdatasync per append for machine-crash durability. The class is internally
// synchronized (one coarse mutex; sealed-segment reads are memcpys out of
// the page cache), so the load harness can drive one store from many
// closed-loop clients.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/store/segment.h"

namespace hcpp::store {

struct StoreOptions {
  /// Roll to a fresh segment once the active one exceeds this many bytes.
  uint64_t segment_bytes = 8ull << 20;
  /// fdatasync every append (true machine-crash durability; default mirrors
  /// the ledger WAL's flush-only process-crash model).
  bool fsync = false;
};

/// What open() found while replaying the segment files.
struct StoreRecoveryReport {
  size_t segments = 0;         // segment files replayed
  size_t records = 0;          // record frames surviving version-max replay
  size_t tombstones = 0;       // live tombstones (deleted keys)
  uint64_t torn_bytes = 0;     // bytes discarded from the newest segment
  bool tail_discarded = false;
  uint64_t last_version = 0;   // highest version seen (== mutations acked)
};

struct StoreStats {
  size_t segments = 0;
  size_t live_records = 0;   // keys with a current value
  size_t tombstones = 0;     // deleted keys still occupying a frame
  uint64_t live_bytes = 0;   // frame bytes the index points at
  uint64_t dead_bytes = 0;   // superseded/dropped frame bytes
  uint64_t total_bytes = 0;  // sum of segment file sizes
  uint64_t last_version = 0;
  uint64_t compactions = 0;
};

struct CompactionReport {
  size_t segments_before = 0;
  size_t segments_after = 0;
  uint64_t reclaimed_bytes = 0;  // total_bytes shrink
  size_t live_records = 0;       // records carried into the new segments
  size_t tombstones_dropped = 0;
};

// ---------------------------------------------------------------------------
class AccountStore {
 public:
  /// An unopened store; every accessor reports empty and mutations fail.
  AccountStore() = default;
  AccountStore(AccountStore&&) noexcept;
  AccountStore& operator=(AccountStore&&) noexcept;
  AccountStore(const AccountStore&) = delete;
  AccountStore& operator=(const AccountStore&) = delete;
  ~AccountStore();

  /// Opens (creating the directory if needed) and recovers the store at
  /// `dir`: replays every segment in id order keeping the highest version
  /// per key, truncates the newest segment's torn tail, and leaves the
  /// newest segment active for appends.
  static AccountStore open(const std::string& dir, StoreOptions options = {},
                           StoreRecoveryReport* report = nullptr);

  [[nodiscard]] bool is_open() const noexcept { return !dir_.empty(); }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Durably appends (key → value); the index mutates only after the frame
  /// reached the OS. Returns false on I/O failure (state unchanged).
  bool put(std::string_view key, BytesView value);
  /// Durably appends a tombstone. Returns false when the key is absent.
  bool erase(std::string_view key);
  /// Latest value, or nullopt for absent/deleted keys.
  [[nodiscard]] std::optional<Bytes> get(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const;

  /// Live (non-tombstoned) key count.
  [[nodiscard]] size_t size() const;
  [[nodiscard]] std::vector<std::string> keys() const;
  /// Visits every live record (hydration path). Reads happen under the
  /// store lock; `fn` must not reenter the store.
  void for_each(const std::function<void(const std::string& key,
                                         const Bytes& value)>& fn) const;

  [[nodiscard]] StoreStats stats() const;

  /// Folds dead versions away: rewrites live records into fresh segments,
  /// drops tombstones, unlinks old segments oldest-first. Safe against a
  /// crash at any point (see file comment). No-op on an unopened store.
  CompactionReport compact();

  /// Full offline verification: re-scans every segment from disk and checks
  /// the surviving state matches the in-memory index byte-for-byte. Slow;
  /// meant for the CLI / tests, not the serving path.
  [[nodiscard]] bool self_check() const;

 private:
  struct Location {
    uint32_t segment = 0;
    uint64_t offset = 0;
    uint32_t length = 0;
    uint64_t version = 0;
    bool tombstone = false;
  };

  Segment* active_locked();
  Segment* segment_locked(uint32_t id) const;
  bool append_locked(uint8_t type, std::string_view key, BytesView value);
  void account_replace_locked(const std::string& key, const Location& loc);

  std::string dir_;
  StoreOptions options_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Segment>> segments_;  // ascending by id
  std::unordered_map<std::string, Location> index_;  // records + tombstones
  uint64_t next_version_ = 1;
  uint32_t next_segment_id_ = 0;
  uint64_t live_bytes_ = 0;
  uint64_t dead_bytes_ = 0;
  size_t tombstones_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace hcpp::store
