// Shard routing for the S-server group: which replica owns an account.
//
// Accounts shard by *pseudonym* (the tp bytes), not by the full
// pseudonym/collection key, so every collection of one patient lands on the
// same shard — retrieval, revocation and emergency break-the-glass for a
// patient each talk to exactly one S-server. The hash is the first 8 bytes
// of SHA-256 over the hex-encoded pseudonym, which is exactly the prefix of
// SServer::account_key() before the '/' separator; shard_for_key() re-derives
// the same shard from a stored account key, so the store layer and the
// protocol layer can never disagree about ownership.
#pragma once

#include <cstddef>
#include <string_view>

#include "src/common/bytes.h"

namespace hcpp::store {

/// Shard index for a full account key ("<hex(tp)>/<collection>") or a bare
/// hex pseudonym. `shards` must be >= 1; with 1 shard everything maps to 0.
[[nodiscard]] size_t shard_for_key(std::string_view account_key,
                                   size_t shards);

/// Shard index for raw pseudonym bytes (hex-encodes, then shard_for_key).
[[nodiscard]] size_t shard_for_pseudonym(BytesView tp, size_t shards);

}  // namespace hcpp::store
