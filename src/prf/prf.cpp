#include "src/prf/prf.h"

#include "src/hash/hkdf.h"
#include "src/hash/hmac.h"

namespace hcpp::prf {

Bytes Prf::eval(BytesView x, size_t out_len) const {
  if (out_len <= 32) return hash::hmac_sha256_trunc(key_, x, out_len);
  Bytes prk = hash::hmac_sha256(key_, x);
  return hash::hkdf_expand(prk, to_bytes("hcpp-prf-wide"), out_len);
}

}  // namespace hcpp::prf
