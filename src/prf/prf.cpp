#include "src/prf/prf.h"

#include "src/hash/hkdf.h"

namespace hcpp::prf {

Bytes Prf::eval(BytesView x, size_t out_len) const {
  if (out_len <= 32) return mac_.eval_trunc(x, out_len);
  Bytes prk = mac_.eval(x);
  return hash::hkdf_expand(prk, to_bytes("hcpp-prf-wide"), out_len);
}

}  // namespace hcpp::prf
