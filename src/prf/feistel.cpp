#include "src/prf/feistel.h"

#include <stdexcept>

namespace hcpp::prf {

FeistelPrp::FeistelPrp(Bytes key, size_t width_bytes)
    : key_(std::move(key)), mac_(key_), width_(width_bytes) {
  if (width_ < 2) {
    throw std::invalid_argument("FeistelPrp: width must be >= 2 bytes");
  }
}

Bytes FeistelPrp::round_value(int round, BytesView half,
                              size_t out_len) const {
  Bytes msg;
  msg.push_back(static_cast<uint8_t>(round));
  append(msg, half);
  Bytes full = mac_.eval(msg);
  // Widths beyond 32 bytes are rare here (trapdoors are small), but stay
  // correct anyway by chaining.
  while (full.size() < out_len) {
    Bytes more = mac_.eval(full);
    append(full, more);
  }
  full.resize(out_len);
  return full;
}

Bytes FeistelPrp::forward(BytesView in) const {
  if (in.size() != width_) {
    throw std::invalid_argument("FeistelPrp::forward: width mismatch");
  }
  size_t l = width_ / 2;
  Bytes left(in.begin(), in.begin() + static_cast<ptrdiff_t>(l));
  Bytes right(in.begin() + static_cast<ptrdiff_t>(l), in.end());
  for (int round = 0; round < kRounds; ++round) {
    Bytes f = round_value(round, right, left.size());
    for (size_t i = 0; i < left.size(); ++i) left[i] ^= f[i];
    std::swap(left, right);
  }
  // kRounds is even, so halves are back in their original positions.
  Bytes out = left;
  append(out, right);
  return out;
}

Bytes FeistelPrp::inverse(BytesView in) const {
  if (in.size() != width_) {
    throw std::invalid_argument("FeistelPrp::inverse: width mismatch");
  }
  size_t l = width_ / 2;
  Bytes left(in.begin(), in.begin() + static_cast<ptrdiff_t>(l));
  Bytes right(in.begin() + static_cast<ptrdiff_t>(l), in.end());
  for (int round = kRounds - 1; round >= 0; --round) {
    std::swap(left, right);
    Bytes f = round_value(round, right, left.size());
    for (size_t i = 0; i < left.size(); ++i) left[i] ^= f[i];
  }
  Bytes out = left;
  append(out, right);
  return out;
}

namespace {
// Smallest even bit count b with 2^b >= n (balanced Feistel halves).
int even_bit_width(uint64_t n) noexcept {
  int b = 2;
  while (b < 62 && (1ull << b) < n) b += 2;
  return b;
}
}  // namespace

SmallDomainPrp::SmallDomainPrp(Bytes key, uint64_t domain_size)
    : key_(std::move(key)), mac_(key_), n_(domain_size) {
  if (n_ < 2) {
    throw std::invalid_argument("SmallDomainPrp: domain must be >= 2");
  }
  bits_ = even_bit_width(n_);
  left_bits_ = bits_ / 2;
}

namespace {
uint64_t feistel_f(const hash::HmacKey& mac, int round, uint64_t right,
                   int out_bits) {
  uint8_t msg[9];
  msg[0] = static_cast<uint8_t>(round);
  for (int i = 0; i < 8; ++i) msg[1 + i] = static_cast<uint8_t>(right >> (8 * i));
  hash::Digest f = mac.eval_digest(BytesView(msg, 9));
  uint64_t fv = 0;
  for (int i = 0; i < 8; ++i) fv |= static_cast<uint64_t>(f[i]) << (8 * i);
  return fv & ((1ull << out_bits) - 1);
}
}  // namespace

uint64_t SmallDomainPrp::round_once(uint64_t x) const {
  const int hb = left_bits_;
  const uint64_t mask = (1ull << hb) - 1;
  uint64_t left = x >> hb;
  uint64_t right = x & mask;
  for (int round = 0; round < kRounds; ++round) {
    uint64_t new_left = right;
    uint64_t new_right = left ^ feistel_f(mac_, round, right, hb);
    left = new_left;
    right = new_right;
  }
  return (left << hb) | right;
}

uint64_t SmallDomainPrp::unround_once(uint64_t y) const {
  const int hb = left_bits_;
  const uint64_t mask = (1ull << hb) - 1;
  uint64_t left = y >> hb;
  uint64_t right = y & mask;
  for (int round = kRounds - 1; round >= 0; --round) {
    uint64_t prev_right = left;
    uint64_t prev_left = right ^ feistel_f(mac_, round, prev_right, hb);
    left = prev_left;
    right = prev_right;
  }
  return (left << hb) | right;
}

uint64_t SmallDomainPrp::forward(uint64_t x) const {
  if (x >= n_) throw std::out_of_range("SmallDomainPrp::forward");
  uint64_t y = round_once(x);
  while (y >= n_) y = round_once(y);  // cycle walking
  return y;
}

uint64_t SmallDomainPrp::inverse(uint64_t y) const {
  if (y >= n_) throw std::out_of_range("SmallDomainPrp::inverse");
  uint64_t x = unround_once(y);
  while (x >= n_) x = unround_once(x);
  return x;
}

}  // namespace hcpp::prf
