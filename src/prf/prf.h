// Pseudo-random function family (§II.B): keyed HMAC-SHA256 with arbitrary
// output width via HKDF expansion. This realises the paper's PRF f used in
// the SSE lookup table.
#pragma once

#include "src/common/bytes.h"
#include "src/hash/hmac.h"

namespace hcpp::prf {

/// Immutable after construction (the HMAC key schedule is precomputed once),
/// so one instance may be shared across pool workers.
class Prf {
 public:
  explicit Prf(Bytes key) : key_(std::move(key)), mac_(key_) {}

  /// f_key(x), `out_len` bytes.
  [[nodiscard]] Bytes eval(BytesView x, size_t out_len) const;

  [[nodiscard]] const Bytes& key() const noexcept { return key_; }

 private:
  Bytes key_;
  hash::HmacKey mac_;
};

}  // namespace hcpp::prf
