// Pseudo-random function family (§II.B): keyed HMAC-SHA256 with arbitrary
// output width via HKDF expansion. This realises the paper's PRF f used in
// the SSE lookup table.
#pragma once

#include "src/common/bytes.h"

namespace hcpp::prf {

class Prf {
 public:
  explicit Prf(Bytes key) : key_(std::move(key)) {}

  /// f_key(x), `out_len` bytes.
  [[nodiscard]] Bytes eval(BytesView x, size_t out_len) const;

  [[nodiscard]] const Bytes& key() const noexcept { return key_; }

 private:
  Bytes key_;
};

}  // namespace hcpp::prf
