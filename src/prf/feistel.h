// Pseudo-random permutations (§II.B) via Luby–Rackoff Feistel networks with
// an HMAC round function.
//
//  * FeistelPrp      — PRP over fixed-width byte strings; realises the
//                      paper's ϖ (virtual-address PRP) and θ (the
//                      trapdoor-wrapping PRP of ASSIGN/REVOKE).
//  * SmallDomainPrp  — PRP over an arbitrary integer domain [0, n) via a
//                      numeric Feistel plus cycle-walking; realises φ, which
//                      scrambles node positions inside the SSE array A.
#pragma once

#include <cstdint>

#include "src/common/bytes.h"
#include "src/hash/hmac.h"

namespace hcpp::prf {

// Both PRPs precompute their HMAC key schedule at construction and are
// immutable afterwards, so instances are safe to share across pool workers.

class FeistelPrp {
 public:
  /// `width_bytes` >= 2. 8 Feistel rounds.
  FeistelPrp(Bytes key, size_t width_bytes);

  /// Permutes `in` (must be exactly width bytes).
  [[nodiscard]] Bytes forward(BytesView in) const;
  /// Inverse permutation.
  [[nodiscard]] Bytes inverse(BytesView in) const;

  [[nodiscard]] size_t width() const noexcept { return width_; }

 private:
  Bytes round_value(int round, BytesView half, size_t out_len) const;

  Bytes key_;
  hash::HmacKey mac_;
  size_t width_;
  static constexpr int kRounds = 8;
};

class SmallDomainPrp {
 public:
  /// Permutation over [0, domain_size), domain_size >= 2.
  SmallDomainPrp(Bytes key, uint64_t domain_size);

  [[nodiscard]] uint64_t forward(uint64_t x) const;
  [[nodiscard]] uint64_t inverse(uint64_t y) const;

  [[nodiscard]] uint64_t domain_size() const noexcept { return n_; }

 private:
  uint64_t round_once(uint64_t x) const;    // PRP over [0, 2^bits_)
  uint64_t unround_once(uint64_t y) const;  // its inverse

  Bytes key_;
  hash::HmacKey mac_;
  uint64_t n_;
  int bits_;       // ceil(log2 n), >= 2
  int left_bits_;  // bits_/2
  static constexpr int kRounds = 6;
};

}  // namespace hcpp::prf
