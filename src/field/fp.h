// Prime field F_p used by the pairing curve. Elements are stored in
// Montgomery form and carry a pointer to their shared field context;
// contexts outlive all elements (they live in the Params registry).
#pragma once

#include <optional>

#include "src/mp/mont.h"
#include "src/mp/u512.h"

namespace hcpp::field {

struct FpCtx {
  mp::U512 p;
  mp::MontCtx mont;
  mp::U512 sqrt_exp;      // (p+1)/4 — valid because p ≡ 3 (mod 4)
  mp::U512 legendre_exp;  // (p-1)/2

  /// `p` must be an odd prime ≡ 3 (mod 4) (checked for the mod-4 condition;
  /// primality is the caller's contract).
  explicit FpCtx(const mp::U512& prime);
};

class Fp {
 public:
  /// Default-constructed elements are detached placeholders; using them in
  /// arithmetic is a programming error (asserted in debug).
  Fp() = default;
  Fp(const FpCtx* ctx, const mp::U512& plain);

  static Fp zero(const FpCtx* ctx);
  static Fp one(const FpCtx* ctx);

  [[nodiscard]] const FpCtx* ctx() const noexcept { return ctx_; }
  /// Plain (non-Montgomery) value.
  [[nodiscard]] mp::U512 value() const;
  [[nodiscard]] bool is_zero() const noexcept { return v_.is_zero(); }

  [[nodiscard]] Fp operator+(const Fp& o) const;
  [[nodiscard]] Fp operator-(const Fp& o) const;
  [[nodiscard]] Fp operator*(const Fp& o) const;
  [[nodiscard]] Fp neg() const;
  [[nodiscard]] Fp sqr() const;
  [[nodiscard]] Fp inv() const;
  [[nodiscard]] Fp pow(const mp::U512& e) const;
  /// Square root if one exists (p ≡ 3 mod 4 method).
  [[nodiscard]] std::optional<Fp> sqrt() const;
  /// True iff the element is a nonzero quadratic residue.
  [[nodiscard]] bool is_square() const;

  friend bool operator==(const Fp& a, const Fp& b) noexcept = default;

  /// Internal Montgomery representation (for serialization fast paths).
  [[nodiscard]] const mp::U512& raw() const noexcept { return v_; }
  static Fp from_raw(const FpCtx* ctx, const mp::U512& mont_value);

 private:
  const FpCtx* ctx_ = nullptr;
  mp::U512 v_;  // Montgomery form
};

}  // namespace hcpp::field
