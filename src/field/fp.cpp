#include "src/field/fp.h"

#include <cassert>
#include <stdexcept>

namespace hcpp::field {

FpCtx::FpCtx(const mp::U512& prime) : p(prime), mont(prime) {
  if ((prime.w[0] & 3) != 3) {
    throw std::invalid_argument("FpCtx: p must be 3 mod 4");
  }
  mp::U512 p_plus1;
  // p+1 cannot overflow 512 bits for our parameter sets (p < 2^512 - 1).
  mp::add(p_plus1, p, mp::U512::from_u64(1));
  sqrt_exp = mp::shr1(mp::shr1(p_plus1));
  mp::U512 p_minus1;
  mp::sub(p_minus1, p, mp::U512::from_u64(1));
  legendre_exp = mp::shr1(p_minus1);
}

Fp::Fp(const FpCtx* ctx, const mp::U512& plain) : ctx_(ctx) {
  assert(ctx != nullptr);
  v_ = ctx->mont.to_mont(mp::mod(plain, ctx->p));
}

Fp Fp::zero(const FpCtx* ctx) {
  Fp r;
  r.ctx_ = ctx;
  return r;
}

Fp Fp::one(const FpCtx* ctx) {
  Fp r;
  r.ctx_ = ctx;
  r.v_ = ctx->mont.one();
  return r;
}

Fp Fp::from_raw(const FpCtx* ctx, const mp::U512& mont_value) {
  Fp r;
  r.ctx_ = ctx;
  r.v_ = mont_value;
  return r;
}

mp::U512 Fp::value() const {
  assert(ctx_ != nullptr);
  return ctx_->mont.from_mont(v_);
}

Fp Fp::operator+(const Fp& o) const {
  assert(ctx_ != nullptr && ctx_ == o.ctx_);
  return from_raw(ctx_, ctx_->mont.add(v_, o.v_));
}

Fp Fp::operator-(const Fp& o) const {
  assert(ctx_ != nullptr && ctx_ == o.ctx_);
  return from_raw(ctx_, ctx_->mont.sub(v_, o.v_));
}

Fp Fp::operator*(const Fp& o) const {
  assert(ctx_ != nullptr && ctx_ == o.ctx_);
  return from_raw(ctx_, ctx_->mont.mul(v_, o.v_));
}

Fp Fp::neg() const {
  assert(ctx_ != nullptr);
  return from_raw(ctx_, ctx_->mont.sub(mp::U512{}, v_));
}

Fp Fp::sqr() const {
  assert(ctx_ != nullptr);
  return from_raw(ctx_, ctx_->mont.sqr(v_));
}

Fp Fp::inv() const {
  assert(ctx_ != nullptr);
  if (is_zero()) throw std::domain_error("Fp::inv: zero");
  return from_raw(ctx_, ctx_->mont.inv(v_));
}

Fp Fp::pow(const mp::U512& e) const {
  assert(ctx_ != nullptr);
  return from_raw(ctx_, ctx_->mont.pow(v_, e));
}

bool Fp::is_square() const {
  assert(ctx_ != nullptr);
  if (is_zero()) return false;
  return pow(ctx_->legendre_exp) == one(ctx_);
}

std::optional<Fp> Fp::sqrt() const {
  assert(ctx_ != nullptr);
  if (is_zero()) return zero(ctx_);
  Fp r = pow(ctx_->sqrt_exp);
  if (r.sqr() == *this) return r;
  return std::nullopt;
}

}  // namespace hcpp::field
