#include "src/field/fp2.h"

#include <cassert>

namespace hcpp::field {

bool Fp2::is_one() const {
  return b_.is_zero() && a_ == Fp::one(a_.ctx());
}

Fp2 Fp2::operator+(const Fp2& o) const { return {a_ + o.a_, b_ + o.b_}; }

Fp2 Fp2::operator-(const Fp2& o) const { return {a_ - o.a_, b_ - o.b_}; }

Fp2 Fp2::operator*(const Fp2& o) const {
  // Lazy-reduction Karatsuba in the Montgomery engine: three wide products,
  // one reduction per output coefficient (vs. three fully reduced muls plus
  // five modular add/subs of the element-wise formulation).
  const FpCtx* c = ctx();
  assert(c != nullptr && c == o.ctx());
  mp::U512 re, im;
  c->mont.fp2_mul(re, im, a_.raw(), b_.raw(), o.a_.raw(), o.b_.raw());
  return {Fp::from_raw(c, re), Fp::from_raw(c, im)};
}

Fp2 Fp2::sqr() const {
  // (a+bi)^2 = (a^2 - b^2) + 2ab·i, lazily reduced in the engine.
  const FpCtx* c = ctx();
  assert(c != nullptr);
  mp::U512 re, im;
  c->mont.fp2_sqr(re, im, a_.raw(), b_.raw());
  return {Fp::from_raw(c, re), Fp::from_raw(c, im)};
}

Fp2 Fp2::conj() const { return {a_, b_.neg()}; }

Fp2 Fp2::inv() const {
  // (a+bi)^{-1} = (a-bi) / (a^2 + b^2)
  Fp norm = a_.sqr() + b_.sqr();
  Fp ninv = norm.inv();
  return {a_ * ninv, b_.neg() * ninv};
}

Fp2 Fp2::pow(const mp::U512& e) const {
  // Fixed 4-bit windows (see MontCtx::pow): the final exponentiation of the
  // pairing raises to the ~(p-bits − q-bits)-bit cofactor through here, so
  // the ~n/4 saved multiplications are a hot-path win, not a nicety.
  size_t nbits = e.bit_length();
  if (nbits == 0) return one(ctx());
  Fp2 table[16];
  table[1] = *this;
  for (size_t i = 2; i < 16; ++i) table[i] = table[i - 1] * *this;
  Fp2 result = one(ctx());
  bool started = false;
  for (size_t wi = (nbits + 3) / 4; wi-- > 0;) {
    if (started) {
      result = result.sqr().sqr().sqr().sqr();
    }
    uint64_t d = (e.w[(4 * wi) / 64] >> ((4 * wi) % 64)) & 15;
    if (d != 0) {
      result = started ? result * table[d] : table[d];
      started = true;
    }
  }
  return started ? result : one(ctx());
}

Bytes Fp2::to_bytes() const {
  Bytes out = a_.value().to_bytes_be();
  append(out, b_.value().to_bytes_be());
  return out;
}

}  // namespace hcpp::field
