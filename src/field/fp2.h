// Quadratic extension F_{p^2} = F_p[i] / (i^2 + 1), valid because
// p ≡ 3 (mod 4) makes -1 a non-residue. This is the pairing target group's
// home; the Frobenius map is complex conjugation, which the final
// exponentiation exploits.
#pragma once

#include "src/field/fp.h"

namespace hcpp::field {

class Fp2 {
 public:
  Fp2() = default;
  Fp2(Fp a, Fp b) : a_(a), b_(b) {}

  static Fp2 zero(const FpCtx* ctx) { return {Fp::zero(ctx), Fp::zero(ctx)}; }
  static Fp2 one(const FpCtx* ctx) { return {Fp::one(ctx), Fp::zero(ctx)}; }

  [[nodiscard]] const Fp& re() const noexcept { return a_; }
  [[nodiscard]] const Fp& im() const noexcept { return b_; }
  [[nodiscard]] const FpCtx* ctx() const noexcept { return a_.ctx(); }
  [[nodiscard]] bool is_zero() const noexcept {
    return a_.is_zero() && b_.is_zero();
  }
  [[nodiscard]] bool is_one() const;

  [[nodiscard]] Fp2 operator+(const Fp2& o) const;
  [[nodiscard]] Fp2 operator-(const Fp2& o) const;
  [[nodiscard]] Fp2 operator*(const Fp2& o) const;
  [[nodiscard]] Fp2 sqr() const;
  [[nodiscard]] Fp2 conj() const;
  [[nodiscard]] Fp2 inv() const;
  [[nodiscard]] Fp2 pow(const mp::U512& e) const;

  friend bool operator==(const Fp2& a, const Fp2& b) noexcept = default;

  /// 128-byte canonical encoding (plain a || plain b), for key derivation.
  [[nodiscard]] Bytes to_bytes() const;

 private:
  Fp a_;  // real part
  Fp b_;  // coefficient of i
};

}  // namespace hcpp::field
