// Hierarchical IBC (§IV.A), after Gentry–Silverberg HIDE/HIDS. The federal
// A-server is the root PKG; state A-servers sit at level 1; hospitals,
// physicians and S-servers at level 2 of this implementation's numbering
// (the paper counts from 1). Each node at depth t holds
//     S_t = Σ_{i=1..t} s_{i-1}·P_i,   P_i = H1(ID_1‖…‖ID_i),
// its own secret s_t, and its ancestors' published Q_i = s_i·P. This gives
// cross-domain availability: a patient can run encrypted exchanges with any
// S-server in the country knowing only the federal root parameters.
#pragma once

#include <string>
#include <vector>

#include "src/cipher/aead.h"
#include "src/curve/pairing.h"

namespace hcpp::ibc {

struct HibcPublic {
  const curve::CurveCtx* ctx = nullptr;
  curve::Point q0;  // s_root · P
};

class HibcNode {
 public:
  /// Creates the root PKG (depth 0, empty identity path).
  static HibcNode root(const curve::CurveCtx& ctx, RandomSource& rng);

  /// Derives the child `id` one level below this node (§IV.A lower-level
  /// setup: ψ_j = ψ_{j-1} + s_{j-1}·K_j plus the Q-value chain).
  [[nodiscard]] HibcNode derive_child(std::string_view id,
                                      RandomSource& rng) const;

  [[nodiscard]] const std::vector<std::string>& path() const noexcept {
    return path_;
  }
  [[nodiscard]] size_t depth() const noexcept { return path_.size(); }
  /// Root-level public parameters (valid on any node — the chain carries
  /// them down).
  [[nodiscard]] const HibcPublic& public_params() const noexcept {
    return pub_;
  }
  [[nodiscard]] const curve::CurveCtx& ctx() const noexcept {
    return *pub_.ctx;
  }

  // Exposed for the encryption/signature free functions.
  [[nodiscard]] const curve::Point& secret_point() const noexcept {
    return s_key_;
  }
  [[nodiscard]] const std::vector<curve::Point>& q_chain() const noexcept {
    return q_values_;
  }
  [[nodiscard]] const mp::U512& own_secret() const noexcept {
    return own_secret_;
  }

 private:
  HibcNode() = default;
  HibcPublic pub_;
  std::vector<std::string> path_;
  curve::Point s_key_;                  // S_t (infinity at root)
  mp::U512 own_secret_;                 // s_t
  std::vector<curve::Point> q_values_;  // Q_1..Q_{t-1} (ancestors below root)
};

/// Canonical P_i chain hashing for an identity path prefix.
curve::Point path_point(const curve::CurveCtx& ctx,
                        std::span<const std::string> path, size_t prefix_len);

struct HibcCiphertext {
  curve::Point u0;              // r·P
  std::vector<curve::Point> u;  // r·P_i, i = 2..t
  Bytes box;

  [[nodiscard]] Bytes to_bytes() const;
  static HibcCiphertext from_bytes(const curve::CurveCtx& ctx, BytesView b);
  [[nodiscard]] size_t size() const;
};

/// Encrypts to the entity with the given identity path (depth >= 1).
HibcCiphertext hibc_encrypt(const HibcPublic& pub,
                            std::span<const std::string> id_path,
                            BytesView plaintext, RandomSource& rng);

/// Decrypts at the named node; throws cipher::AuthError on failure.
Bytes hibc_decrypt(const HibcNode& node, const HibcCiphertext& ct);

/// Gentry–Silverberg hierarchical signature: σ = S_t + s_t·H1(path‖msg).
/// Carries the signer's Q chain including its own Q_t.
struct HibcSignature {
  curve::Point sigma;
  std::vector<curve::Point> q_values;  // Q_1..Q_t

  [[nodiscard]] Bytes to_bytes() const;
  static HibcSignature from_bytes(const curve::CurveCtx& ctx, BytesView b);
};

HibcSignature hibc_sign(const HibcNode& node, BytesView message);

bool hibc_verify(const HibcPublic& pub, std::span<const std::string> id_path,
                 BytesView message, const HibcSignature& sig);

}  // namespace hcpp::ibc
