#include "src/ibc/hibc.h"

#include <stdexcept>

#include "src/common/serialize.h"
#include "src/hash/hkdf.h"

namespace hcpp::ibc {

curve::Point path_point(const curve::CurveCtx& ctx,
                        std::span<const std::string> path, size_t prefix_len) {
  io::Writer w;
  w.u32(static_cast<uint32_t>(prefix_len));
  for (size_t i = 0; i < prefix_len; ++i) w.str(path[i]);
  return curve::hash_to_point(ctx, w.data(), "hcpp-hibc-path");
}

HibcNode HibcNode::root(const curve::CurveCtx& ctx, RandomSource& rng) {
  HibcNode n;
  n.pub_.ctx = &ctx;
  n.own_secret_ = curve::random_scalar(ctx, rng);
  n.pub_.q0 = curve::mul_generator(ctx, n.own_secret_);
  n.s_key_ = curve::Point::at_infinity();
  return n;
}

HibcNode HibcNode::derive_child(std::string_view id, RandomSource& rng) const {
  const curve::CurveCtx& ctx = *pub_.ctx;
  HibcNode child;
  child.pub_ = pub_;
  child.path_ = path_;
  child.path_.emplace_back(id);
  curve::Point p_child = path_point(ctx, child.path_, child.path_.size());
  // ψ_j = ψ_{j-1} + s_{j-1}·P_j
  child.s_key_ =
      curve::add(ctx, s_key_, curve::mul(ctx, p_child, own_secret_));
  child.own_secret_ = curve::random_scalar(ctx, rng);
  child.q_values_ = q_values_;
  if (!path_.empty()) {
    // This node is below the root, so its own Q joins the chain the child
    // needs (the root's Q0 travels in HibcPublic instead).
    child.q_values_.push_back(
        curve::mul_generator(ctx, own_secret_));
  }
  return child;
}

namespace {
Bytes kem_key(const curve::Gt& g) {
  return hash::hkdf(g.to_bytes(), {}, to_bytes("hcpp-hibc-kem"), 32);
}
}  // namespace

HibcCiphertext hibc_encrypt(const HibcPublic& pub,
                            std::span<const std::string> id_path,
                            BytesView plaintext, RandomSource& rng) {
  if (id_path.empty()) {
    throw std::invalid_argument("hibc_encrypt: empty identity path");
  }
  const curve::CurveCtx& ctx = *pub.ctx;
  mp::U512 r = curve::random_scalar(ctx, rng);
  HibcCiphertext ct;
  ct.u0 = curve::mul_generator(ctx, r);
  for (size_t i = 2; i <= id_path.size(); ++i) {
    ct.u.push_back(curve::mul(ctx, path_point(ctx, id_path, i), r));
  }
  curve::Point p1 = path_point(ctx, id_path, 1);
  curve::Gt g = curve::pairing(ctx, pub.q0, p1).pow(r);
  Bytes key = kem_key(g);
  ct.box = cipher::aead_encrypt(key, plaintext, {}, rng);
  secure_wipe(key);
  return ct;
}

Bytes hibc_decrypt(const HibcNode& node, const HibcCiphertext& ct) {
  const curve::CurveCtx& ctx = node.ctx();
  if (node.depth() == 0) {
    throw std::invalid_argument("hibc_decrypt: root holds no identity key");
  }
  if (ct.u.size() + 1 != node.depth()) throw cipher::AuthError();
  // g^r = ê(U0, S_t) · Π_{i=2..t} ê(Q_{i-1}, U_i)^{-1} as one multi-pairing:
  // the inverse factors become negated first arguments, and all t terms
  // share a single squaring chain and final exponentiation instead of t
  // independent pairings plus t−1 GT inversions.
  std::vector<curve::PairingTerm> terms;
  terms.reserve(ct.u.size() + 1);
  terms.emplace_back(ct.u0, node.secret_point());
  for (size_t i = 0; i < ct.u.size(); ++i) {
    terms.emplace_back(curve::negate(node.q_chain()[i]), ct.u[i]);
  }
  curve::Gt g = curve::pairing_product(ctx, terms);
  Bytes key = kem_key(g);
  Bytes pt = cipher::aead_decrypt(key, ct.box, {});
  secure_wipe(key);
  return pt;
}

namespace {
curve::Point message_point(const curve::CurveCtx& ctx,
                           std::span<const std::string> path,
                           BytesView message) {
  io::Writer w;
  w.u32(static_cast<uint32_t>(path.size()));
  for (const std::string& id : path) w.str(id);
  w.bytes(message);
  return curve::hash_to_point(ctx, w.data(), "hcpp-hibc-msg");
}
}  // namespace

HibcSignature hibc_sign(const HibcNode& node, BytesView message) {
  const curve::CurveCtx& ctx = node.ctx();
  if (node.depth() == 0) {
    throw std::invalid_argument("hibc_sign: root holds no identity key");
  }
  curve::Point p_m = message_point(ctx, node.path(), message);
  HibcSignature sig;
  sig.sigma = curve::add(ctx, node.secret_point(),
                         curve::mul(ctx, p_m, node.own_secret()));
  sig.q_values = node.q_chain();
  sig.q_values.push_back(
      curve::mul_generator(ctx, node.own_secret()));
  return sig;
}

bool hibc_verify(const HibcPublic& pub, std::span<const std::string> id_path,
                 BytesView message, const HibcSignature& sig) {
  const curve::CurveCtx& ctx = *pub.ctx;
  if (id_path.empty() || sig.q_values.size() != id_path.size()) return false;
  // ê(P, σ) == ê(Q0, P_1) · Π_{i=2..t} ê(Q_{i-1}, P_i) · ê(Q_t, P_M),
  // checked as ê(−P, σ)·ê(Q0, P_1)·…·ê(Q_t, P_M) == 1: all t+2 pairings
  // collapse into one multi-pairing.
  std::vector<curve::PairingTerm> terms;
  terms.reserve(id_path.size() + 2);
  terms.emplace_back(curve::negate(curve::generator(ctx)), sig.sigma);
  terms.emplace_back(pub.q0, path_point(ctx, id_path, 1));
  for (size_t i = 2; i <= id_path.size(); ++i) {
    terms.emplace_back(sig.q_values[i - 2], path_point(ctx, id_path, i));
  }
  terms.emplace_back(sig.q_values.back(),
                     message_point(ctx, id_path, message));
  return curve::pairing_product(ctx, terms).is_one();
}

Bytes HibcCiphertext::to_bytes() const {
  io::Writer w;
  w.bytes(curve::point_to_bytes(u0));
  w.u32(static_cast<uint32_t>(u.size()));
  for (const curve::Point& pt : u) w.bytes(curve::point_to_bytes(pt));
  w.bytes(box);
  return w.take();
}

HibcCiphertext HibcCiphertext::from_bytes(const curve::CurveCtx& ctx,
                                          BytesView b) {
  io::Reader r(b);
  HibcCiphertext ct;
  ct.u0 = curve::point_from_bytes(ctx, r.bytes());
  size_t n = r.count32(4);  // each point: u32 length prefix
  ct.u.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ct.u.push_back(curve::point_from_bytes(ctx, r.bytes()));
  }
  ct.box = r.bytes();
  return ct;
}

size_t HibcCiphertext::size() const { return to_bytes().size(); }

Bytes HibcSignature::to_bytes() const {
  io::Writer w;
  w.bytes(curve::point_to_bytes(sigma));
  w.u32(static_cast<uint32_t>(q_values.size()));
  for (const curve::Point& pt : q_values) w.bytes(curve::point_to_bytes(pt));
  return w.take();
}

HibcSignature HibcSignature::from_bytes(const curve::CurveCtx& ctx,
                                        BytesView b) {
  io::Reader r(b);
  HibcSignature sig;
  sig.sigma = curve::point_from_bytes(ctx, r.bytes());
  size_t n = r.count32(4);  // each point: u32 length prefix
  sig.q_values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    sig.q_values.push_back(curve::point_from_bytes(ctx, r.bytes()));
  }
  return sig;
}

}  // namespace hcpp::ibc
