#include "src/ibc/ibs.h"

#include <unordered_map>

#include "src/common/serialize.h"
#include "src/par/pool.h"

namespace hcpp::ibc {

mp::U512 ibs_challenge(const curve::CurveCtx& ctx, BytesView message,
                       const curve::Gt& u) {
  Bytes input = u.to_bytes();
  append(input, message);
  return curve::hash_to_scalar(ctx, input, "hcpp-ibs-h3");
}

namespace {
mp::U512 challenge(const curve::CurveCtx& ctx, BytesView message,
                   const curve::Gt& u) {
  return ibs_challenge(ctx, message, u);
}
}  // namespace

IbsSignature ibs_sign(const curve::CurveCtx& ctx,
                      const curve::Point& private_key, std::string_view id,
                      BytesView message, RandomSource& rng) {
  curve::Point q_id = Domain::public_key(ctx, id);
  mp::U512 k = curve::random_scalar(ctx, rng);
  // ê(H1(ID), P): the generator's cached Miller lines apply by symmetry.
  curve::Gt u = curve::generator_precomp(ctx).pairing_with(q_id).pow(k);
  IbsSignature sig;
  sig.v = challenge(ctx, message, u);
  // W = v·Γ + k·H1(ID)
  sig.w = curve::add(ctx, curve::mul(ctx, private_key, sig.v),
                     curve::mul(ctx, q_id, k));
  return sig;
}

bool ibs_verify(const PublicParams& pub, std::string_view id,
                BytesView message, const IbsSignature& sig) {
  const curve::CurveCtx& ctx = *pub.ctx;
  if (sig.w.infinity || sig.v.is_zero() || !(sig.v < ctx.q)) return false;
  curve::Point q_id = Domain::public_key(ctx, id);
  // u' = ê(W, P) · ê(H1(ID), Ppub)^{-v}
  curve::Gt e1 = curve::generator_precomp(ctx).pairing_with(sig.w);
  mp::U512 neg_v = mp::sub_mod(mp::U512{}, sig.v, ctx.q);
  curve::Gt e2 = curve::pairing(ctx, q_id, pub.p_pub).pow(neg_v);
  curve::Gt u = e1 * e2;
  return challenge(ctx, message, u) == sig.v;
}

IbsVerifier::IbsVerifier(const PublicParams& pub, std::string_view id)
    : ctx_(pub.ctx),
      id_(id),
      q_id_(Domain::public_key(*pub.ctx, id)),
      g_id_(curve::pairing(*pub.ctx, q_id_, pub.p_pub)) {}

bool IbsVerifier::verify(BytesView message, const IbsSignature& sig) const {
  if (sig.w.infinity || sig.v.is_zero() || !(sig.v < ctx_->q)) return false;
  curve::Gt e1 = curve::generator_precomp(*ctx_).pairing_with(sig.w);
  mp::U512 neg_v = mp::sub_mod(mp::U512{}, sig.v, ctx_->q);
  curve::Gt u = e1 * g_id_.pow(neg_v);
  return challenge(*ctx_, message, u) == sig.v;
}

std::vector<uint8_t> ibs_verify_batch(const PublicParams& pub,
                                      std::span<const IbsBatchItem> items,
                                      par::ThreadPool* pool) {
  const curve::CurveCtx& ctx = *pub.ctx;
  std::vector<uint8_t> out(items.size(), 0);
  if (items.empty()) return out;

  // Per-identity precomputation, shared read-only by every worker. q_id is
  // always worth caching (hash-to-point); g_id = ê(H1(ID), Ppub) only pays
  // for itself when the identity repeats — singletons fold that pairing into
  // their product check below instead.
  struct IdCtx {
    curve::Point q_id;
    size_t uses = 0;
    std::optional<curve::Gt> g_id;
  };
  std::unordered_map<std::string_view, IdCtx> ids;
  for (const IbsBatchItem& it : items) ++ids[it.id].uses;
  for (auto& [id, ic] : ids) {
    ic.q_id = Domain::public_key(ctx, id);
    if (ic.uses >= 2) ic.g_id = curve::pairing(ctx, ic.q_id, pub.p_pub);
  }

  auto verify_one = [&](size_t i) {
    const IbsBatchItem& it = items[i];
    const IbsSignature& sig = it.sig;
    if (sig.w.infinity || sig.v.is_zero() || !(sig.v < ctx.q)) return;
    const IdCtx& ic = ids.find(std::string_view(it.id))->second;
    mp::U512 neg_v = mp::sub_mod(mp::U512{}, sig.v, ctx.q);
    curve::Gt u;
    if (ic.g_id.has_value()) {
      // Repeated identity: fixed-argument ê(W, P) plus the cached base.
      u = curve::generator_precomp(ctx).pairing_with(sig.w) *
          ic.g_id->pow(neg_v);
    } else {
      // Singleton: ê(W, P) · ê(−v·H1(ID), Ppub) as one multi-pairing —
      // shared squaring chain, one final exponentiation.
      curve::PairingTerm terms[2] = {
          {sig.w, curve::generator(ctx)},
          {curve::mul(ctx, ic.q_id, neg_v), pub.p_pub},
      };
      u = curve::pairing_product(ctx, terms);
    }
    out[i] = challenge(ctx, it.message, u) == sig.v ? 1 : 0;
  };

  if (pool == nullptr || items.size() <= 1) {
    for (size_t i = 0; i < items.size(); ++i) verify_one(i);
  } else {
    pool->parallel_for(items.size(), verify_one);
  }
  return out;
}

Bytes IbsSignature::to_bytes() const {
  io::Writer wr;
  wr.raw(v.to_bytes_be());
  wr.bytes(curve::point_to_bytes(w));
  return wr.take();
}

IbsSignature IbsSignature::from_bytes(const curve::CurveCtx& ctx,
                                      BytesView b) {
  io::Reader r(b);
  IbsSignature sig;
  sig.v = mp::U512::from_bytes_be(r.raw(64));
  sig.w = curve::point_from_bytes(ctx, r.bytes());
  return sig;
}

size_t IbsSignature::size() const { return to_bytes().size(); }

}  // namespace hcpp::ibc
