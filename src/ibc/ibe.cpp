#include "src/ibc/ibe.h"

#include "src/common/serialize.h"
#include "src/hash/hkdf.h"

namespace hcpp::ibc {

namespace {

Bytes kem_key(const curve::Gt& g) {
  return hash::hkdf(g.to_bytes(), {}, to_bytes("hcpp-ibe-kem"), 32);
}

IbeCiphertext encrypt_to_q(const PublicParams& pub, const curve::Point& q_id,
                           BytesView plaintext, RandomSource& rng) {
  const curve::CurveCtx& ctx = *pub.ctx;
  mp::U512 r = curve::random_scalar(ctx, rng);
  IbeCiphertext ct;
  ct.u = curve::mul_generator(ctx, r);
  curve::Gt g = curve::pairing(ctx, q_id, pub.p_pub).pow(r);
  Bytes key = kem_key(g);
  ct.box = cipher::aead_encrypt(key, plaintext, {}, rng);
  secure_wipe(key);
  return ct;
}

}  // namespace

IbeCiphertext ibe_encrypt(const PublicParams& pub, std::string_view id,
                          BytesView plaintext, RandomSource& rng) {
  return encrypt_to_q(pub, Domain::public_key(*pub.ctx, id), plaintext, rng);
}

IbeCiphertext ibe_encrypt_to_point(const PublicParams& pub,
                                   const curve::Point& recipient,
                                   BytesView plaintext, RandomSource& rng) {
  return encrypt_to_q(pub, recipient, plaintext, rng);
}

Bytes ibe_decrypt(const curve::CurveCtx& ctx, const curve::Point& private_key,
                  const IbeCiphertext& ct) {
  // ê(Γ, U) = ê(s0·Q, rP) = ê(Q, Ppub)^r
  curve::Gt g = curve::pairing(ctx, private_key, ct.u);
  Bytes key = kem_key(g);
  Bytes pt = cipher::aead_decrypt(key, ct.box, {});
  secure_wipe(key);
  return pt;
}

IbeDecryptor::IbeDecryptor(const curve::CurveCtx& ctx,
                           const curve::Point& private_key)
    : pre_(ctx, private_key) {}

Bytes IbeDecryptor::decrypt(const IbeCiphertext& ct) const {
  Bytes key = kem_key(pre_.pairing_with(ct.u));
  Bytes pt = cipher::aead_decrypt(key, ct.box, {});
  secure_wipe(key);
  return pt;
}

IbePrecomputed::IbePrecomputed(const PublicParams& pub, std::string_view id)
    : ctx_(pub.ctx),
      g_id_(curve::pairing(*pub.ctx, Domain::public_key(*pub.ctx, id),
                           pub.p_pub)) {}

IbePrecomputed::IbePrecomputed(const PublicParams& pub,
                               const curve::Point& recipient)
    : ctx_(pub.ctx), g_id_(curve::pairing(*pub.ctx, recipient, pub.p_pub)) {}

IbeCiphertext IbePrecomputed::encrypt(BytesView plaintext,
                                      RandomSource& rng) const {
  mp::U512 r = curve::random_scalar(*ctx_, rng);
  IbeCiphertext ct;
  ct.u = curve::mul_generator(*ctx_, r);
  Bytes key = kem_key(g_id_.pow(r));
  ct.box = cipher::aead_encrypt(key, plaintext, {}, rng);
  secure_wipe(key);
  return ct;
}

namespace {

// FO hash H4: (σ, m) -> scalar r.
mp::U512 fo_scalar(const curve::CurveCtx& ctx, BytesView sigma,
                   BytesView message) {
  io::Writer w;
  w.bytes(sigma);
  w.bytes(message);
  return curve::hash_to_scalar(ctx, w.data(), "hcpp-ibe-fo-h4");
}

Bytes fo_mask(BytesView input, size_t out_len, std::string_view label) {
  return hash::hkdf(input, {}, to_bytes(label), out_len);
}

constexpr size_t kSigmaLen = 32;

}  // namespace

IbeCcaCiphertext ibe_encrypt_cca(const PublicParams& pub, std::string_view id,
                                 BytesView plaintext, RandomSource& rng) {
  const curve::CurveCtx& ctx = *pub.ctx;
  Bytes sigma = rng.bytes(kSigmaLen);
  mp::U512 r = fo_scalar(ctx, sigma, plaintext);
  IbeCcaCiphertext ct;
  ct.u = curve::mul_generator(ctx, r);
  curve::Gt g =
      curve::pairing(ctx, Domain::public_key(ctx, id), pub.p_pub).pow(r);
  ct.v = xor_bytes(sigma, fo_mask(g.to_bytes(), kSigmaLen, "hcpp-ibe-fo-h2"));
  ct.w = xor_bytes(Bytes(plaintext.begin(), plaintext.end()),
                   fo_mask(sigma, plaintext.size(), "hcpp-ibe-fo-h5"));
  return ct;
}

Bytes ibe_decrypt_cca(const curve::CurveCtx& ctx,
                      const ibc::PublicParams& pub,
                      const curve::Point& private_key,
                      const IbeCcaCiphertext& ct) {
  (void)pub;
  if (ct.u.infinity || ct.v.size() != kSigmaLen) throw cipher::AuthError();
  curve::Gt g = curve::pairing(ctx, private_key, ct.u);
  Bytes sigma =
      xor_bytes(ct.v, fo_mask(g.to_bytes(), kSigmaLen, "hcpp-ibe-fo-h2"));
  Bytes message =
      xor_bytes(ct.w, fo_mask(sigma, ct.w.size(), "hcpp-ibe-fo-h5"));
  // FO consistency: the randomness must rederive to the same U.
  mp::U512 r = fo_scalar(ctx, sigma, message);
  if (!(curve::mul_generator(ctx, r) == ct.u)) {
    throw cipher::AuthError();
  }
  return message;
}

Bytes IbeCcaCiphertext::to_bytes() const {
  io::Writer wr;
  wr.bytes(curve::point_to_bytes(u));
  wr.bytes(v);
  wr.bytes(w);
  return wr.take();
}

IbeCcaCiphertext IbeCcaCiphertext::from_bytes(const curve::CurveCtx& ctx,
                                              BytesView b) {
  io::Reader r(b);
  IbeCcaCiphertext ct;
  ct.u = curve::point_from_bytes(ctx, r.bytes());
  ct.v = r.bytes();
  ct.w = r.bytes();
  return ct;
}

size_t IbeCcaCiphertext::size() const { return to_bytes().size(); }

Bytes IbeCiphertext::to_bytes() const {
  io::Writer w;
  w.bytes(curve::point_to_bytes(u));
  w.bytes(box);
  return w.take();
}

IbeCiphertext IbeCiphertext::from_bytes(const curve::CurveCtx& ctx,
                                        BytesView b) {
  io::Reader r(b);
  IbeCiphertext ct;
  ct.u = curve::point_from_bytes(ctx, r.bytes());
  ct.box = r.bytes();
  return ct;
}

size_t IbeCiphertext::size() const { return to_bytes().size(); }

}  // namespace hcpp::ibc
