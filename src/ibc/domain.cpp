#include "src/ibc/domain.h"

#include "src/hash/hkdf.h"

namespace hcpp::ibc {

Domain::Domain(const curve::CurveCtx& ctx, RandomSource& rng)
    : Domain(ctx, curve::random_scalar(ctx, rng)) {}

Domain::Domain(const curve::CurveCtx& ctx, const mp::U512& master_secret)
    : ctx_(&ctx), s0_(mp::mod(master_secret, ctx.q)) {
  pub_.ctx = ctx_;
  pub_.p_pub = curve::mul_generator(ctx, s0_);
}

curve::Point Domain::extract(std::string_view id) const {
  return curve::mul(*ctx_, public_key(*ctx_, id), s0_);
}

curve::Point Domain::public_key(const curve::CurveCtx& ctx,
                                std::string_view id) {
  return curve::hash_to_point(ctx, to_bytes(id));
}

Domain::Pseudonym Domain::issue_pseudonym(RandomSource& rng) const {
  mp::U512 t = curve::random_scalar(*ctx_, rng);
  Pseudonym pn;
  pn.tp = curve::mul_generator(*ctx_, t);
  pn.gamma = curve::mul(*ctx_, pn.tp, s0_);
  return pn;
}

Domain::Pseudonym rerandomize_pseudonym(const curve::CurveCtx& ctx,
                                        const Domain::Pseudonym& base,
                                        RandomSource& rng) {
  mp::U512 r = curve::random_scalar(ctx, rng);
  return {curve::mul(ctx, base.tp, r), curve::mul(ctx, base.gamma, r)};
}

bool pseudonym_valid(const PublicParams& pub, const Domain::Pseudonym& pn) {
  const curve::CurveCtx& ctx = *pub.ctx;
  // ê(TP, Ppub) == ê(Γ, P)  ⟺  ê(TP, Ppub)·ê(−Γ, P) == 1: one multi-pairing
  // (shared squaring chain and final exponentiation) instead of two.
  const curve::PairingTerm terms[] = {
      {pn.tp, pub.p_pub},
      {curve::negate(pn.gamma), curve::generator(ctx)},
  };
  return curve::pairing_product(ctx, terms).is_one();
}

Bytes shared_key_kdf(const curve::Gt& g) {
  return hash::hkdf(g.to_bytes(), {}, to_bytes("hcpp-shared-key"), 32);
}

Bytes shared_key_with_id(const curve::CurveCtx& ctx,
                         const curve::Point& my_private,
                         std::string_view peer_id) {
  curve::Point peer_pk = Domain::public_key(ctx, peer_id);
  return shared_key_kdf(curve::pairing(ctx, my_private, peer_pk));
}

Bytes shared_key_with_point(const curve::CurveCtx& ctx,
                            const curve::Point& my_private,
                            const curve::Point& peer_public) {
  return shared_key_kdf(curve::pairing(ctx, my_private, peer_public));
}

SharedKeyDeriver::SharedKeyDeriver(const curve::CurveCtx& ctx,
                                   const curve::Point& my_private)
    : ctx_(&ctx), pre_(ctx, my_private) {}

Bytes SharedKeyDeriver::with_id(std::string_view peer_id) const {
  return with_point(Domain::public_key(*ctx_, peer_id));
}

Bytes SharedKeyDeriver::with_point(const curve::Point& peer_public) const {
  return shared_key_kdf(pre_.pairing_with(peer_public));
}

}  // namespace hcpp::ibc
