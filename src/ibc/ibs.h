// Hess identity-based signatures ([28], SAC 2002) — the paper's IBS used by
// physicians to authenticate to the A-server and by the A-server to sign
// passcode deliveries and accountability traces.
//
//   Sign (private key Γ = s0·H1(ID)):
//     k ∈R Zq*,  u = ê(H1(ID), P)^k,  v = H3(m ‖ u),  W = v·Γ + k·H1(ID)
//     signature = (v, W)
//   Verify:
//     u' = ê(W, P) · ê(H1(ID), Ppub)^{−v},  accept iff H3(m ‖ u') == v
#pragma once

#include "src/ibc/domain.h"

namespace hcpp::par {
class ThreadPool;
}

namespace hcpp::ibc {

struct IbsSignature {
  mp::U512 v;      // scalar challenge
  curve::Point w;  // response point

  [[nodiscard]] Bytes to_bytes() const;
  static IbsSignature from_bytes(const curve::CurveCtx& ctx, BytesView b);
  [[nodiscard]] size_t size() const;
};

IbsSignature ibs_sign(const curve::CurveCtx& ctx,
                      const curve::Point& private_key, std::string_view id,
                      BytesView message, RandomSource& rng);

/// The challenge hash H3(m ‖ u) both sign and verify compute. Exposed so the
/// cross-request coalescer (core::PairingCoalescer) can finish verifications
/// whose pairing work was batched; must stay in lock-step with ibs_sign.
mp::U512 ibs_challenge(const curve::CurveCtx& ctx, BytesView message,
                       const curve::Gt& u);

bool ibs_verify(const PublicParams& pub, std::string_view id,
                BytesView message, const IbsSignature& sig);

/// Precomputed verification context for a fixed signer identity: hoists
/// ê(H1(ID), Ppub) so each verification costs a single pairing — the
/// "two pairings with precomputation" budget §V.B.3 assigns to the P-device
/// (one here plus one IBE decryption).
class IbsVerifier {
 public:
  IbsVerifier(const PublicParams& pub, std::string_view id);

  [[nodiscard]] bool verify(BytesView message, const IbsSignature& sig) const;

 private:
  const curve::CurveCtx* ctx_;
  std::string id_;
  curve::Point q_id_;
  curve::Gt g_id_;  // ê(H1(ID), Ppub)
};

/// One signature to check in a batch.
struct IbsBatchItem {
  std::string id;
  Bytes message;
  IbsSignature sig;
};

/// Batch verification: result[i] == ibs_verify(pub, items[i]...). Hess IBS
/// cannot be merged into one product check (each u' feeds its own H3), so
/// the batch wins come from structure instead: identities appearing more
/// than once get ê(H1(ID), Ppub) computed exactly once (IbsVerifier-style),
/// singletons fold their two pairings into one pairing_product (shared
/// squaring chain, one final exponentiation), and the per-item checks spread
/// across the pool — every input is const, so no locks.
std::vector<uint8_t> ibs_verify_batch(const PublicParams& pub,
                                      std::span<const IbsBatchItem> items,
                                      par::ThreadPool* pool = nullptr);

}  // namespace hcpp::ibc
