// Boneh–Franklin identity-based encryption (§II.A / [19]), hybrid form:
// BasicIdent as a KEM (U = rP, K = KDF(ê(Q_id, Ppub)^r)) wrapping the data in
// the encrypt-then-MAC AEAD. Used for
//   * the A-server delivering the one-time passcode to the P-device
//     (IBE_{TPp} in §IV.E — the pseudonym-point variant), and
//   * the P-device encrypting MHI under the role identity IDr.
#pragma once

#include "src/cipher/aead.h"
#include "src/ibc/domain.h"

namespace hcpp::ibc {

struct IbeCiphertext {
  curve::Point u;  // r·P
  Bytes box;       // AEAD(K; plaintext)

  [[nodiscard]] Bytes to_bytes() const;
  static IbeCiphertext from_bytes(const curve::CurveCtx& ctx, BytesView b);
  /// Wire size in bytes (for the communication benches).
  [[nodiscard]] size_t size() const;
};

/// Encrypts to a named identity (recipient key Γ_id = s0·H1(id)).
IbeCiphertext ibe_encrypt(const PublicParams& pub, std::string_view id,
                          BytesView plaintext, RandomSource& rng);

/// Encrypts to a pseudonym point TP (recipient key Γ = s0·TP).
IbeCiphertext ibe_encrypt_to_point(const PublicParams& pub,
                                   const curve::Point& recipient,
                                   BytesView plaintext, RandomSource& rng);

/// Decrypts with the recipient's extracted private key; throws
/// cipher::AuthError on tampering / wrong key.
Bytes ibe_decrypt(const curve::CurveCtx& ctx, const curve::Point& private_key,
                  const IbeCiphertext& ct);

// ---- Precomputation (§V.B.3) ------------------------------------------------
// "IBE and PEKS encrypted MHI files are for future emergency uses and can be
// pre-computed (offline). ... With pre-computation, P-device computes two
// pairings for both operations." The pairing ê(Q_id, Ppub) depends only on
// the recipient, so a sender addressing the same identity repeatedly (the
// P-device encrypting daily MHI, the A-server pushing passcodes) can hoist
// it out of every encryption. Benchmark E2 quantifies the saving.

class IbePrecomputed {
 public:
  /// Precomputes ê(H1(id), Ppub) for a named identity.
  IbePrecomputed(const PublicParams& pub, std::string_view id);
  /// Precomputes ê(TP, Ppub) for a pseudonym point.
  IbePrecomputed(const PublicParams& pub, const curve::Point& recipient);

  /// Pairing-free encryption (one scalar mult + one Gt exponentiation).
  [[nodiscard]] IbeCiphertext encrypt(BytesView plaintext,
                                      RandomSource& rng) const;

 private:
  const curve::CurveCtx* ctx_;
  curve::Gt g_id_;  // ê(Q_recipient, Ppub)
};

/// Fixed-key decryption context: precomputes the Miller-loop lines of the
/// recipient's private key Γ, so each decryption's pairing ê(Γ, U) costs
/// only line evaluations. Pays off from the second ciphertext on — the MHI
/// retrieval path decrypts whole batches under one role key.
class IbeDecryptor {
 public:
  IbeDecryptor(const curve::CurveCtx& ctx, const curve::Point& private_key);

  /// Same result as ibe_decrypt; throws cipher::AuthError on tampering.
  [[nodiscard]] Bytes decrypt(const IbeCiphertext& ct) const;

 private:
  curve::PairingPrecomp pre_;
};

// ---- FullIdent (CCA security via Fujisaki–Okamoto) ---------------------------
// BasicIdent is only CPA-secure; [19]'s FullIdent applies the FO transform:
// the encryption randomness is derived as r = H4(σ ‖ m), and the decryptor
// recomputes and checks U == r·P, rejecting any mauled ciphertext.

struct IbeCcaCiphertext {
  curve::Point u;  // r·P with r = H4(σ ‖ m)
  Bytes v;         // σ ⊕ KDF(g^r)
  Bytes w;         // m ⊕ KDF(σ)

  [[nodiscard]] Bytes to_bytes() const;
  static IbeCcaCiphertext from_bytes(const curve::CurveCtx& ctx, BytesView b);
  [[nodiscard]] size_t size() const;
};

IbeCcaCiphertext ibe_encrypt_cca(const PublicParams& pub, std::string_view id,
                                 BytesView plaintext, RandomSource& rng);

/// Throws cipher::AuthError when the FO consistency check fails.
Bytes ibe_decrypt_cca(const curve::CurveCtx& ctx,
                      const ibc::PublicParams& pub,
                      const curve::Point& private_key,
                      const IbeCcaCiphertext& ct);

}  // namespace hcpp::ibc
