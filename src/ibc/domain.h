// Identity-based domain (§IV.A system setup). One Domain instance is the
// PKG role of a state A-server: it owns the master secret s0, publishes
// Ppub = s0·P, and extracts private keys Γ_ID = s0·H1(ID) for the
// physicians, S-servers and hospitals in its state.
//
// Also implements the pseudonym machinery of the private-storage protocol:
// the hospital issues a temporary key pair (TP, Γ = s0·TP) and the patient
// re-randomizes it into unlinkable pairs (r·TP, r·Γ), which still satisfy
// Γ' = s0·TP' and therefore still derive correct shared keys with any
// domain member (ν = ê(Γp, H1(ID_S)) = ê(TPp, Γ_S)).
#pragma once

#include <string_view>

#include "src/curve/pairing.h"
#include "src/curve/params.h"

namespace hcpp::ibc {

/// Everything a protocol party needs to know about a domain.
struct PublicParams {
  const curve::CurveCtx* ctx = nullptr;
  curve::Point p_pub;  // s0 · P
};

class Domain {
 public:
  /// Fresh domain with a random master secret.
  Domain(const curve::CurveCtx& ctx, RandomSource& rng);
  /// Deterministic domain (tests).
  Domain(const curve::CurveCtx& ctx, const mp::U512& master_secret);

  [[nodiscard]] const PublicParams& pub() const noexcept { return pub_; }
  [[nodiscard]] const curve::CurveCtx& ctx() const noexcept { return *ctx_; }

  /// Γ_ID = s0 · H1(ID).
  [[nodiscard]] curve::Point extract(std::string_view id) const;

  /// PK_ID = H1(ID) — public, needs no master secret.
  static curve::Point public_key(const curve::CurveCtx& ctx,
                                 std::string_view id);

  /// Issues a temporary pseudonymous key pair for a patient: random TP with
  /// Γ = s0·TP (the hospital-assisted step of §IV.B).
  struct Pseudonym {
    curve::Point tp;     // public half, TPp
    curve::Point gamma;  // private half, Γp
  };
  [[nodiscard]] Pseudonym issue_pseudonym(RandomSource& rng) const;

 private:
  const curve::CurveCtx* ctx_;
  mp::U512 s0_;
  PublicParams pub_;
};

/// Patient-side pseudonym self-generation ([25]): (r·TP, r·Γ) is a fresh,
/// unlinkable, still-valid pair.
Domain::Pseudonym rerandomize_pseudonym(const curve::CurveCtx& ctx,
                                        const Domain::Pseudonym& base,
                                        RandomSource& rng);

/// Validity check ê(TP, Ppub) == ê(Γ, P) — anyone can run it.
bool pseudonym_valid(const PublicParams& pub, const Domain::Pseudonym& pn);

/// The KDF every shared-key derivation applies to its pairing value:
/// K = HKDF(g.to_bytes(), "hcpp-shared-key", 32). Exposed so the
/// cross-request coalescer (core::PairingCoalescer) can batch the pairing
/// evaluations and still produce byte-identical keys.
Bytes shared_key_kdf(const curve::Gt& g);

/// Non-interactive shared key (the paper's ν, ϖ and ρ), named-identity side:
/// K = KDF(ê(my_private, H1(peer_id))). Symmetric pairing makes both
/// directions agree.
Bytes shared_key_with_id(const curve::CurveCtx& ctx,
                         const curve::Point& my_private,
                         std::string_view peer_id);

/// Shared key against a pseudonym: K = KDF(ê(my_private, TP_peer)). The
/// pseudonym holder computes the same value via shared_key_with_id using Γp.
Bytes shared_key_with_point(const curve::CurveCtx& ctx,
                            const curve::Point& my_private,
                            const curve::Point& peer_public);

/// Fixed-key NIKE context: precomputes the Miller-loop lines of my_private
/// once, so every subsequent ν/ϖ/ρ derivation against a fresh peer pays only
/// line evaluations. This is the per-request path of the S- and A-servers,
/// which derive ν = ê(Γ_S, TPp) for every presented pseudonym.
class SharedKeyDeriver {
 public:
  SharedKeyDeriver() = default;
  SharedKeyDeriver(const curve::CurveCtx& ctx,
                   const curve::Point& my_private);

  /// K = KDF(ê(my_private, H1(peer_id))). Same value as shared_key_with_id.
  [[nodiscard]] Bytes with_id(std::string_view peer_id) const;
  /// K = KDF(ê(my_private, peer)). Same value as shared_key_with_point.
  [[nodiscard]] Bytes with_point(const curve::Point& peer_public) const;

  /// The cached Miller lines of my_private — the coalescer evaluates these
  /// directly (miller_with) so several derivations can share one batched
  /// final exponentiation. False for a default-constructed deriver.
  [[nodiscard]] bool ready() const noexcept { return ctx_ != nullptr; }
  [[nodiscard]] const curve::PairingPrecomp& precomp() const noexcept {
    return pre_;
  }
  [[nodiscard]] const curve::CurveCtx* ctx() const noexcept { return ctx_; }

 private:
  const curve::CurveCtx* ctx_ = nullptr;
  curve::PairingPrecomp pre_;
};

}  // namespace hcpp::ibc
