// HMAC-SHA256 (RFC 2104). This is the paper's HMAC_ν message authenticator
// and the round function for the HMAC-based PRFs/PRPs.
#pragma once

#include <initializer_list>

#include "src/common/bytes.h"
#include "src/hash/sha256.h"

namespace hcpp::hash {

/// Precomputed HMAC-SHA256 key schedule: the inner/outer SHA-256 midstates
/// after absorbing ipad/opad. Construction pays the two pad compressions
/// once; every eval() then costs two block copies instead — for the short
/// messages the PRF/PRP stack feeds (≤ 55 bytes), that halves the number of
/// SHA-256 compressions per call. Immutable after construction, so one
/// instance may be shared across threads.
class HmacKey {
 public:
  HmacKey() = default;
  explicit HmacKey(BytesView key);

  /// Full 32-byte tag.
  [[nodiscard]] Bytes eval(BytesView message) const;
  /// Truncated tag (`out_len` <= 32).
  [[nodiscard]] Bytes eval_trunc(BytesView message, size_t out_len) const;
  [[nodiscard]] Digest eval_digest(BytesView message) const;
  /// Tag over the concatenation of `parts`, streamed into the compression
  /// function — identical to eval() on the joined buffer, without building
  /// it. For the AEAD's framed mac input (len ‖ aad ‖ nonce ‖ ciphertext).
  [[nodiscard]] Digest eval_digest_parts(
      std::initializer_list<BytesView> parts) const;

 private:
  Sha256 inner_;  // state after update(ipad)
  Sha256 outer_;  // state after update(opad)
};

/// Full 32-byte HMAC-SHA256 tag.
Bytes hmac_sha256(BytesView key, BytesView message);

/// Truncated tag (`out_len` <= 32), as used by the PRF f in the SSE index.
Bytes hmac_sha256_trunc(BytesView key, BytesView message, size_t out_len);

/// Constant-time verification.
bool hmac_verify(BytesView key, BytesView message, BytesView tag);

}  // namespace hcpp::hash
