// HMAC-SHA256 (RFC 2104). This is the paper's HMAC_ν message authenticator
// and the round function for the HMAC-based PRFs/PRPs.
#pragma once

#include "src/common/bytes.h"
#include "src/hash/sha256.h"

namespace hcpp::hash {

/// Full 32-byte HMAC-SHA256 tag.
Bytes hmac_sha256(BytesView key, BytesView message);

/// Truncated tag (`out_len` <= 32), as used by the PRF f in the SSE index.
Bytes hmac_sha256_trunc(BytesView key, BytesView message, size_t out_len);

/// Constant-time verification.
bool hmac_verify(BytesView key, BytesView message, BytesView tag);

}  // namespace hcpp::hash
