#include "src/hash/hkdf.h"

#include <stdexcept>

#include "src/hash/hmac.h"
#include "src/hash/sha256.h"

namespace hcpp::hash {

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  if (salt.empty()) {
    Bytes zero_salt(kSha256DigestSize, 0);
    return hmac_sha256(zero_salt, ikm);
  }
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, size_t out_len) {
  if (out_len > 255 * kSha256DigestSize) {
    throw std::invalid_argument("hkdf_expand: output too long");
  }
  Bytes out;
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block = t;
    append(block, info);
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    append(out, t);
  }
  out.resize(out_len);
  return out;
}

Bytes hkdf(BytesView ikm, BytesView salt, BytesView info, size_t out_len) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, out_len);
}

}  // namespace hcpp::hash
