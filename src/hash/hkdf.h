// HKDF-SHA256 (RFC 5869): the key-derivation function used to expand pairing
// values (G2 elements) and shared secrets into symmetric keys.
#pragma once

#include "src/common/bytes.h"

namespace hcpp::hash {

Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// `out_len` <= 255 * 32.
Bytes hkdf_expand(BytesView prk, BytesView info, size_t out_len);

/// Extract-then-expand convenience.
Bytes hkdf(BytesView ikm, BytesView salt, BytesView info, size_t out_len);

}  // namespace hcpp::hash
