// SHA-256 (FIPS 180-4), implemented from scratch. Streaming and one-shot
// interfaces; the one-shot form is what most of the crypto stack uses.
#pragma once

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace hcpp::hash {

inline constexpr size_t kSha256DigestSize = 32;
inline constexpr size_t kSha256BlockSize = 64;

using Digest = std::array<uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(BytesView data) noexcept;
  /// Finalizes and returns the digest; the object must be reset() before
  /// further use.
  Digest finish() noexcept;

 private:
  void compress(const uint8_t* block) noexcept;

  std::array<uint32_t, 8> state_{};
  uint64_t total_len_ = 0;
  std::array<uint8_t, kSha256BlockSize> buffer_{};
  size_t buffer_len_ = 0;
};

/// One-shot digest.
Digest sha256(BytesView data) noexcept;
/// One-shot digest as a Bytes buffer (convenient for concat/xor pipelines).
Bytes sha256_bytes(BytesView data);

}  // namespace hcpp::hash
