#include "src/hash/hmac.h"

#include <stdexcept>

namespace hcpp::hash {

Bytes hmac_sha256(BytesView key, BytesView message) {
  Bytes k(kSha256BlockSize, 0);
  if (key.size() > kSha256BlockSize) {
    Digest d = sha256(key);
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  Bytes ipad(kSha256BlockSize), opad(kSha256BlockSize);
  for (size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  Digest inner_d = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(BytesView(inner_d.data(), inner_d.size()));
  Digest outer_d = outer.finish();
  return Bytes(outer_d.begin(), outer_d.end());
}

Bytes hmac_sha256_trunc(BytesView key, BytesView message, size_t out_len) {
  if (out_len > kSha256DigestSize) {
    throw std::invalid_argument("hmac_sha256_trunc: out_len > 32");
  }
  Bytes tag = hmac_sha256(key, message);
  tag.resize(out_len);
  return tag;
}

bool hmac_verify(BytesView key, BytesView message, BytesView tag) {
  Bytes expected = hmac_sha256(key, message);
  expected.resize(std::min(expected.size(), tag.size()));
  return tag.size() == expected.size() && ct_equal(expected, tag);
}

}  // namespace hcpp::hash
