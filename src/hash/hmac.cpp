#include "src/hash/hmac.h"

#include <stdexcept>

namespace hcpp::hash {

HmacKey::HmacKey(BytesView key) {
  Bytes k(kSha256BlockSize, 0);
  if (key.size() > kSha256BlockSize) {
    Digest d = sha256(key);
    std::copy(d.begin(), d.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  Bytes ipad(kSha256BlockSize), opad(kSha256BlockSize);
  for (size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  inner_.update(ipad);
  outer_.update(opad);
}

Digest HmacKey::eval_digest(BytesView message) const {
  Sha256 in = inner_;  // midstate copy — the ipad block is already absorbed
  in.update(message);
  Digest inner_d = in.finish();
  Sha256 out = outer_;
  out.update(BytesView(inner_d.data(), inner_d.size()));
  return out.finish();
}

Digest HmacKey::eval_digest_parts(
    std::initializer_list<BytesView> parts) const {
  Sha256 in = inner_;
  for (BytesView part : parts) in.update(part);
  Digest inner_d = in.finish();
  Sha256 out = outer_;
  out.update(BytesView(inner_d.data(), inner_d.size()));
  return out.finish();
}

Bytes HmacKey::eval(BytesView message) const {
  Digest d = eval_digest(message);
  return Bytes(d.begin(), d.end());
}

Bytes HmacKey::eval_trunc(BytesView message, size_t out_len) const {
  if (out_len > kSha256DigestSize) {
    throw std::invalid_argument("HmacKey::eval_trunc: out_len > 32");
  }
  Digest d = eval_digest(message);
  return Bytes(d.begin(), d.begin() + static_cast<ptrdiff_t>(out_len));
}

Bytes hmac_sha256(BytesView key, BytesView message) {
  return HmacKey(key).eval(message);
}

Bytes hmac_sha256_trunc(BytesView key, BytesView message, size_t out_len) {
  if (out_len > kSha256DigestSize) {
    throw std::invalid_argument("hmac_sha256_trunc: out_len > 32");
  }
  return HmacKey(key).eval_trunc(message, out_len);
}

bool hmac_verify(BytesView key, BytesView message, BytesView tag) {
  Bytes expected = hmac_sha256(key, message);
  expected.resize(std::min(expected.size(), tag.size()));
  return tag.size() == expected.size() && ct_equal(expected, tag);
}

}  // namespace hcpp::hash
