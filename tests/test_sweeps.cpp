// Parameterized end-to-end sweeps: the full protocol stack exercised across
// collection shapes, padding factors and alias counts — the property-style
// coverage that single-point tests miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "src/core/setup.h"

namespace hcpp::core {
namespace {

// ---- (n_files, keywords_per_file) protocol sweep ---------------------------

using Shape = std::tuple<size_t, size_t>;

class ProtocolSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(ProtocolSweep, FullLifecycleHoldsForEveryShape) {
  auto [n_files, kw_per_file] = GetParam();
  DeploymentConfig cfg;
  cfg.n_phi_files = n_files;
  cfg.keywords_per_file = kw_per_file;
  cfg.seed = 1000 + n_files * 10 + kw_per_file;
  Deployment d = Deployment::create(cfg);

  // Every keyword retrieves exactly its postings, for patient and family.
  for (const auto& [kw, expected] : d.patient->keyword_index().entries) {
    std::vector<std::string> kws = {kw};
    EXPECT_EQ(d.patient->retrieve(*d.sserver, kws).size(), expected.size())
        << "patient, kw=" << kw;
    EXPECT_EQ(d.family->emergency_retrieve(*d.sserver, kws).size(),
              expected.size())
        << "family, kw=" << kw;
  }
  // The union of all retrievals covers the collection exactly once.
  std::set<sse::FileId> seen;
  for (const auto& [kw, expected] : d.patient->keyword_index().entries) {
    std::vector<std::string> kws = {kw};
    for (const sse::PlainFile& f : d.patient->retrieve(*d.sserver, kws)) {
      seen.insert(f.id);
    }
  }
  EXPECT_EQ(seen.size(), d.patient->files().size());
  // Revocation closes the family path for every shape.
  ASSERT_TRUE(d.patient->revoke_member(*d.sserver, kFamilySlot));
  std::vector<std::string> first = {d.all_keywords().front()};
  EXPECT_TRUE(d.family->emergency_retrieve(*d.sserver, first).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ProtocolSweep,
    ::testing::Values(Shape{1, 1}, Shape{2, 1}, Shape{6, 2}, Shape{12, 4},
                      Shape{24, 6}, Shape{48, 3}));

// ---- padding-factor sweep ---------------------------------------------------

class PaddingSweep : public ::testing::TestWithParam<double> {};

TEST_P(PaddingSweep, SearchExactUnderAnyPadding) {
  cipher::Drbg rng(to_bytes("pad-sweep"));
  auto files = generate_phi_collection(20, rng);
  sse::Keys keys = sse::Keys::generate(rng);
  sse::SecureIndex si = sse::build_index(files, keys, rng, GetParam());
  std::map<std::string, std::set<sse::FileId>> truth;
  for (const auto& f : files) {
    for (const auto& kw : f.keywords) truth[kw].insert(f.id);
  }
  for (const auto& [kw, expected] : truth) {
    auto got = sse::search(si, sse::make_trapdoor(keys, kw));
    EXPECT_EQ(std::set<sse::FileId>(got.begin(), got.end()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, PaddingSweep,
                         ::testing::Values(1.0, 1.1, 1.5, 2.0, 4.0));

// ---- alias-count sweep ------------------------------------------------------

class AliasSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(AliasSweep, RetrievalStableAcrossManyRounds) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 8;
  cfg.seed = 2000 + GetParam();
  cfg.store_phi = false;
  cfg.assign_privileges = false;
  Deployment d = Deployment::create(cfg);
  d.patient->set_keyword_aliases(GetParam());
  ASSERT_TRUE(d.patient->store_phi(*d.sserver));
  const auto& [kw, expected] = *d.patient->keyword_index().entries.begin();
  for (size_t round = 0; round < 2 * GetParam() + 1; ++round) {
    std::vector<std::string> kws = {kw};
    EXPECT_EQ(d.patient->retrieve(*d.sserver, kws).size(), expected.size())
        << "aliases=" << GetParam() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, AliasSweep, ::testing::Values(1, 2, 3, 7));

// ---- MHI window-size sweep --------------------------------------------------

class MhiSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(MhiSweep, StoreRetrieveAcrossWindowSizes) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 2;
  cfg.seed = 3000 + GetParam();
  Deployment d = Deployment::create(cfg);
  cipher::Drbg rng(to_bytes("mhi-sweep"));
  d.pdevice->collect_mhi(
      generate_mhi_window("2011-04-12", GetParam(), rng));
  std::vector<std::string> extra;
  ASSERT_TRUE(
      d.pdevice->store_mhi(*d.aserver, *d.sserver, "role-x", extra));
  auto key = d.on_duty->request_role_key(*d.aserver, "role-x");
  ASSERT_TRUE(key.has_value());
  auto got =
      d.on_duty->retrieve_mhi(*d.sserver, "role-x", *key, "day:2011-04-12");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].samples.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(WindowSizes, MhiSweep,
                         ::testing::Values(0, 1, 16, 300));

}  // namespace
}  // namespace hcpp::core
