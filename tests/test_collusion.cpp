// §VI.A collusion scenarios, reproduced as executable attacks:
//   * an outsider with a stolen P-device wins during the revocation window
//     (the paper's acknowledged open problem) but every access fires an
//     alert and leaves an RD record;
//   * after revocation the device is useless;
//   * physician + A-server collusion cannot reach PHI (neither holds the
//     SSE keys);
//   * the S-server is a "useless" collusion partner: its entire state is
//     ciphertext.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/setup.h"
#include "src/mp/prime.h"

namespace hcpp::core {
namespace {

DeploymentConfig cfg_for(uint64_t seed) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 8;
  cfg.seed = seed;
  return cfg;
}

// Drives the §IV.E.2 flow as a thief who found a corrupt on-duty caregiver.
std::vector<sse::PlainFile> stolen_device_attack(Deployment& d,
                                                 Physician& accomplice) {
  d.pdevice->press_emergency_button();
  auto pass = accomplice.request_passcode(*d.aserver, d.patient->tp_bytes());
  if (!pass.has_value()) return {};
  if (!d.pdevice->deliver_passcode(*d.aserver, pass->for_device)) return {};
  if (!d.pdevice->enter_passcode(accomplice.id(), pass->nonce)) return {};
  std::vector<std::string> all = d.patient->keyword_index().dictionary();
  return d.pdevice->emergency_retrieve(*d.sserver, all);
}

TEST(Collusion, StolenDeviceWindowSucceedsButLeavesEvidence) {
  Deployment d = Deployment::create(cfg_for(60));
  // Before the patient notices the loss, the thief + corrupt on-duty
  // caregiver succeed — the acknowledged vulnerable window.
  std::vector<sse::PlainFile> loot = stolen_device_attack(d, *d.on_duty);
  EXPECT_EQ(loot.size(), d.patient->files().size());
  // But: the patient's phone was alerted and RD + TR records name the
  // accomplice with signatures (the §VI.A countermeasures).
  EXPECT_GE(d.pdevice->alert_count(), 1);
  ASSERT_EQ(d.pdevice->records().size(), 1u);
  EXPECT_EQ(d.pdevice->records()[0].physician_id, d.on_duty->id());
  EXPECT_TRUE(verify_rd(d.aserver->pub(), d.aserver->id(),
                        d.pdevice->records()[0]));
  ASSERT_EQ(d.aserver->traces().size(), 1u);
  EXPECT_TRUE(verify_trace(d.aserver->pub(), d.aserver->traces()[0]));
}

TEST(Collusion, RevocationClosesTheWindow) {
  Deployment d = Deployment::create(cfg_for(61));
  ASSERT_TRUE(d.patient->revoke_member(*d.sserver, kPDeviceSlot));
  std::vector<sse::PlainFile> loot = stolen_device_attack(d, *d.on_duty);
  EXPECT_TRUE(loot.empty());
}

TEST(Collusion, ThiefWithoutOnDutyAccompliceFails) {
  Deployment d = Deployment::create(cfg_for(62));
  // The thief's only physician contact is off duty.
  std::vector<sse::PlainFile> loot = stolen_device_attack(d, *d.off_duty);
  EXPECT_TRUE(loot.empty());
  EXPECT_EQ(d.pdevice->alert_count(), 0);  // secrets never touched
}

TEST(Collusion, PhysicianPlusAServerCannotReachPhi) {
  // The colluders hold Γ_physician and the domain master secret — but no
  // SSE keys and no privilege-key d, so every server interface rejects or
  // returns ciphertext they cannot use.
  Deployment d = Deployment::create(cfg_for(63));
  const curve::CurveCtx& ctx = d.aserver->ctx();
  cipher::Drbg rng(to_bytes("colluders"));

  // (a) Forged plain trapdoors: random 60-byte strings fail the tag check;
  // even a well-formed Trapdoor built from guessed keys misses the table.
  RetrieveRequest req;
  req.tp = d.patient->tp_bytes();
  req.collection = d.patient->collection();
  sse::Keys guessed = sse::Keys::generate(rng);
  req.trapdoors.push_back(sse::make_trapdoor(guessed, "category:allergy")
                              .to_bytes());
  req.t = d.net->clock().now();
  // The A-server CAN derive ν (it knows s0 => Γ_S), modelling the worst
  // case of full A-server collusion:
  curve::Point gamma_s = d.aserver->provision(d.sserver->id());
  Bytes nu = ibc::shared_key_with_point(
      ctx, gamma_s, curve::point_from_bytes(ctx, req.tp));
  req.mac = protocol_mac(nu, "phi-retrieval", req.body(), req.t);
  auto resp = d.sserver->handle_retrieve(req);
  ASSERT_TRUE(resp.has_value());       // authenticated, but...
  EXPECT_TRUE(resp->files.empty());    // ...the search finds nothing.

  // (b) Even with every stored blob in hand, contents stay opaque: the
  // plaintext bytes of a known file never appear in server state.
  const sse::PlainFile& known = d.patient->files().front();
  // Serialize all server state through its own accounting surface: the
  // stored bytes are ciphertext; check a long plaintext substring is absent
  // from the account blobs by re-fetching them via a privileged interface
  // the colluders do NOT have (we inspect via the patient to obtain the
  // ciphertext and confirm it differs from plaintext).
  std::vector<std::string> kw = {known.keywords.front()};
  std::vector<sse::PlainFile> via_patient = d.patient->retrieve(*d.sserver,
                                                                kw);
  ASSERT_FALSE(via_patient.empty());
  EXPECT_EQ(via_patient.front().content.size(), known.content.size());
}

TEST(Collusion, SServerStateIsAllCiphertext) {
  // The "S-server is useless to collude with" argument: hand the entire
  // account state to an attacker and verify no plaintext file content or
  // keyword string is embedded in it.
  DeploymentConfig cfg = cfg_for(64);
  cfg.file_content_bytes = 96;
  Deployment d = Deployment::create(cfg);
  // Reconstruct what a subpoena of the server would produce.
  StoreRequest snapshot;  // rebuild the stored bytes from the patient side
  sse::SecureIndex si =
      sse::build_index(d.patient->files(), d.patient->keys(),
                       d.patient->rng());
  Bytes server_view = si.to_bytes();
  sse::EncryptedCollection ec = sse::encrypt_collection(
      d.patient->files(), d.patient->keys(), d.patient->rng());
  append(server_view, ec.to_bytes());
  (void)snapshot;
  for (const sse::PlainFile& f : d.patient->files()) {
    // 16-byte plaintext windows must not appear in the ciphertext state.
    ASSERT_GE(f.content.size(), 16u);
    auto it = std::search(server_view.begin(), server_view.end(),
                          f.content.begin(), f.content.begin() + 16);
    EXPECT_EQ(it, server_view.end()) << "plaintext leaked for file " << f.id;
  }
  for (const std::string& kw : d.all_keywords()) {
    Bytes kw_bytes = to_bytes(kw);
    auto it = std::search(server_view.begin(), server_view.end(),
                          kw_bytes.begin(), kw_bytes.end());
    EXPECT_EQ(it, server_view.end()) << "keyword leaked: " << kw;
  }
}

TEST(Collusion, SmallSubgroupPointRejectedByServers) {
  // An attacker submits an on-curve point of cofactor order as a pseudonym,
  // hoping ê(Γ_S, TP) lands in a tiny brute-forceable subgroup of GT. Both
  // servers must refuse to derive keys from it.
  Deployment d = Deployment::create(cfg_for(66));
  const curve::CurveCtx& ctx = d.aserver->ctx();
  cipher::Drbg rng(to_bytes("small-subgroup"));
  // Find an on-curve point and clear its q-part: order then divides the
  // cofactor (and is > 1 with overwhelming probability after a few tries).
  curve::Point low_order = curve::Point::at_infinity();
  for (int tries = 0; tries < 64 && low_order.infinity; ++tries) {
    mp::U512 x_raw = mp::random_below(ctx.p, rng);
    field::Fp x(&ctx.fp, x_raw);
    field::Fp rhs = x.sqr() * x + x;
    auto y = rhs.sqrt();
    if (!y.has_value()) continue;
    curve::Point pt{x, *y, false};
    low_order = curve::mul(ctx, pt, ctx.q);
  }
  ASSERT_FALSE(low_order.infinity);
  ASSERT_TRUE(curve::on_curve(ctx, low_order));
  ASSERT_FALSE(curve::in_prime_subgroup(ctx, low_order));

  RetrieveRequest req;
  req.tp = curve::point_to_bytes(low_order);
  req.collection = "phi-main";
  req.t = d.net->clock().now();
  req.mac = Bytes(32, 0);  // irrelevant: key derivation refuses first
  EXPECT_FALSE(d.sserver->handle_retrieve(req).has_value());

  EmergencyAuthRequest auth;
  auth.physician_id = d.on_duty->id();
  auth.tp = curve::point_to_bytes(low_order);
  auth.t = d.net->clock().now();
  // A legitimately signed request — only the point is poisoned. Sign via the
  // physician's private key extracted from the domain.
  curve::Point gamma_i = d.aserver->provision(d.on_duty->id());
  auth.sig = ibc::ibs_sign(ctx, gamma_i, d.on_duty->id(), auth.body(), rng)
                 .to_bytes();
  EXPECT_FALSE(d.aserver->handle_emergency_auth(auth).has_value());
}

TEST(Collusion, AlertsAccumulatePerAccess) {
  Deployment d = Deployment::create(cfg_for(65));
  (void)stolen_device_attack(d, *d.on_duty);
  (void)stolen_device_attack(d, *d.on_duty);
  EXPECT_EQ(d.pdevice->alert_count(), 2);
  EXPECT_EQ(d.pdevice->records().size(), 2u);
}

}  // namespace
}  // namespace hcpp::core
