// Known-answer and property tests for ChaCha20, AES-128-CTR, the
// encrypt-then-MAC AEAD, and the ChaCha20 DRBG.
#include <gtest/gtest.h>

#include "src/cipher/aead.h"
#include "src/cipher/aes.h"
#include "src/cipher/chacha20.h"
#include "src/cipher/drbg.h"

namespace hcpp::cipher {
namespace {

// RFC 8439 §2.4.2 test vector.
TEST(ChaCha20, Rfc8439Vector) {
  Bytes key = hex_decode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = hex_decode("000000000000004a00000000");
  Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  Bytes ct = chacha20(key, nonce, 1, plaintext);
  EXPECT_EQ(hex_encode(BytesView(ct).subspan(0, 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Stream cipher: applying again decrypts.
  EXPECT_EQ(chacha20(key, nonce, 1, ct), plaintext);
}

TEST(ChaCha20, CounterContinuity) {
  Bytes key(32, 7);
  Bytes nonce(12, 3);
  Bytes data(150, 0);
  Bytes whole = chacha20(key, nonce, 0, data);
  // Encrypting the second 64-byte block separately with counter 1 matches.
  Bytes second(data.begin() + 64, data.begin() + 128);
  Bytes part = chacha20(key, nonce, 1, second);
  EXPECT_TRUE(std::equal(part.begin(), part.end(), whole.begin() + 64));
}

TEST(ChaCha20, RejectsBadKeyOrNonce) {
  EXPECT_THROW(chacha20(Bytes(31, 0), Bytes(12, 0), 0, Bytes{}),
               std::invalid_argument);
  EXPECT_THROW(chacha20(Bytes(32, 0), Bytes(11, 0), 0, Bytes{}),
               std::invalid_argument);
}

// FIPS 197 Appendix C.1 (AES-128).
TEST(Aes128, Fips197Vector) {
  Aes128 aes(hex_decode("000102030405060708090a0b0c0d0e0f"));
  Bytes pt = hex_decode("00112233445566778899aabbccddeeff");
  uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_EQ(hex_encode(BytesView(out, 16)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, CtrRoundTrip) {
  Aes128 aes(Bytes(16, 0x42));
  Bytes nonce(12, 1);
  Bytes msg = to_bytes("counter mode handles arbitrary lengths, even 37b");
  Bytes ct = aes.ctr(nonce, 0, msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(aes.ctr(nonce, 0, ct), msg);
}

TEST(Aes128, RejectsBadKey) {
  EXPECT_THROW(Aes128(Bytes(15, 0)), std::invalid_argument);
}

TEST(Aead, RoundTrip) {
  Drbg rng(to_bytes("aead"));
  Bytes key = rng.bytes(32);
  Bytes msg = to_bytes("protected health information");
  Bytes aad = to_bytes("header");
  Bytes box = aead_encrypt(key, msg, aad, rng);
  EXPECT_EQ(box.size(), msg.size() + kAeadOverhead);
  EXPECT_EQ(aead_decrypt(key, box, aad), msg);
}

TEST(Aead, DetectsTampering) {
  Drbg rng(to_bytes("aead-tamper"));
  Bytes key = rng.bytes(32);
  Bytes box = aead_encrypt(key, to_bytes("msg"), {}, rng);
  for (size_t i = 0; i < box.size(); i += 7) {
    Bytes mutated = box;
    mutated[i] ^= 0x01;
    EXPECT_THROW(aead_decrypt(key, mutated, {}), AuthError);
  }
}

TEST(Aead, BindsAad) {
  Drbg rng(to_bytes("aead-aad"));
  Bytes key = rng.bytes(32);
  Bytes box = aead_encrypt(key, to_bytes("msg"), to_bytes("aad-1"), rng);
  EXPECT_THROW(aead_decrypt(key, box, to_bytes("aad-2")), AuthError);
}

TEST(Aead, WrongKeyFails) {
  Drbg rng(to_bytes("aead-key"));
  Bytes box = aead_encrypt(rng.bytes(32), to_bytes("msg"), {}, rng);
  EXPECT_THROW(aead_decrypt(rng.bytes(32), box, {}), AuthError);
}

TEST(Aead, TruncatedBoxFails) {
  Drbg rng(to_bytes("aead-trunc"));
  Bytes key = rng.bytes(32);
  Bytes box = aead_encrypt(key, to_bytes("m"), {}, rng);
  EXPECT_THROW(aead_decrypt(key, BytesView(box).subspan(0, 10), {}),
               AuthError);
}

TEST(Aead, DeterministicWithFixedNonce) {
  Bytes key(32, 5);
  Bytes nonce(12, 9);
  Bytes a = aead_encrypt_with_nonce(key, nonce, to_bytes("x"), {});
  Bytes b = aead_encrypt_with_nonce(key, nonce, to_bytes("x"), {});
  EXPECT_EQ(a, b);
}

TEST(Drbg, DeterministicFromSeed) {
  Drbg a(to_bytes("seed"));
  Drbg b(to_bytes("seed"));
  EXPECT_EQ(a.bytes(100), b.bytes(100));
  Drbg c(to_bytes("other"));
  EXPECT_NE(a.bytes(100), c.bytes(100));
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a(to_bytes("seed"));
  Drbg b(to_bytes("seed"));
  (void)a.bytes(16);
  (void)b.bytes(16);
  a.reseed(to_bytes("entropy"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, U64CoversRange) {
  Drbg rng(to_bytes("u64"));
  uint64_t acc_or = 0, acc_and = ~0ull;
  for (int i = 0; i < 64; ++i) {
    uint64_t v = rng.u64();
    acc_or |= v;
    acc_and &= v;
  }
  // Each bit position saw both values with overwhelming probability.
  EXPECT_EQ(acc_or, ~0ull);
  EXPECT_EQ(acc_and, 0ull);
}

TEST(Drbg, SystemInstancesDiffer) {
  Drbg a = Drbg::system();
  Drbg b = Drbg::system();
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

}  // namespace
}  // namespace hcpp::cipher
