// Network simulator: accounting, latency, replay window; onion overlay
// unlinkability; randomized upload scheduler.
#include <gtest/gtest.h>

#include "src/cipher/drbg.h"
#include "src/ibc/domain.h"
#include "src/sim/network.h"
#include "src/sim/onion.h"
#include "src/sim/scheduler.h"

namespace hcpp::sim {
namespace {

TEST(Network, TracksPerProtocolStats) {
  Network net;
  net.transmit("a", "b", 100, "proto-1");
  net.transmit("a", "b", 50, "proto-1");
  net.transmit("b", "a", 10, "proto-2");
  EXPECT_EQ(net.stats("proto-1").messages, 2u);
  EXPECT_EQ(net.stats("proto-1").bytes, 150u);
  EXPECT_EQ(net.stats("proto-2").messages, 1u);
  EXPECT_EQ(net.total().bytes, 160u);
  EXPECT_EQ(net.stats("absent").messages, 0u);
  net.reset_stats();
  EXPECT_EQ(net.total().messages, 0u);
}

TEST(Network, LatencyAdvancesClock) {
  Network net;
  net.set_default_link({.base_latency_ns = 1'000'000, .per_byte_ns = 10.0});
  uint64_t before = net.clock().now();
  net.transmit("a", "b", 1000, "p");
  EXPECT_EQ(net.clock().now(), before + 1'000'000 + 10'000);
}

TEST(Network, PerLinkModelOverridesDefault) {
  Network net;
  net.set_default_link({.base_latency_ns = 1'000'000, .per_byte_ns = 0});
  net.set_link("a", "b", {.base_latency_ns = 5'000'000, .per_byte_ns = 0});
  uint64_t t0 = net.clock().now();
  net.transmit("a", "b", 0, "p");
  EXPECT_EQ(net.clock().now(), t0 + 5'000'000);
  net.transmit("b", "a", 0, "p");  // unconfigured direction: default
  EXPECT_EQ(net.clock().now(), t0 + 6'000'000);
}

TEST(Network, ReplayGuardAcceptsFreshRejectsReplayAndStale) {
  Network net;
  Bytes tag = to_bytes("mac-bytes");
  uint64_t now = net.clock().now();
  EXPECT_TRUE(net.accept_fresh("server", tag, now, 1'000'000'000));
  // Identical tag again: replay.
  EXPECT_FALSE(net.accept_fresh("server", tag, now, 1'000'000'000));
  // Different receiver keeps its own cache.
  EXPECT_TRUE(net.accept_fresh("other", tag, now, 1'000'000'000));
  // Stale timestamp rejected outright.
  EXPECT_FALSE(net.accept_fresh("server", to_bytes("t2"), 0, 1'000));
  // Future beyond the window rejected too.
  EXPECT_FALSE(net.accept_fresh("server", to_bytes("t3"),
                                now + 10'000'000'000ull, 1'000'000'000));
}

TEST(Scheduler, DelaysWithinConfiguredRange) {
  cipher::Drbg rng(to_bytes("sched"));
  UploadScheduler sched(rng, 100, 200);
  for (int i = 0; i < 200; ++i) {
    uint64_t up = sched.schedule(1000);
    EXPECT_GE(up, 1100u);
    EXPECT_LE(up, 1200u);
  }
  EXPECT_THROW(UploadScheduler(rng, 10, 5), std::invalid_argument);
}

TEST(Scheduler, RandomizationBreaksCorrelation) {
  // E6's timing-analysis claim in miniature: with no jitter the upload time
  // is perfectly correlated with the hospital-visit time; with a large
  // random delay the *residual* (upload - event) carries the correlation
  // down.
  cipher::Drbg rng(to_bytes("sched-corr"));
  cipher::Drbg event_rng(to_bytes("events"));
  std::vector<double> events, immediate, jittered;
  UploadScheduler sched(rng, 0, 3'600'000'000'000ull);  // up to 1 h
  for (int i = 0; i < 500; ++i) {
    double t = static_cast<double>(event_rng.u64() % 86'400'000'000'000ull);
    events.push_back(t);
    immediate.push_back(t + 1000);
    jittered.push_back(
        static_cast<double>(sched.schedule(static_cast<uint64_t>(t)) -
                            static_cast<uint64_t>(t)));
  }
  EXPECT_GT(pearson_correlation(events, immediate), 0.999);
  EXPECT_LT(std::abs(pearson_correlation(events, jittered)), 0.2);
}

TEST(Scheduler, PearsonEdgeCases) {
  EXPECT_THROW(pearson_correlation({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(pearson_correlation({1.0, 2.0}, {1.0}),
               std::invalid_argument);
  EXPECT_EQ(pearson_correlation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
}

class OnionTest : public ::testing::Test {
 protected:
  OnionTest()
      : ctx_(curve::params(curve::ParamSet::kTest)),
        rng_(to_bytes("onion-test")),
        domain_(ctx_, rng_),
        onion_(net_, domain_, 6) {}

  const curve::CurveCtx& ctx_;
  cipher::Drbg rng_;
  ibc::Domain domain_;
  Network net_;
  OnionNetwork onion_;
};

TEST_F(OnionTest, RoundTripDeliversRequestAndResponse) {
  Bytes request = to_bytes("store my encrypted PHI");
  Bytes observed_request;
  Bytes response = onion_.round_trip(
      "patient", "s-server", request,
      [&](BytesView req) {
        observed_request.assign(req.begin(), req.end());
        return to_bytes("ack");
      },
      rng_);
  EXPECT_EQ(observed_request, request);
  EXPECT_EQ(response, to_bytes("ack"));
}

TEST_F(OnionTest, DestinationSeesOnlyExitRelay) {
  (void)onion_.round_trip(
      "patient", "s-server", to_bytes("req"),
      [](BytesView) { return to_bytes("ok"); }, rng_);
  EXPECT_NE(onion_.last_origin_seen(), "patient");
  EXPECT_EQ(onion_.last_origin_seen().rfind("relay-", 0), 0u);
}

TEST_F(OnionTest, NoRelaySeesBothEndpoints) {
  (void)onion_.round_trip(
      "patient", "s-server", to_bytes("req"),
      [](BytesView) { return to_bytes("ok"); }, rng_);
  for (const RelayObservation& obs : onion_.observations()) {
    for (const auto& [prev, next] : obs.forwarded) {
      EXPECT_FALSE(prev == "patient" && next == "s-server")
          << "relay " << obs.relay << " linked both endpoints";
    }
  }
  // Exactly the 3 circuit relays forwarded something.
  size_t active = 0;
  for (const RelayObservation& obs : onion_.observations()) {
    if (!obs.forwarded.empty()) ++active;
  }
  EXPECT_EQ(active, 3u);
}

TEST_F(OnionTest, SingleHopStillHidesNothingButWorks) {
  onion_.clear_observations();
  Bytes resp = onion_.round_trip(
      "patient", "s-server", to_bytes("r"),
      [](BytesView) { return to_bytes("ok"); }, rng_, /*hops=*/1);
  EXPECT_EQ(resp, to_bytes("ok"));
  EXPECT_THROW(onion_.round_trip("p", "d", to_bytes("r"),
                                 [](BytesView) { return Bytes{}; }, rng_,
                                 /*hops=*/7),
               std::invalid_argument);
}

TEST_F(OnionTest, ChargesOnionTraffic) {
  net_.reset_stats();
  (void)onion_.round_trip(
      "patient", "s-server", to_bytes("req"),
      [](BytesView) { return to_bytes("ok"); }, rng_);
  // 3 hops: 4 forward legs + 4 return legs.
  EXPECT_EQ(net_.stats("onion").messages, 8u);
  EXPECT_GT(net_.stats("onion").bytes, 0u);
}

}  // namespace
}  // namespace hcpp::sim
