// S-server durable state: export/import and file round-trips, with the
// protocols still working against the restored server.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/core/setup.h"

namespace hcpp::core {
namespace {

Deployment with_mhi(uint64_t seed) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 8;
  cfg.seed = seed;
  Deployment d = Deployment::create(cfg);
  cipher::Drbg rng(to_bytes("persist-mhi-" + std::to_string(seed)));
  d.pdevice->collect_mhi(generate_mhi_window("2011-04-12", 30, rng));
  std::vector<std::string> extra;
  EXPECT_TRUE(d.pdevice->store_mhi(*d.aserver, *d.sserver,
                                   "2011-04-12|er|gnv", extra));
  return d;
}

TEST(Persistence, ExportImportRoundTrip) {
  Deployment d = with_mhi(90);
  Bytes state = d.sserver->export_state();
  EXPECT_FALSE(state.empty());

  // A fresh server process for the same hospital identity.
  SServer restored(*d.net, *d.aserver, d.sserver->id());
  EXPECT_EQ(restored.account_count(), 0u);
  ASSERT_TRUE(restored.import_state(state));
  EXPECT_EQ(restored.account_count(), 1u);
  EXPECT_EQ(restored.mhi_entry_count(), 1u);
  EXPECT_EQ(restored.stored_bytes(), d.sserver->stored_bytes());

  // Protocols continue against the restored instance.
  std::vector<std::string> kws = {d.all_keywords().front()};
  EXPECT_EQ(d.patient->retrieve(restored, kws).size(),
            d.patient->keyword_index().entries.at(kws.front()).size());
  EXPECT_FALSE(d.family->emergency_retrieve(restored, kws).empty());
  auto role_key =
      d.on_duty->request_role_key(*d.aserver, "2011-04-12|er|gnv");
  ASSERT_TRUE(role_key.has_value());
  EXPECT_EQ(d.on_duty
                ->retrieve_mhi(restored, "2011-04-12|er|gnv", *role_key,
                               "day:2011-04-12")
                .size(),
            1u);
}

TEST(Persistence, FileRoundTrip) {
  Deployment d = with_mhi(91);
  std::filesystem::path path =
      std::filesystem::temp_directory_path() / "hcpp-sserver-state.bin";
  ASSERT_TRUE(d.sserver->save_to_file(path.string()));
  SServer restored(*d.net, *d.aserver, d.sserver->id());
  ASSERT_TRUE(restored.load_from_file(path.string()));
  EXPECT_EQ(restored.account_count(), d.sserver->account_count());
  EXPECT_EQ(restored.mhi_entry_count(), d.sserver->mhi_entry_count());
  std::filesystem::remove(path);
}

TEST(Persistence, RejectsBadInput) {
  Deployment d = with_mhi(92);
  SServer restored(*d.net, *d.aserver, d.sserver->id());
  EXPECT_FALSE(restored.import_state(to_bytes("garbage")));
  EXPECT_FALSE(restored.import_state(Bytes{}));
  Bytes state = d.sserver->export_state();
  // Wrong version byte.
  Bytes wrong_version = state;
  wrong_version[0] = 99;
  EXPECT_FALSE(restored.import_state(wrong_version));
  // Truncation.
  EXPECT_FALSE(restored.import_state(
      BytesView(state).subspan(0, state.size() / 2)));
  // Trailing junk.
  Bytes padded = state;
  padded.push_back(0);
  EXPECT_FALSE(restored.import_state(padded));
  // A failed import leaves the server untouched.
  EXPECT_EQ(restored.account_count(), 0u);
  EXPECT_FALSE(restored.load_from_file("/nonexistent/path/state.bin"));
}

TEST(Persistence, ImportReplacesExistingState) {
  Deployment a = with_mhi(93);
  Deployment b = with_mhi(94);
  Bytes state_a = a.sserver->export_state();
  // Server b adopts a's state wholesale.
  ASSERT_TRUE(b.sserver->import_state(state_a));
  EXPECT_EQ(b.sserver->stored_bytes(), a.sserver->stored_bytes());
  // b's old patient can no longer find their account (it was replaced)...
  std::vector<std::string> kws = {b.all_keywords().front()};
  EXPECT_TRUE(b.patient->retrieve(*b.sserver, kws).empty());
}

TEST(Persistence, StateIsAllCiphertext) {
  // The exported blob is exactly what a subpoena would produce; it must not
  // contain plaintext PHI.
  DeploymentConfig cfg;
  cfg.n_phi_files = 4;
  cfg.seed = 95;
  cfg.file_content_bytes = 64;
  Deployment d = Deployment::create(cfg);
  Bytes state = d.sserver->export_state();
  for (const sse::PlainFile& f : d.patient->files()) {
    auto it = std::search(state.begin(), state.end(), f.content.begin(),
                          f.content.begin() + 16);
    EXPECT_EQ(it, state.end());
  }
}

}  // namespace
}  // namespace hcpp::core
