// Integration tests: §IV.B storage, §IV.C assignment/revocation plumbing and
// §IV.D common-case retrieval over the simulated network, plus the
// failure-injection cases (tampered MAC, replay, unknown account) that back
// the §V.A integrity/confidentiality claims.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/setup.h"

namespace hcpp::core {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DeploymentConfig cfg;
    cfg.n_phi_files = 16;
    deployment_ = new Deployment(Deployment::create(cfg));
  }
  static void TearDownTestSuite() {
    delete deployment_;
    deployment_ = nullptr;
  }
  Deployment& d() { return *deployment_; }

  static Deployment* deployment_;
};

Deployment* ProtocolTest::deployment_ = nullptr;

TEST_F(ProtocolTest, StorageCreatedAccountAndKeywordIndex) {
  EXPECT_EQ(d().sserver->account_count(), 1u);
  EXPECT_FALSE(d().patient->keyword_index().entries.empty());
  EXPECT_GT(d().sserver->stored_bytes(), 0u);
}

TEST_F(ProtocolTest, ServerSeesPseudonymNotName) {
  for (const std::string& account : d().sserver->visible_account_ids()) {
    EXPECT_EQ(account.find("alice"), std::string::npos);
    EXPECT_EQ(account.find("patient"), std::string::npos);
  }
}

TEST_F(ProtocolTest, CommonCaseRetrievalReturnsExactMatches) {
  const KeywordIndex& ki = d().patient->keyword_index();
  for (const auto& [kw, expected_ids] : ki.entries) {
    std::vector<std::string> kws = {kw};
    std::vector<sse::PlainFile> got = d().patient->retrieve(*d().sserver, kws);
    std::vector<sse::FileId> got_ids;
    for (const sse::PlainFile& f : got) got_ids.push_back(f.id);
    std::sort(got_ids.begin(), got_ids.end());
    std::vector<sse::FileId> want = expected_ids;
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got_ids, want) << "keyword " << kw;
  }
}

TEST_F(ProtocolTest, MultiKeywordRetrievalUnions) {
  const KeywordIndex& ki = d().patient->keyword_index();
  ASSERT_GE(ki.entries.size(), 2u);
  auto it = ki.entries.begin();
  std::string kw1 = it->first;
  std::string kw2 = std::next(it)->first;
  std::vector<std::string> kws = {kw1, kw2};
  std::vector<sse::PlainFile> got = d().patient->retrieve(*d().sserver, kws);
  std::set<sse::FileId> want(ki.entries.at(kw1).begin(),
                             ki.entries.at(kw1).end());
  want.insert(ki.entries.at(kw2).begin(), ki.entries.at(kw2).end());
  EXPECT_EQ(got.size(), want.size());
}

TEST_F(ProtocolTest, RetrievalReturnsMinimumNecessary) {
  // §IV.D: only the files matching the keyword come back, not the whole
  // collection.
  const KeywordIndex& ki = d().patient->keyword_index();
  auto smallest = std::min_element(
      ki.entries.begin(), ki.entries.end(),
      [](const auto& a, const auto& b) {
        return a.second.size() < b.second.size();
      });
  std::vector<std::string> kws = {smallest->first};
  std::vector<sse::PlainFile> got = d().patient->retrieve(*d().sserver, kws);
  EXPECT_LT(got.size(), d().patient->files().size());
}

TEST_F(ProtocolTest, UnknownKeywordReturnsNothing) {
  std::vector<std::string> kws = {"keyword-that-does-not-exist"};
  EXPECT_TRUE(d().patient->retrieve(*d().sserver, kws).empty());
}

TEST_F(ProtocolTest, TamperedMacRejected) {
  RetrieveRequest req;
  req.tp = d().patient->tp_bytes();
  req.collection = d().patient->collection();
  req.trapdoors.push_back(
      sse::make_trapdoor(d().patient->keys(), "category:allergy").to_bytes());
  req.t = d().net->clock().now();
  req.mac = Bytes(32, 0xab);  // wrong MAC
  EXPECT_FALSE(d().sserver->handle_retrieve(req).has_value());
}

TEST_F(ProtocolTest, ReplayedRequestRejected) {
  RetrieveRequest req;
  req.tp = d().patient->tp_bytes();
  req.collection = d().patient->collection();
  req.trapdoors.push_back(
      sse::make_trapdoor(d().patient->keys(), "category:allergy").to_bytes());
  req.t = d().net->clock().now();
  req.mac = protocol_mac(d().patient->shared_key_nu(), "phi-retrieval",
                         req.body(), req.t);
  EXPECT_TRUE(d().sserver->handle_retrieve(req).has_value());
  // Bit-for-bit replay of the same authenticated message.
  EXPECT_FALSE(d().sserver->handle_retrieve(req).has_value());
}

TEST_F(ProtocolTest, StaleTimestampRejected) {
  // Move simulated time well past the freshness window so "t = 1" is stale.
  d().net->clock().advance(3 * kFreshnessWindowNs);
  RetrieveRequest req;
  req.tp = d().patient->tp_bytes();
  req.collection = d().patient->collection();
  req.t = 1;  // far in the simulated past
  req.mac = protocol_mac(d().patient->shared_key_nu(), "phi-retrieval",
                         req.body(), req.t);
  EXPECT_FALSE(d().sserver->handle_retrieve(req).has_value());
}

TEST_F(ProtocolTest, UnknownAccountRejected) {
  // A valid pseudonym that never stored anything.
  ibc::Domain::Pseudonym stranger = d().aserver->issue_pseudonym();
  Bytes tp = curve::point_to_bytes(stranger.tp);
  Bytes nu = ibc::shared_key_with_id(d().aserver->ctx(), stranger.gamma,
                                     d().sserver->id());
  RetrieveRequest req;
  req.tp = tp;
  req.collection = "phi-main";
  req.t = d().net->clock().now();
  req.mac = protocol_mac(nu, "phi-retrieval", req.body(), req.t);
  EXPECT_FALSE(d().sserver->handle_retrieve(req).has_value());
}

TEST_F(ProtocolTest, MalformedPseudonymRejected) {
  StoreRequest req;
  req.tp = to_bytes("not-a-point");
  req.collection = "x";
  req.t = d().net->clock().now();
  req.mac = Bytes(32, 0);
  EXPECT_FALSE(d().sserver->handle_store(req));
}

TEST_F(ProtocolTest, TrafficChargedPerProtocol) {
  sim::TrafficStats storage = d().net->stats("phi-storage");
  EXPECT_EQ(storage.messages, 1u);  // one upload message (§V.B.2)
  EXPECT_GT(storage.bytes, 0u);
  sim::TrafficStats retrieval = d().net->stats("phi-retrieval");
  EXPECT_GT(retrieval.messages, 0u);
  // Requests and responses come in pairs.
  EXPECT_EQ(retrieval.messages % 2, 0u);
}

TEST(ProtocolStandalone, RevokeUpdatesServerSideKey) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 8;
  cfg.seed = 99;
  Deployment d = Deployment::create(cfg);
  // Family works before revocation...
  std::vector<std::string> kws = {d.all_keywords().front()};
  EXPECT_FALSE(d.family->emergency_retrieve(*d.sserver, kws).empty());
  // ...revoke the family slot; their wrapped trapdoors now fail.
  ASSERT_TRUE(d.patient->revoke_member(*d.sserver, kFamilySlot));
  EXPECT_TRUE(d.family->emergency_retrieve(*d.sserver, kws).empty());
  // The patient's own retrieval is untouched.
  EXPECT_FALSE(d.patient->retrieve(*d.sserver, kws).empty());
}

TEST(ProtocolStandalone, WrongMuCannotOpenBundle) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 4;
  cfg.seed = 7;
  cfg.assign_privileges = false;
  Deployment d = Deployment::create(cfg);
  Bytes sealed = d.patient->make_sealed_bundle(kFamilySlot, d.mu_family);
  Family eve(*d.net, "eve");
  Bytes wrong_mu(32, 0x01);
  EXPECT_FALSE(eve.receive_bundle(sealed, wrong_mu));
  EXPECT_FALSE(eve.has_bundle());
}

TEST(ProtocolStandalone, PhiUpdateFlowReplacesCollection) {
  // §IV.B: the storage protocol "is executed by the patient whenever the PHI
  // is created, updated or modified". New files after a diagnosis are picked
  // up by re-running it; the new keyword is then retrievable.
  DeploymentConfig cfg;
  cfg.n_phi_files = 6;
  cfg.seed = 101;
  Deployment d = Deployment::create(cfg);
  size_t before = d.patient->files().size();

  sse::PlainFile fresh;
  fresh.id = 900;
  fresh.name = "new-diagnosis";
  fresh.content = to_bytes("post-visit imaging report");
  fresh.keywords = {"category:imaging", "visit:2011-04-12"};
  d.patient->add_files({fresh});
  ASSERT_TRUE(d.patient->store_phi(*d.sserver));
  EXPECT_EQ(d.sserver->account_count(), 1u);  // replaced, not duplicated

  std::vector<std::string> kws = {"visit:2011-04-12"};
  std::vector<sse::PlainFile> got = d.patient->retrieve(*d.sserver, kws);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].id, 900u);
  EXPECT_EQ(got[0].content, fresh.content);
  // Old files still retrievable after the update.
  std::vector<std::string> old_kw = {
      d.patient->files().front().keywords.front()};
  EXPECT_FALSE(d.patient->retrieve(*d.sserver, old_kw).empty());
  EXPECT_EQ(d.patient->files().size(), before + 1);
}

TEST(ProtocolStandalone, TwoPatientsAreIsolatedOnOneServer) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("two-patients"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  AServer aserver(net, ctx, "a", rng);
  SServer sserver(net, aserver, "s");

  Patient alice(net, "alice", rng);
  alice.setup(aserver, "s");
  alice.add_files(generate_phi_collection(5, alice.rng(), /*first_id=*/1));
  ASSERT_TRUE(alice.store_phi(sserver));

  Patient bob(net, "bob", rng);
  bob.setup(aserver, "s");
  bob.add_files(generate_phi_collection(5, bob.rng(), /*first_id=*/100));
  ASSERT_TRUE(bob.store_phi(sserver));

  EXPECT_EQ(sserver.account_count(), 2u);
  // Each patient's retrieval returns only their own files.
  for (const auto& [kw, ids] : alice.keyword_index().entries) {
    std::vector<std::string> kws = {kw};
    for (const sse::PlainFile& f : alice.retrieve(sserver, kws)) {
      EXPECT_LT(f.id, 100u);
    }
  }
  for (const auto& [kw, ids] : bob.keyword_index().entries) {
    std::vector<std::string> kws = {kw};
    for (const sse::PlainFile& f : bob.retrieve(sserver, kws)) {
      EXPECT_GE(f.id, 100u);
    }
  }
}

TEST(ProtocolStandalone, StoreBeforeSetupThrows) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("nosetup"));
  Patient p(net, "nobody", rng);
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  AServer a(net, ctx, "a", rng);
  SServer s(net, a, "s");
  EXPECT_THROW((void)p.store_phi(s), std::logic_error);
}

}  // namespace
}  // namespace hcpp::core
