// Known-answer and property tests for SHA-256, HMAC-SHA256 and HKDF.
#include <gtest/gtest.h>

#include "src/hash/hkdf.h"
#include "src/hash/hmac.h"
#include "src/hash/sha256.h"

namespace hcpp::hash {
namespace {

std::string digest_hex(const Digest& d) {
  return hex_encode(BytesView(d.data(), d.size()));
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(
      digest_hex(sha256(Bytes{})),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      digest_hex(sha256(to_bytes("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      digest_hex(sha256(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(
      digest_hex(h.finish()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
  for (size_t split = 0; split <= data.size(); ++split) {
    Sha256 h;
    h.update(BytesView(data).subspan(0, split));
    h.update(BytesView(data).subspan(split));
    EXPECT_EQ(h.finish(), sha256(data)) << "split at " << split;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  h.update(to_bytes("abc"));
  (void)h.finish();
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test cases.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(
      hex_encode(hmac_sha256(key, to_bytes("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      hex_encode(hmac_sha256(to_bytes("Jefe"),
                             to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(
      hex_encode(hmac_sha256(
          key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key "
                        "First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, TruncationAndVerify) {
  Bytes key = to_bytes("k");
  Bytes msg = to_bytes("m");
  Bytes t16 = hmac_sha256_trunc(key, msg, 16);
  EXPECT_EQ(t16.size(), 16u);
  Bytes full = hmac_sha256(key, msg);
  EXPECT_TRUE(ct_equal(t16, BytesView(full).subspan(0, 16)));
  EXPECT_TRUE(hmac_verify(key, msg, full));
  full[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, msg, full));
  EXPECT_THROW(hmac_sha256_trunc(key, msg, 33), std::invalid_argument);
}

TEST(Hmac, KeySensitivity) {
  Bytes m = to_bytes("message");
  EXPECT_NE(hmac_sha256(to_bytes("key1"), m), hmac_sha256(to_bytes("key2"), m));
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = hex_decode("000102030405060708090a0b0c");
  Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
  Bytes prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(
      hex_encode(prk),
      "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  Bytes okm = hkdf_expand(prk, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

// RFC 5869 test case 3 (empty salt and info).
TEST(Hkdf, Rfc5869Case3) {
  Bytes ikm(22, 0x0b);
  Bytes okm = hkdf(ikm, {}, {}, 42);
  EXPECT_EQ(hex_encode(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, OutputLengthBounds) {
  Bytes prk = hkdf_extract({}, to_bytes("ikm"));
  EXPECT_EQ(hkdf_expand(prk, {}, 0).size(), 0u);
  EXPECT_EQ(hkdf_expand(prk, {}, 255 * 32).size(), size_t{255 * 32});
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(Hkdf, InfoSeparatesOutputs) {
  Bytes ikm = to_bytes("shared secret");
  EXPECT_NE(hkdf(ikm, {}, to_bytes("ctx-a"), 32),
            hkdf(ikm, {}, to_bytes("ctx-b"), 32));
}

}  // namespace
}  // namespace hcpp::hash
