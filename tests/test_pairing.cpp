// Pairing correctness: bilinearity, non-degeneracy, symmetry, target-group
// order — the properties §II.A demands of ê.
#include <gtest/gtest.h>

#include "src/cipher/drbg.h"
#include "src/curve/pairing.h"
#include "src/curve/params.h"

namespace hcpp::curve {
namespace {

const CurveCtx& ctx() { return params(ParamSet::kTest); }

TEST(Pairing, Bilinearity) {
  cipher::Drbg rng(to_bytes("pairing-bilinear"));
  Point g = generator(ctx());
  for (int i = 0; i < 3; ++i) {
    mp::U512 a = random_scalar(ctx(), rng);
    mp::U512 b = random_scalar(ctx(), rng);
    Gt lhs = pairing(ctx(), mul(ctx(), g, a), mul(ctx(), g, b));
    Gt rhs = pairing(ctx(), g, g).pow(mp::mul_mod(a, b, ctx().q));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Pairing, LinearInEachArgument) {
  cipher::Drbg rng(to_bytes("pairing-linear"));
  Point g = generator(ctx());
  mp::U512 a = random_scalar(ctx(), rng);
  Point p = mul(ctx(), g, random_scalar(ctx(), rng));
  Point q = mul(ctx(), g, random_scalar(ctx(), rng));
  EXPECT_EQ(pairing(ctx(), mul(ctx(), p, a), q), pairing(ctx(), p, q).pow(a));
  EXPECT_EQ(pairing(ctx(), p, mul(ctx(), q, a)), pairing(ctx(), p, q).pow(a));
}

TEST(Pairing, MultiplicativeInFirstArgument) {
  cipher::Drbg rng(to_bytes("pairing-mult"));
  Point g = generator(ctx());
  Point p = mul(ctx(), g, random_scalar(ctx(), rng));
  Point q = mul(ctx(), g, random_scalar(ctx(), rng));
  Point r = mul(ctx(), g, random_scalar(ctx(), rng));
  EXPECT_EQ(pairing(ctx(), add(ctx(), p, q), r),
            pairing(ctx(), p, r) * pairing(ctx(), q, r));
}

TEST(Pairing, NonDegenerate) {
  Point g = generator(ctx());
  Gt e = pairing(ctx(), g, g);
  EXPECT_FALSE(e.is_one());
}

TEST(Pairing, TargetGroupHasOrderQ) {
  Point g = generator(ctx());
  Gt e = pairing(ctx(), g, g);
  EXPECT_TRUE(e.pow(ctx().q).is_one());
  // ...and not a smaller order dividing a few small factors.
  EXPECT_FALSE(e.pow(mp::U512::from_u64(2)).is_one());
  EXPECT_FALSE(e.pow(mp::U512::from_u64(3)).is_one());
}

TEST(Pairing, SymmetricForModifiedPairing) {
  // The distortion-map pairing on a supersingular curve is symmetric — the
  // property the shared keys ν = ê(Γp, PK_S) = ê(TPp, Γ_S) rely on.
  cipher::Drbg rng(to_bytes("pairing-sym"));
  Point g = generator(ctx());
  Point p = mul(ctx(), g, random_scalar(ctx(), rng));
  Point q = mul(ctx(), g, random_scalar(ctx(), rng));
  EXPECT_EQ(pairing(ctx(), p, q), pairing(ctx(), q, p));
}

TEST(Pairing, InfinityGivesIdentity) {
  Point g = generator(ctx());
  EXPECT_TRUE(pairing(ctx(), Point::at_infinity(), g).is_one());
  EXPECT_TRUE(pairing(ctx(), g, Point::at_infinity()).is_one());
}

TEST(Pairing, NegationInvertsValue) {
  cipher::Drbg rng(to_bytes("pairing-neg"));
  Point g = generator(ctx());
  Point p = mul(ctx(), g, random_scalar(ctx(), rng));
  Gt e = pairing(ctx(), p, g);
  EXPECT_EQ(pairing(ctx(), negate(p), g), e.inv());
  EXPECT_TRUE((e * e.inv()).is_one());
}

TEST(Pairing, HashedPointsPairConsistently) {
  // The BF-IBE correctness equation: ê(s·H1(id), rP) == ê(H1(id), sP)^r.
  cipher::Drbg rng(to_bytes("pairing-ibe"));
  Point g = generator(ctx());
  Point q_id = hash_to_point(ctx(), to_bytes("dr-alice"));
  mp::U512 s = random_scalar(ctx(), rng);
  mp::U512 r = random_scalar(ctx(), rng);
  Gt lhs = pairing(ctx(), mul(ctx(), q_id, s), mul(ctx(), g, r));
  Gt rhs = pairing(ctx(), q_id, mul(ctx(), g, s)).pow(r);
  EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, GtSerializationStable) {
  Point g = generator(ctx());
  Gt e = pairing(ctx(), g, g);
  EXPECT_EQ(e.to_bytes(), pairing(ctx(), g, g).to_bytes());
  EXPECT_EQ(e.to_bytes().size(), 128u);
}

// ---- Optimized engine vs the affine reference oracle ------------------------

TEST(PairingEngine, MatchesReferenceOnBothParameterSets) {
  for (ParamSet set : {ParamSet::kTest, ParamSet::kProduction}) {
    const CurveCtx& c = params(set);
    cipher::Drbg rng(to_bytes("engine-vs-reference"));
    Point g = generator(c);
    EXPECT_EQ(pairing(c, g, g), pairing_reference(c, g, g));
    for (int i = 0; i < 3; ++i) {
      Point p = mul(c, g, random_scalar(c, rng));
      Point q = hash_to_point(c, rng.bytes(32));
      EXPECT_EQ(pairing(c, p, q), pairing_reference(c, p, q));
    }
  }
}

TEST(PairingPrecomp, MatchesFreshPairing) {
  for (ParamSet set : {ParamSet::kTest, ParamSet::kProduction}) {
    const CurveCtx& c = params(set);
    cipher::Drbg rng(to_bytes("precomp-vs-fresh"));
    Point p = mul(c, generator(c), random_scalar(c, rng));
    PairingPrecomp pre(c, p);
    EXPECT_FALSE(pre.trivial());
    for (int i = 0; i < 3; ++i) {
      Point q = hash_to_point(c, rng.bytes(32));
      EXPECT_EQ(pre.pairing_with(q), pairing(c, p, q));
    }
    EXPECT_TRUE(pre.pairing_with(Point::at_infinity()).is_one());
  }
}

TEST(PairingPrecomp, TrivialCases) {
  PairingPrecomp empty;
  EXPECT_TRUE(empty.trivial());
  // Default-constructed has no context to make a Gt from.
  EXPECT_THROW((void)empty.pairing_with(generator(ctx())), std::logic_error);
  PairingPrecomp inf(ctx(), Point::at_infinity());
  EXPECT_TRUE(inf.trivial());
  EXPECT_TRUE(inf.pairing_with(generator(ctx())).is_one());
}

TEST(PairingPrecomp, GeneratorPrecompSharedAndCorrect) {
  const PairingPrecomp& pre = generator_precomp(ctx());
  EXPECT_EQ(&pre, &generator_precomp(ctx()));  // cached, not rebuilt
  Point q = hash_to_point(ctx(), to_bytes("gen-precomp-q"));
  EXPECT_EQ(pre.pairing_with(q), pairing(ctx(), generator(ctx()), q));
}

TEST(PairingProduct, MatchesTermByTermProduct) {
  for (ParamSet set : {ParamSet::kTest, ParamSet::kProduction}) {
    const CurveCtx& c = params(set);
    cipher::Drbg rng(to_bytes("product-vs-terms"));
    std::vector<PairingTerm> terms;
    Gt expect = Gt::one(c);
    for (int i = 0; i < 3; ++i) {
      Point p = mul(c, generator(c), random_scalar(c, rng));
      Point q = hash_to_point(c, rng.bytes(32));
      terms.emplace_back(p, q);
      expect = expect * pairing_reference(c, p, q);
    }
    EXPECT_EQ(pairing_product(c, terms), expect);
  }
}

TEST(PairingProduct, NegatedTermCancelsAndInfinityIsNeutral) {
  const CurveCtx& c = ctx();
  cipher::Drbg rng(to_bytes("product-cancel"));
  Point p = mul(c, generator(c), random_scalar(c, rng));
  Point q = hash_to_point(c, to_bytes("cancel-q"));
  const PairingTerm cancel[] = {{p, q}, {negate(p), q}};
  EXPECT_TRUE(pairing_product(c, cancel).is_one());
  const PairingTerm with_inf[] = {{p, q}, {Point::at_infinity(), q}};
  EXPECT_EQ(pairing_product(c, with_inf), pairing(c, p, q));
  EXPECT_TRUE(pairing_product(c, std::span<const PairingTerm>{}).is_one());
}

}  // namespace
}  // namespace hcpp::curve
