// E5 groundwork: the Lee&Lee and Tan et al. baselines exhibit exactly the
// privacy failures §I.A critiques, while HCPP does not.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/baseline/leelee.h"
#include "src/baseline/tan.h"
#include "src/core/setup.h"

namespace hcpp::baseline {
namespace {

TEST(LeeLee, NormalAndEmergencyRetrievalWork) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("leelee-1"));
  LeeLeeSystem sys(net, rng);
  sys.register_patient("alice");
  auto files = core::generate_phi_collection(8, rng);
  ASSERT_TRUE(sys.store_phi("alice", files));
  std::string kw = files[0].keywords[0];
  auto got = sys.retrieve_with_consent("alice", kw);
  EXPECT_FALSE(got.empty());
  EXPECT_EQ(sys.emergency_retrieve("alice", kw).size(), got.size());
}

TEST(LeeLee, EscrowCanReadEverythingSilently) {
  // The paper's critique of [10]: "the trusted server is able to access the
  // patients' PHI at any time".
  sim::Network net;
  cipher::Drbg rng(to_bytes("leelee-2"));
  LeeLeeSystem sys(net, rng);
  sys.register_patient("alice");
  auto files = core::generate_phi_collection(5, rng);
  ASSERT_TRUE(sys.store_phi("alice", files));
  auto leaked = sys.escrow_read_all("alice");
  EXPECT_EQ(leaked.size(), files.size());
  EXPECT_EQ(leaked[0].content, files[0].content);  // full plaintext exposure
}

TEST(LeeLee, ServerLearnsIdentitiesAndKeywords) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("leelee-3"));
  LeeLeeSystem sys(net, rng);
  sys.register_patient("alice");
  auto files = core::generate_phi_collection(5, rng);
  ASSERT_TRUE(sys.store_phi("alice", files));
  auto ids = sys.server_visible_patient_ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], "alice");  // linkable
  EXPECT_FALSE(sys.server_visible_keywords("alice").empty());  // leaky
}

TEST(LeeLee, UnknownPatientHandled) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("leelee-4"));
  LeeLeeSystem sys(net, rng);
  EXPECT_FALSE(sys.store_phi("ghost", {}));
  EXPECT_TRUE(sys.retrieve_with_consent("ghost", "kw").empty());
  EXPECT_TRUE(sys.escrow_read_all("ghost").empty());
}

TEST(Tan, RoleBasedDecryptionWorks) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("tan-1"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  ibc::Domain domain(ctx, rng);
  TanSystem sys(net, domain);
  Bytes record = to_bytes("hr=150 bp=180/110");
  ASSERT_TRUE(sys.store_record("alice", "emergency-doctor", record, rng));
  auto blobs = sys.query_by_patient("dr-bob", "alice");
  ASSERT_EQ(blobs.size(), 1u);
  auto plain =
      sys.decrypt_records(domain.extract("emergency-doctor"), blobs);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0], record);
  // The wrong role decrypts nothing.
  EXPECT_TRUE(
      sys.decrypt_records(domain.extract("reception-desk"), blobs).empty());
}

TEST(Tan, ServerLearnsOwnership) {
  // The §I.A critique of [11]: "the storage site will learn the ownership of
  // the encrypted records".
  sim::Network net;
  cipher::Drbg rng(to_bytes("tan-2"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  ibc::Domain domain(ctx, rng);
  TanSystem sys(net, domain);
  sys.store_record("alice", "role", to_bytes("r1"), rng);
  sys.store_record("alice", "role", to_bytes("r2"), rng);
  sys.store_record("bob", "role", to_bytes("r3"), rng);
  auto view = sys.server_ownership_view();
  EXPECT_EQ(view.at("alice"), 2u);
  EXPECT_EQ(view.at("bob"), 1u);
}

TEST(Comparison, PrivacyScorecard) {
  PrivacyProperties leelee = LeeLeeSystem::properties();
  PrivacyProperties tan = TanSystem::properties();
  EXPECT_FALSE(leelee.escrow_free);
  EXPECT_FALSE(leelee.unlinkable_storage);
  EXPECT_TRUE(tan.escrow_free);
  EXPECT_FALSE(tan.unlinkable_storage);
}

TEST(Comparison, HcppServerSeesNeitherIdentityNorKeywords) {
  core::DeploymentConfig cfg;
  cfg.n_phi_files = 6;
  cfg.seed = 55;
  core::Deployment d = core::Deployment::create(cfg);
  // Account ids are pseudonym-derived hex, unlinkable to "alice".
  for (const std::string& acct : d.sserver->visible_account_ids()) {
    EXPECT_EQ(acct.find("alice"), std::string::npos);
  }
  // Keywords only ever cross the wire as trapdoors; no plaintext keyword
  // string from the dictionary appears in any stored account key.
  for (const std::string& kw : d.all_keywords()) {
    for (const std::string& acct : d.sserver->visible_account_ids()) {
      EXPECT_EQ(acct.find(kw), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace hcpp::baseline
