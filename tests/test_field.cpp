// Field-law tests for F_p and F_{p^2}.
#include <gtest/gtest.h>

#include "src/cipher/drbg.h"
#include "src/curve/params.h"
#include "src/field/fp2.h"
#include "src/mp/prime.h"

namespace hcpp::field {
namespace {

const FpCtx& test_field() {
  return curve::params(curve::ParamSet::kTest).fp;
}

Fp random_fp(const FpCtx& f, RandomSource& rng) {
  return Fp(&f, mp::random_below(f.p, rng));
}

TEST(Fp, ConstructionReducesModP) {
  const FpCtx& f = test_field();
  Fp a(&f, f.p);  // p ≡ 0
  EXPECT_TRUE(a.is_zero());
  mp::U512 big;
  mp::add(big, f.p, mp::U512::from_u64(5));
  EXPECT_EQ(Fp(&f, big).value(), mp::U512::from_u64(5));
}

TEST(Fp, FieldLaws) {
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp-laws"));
  for (int i = 0; i < 20; ++i) {
    Fp a = random_fp(f, rng), b = random_fp(f, rng), c = random_fp(f, rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a - a, Fp::zero(&f));
    EXPECT_EQ(a + a.neg(), Fp::zero(&f));
    EXPECT_EQ(a.sqr(), a * a);
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.inv(), Fp::one(&f));
    }
  }
}

TEST(Fp, InvOfZeroThrows) {
  EXPECT_THROW((void)Fp::zero(&test_field()).inv(), std::domain_error);
}

TEST(Fp, PowMatchesRepeatedMultiplication) {
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp-pow"));
  Fp a = random_fp(f, rng);
  Fp acc = Fp::one(&f);
  for (int e = 0; e < 10; ++e) {
    EXPECT_EQ(a.pow(mp::U512::from_u64(e)), acc);
    acc = acc * a;
  }
}

TEST(Fp, SqrtOfSquares) {
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp-sqrt"));
  int squares_found = 0;
  for (int i = 0; i < 30; ++i) {
    Fp a = random_fp(f, rng);
    Fp sq = a.sqr();
    if (a.is_zero()) continue;
    EXPECT_TRUE(sq.is_square());
    auto root = sq.sqrt();
    ASSERT_TRUE(root.has_value());
    EXPECT_TRUE(*root == a || *root == a.neg());
    ++squares_found;
  }
  EXPECT_GT(squares_found, 0);
}

TEST(Fp, NonResidueHasNoRoot) {
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp-nonres"));
  int nonresidues = 0;
  for (int i = 0; i < 40 && nonresidues < 5; ++i) {
    Fp a = random_fp(f, rng);
    if (a.is_zero() || a.is_square()) continue;
    ++nonresidues;
    EXPECT_FALSE(a.sqrt().has_value());
  }
  EXPECT_GT(nonresidues, 0);
}

TEST(Fp, MinusOneIsNonResidue) {
  // p ≡ 3 (mod 4) makes -1 a non-residue — the premise of Fp2 = Fp[i].
  const FpCtx& f = test_field();
  Fp minus_one = Fp::one(&f).neg();
  EXPECT_FALSE(minus_one.is_square());
}

TEST(Fp2, FieldLaws) {
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp2-laws"));
  for (int i = 0; i < 15; ++i) {
    Fp2 a(random_fp(f, rng), random_fp(f, rng));
    Fp2 b(random_fp(f, rng), random_fp(f, rng));
    Fp2 c(random_fp(f, rng), random_fp(f, rng));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.sqr(), a * a);
    if (!a.is_zero()) {
      EXPECT_TRUE((a * a.inv()).is_one());
    }
  }
}

TEST(Fp2, ImaginaryUnitSquaresToMinusOne) {
  const FpCtx& f = test_field();
  Fp2 i_unit(Fp::zero(&f), Fp::one(&f));
  Fp2 minus_one(Fp::one(&f).neg(), Fp::zero(&f));
  EXPECT_EQ(i_unit * i_unit, minus_one);
}

TEST(Fp2, ConjugationIsFrobenius) {
  // x^p = conj(x) in F_{p^2} when p ≡ 3 (mod 4).
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp2-frob"));
  Fp2 x(random_fp(f, rng), random_fp(f, rng));
  EXPECT_EQ(x.pow(f.p), x.conj());
}

TEST(Fp2, KaratsubaMulMatchesSchoolbook) {
  // operator* uses the 3-multiplication Karatsuba form; re-derive each
  // product with the 4-multiplication schoolbook formula.
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp2-karatsuba"));
  for (int i = 0; i < 25; ++i) {
    Fp2 a(random_fp(f, rng), random_fp(f, rng));
    Fp2 b(random_fp(f, rng), random_fp(f, rng));
    Fp2 school(a.re() * b.re() - a.im() * b.im(),
               a.re() * b.im() + a.im() * b.re());
    EXPECT_EQ(a * b, school);
  }
}

TEST(Fp2, WindowedPowMatchesRepeatedMultiplication) {
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp2-pow-window"));
  Fp2 a(random_fp(f, rng), random_fp(f, rng));
  Fp2 acc = Fp2::one(&f);
  for (uint64_t e = 0; e < 40; ++e) {
    EXPECT_EQ(a.pow(mp::U512::from_u64(e)), acc);
    acc = acc * a;
  }
  // Wide random exponents against a bitwise square-and-multiply oracle.
  for (int i = 0; i < 5; ++i) {
    mp::U512 e = mp::random_bits(1 + (static_cast<size_t>(rng.u64()) % 500),
                                 rng);
    Fp2 oracle = Fp2::one(&f);
    for (size_t b = e.bit_length(); b-- > 0;) {
      oracle = oracle.sqr();
      if ((e.w[b / 64] >> (b % 64)) & 1) oracle = oracle * a;
    }
    EXPECT_EQ(a.pow(e), oracle);
  }
}

TEST(Fp2, NormMultiplicativity) {
  const FpCtx& f = test_field();
  cipher::Drbg rng(to_bytes("fp2-norm"));
  Fp2 a(random_fp(f, rng), random_fp(f, rng));
  Fp2 b(random_fp(f, rng), random_fp(f, rng));
  auto norm = [](const Fp2& x) {
    return x.re().sqr() + x.im().sqr();
  };
  EXPECT_EQ(norm(a * b), norm(a) * norm(b));
}

TEST(Fp2, SerializationIsCanonical) {
  const FpCtx& f = test_field();
  Fp2 x(Fp(&f, mp::U512::from_u64(1)), Fp(&f, mp::U512::from_u64(2)));
  Bytes enc = x.to_bytes();
  EXPECT_EQ(enc.size(), 128u);
  Fp2 y(Fp(&f, mp::U512::from_u64(1)), Fp(&f, mp::U512::from_u64(2)));
  EXPECT_EQ(enc, y.to_bytes());
}

}  // namespace
}  // namespace hcpp::field
