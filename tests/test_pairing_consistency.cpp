// Fast cross-check of every optimized pairing path against the affine
// reference oracle (ctest name: pairing_consistency). This is the gate that
// lets the projective engine, the precomputed lines and the multi-pairing
// evolve: if any of them drifts from pairing_reference, this suite fails in
// well under a second on the test parameters plus one production spot-check.
#include <gtest/gtest.h>

#include "src/cipher/drbg.h"
#include "src/curve/pairing.h"
#include "src/curve/params.h"

namespace hcpp::curve {
namespace {

TEST(PairingConsistency, AllPathsAgreeWithReference) {
  const CurveCtx& c = params(ParamSet::kTest);
  cipher::Drbg rng(to_bytes("pairing-consistency"));
  Point g = generator(c);
  for (int i = 0; i < 4; ++i) {
    Point p = mul(c, g, random_scalar(c, rng));
    Point q = hash_to_point(c, rng.bytes(32));
    Gt oracle = pairing_reference(c, p, q);
    EXPECT_EQ(pairing(c, p, q), oracle);
    EXPECT_EQ(PairingPrecomp(c, p).pairing_with(q), oracle);
    const PairingTerm single[] = {{p, q}};
    EXPECT_EQ(pairing_product(c, single), oracle);
  }
}

TEST(PairingConsistency, ProductAgreesWithReferenceProduct) {
  const CurveCtx& c = params(ParamSet::kTest);
  cipher::Drbg rng(to_bytes("pairing-consistency-product"));
  std::vector<PairingTerm> terms;
  Gt expect = Gt::one(c);
  for (int i = 0; i < 3; ++i) {
    Point p = mul(c, generator(c), random_scalar(c, rng));
    Point q = hash_to_point(c, rng.bytes(32));
    terms.emplace_back(p, q);
    expect = expect * pairing_reference(c, p, q);
  }
  EXPECT_EQ(pairing_product(c, terms), expect);
}

TEST(PairingConsistency, ProductionSpotCheck) {
  const CurveCtx& c = params(ParamSet::kProduction);
  cipher::Drbg rng(to_bytes("pairing-consistency-production"));
  Point p = mul(c, generator(c), random_scalar(c, rng));
  Point q = hash_to_point(c, rng.bytes(32));
  Gt oracle = pairing_reference(c, p, q);
  EXPECT_EQ(pairing(c, p, q), oracle);
  EXPECT_EQ(PairingPrecomp(c, p).pairing_with(q), oracle);
}

}  // namespace
}  // namespace hcpp::curve
