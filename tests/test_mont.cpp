// Differential tests for the width-aware Montgomery engine: every MontCtx
// operation is checked against the plain mp::mod-based reference arithmetic
// at both deployed widths (n = 4 for the 256-bit test prime, n = 8 for the
// 512-bit production prime), on random, boundary and all-high-limb inputs.
// The lazy-reduction fp2_mul/fp2_sqr kernels and batch_inv are covered here
// too, independently of the Fp/Fp2 wrappers.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/cipher/drbg.h"
#include "src/curve/params.h"
#include "src/mp/mont.h"
#include "src/mp/prime.h"
#include "src/mp/u512.h"

namespace hcpp::mp {
namespace {

cipher::Drbg test_rng(std::string_view tag) {
  return cipher::Drbg(to_bytes(tag));
}

const U512& modulus_for(curve::ParamSet set) {
  return curve::params(set).p;
}

struct WidthCase {
  const char* name;
  U512 m;
  size_t expect_limbs;
};

std::vector<WidthCase> width_cases() {
  return {
      {"test-256", modulus_for(curve::ParamSet::kTest), 4},
      {"production-512", modulus_for(curve::ParamSet::kProduction), 8},
  };
}

// Interesting operand values for a modulus m: boundaries plus patterns that
// stress the carry chains of the fixed-width kernels.
std::vector<U512> boundary_values(const U512& m, size_t n) {
  U512 m_minus1;
  sub(m_minus1, m, U512::from_u64(1));
  U512 high;  // all active limbs saturated, reduced into range
  for (size_t i = 0; i < n; ++i) high.w[i] = ~0ull;
  high = mod(high, m);
  U512 top_limb;  // only the top active limb set
  top_limb.w[n - 1] = ~0ull;
  top_limb = mod(top_limb, m);
  return {U512{}, U512::from_u64(1), U512::from_u64(2), m_minus1, high,
          top_limb};
}

TEST(MontCtx, LimbCountFollowsModulusWidth) {
  for (const WidthCase& wc : width_cases()) {
    EXPECT_EQ(MontCtx(wc.m).limbs(), wc.expect_limbs) << wc.name;
  }
  // Odd widths fall through to the generic kernel.
  EXPECT_EQ(MontCtx(U512::from_u64(0xffffffffffffffc5ull)).limbs(), 1u);
  EXPECT_EQ(MontCtx(curve::params(curve::ParamSet::kTest).q).limbs(), 3u);
}

TEST(MontCtx, RoundTripAndMulMatchReference) {
  for (const WidthCase& wc : width_cases()) {
    MontCtx mont(wc.m);
    auto rng = test_rng("mont-mul");
    std::vector<U512> pool = boundary_values(wc.m, wc.expect_limbs);
    for (int i = 0; i < 40; ++i) {
      pool.push_back(random_below(wc.m, rng));
    }
    for (const U512& a : pool) {
      EXPECT_EQ(mont.from_mont(mont.to_mont(a)), a) << wc.name;
      for (const U512& b : pool) {
        U512 got =
            mont.from_mont(mont.mul(mont.to_mont(a), mont.to_mont(b)));
        EXPECT_EQ(got, mul_mod(a, b, wc.m)) << wc.name;
      }
    }
  }
}

TEST(MontCtx, ToMontReducesOutOfRangeInput) {
  for (const WidthCase& wc : width_cases()) {
    MontCtx mont(wc.m);
    // Values ≥ m (including limbs above the active width for the 256-bit
    // set) must be reduced, not truncated, on entry.
    U512 big;
    big.w.fill(~0ull);
    EXPECT_EQ(mont.from_mont(mont.to_mont(big)), mod(big, wc.m)) << wc.name;
    EXPECT_EQ(mont.from_mont(mont.to_mont(wc.m)), U512{}) << wc.name;
  }
}

TEST(MontCtx, AddSubSqrMatchReference) {
  for (const WidthCase& wc : width_cases()) {
    MontCtx mont(wc.m);
    auto rng = test_rng("mont-addsub");
    std::vector<U512> pool = boundary_values(wc.m, wc.expect_limbs);
    for (int i = 0; i < 40; ++i) pool.push_back(random_below(wc.m, rng));
    for (const U512& a : pool) {
      EXPECT_EQ(mont.from_mont(mont.sqr(mont.to_mont(a))),
                mul_mod(a, a, wc.m))
          << wc.name;
      for (const U512& b : pool) {
        EXPECT_EQ(mont.add(a, b), add_mod(a, b, wc.m)) << wc.name;
        EXPECT_EQ(mont.sub(a, b), sub_mod(a, b, wc.m)) << wc.name;
      }
    }
  }
}

TEST(MontCtx, PowMatchesSquareAndMultiply) {
  for (const WidthCase& wc : width_cases()) {
    MontCtx mont(wc.m);
    auto rng = test_rng("mont-pow");
    for (int i = 0; i < 10; ++i) {
      U512 base = random_below(wc.m, rng);
      U512 e = random_bits(96, rng);
      // Plain square-and-multiply over mul_mod as the oracle.
      U512 want = U512::from_u64(1);
      for (size_t bit = e.bit_length(); bit-- > 0;) {
        want = mul_mod(want, want, wc.m);
        if (e.bit(bit)) want = mul_mod(want, base, wc.m);
      }
      EXPECT_EQ(mont.from_mont(mont.pow(mont.to_mont(base), e)), want)
          << wc.name;
    }
    // Edge exponents.
    U512 base = random_below(wc.m, rng);
    EXPECT_EQ(mont.pow(mont.to_mont(base), U512{}), mont.one()) << wc.name;
    EXPECT_EQ(mont.from_mont(mont.pow(mont.to_mont(base), U512::from_u64(1))),
              base)
        << wc.name;
  }
}

TEST(MontCtx, InvMatchesInvMod) {
  for (const WidthCase& wc : width_cases()) {
    MontCtx mont(wc.m);
    auto rng = test_rng("mont-inv");
    for (int i = 0; i < 15; ++i) {
      U512 a = random_below(wc.m, rng);
      if (a.is_zero()) continue;
      U512 ainv = mont.from_mont(mont.inv(mont.to_mont(a)));
      EXPECT_EQ(ainv, inv_mod(a, wc.m)) << wc.name;
      EXPECT_EQ(mul_mod(a, ainv, wc.m), U512::from_u64(1)) << wc.name;
    }
  }
}

TEST(MontCtx, BatchInvMatchesPerElementInv) {
  for (const WidthCase& wc : width_cases()) {
    MontCtx mont(wc.m);
    auto rng = test_rng("mont-batch-inv");
    for (size_t count : {1u, 2u, 7u, 64u}) {
      std::vector<U512> xs;
      for (size_t i = 0; i < count; ++i) {
        U512 v = random_below(wc.m, rng);
        if (v.is_zero()) v = U512::from_u64(1);
        xs.push_back(mont.to_mont(v));
      }
      std::vector<U512> want;
      want.reserve(xs.size());
      for (const U512& x : xs) want.push_back(mont.inv(x));
      mont.batch_inv(xs);
      EXPECT_EQ(xs, want) << wc.name << " count=" << count;
    }
    // Empty span is a no-op.
    std::vector<U512> empty;
    mont.batch_inv(empty);
    EXPECT_TRUE(empty.empty());
  }
}

TEST(MontCtx, BatchInvThrowsOnZeroWithoutModifying) {
  const U512& m = modulus_for(curve::ParamSet::kTest);
  MontCtx mont(m);
  std::vector<U512> xs = {mont.to_mont(U512::from_u64(3)), U512{},
                          mont.to_mont(U512::from_u64(5))};
  std::vector<U512> before = xs;
  EXPECT_THROW(mont.batch_inv(xs), std::domain_error);
  EXPECT_EQ(xs, before);  // same contract as per-element inv()
}

// Reference F_{p^2} multiplication from first principles on plain values.
void ref_fp2_mul(U512& re, U512& im, const U512& ar, const U512& ai,
                 const U512& br, const U512& bi, const U512& m) {
  re = sub_mod(mul_mod(ar, br, m), mul_mod(ai, bi, m), m);
  im = add_mod(mul_mod(ar, bi, m), mul_mod(ai, br, m), m);
}

TEST(MontCtx, Fp2MulMatchesReference) {
  for (const WidthCase& wc : width_cases()) {
    MontCtx mont(wc.m);
    auto rng = test_rng("mont-fp2");
    std::vector<U512> pool = boundary_values(wc.m, wc.expect_limbs);
    for (int i = 0; i < 12; ++i) pool.push_back(random_below(wc.m, rng));
    for (size_t i = 0; i + 3 < pool.size(); ++i) {
      const U512 &ar = pool[i], &ai = pool[i + 1], &br = pool[i + 2],
                 &bi = pool[i + 3];
      U512 want_re, want_im;
      ref_fp2_mul(want_re, want_im, ar, ai, br, bi, wc.m);
      U512 got_re, got_im;
      mont.fp2_mul(got_re, got_im, mont.to_mont(ar), mont.to_mont(ai),
                   mont.to_mont(br), mont.to_mont(bi));
      EXPECT_EQ(mont.from_mont(got_re), want_re) << wc.name;
      EXPECT_EQ(mont.from_mont(got_im), want_im) << wc.name;
      // Squaring path, same operands.
      ref_fp2_mul(want_re, want_im, ar, ai, ar, ai, wc.m);
      mont.fp2_sqr(got_re, got_im, mont.to_mont(ar), mont.to_mont(ai));
      EXPECT_EQ(mont.from_mont(got_re), want_re) << wc.name;
      EXPECT_EQ(mont.from_mont(got_im), want_im) << wc.name;
    }
  }
}

TEST(MontCtx, Fp2OutputsAliasInputsSafely) {
  const U512& m = modulus_for(curve::ParamSet::kTest);
  MontCtx mont(m);
  auto rng = test_rng("mont-fp2-alias");
  U512 ar = mont.to_mont(random_below(m, rng));
  U512 ai = mont.to_mont(random_below(m, rng));
  U512 want_re, want_im;
  mont.fp2_mul(want_re, want_im, ar, ai, ar, ai);
  U512 x = ar, y = ai;
  mont.fp2_mul(x, y, x, y, x, y);  // outputs alias all inputs
  EXPECT_EQ(x, want_re);
  EXPECT_EQ(y, want_im);
  x = ar;
  y = ai;
  mont.fp2_sqr(x, y, x, y);
  EXPECT_EQ(x, want_re);
  EXPECT_EQ(y, want_im);
}

TEST(MontCtx, RejectsBadModulus) {
  EXPECT_THROW(MontCtx(U512::from_u64(8)), std::invalid_argument);  // even
  EXPECT_THROW(MontCtx(U512::from_u64(1)), std::invalid_argument);
  EXPECT_THROW(MontCtx(U512{}), std::invalid_argument);
}

}  // namespace
}  // namespace hcpp::mp
