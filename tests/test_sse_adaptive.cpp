// The adaptive SSE-2-style construction (§II.B's "more robust security
// notion" drop-in): correctness vs brute force, bound/padding behaviour,
// the trapdoor-size trade versus SSE-1, serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/cipher/drbg.h"
#include "src/core/record.h"
#include "src/sse/adaptive.h"

namespace hcpp::sse::adaptive {
namespace {

std::vector<PlainFile> sample_files(size_t n, std::string_view seed) {
  cipher::Drbg rng(to_bytes(seed));
  return core::generate_phi_collection(n, rng);
}

std::map<std::string, std::vector<FileId>> postings(
    std::span<const PlainFile> files) {
  std::map<std::string, std::vector<FileId>> out;
  for (const PlainFile& f : files) {
    for (const std::string& kw : f.keywords) out[kw].push_back(f.id);
  }
  return out;
}

class AdaptiveSize : public ::testing::TestWithParam<size_t> {};

TEST_P(AdaptiveSize, SearchMatchesBruteForce) {
  auto files = sample_files(GetParam(), "adp-bf");
  cipher::Drbg rng(to_bytes("adp-bf-rng"));
  Bytes key = rng.bytes(32);
  AdaptiveIndex index = build_index(files, key, rng);
  for (const auto& [kw, expected] : postings(files)) {
    std::vector<FileId> got =
        search(index, make_trapdoor(key, kw, index.bound));
    EXPECT_EQ(got, expected) << "keyword " << kw;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdaptiveSize,
                         ::testing::Values(1, 4, 16, 64, 200));

TEST(Adaptive, AbsentKeywordReturnsNothing) {
  auto files = sample_files(10, "adp-absent");
  cipher::Drbg rng(to_bytes("adp-absent-rng"));
  Bytes key = rng.bytes(32);
  AdaptiveIndex index = build_index(files, key, rng);
  EXPECT_TRUE(
      search(index, make_trapdoor(key, "no-such", index.bound)).empty());
}

TEST(Adaptive, WrongKeyFindsNothing) {
  auto files = sample_files(10, "adp-key");
  cipher::Drbg rng(to_bytes("adp-key-rng"));
  Bytes key = rng.bytes(32);
  Bytes other = rng.bytes(32);
  AdaptiveIndex index = build_index(files, key, rng);
  for (const auto& [kw, expected] : postings(files)) {
    EXPECT_TRUE(search(index, make_trapdoor(other, kw, index.bound)).empty());
  }
}

TEST(Adaptive, BoundIsPowerOfTwoCoveringLongestList) {
  auto files = sample_files(50, "adp-bound");
  cipher::Drbg rng(to_bytes("adp-bound-rng"));
  Bytes key = rng.bytes(32);
  AdaptiveIndex index = build_index(files, key, rng);
  uint32_t longest = 0;
  for (const auto& [kw, ids] : postings(files)) {
    longest = std::max<uint32_t>(longest, static_cast<uint32_t>(ids.size()));
  }
  EXPECT_GE(index.bound, longest);
  EXPECT_EQ(index.bound & (index.bound - 1), 0u);  // power of two
}

TEST(Adaptive, ExplicitBoundBelowLongestRejected) {
  auto files = sample_files(60, "adp-lowbound");
  cipher::Drbg rng(to_bytes("adp-lowbound-rng"));
  Bytes key = rng.bytes(32);
  EXPECT_THROW(build_index(files, key, rng, /*bound=*/1),
               std::invalid_argument);
}

TEST(Adaptive, PaddingAddsDummyEntries) {
  auto files = sample_files(30, "adp-pad");
  cipher::Drbg rng(to_bytes("adp-pad-rng"));
  Bytes key = rng.bytes(32);
  AdaptiveIndex tight = build_index(files, key, rng, 0, 1.0);
  AdaptiveIndex padded = build_index(files, key, rng, 0, 2.0);
  EXPECT_GE(padded.entries.size(), tight.entries.size() * 2 - 1);
  // Search still exact on the padded index.
  auto truth = postings(files);
  const auto& [kw, expected] = *truth.begin();
  EXPECT_EQ(search(padded, make_trapdoor(key, kw, padded.bound)), expected);
}

TEST(Adaptive, TrapdoorSizeIsLinearInBound) {
  // SSE-1 trapdoors are constant-size (60 bytes); SSE-2 trapdoors grow with
  // the postings cap — the trade §II.B alludes to and E1 measures.
  cipher::Drbg rng(to_bytes("adp-tdsize"));
  Bytes key = rng.bytes(32);
  size_t t4 = make_trapdoor(key, "kw", 4).to_bytes().size();
  size_t t64 = make_trapdoor(key, "kw", 64).to_bytes().size();
  EXPECT_GT(t64, 10 * t4);
  EXPECT_EQ(Trapdoor{}.address.size(), 0u);  // unrelated SSE-1 type intact
}

TEST(Adaptive, IndexSerializationRoundTrip) {
  auto files = sample_files(20, "adp-ser");
  cipher::Drbg rng(to_bytes("adp-ser-rng"));
  Bytes key = rng.bytes(32);
  AdaptiveIndex index = build_index(files, key, rng);
  AdaptiveIndex back = AdaptiveIndex::from_bytes(index.to_bytes());
  EXPECT_EQ(back.bound, index.bound);
  EXPECT_EQ(back.entries.size(), index.entries.size());
  for (const auto& [kw, expected] : postings(files)) {
    EXPECT_EQ(search(back, make_trapdoor(key, kw, back.bound)), expected);
  }
}

TEST(Adaptive, TrapdoorSerializationRoundTrip) {
  cipher::Drbg rng(to_bytes("adp-td-ser"));
  Bytes key = rng.bytes(32);
  AdaptiveTrapdoor td = make_trapdoor(key, "kw", 8);
  auto back = AdaptiveTrapdoor::from_bytes(td.to_bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->slots.size(), td.slots.size());
  EXPECT_EQ(back->slots[3], td.slots[3]);
  EXPECT_FALSE(AdaptiveTrapdoor::from_bytes(to_bytes("garbage")).has_value());
}

TEST(Adaptive, SameShapeDifferentContentIndexesIndistinguishableBySize) {
  auto a = sample_files(25, "adp-shape-a");
  auto b = sample_files(25, "adp-shape-b");
  cipher::Drbg rng(to_bytes("adp-shape-rng"));
  Bytes key = rng.bytes(32);
  AdaptiveIndex ia = build_index(a, key, rng, 64, 1.5);
  AdaptiveIndex ib = build_index(b, key, rng, 64, 1.5);
  // Entry *values* are uniformly 8-byte masked blobs in both.
  for (const auto& [label, value] : ia.entries) EXPECT_EQ(value.size(), 8u);
  for (const auto& [label, value] : ib.entries) EXPECT_EQ(value.size(), 8u);
}

}  // namespace
}  // namespace hcpp::sse::adaptive
