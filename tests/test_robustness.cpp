// Parser robustness: every deserializer must reject arbitrary byte soup by
// throwing or returning an error — never by crashing or accepting. This is
// the defensive surface an untrusted network exposes.
#include <gtest/gtest.h>

#include "src/be/broadcast.h"
#include "src/cipher/drbg.h"
#include "src/common/serialize.h"
#include "src/core/messages.h"
#include "src/core/record.h"
#include "src/curve/params.h"
#include "src/ibc/hibc.h"
#include "src/ibc/ibe.h"
#include "src/ibc/ibs.h"
#include "src/peks/peks.h"
#include "src/sse/adaptive.h"
#include "src/sse/sse.h"

namespace hcpp {
namespace {

const curve::CurveCtx& ctx() { return curve::params(curve::ParamSet::kTest); }

// Every parser applied to one blob; none may crash, UB-trip or hang.
void feed(BytesView blob) {
  auto swallow = [](auto&& fn) {
    try {
      fn();
    } catch (const std::exception&) {
      // rejection is the expected outcome
    }
  };
  swallow([&] { (void)curve::point_from_bytes(ctx(), blob); });
  swallow([&] { (void)curve::point_from_bytes_compressed(ctx(), blob); });
  swallow([&] { (void)ibc::IbeCiphertext::from_bytes(ctx(), blob); });
  swallow([&] { (void)ibc::IbeCcaCiphertext::from_bytes(ctx(), blob); });
  swallow([&] { (void)ibc::IbsSignature::from_bytes(ctx(), blob); });
  swallow([&] { (void)ibc::HibcCiphertext::from_bytes(ctx(), blob); });
  swallow([&] { (void)ibc::HibcSignature::from_bytes(ctx(), blob); });
  swallow([&] { (void)peks::PeksCiphertext::from_bytes(ctx(), blob); });
  swallow([&] { (void)peks::Trapdoor::from_bytes(ctx(), blob); });
  swallow([&] { (void)sse::SecureIndex::from_bytes(blob); });
  swallow([&] { (void)sse::EncryptedCollection::from_bytes(blob); });
  swallow([&] { (void)sse::Keys::from_bytes(blob); });
  swallow([&] { (void)sse::PlainFile::from_bytes(blob); });
  swallow([&] { (void)sse::Trapdoor::from_bytes(blob); });
  swallow([&] { (void)sse::adaptive::AdaptiveIndex::from_bytes(blob); });
  swallow([&] { (void)sse::adaptive::AdaptiveTrapdoor::from_bytes(blob); });
  swallow([&] { (void)be::MemberKeys::from_bytes(blob); });
  swallow([&] { (void)core::KeywordIndex::from_bytes(blob); });
  swallow([&] { (void)core::MhiWindow::from_bytes(blob); });
  swallow([&] { (void)core::RdRecord::from_bytes(blob); });
  swallow([&] { (void)core::StoreRequest::from_wire(blob); });
  swallow([&] { (void)core::RetrieveRequest::from_wire(blob); });
  swallow([&] { (void)core::RetrieveResponse::from_wire(blob); });
}

class RandomBlob : public ::testing::TestWithParam<int> {};

TEST_P(RandomBlob, ParsersNeverCrash) {
  cipher::Drbg rng(to_bytes("fuzz-" + std::to_string(GetParam())));
  // A spread of sizes, including empty and "looks almost right" lengths.
  for (size_t size : {0u, 1u, 4u, 8u, 16u, 60u, 64u, 65u, 129u, 512u}) {
    feed(rng.bytes(size));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBlob, ::testing::Range(0, 8));

TEST(TruncationFuzz, EveryPrefixOfValidEncodingsRejectsCleanly) {
  cipher::Drbg rng(to_bytes("fuzz-trunc"));
  ibc::Domain domain(ctx(), rng);
  // Valid encodings of several types.
  std::vector<Bytes> valid;
  valid.push_back(
      ibc::ibe_encrypt(domain.pub(), "id", to_bytes("m"), rng).to_bytes());
  valid.push_back(
      ibc::ibs_sign(ctx(), domain.extract("id"), "id", to_bytes("m"), rng)
          .to_bytes());
  valid.push_back(peks::peks_encrypt(domain.pub(), "r", "kw", rng).to_bytes());
  sse::Keys keys = sse::Keys::generate(rng);
  auto files = core::generate_phi_collection(4, rng);
  valid.push_back(sse::build_index(files, keys, rng).to_bytes());
  valid.push_back(keys.to_bytes());
  for (const Bytes& enc : valid) {
    // Chop at a sampling of prefixes, including off-by-one boundaries.
    for (size_t cut = 0; cut < enc.size();
         cut += std::max<size_t>(1, enc.size() / 23)) {
      feed(BytesView(enc).subspan(0, cut));
    }
  }
}

TEST(MutationFuzz, BitFlippedEncodingsNeverCrash) {
  cipher::Drbg rng(to_bytes("fuzz-flip"));
  ibc::Domain domain(ctx(), rng);
  Bytes enc =
      ibc::ibe_encrypt(domain.pub(), "id", to_bytes("msg"), rng).to_bytes();
  for (size_t i = 0; i < enc.size(); i += 3) {
    Bytes mutated = enc;
    mutated[i] ^= static_cast<uint8_t>(1 + (i % 255));
    feed(mutated);
    // If it still parses, decryption must reject rather than return junk.
    try {
      ibc::IbeCiphertext ct = ibc::IbeCiphertext::from_bytes(ctx(), mutated);
      EXPECT_THROW((void)ibc::ibe_decrypt(ctx(), domain.extract("id"), ct),
                   cipher::AuthError);
    } catch (const std::exception&) {
      // parse-time rejection also fine
    }
  }
}

// A length prefix promising far more elements than the blob could possibly
// hold must be rejected before any allocation happens — a 16-byte message
// must never trigger a multi-gigabyte reserve() (untrusted-length DoS).
TEST(LengthGuard, HugeCountsRejectBeforeAllocating) {
  io::Writer w;
  w.u64(0x0000FFFFFFFFFFFFull);  // SecureIndex: ~2^48 nodes "announced"
  EXPECT_THROW((void)sse::SecureIndex::from_bytes(w.data()),
               std::out_of_range);
  EXPECT_THROW((void)sse::EncryptedCollection::from_bytes(w.data()),
               std::out_of_range);

  io::Writer w32;
  w32.u32(0xFFFFFFFFu);  // u32-counted parsers
  EXPECT_THROW((void)core::KeywordIndex::from_bytes(w32.data()),
               std::out_of_range);
  EXPECT_THROW((void)be::MemberKeys::from_bytes(
                   [] {  // valid u64 index, absurd key count
                     io::Writer x;
                     x.u64(7);
                     x.u32(0xFFFFFFFFu);
                     return x.take();
                   }()),
               std::out_of_range);

  io::Writer mhi;
  mhi.str("day");
  mhi.u32(0xFFFFFFFFu);  // ~4G samples in a 11-byte blob
  EXPECT_THROW((void)core::MhiWindow::from_bytes(mhi.data()),
               std::out_of_range);
}

}  // namespace
}  // namespace hcpp
