// Hierarchical IBC (§IV.A): key derivation down the federal → state →
// hospital tree, encryption to identity paths, hierarchical signatures.
#include <gtest/gtest.h>

#include "src/cipher/drbg.h"
#include "src/curve/params.h"
#include "src/ibc/hibc.h"

namespace hcpp::ibc {
namespace {

const curve::CurveCtx& ctx() { return curve::params(curve::ParamSet::kTest); }

struct Tree {
  HibcNode root;
  HibcNode state_fl;
  HibcNode state_tn;
  HibcNode hospital_gainesville;
  HibcNode hospital_knoxville;
};

Tree make_tree(std::string_view seed) {
  cipher::Drbg rng(to_bytes(seed));
  Tree t{HibcNode::root(ctx(), rng),
         HibcNode::root(ctx(), rng),  // placeholder, reassigned below
         HibcNode::root(ctx(), rng),
         HibcNode::root(ctx(), rng),
         HibcNode::root(ctx(), rng)};
  t.state_fl = t.root.derive_child("florida", rng);
  t.state_tn = t.root.derive_child("tennessee", rng);
  t.hospital_gainesville = t.state_fl.derive_child("shands-gainesville", rng);
  t.hospital_knoxville = t.state_tn.derive_child("ut-medical", rng);
  return t;
}

TEST(Hibc, PathsAndDepths) {
  Tree t = make_tree("hibc-paths");
  EXPECT_EQ(t.root.depth(), 0u);
  EXPECT_EQ(t.state_fl.depth(), 1u);
  EXPECT_EQ(t.hospital_gainesville.depth(), 2u);
  EXPECT_EQ(t.hospital_gainesville.path(),
            (std::vector<std::string>{"florida", "shands-gainesville"}));
}

TEST(Hibc, EncryptToLevel1) {
  Tree t = make_tree("hibc-l1");
  cipher::Drbg rng(to_bytes("hibc-l1-rng"));
  std::vector<std::string> path = {"florida"};
  Bytes msg = to_bytes("to the state A-server");
  HibcCiphertext ct =
      hibc_encrypt(t.root.public_params(), path, msg, rng);
  EXPECT_EQ(hibc_decrypt(t.state_fl, ct), msg);
}

TEST(Hibc, EncryptToLevel2AcrossStates) {
  Tree t = make_tree("hibc-l2");
  cipher::Drbg rng(to_bytes("hibc-l2-rng"));
  // A Tennessee patient encrypts to a Florida hospital knowing only the
  // federal root parameters — the availability property of §V.A.
  std::vector<std::string> path = {"florida", "shands-gainesville"};
  Bytes msg = to_bytes("cross-domain PHI session request");
  HibcCiphertext ct =
      hibc_encrypt(t.root.public_params(), path, msg, rng);
  EXPECT_EQ(hibc_decrypt(t.hospital_gainesville, ct), msg);
}

TEST(Hibc, WrongNodeCannotDecrypt) {
  Tree t = make_tree("hibc-wrong");
  cipher::Drbg rng(to_bytes("hibc-wrong-rng"));
  std::vector<std::string> path = {"florida", "shands-gainesville"};
  HibcCiphertext ct =
      hibc_encrypt(t.root.public_params(), path, to_bytes("m"), rng);
  EXPECT_THROW(hibc_decrypt(t.hospital_knoxville, ct), cipher::AuthError);
  // Depth mismatch is also rejected.
  EXPECT_THROW(hibc_decrypt(t.state_fl, ct), cipher::AuthError);
}

TEST(Hibc, ParentCannotDecryptChildTraffic) {
  // GS-HIBE descendants-only: the state can derive the hospital's key, but
  // the *sibling* state cannot; the direct parent CAN by re-deriving. What
  // must hold is that an unrelated node fails, covered above; here we check
  // a deeper chain decrypts only at the exact leaf.
  Tree t = make_tree("hibc-deep");
  cipher::Drbg rng(to_bytes("hibc-deep-rng"));
  HibcNode ward = t.hospital_gainesville.derive_child("cardiology", rng);
  std::vector<std::string> path = {"florida", "shands-gainesville",
                                   "cardiology"};
  HibcCiphertext ct =
      hibc_encrypt(t.root.public_params(), path, to_bytes("deep"), rng);
  EXPECT_EQ(hibc_decrypt(ward, ct), to_bytes("deep"));
  EXPECT_THROW(hibc_decrypt(t.hospital_gainesville, ct), cipher::AuthError);
}

TEST(Hibc, RootCannotDecryptDirectly) {
  Tree t = make_tree("hibc-root");
  cipher::Drbg rng(to_bytes("hibc-root-rng"));
  std::vector<std::string> path = {"florida"};
  HibcCiphertext ct =
      hibc_encrypt(t.root.public_params(), path, to_bytes("m"), rng);
  EXPECT_THROW(hibc_decrypt(t.root, ct), std::invalid_argument);
}

TEST(Hibc, EmptyPathRejected) {
  Tree t = make_tree("hibc-empty");
  cipher::Drbg rng(to_bytes("hibc-empty-rng"));
  EXPECT_THROW(hibc_encrypt(t.root.public_params(), {}, to_bytes("m"), rng),
               std::invalid_argument);
}

TEST(Hibc, CiphertextSerializationRoundTrip) {
  Tree t = make_tree("hibc-ser");
  cipher::Drbg rng(to_bytes("hibc-ser-rng"));
  std::vector<std::string> path = {"florida", "shands-gainesville"};
  HibcCiphertext ct =
      hibc_encrypt(t.root.public_params(), path, to_bytes("m"), rng);
  HibcCiphertext back = HibcCiphertext::from_bytes(ctx(), ct.to_bytes());
  EXPECT_EQ(hibc_decrypt(t.hospital_gainesville, back), to_bytes("m"));
  EXPECT_EQ(ct.size(), ct.to_bytes().size());
}

TEST(Hibc, TamperedCiphertextRejected) {
  Tree t = make_tree("hibc-tamper");
  cipher::Drbg rng(to_bytes("hibc-tamper-rng"));
  std::vector<std::string> path = {"florida"};
  HibcCiphertext ct =
      hibc_encrypt(t.root.public_params(), path, to_bytes("m"), rng);
  ct.box[0] ^= 1;
  EXPECT_THROW(hibc_decrypt(t.state_fl, ct), cipher::AuthError);
}

TEST(HibcSig, SignVerifyAtEachDepth) {
  Tree t = make_tree("hibs-sv");
  Bytes msg = to_bytes("signed by the hierarchy");
  {
    HibcSignature sig = hibc_sign(t.state_fl, msg);
    std::vector<std::string> path = {"florida"};
    EXPECT_TRUE(hibc_verify(t.root.public_params(), path, msg, sig));
  }
  {
    HibcSignature sig = hibc_sign(t.hospital_knoxville, msg);
    std::vector<std::string> path = {"tennessee", "ut-medical"};
    EXPECT_TRUE(hibc_verify(t.root.public_params(), path, msg, sig));
  }
}

TEST(HibcSig, RejectsWrongMessagePathOrSignature) {
  Tree t = make_tree("hibs-neg");
  Bytes msg = to_bytes("m");
  HibcSignature sig = hibc_sign(t.hospital_gainesville, msg);
  std::vector<std::string> right = {"florida", "shands-gainesville"};
  std::vector<std::string> wrong = {"florida", "other-hospital"};
  EXPECT_TRUE(hibc_verify(t.root.public_params(), right, msg, sig));
  EXPECT_FALSE(hibc_verify(t.root.public_params(), right, to_bytes("x"), sig));
  EXPECT_FALSE(hibc_verify(t.root.public_params(), wrong, msg, sig));
  HibcSignature bad = sig;
  bad.sigma = curve::add(ctx(), bad.sigma, curve::generator(ctx()));
  EXPECT_FALSE(hibc_verify(t.root.public_params(), right, msg, bad));
}

TEST(HibcSig, SerializationRoundTrip) {
  Tree t = make_tree("hibs-ser");
  Bytes msg = to_bytes("m");
  HibcSignature sig = hibc_sign(t.state_tn, msg);
  HibcSignature back = HibcSignature::from_bytes(ctx(), sig.to_bytes());
  std::vector<std::string> path = {"tennessee"};
  EXPECT_TRUE(hibc_verify(t.root.public_params(), path, msg, back));
}

}  // namespace
}  // namespace hcpp::ibc
