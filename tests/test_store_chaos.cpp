// Store crash chaos: seeded random workloads with aggressive segment rolling
// and periodic compaction, checked against an in-memory differential oracle
// at filesystem-snapshot crash points, plus a real fork+SIGKILL process kill
// whose survivor state must be a consistent prefix of the issued operations.
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <map>

#include <sys/wait.h>
#include <unistd.h>

#include "src/cipher/drbg.h"
#include "src/common/serialize.h"
#include "src/hash/sha256.h"
#include "src/store/store.h"

namespace hcpp::store {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  fs::path p = fs::temp_directory_path() / ("hcpp-store-chaos-" + name);
  fs::remove_all(p);
  return p;
}

using Oracle = std::map<std::string, Bytes>;

void expect_matches(const AccountStore& st, const Oracle& oracle) {
  ASSERT_EQ(st.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    auto got = st.get(k);
    ASSERT_TRUE(got.has_value()) << k;
    EXPECT_EQ(*got, v) << k;
  }
}

/// Deterministic value for sequenced op `i` — both the workload and the
/// post-crash verifier derive it independently.
Bytes crash_value(uint64_t i) {
  io::Writer w;
  w.str("store-chaos-value");
  w.u64(i);
  return hash::sha256_bytes(w.data());
}

std::string crash_key(uint64_t i) {
  return "acct-" + std::to_string(i % 37);
}

// Seeded random workload against small segments with periodic compactions;
// the oracle must match the store continuously, after a reopen, and at
// snapshot-restore "crash points" taken mid-workload.
TEST(StoreChaos, RandomWorkloadWithSnapshotsMatchesOracle) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    fs::path dir = fresh_dir("workload-" + std::to_string(seed));
    StoreOptions opt;
    opt.segment_bytes = 700;  // roll every few frames
    cipher::Drbg rng(to_bytes("store-chaos-" + std::to_string(seed)));
    Oracle oracle;
    std::vector<std::pair<fs::path, Oracle>> snapshots;
    {
      AccountStore st = AccountStore::open(dir.string(), opt);
      for (int op = 0; op < 400; ++op) {
        uint8_t dice = rng.bytes(1)[0];
        std::string key =
            "acct-" + std::to_string(rng.bytes(1)[0] % 23);
        if (dice < 170) {
          Bytes value = rng.bytes(16 + (dice % 48));
          ASSERT_TRUE(st.put(key, value));
          oracle[key] = value;
        } else if (dice < 220) {
          bool there = oracle.contains(key);
          EXPECT_EQ(st.erase(key), there);
          oracle.erase(key);
        } else if (dice < 240) {
          auto got = st.get(key);
          auto want = oracle.find(key);
          ASSERT_EQ(got.has_value(), want != oracle.end());
          if (got.has_value()) {
            EXPECT_EQ(*got, want->second);
          }
        } else if (dice < 250) {
          CompactionReport rep = st.compact();
          EXPECT_EQ(rep.live_records, oracle.size());
          expect_matches(st, oracle);
        } else {
          // Crash point: snapshot the directory exactly as it is on disk.
          fs::path snap = fresh_dir("snap-" + std::to_string(seed) + "-" +
                                    std::to_string(op));
          fs::copy(dir, snap, fs::copy_options::recursive);
          snapshots.emplace_back(std::move(snap), oracle);
        }
      }
      expect_matches(st, oracle);
      EXPECT_TRUE(st.self_check());
    }
    // Reopen the final state...
    {
      AccountStore st = AccountStore::open(dir.string(), opt);
      expect_matches(st, oracle);
      EXPECT_TRUE(st.self_check());
    }
    // ...and every crash point, including garbage-tail variants.
    ASSERT_FALSE(snapshots.empty());
    for (auto& [snap, snap_oracle] : snapshots) {
      {
        AccountStore st = AccountStore::open(snap.string(), opt);
        expect_matches(st, snap_oracle);
      }
      // A torn append on top of the crash point must change nothing.
      uint32_t newest = 0;
      for (const auto& e : fs::directory_iterator(snap)) {
        if (auto id = Segment::id_from_name(e.path().filename().string())) {
          newest = std::max(newest, *id);
        }
      }
      {
        std::ofstream f(snap / Segment::file_name(newest),
                        std::ios::binary | std::ios::app);
        f << "R\x00\x00\x00\x40partial-frame-the-crash-cut-short";
      }
      StoreRecoveryReport rec;
      AccountStore st = AccountStore::open(snap.string(), opt, &rec);
      EXPECT_TRUE(rec.tail_discarded);
      expect_matches(st, snap_oracle);
      fs::remove_all(snap);
    }
    fs::remove_all(dir);
  }
}

// Corrupting bytes inside an already-acked frame is detected, not silently
// served: recovery drops the frame (and everything after it in that
// segment), never returns wrong bytes.
TEST(StoreChaos, CorruptedFrameNeverServed) {
  fs::path dir = fresh_dir("corrupt");
  Oracle oracle;
  {
    AccountStore st = AccountStore::open(dir.string());
    for (uint64_t i = 0; i < 20; ++i) {
      oracle[crash_key(i)] = crash_value(i);
      ASSERT_TRUE(st.put(crash_key(i), crash_value(i)));
    }
  }
  fs::path seg = dir / Segment::file_name(0);
  auto size = fs::file_size(seg);
  // Flip one byte two-thirds in (inside some frame's body).
  {
    std::fstream f(seg, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size * 2 / 3));
    char c{};
    f.get(c);
    f.seekp(static_cast<std::streamoff>(size * 2 / 3));
    f.put(static_cast<char>(c ^ 0x5a));
  }
  StoreRecoveryReport rec;
  AccountStore st = AccountStore::open(dir.string(), {}, &rec);
  EXPECT_TRUE(rec.tail_discarded);
  EXPECT_GT(rec.torn_bytes, 0u);
  // Whatever survived is a strict prefix of the oracle's history: every
  // surviving key maps to a value some prefix op wrote.
  for (const std::string& key : st.keys()) {
    auto got = st.get(key);
    ASSERT_TRUE(got.has_value());
    bool matches_some_op = false;
    for (uint64_t i = 0; i < 20 && !matches_some_op; ++i) {
      matches_some_op = (crash_key(i) == key && crash_value(i) == *got);
    }
    EXPECT_TRUE(matches_some_op) << key;
  }
  EXPECT_TRUE(st.self_check());
  fs::remove_all(dir);
}

// Real process kill: the child appends the deterministic sequence as fast as
// it can; SIGKILL lands at an arbitrary moment. The survivor's last_version
// says how many ops became durable — replaying exactly that many into a map
// must reproduce the store byte for byte (prefix consistency: no holes, no
// reordering, no partial frames).
TEST(StoreChaos, ForkKillRecoversConsistentPrefix) {
  for (int round = 0; round < 3; ++round) {
    fs::path dir = fresh_dir("kill-" + std::to_string(round));
    fs::create_directories(dir);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: append until killed. _exit on any failure so gtest state in
      // the forked copy never reports.
      try {
        StoreOptions opt;
        opt.segment_bytes = 4096;
        AccountStore st = AccountStore::open(dir.string(), opt);
        for (uint64_t i = 1; i <= 200000; ++i) {
          if (!st.put(crash_key(i), crash_value(i))) _exit(2);
        }
      } catch (...) {
        _exit(3);
      }
      _exit(0);
    }
    ::usleep(10000 + 17000 * round);  // let a varying amount of work happen
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    StoreRecoveryReport rec;
    AccountStore st = AccountStore::open(dir.string(), {}, &rec);
    uint64_t m = rec.last_version;
    ASSERT_GT(m, 0u) << "child was killed before any op landed";
    Oracle oracle;
    for (uint64_t i = 1; i <= m; ++i) oracle[crash_key(i)] = crash_value(i);
    expect_matches(st, oracle);
    EXPECT_TRUE(st.self_check());
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace hcpp::store
