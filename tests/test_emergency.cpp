// §IV.E emergency flows: family-based and P-device-based retrieval, access
// control (on-duty check, passcode), fail-open, and the §VI.A alerting
// countermeasure.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/cluster.h"
#include "src/core/setup.h"
#include "src/sim/transport.h"

namespace hcpp::core {
namespace {

DeploymentConfig small_config(uint64_t seed) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 10;
  cfg.seed = seed;
  return cfg;
}

TEST(FamilyEmergency, RetrievesMatchingFiles) {
  Deployment d = Deployment::create(small_config(1));
  const KeywordIndex& ki = d.patient->keyword_index();
  const auto& [kw, expected] = *ki.entries.begin();
  std::vector<std::string> kws = {kw};
  std::vector<sse::PlainFile> got = d.family->emergency_retrieve(*d.sserver,
                                                                 kws);
  std::vector<sse::FileId> got_ids;
  for (const sse::PlainFile& f : got) got_ids.push_back(f.id);
  std::sort(got_ids.begin(), got_ids.end());
  std::vector<sse::FileId> want = expected;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got_ids, want);
}

TEST(FamilyEmergency, FourMessagesOnTheWire) {
  Deployment d = Deployment::create(small_config(2));
  d.net->reset_stats();
  std::vector<std::string> kws = {d.all_keywords().front()};
  (void)d.family->emergency_retrieve(*d.sserver, kws);
  uint64_t total = d.net->stats("emergency-be-request").messages +
                   d.net->stats("emergency-privileged-retrieval").messages;
  EXPECT_EQ(total, 4u);  // §IV.E.1's four-message exchange
}

TEST(FamilyEmergency, WithoutBundleReturnsNothing) {
  Deployment d = Deployment::create(small_config(3));
  Family stranger(*d.net, "stranger");
  std::vector<std::string> kws = {d.all_keywords().front()};
  EXPECT_TRUE(stranger.emergency_retrieve(*d.sserver, kws).empty());
}

TEST(PDeviceEmergency, FullFlowSucceeds) {
  Deployment d = Deployment::create(small_config(4));
  d.pdevice->press_emergency_button();
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
  ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
  std::vector<std::string> kws = {d.all_keywords().front()};
  std::vector<sse::PlainFile> got =
      d.pdevice->emergency_retrieve(*d.sserver, kws);
  EXPECT_FALSE(got.empty());
  // RD was recorded and the patient got an alert.
  ASSERT_EQ(d.pdevice->records().size(), 1u);
  EXPECT_EQ(d.pdevice->records()[0].physician_id, d.on_duty->id());
  EXPECT_EQ(d.pdevice->records()[0].keywords, kws);
  EXPECT_EQ(d.pdevice->alert_count(), 1);
  // TR was recorded at the A-server.
  ASSERT_EQ(d.aserver->traces().size(), 1u);
  EXPECT_EQ(d.aserver->traces()[0].physician_id, d.on_duty->id());
}

TEST(PDeviceEmergency, OffDutyPhysicianDenied) {
  Deployment d = Deployment::create(small_config(5));
  d.pdevice->press_emergency_button();
  auto pass = d.off_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  EXPECT_FALSE(pass.has_value());
  EXPECT_TRUE(d.aserver->traces().empty());
}

TEST(PDeviceEmergency, UnknownPhysicianDenied) {
  Deployment d = Deployment::create(small_config(6));
  // Enrolled in the domain but never signed in as on duty.
  Physician mallory(*d.net, *d.aserver, "dr-mallory");
  d.pdevice->press_emergency_button();
  EXPECT_FALSE(
      mallory.request_passcode(*d.aserver, d.patient->tp_bytes()).has_value());
}

TEST(PDeviceEmergency, WrongPasscodeRejectedAndBurnsAttempt) {
  Deployment d = Deployment::create(small_config(7));
  d.pdevice->press_emergency_button();
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
  Bytes wrong = pass->nonce;
  wrong[0] ^= 1;
  EXPECT_FALSE(d.pdevice->enter_passcode(d.on_duty->id(), wrong));
  // The passcode is one-shot: even the right value fails now.
  EXPECT_FALSE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
  std::vector<std::string> kws = {d.all_keywords().front()};
  EXPECT_TRUE(d.pdevice->emergency_retrieve(*d.sserver, kws).empty());
}

TEST(PDeviceEmergency, PasscodeBoundToPhysicianIdentity) {
  Deployment d = Deployment::create(small_config(8));
  d.pdevice->press_emergency_button();
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
  // A different physician typing the stolen nonce is rejected.
  EXPECT_FALSE(d.pdevice->enter_passcode("dr-off-duty", pass->nonce));
}

TEST(PDeviceEmergency, RequiresEmergencyMode) {
  Deployment d = Deployment::create(small_config(9));
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  // Button never pressed: the device ignores the delivery.
  EXPECT_FALSE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
}

TEST(PDeviceEmergency, SessionIsOneShot) {
  Deployment d = Deployment::create(small_config(10));
  d.pdevice->press_emergency_button();
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
  ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
  std::vector<std::string> kws = {d.all_keywords().front()};
  EXPECT_FALSE(d.pdevice->emergency_retrieve(*d.sserver, kws).empty());
  // Second retrieval without a fresh passcode fails.
  EXPECT_TRUE(d.pdevice->emergency_retrieve(*d.sserver, kws).empty());
}

TEST(PDeviceEmergency, NonDictionaryKeywordsFiltered) {
  Deployment d = Deployment::create(small_config(11));
  d.pdevice->press_emergency_button();
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
  ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
  std::vector<std::string> kws = {"not-in-dictionary",
                                  d.all_keywords().front()};
  std::vector<sse::PlainFile> got =
      d.pdevice->emergency_retrieve(*d.sserver, kws);
  EXPECT_FALSE(got.empty());
  // The RD records only the dictionary-validated keyword.
  ASSERT_EQ(d.pdevice->records().size(), 1u);
  EXPECT_EQ(d.pdevice->records()[0].keywords,
            std::vector<std::string>{d.all_keywords().front()});
}

TEST(PDeviceEmergency, RevokedDeviceFailsOpenClosed) {
  // §VI.A: patient notices the loss and revokes; the stolen device can still
  // obtain passcodes but the S-server rejects its stale-d trapdoors.
  Deployment d = Deployment::create(small_config(12));
  ASSERT_TRUE(d.patient->revoke_member(*d.sserver, kPDeviceSlot));
  d.pdevice->press_emergency_button();
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
  ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
  std::vector<std::string> kws = {d.all_keywords().front()};
  EXPECT_TRUE(d.pdevice->emergency_retrieve(*d.sserver, kws).empty());
}

TEST(AServerFailover, ReplicaServesWhenPrimaryIsDown) {
  // §VI.D: the A-server role split across local offices; the transport dials
  // the next office automatically when one is DoS'd (no first_available
  // polling). Replicas share the domain, so the passcode a replica issues
  // still decrypts at the P-device.
  sim::Network net;
  cipher::Drbg rng(to_bytes("failover"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  AServerCluster cluster(net, ctx, "state-a", 3, rng);
  cluster.set_on_duty("dr-er", true);

  SServer sserver(net, cluster.replica(0), "hosp");
  Patient patient(net, "pat", rng);
  patient.setup(cluster.replica(0), "hosp");
  patient.add_files(generate_phi_collection(6, patient.rng()));
  ASSERT_TRUE(patient.store_phi(sserver));
  PDevice pdevice(net, "pdev", rng);
  Bytes mu = rng.bytes(32);
  ASSERT_TRUE(assign_privilege(patient, pdevice, mu));
  Physician er(net, cluster.replica(0), "dr-er");

  // Attack: offices 0 and 1 go down. Keep the per-office budget small so
  // the failover walk is quick.
  cluster.set_up(0, false);
  cluster.set_up(1, false);
  sim::RetryPolicy quick;
  quick.max_attempts = 2;
  net.transport().set_policy(quick);

  pdevice.press_emergency_button();
  size_t office = 99;
  Result<Physician::PasscodeResult> pass =
      er.request_passcode(cluster, patient.tp_bytes(), &office);
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(office, 2u);
  ASSERT_TRUE(pdevice.deliver_passcode(cluster.replica(office),
                                       pass.value().for_device));
  ASSERT_TRUE(pdevice.enter_passcode("dr-er", pass.value().nonce));
  std::vector<std::string> kws = {
      patient.keyword_index().dictionary().front()};
  EXPECT_FALSE(pdevice.emergency_retrieve(sserver, kws).empty());
  // The trace landed at the replica and the cluster-wide view finds it.
  EXPECT_EQ(cluster.all_traces().size(), 1u);
  EXPECT_EQ(cluster.all_traces()[0].physician_id, "dr-er");
}

TEST(AServerFailover, AllOfficesDownMeansNoAuthority) {
  // Legacy manual-polling path (deprecated, kept working): first_available
  // still reports outages for callers that have not migrated.
  sim::Network net;
  cipher::Drbg rng(to_bytes("failover-all"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  AServerCluster cluster(net, ctx, "state-a", 2, rng);
  cluster.set_up(0, false);
  cluster.set_up(1, false);
  EXPECT_EQ(cluster.first_available(), nullptr);
  cluster.set_up(1, true);
  ASSERT_NE(cluster.first_available(), nullptr);
}

TEST(AServerFailover, ReplicasShareDutyRegistry) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("failover-duty"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  AServerCluster cluster(net, ctx, "state-a", 3, rng);
  cluster.set_on_duty("dr-x", true);
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.replica(i).is_on_duty("dr-x"));
  }
  cluster.set_on_duty("dr-x", false);
  for (size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_FALSE(cluster.replica(i).is_on_duty("dr-x"));
  }
}

TEST(PDeviceEmergency, FailOpenWhenFamilyAbsent) {
  // The fail-open requirement (§III.C): the P-device path succeeds with no
  // patient and no family participation at all.
  Deployment d = Deployment::create(small_config(13));
  d.pdevice->press_emergency_button();
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
  ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
  std::vector<std::string> all = d.all_keywords();
  std::vector<sse::PlainFile> got =
      d.pdevice->emergency_retrieve(*d.sserver, all);
  EXPECT_EQ(got.size(), d.patient->files().size());
}

}  // namespace
}  // namespace hcpp::core
