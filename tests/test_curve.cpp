// Group-law and encoding tests for the supersingular curve G1.
#include <gtest/gtest.h>

#include "src/cipher/drbg.h"
#include "src/curve/params.h"
#include "src/mp/prime.h"

namespace hcpp::curve {
namespace {

const CurveCtx& ctx() { return params(ParamSet::kTest); }

TEST(Curve, ParamsAreConsistent) {
  const CurveCtx& c = ctx();
  // p ≡ 3 (mod 4)
  EXPECT_EQ(c.p.w[0] & 3, 3u);
  // q · cofactor == p + 1
  mp::U1024 wide;
  mp::mul_wide(wide, c.q, c.cofactor);
  mp::U512 prod;
  for (size_t i = 0; i < mp::kLimbs; ++i) prod.w[i] = wide[i];
  mp::U512 p_plus1;
  mp::add(p_plus1, c.p, mp::U512::from_u64(1));
  EXPECT_EQ(prod, p_plus1);
}

TEST(Curve, GeneratorOnCurveWithOrderQ) {
  Point g = generator(ctx());
  EXPECT_TRUE(on_curve(ctx(), g));
  EXPECT_FALSE(g.infinity);
  EXPECT_TRUE(mul(ctx(), g, ctx().q).infinity);
  EXPECT_FALSE(mul(ctx(), g, mp::U512::from_u64(1)).infinity);
}

TEST(Curve, GroupLaws) {
  cipher::Drbg rng(to_bytes("curve-laws"));
  Point g = generator(ctx());
  Point p = mul(ctx(), g, random_scalar(ctx(), rng));
  Point q = mul(ctx(), g, random_scalar(ctx(), rng));
  Point r = mul(ctx(), g, random_scalar(ctx(), rng));
  // Commutativity and associativity.
  EXPECT_EQ(add(ctx(), p, q), add(ctx(), q, p));
  EXPECT_EQ(add(ctx(), add(ctx(), p, q), r), add(ctx(), p, add(ctx(), q, r)));
  // Identity and inverse.
  EXPECT_EQ(add(ctx(), p, Point::at_infinity()), p);
  EXPECT_TRUE(add(ctx(), p, negate(p)).infinity);
  // Doubling matches addition with itself.
  EXPECT_EQ(dbl(ctx(), p), add(ctx(), p, p));
}

TEST(Curve, ScalarMulMatchesRepeatedAddition) {
  Point g = generator(ctx());
  Point acc = Point::at_infinity();
  for (uint64_t k = 0; k <= 8; ++k) {
    EXPECT_EQ(mul(ctx(), g, mp::U512::from_u64(k)), acc) << "k=" << k;
    acc = add(ctx(), acc, g);
  }
}

TEST(Curve, ScalarMulDistributes) {
  cipher::Drbg rng(to_bytes("curve-dist"));
  Point g = generator(ctx());
  mp::U512 a = random_scalar(ctx(), rng);
  mp::U512 b = random_scalar(ctx(), rng);
  mp::U512 ab = mp::add_mod(a, b, ctx().q);
  EXPECT_EQ(mul(ctx(), g, ab),
            add(ctx(), mul(ctx(), g, a), mul(ctx(), g, b)));
  // (a·b)·G == a·(b·G)
  mp::U512 prod = mp::mul_mod(a, b, ctx().q);
  EXPECT_EQ(mul(ctx(), g, prod), mul(ctx(), mul(ctx(), g, b), a));
}

TEST(Curve, MulByZeroAndInfinity) {
  Point g = generator(ctx());
  EXPECT_TRUE(mul(ctx(), g, mp::U512{}).infinity);
  EXPECT_TRUE(mul(ctx(), Point::at_infinity(), mp::U512::from_u64(5)).infinity);
}

TEST(Curve, HashToPointLandsInSubgroup) {
  for (const char* id : {"alice", "bob", "dr-carol", ""}) {
    Point h = hash_to_point(ctx(), to_bytes(id));
    EXPECT_TRUE(on_curve(ctx(), h));
    EXPECT_FALSE(h.infinity);
    EXPECT_TRUE(mul(ctx(), h, ctx().q).infinity);
  }
}

TEST(Curve, HashToPointIsDeterministicAndSeparated) {
  Point a1 = hash_to_point(ctx(), to_bytes("alice"));
  Point a2 = hash_to_point(ctx(), to_bytes("alice"));
  Point b = hash_to_point(ctx(), to_bytes("bob"));
  Point a_other_tag = hash_to_point(ctx(), to_bytes("alice"), "other-tag");
  EXPECT_EQ(a1, a2);
  EXPECT_FALSE(a1 == b);
  EXPECT_FALSE(a1 == a_other_tag);
}

TEST(Curve, HashToScalarInRange) {
  for (const char* kw : {"day:2011-04-12", "x", ""}) {
    mp::U512 s = hash_to_scalar(ctx(), to_bytes(kw));
    EXPECT_FALSE(s.is_zero());
    EXPECT_LT(s, ctx().q);
  }
}

TEST(Curve, PointSerializationRoundTrip) {
  cipher::Drbg rng(to_bytes("curve-ser"));
  Point p = mul(ctx(), generator(ctx()), random_scalar(ctx(), rng));
  Bytes enc = point_to_bytes(p);
  EXPECT_EQ(enc.size(), 1u + 128u);
  EXPECT_EQ(point_from_bytes(ctx(), enc), p);
  // Infinity encodes to a single byte.
  Bytes inf = point_to_bytes(Point::at_infinity());
  EXPECT_EQ(inf.size(), 1u);
  EXPECT_TRUE(point_from_bytes(ctx(), inf).infinity);
}

TEST(Curve, PointDeserializationRejectsGarbage) {
  EXPECT_THROW(point_from_bytes(ctx(), Bytes{}), std::invalid_argument);
  Bytes bad(1 + 128, 0x01);
  EXPECT_THROW(point_from_bytes(ctx(), bad), std::invalid_argument);
  // Off-curve point: valid layout, wrong y.
  Point p = generator(ctx());
  Bytes enc = point_to_bytes(p);
  enc.back() ^= 1;
  EXPECT_THROW(point_from_bytes(ctx(), enc), std::invalid_argument);
}

TEST(Curve, WnafMatchesDoubleAndAdd) {
  cipher::Drbg rng(to_bytes("curve-wnaf"));
  Point g = generator(ctx());
  for (int i = 0; i < 10; ++i) {
    mp::U512 k = random_scalar(ctx(), rng);
    EXPECT_EQ(mul_wnaf(ctx(), g, k), mul(ctx(), g, k));
  }
  // Edge scalars.
  for (uint64_t k : {0ull, 1ull, 2ull, 15ull, 16ull, 17ull, 255ull}) {
    EXPECT_EQ(mul_wnaf(ctx(), g, mp::U512::from_u64(k)),
              mul(ctx(), g, mp::U512::from_u64(k)))
        << "k=" << k;
  }
  EXPECT_TRUE(mul_wnaf(ctx(), Point::at_infinity(), mp::U512::from_u64(3))
                  .infinity);
}

TEST(Curve, FixedBaseGeneratorMatchesGeneric) {
  cipher::Drbg rng(to_bytes("curve-fixedbase"));
  Point g = generator(ctx());
  for (int i = 0; i < 10; ++i) {
    mp::U512 k = random_scalar(ctx(), rng);
    EXPECT_EQ(mul_generator(ctx(), k), mul(ctx(), g, k));
  }
  EXPECT_TRUE(mul_generator(ctx(), mp::U512{}).infinity);
  EXPECT_EQ(mul_generator(ctx(), mp::U512::from_u64(1)), g);
  EXPECT_EQ(mul_generator(ctx(), ctx().q), Point::at_infinity());
  // Full-width scalars exercise every window.
  mp::U512 huge;
  huge.w.fill(0xfedcba9876543210ull);
  EXPECT_EQ(mul_generator(ctx(), huge), mul(ctx(), g, huge));
}

TEST(Curve, CompressedSerializationRoundTrip) {
  cipher::Drbg rng(to_bytes("curve-compress"));
  for (int i = 0; i < 8; ++i) {
    Point p = mul(ctx(), generator(ctx()), random_scalar(ctx(), rng));
    Bytes enc = point_to_bytes_compressed(p);
    EXPECT_EQ(enc.size(), 1u + 64u);  // half the uncompressed payload
    EXPECT_EQ(point_from_bytes_compressed(ctx(), enc), p);
  }
  Bytes inf = point_to_bytes_compressed(Point::at_infinity());
  EXPECT_EQ(inf.size(), 1u);
  EXPECT_TRUE(point_from_bytes_compressed(ctx(), inf).infinity);
}

TEST(Curve, CompressedRejectsNonPoints) {
  EXPECT_THROW(point_from_bytes_compressed(ctx(), Bytes{}),
               std::invalid_argument);
  Bytes bad(65, 0x00);
  bad[0] = 7;  // invalid flag
  EXPECT_THROW(point_from_bytes_compressed(ctx(), bad),
               std::invalid_argument);
  // An x with no square y: flip x until decompression fails.
  cipher::Drbg rng(to_bytes("curve-compress-bad"));
  int rejections = 0;
  for (int i = 0; i < 32 && rejections == 0; ++i) {
    Bytes candidate(65);
    candidate[0] = 2;
    Bytes x = mp::mod(mp::random_below(ctx().p, rng), ctx().p).to_bytes_be();
    std::copy(x.begin(), x.end(), candidate.begin() + 1);
    try {
      (void)point_from_bytes_compressed(ctx(), candidate);
    } catch (const std::invalid_argument&) {
      ++rejections;
    }
  }
  EXPECT_GT(rejections, 0);  // ~half of x values are non-residues
}

TEST(Curve, CompressedPreservesYParityChoice) {
  cipher::Drbg rng(to_bytes("curve-parity"));
  Point p = mul(ctx(), generator(ctx()), random_scalar(ctx(), rng));
  Point minus_p = negate(p);
  Bytes enc_p = point_to_bytes_compressed(p);
  Bytes enc_m = point_to_bytes_compressed(minus_p);
  EXPECT_NE(enc_p[0], enc_m[0]);  // parities differ, x identical
  EXPECT_TRUE(std::equal(enc_p.begin() + 1, enc_p.end(), enc_m.begin() + 1));
  EXPECT_EQ(point_from_bytes_compressed(ctx(), enc_m), minus_p);
}

TEST(Curve, RandomScalarNonzeroBelowQ) {
  cipher::Drbg rng(to_bytes("curve-scalar"));
  for (int i = 0; i < 50; ++i) {
    mp::U512 k = random_scalar(ctx(), rng);
    EXPECT_FALSE(k.is_zero());
    EXPECT_LT(k, ctx().q);
  }
}

TEST(Curve, FreshParameterGeneration) {
  cipher::Drbg rng(to_bytes("fresh-params"));
  GeneratedParams gp = generate_params(80, 160, rng);
  auto fresh = make_curve(gp, "tiny-test-curve");
  Point g = generator(*fresh);
  EXPECT_TRUE(on_curve(*fresh, g));
  EXPECT_TRUE(mul(*fresh, g, fresh->q).infinity);
}

TEST(Curve, MakeCurveRejectsWrongOrder) {
  cipher::Drbg rng(to_bytes("fresh-params-2"));
  GeneratedParams gp = generate_params(80, 160, rng);
  GeneratedParams bad = gp;
  // Claim a different (still dividing nothing) group order.
  bad.q = mp::generate_prime(80, rng);
  EXPECT_THROW(make_curve(bad, "bad"), std::invalid_argument);
}

}  // namespace
}  // namespace hcpp::curve
