// §VI.B category-1 countermeasure: keyword aliases make repeated searches
// for the same keyword unlinkable at the server, at the cost of a larger
// index — both directions verified here.
#include <gtest/gtest.h>

#include "src/core/setup.h"

namespace hcpp::core {
namespace {

Deployment aliased_deployment(uint64_t seed, size_t aliases) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 10;
  cfg.seed = seed;
  cfg.store_phi = false;
  cfg.assign_privileges = false;
  Deployment d = Deployment::create(cfg);
  d.patient->set_keyword_aliases(aliases);
  EXPECT_TRUE(d.patient->store_phi(*d.sserver));
  EXPECT_TRUE(assign_privilege(*d.patient, *d.family, d.mu_family));
  EXPECT_TRUE(assign_privilege(*d.patient, *d.pdevice, d.mu_pdevice));
  return d;
}

TEST(Aliases, HelperExpandsKeywordLists) {
  cipher::Drbg rng(to_bytes("alias-helper"));
  auto files = generate_phi_collection(3, rng);
  auto aliased = apply_keyword_aliases(files, 3);
  ASSERT_EQ(aliased.size(), files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(aliased[i].keywords.size(), files[i].keywords.size() * 3);
    EXPECT_EQ(aliased[i].content, files[i].content);  // bodies untouched
  }
  EXPECT_THROW(apply_keyword_aliases(files, 0), std::invalid_argument);
  EXPECT_NE(keyword_alias("kw", 0), keyword_alias("kw", 1));
  EXPECT_NE(keyword_alias("kw", 0), "kw");
}

TEST(Aliases, RepeatedSearchesStillReturnExactResults) {
  Deployment d = aliased_deployment(80, 4);
  const KeywordIndex& ki = d.patient->keyword_index();
  for (const auto& [kw, expected] : ki.entries) {
    // More searches than aliases: the rotation must wrap and keep working.
    for (int round = 0; round < 6; ++round) {
      std::vector<std::string> kws = {kw};
      EXPECT_EQ(d.patient->retrieve(*d.sserver, kws).size(), expected.size())
          << kw << " round " << round;
    }
  }
}

TEST(Aliases, SuccessiveTrapdoorsDifferOnTheWire) {
  Deployment d = aliased_deployment(81, 4);
  // Observe the wire: the trapdoor for the same logical keyword must change
  // between searches (the whole point of the countermeasure). We recompute
  // what the patient would send by reading its alias rotation indirectly —
  // via bytes charged: instead, compare the underlying SSE trapdoors.
  std::string kw = d.all_keywords().front();
  Bytes td_round1 =
      sse::make_trapdoor(d.patient->keys(), keyword_alias(kw, 0)).to_bytes();
  Bytes td_round2 =
      sse::make_trapdoor(d.patient->keys(), keyword_alias(kw, 1)).to_bytes();
  EXPECT_NE(td_round1, td_round2);
}

TEST(Aliases, FamilyAndPDeviceWorkWithAliasedIndex) {
  Deployment d = aliased_deployment(82, 3);
  std::vector<std::string> kws = {d.all_keywords().front()};
  size_t expected =
      d.patient->keyword_index().entries.at(kws.front()).size();
  EXPECT_EQ(d.family->emergency_retrieve(*d.sserver, kws).size(), expected);

  d.pdevice->press_emergency_button();
  auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.has_value());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
  ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
  EXPECT_EQ(d.pdevice->emergency_retrieve(*d.sserver, kws).size(), expected);
}

TEST(Aliases, IndexGrowsLinearlyWithAliasCount) {
  // The paper's stated cost: "the size increase of the keyword index, and
  // the encryption and storage of more PHI files" — here, more index nodes.
  cipher::Drbg rng(to_bytes("alias-size"));
  auto files = generate_phi_collection(40, rng);
  sse::Keys keys = sse::Keys::generate(rng);
  size_t base =
      sse::build_index(apply_keyword_aliases(files, 1), keys, rng, 1.0)
          .size_bytes();
  size_t quad =
      sse::build_index(apply_keyword_aliases(files, 4), keys, rng, 1.0)
          .size_bytes();
  EXPECT_GT(quad, base * 3);
  EXPECT_LT(quad, base * 6);
}

TEST(Aliases, RawLogicalKeywordNoLongerHitsTheIndex) {
  // With aliasing on, the logical keyword itself is not in the index — a
  // server (or thief) replaying an old-style trapdoor learns nothing.
  Deployment d = aliased_deployment(83, 2);
  std::string kw = d.all_keywords().front();
  sse::Trapdoor raw = sse::make_trapdoor(d.patient->keys(), kw);
  RetrieveRequest req;
  req.tp = d.patient->tp_bytes();
  req.collection = d.patient->collection();
  req.trapdoors.push_back(raw.to_bytes());
  req.t = d.net->clock().now();
  req.mac = protocol_mac(d.patient->shared_key_nu(), "phi-retrieval",
                         req.body(), req.t);
  auto resp = d.sserver->handle_retrieve(req);
  ASSERT_TRUE(resp.has_value());
  EXPECT_TRUE(resp->files.empty());
}

TEST(Aliases, BundleCarriesAliasCount) {
  Deployment d = aliased_deployment(84, 5);
  ASSERT_TRUE(d.family->has_bundle());
  EXPECT_EQ(d.family->bundle().alias_count, 5u);
  EXPECT_EQ(d.pdevice->bundle().alias_count, 5u);
}

TEST(Aliases, ZeroAliasCountRejected) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 2;
  cfg.seed = 85;
  Deployment d = Deployment::create(cfg);
  EXPECT_THROW(d.patient->set_keyword_aliases(0), std::invalid_argument);
}

}  // namespace
}  // namespace hcpp::core
