// §IV.E.2 MHI: role-encrypted storage with PEKS tags, role-key extraction
// gated on duty status, keyword-scoped retrieval.
#include <gtest/gtest.h>

#include "src/core/setup.h"

namespace hcpp::core {
namespace {

constexpr const char* kRole = "2011-04-12|emergency|gainesville";

struct MhiFixture {
  Deployment d;
  explicit MhiFixture(uint64_t seed)
      : d(Deployment::create([seed] {
          DeploymentConfig cfg;
          cfg.n_phi_files = 4;
          cfg.seed = seed;
          return cfg;
        }())) {
    cipher::Drbg rng(to_bytes("mhi-gen-" + std::to_string(seed)));
    d.pdevice->collect_mhi(generate_mhi_window("2011-04-12", 120, rng, 0.1));
    d.pdevice->collect_mhi(generate_mhi_window("2011-04-11", 120, rng, 0.0));
    std::vector<std::string> extra = {"patient-risk:cardiac"};
    EXPECT_TRUE(d.pdevice->store_mhi(*d.aserver, *d.sserver, kRole, extra));
  }
};

TEST(Mhi, GeneratorInjectsAnomalies) {
  cipher::Drbg rng(to_bytes("mhi-anom"));
  MhiWindow win = generate_mhi_window("d", 1000, rng, 0.2);
  size_t anomalies = 0;
  for (const MhiSample& s : win.samples) {
    if (s.anomaly) {
      ++anomalies;
      EXPECT_GT(s.heart_rate_bpm, 120);
    } else {
      EXPECT_LT(s.heart_rate_bpm, 100);
    }
  }
  EXPECT_GT(anomalies, 100u);
  EXPECT_LT(anomalies, 320u);
}

TEST(Mhi, WindowSerializationRoundTrip) {
  cipher::Drbg rng(to_bytes("mhi-ser"));
  MhiWindow win = generate_mhi_window("2011-04-12", 50, rng);
  MhiWindow back = MhiWindow::from_bytes(win.to_bytes());
  EXPECT_EQ(back.day, win.day);
  ASSERT_EQ(back.samples.size(), win.samples.size());
  EXPECT_DOUBLE_EQ(back.samples[7].heart_rate_bpm,
                   win.samples[7].heart_rate_bpm);
  EXPECT_EQ(back.samples[7].anomaly, win.samples[7].anomaly);
}

TEST(Mhi, OnDutyPhysicianRetrievesByDay) {
  MhiFixture f(20);
  auto role_key = f.d.on_duty->request_role_key(*f.d.aserver, kRole);
  ASSERT_TRUE(role_key.has_value());
  std::vector<MhiWindow> got = f.d.on_duty->retrieve_mhi(
      *f.d.sserver, kRole, *role_key, "day:2011-04-12");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].day, "2011-04-12");
  // The decrypted window carries usable vitals.
  EXPECT_EQ(got[0].samples.size(), 120u);
}

TEST(Mhi, SharedExtraKeywordMatchesAllWindows) {
  MhiFixture f(21);
  auto role_key = f.d.on_duty->request_role_key(*f.d.aserver, kRole);
  ASSERT_TRUE(role_key.has_value());
  std::vector<MhiWindow> got = f.d.on_duty->retrieve_mhi(
      *f.d.sserver, kRole, *role_key, "patient-risk:cardiac");
  EXPECT_EQ(got.size(), 2u);
}

TEST(Mhi, NonMatchingKeywordReturnsNothing) {
  MhiFixture f(22);
  auto role_key = f.d.on_duty->request_role_key(*f.d.aserver, kRole);
  ASSERT_TRUE(role_key.has_value());
  EXPECT_TRUE(f.d.on_duty
                  ->retrieve_mhi(*f.d.sserver, kRole, *role_key,
                                 "day:2010-01-01")
                  .empty());
}

TEST(Mhi, OffDutyPhysicianDeniedRoleKey) {
  MhiFixture f(23);
  EXPECT_FALSE(
      f.d.off_duty->request_role_key(*f.d.aserver, kRole).has_value());
}

TEST(Mhi, WrongRoleKeyCannotDecrypt) {
  MhiFixture f(24);
  // On-duty physician extracts a key for a *different* role and tries it.
  auto wrong_key =
      f.d.on_duty->request_role_key(*f.d.aserver, "some-other-role");
  ASSERT_TRUE(wrong_key.has_value());
  // Trapdoors from the wrong role key match nothing server-side.
  EXPECT_TRUE(f.d.on_duty
                  ->retrieve_mhi(*f.d.sserver, kRole, *wrong_key,
                                 "day:2011-04-12")
                  .empty());
}

TEST(Mhi, ServerStoresOnlyCiphertext) {
  MhiFixture f(25);
  EXPECT_EQ(f.d.sserver->mhi_entry_count(), 2u);
  // The plaintext vitals never reached the server: its stored bytes are all
  // IBE blobs + PEKS tags; decrypting requires Γr which only the A-server
  // can extract. (Behavioural check: a fresh physician without the role key
  // gets nothing useful.)
  Physician intruder(*f.d.net, *f.d.aserver, "dr-intruder");
  curve::Point bogus = curve::generator(f.d.aserver->ctx());
  EXPECT_TRUE(
      intruder.retrieve_mhi(*f.d.sserver, kRole, bogus, "day:2011-04-12")
          .empty());
}

TEST(Mhi, StoreRequiresBundle) {
  Deployment d = Deployment::create([] {
    DeploymentConfig cfg;
    cfg.n_phi_files = 4;
    cfg.seed = 26;
    cfg.assign_privileges = false;
    return cfg;
  }());
  cipher::Drbg rng(to_bytes("mhi-nobundle"));
  d.pdevice->collect_mhi(generate_mhi_window("2011-04-12", 10, rng));
  std::vector<std::string> extra;
  EXPECT_FALSE(d.pdevice->store_mhi(*d.aserver, *d.sserver, kRole, extra));
}

}  // namespace
}  // namespace hcpp::core
