// Chaos suite: full HCPP flows over an adversarial network — seeded loss,
// duplication, corruption, partitions and node outages. The invariants:
// protocols complete via retries/failover whenever completion is possible,
// server-side effects happen exactly once, callers see *typed* failures when
// success is impossible, and a fault-plan seed replays the identical trace.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/cluster.h"
#include "src/core/setup.h"
#include "src/obs/metrics.h"
#include "src/sim/transport.h"

namespace hcpp::core {
namespace {

DeploymentConfig small_config(uint64_t seed) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 10;
  cfg.seed = seed;
  return cfg;
}

/// The acceptance-criterion plan: 20% loss + 10% duplication on every link.
sim::FaultPlan lossy_plan(uint64_t seed) {
  sim::FaultPlan plan;
  plan.seed = seed;
  plan.default_faults.drop = 0.20;
  plan.default_faults.duplicate = 0.10;
  return plan;
}

std::vector<sse::FileId> ids_of(const std::vector<sse::PlainFile>& files) {
  std::vector<sse::FileId> out;
  for (const sse::PlainFile& f : files) out.push_back(f.id);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Chaos, StoreAndRetrieveCompleteUnderLossAndDuplication) {
  Deployment d = Deployment::create(small_config(1));
  d.net->set_fault_plan(lossy_plan(21));

  // Re-upload under chaos (idempotent: same account is replaced), then
  // search for every keyword.
  Result<void> stored = d.patient->try_store_phi(*d.sserver);
  ASSERT_TRUE(stored.ok());
  const KeywordIndex& ki = d.patient->keyword_index();
  const auto& [kw, expected] = *ki.entries.begin();
  std::vector<std::string> kws = {kw};
  Result<std::vector<sse::PlainFile>> got =
      d.patient->try_retrieve(*d.sserver, kws);
  ASSERT_TRUE(got.ok());
  std::vector<sse::FileId> want = expected;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(ids_of(got.value()), want);

  // The chaos actually bit: some attempt somewhere was retried.
  sim::DeliveryStats total = d.net->transport().total();
  EXPECT_GT(total.attempts, total.requests);
  EXPECT_EQ(total.gave_up, 0u);
}

TEST(Chaos, FamilyEmergencyCompletesUnderLossAndDuplication) {
  Deployment d = Deployment::create(small_config(2));
  d.net->set_fault_plan(lossy_plan(22));
  std::vector<std::string> kws = {d.all_keywords().front()};
  Result<std::vector<sse::PlainFile>> got =
      d.family->try_emergency_retrieve(*d.sserver, kws);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().empty());
}

TEST(Chaos, PDeviceEmergencyCompletesUnderLossAndDuplication) {
  Deployment d = Deployment::create(small_config(3));
  d.net->set_fault_plan(lossy_plan(23));
  d.pdevice->press_emergency_button();
  Result<Physician::PasscodeResult> pass =
      d.on_duty->try_request_passcode(*d.aserver, d.patient->tp_bytes());
  ASSERT_TRUE(pass.ok());
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass.value().for_device));
  ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass.value().nonce));
  std::vector<std::string> kws = {d.all_keywords().front()};
  Result<std::vector<sse::PlainFile>> got =
      d.pdevice->try_emergency_retrieve(*d.sserver, kws);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().empty());
  // Retries never double-book the accountability state.
  EXPECT_EQ(d.aserver->traces().size(), 1u);
  EXPECT_EQ(d.pdevice->records().size(), 1u);
  EXPECT_EQ(d.pdevice->alert_count(), 1);
}

TEST(Chaos, RetriesCauseNoDuplicateServerSideEffects) {
  Deployment d = Deployment::create(small_config(4));
  d.net->set_fault_plan(lossy_plan(24));
  ASSERT_TRUE(d.patient->try_store_phi(*d.sserver).ok());
  // However many times the wire saw the upload, one account exists.
  EXPECT_EQ(d.sserver->account_count(), 1u);
  ASSERT_TRUE(d.patient->try_revoke_member(*d.sserver, kFamilySlot).ok());
  // After REVOKE the family is out — deterministically, not sometimes.
  std::vector<std::string> kws = {d.all_keywords().front()};
  Result<std::vector<sse::PlainFile>> r =
      d.family->try_emergency_retrieve(*d.sserver, kws);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kRevoked);
}

struct Trace {
  std::vector<uint32_t> attempts;
  sim::DeliveryStats total;
  bool operator==(const Trace&) const = default;
};

Trace run_traced_workload(uint64_t fault_seed) {
  Deployment d = Deployment::create(small_config(5));
  d.net->set_fault_plan(lossy_plan(fault_seed));
  Trace t;
  Result<void> stored = d.patient->try_store_phi(*d.sserver);
  t.attempts.push_back(stored.ok() ? 0 : stored.error().attempts);
  std::vector<std::string> kws = {d.all_keywords().front()};
  Result<std::vector<sse::PlainFile>> got =
      d.patient->try_retrieve(*d.sserver, kws);
  t.attempts.push_back(got.ok() ? 0 : got.error().attempts);
  (void)d.family->try_emergency_retrieve(*d.sserver, kws);
  t.total = d.net->transport().total();
  return t;
}

TEST(Chaos, SameFaultSeedReplaysTheIdenticalTrace) {
  Trace a = run_traced_workload(77);
  Trace b = run_traced_workload(77);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.total, b.total);
  ASSERT_GT(a.total.requests, 0u);
}

TEST(Chaos, TotalLossYieldsTypedTransientFailure) {
  Deployment d = Deployment::create(small_config(6));
  sim::FaultPlan plan;
  plan.default_faults.drop = 1.0;
  d.net->set_fault_plan(plan);
  std::vector<std::string> kws = {d.all_keywords().front()};
  Result<std::vector<sse::PlainFile>> r =
      d.patient->try_retrieve(*d.sserver, kws);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.error().transient());
  EXPECT_EQ(r.error().code, ErrorCode::kTimeout);
  EXPECT_EQ(r.error().attempts,
            d.net->transport().policy().max_attempts);
  Result<void> s = d.patient->try_store_phi(*d.sserver);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.error().transient());
}

TEST(Chaos, MissingPrivilegeIsTypedPermanentFailure) {
  Deployment d = Deployment::create(small_config(7));
  Family stranger(*d.net, "stranger");
  std::vector<std::string> kws = {d.all_keywords().front()};
  Result<std::vector<sse::PlainFile>> r =
      stranger.try_emergency_retrieve(*d.sserver, kws);
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.error().transient());
  EXPECT_EQ(r.error().code, ErrorCode::kPrecondition);
}

// ---- Replicated storage (§VI.D) ---------------------------------------------

struct GroupRig {
  sim::Network net;
  cipher::Drbg rng{to_bytes("group-rig")};
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  std::unique_ptr<AServer> authority;
  std::unique_ptr<SServerGroup> group;
  std::unique_ptr<Patient> patient;
  std::unique_ptr<Family> family;
  Bytes mu;

  explicit GroupRig(size_t replicas) {
    authority = std::make_unique<AServer>(net, ctx, "state-a", rng);
    group = std::make_unique<SServerGroup>(net, *authority, "hosp", replicas);
    patient = std::make_unique<Patient>(net, "pat", rng);
    patient->setup(*authority, group->service_id());
    patient->add_files(generate_phi_collection(6, patient->rng()));
    family = std::make_unique<Family>(net, "fam");
    mu = rng.bytes(32);
  }
};

TEST(StorageFailover, UploadMirrorsToEveryReplica) {
  GroupRig rig(3);
  Result<size_t> stored = rig.patient->store_phi(*rig.group);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored.value(), 3u);
  for (size_t i = 0; i < rig.group->size(); ++i) {
    EXPECT_EQ(rig.group->replica(i).account_count(), 1u);
  }
}

TEST(StorageFailover, ReadsFailOverToTheNextReplica) {
  GroupRig rig(3);
  ASSERT_TRUE(rig.patient->store_phi(*rig.group).ok());
  rig.group->set_up(0, false);
  std::vector<std::string> kws = {
      rig.patient->keyword_index().dictionary().front()};
  Result<std::vector<sse::PlainFile>> got =
      rig.patient->retrieve(*rig.group, kws);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().empty());
}

TEST(StorageFailover, EmergencyFailsOverUnderChaosToo) {
  GroupRig rig(3);
  ASSERT_TRUE(rig.patient->store_phi(*rig.group).ok());
  ASSERT_TRUE(assign_privilege(*rig.patient, *rig.family, rig.mu));
  rig.group->set_up(0, false);
  sim::FaultPlan plan = lossy_plan(31);
  rig.net.set_fault_plan(plan);
  std::vector<std::string> kws = {
      rig.patient->keyword_index().dictionary().front()};
  Result<std::vector<sse::PlainFile>> got =
      rig.family->emergency_retrieve(*rig.group, kws);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().empty());
}

TEST(StorageFailover, AllReplicasDownIsTypedUnreachable) {
  GroupRig rig(2);
  ASSERT_TRUE(rig.patient->store_phi(*rig.group).ok());
  rig.group->set_up(0, false);
  rig.group->set_up(1, false);
  std::vector<std::string> kws = {
      rig.patient->keyword_index().dictionary().front()};
  Result<std::vector<sse::PlainFile>> got =
      rig.patient->retrieve(*rig.group, kws);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.error().transient());
  EXPECT_EQ(got.error().code, ErrorCode::kUnreachable);
}

TEST(StorageFailover, LaggingReplicaCatchesUpViaSync) {
  GroupRig rig(3);
  rig.group->set_up(2, false);  // replica 2 misses the upload
  Result<size_t> stored = rig.patient->store_phi(*rig.group);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored.value(), 2u);
  EXPECT_EQ(rig.group->replica(2).account_count(), 0u);
  rig.group->set_up(2, true);
  ASSERT_TRUE(rig.group->sync_replicas());
  EXPECT_EQ(rig.group->replica(2).account_count(), 1u);
  // The recovered replica serves reads on its own.
  std::vector<std::string> kws = {
      rig.patient->keyword_index().dictionary().front()};
  Result<std::vector<sse::PlainFile>> got =
      rig.patient->try_retrieve(rig.group->replica(2), kws);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value().empty());
}

TEST(StorageFailover, RevokeFansOutToAllReplicas) {
  GroupRig rig(2);
  ASSERT_TRUE(rig.patient->store_phi(*rig.group).ok());
  ASSERT_TRUE(assign_privilege(*rig.patient, *rig.family, rig.mu));
  Result<size_t> revoked = rig.patient->revoke_member(*rig.group, kFamilySlot);
  ASSERT_TRUE(revoked.ok());
  EXPECT_EQ(revoked.value(), 2u);
  // Every replica now rejects the revoked member.
  std::vector<std::string> kws = {
      rig.patient->keyword_index().dictionary().front()};
  for (size_t i = 0; i < rig.group->size(); ++i) {
    Result<std::vector<sse::PlainFile>> r =
        rig.family->try_emergency_retrieve(rig.group->replica(i), kws);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kRevoked);
  }
}

#if HCPP_OBS
/// Attaches a private registry for one test body, restoring the previous
/// attachment even when an ASSERT bails out early.
struct ScopedRegistry {
  obs::Registry reg;
  obs::Registry* previous = obs::attached();
  ScopedRegistry() { obs::attach(&reg); }
  ~ScopedRegistry() { obs::attach(previous); }
};

TEST(StorageFailover, PartitionFailoverCountersMatchDeliveryStats) {
  GroupRig rig(3);
  ASSERT_TRUE(rig.patient->store_phi(*rig.group).ok());
  ScopedRegistry scoped;
  rig.net.transport().reset_stats();

  // Permanently partition the patient from replica 0; a short retry budget
  // makes the walk past the unreachable replica quick.
  sim::FaultPlan plan;
  plan.seed = 41;
  plan.partitions.push_back(
      {"pat", rig.group->replica(0).id(), 0, UINT64_MAX});
  rig.net.set_fault_plan(plan);
  sim::RetryPolicy quick;
  quick.max_attempts = 2;
  rig.net.transport().set_policy(quick);

  std::vector<std::string> kws = {
      rig.patient->keyword_index().dictionary().front()};
  Result<std::vector<sse::PlainFile>> got =
      rig.patient->retrieve(*rig.group, kws);
  ASSERT_TRUE(got.ok());

  // The registry's transport counters are the same numbers DeliveryStats
  // accumulated, and the group failover count explains every exhausted
  // replica: one abandoned request (replica 0, behind the partition), one
  // failover, then success on replica 1.
  sim::DeliveryStats t = rig.net.transport().total();
  obs::Snapshot s = scoped.reg.snapshot();
  EXPECT_EQ(s.counter(obs::kTransportRequests), t.requests);
  EXPECT_EQ(s.counter(obs::kTransportAttempts), t.attempts);
  EXPECT_EQ(s.counter(obs::kTransportRetries), t.retries);
  EXPECT_EQ(s.counter(obs::kTransportGaveUp), t.gave_up);
  EXPECT_GT(t.retries, 0u);
  EXPECT_EQ(t.gave_up, 1u);
  EXPECT_EQ(s.counter(obs::kSGroupFailover), t.gave_up);
  EXPECT_EQ(s.counter(obs::kTransportSucceeded), 1u);
  // The partition surfaced in the substrate accounting too.
  EXPECT_GT(s.counter(obs::kNetUnreachable), 0u);
}
#endif  // HCPP_OBS

// ---- Replicated authority (§VI.D) -------------------------------------------

TEST(AuthorityFailover, TransportRetriesTheNextOfficeAutomatically) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("auth-failover"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  AServerCluster cluster(net, ctx, "state-a", 3, rng);
  cluster.set_on_duty("dr-er", true);
  SServer sserver(net, cluster.replica(0), "hosp");
  Patient patient(net, "pat", rng);
  patient.setup(cluster.replica(0), "hosp");
  patient.add_files(generate_phi_collection(6, patient.rng()));
  ASSERT_TRUE(patient.store_phi(sserver));
  PDevice pdevice(net, "pdev", rng);
  Bytes mu = rng.bytes(32);
  ASSERT_TRUE(assign_privilege(patient, pdevice, mu));
  Physician er(net, cluster.replica(0), "dr-er");

  cluster.set_up(0, false);  // DoS'd office; no polling by the caller
  // Shrink the per-office retry budget so the failover is quick.
  sim::RetryPolicy quick;
  quick.max_attempts = 2;
  net.transport().set_policy(quick);

  size_t office = 99;
  pdevice.press_emergency_button();
  Result<Physician::PasscodeResult> pass =
      er.request_passcode(cluster, patient.tp_bytes(), &office);
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(office, 1u);  // the transport walked past the dead office
  ASSERT_TRUE(
      pdevice.deliver_passcode(cluster.replica(office), pass.value().for_device));
  ASSERT_TRUE(pdevice.enter_passcode("dr-er", pass.value().nonce));
  std::vector<std::string> kws = {
      patient.keyword_index().dictionary().front()};
  EXPECT_FALSE(pdevice.emergency_retrieve(sserver, kws).empty());
  EXPECT_EQ(cluster.all_traces().size(), 1u);
}

TEST(AuthorityFailover, AllOfficesDownIsTypedUnreachable) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("auth-down"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  AServerCluster cluster(net, ctx, "state-a", 2, rng);
  cluster.set_on_duty("dr-er", true);
  Physician er(net, cluster.replica(0), "dr-er");
  Patient patient(net, "pat", rng);
  patient.setup(cluster.replica(0), "hosp");
  cluster.set_up(0, false);
  cluster.set_up(1, false);
  sim::RetryPolicy quick;
  quick.max_attempts = 2;
  net.transport().set_policy(quick);
  Result<Physician::PasscodeResult> pass =
      er.request_passcode(cluster, patient.tp_bytes(), nullptr);
  ASSERT_FALSE(pass.ok());
  EXPECT_TRUE(pass.error().transient());
  EXPECT_EQ(pass.error().code, ErrorCode::kUnreachable);
}

TEST(AuthorityFailover, OffDutyRefusalIsNotRetriedAcrossOffices) {
  sim::Network net;
  cipher::Drbg rng(to_bytes("auth-offduty"));
  const curve::CurveCtx& ctx = curve::params(curve::ParamSet::kTest);
  AServerCluster cluster(net, ctx, "state-a", 3, rng);
  Physician off(net, cluster.replica(0), "dr-off");  // never on duty
  Patient patient(net, "pat", rng);
  patient.setup(cluster.replica(0), "hosp");
  net.transport().reset_stats();
  Result<Physician::PasscodeResult> pass =
      off.request_passcode(cluster, patient.tp_bytes(), nullptr);
  ASSERT_FALSE(pass.ok());
  EXPECT_FALSE(pass.error().transient());
  // The first office's refusal was authoritative: exactly one request went
  // out; the cluster was not polled office-by-office.
  EXPECT_EQ(net.transport().total().requests, 1u);
}

}  // namespace
}  // namespace hcpp::core
