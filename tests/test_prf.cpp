// Property tests for the PRF and the two Feistel PRPs (ϖ/θ byte-string PRP
// and φ small-domain PRP).
#include <gtest/gtest.h>

#include <set>

#include "src/prf/feistel.h"
#include "src/prf/prf.h"

namespace hcpp::prf {
namespace {

TEST(Prf, DeterministicAndKeySeparated) {
  Prf f1(to_bytes("key-1"));
  Prf f2(to_bytes("key-2"));
  EXPECT_EQ(f1.eval(to_bytes("x"), 40), f1.eval(to_bytes("x"), 40));
  EXPECT_NE(f1.eval(to_bytes("x"), 40), f2.eval(to_bytes("x"), 40));
  EXPECT_NE(f1.eval(to_bytes("x"), 40), f1.eval(to_bytes("y"), 40));
}

TEST(Prf, OutputLengths) {
  Prf f(to_bytes("k"));
  for (size_t len : {1u, 16u, 32u, 33u, 40u, 100u}) {
    EXPECT_EQ(f.eval(to_bytes("in"), len).size(), len);
  }
  // Short outputs are prefixes of the truncated HMAC, wide outputs come from
  // HKDF; both must be stable.
  Bytes w1 = f.eval(to_bytes("in"), 64);
  Bytes w2 = f.eval(to_bytes("in"), 64);
  EXPECT_EQ(w1, w2);
}

class FeistelWidth : public ::testing::TestWithParam<size_t> {};

TEST_P(FeistelWidth, InverseUndoesForward) {
  FeistelPrp prp(to_bytes("prp-key"), GetParam());
  Bytes input(GetParam(), 0);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  Bytes out = prp.forward(input);
  EXPECT_NE(out, input);
  EXPECT_EQ(prp.inverse(out), input);
}

TEST_P(FeistelWidth, DistinctInputsDistinctOutputs) {
  FeistelPrp prp(to_bytes("prp-key"), GetParam());
  std::set<Bytes> outputs;
  for (int i = 0; i < 64; ++i) {
    Bytes input(GetParam(), 0);
    input[0] = static_cast<uint8_t>(i);
    outputs.insert(prp.forward(input));
  }
  EXPECT_EQ(outputs.size(), 64u);  // injective on these points
}

INSTANTIATE_TEST_SUITE_P(Widths, FeistelWidth,
                         ::testing::Values(2, 3, 16, 17, 56, 60, 64));

TEST(FeistelPrp, RejectsBadWidths) {
  EXPECT_THROW(FeistelPrp(to_bytes("k"), 1), std::invalid_argument);
  FeistelPrp prp(to_bytes("k"), 16);
  EXPECT_THROW(prp.forward(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(prp.inverse(Bytes(17, 0)), std::invalid_argument);
}

TEST(FeistelPrp, KeySeparation) {
  FeistelPrp a(to_bytes("ka"), 16);
  FeistelPrp b(to_bytes("kb"), 16);
  Bytes x(16, 0x5a);
  EXPECT_NE(a.forward(x), b.forward(x));
}

class SmallDomain : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmallDomain, IsAPermutation) {
  SmallDomainPrp prp(to_bytes("phi-key"), GetParam());
  std::set<uint64_t> seen;
  for (uint64_t x = 0; x < GetParam(); ++x) {
    uint64_t y = prp.forward(x);
    EXPECT_LT(y, GetParam());
    seen.insert(y);
    EXPECT_EQ(prp.inverse(y), x);
  }
  EXPECT_EQ(seen.size(), GetParam());  // bijective over the whole domain
}

INSTANTIATE_TEST_SUITE_P(DomainSizes, SmallDomain,
                         ::testing::Values(2, 3, 5, 8, 17, 100, 256, 1000));

TEST(SmallDomainPrp, LargeDomainSpotChecks) {
  SmallDomainPrp prp(to_bytes("k"), 1'000'000'007ull);
  for (uint64_t x : {0ull, 1ull, 999'999'999ull, 123'456'789ull}) {
    uint64_t y = prp.forward(x);
    EXPECT_LT(y, 1'000'000'007ull);
    EXPECT_EQ(prp.inverse(y), x);
  }
}

TEST(SmallDomainPrp, RejectsOutOfDomain) {
  SmallDomainPrp prp(to_bytes("k"), 10);
  EXPECT_THROW(prp.forward(10), std::out_of_range);
  EXPECT_THROW(prp.inverse(10), std::out_of_range);
  EXPECT_THROW(SmallDomainPrp(to_bytes("k"), 1), std::invalid_argument);
}

}  // namespace
}  // namespace hcpp::prf
