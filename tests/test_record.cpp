// PHI/MHI data model: synthetic generators and the keyword index KI.
#include <gtest/gtest.h>

#include <set>

#include "src/cipher/drbg.h"
#include "src/core/record.h"

namespace hcpp::core {
namespace {

TEST(Generator, ProducesRequestedCountWithSequentialIds) {
  cipher::Drbg rng(to_bytes("gen-count"));
  auto files = generate_phi_collection(25, rng, /*first_id=*/100);
  ASSERT_EQ(files.size(), 25u);
  for (size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(files[i].id, 100 + i);
    EXPECT_FALSE(files[i].name.empty());
    EXPECT_FALSE(files[i].keywords.empty());
  }
}

TEST(Generator, KeywordsComeFromClosedVocabulary) {
  cipher::Drbg rng(to_bytes("gen-vocab"));
  auto files = generate_phi_collection(200, rng);
  for (const auto& f : files) {
    bool has_category = false;
    for (const std::string& kw : f.keywords) {
      bool known_prefix = kw.rfind("category:", 0) == 0 ||
                          kw.rfind("condition:", 0) == 0 ||
                          kw.rfind("year:", 0) == 0;
      EXPECT_TRUE(known_prefix) << kw;
      has_category |= kw.rfind("category:", 0) == 0;
    }
    EXPECT_TRUE(has_category);
  }
}

TEST(Generator, NoDuplicateKeywordsWithinAFile) {
  cipher::Drbg rng(to_bytes("gen-dup"));
  auto files = generate_phi_collection(100, rng, 1, /*extra=*/6);
  for (const auto& f : files) {
    std::set<std::string> uniq(f.keywords.begin(), f.keywords.end());
    EXPECT_EQ(uniq.size(), f.keywords.size());
  }
}

TEST(Generator, ContentSizeHonoured) {
  cipher::Drbg rng(to_bytes("gen-size"));
  auto files = generate_phi_collection(3, rng, 1, 3, /*content=*/777);
  for (const auto& f : files) EXPECT_EQ(f.content.size(), 777u);
}

TEST(Generator, DeterministicUnderSameSeed) {
  cipher::Drbg a(to_bytes("gen-det"));
  cipher::Drbg b(to_bytes("gen-det"));
  auto fa = generate_phi_collection(10, a);
  auto fb = generate_phi_collection(10, b);
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].to_bytes(), fb[i].to_bytes());
  }
}

TEST(KeywordIndexTest, BuildInvertsFileKeywordRelation) {
  cipher::Drbg rng(to_bytes("ki-build"));
  auto files = generate_phi_collection(40, rng);
  KeywordIndex ki = KeywordIndex::build(files, "server-1");
  EXPECT_EQ(ki.sserver_id, "server-1");
  EXPECT_EQ(ki.file_names.size(), files.size());
  for (const auto& f : files) {
    for (const std::string& kw : f.keywords) {
      ASSERT_TRUE(ki.contains(kw));
      const auto& ids = ki.entries.at(kw);
      EXPECT_NE(std::find(ids.begin(), ids.end(), f.id), ids.end());
    }
  }
}

TEST(KeywordIndexTest, DictionaryListsEveryKeywordOnce) {
  cipher::Drbg rng(to_bytes("ki-dict"));
  auto files = generate_phi_collection(40, rng);
  KeywordIndex ki = KeywordIndex::build(files, "s");
  std::vector<std::string> dict = ki.dictionary();
  std::set<std::string> uniq(dict.begin(), dict.end());
  EXPECT_EQ(uniq.size(), dict.size());
  EXPECT_EQ(dict.size(), ki.entries.size());
  EXPECT_FALSE(ki.contains("not-a-keyword"));
}

TEST(KeywordIndexTest, SerializationRoundTrip) {
  cipher::Drbg rng(to_bytes("ki-ser"));
  auto files = generate_phi_collection(15, rng);
  KeywordIndex ki = KeywordIndex::build(files, "server-x");
  KeywordIndex back = KeywordIndex::from_bytes(ki.to_bytes());
  EXPECT_EQ(back.sserver_id, ki.sserver_id);
  EXPECT_EQ(back.entries, ki.entries);
  EXPECT_EQ(back.file_names, ki.file_names);
}

TEST(MhiGenerator, SamplesAreOneHertz) {
  cipher::Drbg rng(to_bytes("mhi-hz"));
  MhiWindow w = generate_mhi_window("d", 10, rng);
  for (size_t i = 1; i < w.samples.size(); ++i) {
    EXPECT_EQ(w.samples[i].t_ns - w.samples[i - 1].t_ns, 1'000'000'000ull);
  }
}

TEST(MhiGenerator, ZeroAnomalyRateProducesCleanWindow) {
  cipher::Drbg rng(to_bytes("mhi-clean"));
  MhiWindow w = generate_mhi_window("d", 500, rng, 0.0);
  for (const MhiSample& s : w.samples) {
    EXPECT_FALSE(s.anomaly);
    EXPECT_GT(s.heart_rate_bpm, 50);
    EXPECT_LT(s.heart_rate_bpm, 100);
    EXPECT_GT(s.systolic_mmhg, s.diastolic_mmhg);
  }
}

TEST(MhiGenerator, EmptyWindowSerializes) {
  MhiWindow w;
  w.day = "2011-01-01";
  MhiWindow back = MhiWindow::from_bytes(w.to_bytes());
  EXPECT_EQ(back.day, "2011-01-01");
  EXPECT_TRUE(back.samples.empty());
}

}  // namespace
}  // namespace hcpp::core
