// §V.A accountability: RD/TR verification, cross-check audit, detection of
// forged records and over-broad searches.
#include <gtest/gtest.h>

#include "src/core/setup.h"

namespace hcpp::core {
namespace {

struct AuditFixture {
  Deployment d;
  explicit AuditFixture(uint64_t seed)
      : d(Deployment::create([seed] {
          DeploymentConfig cfg;
          cfg.n_phi_files = 8;
          cfg.seed = seed;
          return cfg;
        }())) {}

  // Runs one full P-device emergency retrieval searching `kws`.
  void run_emergency(std::span<const std::string> kws) {
    d.pdevice->press_emergency_button();
    auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
    ASSERT_TRUE(pass.has_value());
    ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
    ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
    (void)d.pdevice->emergency_retrieve(*d.sserver, kws);
  }
};

TEST(Accountability, RdAndTraceVerify) {
  AuditFixture f(30);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  ASSERT_EQ(f.d.pdevice->records().size(), 1u);
  ASSERT_EQ(f.d.aserver->traces().size(), 1u);
  EXPECT_TRUE(verify_rd(f.d.aserver->pub(), f.d.aserver->id(),
                        f.d.pdevice->records()[0]));
  EXPECT_TRUE(verify_trace(f.d.aserver->pub(), f.d.aserver->traces()[0]));
}

TEST(Accountability, AuditLinksPhysician) {
  AuditFixture f(31);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  std::vector<std::string> all = f.d.all_keywords();
  std::set<std::string> permitted(all.begin(), all.end());
  AuditReport report =
      audit(f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->traces(),
            f.d.pdevice->records(), permitted);
  ASSERT_EQ(report.accountable.size(), 1u);
  EXPECT_EQ(report.accountable[0], "dr-on-duty");
  EXPECT_TRUE(report.improper_searchers.empty());
  EXPECT_EQ(report.inconsistencies(), 0u);
}

TEST(Accountability, OverBroadSearchFlagged) {
  AuditFixture f(32);
  // The physician searches everything, but the treatment only justified one
  // keyword.
  std::vector<std::string> all = f.d.all_keywords();
  f.run_emergency(all);
  std::set<std::string> permitted = {all.front()};
  AuditReport report =
      audit(f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->traces(),
            f.d.pdevice->records(), permitted);
  ASSERT_EQ(report.improper_searchers.size(), 1u);
  EXPECT_EQ(report.improper_searchers[0], "dr-on-duty");
}

TEST(Accountability, ForgedRdDetected) {
  AuditFixture f(33);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  RdRecord forged = f.d.pdevice->records()[0];
  forged.physician_id = "dr-framed";  // pin it on someone else
  EXPECT_FALSE(verify_rd(f.d.aserver->pub(), f.d.aserver->id(), forged));
  std::vector<RdRecord> records = {forged};
  std::set<std::string> permitted(kws.begin(), kws.end());
  AuditReport report =
      audit(f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->traces(),
            records, permitted);
  EXPECT_TRUE(report.accountable.empty());
  EXPECT_EQ(report.inconsistencies(), 1u);
  EXPECT_EQ(report.bad_rd_signatures, 1u);  // typed: it was the RD signature
  EXPECT_EQ(report.rd_without_trace, 0u);
  EXPECT_EQ(report.bad_trace_signatures, 0u);
}

TEST(Accountability, RdWithoutMatchingTraceIsInconsistent) {
  AuditFixture f(34);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  // Present the RD against an empty trace log (e.g. a colluding A-server
  // that deleted its trace cannot silently pass the audit).
  std::vector<TraceRecord> no_traces;
  std::set<std::string> permitted(kws.begin(), kws.end());
  AuditReport report =
      audit(f.d.aserver->pub(), f.d.aserver->id(), no_traces,
            f.d.pdevice->records(), permitted);
  EXPECT_TRUE(report.accountable.empty());
  EXPECT_EQ(report.inconsistencies(), 1u);
  EXPECT_EQ(report.rd_without_trace, 1u);  // typed: orphan RD, not a bad sig
  EXPECT_EQ(report.bad_rd_signatures, 0u);
}

TEST(Accountability, TamperedTraceDetected) {
  AuditFixture f(35);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  TraceRecord tampered = f.d.aserver->traces()[0];
  tampered.t10 += 1;  // altered timestamp breaks the physician's signature
  EXPECT_FALSE(verify_trace(f.d.aserver->pub(), tampered));
}

TEST(Accountability, MultipleEmergenciesAllAudited) {
  AuditFixture f(36);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  f.run_emergency(kws);
  EXPECT_EQ(f.d.pdevice->records().size(), 2u);
  EXPECT_EQ(f.d.aserver->traces().size(), 2u);
  std::set<std::string> permitted(kws.begin(), kws.end());
  AuditReport report =
      audit(f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->traces(),
            f.d.pdevice->records(), permitted);
  EXPECT_EQ(report.accountable.size(), 1u);  // same physician, deduplicated
  EXPECT_EQ(report.inconsistencies(), 0u);
}

// ---- edge cases -----------------------------------------------------------

TEST(Accountability, EmptyLogsAuditCleanly) {
  AuditFixture f(38);
  // Nothing happened: no traces, no RDs. The audit must report all-zero
  // typed counts rather than tripping over the empty spans.
  std::set<std::string> permitted;
  AuditReport report = audit(f.d.aserver->pub(), f.d.aserver->id(), {}, {},
                             permitted);
  EXPECT_TRUE(report.accountable.empty());
  EXPECT_TRUE(report.improper_searchers.empty());
  EXPECT_EQ(report.inconsistencies(), 0u);
  EXPECT_EQ(report.bad_rd_signatures, 0u);
  EXPECT_EQ(report.rd_without_trace, 0u);
  EXPECT_EQ(report.bad_trace_signatures, 0u);
}

TEST(Accountability, DuplicateRdForSameAccessIsConsistent) {
  AuditFixture f(39);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  // A retransmitted RD (same access, same signature) is not tampering: both
  // copies match the single trace and the physician stays accountable once.
  std::vector<RdRecord> records = {f.d.pdevice->records()[0],
                                   f.d.pdevice->records()[0]};
  std::set<std::string> permitted(kws.begin(), kws.end());
  AuditReport report =
      audit(f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->traces(),
            records, permitted);
  EXPECT_EQ(report.accountable.size(), 1u);
  EXPECT_EQ(report.inconsistencies(), 0u);
}

TEST(Accountability, TraceWithoutRdIsNotAnInconsistency) {
  AuditFixture f(40);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  // A trace with no matching RD means the passcode was issued but never used
  // for a retrieval — suspicious at a higher layer, but the records
  // themselves are consistent, so the typed counts stay zero.
  std::vector<RdRecord> no_records;
  std::set<std::string> permitted(kws.begin(), kws.end());
  AuditReport report =
      audit(f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->traces(),
            no_records, permitted);
  EXPECT_TRUE(report.accountable.empty());
  EXPECT_TRUE(report.improper_searchers.empty());
  EXPECT_EQ(report.inconsistencies(), 0u);
}

TEST(Accountability, PermittedKeywordBoundaries) {
  AuditFixture f(41);
  std::vector<std::string> all = f.d.all_keywords();
  ASSERT_GE(all.size(), 2u);
  std::vector<std::string> kws = {all[0], all[1]};
  f.run_emergency(kws);

  // Exact cover: searching precisely the permitted set is proper.
  std::set<std::string> exact(kws.begin(), kws.end());
  AuditReport ok = audit(f.d.aserver->pub(), f.d.aserver->id(),
                         f.d.aserver->traces(), f.d.pdevice->records(), exact);
  EXPECT_TRUE(ok.improper_searchers.empty());

  // One keyword over the line is already improper — the boundary is strict.
  std::set<std::string> minus_one = {kws[0]};
  AuditReport over =
      audit(f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->traces(),
            f.d.pdevice->records(), minus_one);
  ASSERT_EQ(over.improper_searchers.size(), 1u);
  EXPECT_EQ(over.improper_searchers[0], "dr-on-duty");

  // An empty permitted set flags any non-empty search.
  std::set<std::string> none;
  AuditReport strict =
      audit(f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->traces(),
            f.d.pdevice->records(), none);
  EXPECT_EQ(strict.improper_searchers.size(), 1u);
  // Improper scope is a policy violation, not a record inconsistency.
  EXPECT_EQ(strict.inconsistencies(), 0u);
}

TEST(Accountability, RdSerializationRoundTrip) {
  AuditFixture f(37);
  std::vector<std::string> kws = {f.d.all_keywords().front()};
  f.run_emergency(kws);
  const RdRecord& rd = f.d.pdevice->records()[0];
  RdRecord back = RdRecord::from_bytes(rd.to_bytes());
  EXPECT_EQ(back.physician_id, rd.physician_id);
  EXPECT_EQ(back.keywords, rd.keywords);
  EXPECT_EQ(back.t11, rd.t11);
  EXPECT_TRUE(verify_rd(f.d.aserver->pub(), f.d.aserver->id(), back));
}

}  // namespace
}  // namespace hcpp::core
