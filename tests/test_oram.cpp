// Square-root ORAM (§VI.B's [15]/[16] alternative): correctness across
// reshuffles and the obliviousness of the server-visible trace.
#include <gtest/gtest.h>

#include <set>

#include "src/cipher/drbg.h"
#include "src/oram/oram.h"

namespace hcpp::oram {
namespace {

std::vector<Bytes> make_blocks(size_t n, size_t size, uint8_t tag) {
  std::vector<Bytes> blocks(n);
  for (size_t i = 0; i < n; ++i) {
    blocks[i].assign(size, static_cast<uint8_t>(tag + i));
  }
  return blocks;
}

TEST(Oram, ReadsReturnStoredBlocks) {
  cipher::Drbg rng(to_bytes("oram-read"));
  ObliviousStore store(make_blocks(10, 32, 1), rng);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(store.read(i), Bytes(32, static_cast<uint8_t>(1 + i)));
  }
}

TEST(Oram, WritesPersistAcrossReshuffles) {
  cipher::Drbg rng(to_bytes("oram-write"));
  ObliviousStore store(make_blocks(9, 16, 0), rng);
  store.write(4, Bytes(16, 0xaa));
  // Run enough accesses to force several reshuffles (epoch = 3 here).
  for (int round = 0; round < 12; ++round) {
    (void)store.read(static_cast<size_t>(round) % 9);
  }
  EXPECT_GE(store.trace().reshuffles, 3u);
  EXPECT_EQ(store.read(4), Bytes(16, 0xaa));
}

TEST(Oram, RepeatedReadsOfOneBlockStayCorrect) {
  cipher::Drbg rng(to_bytes("oram-repeat"));
  ObliviousStore store(make_blocks(16, 24, 7), rng);
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(store.read(3), Bytes(24, 10));
  }
}

TEST(Oram, EpochLengthIsSqrtN) {
  cipher::Drbg rng(to_bytes("oram-epoch"));
  ObliviousStore a(make_blocks(16, 8, 0), rng);
  EXPECT_EQ(a.epoch_length(), 4u);
  ObliviousStore b(make_blocks(100, 8, 0), rng);
  EXPECT_EQ(b.epoch_length(), 10u);
  ObliviousStore c(make_blocks(5, 8, 0), rng);
  EXPECT_EQ(c.epoch_length(), 3u);
}

TEST(Oram, NoMainSlotRepeatsWithinAnEpoch) {
  // The core obliviousness invariant: within one epoch every touched main
  // slot is distinct, whether the pattern repeats a block or not.
  cipher::Drbg rng(to_bytes("oram-norepeat"));
  ObliviousStore store(make_blocks(25, 16, 0), rng);
  for (int i = 0; i < 5; ++i) (void)store.read(0);  // worst case: same block
  std::set<uint64_t> seen(store.trace().main_slots.begin(),
                          store.trace().main_slots.end());
  EXPECT_EQ(seen.size(), store.trace().main_slots.size());
}

TEST(Oram, TraceShapeDependsOnlyOnAccessCount) {
  // Two very different logical patterns of equal length must produce traces
  // with identical structure: same number of main reads, shelter scans and
  // reshuffles.
  cipher::Drbg rng_a(to_bytes("oram-shape"));
  cipher::Drbg rng_b(to_bytes("oram-shape"));
  ObliviousStore a(make_blocks(16, 16, 0), rng_a);
  ObliviousStore b(make_blocks(16, 16, 0), rng_b);
  for (int i = 0; i < 10; ++i) (void)a.read(0);             // degenerate
  for (int i = 0; i < 10; ++i) (void)b.read(static_cast<size_t>(i) % 16);
  EXPECT_EQ(a.trace().main_slots.size(), b.trace().main_slots.size());
  EXPECT_EQ(a.trace().shelter_scans, b.trace().shelter_scans);
  EXPECT_EQ(a.trace().reshuffles, b.trace().reshuffles);
}

TEST(Oram, RejectsBadInput) {
  cipher::Drbg rng(to_bytes("oram-bad"));
  EXPECT_THROW(ObliviousStore({}, rng), std::invalid_argument);
  std::vector<Bytes> uneven = {Bytes(8, 0), Bytes(9, 0)};
  EXPECT_THROW(ObliviousStore(std::move(uneven), rng),
               std::invalid_argument);
  ObliviousStore store(make_blocks(4, 8, 0), rng);
  EXPECT_THROW((void)store.read(4), std::out_of_range);
  EXPECT_THROW(store.write(0, Bytes(7, 0)), std::invalid_argument);
}

TEST(Oram, BandwidthOverheadIsSubstantial) {
  // §VI.B concedes these schemes come "with lower efficiency": per access
  // the client moves at least a shelter scan + one block, and reshuffles
  // move the whole store.
  cipher::Drbg rng(to_bytes("oram-cost"));
  ObliviousStore store(make_blocks(64, 64, 0), rng);
  for (int i = 0; i < 8; ++i) (void)store.read(static_cast<size_t>(i));
  uint64_t direct = 8 * 64;  // what a non-oblivious server would transfer
  EXPECT_GT(store.trace().bytes_transferred, direct * 2);
}

TEST(Oram, SingleBlockStoreWorks) {
  cipher::Drbg rng(to_bytes("oram-one"));
  ObliviousStore store(make_blocks(1, 8, 5), rng);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(store.read(0), Bytes(8, 5));
  store.write(0, Bytes(8, 9));
  EXPECT_EQ(store.read(0), Bytes(8, 9));
}

}  // namespace
}  // namespace hcpp::oram
