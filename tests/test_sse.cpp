// SSE (Fig. 2): index construction, search correctness against a brute-force
// model, ASSIGN/REVOKE trapdoor wrapping, serialization, leakage shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/cipher/drbg.h"
#include "src/core/record.h"
#include "src/sse/sse.h"

namespace hcpp::sse {
namespace {

std::vector<PlainFile> sample_files(size_t n, std::string_view seed) {
  cipher::Drbg rng(to_bytes(seed));
  return core::generate_phi_collection(n, rng);
}

// Ground truth: keyword -> sorted file ids.
std::map<std::string, std::vector<FileId>> postings(
    std::span<const PlainFile> files) {
  std::map<std::string, std::vector<FileId>> out;
  for (const PlainFile& f : files) {
    for (const std::string& kw : f.keywords) out[kw].push_back(f.id);
  }
  for (auto& [kw, ids] : out) std::sort(ids.begin(), ids.end());
  return out;
}

class SseCollectionSize : public ::testing::TestWithParam<size_t> {};

TEST_P(SseCollectionSize, SearchMatchesBruteForce) {
  auto files = sample_files(GetParam(), "sse-bf");
  cipher::Drbg rng(to_bytes("sse-bf-rng"));
  Keys keys = Keys::generate(rng);
  SecureIndex si = build_index(files, keys, rng);
  auto truth = postings(files);
  for (const auto& [kw, expected] : truth) {
    std::vector<FileId> got = search(si, make_trapdoor(keys, kw));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "keyword " << kw;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SseCollectionSize,
                         ::testing::Values(1, 2, 8, 32, 100));

TEST(Sse, AbsentKeywordReturnsNothing) {
  auto files = sample_files(10, "sse-absent");
  cipher::Drbg rng(to_bytes("sse-absent-rng"));
  Keys keys = Keys::generate(rng);
  SecureIndex si = build_index(files, keys, rng);
  EXPECT_TRUE(search(si, make_trapdoor(keys, "no-such-keyword")).empty());
}

TEST(Sse, WrongKeysFindNothing) {
  auto files = sample_files(10, "sse-wrongkey");
  cipher::Drbg rng(to_bytes("sse-wrongkey-rng"));
  Keys keys = Keys::generate(rng);
  Keys other = Keys::generate(rng);
  SecureIndex si = build_index(files, keys, rng);
  auto truth = postings(files);
  for (const auto& [kw, expected] : truth) {
    // With high probability the wrong trapdoor misses the table entirely.
    EXPECT_TRUE(search(si, make_trapdoor(other, kw)).empty());
  }
}

TEST(Sse, FileEncryptionRoundTripAndTamper) {
  auto files = sample_files(3, "sse-files");
  cipher::Drbg rng(to_bytes("sse-files-rng"));
  Keys keys = Keys::generate(rng);
  EncryptedCollection ec = encrypt_collection(files, keys, rng);
  ASSERT_EQ(ec.files.size(), files.size());
  for (const PlainFile& f : files) {
    PlainFile back = decrypt_file(keys, ec.files.at(f.id));
    EXPECT_EQ(back.id, f.id);
    EXPECT_EQ(back.name, f.name);
    EXPECT_EQ(back.content, f.content);
    EXPECT_EQ(back.keywords, f.keywords);
  }
  Bytes tampered = ec.files.at(files[0].id);
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_THROW(decrypt_file(keys, tampered), std::exception);
}

TEST(Sse, IndexSerializationRoundTrip) {
  auto files = sample_files(12, "sse-ser");
  cipher::Drbg rng(to_bytes("sse-ser-rng"));
  Keys keys = Keys::generate(rng);
  SecureIndex si = build_index(files, keys, rng);
  SecureIndex back = SecureIndex::from_bytes(si.to_bytes());
  auto truth = postings(files);
  for (const auto& [kw, expected] : truth) {
    std::vector<FileId> got = search(back, make_trapdoor(keys, kw));
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(Sse, CollectionSerializationRoundTrip) {
  auto files = sample_files(5, "sse-cser");
  cipher::Drbg rng(to_bytes("sse-cser-rng"));
  Keys keys = Keys::generate(rng);
  EncryptedCollection ec = encrypt_collection(files, keys, rng);
  EncryptedCollection back = EncryptedCollection::from_bytes(ec.to_bytes());
  EXPECT_EQ(back.files.size(), ec.files.size());
  for (const auto& [id, blob] : ec.files) EXPECT_EQ(back.files.at(id), blob);
}

TEST(Sse, KeysSerializationRoundTrip) {
  cipher::Drbg rng(to_bytes("sse-keys"));
  Keys keys = Keys::generate(rng);
  Keys back = Keys::from_bytes(keys.to_bytes());
  EXPECT_EQ(back.a, keys.a);
  EXPECT_EQ(back.b, keys.b);
  EXPECT_EQ(back.c, keys.c);
  EXPECT_EQ(back.d, keys.d);
  EXPECT_EQ(back.s, keys.s);
}

TEST(Sse, TrapdoorEncodingHasIntegrityTag) {
  cipher::Drbg rng(to_bytes("sse-td"));
  Keys keys = Keys::generate(rng);
  Trapdoor td = make_trapdoor(keys, "kw");
  Bytes enc = td.to_bytes();
  EXPECT_EQ(enc.size(), kTrapdoorSize);
  EXPECT_TRUE(Trapdoor::from_bytes(enc).has_value());
  enc[3] ^= 1;
  EXPECT_FALSE(Trapdoor::from_bytes(enc).has_value());
  EXPECT_FALSE(Trapdoor::from_bytes(Bytes(10, 0)).has_value());
}

TEST(Sse, WrapUnwrapTrapdoor) {
  cipher::Drbg rng(to_bytes("sse-wrap"));
  Keys keys = Keys::generate(rng);
  Trapdoor td = make_trapdoor(keys, "category:allergy");
  Bytes wrapped = wrap_trapdoor(keys.d, td);
  EXPECT_EQ(wrapped.size(), kTrapdoorSize);
  EXPECT_NE(wrapped, td.to_bytes());
  auto unwrapped = unwrap_trapdoor(keys.d, wrapped);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(unwrapped->to_bytes(), td.to_bytes());
}

TEST(Sse, StaleDFailsUnwrap) {
  // The REVOKE property: after re-keying d, trapdoors wrapped under the old
  // d fail the server-side validity check.
  cipher::Drbg rng(to_bytes("sse-stale"));
  Keys keys = Keys::generate(rng);
  Trapdoor td = make_trapdoor(keys, "kw");
  Bytes wrapped_old = wrap_trapdoor(keys.d, td);
  Bytes d_new = rng.bytes(32);
  EXPECT_FALSE(unwrap_trapdoor(d_new, wrapped_old).has_value());
}

TEST(Sse, IndexHidesPostingsStructure) {
  // Every slot of A has the same size and the table keys are PRP outputs:
  // two collections with identical sizes but different contents produce
  // indexes of identical shape.
  auto files_a = sample_files(16, "shape-a");
  auto files_b = sample_files(16, "shape-b");
  cipher::Drbg rng(to_bytes("sse-shape-rng"));
  Keys keys = Keys::generate(rng);
  SecureIndex ia = build_index(files_a, keys, rng, 1.0);
  SecureIndex ib = build_index(files_b, keys, rng, 1.0);
  for (const Bytes& slot : ia.array_a) EXPECT_EQ(slot.size(), kNodeSize);
  // Same total node count (same generator parameters) => same array size.
  size_t nodes_a = 0, nodes_b = 0;
  for (const auto& [kw, ids] : postings(files_a)) nodes_a += ids.size();
  for (const auto& [kw, ids] : postings(files_b)) nodes_b += ids.size();
  if (nodes_a == nodes_b) {
    EXPECT_EQ(ia.array_a.size(), ib.array_a.size());
  }
}

TEST(Sse, PaddingFactorGrowsArray) {
  auto files = sample_files(20, "sse-pad");
  cipher::Drbg rng(to_bytes("sse-pad-rng"));
  Keys keys = Keys::generate(rng);
  SecureIndex tight = build_index(files, keys, rng, 1.0);
  SecureIndex padded = build_index(files, keys, rng, 2.0);
  EXPECT_GE(padded.array_a.size(), tight.array_a.size() * 2 - 1);
  // Search still works on the padded index.
  auto truth = postings(files);
  const auto& [kw, expected] = *truth.begin();
  std::vector<FileId> got = search(padded, make_trapdoor(keys, kw));
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
  EXPECT_THROW(build_index(files, keys, rng, 0.5), std::invalid_argument);
}

TEST(Sse, ServerStorageIsLinearInN) {
  cipher::Drbg rng(to_bytes("sse-linear-rng"));
  Keys keys = Keys::generate(rng);
  auto small = sample_files(10, "lin");
  auto large = sample_files(40, "lin");
  size_t s_small = build_index(small, keys, rng, 1.0).size_bytes();
  size_t s_large = build_index(large, keys, rng, 1.0).size_bytes();
  // 4x files => roughly 4x index (within a factor of 2 slack for keyword
  // distribution noise).
  EXPECT_GT(s_large, s_small * 2);
  EXPECT_LT(s_large, s_small * 8);
}

TEST(Sse, MultiKeywordFilesAppearInEachList) {
  PlainFile f;
  f.id = 7;
  f.name = "multi";
  f.content = to_bytes("x");
  f.keywords = {"kw-a", "kw-b", "kw-c"};
  cipher::Drbg rng(to_bytes("sse-multi-rng"));
  Keys keys = Keys::generate(rng);
  std::vector<PlainFile> files = {f};
  SecureIndex si = build_index(files, keys, rng);
  for (const std::string& kw : f.keywords) {
    EXPECT_EQ(search(si, make_trapdoor(keys, kw)), std::vector<FileId>{7});
  }
}

}  // namespace
}  // namespace hcpp::sse
