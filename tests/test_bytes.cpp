// Unit tests for the byte utilities and the binary serializer.
#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/common/serialize.h"

namespace hcpp {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(hex_encode(b), "0001abff");
  EXPECT_EQ(hex_decode("0001abff"), b);
  EXPECT_EQ(hex_decode("0001ABFF"), b);
}

TEST(Bytes, HexDecodeRejectsBadInput) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);    // bad digit
}

TEST(Bytes, HexEncodeEmpty) { EXPECT_EQ(hex_encode(Bytes{}), ""); }

TEST(Bytes, XorBytes) {
  Bytes a = {0xff, 0x0f, 0x00};
  Bytes b = {0x0f, 0x0f, 0xff};
  EXPECT_EQ(xor_bytes(a, b), (Bytes{0xf0, 0x00, 0xff}));
  EXPECT_THROW(xor_bytes(a, Bytes{0x01}), std::invalid_argument);
}

TEST(Bytes, XorIsInvolution) {
  Bytes a = to_bytes("hello world");
  Bytes mask = to_bytes("abcdefghijk");
  EXPECT_EQ(xor_bytes(xor_bytes(a, mask), mask), a);
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, Concat) {
  Bytes r = concat(to_bytes("ab"), to_bytes("cd"), to_bytes("ef"));
  EXPECT_EQ(to_string(r), "abcdef");
}

TEST(Bytes, SecureWipe) {
  Bytes b = to_bytes("secret");
  secure_wipe(b);
  EXPECT_TRUE(b.empty());
}

TEST(Bytes, StringRoundTrip) {
  EXPECT_EQ(to_string(to_bytes("héllo")), "héllo");
}

TEST(Serialize, PrimitivesRoundTrip) {
  io::Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.bytes(to_bytes("payload"));
  w.str("name");
  io::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(to_string(r.bytes()), "payload");
  EXPECT_EQ(r.str(), "name");
  EXPECT_TRUE(r.done());
}

TEST(Serialize, BigEndianLayout) {
  io::Writer w;
  w.u32(0x01020304);
  EXPECT_EQ(w.data(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(Serialize, TruncatedInputThrows) {
  io::Writer w;
  w.u32(7);
  {
    io::Reader r(w.data());
    EXPECT_THROW(r.u64(), std::out_of_range);
  }
  {
    // Length prefix says 7 bytes but none follow.
    io::Reader r(w.data());
    EXPECT_THROW(r.bytes(), std::out_of_range);
  }
}

TEST(Serialize, RawAndRemaining) {
  io::Writer w;
  w.raw(to_bytes("abcdef"));
  io::Reader r(w.data());
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_EQ(to_string(r.raw(3)), "abc");
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_THROW(r.raw(4), std::out_of_range);
}

TEST(Serialize, EmptyBytesField) {
  io::Writer w;
  w.bytes(Bytes{});
  io::Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace hcpp
