// Unit and property tests for the 512-bit multiprecision layer: plain
// arithmetic, Montgomery contexts, inversion and primality testing.
#include <gtest/gtest.h>

#include "src/cipher/drbg.h"
#include "src/mp/mont.h"
#include "src/mp/prime.h"
#include "src/mp/u512.h"

namespace hcpp::mp {
namespace {

cipher::Drbg test_rng(std::string_view tag) {
  return cipher::Drbg(to_bytes(tag));
}

TEST(U512, HexRoundTrip) {
  U512 v = U512::from_hex("deadbeef0123456789");
  EXPECT_EQ(v.to_hex(), "deadbeef0123456789");
  EXPECT_EQ(U512::from_u64(0).to_hex(), "00");
  EXPECT_EQ(U512::from_u64(255).to_hex(), "ff");
}

TEST(U512, BytesRoundTrip) {
  U512 v = U512::from_hex("0102030405060708090a");
  Bytes be = v.to_bytes_be();
  EXPECT_EQ(be.size(), 64u);
  EXPECT_EQ(U512::from_bytes_be(be), v);
  EXPECT_EQ(hex_encode(v.to_bytes_be_trimmed()), "0102030405060708090a");
}

TEST(U512, FromHexRejectsBadInput) {
  EXPECT_THROW(U512::from_hex("xy"), std::invalid_argument);
  EXPECT_THROW(U512::from_hex(std::string(129, 'a')), std::invalid_argument);
}

TEST(U512, Comparison) {
  U512 small = U512::from_u64(5);
  U512 big = U512::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, U512::from_u64(5));
}

TEST(U512, BitLength) {
  EXPECT_EQ(U512{}.bit_length(), 0u);
  EXPECT_EQ(U512::from_u64(1).bit_length(), 1u);
  EXPECT_EQ(U512::from_u64(255).bit_length(), 8u);
  EXPECT_EQ(U512::from_hex("1" + std::string(32, '0')).bit_length(), 129u);
}

TEST(U512, AddSubCarryBorrow) {
  U512 max;
  max.w.fill(~0ull);
  U512 r;
  EXPECT_EQ(add(r, max, U512::from_u64(1)), 1u);  // wraps with carry
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(sub(r, U512{}, U512::from_u64(1)), 1u);  // borrows
  EXPECT_EQ(r, max);
}

TEST(U512, AddSubInverse) {
  auto rng = test_rng("addsub");
  for (int i = 0; i < 50; ++i) {
    U512 a = random_bits(500, rng);
    U512 b = random_bits(490, rng);
    U512 sum, back;
    add(sum, a, b);
    sub(back, sum, b);
    EXPECT_EQ(back, a);
  }
}

TEST(U512, MulWideMatchesSmallCases) {
  U1024 wide;
  mul_wide(wide, U512::from_u64(0xffffffffffffffffull),
           U512::from_u64(0xffffffffffffffffull));
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(wide[0], 1u);
  EXPECT_EQ(wide[1], 0xfffffffffffffffeull);
  for (size_t i = 2; i < wide.size(); ++i) EXPECT_EQ(wide[i], 0u);
}

TEST(U512, ModBasics) {
  EXPECT_EQ(mod(U512::from_u64(17), U512::from_u64(5)), U512::from_u64(2));
  EXPECT_EQ(mod(U512::from_u64(4), U512::from_u64(5)), U512::from_u64(4));
  EXPECT_THROW(mod(U512::from_u64(1), U512{}), std::domain_error);
}

TEST(U512, MulModAgainstSmallModel) {
  auto rng = test_rng("mulmod");
  for (int i = 0; i < 100; ++i) {
    uint64_t a = rng.u64() % 100000;
    uint64_t b = rng.u64() % 100000;
    uint64_t m = 2 + rng.u64() % 100000;
    U512 r = mul_mod(U512::from_u64(a), U512::from_u64(b), U512::from_u64(m));
    EXPECT_EQ(r, U512::from_u64((a * b) % m));
  }
}

TEST(U512, ShiftHelpers) {
  U512 v = U512::from_hex("8000000000000001");
  EXPECT_EQ(shl1(v), U512::from_hex("10000000000000002"));
  EXPECT_EQ(shr1(v), U512::from_hex("4000000000000000"));
  // Carry-in lands in the top bit.
  U512 r = shr1_carry(U512{}, 1);
  EXPECT_EQ(r.bit_length(), 512u);
}

TEST(U512, DivModReconstruction) {
  auto rng = test_rng("divmod");
  for (int i = 0; i < 60; ++i) {
    U512 a = random_bits(20 + (static_cast<size_t>(rng.u64()) % 480), rng);
    U512 m = random_bits(1 + (static_cast<size_t>(rng.u64()) % 400), rng);
    if (m.is_zero()) continue;
    DivMod dm = divmod(a, m);
    EXPECT_LT(dm.remainder, m);
    // a == q*m + r
    U1024 wide;
    mul_wide(wide, dm.quotient, m);
    bool high_zero = true;
    for (size_t l = kLimbs; l < 2 * kLimbs; ++l) high_zero &= (wide[l] == 0);
    ASSERT_TRUE(high_zero);  // quotient*m fits: it is <= a
    U512 qm;
    for (size_t l = 0; l < kLimbs; ++l) qm.w[l] = wide[l];
    U512 back;
    EXPECT_EQ(add(back, qm, dm.remainder), 0u);
    EXPECT_EQ(back, a);
  }
  EXPECT_THROW(divmod(U512::from_u64(1), U512{}), std::domain_error);
}

TEST(U512, DivModSmallCases) {
  DivMod dm = divmod(U512::from_u64(17), U512::from_u64(5));
  EXPECT_EQ(dm.quotient, U512::from_u64(3));
  EXPECT_EQ(dm.remainder, U512::from_u64(2));
  dm = divmod(U512::from_u64(4), U512::from_u64(9));
  EXPECT_EQ(dm.quotient, U512::from_u64(0));
  EXPECT_EQ(dm.remainder, U512::from_u64(4));
  dm = divmod(U512::from_u64(100), U512::from_u64(10));
  EXPECT_EQ(dm.quotient, U512::from_u64(10));
  EXPECT_TRUE(dm.remainder.is_zero());
}

TEST(U512, ModWideMatchesCompositionIdentity) {
  // For wide = a·b: wide mod m must equal ((a mod m)·(b mod m)) mod m.
  auto rng = test_rng("modwide");
  for (int i = 0; i < 40; ++i) {
    U512 a = random_bits(500, rng);
    U512 b = random_bits(480, rng);
    U512 m = random_bits(100 + (static_cast<size_t>(rng.u64()) % 300), rng);
    U1024 wide;
    mul_wide(wide, a, b);
    U512 direct = mod_wide(wide, m);
    U512 stepwise = mul_mod(mod(a, m), mod(b, m), m);
    EXPECT_EQ(direct, stepwise);
  }
}

TEST(U512, InvModProperty) {
  auto rng = test_rng("invmod");
  U512 m = generate_prime(128, rng);
  for (int i = 0; i < 25; ++i) {
    U512 a = random_below(m, rng);
    if (a.is_zero()) continue;
    U512 inv = inv_mod(a, m);
    EXPECT_EQ(mul_mod(a, inv, m), U512::from_u64(1));
  }
}

TEST(U512, InvModRejectsNonInvertible) {
  EXPECT_THROW(inv_mod(U512::from_u64(6), U512::from_u64(9)),
               std::domain_error);
  EXPECT_THROW(inv_mod(U512{}, U512::from_u64(9)), std::domain_error);
  EXPECT_THROW(inv_mod(U512::from_u64(3), U512::from_u64(8)),
               std::domain_error);  // even modulus... 8 is even
}

class MontParam : public ::testing::TestWithParam<size_t> {};

TEST_P(MontParam, MulMatchesGenericModMul) {
  auto rng = test_rng("mont-" + std::to_string(GetParam()));
  U512 m = generate_prime(GetParam(), rng);
  MontCtx ctx(m);
  for (int i = 0; i < 20; ++i) {
    U512 a = random_below(m, rng);
    U512 b = random_below(m, rng);
    U512 via_mont = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(via_mont, mul_mod(a, b, m));
  }
}

TEST_P(MontParam, PowMatchesRepeatedMul) {
  auto rng = test_rng("montpow-" + std::to_string(GetParam()));
  U512 m = generate_prime(GetParam(), rng);
  MontCtx ctx(m);
  U512 a = random_below(m, rng);
  U512 am = ctx.to_mont(a);
  // a^5 two ways.
  U512 p5 = ctx.pow(am, U512::from_u64(5));
  U512 manual = ctx.mul(ctx.mul(ctx.mul(ctx.mul(am, am), am), am), am);
  EXPECT_EQ(p5, manual);
  // Fermat: a^(m-1) = 1 for prime m, a != 0.
  if (!a.is_zero()) {
    U512 m_minus1;
    sub(m_minus1, m, U512::from_u64(1));
    EXPECT_EQ(ctx.pow(am, m_minus1), ctx.one());
  }
}

TEST_P(MontParam, WindowedPowMatchesBitwiseSquareAndMultiply) {
  // pow uses a 4-bit fixed window; check it against a plain left-to-right
  // square-and-multiply oracle on random bases and exponent widths.
  auto rng = test_rng("montpow-window-" + std::to_string(GetParam()));
  U512 m = generate_prime(GetParam(), rng);
  MontCtx ctx(m);
  for (int i = 0; i < 8; ++i) {
    U512 a = random_below(m, rng);
    U512 e = random_bits(1 + (static_cast<size_t>(rng.u64()) % 512), rng);
    U512 am = ctx.to_mont(a);
    U512 acc = ctx.one();
    for (size_t b = e.bit_length(); b-- > 0;) {
      acc = ctx.mul(acc, acc);
      if ((e.w[b / 64] >> (b % 64)) & 1) acc = ctx.mul(acc, am);
    }
    EXPECT_EQ(ctx.pow(am, e), acc);
  }
  // Edge exponents around the window boundaries.
  U512 am = ctx.to_mont(random_below(m, rng));
  for (uint64_t e : {0ull, 1ull, 15ull, 16ull, 17ull, 255ull, 256ull}) {
    U512 acc = ctx.one();
    for (uint64_t k = 0; k < e; ++k) acc = ctx.mul(acc, am);
    EXPECT_EQ(ctx.pow(am, U512::from_u64(e)), acc);
  }
}

TEST_P(MontParam, InverseInMontgomeryDomain) {
  auto rng = test_rng("montinv-" + std::to_string(GetParam()));
  U512 m = generate_prime(GetParam(), rng);
  MontCtx ctx(m);
  for (int i = 0; i < 10; ++i) {
    U512 a = random_below(m, rng);
    if (a.is_zero()) continue;
    U512 am = ctx.to_mont(a);
    EXPECT_EQ(ctx.mul(am, ctx.inv(am)), ctx.one());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MontParam,
                         ::testing::Values(65, 128, 255, 256, 384, 510));

TEST(Mont, RejectsEvenModulus) {
  EXPECT_THROW(MontCtx(U512::from_u64(100)), std::invalid_argument);
  EXPECT_THROW(MontCtx(U512::from_u64(1)), std::invalid_argument);
}

TEST(Prime, KnownPrimesAndComposites) {
  auto rng = test_rng("prime-known");
  EXPECT_TRUE(is_probable_prime(U512::from_u64(2), rng));
  EXPECT_TRUE(is_probable_prime(U512::from_u64(3), rng));
  EXPECT_TRUE(is_probable_prime(U512::from_u64(65537), rng));
  // 2^127 - 1 is a Mersenne prime.
  U512 m127 = U512::from_hex("7fffffffffffffffffffffffffffffff");
  EXPECT_TRUE(is_probable_prime(m127, rng));
  EXPECT_FALSE(is_probable_prime(U512::from_u64(1), rng));
  EXPECT_FALSE(is_probable_prime(U512::from_u64(0), rng));
  EXPECT_FALSE(is_probable_prime(U512::from_u64(65539ull * 65521ull), rng));
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(is_probable_prime(U512::from_u64(561), rng));
}

TEST(Prime, GeneratedPrimesHaveRequestedWidth) {
  auto rng = test_rng("prime-gen");
  for (size_t bits : {64u, 100u, 150u}) {
    U512 p = generate_prime(bits, rng);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Prime, RandomBelowIsInRange) {
  auto rng = test_rng("below");
  U512 bound = U512::from_hex("10000000000000000000001");
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(random_below(bound, rng), bound);
  }
  EXPECT_THROW(random_below(U512{}, rng), std::invalid_argument);
}

TEST(Prime, RandomBitsSetsTopBit) {
  auto rng = test_rng("bits");
  for (size_t bits : {1u, 7u, 64u, 65u, 512u}) {
    U512 v = random_bits(bits, rng);
    EXPECT_EQ(v.bit_length(), bits);
  }
  EXPECT_THROW(random_bits(0, rng), std::invalid_argument);
  EXPECT_THROW(random_bits(513, rng), std::invalid_argument);
}

}  // namespace
}  // namespace hcpp::mp
