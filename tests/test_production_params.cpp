// Smoke tests at the production parameter set (512-bit p / 160-bit q — the
// paper's "1024-bit RSA equivalent" timing setting). Kept small: parameter
// generation runs once per process and each pairing costs ~17 ms.
#include <gtest/gtest.h>

#include "src/cipher/drbg.h"
#include "src/curve/pairing.h"
#include "src/curve/params.h"
#include "src/ibc/ibe.h"
#include "src/ibc/ibs.h"

namespace hcpp {
namespace {

const curve::CurveCtx& prod() {
  return curve::params(curve::ParamSet::kProduction);
}

TEST(ProductionParams, SizesAreAsAdvertised) {
  EXPECT_GE(prod().p.bit_length(), 505u);
  EXPECT_LE(prod().p.bit_length(), 512u);
  EXPECT_EQ(prod().q.bit_length(), 160u);
  EXPECT_EQ(prod().p.w[0] & 3, 3u);
}

TEST(ProductionParams, PairingBilinear) {
  cipher::Drbg rng(to_bytes("prod-pairing"));
  curve::Point g = curve::generator(prod());
  mp::U512 a = curve::random_scalar(prod(), rng);
  mp::U512 b = curve::random_scalar(prod(), rng);
  curve::Gt lhs =
      curve::pairing(prod(), curve::mul(prod(), g, a),
                     curve::mul(prod(), g, b));
  curve::Gt rhs =
      curve::pairing(prod(), g, g).pow(mp::mul_mod(a, b, prod().q));
  EXPECT_EQ(lhs, rhs);
  EXPECT_FALSE(lhs.is_one());
}

TEST(ProductionParams, IbeAndIbsInterop) {
  cipher::Drbg rng(to_bytes("prod-ibe"));
  ibc::Domain domain(prod(), rng);
  Bytes msg = to_bytes("production-size message");
  ibc::IbeCiphertext ct = ibc::ibe_encrypt(domain.pub(), "id", msg, rng);
  EXPECT_EQ(ibc::ibe_decrypt(prod(), domain.extract("id"), ct), msg);
  ibc::IbsSignature sig =
      ibc::ibs_sign(prod(), domain.extract("dr"), "dr", msg, rng);
  EXPECT_TRUE(ibc::ibs_verify(domain.pub(), "dr", msg, sig));
}

}  // namespace
}  // namespace hcpp
