// Dynamic forward-private update layer (DESIGN.md §12, ROADMAP item 1):
//   * differential oracle — bulk-build(A ∪ B) must answer every keyword
//     identically to build(A) followed by add(B), at pool widths 1/2/8;
//   * tombstone semantics — delete suppresses static postings, re-add
//     resurrects, newest-op-wins inside one batch;
//   * compaction — post-fold SEARCH identical to pre-fold, stale dynamic
//     trapdoors degrade to the rebuilt static index;
//   * forward privacy, structurally — no label of a post-trapdoor update is
//     derivable from (i.e. collides with) anything a pre-update trapdoor
//     reveals;
//   * the end-to-end UPDATE/COMPACT protocol, store write-through +
//     hydration, export/import, ASSIGN-bundle staleness and the snapshot
//     SEARCH front-end.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "src/cipher/chacha20.h"
#include "src/core/search_service.h"
#include "src/core/setup.h"
#include "src/hash/sha256.h"
#include "src/par/pool.h"
#include "src/sse/dynamic.h"

namespace hcpp::core {
namespace {

namespace fs = std::filesystem;

std::vector<sse::FileId> sorted_static(const sse::SecureIndex& si,
                                       const sse::Trapdoor& td) {
  std::vector<sse::FileId> out = sse::search(si, td);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::set<std::string> keywords_of(const std::vector<sse::PlainFile>& files) {
  std::set<std::string> kws;
  for (const auto& f : files) kws.insert(f.keywords.begin(), f.keywords.end());
  return kws;
}

// ---- Differential oracle ----------------------------------------------------

TEST(SseDynamic, DifferentialOracleMatchesBulkBuild) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    par::ThreadPool pool(threads, "dyn-oracle");
    cipher::Drbg rng(to_bytes("dyn-oracle-" + std::to_string(threads)));
    std::vector<sse::PlainFile> all = generate_phi_collection(18, rng);
    std::vector<sse::PlainFile> a(all.begin(), all.begin() + 12);
    std::vector<sse::PlainFile> b(all.begin() + 12, all.end());
    sse::Keys keys = sse::Keys::generate(rng);

    // Oracle: everything bulk-loaded into one packed index.
    sse::SecureIndex oracle = sse::build_index(all, keys, rng, 1.25, &pool);
    // Candidate: A bulk-loaded, B arriving through the update layer.
    sse::SecureIndex si = sse::build_index(a, keys, rng, 1.25, &pool);
    sse::Updater up(keys);
    sse::UpdateLog log;
    for (const auto& f : b) {
      for (const std::string& kw : f.keywords) {
        sse::LogInsert ins = up.add(kw, f.id);
        log.entries[ins.label] = ins.entry;
      }
    }

    for (const std::string& kw : keywords_of(all)) {
      std::vector<sse::FileId> expect =
          sorted_static(oracle, sse::make_trapdoor(keys, kw));
      std::vector<sse::FileId> got =
          sse::search_dynamic(si, log, up.trapdoor(kw));
      EXPECT_EQ(got, expect) << "kw=" << kw << " threads=" << threads;
    }
  }
}

TEST(SseDynamic, DeleteSuppressesAndReaddResurrects) {
  cipher::Drbg rng(to_bytes("dyn-tombstone"));
  std::vector<sse::PlainFile> files = generate_phi_collection(8, rng);
  sse::Keys keys = sse::Keys::generate(rng);
  sse::SecureIndex si = sse::build_index(files, keys, rng);
  sse::Updater up(keys);
  sse::UpdateLog log;

  const std::string kw = files[0].keywords[0];
  sse::FileId victim = files[0].id;
  std::vector<sse::FileId> before =
      sse::search_dynamic(si, log, up.trapdoor(kw));
  ASSERT_TRUE(std::count(before.begin(), before.end(), victim) == 1);

  // DELETE tombstones even a posting that lives in the packed static index.
  sse::LogInsert del = up.del(kw, victim);
  log.entries[del.label] = del.entry;
  std::vector<sse::FileId> gone = sse::search_dynamic(si, log, up.trapdoor(kw));
  EXPECT_EQ(std::count(gone.begin(), gone.end(), victim), 0);
  EXPECT_EQ(gone.size(), before.size() - 1);

  // Newest-op-wins: a later ADD resurrects the file.
  sse::LogInsert re = up.add(kw, victim);
  log.entries[re.label] = re.entry;
  EXPECT_EQ(sse::search_dynamic(si, log, up.trapdoor(kw)), before);
}

TEST(SseDynamic, CompactionFoldsLogAndStrandsStaleTrapdoors) {
  cipher::Drbg rng(to_bytes("dyn-compact"));
  std::vector<sse::PlainFile> files = generate_phi_collection(10, rng);
  sse::Keys keys = sse::Keys::generate(rng);
  std::vector<sse::PlainFile> initial(files.begin(), files.begin() + 7);
  sse::SecureIndex si = sse::build_index(initial, keys, rng);
  sse::Updater up(keys);
  sse::UpdateLog log;
  for (size_t i = 7; i < files.size(); ++i) {
    for (const std::string& kw : files[i].keywords) {
      sse::LogInsert ins = up.add(kw, files[i].id);
      log.entries[ins.label] = ins.entry;
    }
  }
  std::map<std::string, std::vector<sse::FileId>> before;
  for (const std::string& kw : keywords_of(files)) {
    before[kw] = sse::search_dynamic(si, log, up.trapdoor(kw));
  }
  sse::DynTrapdoor stale = up.trapdoor(files[9].keywords[0]);

  // Compaction: fold the live set into a fresh packed index, drop the log,
  // restart the counters under a bumped epoch.
  sse::SecureIndex folded = sse::build_index(files, keys, rng);
  log.entries.clear();
  uint64_t old_epoch = up.state().epoch;
  up.reset_for_compaction();
  EXPECT_EQ(up.state().epoch, old_epoch + 1);
  EXPECT_TRUE(up.state().counters.empty());

  // Post-compaction SEARCH identical to pre-compaction, for every keyword.
  for (const auto& [kw, expect] : before) {
    EXPECT_EQ(sse::search_dynamic(folded, log, up.trapdoor(kw)), expect)
        << "kw=" << kw;
  }
  // A stale pre-compaction dynamic trapdoor still answers correctly: its
  // chain walk breaks on the first folded-away label and degrades to the
  // rebuilt static index, which already holds every live file.
  EXPECT_EQ(sse::search_dynamic(folded, log, stale),
            before[files[9].keywords[0]]);
}

// ---- Forward privacy, structurally -----------------------------------------

// What the server learns from a dynamic trapdoor: the chain labels it can
// walk. Replicated here with the public primitives — the test plays the
// curious server.
std::string label_of(BytesView st) {
  Bytes in(st.begin(), st.end());
  in.push_back('L');
  Bytes digest = hash::sha256_bytes(in);
  digest.resize(16);
  return hex_encode(digest);
}

std::set<std::string> labels_reachable_from(const sse::DynTrapdoor& td,
                                            const sse::UpdateLog& log) {
  std::set<std::string> seen;
  Bytes st = td.state;
  for (uint64_t c = td.count; c >= 1; --c) {
    std::string label = label_of(st);
    seen.insert(label);
    auto it = log.entries.find(label);
    if (it == log.entries.end()) break;
    Bytes in(st.begin(), st.end());
    in.push_back('V');
    Bytes key = hash::sha256_bytes(in);
    Bytes nonce(cipher::kChaChaNonceSize, 0);
    Bytes plain = cipher::chacha20(key, nonce, 0, it->second);
    st.assign(plain.begin() + 9, plain.end());
  }
  return seen;
}

TEST(SseDynamic, ForwardPrivacyNewLabelsUnreachableFromOldTrapdoors) {
  cipher::Drbg rng(to_bytes("dyn-fp"));
  sse::Keys keys = sse::Keys::generate(rng);
  sse::Updater up(keys);
  sse::UpdateLog log;
  const std::string kw = "category:cardiology";
  for (uint64_t i = 1; i <= 6; ++i) {
    sse::LogInsert ins = up.add(kw, i);
    log.entries[ins.label] = ins.entry;
  }
  // The server's total knowledge after serving a search at count 6.
  std::set<std::string> derivable = labels_reachable_from(up.trapdoor(kw), log);
  EXPECT_EQ(derivable.size(), 6u);  // the walk reveals exactly the history

  // Every label of a post-trapdoor update — same keyword, other keywords,
  // and the recycled counter values of a post-compaction epoch — must be
  // fresh to the server.
  std::vector<sse::LogInsert> fresh;
  for (uint64_t i = 7; i <= 12; ++i) fresh.push_back(up.add(kw, i));
  fresh.push_back(up.add("category:other", 99));
  up.reset_for_compaction();
  for (uint64_t i = 1; i <= 6; ++i) fresh.push_back(up.add(kw, i));
  std::set<std::string> fresh_labels;
  for (const auto& ins : fresh) {
    EXPECT_FALSE(derivable.contains(ins.label)) << ins.label;
    fresh_labels.insert(ins.label);
  }
  EXPECT_EQ(fresh_labels.size(), fresh.size());  // no internal collisions
}

// ---- DynTrapdoor encoding ---------------------------------------------------

TEST(SseDynamic, DynTrapdoorEncodingRoundTripsAndRejectsTampering) {
  cipher::Drbg rng(to_bytes("dyn-td"));
  sse::Keys keys = sse::Keys::generate(rng);
  sse::Updater up(keys);
  (void)up.add("kw", 7);
  sse::DynTrapdoor td = up.trapdoor("kw");
  Bytes enc = td.to_bytes();
  ASSERT_EQ(enc.size(), sse::kDynTrapdoorSize);
  auto back = sse::DynTrapdoor::from_bytes(enc);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->count, 1u);
  EXPECT_EQ(back->state, td.state);
  EXPECT_EQ(back->base.address, td.base.address);

  EXPECT_FALSE(sse::DynTrapdoor::from_bytes(Bytes(60, 0)).has_value());
  for (size_t pos : {size_t{0}, size_t{20}, size_t{60}, size_t{90}, size_t{99}}) {
    Bytes bad = enc;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(sse::DynTrapdoor::from_bytes(bad).has_value()) << pos;
  }

  // θ_d wrap round-trips; a stale (re-keyed) d fails the tag check.
  Bytes wrapped = sse::wrap_dyn_trapdoor(keys.d, td);
  ASSERT_EQ(wrapped.size(), sse::kDynTrapdoorSize);
  auto unwrapped = sse::unwrap_dyn_trapdoor(keys.d, wrapped);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(unwrapped->state, td.state);
  EXPECT_FALSE(sse::unwrap_dyn_trapdoor(rng.bytes(32), wrapped).has_value());
}

// ---- End-to-end protocol ----------------------------------------------------

TEST(SseDynamicProtocol, UpdateAddDeleteReaddRoundTrip) {
  Deployment d = Deployment::create({.n_phi_files = 4});
  sse::FileId nid = d.patient->files().back().id + 1;
  sse::PlainFile nf{nid, "new-scan", to_bytes("fresh imaging body"),
                    {"category:new-scan"}};
  std::vector<std::string> kws = {"category:new-scan"};

  EXPECT_TRUE(d.patient->retrieve(*d.sserver, kws).empty());
  ASSERT_TRUE(d.patient->update_phi(*d.sserver, {nf}));
  auto got = d.patient->retrieve(*d.sserver, kws);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].name, "new-scan");
  EXPECT_EQ(got[0].content, nf.content);

  // Old keywords still answer through the untouched packed index.
  std::vector<std::string> old_kws = {d.all_keywords().front()};
  EXPECT_EQ(d.patient->retrieve(*d.sserver, old_kws).size(),
            d.patient->keyword_index().entries.at(old_kws.front()).size());

  std::vector<sse::FileId> rm = {nid};
  ASSERT_TRUE(d.patient->update_phi(*d.sserver, {}, rm));
  EXPECT_TRUE(d.patient->retrieve(*d.sserver, kws).empty());

  ASSERT_TRUE(d.patient->update_phi(*d.sserver, {nf}));
  EXPECT_EQ(d.patient->retrieve(*d.sserver, kws).size(), 1u);
}

TEST(SseDynamicProtocol, CompactionPreservesEverySearchResult) {
  Deployment d = Deployment::create({.n_phi_files = 6});
  sse::FileId base = d.patient->files().back().id + 1;
  std::vector<sse::PlainFile> added = {
      {base, "extra-1", to_bytes("body one"), {"category:extra", "shared"}},
      {base + 1, "extra-2", to_bytes("body two"), {"category:extra"}}};
  std::vector<sse::FileId> rm = {d.patient->files().front().id};
  ASSERT_TRUE(d.patient->update_phi(*d.sserver, added, rm));
  ASSERT_FALSE(d.patient->update_state().counters.empty());

  std::vector<std::string> all_kws = d.all_keywords();
  std::map<std::string, std::set<std::string>> before;
  for (const std::string& kw : all_kws) {
    std::vector<std::string> one = {kw};
    for (const auto& f : d.patient->retrieve(*d.sserver, one)) {
      before[kw].insert(f.name);
    }
  }

  ASSERT_TRUE(d.patient->compact_phi(*d.sserver));
  EXPECT_TRUE(d.patient->update_state().counters.empty());
  for (const std::string& kw : all_kws) {
    std::vector<std::string> one = {kw};
    std::set<std::string> after;
    for (const auto& f : d.patient->retrieve(*d.sserver, one)) {
      after.insert(f.name);
    }
    EXPECT_EQ(after, before[kw]) << "kw=" << kw;
  }
  // Post-compaction updates keep working (fresh epoch, fresh labels).
  sse::PlainFile late{base + 2, "late", to_bytes("late body"), {"shared"}};
  ASSERT_TRUE(d.patient->update_phi(*d.sserver, {late}));
  std::vector<std::string> shared = {"shared"};
  std::set<std::string> names;
  for (const auto& f : d.patient->retrieve(*d.sserver, shared)) {
    names.insert(f.name);
  }
  EXPECT_TRUE(names.contains("late"));
  EXPECT_TRUE(names.contains("extra-1"));
}

TEST(SseDynamicProtocol, StaleBundleSeesPreUpdateViewUntilReassigned) {
  Deployment d = Deployment::create({.n_phi_files = 4});
  // The bundle sealed at create() predates the update: forward privacy means
  // the family cannot derive the new chain states, so it searches the
  // collection as of the assignment.
  sse::FileId nid = d.patient->files().back().id + 1;
  sse::PlainFile nf{nid, "post-assign", to_bytes("newer"), {"category:fresh"}};
  ASSERT_TRUE(d.patient->update_phi(*d.sserver, {nf}));

  std::vector<std::string> kws = {"category:fresh"};
  EXPECT_TRUE(d.family->emergency_retrieve(*d.sserver, kws).empty());
  EXPECT_EQ(d.patient->retrieve(*d.sserver, kws).size(), 1u);

  // Re-ASSIGN ships the current counters; the family catches up.
  ASSERT_TRUE(assign_privilege(*d.patient, *d.family, d.mu_family));
  EXPECT_EQ(d.family->emergency_retrieve(*d.sserver, kws).size(), 1u);
}

TEST(SseDynamicProtocol, AliasedAccountsFanUpdatesAcrossAliases) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 4;
  cfg.store_phi = false;
  cfg.assign_privileges = false;
  Deployment d = Deployment::create(cfg);
  d.patient->set_keyword_aliases(3);
  ASSERT_TRUE(d.patient->store_phi(*d.sserver));
  ASSERT_TRUE(assign_privilege(*d.patient, *d.family, d.mu_family));

  sse::FileId nid = d.patient->files().back().id + 1;
  ASSERT_TRUE(d.patient->update_phi(
      *d.sserver, {{nid, "aliased", to_bytes("x"), {"category:alias-new"}}}));
  std::vector<std::string> kws = {"category:alias-new"};
  // Rotation: more retrievals than aliases, every alias slot must answer.
  for (int round = 0; round < 7; ++round) {
    EXPECT_EQ(d.patient->retrieve(*d.sserver, kws).size(), 1u) << round;
  }
  std::vector<sse::FileId> rm = {nid};
  ASSERT_TRUE(d.patient->update_phi(*d.sserver, {}, rm));
  for (int round = 0; round < 7; ++round) {
    EXPECT_TRUE(d.patient->retrieve(*d.sserver, kws).empty()) << round;
  }
}

// ---- Store write-through + hydration ----------------------------------------

TEST(SseDynamicProtocol, UpdatesWriteThroughAndHydrate) {
  fs::path dir = fs::temp_directory_path() / "hcpp-test-dyn-store";
  fs::remove_all(dir);
  Deployment d = Deployment::create({.n_phi_files = 3});
  ASSERT_TRUE(d.sserver->attach_store(dir.string()));

  sse::FileId f1 = d.patient->files().back().id + 1;
  std::vector<sse::PlainFile> added = {
      {f1, "dyn-a", to_bytes("aa"), {"kw-a"}},
      {f1 + 1, "dyn-b", to_bytes("bb"), {"kw-a", "kw-b"}}};
  ASSERT_TRUE(d.patient->update_phi(*d.sserver, added));
  EXPECT_TRUE(d.sserver->store_consistent());
  // Granular layout: base + one record per file + one per log entry.
  EXPECT_EQ(d.sserver->account_store().size(), 1u + 5u + 3u);

  std::vector<sse::FileId> rm = {f1};
  ASSERT_TRUE(d.patient->update_phi(*d.sserver, {}, rm));
  EXPECT_TRUE(d.sserver->store_consistent());

  // A fresh process hydrates the log and serves the updated view.
  SServer restored(*d.net, *d.aserver, d.sserver->id());
  ASSERT_TRUE(restored.attach_store(dir.string()));
  EXPECT_TRUE(restored.store_consistent());
  std::vector<std::string> kw_a = {"kw-a"}, kw_b = {"kw-b"};
  auto got_a = d.patient->retrieve(restored, kw_a);
  ASSERT_EQ(got_a.size(), 1u);
  EXPECT_EQ(got_a[0].name, "dyn-b");
  EXPECT_EQ(d.patient->retrieve(restored, kw_b).size(), 1u);

  // Compaction folds the log records out of the store as well.
  ASSERT_TRUE(d.patient->compact_phi(*d.sserver));
  EXPECT_TRUE(d.sserver->store_consistent());
  EXPECT_EQ(d.sserver->account_store().stats().live_records, 1u + 4u);
  fs::remove_all(dir);
}

TEST(SseDynamicProtocol, ExportImportCarriesUpdateLog) {
  Deployment d = Deployment::create({.n_phi_files = 3});
  sse::FileId nid = d.patient->files().back().id + 1;
  ASSERT_TRUE(d.patient->update_phi(
      *d.sserver, {{nid, "exported", to_bytes("x"), {"kw-export"}}}));

  SServer restored(*d.net, *d.aserver, d.sserver->id());
  ASSERT_TRUE(restored.import_state(d.sserver->export_state()));
  std::vector<std::string> kws = {"kw-export"};
  auto got = d.patient->retrieve(restored, kws);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].name, "exported");
}

// ---- Snapshot SEARCH front-end ----------------------------------------------

TEST(SseDynamicProtocol, SearchServiceServesLogThroughSnapshots) {
  Deployment d = Deployment::create({.n_phi_files = 3});
  sse::FileId nid = d.patient->files().back().id + 1;
  ASSERT_TRUE(d.patient->update_phi(
      *d.sserver, {{nid, "snap-new", to_bytes("x"), {"kw-snap"}}}));

  par::ThreadPool pool(2, "dyn-snap");
  SearchService svc(&pool, 1);
  svc.publish(*d.sserver);

  sse::Updater up(d.patient->keys(), d.patient->update_state());
  SearchService::Query q;
  q.account =
      SServer::account_key(d.patient->tp_bytes(), d.patient->collection());
  q.trapdoor_blobs.push_back(
      up.trapdoor(keyword_alias("kw-snap", 0)).to_bytes());

  // Owner path (raw mixed-width blobs) and privileged path (θ_d-wrapped),
  // batched so the pool actually fans out.
  std::vector<SearchService::Query> batch(8, q);
  batch[3].privileged = true;
  batch[3].trapdoor_blobs.clear();
  batch[3].wrapped.push_back(sse::wrap_dyn_trapdoor(
      d.patient->keys().d, up.trapdoor(keyword_alias("kw-snap", 0))));
  for (const auto& res : svc.search_batch(batch)) {
    ASSERT_TRUE(res.account_found);
    ASSERT_EQ(res.matches.size(), 1u);
    EXPECT_EQ(res.matches[0].id, nid);
  }
}

}  // namespace
}  // namespace hcpp::core
