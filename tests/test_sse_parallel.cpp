// Parallel-vs-serial equivalence oracles for the SSE hot paths (DESIGN.md
// §9): index build, collection AEAD and trapdoor unwrapping must be
// *reproducible* for a fixed seed + thread count, and must answer searches
// identically across thread counts. Plus the concurrent SEARCH front-end
// (core::SearchService) against the live protocol handlers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "src/cipher/drbg.h"
#include "src/core/record.h"
#include "src/core/search_service.h"
#include "src/core/setup.h"
#include "src/par/pool.h"
#include "src/sse/sse.h"

namespace hcpp::sse {
namespace {

std::vector<PlainFile> sample_files(size_t n, std::string_view seed) {
  cipher::Drbg rng(to_bytes(seed));
  return core::generate_phi_collection(n, rng);
}

std::map<std::string, std::vector<FileId>> postings(
    std::span<const PlainFile> files) {
  std::map<std::string, std::vector<FileId>> out;
  for (const PlainFile& f : files) {
    for (const std::string& kw : f.keywords) out[kw].push_back(f.id);
  }
  for (auto& [kw, ids] : out) std::sort(ids.begin(), ids.end());
  return out;
}

SecureIndex build_with(std::span<const PlainFile> files, const Keys& keys,
                       std::string_view seed, par::ThreadPool* pool) {
  cipher::Drbg rng(to_bytes(seed));
  return build_index(files, keys, rng, 1.25, pool);
}

TEST(SseParallel, PoolOfOneIsByteIdenticalToSerial) {
  auto files = sample_files(20, "par-eq");
  cipher::Drbg krng(to_bytes("par-eq-keys"));
  Keys keys = Keys::generate(krng);
  par::ThreadPool one(1, "sse");
  SecureIndex serial = build_with(files, keys, "par-eq-rng", nullptr);
  SecureIndex pooled = build_with(files, keys, "par-eq-rng", &one);
  EXPECT_EQ(serial.to_bytes(), pooled.to_bytes());
}

TEST(SseParallel, SameSeedSameThreadCountReproducesBytes) {
  auto files = sample_files(20, "par-repro");
  cipher::Drbg krng(to_bytes("par-repro-keys"));
  Keys keys = Keys::generate(krng);
  par::ThreadPool pool(4, "sse");
  SecureIndex a = build_with(files, keys, "par-repro-rng", &pool);
  SecureIndex b = build_with(files, keys, "par-repro-rng", &pool);
  EXPECT_EQ(a.to_bytes(), b.to_bytes());
}

TEST(SseParallel, SearchResultsIdenticalAcrossThreadCounts) {
  auto files = sample_files(40, "par-search");
  cipher::Drbg krng(to_bytes("par-search-keys"));
  Keys keys = Keys::generate(krng);
  auto truth = postings(files);

  par::ThreadPool two(2, "sse2");
  par::ThreadPool eight(8, "sse8");
  SecureIndex serial = build_with(files, keys, "par-search-rng", nullptr);
  SecureIndex si2 = build_with(files, keys, "par-search-rng", &two);
  SecureIndex si8 = build_with(files, keys, "par-search-rng", &eight);

  // The index *structure* is thread-count-invariant: same array size, same
  // table addresses (only per-node keys and padding randomness move).
  EXPECT_EQ(serial.array_a.size(), si2.array_a.size());
  EXPECT_EQ(serial.array_a.size(), si8.array_a.size());
  auto keys_of = [](const SecureIndex& si) {
    std::set<std::string> out;
    for (const auto& [k, v] : si.table_t) out.insert(k);
    return out;
  };
  EXPECT_EQ(keys_of(serial), keys_of(si2));
  EXPECT_EQ(keys_of(serial), keys_of(si8));

  TrapdoorGen gen(keys);
  for (const auto& [kw, expected] : truth) {
    for (const SecureIndex* si : {&serial, &si2, &si8}) {
      std::vector<FileId> got = search(*si, gen.make(kw));
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected) << "keyword " << kw;
    }
  }
  for (const SecureIndex* si : {&serial, &si2, &si8}) {
    EXPECT_TRUE(search(*si, gen.make("no-such-keyword")).empty());
  }
}

TEST(SseParallel, CollectionDecryptsIdenticallyAcrossThreadCounts) {
  auto files = sample_files(30, "par-aead");
  cipher::Drbg krng(to_bytes("par-aead-keys"));
  Keys keys = Keys::generate(krng);

  par::ThreadPool two(2, "aead2");
  par::ThreadPool eight(8, "aead8");
  auto encrypt_with = [&](par::ThreadPool* pool) {
    cipher::Drbg rng(to_bytes("par-aead-rng"));
    return encrypt_collection(files, keys, rng, pool);
  };
  EncryptedCollection serial = encrypt_with(nullptr);
  EncryptedCollection ec2 = encrypt_with(&two);
  EncryptedCollection ec8 = encrypt_with(&eight);

  auto contents = [&](const EncryptedCollection& ec, par::ThreadPool* pool) {
    std::vector<PlainFile> out = decrypt_collection(keys, ec, pool);
    std::vector<std::pair<FileId, Bytes>> pairs;
    for (const PlainFile& f : out) pairs.emplace_back(f.id, f.content);
    return pairs;
  };
  auto want = contents(serial, nullptr);
  EXPECT_EQ(want.size(), files.size());
  EXPECT_EQ(contents(ec2, nullptr), want);
  EXPECT_EQ(contents(ec8, nullptr), want);
  // Parallel decryption of a serially-encrypted collection and vice versa.
  EXPECT_EQ(contents(serial, &eight), want);
  EXPECT_EQ(contents(ec8, &two), want);
}

TEST(SseParallel, BatchUnwrapMatchesSingleUnwrap) {
  cipher::Drbg rng(to_bytes("par-unwrap"));
  Keys keys = Keys::generate(rng);
  TrapdoorGen gen(keys);
  std::vector<Bytes> wrapped;
  for (int i = 0; i < 17; ++i) {
    wrapped.push_back(
        wrap_trapdoor(keys.d, gen.make("kw-" + std::to_string(i))));
  }
  // Slot 5: corrupted blob. Slot 11: wrapped under a stale d.
  wrapped[5][3] ^= 0x40;
  Keys stale = Keys::generate(rng);
  wrapped[11] = wrap_trapdoor(stale.d, gen.make("kw-11"));

  par::ThreadPool pool(4, "unwrap");
  std::vector<std::optional<Trapdoor>> batch =
      unwrap_trapdoors(keys.d, wrapped, &pool);
  ASSERT_EQ(batch.size(), wrapped.size());
  for (size_t i = 0; i < wrapped.size(); ++i) {
    std::optional<Trapdoor> single = unwrap_trapdoor(keys.d, wrapped[i]);
    ASSERT_EQ(batch[i].has_value(), single.has_value()) << "slot " << i;
    if (single.has_value()) {
      EXPECT_EQ(batch[i]->to_bytes(), single->to_bytes()) << "slot " << i;
    }
  }
  EXPECT_FALSE(batch[5].has_value());
  EXPECT_FALSE(batch[11].has_value());
}

TEST(SseParallel, SearchManyMatchesSearch) {
  auto files = sample_files(25, "par-many");
  cipher::Drbg rng(to_bytes("par-many-rng"));
  Keys keys = Keys::generate(rng);
  SecureIndex si = build_index(files, keys, rng);
  TrapdoorGen gen(keys);
  std::vector<Trapdoor> tds;
  for (const auto& [kw, ids] : postings(files)) tds.push_back(gen.make(kw));
  tds.push_back(gen.make("absent"));

  par::ThreadPool pool(4, "many");
  std::vector<std::vector<FileId>> batch = search_many(si, tds, &pool);
  ASSERT_EQ(batch.size(), tds.size());
  for (size_t i = 0; i < tds.size(); ++i) {
    EXPECT_EQ(batch[i], search(si, tds[i])) << "trapdoor " << i;
  }
}

}  // namespace
}  // namespace hcpp::sse

namespace hcpp::core {
namespace {

class SearchServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DeploymentConfig cfg;
    cfg.n_phi_files = 16;
    deployment_ = new Deployment(Deployment::create(cfg));
  }
  static void TearDownTestSuite() {
    delete deployment_;
    deployment_ = nullptr;
  }
  Deployment& d() { return *deployment_; }

  std::string account() {
    return SServer::account_key(d().patient->tp_bytes(),
                                d().patient->collection());
  }

  static Deployment* deployment_;
};

Deployment* SearchServiceTest::deployment_ = nullptr;

TEST_F(SearchServiceTest, PublishedSnapshotAnswersOwnerQueries) {
  par::ThreadPool pool(4, "svc");
  SearchService svc(&pool);
  svc.publish(*d().sserver);
  EXPECT_EQ(svc.account_count(), d().sserver->account_count());

  const KeywordIndex& ki = d().patient->keyword_index();
  sse::TrapdoorGen gen(d().patient->keys());
  std::vector<SearchService::Query> queries;
  std::vector<std::vector<sse::FileId>> want;
  for (const auto& [kw, ids] : ki.entries) {
    SearchService::Query q;
    q.account = account();
    q.trapdoors.push_back(gen.make(keyword_alias(kw, 0)));
    queries.push_back(std::move(q));
    std::vector<sse::FileId> sorted = ids;
    std::sort(sorted.begin(), sorted.end());
    want.push_back(std::move(sorted));
  }
  std::vector<SearchService::Result> got = svc.search_batch(queries);
  ASSERT_EQ(got.size(), queries.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].account_found);
    std::vector<sse::FileId> ids;
    for (const auto& m : got[i].matches) {
      ids.push_back(m.id);
      EXPECT_FALSE(m.blob.empty());
    }
    EXPECT_EQ(ids, want[i]) << "query " << i;
  }
}

TEST_F(SearchServiceTest, PrivilegedQueriesUnwrapAndTolerateGarbage) {
  par::ThreadPool pool(4, "svc");
  SearchService svc(&pool);
  svc.publish(*d().sserver);

  const KeywordIndex& ki = d().patient->keyword_index();
  ASSERT_FALSE(ki.entries.empty());
  const auto& [kw, ids] = *ki.entries.begin();
  sse::TrapdoorGen gen(d().patient->keys());
  const Bytes& dkey = d().patient->keys().d;

  SearchService::Query q;
  q.account = account();
  q.privileged = true;
  q.wrapped.push_back(sse::wrap_trapdoor(dkey, gen.make(keyword_alias(kw, 0))));
  q.wrapped.push_back(Bytes(17, 0xab));  // garbage blob: ignored
  Bytes tampered = sse::wrap_trapdoor(dkey, gen.make(keyword_alias(kw, 0)));
  tampered[2] ^= 0x01;
  q.wrapped.push_back(tampered);  // corrupted: unwrap tag rejects it

  SearchService::Result r = svc.search({std::move(q)});
  EXPECT_TRUE(r.account_found);
  std::vector<sse::FileId> got;
  for (const auto& m : r.matches) got.push_back(m.id);
  std::vector<sse::FileId> want = ids;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_F(SearchServiceTest, UnknownAccountReportsNotFound) {
  SearchService svc(nullptr);
  svc.publish(*d().sserver);
  SearchService::Query q;
  q.account = "no-such-account";
  SearchService::Result r = svc.search(q);
  EXPECT_FALSE(r.account_found);
  EXPECT_TRUE(r.matches.empty());
}

TEST_F(SearchServiceTest, ConcurrentBatchesRaceRepublishSafely) {
  par::ThreadPool pool(4, "svc");
  SearchService svc(&pool);
  svc.publish(*d().sserver);

  const KeywordIndex& ki = d().patient->keyword_index();
  sse::TrapdoorGen gen(d().patient->keys());
  const Bytes& dkey = d().patient->keys().d;
  std::vector<SearchService::Query> queries;
  std::vector<std::set<sse::FileId>> want;
  for (const auto& [kw, ids] : ki.entries) {
    SearchService::Query q;
    q.account = account();
    q.trapdoors.push_back(gen.make(keyword_alias(kw, 0)));
    queries.push_back(q);
    want.emplace_back(ids.begin(), ids.end());
    // Same keyword again via the privileged path, with one corrupted blob.
    SearchService::Query p;
    p.account = account();
    p.privileged = true;
    p.wrapped.push_back(sse::wrap_trapdoor(dkey, gen.make(keyword_alias(kw, 0))));
    p.wrapped.push_back(Bytes(60, 0x5c));
    queries.push_back(std::move(p));
    want.emplace_back(ids.begin(), ids.end());
  }

  std::atomic<bool> stop{false};
  std::thread republisher([&] {
    while (!stop.load()) svc.publish(*d().sserver);
  });
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(2);
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::vector<SearchService::Result> got = svc.search_batch(queries);
        for (size_t i = 0; i < got.size(); ++i) {
          std::set<sse::FileId> ids;
          for (const auto& m : got[i].matches) ids.insert(m.id);
          if (!got[i].account_found || ids != want[i]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  stop.store(true);
  republisher.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace hcpp::core
