// Observability subsystem: histogram edge cases, snapshot/diff, JSON and
// Prometheus export round-trips, span nesting, and the end-to-end
// acceptance check — a privileged retrieval trace showing nested spans
// (transport → SSE lookup) with pairing-count attribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <string>
#include <vector>

#include "src/core/setup.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/transport.h"

namespace hcpp::obs {
namespace {

/// Attaches a private registry for the test's lifetime and restores the
/// previous attachment afterwards, so suites don't leak state into each
/// other however the runner orders them.
class ObsTest : public ::testing::Test {
 protected:
  ObsTest() : previous_(attached()) { attach(&reg_); }
  ~ObsTest() override { attach(previous_); }

  Registry reg_;

 private:
  Registry* previous_;
};

// ---- Histogram edge cases ---------------------------------------------------

TEST(HistogramEdge, EmptyHistogramReportsZeros) {
  Histogram h;
  HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.percentile(0.0), 0.0);
  EXPECT_EQ(s.percentile(0.5), 0.0);
  EXPECT_EQ(s.percentile(1.0), 0.0);
}

TEST(HistogramEdge, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.record(12345.0);
  HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 12345.0);
  EXPECT_EQ(s.max, 12345.0);
  // Clamping to [min, max] makes the single sample exact at any p.
  EXPECT_EQ(s.percentile(0.01), 12345.0);
  EXPECT_EQ(s.percentile(0.50), 12345.0);
  EXPECT_EQ(s.percentile(0.99), 12345.0);
}

TEST(HistogramEdge, OverflowBucketCatchesOutOfRangeSamples) {
  Histogram h({1.0, 2.0, 4.0});
  h.record(100.0);  // beyond the last bound
  h.record(0.5);
  HistogramSummary s = h.summary();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.max, 100.0);
  // The overflow bucket has no upper bound; max stands in for it.
  EXPECT_EQ(s.percentile(1.0), 100.0);
}

TEST(HistogramEdge, PercentilesAreMonotoneInP) {
  Histogram h;
  // A spread that hits several buckets plus the overflow bucket.
  for (double v : {500.0, 3e3, 3e3, 7e4, 1e6, 4e7, 9e9, 8e10, 9e10}) {
    h.record(v);
  }
  HistogramSummary s = h.summary();
  double prev = s.percentile(0.0);
  for (double p = 0.05; p <= 1.0001; p += 0.05) {
    double cur = s.percentile(p);
    EXPECT_GE(cur, prev) << "percentile not monotone at p=" << p;
    prev = cur;
  }
  EXPECT_GE(s.percentile(0.0), s.min);
  EXPECT_LE(s.percentile(1.0), s.max);
}

// ---- Registry + snapshot/diff ----------------------------------------------
// The Registry type itself exists in every build; the free-function entry
// points and Span record only when HCPP_OBS=1, so everything that observes
// through them is compiled out alongside the instrumentation.

#if HCPP_OBS
TEST_F(ObsTest, FreeFunctionsFeedTheAttachedRegistry) {
  count("test.counter");
  count("test.counter", 4);
  gauge_set("test.gauge", -7);
  observe("test.latency", 2e6);
  Snapshot s = reg_.snapshot();
  EXPECT_EQ(s.counter("test.counter"), 5u);
  EXPECT_EQ(s.gauges.at("test.gauge"), -7);
  EXPECT_EQ(s.histograms.at("test.latency").count, 1u);
  EXPECT_EQ(s.counter("never.touched"), 0u);
}

TEST(ObsDetached, NothingRecordsWhileUnattached) {
  Registry* previous = attached();
  attach(nullptr);
  count("orphan.counter");
  observe("orphan.latency", 1.0);
  EXPECT_FALSE(recording());
  attach(previous);
  EXPECT_EQ(global().snapshot().counter("orphan.counter"), 0u);
}

TEST_F(ObsTest, DiffSubtractsCountersAndHistogramCounts) {
  count("d.ops", 10);
  observe("d.lat", 5e3);
  Snapshot before = reg_.snapshot();
  count("d.ops", 3);
  count("d.fresh");  // only exists in the later snapshot
  observe("d.lat", 6e3);
  Snapshot delta = reg_.snapshot().diff(before);
  EXPECT_EQ(delta.counter("d.ops"), 3u);
  EXPECT_EQ(delta.counter("d.fresh"), 1u);
  EXPECT_EQ(delta.histograms.at("d.lat").count, 1u);
}
#endif  // HCPP_OBS

TEST(ObsRegistry, DiffWorksThroughDirectRegistryCalls) {
  // Registry methods are live in every build, HCPP_OBS=0 included.
  Registry r;
  r.add("d.ops", 10);
  r.observe("d.lat", 5e3);
  Snapshot before = r.snapshot();
  r.add("d.ops", 3);
  r.observe("d.lat", 6e3);
  Snapshot delta = r.snapshot().diff(before);
  EXPECT_EQ(delta.counter("d.ops"), 3u);
  EXPECT_EQ(delta.histograms.at("d.lat").count, 1u);
}

// ---- Export round-trips -----------------------------------------------------

Registry& populated(Registry& r) {
  r.add("rt.requests", 41);
  r.add("rt.retries", 3);
  r.gauge_set("rt.depth", 12);
  r.gauge_set("rt.balance", -3);
  for (double v : {1.5e3, 2.2e4, 2.2e4, 7.7e6, 9.9e10}) {
    r.observe("rt.latency", v);
  }
  return r;
}

TEST(ObsExport, JsonRoundTripIsLossless) {
  Registry r;
  Snapshot s = populated(r).snapshot();
  Snapshot back = from_json(to_json(s));
  EXPECT_EQ(back, s);  // exact: counts, sums, bounds, min/max
}

TEST(ObsExport, JsonRoundTripSurvivesEmptyRegistry) {
  Registry r;
  Snapshot s = r.snapshot();
  EXPECT_EQ(from_json(to_json(s)), s);
}

TEST(ObsExport, PrometheusEmitParseIsAFixedPoint) {
  Registry r;
  Snapshot s = populated(r).snapshot();
  std::string text = to_prometheus(s);
  // Name sanitization is not invertible, so the guarantee is emit∘parse
  // stability rather than snapshot equality.
  EXPECT_EQ(to_prometheus(from_prometheus(text)), text);
  EXPECT_NE(text.find("hcpp_rt_requests 41"), std::string::npos);
  EXPECT_NE(text.find("hcpp_rt_latency_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(ObsExport, PrometheusParseRecoversHistogramContents) {
  Registry r;
  Snapshot s = populated(r).snapshot();
  // Parsed names keep their sanitized (underscore) spelling; the dotted
  // originals are not recoverable from the exposition format.
  Snapshot back = from_prometheus(to_prometheus(s));
  const HistogramSummary& h = back.histograms.at("rt_latency");
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.min, 1.5e3);
  EXPECT_EQ(h.max, 9.9e10);
  EXPECT_EQ(h.counts, s.histograms.at("rt.latency").counts);
  EXPECT_EQ(back.counter("rt_requests"), 41u);
}

// ---- Tracer -----------------------------------------------------------------

#if HCPP_OBS
TEST_F(ObsTest, SpansNestAndCarryCryptoDeltas) {
  sim::Network net;
  reg_.tracer().enable(net.clock());
  {
    Span outer("outer");
    net.clock().advance(1000);
    count(kPairing, 2);
    {
      Span inner("inner:", "leaf");
      net.clock().advance(500);
      count(kPairingFixed);
      count(kPointMul, 3);
    }
  }
  const auto& spans = reg_.tracer().spans();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& outer = spans[0];
  const SpanRecord& inner = spans[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(inner.name, "inner:leaf");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.parent, 0);
  EXPECT_EQ(outer.duration_ns(), 1500u);
  EXPECT_EQ(inner.duration_ns(), 500u);
  // Attribution includes children: outer saw both its own pairings and the
  // inner span's fixed-argument one.
  EXPECT_EQ(inner.pairings, 1u);
  EXPECT_EQ(inner.miller_loops_saved, 1u);
  EXPECT_EQ(inner.point_muls, 3u);
  EXPECT_EQ(outer.pairings, 3u);
  EXPECT_EQ(outer.point_muls, 3u);
}

TEST_F(ObsTest, TracerBoundsSpanCountAndCountsDrops) {
  sim::Network net;
  reg_.tracer().enable(net.clock(), /*max_spans=*/2);
  for (int i = 0; i < 5; ++i) {
    Span s("s");
  }
  EXPECT_EQ(reg_.tracer().spans().size(), 2u);
  EXPECT_EQ(reg_.tracer().dropped(), 3u);
}

// ---- End-to-end: the acceptance-criterion trace -----------------------------

int32_t find_span(const std::vector<SpanRecord>& spans,
                  std::string_view name) {
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == name) return static_cast<int32_t>(i);
  }
  return -1;
}

bool is_descendant(const std::vector<SpanRecord>& spans, int32_t node,
                   int32_t ancestor) {
  while (node != -1) {
    if (node == ancestor) return true;
    node = spans[static_cast<size_t>(node)].parent;
  }
  return false;
}

TEST_F(ObsTest, PrivilegedRetrieveTraceNestsTransportSseAndPairings) {
  core::DeploymentConfig cfg;
  cfg.n_phi_files = 8;
  cfg.seed = 99;
  core::Deployment d = core::Deployment::create(cfg);
  reg_.tracer().enable(d.net->clock());

  std::vector<std::string> kws = {d.all_keywords().front()};
  ASSERT_TRUE(d.family->try_emergency_retrieve(*d.sserver, kws).ok());

  const auto& spans = reg_.tracer().spans();
  int32_t root = find_span(spans, "protocol:privileged_retrieve");
  ASSERT_NE(root, -1);
  const SpanRecord& proto = spans[static_cast<size_t>(root)];
  EXPECT_EQ(proto.depth, 0u);

  // Both §IV.E.1 rounds appear as transport children of the protocol span.
  int32_t be = find_span(spans, "transport:emergency-be-request");
  int32_t pr = find_span(spans, "transport:emergency-privileged-retrieval");
  ASSERT_NE(be, -1);
  ASSERT_NE(pr, -1);
  EXPECT_TRUE(is_descendant(spans, be, root));
  EXPECT_TRUE(is_descendant(spans, pr, root));

  // The SSE lookup runs inside the server handler inside the second round.
  int32_t sse = find_span(spans, "sse:lookup");
  ASSERT_NE(sse, -1);
  EXPECT_TRUE(is_descendant(spans, sse, pr));
  EXPECT_GT(spans[static_cast<size_t>(sse)].depth, proto.depth);

  // Pairing attribution: the ν-derivations under each round cost pairings,
  // and the protocol root saw all of them.
  const SpanRecord& round2 = spans[static_cast<size_t>(pr)];
  EXPECT_GT(round2.pairings, 0u);
  EXPECT_GE(proto.pairings, round2.pairings);
  EXPECT_GT(proto.miller_loops_saved, 0u);  // ν uses the fixed-base cache

  // The rendered tree mentions the same structure.
  std::string text = reg_.tracer().format();
  EXPECT_NE(text.find("protocol:privileged_retrieve"), std::string::npos);
  EXPECT_NE(text.find("pairings="), std::string::npos);
}

// ---- Transport mirror -------------------------------------------------------

TEST_F(ObsTest, TransportStatsAndRegistryCountersAgree) {
  core::DeploymentConfig cfg;
  cfg.n_phi_files = 6;
  cfg.seed = 17;
  core::Deployment d = core::Deployment::create(cfg);
  reg_.reset();  // drop setup-phase counts; compare one workload's worth
  d.net->transport().reset_stats();

  sim::FaultPlan plan;
  plan.seed = 5;
  plan.default_faults.drop = 0.25;
  plan.default_faults.duplicate = 0.10;
  d.net->set_fault_plan(plan);

  std::vector<std::string> kws = {d.all_keywords().front()};
  (void)d.patient->try_retrieve(*d.sserver, kws);
  (void)d.family->try_emergency_retrieve(*d.sserver, kws);

  sim::DeliveryStats t = d.net->transport().total();
  Snapshot s = reg_.snapshot();
  EXPECT_EQ(s.counter(kTransportRequests), t.requests);
  EXPECT_EQ(s.counter(kTransportAttempts), t.attempts);
  EXPECT_EQ(s.counter(kTransportRetries), t.retries);
  EXPECT_EQ(s.counter(kTransportSucceeded), t.succeeded);
  EXPECT_EQ(s.counter(kTransportRejected), t.rejected);
  EXPECT_EQ(s.counter(kTransportGaveUp), t.gave_up);
  EXPECT_EQ(s.counter(kTransportDupSuppressed), t.duplicates_suppressed);
  EXPECT_EQ(s.counter(kTransportResponsesLost), t.responses_lost);
  // Latency histogram saw every finished request, total and per protocol.
  EXPECT_EQ(s.histograms.at(kTransportRequestNs).count, t.requests);
  EXPECT_GE(s.histograms.at(std::string(kTransportRequestNs) +
                            ".phi-retrieval")
                .count,
            1u);
}
#endif  // HCPP_OBS


// ---- Thread safety ---------------------------------------------------------

TEST_F(ObsTest, ConcurrentBumpsFromManyThreadsLoseNothing) {
  // Registry::add/observe/gauge_set are mutex-guarded; pool workers hammer
  // one counter, one histogram and one gauge concurrently and the totals
  // must come out exact. The TSan CI job runs this with instrumentation.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg_.add("mt.counter");
        reg_.observe("mt.latency", static_cast<double>(i + 1));
        reg_.gauge_set("mt.gauge", t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Snapshot snap = reg_.snapshot();
  EXPECT_EQ(snap.counter("mt.counter"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  ASSERT_TRUE(snap.histograms.contains("mt.latency"));
  EXPECT_EQ(snap.histograms.at("mt.latency").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  // The gauge holds whichever thread wrote last — any valid thread index.
  int64_t g = snap.gauges.at("mt.gauge");
  EXPECT_GE(g, 0);
  EXPECT_LT(g, kThreads);
}

TEST_F(ObsTest, ConcurrentSnapshotsWhileWritingAreConsistent) {
  std::atomic<bool> stop{false};
  std::thread writer([this, &stop] {
    while (!stop.load()) reg_.add("mt.spin");
  });
  for (int i = 0; i < 50; ++i) {
    Snapshot snap = reg_.snapshot();
    // Monotone: a later snapshot never shows a smaller count.
    Snapshot later = reg_.snapshot();
    EXPECT_GE(later.counter("mt.spin"), snap.counter("mt.spin"));
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace hcpp::obs
