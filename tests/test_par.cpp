// Thread-pool execution layer: shard determinism, full coverage, exception
// propagation, inline single-thread mode, parallel_map ordering, and the
// per-pool metrics (queue-depth gauge, task latency histogram, counter).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "src/obs/metrics.h"
#include "src/par/pool.h"

namespace hcpp::par {
namespace {

using ShardVec = std::vector<std::tuple<size_t, size_t, size_t>>;

ShardVec record_shards(ThreadPool& pool, size_t n) {
  std::mutex mu;
  ShardVec out;
  pool.for_shards(n, [&](size_t s, size_t b, size_t e) {
    std::lock_guard<std::mutex> lock(mu);
    out.emplace_back(s, b, e);
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4, "t");
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ShardBoundariesArePureFunctionOfNAndSize) {
  ThreadPool pool(3, "t");
  ShardVec a = record_shards(pool, 10);
  ShardVec b = record_shards(pool, 10);
  EXPECT_EQ(a, b);
  // 10 over 3 shards: first 10 % 3 = 1 shard gets the extra element.
  ShardVec want = {{0, 0, 4}, {1, 4, 7}, {2, 7, 10}};
  EXPECT_EQ(a, want);
}

TEST(ThreadPool, ShardsCoverRangeContiguously) {
  ThreadPool pool(8, "t");
  for (size_t n : {1u, 2u, 7u, 8u, 9u, 64u, 1000u}) {
    ShardVec shards = record_shards(pool, n);
    EXPECT_EQ(shards.size(), pool.shard_count(n));
    size_t expect_begin = 0;
    for (const auto& [s, b, e] : shards) {
      EXPECT_EQ(b, expect_begin);
      EXPECT_LT(b, e);
      expect_begin = e;
    }
    EXPECT_EQ(expect_begin, n);
  }
}

TEST(ThreadPool, FewerItemsThanThreadsGetOneShardEach) {
  ThreadPool pool(8, "t");
  EXPECT_EQ(pool.shard_count(3), 3u);
  EXPECT_EQ(pool.shard_count(0), 0u);
  size_t calls = 0;
  pool.for_shards(0, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
}

TEST(ThreadPool, SingleThreadRunsInlineInAscendingOrder) {
  ThreadPool pool(1, "t");
  EXPECT_EQ(pool.size(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.for_shards(100, [&](size_t s, size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(s);
  });
  // Inline mode: one shard per item bucket would be 1 here (n >= threads).
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0u);
}

TEST(ThreadPool, SerialShardsMatchesSingleThreadPool) {
  std::vector<std::tuple<size_t, size_t, size_t>> serial;
  serial_shards(42, [&](size_t s, size_t b, size_t e) {
    serial.emplace_back(s, b, e);
  });
  ThreadPool pool(1, "t");
  EXPECT_EQ(record_shards(pool, 42), ShardVec(serial.begin(), serial.end()));
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4, "t");
  EXPECT_THROW(pool.parallel_for(100,
                                 [](size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<size_t> done{0};
  pool.parallel_for(100, [&](size_t) { ++done; });
  EXPECT_EQ(done.load(), 100u);
}

TEST(ThreadPool, ParallelMapLandsResultsAtInputIndex) {
  ThreadPool pool(4, "t");
  std::vector<uint64_t> out = pool.parallel_map<uint64_t>(
      257, [](size_t i) { return static_cast<uint64_t>(i) * i; });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<uint64_t>(i) * i);
  }
}

TEST(ThreadPool, DefaultThreadsHonorsEnvOverride) {
  ::setenv("HCPP_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ThreadPool pool(0, "t");
  EXPECT_EQ(pool.size(), 3u);
  ::unsetenv("HCPP_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, EmitsQueueDepthLatencyAndTaskCount) {
  obs::Registry* prev = obs::attached();
  obs::Registry reg;
  obs::attach(&reg);
  {
    ThreadPool pool(4, "metered");
    pool.parallel_for(64, [](size_t) {});
  }
  obs::attach(prev);
  obs::Snapshot snap = reg.snapshot();
  // One task per shard; the counter and the histogram agree.
  EXPECT_EQ(snap.counter("par.metered.tasks"), 4u);
  ASSERT_TRUE(snap.histograms.contains("par.metered.task_ns"));
  EXPECT_EQ(snap.histograms.at("par.metered.task_ns").count, 4u);
  // The queue-depth gauge was written (drained back to 0 at the end).
  ASSERT_TRUE(snap.gauges.contains("par.metered.queue_depth"));
  EXPECT_EQ(snap.gauges.at("par.metered.queue_depth"), 0);
}

TEST(ThreadPool, ManyConcurrentBatchesOnSharedPool) {
  // Several threads submitting batches to their own pools concurrently —
  // the TSan job chews on this.
  ThreadPool pool(4, "t");
  std::atomic<size_t> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(3);
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&] {
      for (int round = 0; round < 5; ++round) {
        ThreadPool local(2, "local");
        local.parallel_for(50, [&](size_t) { ++total; });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), 3u * 5u * 50u);
}

}  // namespace
}  // namespace hcpp::par
