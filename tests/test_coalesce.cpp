// Cross-request pairing coalescing (core/coalesce.h): the drained results
// must be byte-identical to the one-at-a-time paths they replace —
// SharedKeyDeriver::with_point for ν/ϖ derivations and ibs_verify for Hess
// signatures — including rejects, duplicates and mixed batches, with and
// without a thread pool. Also covers the two batched front-ends wired onto
// the coalescer: SearchService::search_batch_privileged and
// AServer::handle_emergency_auth_batch.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/coalesce.h"
#include "src/core/search_service.h"
#include "src/core/setup.h"
#include "src/par/pool.h"

namespace hcpp::core {
namespace {

DeploymentConfig small_config(uint64_t seed) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 10;
  cfg.seed = seed;
  return cfg;
}

cipher::Drbg test_rng(std::string_view tag) {
  return cipher::Drbg(to_bytes(tag));
}

// ---- shared-key coalescing --------------------------------------------------

TEST(CoalesceSharedKeys, MatchesWithPointIncludingDuplicates) {
  Deployment d = Deployment::create(small_config(11));
  const ibc::SharedKeyDeriver& deriver = d.sserver->nu_deriver();
  const curve::CurveCtx& ctx = *deriver.ctx();

  std::vector<curve::Point> peers = {
      curve::point_from_bytes(ctx, d.patient->tp_bytes()),
      ibc::Domain::public_key(ctx, "peer-a"),
      ibc::Domain::public_key(ctx, "peer-b"),
      curve::point_from_bytes(ctx, d.patient->tp_bytes()),  // duplicate
      ibc::Domain::public_key(ctx, "peer-a"),               // duplicate
  };
  PairingCoalescer co(ctx);
  for (size_t i = 0; i < peers.size(); ++i) {
    EXPECT_EQ(co.add_shared_key(deriver, peers[i]), i);
  }
  EXPECT_EQ(co.pending(), peers.size());
  PairingCoalescer::Drained got = co.drain();
  EXPECT_EQ(co.pending(), 0u);
  ASSERT_EQ(got.shared_keys.size(), peers.size());
  for (size_t i = 0; i < peers.size(); ++i) {
    EXPECT_EQ(got.shared_keys[i], deriver.with_point(peers[i])) << i;
  }
  // Two duplicated requests -> two pairings skipped outright.
  EXPECT_EQ(got.pairings_saved, 2u);
}

TEST(CoalesceSharedKeys, PooledDrainMatchesSerial) {
  Deployment d = Deployment::create(small_config(12));
  const ibc::SharedKeyDeriver& deriver = d.sserver->nu_deriver();
  const curve::CurveCtx& ctx = *deriver.ctx();
  std::vector<curve::Point> peers;
  for (int i = 0; i < 7; ++i) {
    peers.push_back(ibc::Domain::public_key(ctx, "peer-" + std::to_string(i)));
  }
  PairingCoalescer serial(ctx);
  PairingCoalescer pooled(ctx);
  for (const curve::Point& p : peers) {
    serial.add_shared_key(deriver, p);
    pooled.add_shared_key(deriver, p);
  }
  par::ThreadPool pool(2, "test-coalesce");
  EXPECT_EQ(serial.drain(nullptr).shared_keys,
            pooled.drain(&pool).shared_keys);
}

TEST(CoalesceSharedKeys, RejectsForeignOrEmptyDeriver) {
  Deployment d = Deployment::create(small_config(13));
  const curve::CurveCtx& ctx = *d.sserver->nu_deriver().ctx();
  PairingCoalescer co(ctx);
  ibc::SharedKeyDeriver empty;
  EXPECT_THROW(co.add_shared_key(empty, curve::generator(ctx)),
               std::invalid_argument);
  EXPECT_THROW(co.add_ibs_verify("id", Bytes{}, ibc::IbsSignature{}),
               std::logic_error);  // key-only coalescer
}

// ---- IBS coalescing ---------------------------------------------------------

TEST(CoalesceIbs, MatchesIbsVerifyOnMixedBatch) {
  Deployment d = Deployment::create(small_config(14));
  const ibc::PublicParams& pub = d.aserver->pub();
  const curve::CurveCtx& ctx = *pub.ctx;
  cipher::Drbg rng = test_rng("coalesce-ibs");

  struct Item {
    std::string id;
    Bytes message;
    ibc::IbsSignature sig;
  };
  std::vector<Item> items;
  for (int i = 0; i < 6; ++i) {
    // Two signers alternating, so the H1(ID) cache sees repeats.
    std::string id = (i % 2 == 0) ? "dr-even" : "dr-odd";
    Bytes msg = to_bytes("message-" + std::to_string(i));
    ibc::IbsSignature sig =
        ibc::ibs_sign(ctx, d.aserver->provision(id), id, msg, rng);
    items.push_back({std::move(id), std::move(msg), sig});
  }
  items[1].message.push_back(0x42);          // tampered message
  items[2].sig.v = mp::U512::from_u64(7);    // forged challenge
  items[3].sig.w = curve::Point{};           // infinity response point
  items[4].sig.v = mp::U512{};               // zero challenge
  {
    Item wrong = items[5];
    wrong.id = "dr-imposter";                // valid sig, wrong identity
    items.push_back(std::move(wrong));
  }

  PairingCoalescer co(pub);
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(co.add_ibs_verify(items[i].id, items[i].message, items[i].sig),
              i);
  }
  PairingCoalescer::Drained got = co.drain();
  ASSERT_EQ(got.ibs_ok.size(), items.size());
  size_t valid = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    bool expect =
        ibc::ibs_verify(pub, items[i].id, items[i].message, items[i].sig);
    EXPECT_EQ(got.ibs_ok[i] != 0, expect) << "item " << i;
    valid += expect ? 1 : 0;
  }
  EXPECT_GE(valid, 2u);  // items 0 and 5 stayed untouched
  // Every non-malformed signature fused its two pairings into one product;
  // items 3 and 4 are rejected without pairing work.
  EXPECT_EQ(got.pairings_saved, items.size() - 2);
}

TEST(CoalesceIbs, PooledDrainMatchesSerialAndKeysMix) {
  Deployment d = Deployment::create(small_config(15));
  const ibc::PublicParams& pub = d.aserver->pub();
  const curve::CurveCtx& ctx = *pub.ctx;
  const ibc::SharedKeyDeriver& deriver = d.sserver->nu_deriver();
  cipher::Drbg rng = test_rng("coalesce-mixed");

  PairingCoalescer serial(pub);
  PairingCoalescer pooled(pub);
  for (int i = 0; i < 4; ++i) {
    std::string id = "mixed-" + std::to_string(i);
    Bytes msg = to_bytes("m" + std::to_string(i));
    ibc::IbsSignature sig =
        ibc::ibs_sign(ctx, d.aserver->provision(id), id, msg, rng);
    serial.add_ibs_verify(id, msg, sig);
    pooled.add_ibs_verify(id, msg, sig);
    curve::Point peer = ibc::Domain::public_key(ctx, id);
    serial.add_shared_key(deriver, peer);
    pooled.add_shared_key(deriver, peer);
  }
  par::ThreadPool pool(3, "test-coalesce");
  PairingCoalescer::Drained a = serial.drain(nullptr);
  PairingCoalescer::Drained b = pooled.drain(&pool);
  EXPECT_EQ(a.shared_keys, b.shared_keys);
  EXPECT_EQ(a.ibs_ok, b.ibs_ok);
  for (uint8_t ok : a.ibs_ok) EXPECT_EQ(ok, 1);
}

// ---- SearchService::search_batch_privileged --------------------------------

PrivilegedRetrieveRequest make_priv_request(const Deployment& d,
                                            const PrivilegeBundle& pb,
                                            std::span<const std::string> kws,
                                            uint64_t t_offset) {
  // White-box construction of §IV.E.1 message 3 (emergency.cpp shape): the
  // current privilege key d comes straight off the server snapshot instead
  // of the BE round, which is not under test here.
  auto snaps = d.sserver->snapshot_accounts();
  const AccountSnapshot& acct =
      snaps.at(SServer::account_key(pb.tp, pb.collection));
  PrivilegedRetrieveRequest req;
  req.tp = pb.tp;
  req.collection = pb.collection;
  sse::TrapdoorGen gen(pb.keys);
  for (const std::string& kw : kws) {
    req.wrapped_trapdoors.push_back(
        sse::wrap_trapdoor(acct.d, gen.make(keyword_alias(kw, 0))));
  }
  req.t = d.net->clock().now() + t_offset;
  req.mac = protocol_mac(pb.nu, kPrivilegedRetrieveLabel, req.body(), req.t);
  return req;
}

std::vector<sse::FileId> file_ids(const RetrieveResponse& resp) {
  std::vector<sse::FileId> ids;
  for (const auto& [id, blob] : resp.files) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(SearchBatchPrivileged, MatchesLiveHandlerAndRejectsBadRequests) {
  Deployment d = Deployment::create(small_config(16));
  ASSERT_TRUE(d.family->has_bundle());
  const PrivilegeBundle& pb = d.family->bundle();
  std::vector<std::string> kws = {d.all_keywords().front()};

  // Live handler first (its own timestamp, so no replay interference).
  PrivilegedRetrieveRequest single = make_priv_request(d, pb, kws, 0);
  std::optional<RetrieveResponse> live =
      d.sserver->handle_privileged_retrieve(single);
  ASSERT_TRUE(live.has_value());

  SearchService svc(nullptr);
  svc.publish(*d.sserver);
  PrivilegedRetrieveRequest good = make_priv_request(d, pb, kws, 1);
  PrivilegedRetrieveRequest good2 = make_priv_request(d, pb, kws, 2);
  PrivilegedRetrieveRequest bad_mac = make_priv_request(d, pb, kws, 3);
  bad_mac.mac[0] ^= 1;
  PrivilegedRetrieveRequest bad_tp = make_priv_request(d, pb, kws, 4);
  bad_tp.tp[1] ^= 1;  // no longer a valid curve point encoding
  bad_tp.mac = protocol_mac(pb.nu, kPrivilegedRetrieveLabel, bad_tp.body(),
                            bad_tp.t);
  PrivilegedRetrieveRequest unknown = make_priv_request(d, pb, kws, 5);
  unknown.collection = "no-such-collection";
  unknown.mac = protocol_mac(pb.nu, kPrivilegedRetrieveLabel, unknown.body(),
                             unknown.t);

  std::vector<PrivilegedRetrieveRequest> reqs = {good, good2, bad_mac,
                                                 bad_tp, unknown};
  std::vector<std::optional<RetrieveResponse>> got =
      svc.search_batch_privileged(*d.sserver, reqs);
  ASSERT_EQ(got.size(), reqs.size());
  ASSERT_TRUE(got[0].has_value());
  ASSERT_TRUE(got[1].has_value());  // same pseudonym: ν paired only once
  EXPECT_EQ(file_ids(*got[0]), file_ids(*live));
  EXPECT_EQ(file_ids(*got[1]), file_ids(*live));
  // The batch responses authenticate under the same ν as the live ones.
  EXPECT_TRUE(protocol_mac_ok(pb.nu, kPrivilegedRetrieveLabel,
                              got[0]->body(), got[0]->t, got[0]->mac));
  EXPECT_FALSE(got[2].has_value());
  EXPECT_FALSE(got[3].has_value());
  EXPECT_FALSE(got[4].has_value());
}

TEST(SearchBatchPrivileged, ReplayInsideBatchIsRejected) {
  Deployment d = Deployment::create(small_config(17));
  const PrivilegeBundle& pb = d.family->bundle();
  std::vector<std::string> kws = {d.all_keywords().front()};
  SearchService svc(nullptr);
  svc.publish(*d.sserver);
  PrivilegedRetrieveRequest req = make_priv_request(d, pb, kws, 0);
  std::vector<PrivilegedRetrieveRequest> reqs = {req, req};  // same MAC
  std::vector<std::optional<RetrieveResponse>> got =
      svc.search_batch_privileged(*d.sserver, reqs);
  EXPECT_TRUE(got[0].has_value());
  EXPECT_FALSE(got[1].has_value());  // replay cache, arrival order
}

TEST(SearchBatchPrivileged, PooledMatchesSerial) {
  Deployment d = Deployment::create(small_config(18));
  const PrivilegeBundle& pb = d.family->bundle();
  std::vector<std::string> kws = {d.all_keywords().front()};
  par::ThreadPool pool(2, "test-search-batch");
  SearchService serial(nullptr);
  SearchService pooled(&pool);
  serial.publish(*d.sserver);
  pooled.publish(*d.sserver);
  std::vector<PrivilegedRetrieveRequest> reqs_a, reqs_b;
  for (uint64_t i = 0; i < 3; ++i) {
    reqs_a.push_back(make_priv_request(d, pb, kws, i));
    reqs_b.push_back(make_priv_request(d, pb, kws, 100 + i));
  }
  std::vector<std::optional<RetrieveResponse>> a =
      serial.search_batch_privileged(*d.sserver, reqs_a);
  std::vector<std::optional<RetrieveResponse>> b =
      pooled.search_batch_privileged(*d.sserver, reqs_b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].has_value());
    ASSERT_TRUE(b[i].has_value());
    EXPECT_EQ(file_ids(*a[i]), file_ids(*b[i]));
  }
}

// ---- AServer::handle_emergency_auth_batch ----------------------------------

EmergencyAuthRequest make_auth_request(Deployment& d, const std::string& id,
                                       cipher::Drbg& rng, uint64_t t_offset) {
  EmergencyAuthRequest req;
  req.physician_id = id;
  req.tp = d.patient->tp_bytes();
  req.t = d.net->clock().now() + t_offset;
  req.sig = ibc::ibs_sign(d.aserver->ctx(), d.aserver->provision(id), id,
                          req.body(), rng)
                .to_bytes();
  return req;
}

TEST(EmergencyAuthBatch, MatchesSingleHandlerOutcomes) {
  Deployment d = Deployment::create(small_config(19));
  cipher::Drbg rng = test_rng("auth-batch");
  const std::string on = d.on_duty->id();
  const std::string off = d.off_duty->id();

  EmergencyAuthRequest ok1 = make_auth_request(d, on, rng, 0);
  EmergencyAuthRequest ok2 = make_auth_request(d, on, rng, 1);
  EmergencyAuthRequest off_duty = make_auth_request(d, off, rng, 2);
  EmergencyAuthRequest bad_sig = make_auth_request(d, on, rng, 3);
  bad_sig.sig[4] ^= 1;
  EmergencyAuthRequest replay = ok1;

  const size_t traces_before = d.aserver->traces().size();
  std::vector<EmergencyAuthRequest> reqs = {ok1, ok2, off_duty, bad_sig,
                                            replay};
  std::vector<std::optional<AServer::EmergencyAuthOutcome>> got =
      d.aserver->handle_emergency_auth_batch(reqs);
  ASSERT_EQ(got.size(), reqs.size());
  EXPECT_TRUE(got[0].has_value());
  EXPECT_TRUE(got[1].has_value());
  EXPECT_FALSE(got[2].has_value());  // verified IBS but not on duty
  EXPECT_FALSE(got[3].has_value());  // signature rejected
  EXPECT_FALSE(got[4].has_value());  // replay of ok1 inside the batch
  // Each accepted request appended a TR trace, like the single handler.
  EXPECT_EQ(d.aserver->traces().size(), traces_before + 2);

  // The batched outcome drives the real passcode flow end to end.
  d.pdevice->press_emergency_button();
  ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, got[0]->to_pdevice));
}

TEST(EmergencyAuthBatch, PooledDrainSameAcceptance) {
  Deployment d = Deployment::create(small_config(20));
  cipher::Drbg rng = test_rng("auth-batch-pool");
  std::vector<EmergencyAuthRequest> reqs;
  for (uint64_t i = 0; i < 4; ++i) {
    reqs.push_back(make_auth_request(d, d.on_duty->id(), rng, i));
  }
  par::ThreadPool pool(2, "test-auth-batch");
  std::vector<std::optional<AServer::EmergencyAuthOutcome>> got =
      d.aserver->handle_emergency_auth_batch(reqs, &pool);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].has_value()) << i;
  }
}

}  // namespace
}  // namespace hcpp::core
