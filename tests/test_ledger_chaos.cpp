// Ledger chaos suite: checkpoint anchoring driven over an adversarial
// network (seeded drops/duplication, partitions cut mid-anchoring) plus
// crash-mid-append recovery. The invariants: an epoch anchors exactly once
// no matter how many times the wire or the caller retries, a conflicting
// re-presentation yields recorded divergence evidence instead of a second
// anchor, and recovery replays to a prefix the last anchor still verifies.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/core/accountability.h"
#include "src/core/setup.h"
#include "src/sim/transport.h"

namespace hcpp::core {
namespace {

namespace lg = hcpp::ledger;

DeploymentConfig small_config(uint64_t seed) {
  DeploymentConfig cfg;
  cfg.n_phi_files = 8;
  cfg.seed = seed;
  return cfg;
}

sim::FaultPlan lossy_plan(uint64_t seed) {
  sim::FaultPlan plan;
  plan.seed = seed;
  plan.default_faults.drop = 0.20;
  plan.default_faults.duplicate = 0.10;
  return plan;
}

struct LedgerFixture {
  Deployment d;
  explicit LedgerFixture(uint64_t seed)
      : d(Deployment::create(small_config(seed))) {}

  // One full P-device emergency retrieval: appends one TR trace to the
  // A-server's ledger and one RD record to the P-device's.
  void run_emergency() {
    std::vector<std::string> kws = {d.all_keywords().front()};
    d.pdevice->press_emergency_button();
    auto pass = d.on_duty->request_passcode(*d.aserver, d.patient->tp_bytes());
    ASSERT_TRUE(pass.has_value());
    ASSERT_TRUE(d.pdevice->deliver_passcode(*d.aserver, pass->for_device));
    ASSERT_TRUE(d.pdevice->enter_passcode(d.on_duty->id(), pass->nonce));
    (void)d.pdevice->emergency_retrieve(*d.sserver, kws);
  }

  lg::AnchorOutcome anchor_traces(uint64_t epoch) {
    return lg::anchor_epoch(d.aserver->trace_ledger(), *d.anchors,
                            d.net->transport(), d.aserver->id(), epoch,
                            d.net->clock().now());
  }
};

TEST(LedgerChaos, EmergencyFeedsLedgersAndNotifications) {
  LedgerFixture f(60);
  f.run_emergency();
  // Both accountability artifacts landed in their hash chains…
  EXPECT_EQ(f.d.aserver->trace_ledger().size(), 1u);
  EXPECT_EQ(f.d.pdevice->rd_ledger().size(), 1u);
  EXPECT_TRUE(f.d.aserver->trace_ledger().verify_chain().ok());
  EXPECT_TRUE(f.d.pdevice->rd_ledger().verify_chain().ok());
  // …and the patient's alert stream saw the access.
  ASSERT_EQ(f.d.pdevice->rd_ledger().pending_notifications(), 1u);
  std::vector<lg::Notification> alerts =
      f.d.pdevice->rd_ledger().drain_notifications();
  EXPECT_EQ(alerts[0].event.actor_id, "dr-on-duty");
  EXPECT_EQ(f.d.pdevice->rd_ledger().pending_notifications(), 0u);
}

TEST(LedgerChaos, AnchorExactlyOnceUnderLossAndDuplication) {
  LedgerFixture f(61);
  f.run_emergency();
  f.d.net->set_fault_plan(lossy_plan(161));

  lg::AnchorOutcome out = f.anchor_traces(/*epoch=*/0);
  ASSERT_TRUE(out.anchored) << out.detail;
  lg::Ledger& led = f.d.aserver->trace_ledger();
  ASSERT_EQ(led.anchors().size(), 1u);
  // Full hospital → state → federal signature chain, in order, all valid.
  std::vector<std::string> expected = lg::default_anchor_authorities();
  EXPECT_TRUE(lg::verify_anchor_sigs(f.d.anchors->pub(), led.anchors()[0],
                                     expected));
  // However many wire duplicates the plan injected, no authority recorded a
  // conflicting statement.
  EXPECT_TRUE(f.d.anchors->divergence_log().empty());

  // Re-driving the same epoch is a no-op, not a second anchor.
  lg::AnchorOutcome again = f.anchor_traces(/*epoch=*/0);
  EXPECT_TRUE(again.anchored);
  EXPECT_EQ(led.anchors().size(), 1u);
}

TEST(LedgerChaos, PartitionMidAnchorIsTransientThenIdempotent) {
  LedgerFixture f(62);
  f.run_emergency();
  const uint64_t count_at_pin = f.d.aserver->trace_ledger().size();

  // Sever the link to the state registry before the drive starts: the
  // hospital level signs, the state level never answers.
  f.d.net->add_partition(
      {f.d.aserver->id(), "state-anchor", f.d.net->clock().now(), UINT64_MAX});
  lg::AnchorOutcome cut = f.anchor_traces(/*epoch=*/0);
  EXPECT_FALSE(cut.anchored);
  EXPECT_FALSE(cut.divergence);  // transient, retriable — not a refusal
  EXPECT_TRUE(f.d.aserver->trace_ledger().anchors().empty());

  // History moves on while the epoch is stuck — the pinned checkpoint must
  // not move with it.
  f.run_emergency();

  f.d.net->clear_partitions();
  lg::AnchorOutcome healed = f.anchor_traces(/*epoch=*/0);
  ASSERT_TRUE(healed.anchored) << healed.detail;
  lg::Ledger& led = f.d.aserver->trace_ledger();
  ASSERT_EQ(led.anchors().size(), 1u);
  // Exactly-once across the retry: the anchor covers the pinned prefix, the
  // hospital's pre-partition signature was reused (no divergence recorded).
  EXPECT_EQ(led.anchors()[0].cp.count, count_at_pin);
  EXPECT_TRUE(f.d.anchors->divergence_log().empty());
  EXPECT_TRUE(lg::verify_anchor_sigs(f.d.anchors->pub(), led.anchors()[0],
                                     lg::default_anchor_authorities()));

  // The entries appended mid-outage roll into the next epoch.
  lg::AnchorOutcome next = f.anchor_traces(/*epoch=*/1);
  ASSERT_TRUE(next.anchored);
  EXPECT_EQ(led.anchors()[1].cp.count, led.size());
  EXPECT_TRUE(led.verify_against(led.anchors()[1]).ok());
}

TEST(LedgerChaos, ForkAttemptYieldsDivergenceEvidence) {
  LedgerFixture f(63);
  f.run_emergency();
  ASSERT_TRUE(f.anchor_traces(/*epoch=*/0).anchored);

  // A compromised holder rebuilds its history (same ledger id, same epoch,
  // different content) and re-presents it to the hierarchy.
  lg::Ledger forged(f.d.aserver->trace_ledger().id());
  lg::AccessEvent ev = f.d.aserver->trace_ledger().entry(0).event();
  ev.actor_id = "dr-nobody";  // pin the access on someone else
  forged.append(ev);
  lg::Checkpoint conflicting =
      forged.checkpoint_for_epoch(0, f.d.net->clock().now());

  lg::AnchorOutcome out = f.d.anchors->anchor_checkpoint(
      f.d.net->transport(), f.d.aserver->id(), conflicting);
  EXPECT_FALSE(out.anchored);
  EXPECT_TRUE(out.divergence);
  // The refusing authority holds the proof: both statements, side by side.
  std::vector<lg::AnchorAuthority::Divergence> evidence =
      f.d.anchors->divergence_log();
  ASSERT_FALSE(evidence.empty());
  EXPECT_EQ(evidence[0].epoch, 0u);
  EXPECT_EQ(evidence[0].ledger_id, f.d.aserver->trace_ledger().id());
  EXPECT_NE(evidence[0].accepted_statement, evidence[0].offered_statement);
  EXPECT_EQ(evidence[0].offered_statement, conflicting.statement());
  // The genuine anchor stands; no second one was recorded anywhere.
  EXPECT_EQ(f.d.aserver->trace_ledger().anchors().size(), 1u);
}

TEST(LedgerChaos, CrashMidAppendRecoversToAnchoredPrefix) {
  LedgerFixture f(64);
  std::filesystem::path wal =
      std::filesystem::temp_directory_path() / "hcpp-chaos-wal";
  std::filesystem::remove(wal);
  ASSERT_TRUE(f.d.aserver->trace_ledger().attach_wal(wal.string()));

  f.run_emergency();
  f.run_emergency();
  ASSERT_TRUE(f.anchor_traces(/*epoch=*/0).anchored);
  f.run_emergency();  // one entry past the anchor

  {
    // Power loss mid-append: a frame header whose body never hit the disk.
    std::ofstream out(wal, std::ios::binary | std::ios::app);
    const char torn[] = {'E', 0x00, 0x00, 0x20, 0x00, 0x01};
    out.write(torn, sizeof(torn));
  }

  lg::RecoveryReport rep;
  lg::Ledger back = lg::Ledger::recover(
      wal.string(), f.d.aserver->trace_ledger().id(), &rep);
  EXPECT_TRUE(rep.tail_discarded);
  EXPECT_EQ(rep.entries, 3u);
  EXPECT_EQ(rep.anchors, 1u);
  // The survivor is chain-consistent, reaches past the anchored prefix and
  // matches the live ledger bit for bit.
  ASSERT_NE(back.last_anchor(), nullptr);
  EXPECT_TRUE(back.verify_against(*back.last_anchor()).ok());
  EXPECT_EQ(back.head_hash(), f.d.aserver->trace_ledger().head_hash());
  std::filesystem::remove(wal);
}

TEST(LedgerChaos, FullLedgerAuditPassesUnderChaosAndCatchesForks) {
  LedgerFixture f(65);
  f.run_emergency();
  f.d.net->set_fault_plan(lossy_plan(165));
  ASSERT_TRUE(f.anchor_traces(/*epoch=*/0).anchored);
  ASSERT_TRUE(lg::anchor_epoch(f.d.pdevice->rd_ledger(), *f.d.anchors,
                               f.d.net->transport(), f.d.pdevice->id(),
                               /*epoch=*/0, f.d.net->clock().now())
                  .anchored);

  std::vector<std::string> all = f.d.all_keywords();
  std::set<std::string> permitted(all.begin(), all.end());
  std::vector<std::string> expected = lg::default_anchor_authorities();

  LedgerAuditReport report = audit_ledgers(
      f.d.aserver->pub(), f.d.aserver->id(), f.d.aserver->trace_ledger(),
      f.d.pdevice->rd_ledger(), expected, permitted);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.anchors_ok);
  EXPECT_EQ(report.bad_proofs, 0u);
  EXPECT_GE(report.proofs_checked, 2u);
  EXPECT_EQ(report.records.accountable,
            std::vector<std::string>{"dr-on-duty"});

  // Now audit a truncated presentation of the same anchored history.
  lg::Ledger cut = lg::Ledger::from_entries(
      f.d.aserver->trace_ledger().id(), {});
  for (const auto& a : f.d.aserver->trace_ledger().anchors()) {
    cut.record_anchor(a);
  }
  LedgerAuditReport bad = audit_ledgers(
      f.d.aserver->pub(), f.d.aserver->id(), cut, f.d.pdevice->rd_ledger(),
      expected, permitted);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.trace_chain.defect, lg::ChainVerdict::Defect::kTruncated);
}

}  // namespace
}  // namespace hcpp::core
