// Wire-message encodings and the protocol MAC helpers.
#include <gtest/gtest.h>

#include "src/core/messages.h"

namespace hcpp::core {
namespace {

TEST(ProtocolMac, RoundTripAndRejection) {
  Bytes key(32, 7);
  Bytes body = to_bytes("payload");
  Bytes mac = protocol_mac(key, "label", body, 42);
  EXPECT_TRUE(protocol_mac_ok(key, "label", body, 42, mac));
  EXPECT_FALSE(protocol_mac_ok(key, "other-label", body, 42, mac));
  EXPECT_FALSE(protocol_mac_ok(key, "label", to_bytes("payloaX"), 42, mac));
  EXPECT_FALSE(protocol_mac_ok(key, "label", body, 43, mac));
  Bytes wrong_key(32, 8);
  EXPECT_FALSE(protocol_mac_ok(wrong_key, "label", body, 42, mac));
}

TEST(ProtocolMac, LabelDomainSeparation) {
  Bytes key(32, 1);
  Bytes body = to_bytes("same-body");
  EXPECT_NE(protocol_mac(key, "phi-storage", body, 1),
            protocol_mac(key, "phi-retrieval", body, 1));
}

TEST(Messages, StoreRequestBodyCoversAllFields) {
  StoreRequest a;
  a.tp = to_bytes("tp");
  a.collection = "c";
  a.index = to_bytes("idx");
  a.files = to_bytes("files");
  a.d = to_bytes("d");
  a.be_blob = to_bytes("be");
  StoreRequest b = a;
  EXPECT_EQ(a.body(), b.body());
  b.be_blob = to_bytes("be2");
  EXPECT_NE(a.body(), b.body());
  b = a;
  b.collection = "c2";
  EXPECT_NE(a.body(), b.body());
  EXPECT_GT(a.wire_size(), a.body().size());  // + timestamp and MAC
}

TEST(Messages, RetrieveRequestBodyOrderSensitive) {
  RetrieveRequest a;
  a.tp = to_bytes("tp");
  a.collection = "c";
  a.trapdoors = {to_bytes("t1"), to_bytes("t2")};
  RetrieveRequest b = a;
  std::swap(b.trapdoors[0], b.trapdoors[1]);
  EXPECT_NE(a.body(), b.body());
}

TEST(Messages, ResponsesBindFileIds) {
  RetrieveResponse a;
  a.files = {{1, to_bytes("blob")}};
  RetrieveResponse b;
  b.files = {{2, to_bytes("blob")}};
  EXPECT_NE(a.body(), b.body());
}

TEST(Messages, PasscodeBodiesBindRecipientContext) {
  PasscodeToPhysician p;
  p.enc_nonce = to_bytes("enc");
  p.t = 9;
  EXPECT_NE(p.body("dr-a", to_bytes("tp")), p.body("dr-b", to_bytes("tp")));
  EXPECT_NE(p.body("dr-a", to_bytes("tp1")), p.body("dr-a", to_bytes("tp2")));

  PasscodeToPDevice q;
  q.physician_id = "dr-a";
  q.ibe_blob = to_bytes("blob");
  q.t = 9;
  EXPECT_NE(q.body(to_bytes("tp1")), q.body(to_bytes("tp2")));
}

TEST(Messages, RdStatementBindsAllThreeFields) {
  Bytes base = rd_statement("dr-a", to_bytes("tp"), 7);
  EXPECT_NE(base, rd_statement("dr-b", to_bytes("tp"), 7));
  EXPECT_NE(base, rd_statement("dr-a", to_bytes("tq"), 7));
  EXPECT_NE(base, rd_statement("dr-a", to_bytes("tp"), 8));
  EXPECT_EQ(base, rd_statement("dr-a", to_bytes("tp"), 7));
}

TEST(Messages, EmergencyAuthRequestBodyIncludesTimestamp) {
  EmergencyAuthRequest a;
  a.physician_id = "dr-a";
  a.tp = to_bytes("tp");
  a.t = 5;
  EmergencyAuthRequest b = a;
  b.t = 6;
  EXPECT_NE(a.body(), b.body());  // the IBS covers t10 => replays detectable
}

TEST(Messages, MhiBodiesCoverTagsAndBlob) {
  MhiStoreRequest a;
  a.tp = to_bytes("tp");
  a.role_id = "role";
  a.peks_tags = {to_bytes("tag1")};
  a.ibe_blob = to_bytes("blob");
  MhiStoreRequest b = a;
  b.peks_tags.push_back(to_bytes("tag2"));
  EXPECT_NE(a.body(), b.body());
  b = a;
  b.ibe_blob = to_bytes("blob2");
  EXPECT_NE(a.body(), b.body());
}

TEST(Messages, RdRecordSerializationPreservesKeywords) {
  RdRecord rd;
  rd.physician_id = "dr-a";
  rd.tp = to_bytes("tp");
  rd.keywords = {"kw1", "kw2", "kw3"};
  rd.t11 = 99;
  rd.aserver_sig = to_bytes("sig");
  RdRecord back = RdRecord::from_bytes(rd.to_bytes());
  EXPECT_EQ(back.physician_id, rd.physician_id);
  EXPECT_EQ(back.tp, rd.tp);
  EXPECT_EQ(back.keywords, rd.keywords);
  EXPECT_EQ(back.t11, rd.t11);
  EXPECT_EQ(back.aserver_sig, rd.aserver_sig);
}

TEST(Messages, TraceRecordBodyStable) {
  TraceRecord tr{"dr-a", to_bytes("tp"), 1, 2, to_bytes("sig")};
  TraceRecord same{"dr-a", to_bytes("tp"), 1, 2, to_bytes("other-sig")};
  // The body covers identity/tp/times (the signature is over the original
  // request body, carried separately).
  EXPECT_EQ(tr.body(), same.body());
  TraceRecord diff{"dr-a", to_bytes("tp"), 1, 3, to_bytes("sig")};
  EXPECT_NE(tr.body(), diff.body());
}

}  // namespace
}  // namespace hcpp::core
